(* Tests for tq_util: PRNG, heap, vectors, Fenwick tree, deque, tables. *)

module Prng = Tq_util.Prng
module Heap = Tq_util.Binary_heap
module Fvec = Tq_util.Fvec
module Ivec = Tq_util.Ivec
module Fenwick = Tq_util.Fenwick
module Deque = Tq_util.Ring_deque
module Text_table = Tq_util.Text_table
module Time_unit = Tq_util.Time_unit

let check = Alcotest.check
let qtest ?(count = 200) name gen prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:7L and b = Prng.create ~seed:7L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_copy_independent () =
  let a = Prng.create ~seed:7L in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_prng_split_differs () =
  let a = Prng.create ~seed:7L in
  let b = Prng.split a in
  let xa = Prng.bits64 a and xb = Prng.bits64 b in
  Alcotest.(check bool) "split stream differs" true (xa <> xb)

let test_prng_int_bounds () =
  let r = Prng.create ~seed:1L in
  for _ = 1 to 10_000 do
    let v = Prng.int r 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_prng_int_rejects_nonpositive () =
  let r = Prng.create ~seed:1L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int r 0))

let test_prng_uniformity () =
  let r = Prng.create ~seed:3L in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Prng.int r 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      let f = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "bucket within 10% of uniform" true
        (f > 0.09 && f < 0.11))
    buckets

let test_prng_exponential_mean () =
  let r = Prng.create ~seed:5L in
  let n = 200_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential r ~mean:42.0
  done;
  let m = !sum /. float_of_int n in
  Alcotest.(check bool) "mean close to 42" true (Float.abs (m -. 42.0) < 1.0)

let test_prng_float_range () =
  let r = Prng.create ~seed:9L in
  for _ = 1 to 10_000 do
    let v = Prng.float r 3.5 in
    Alcotest.(check bool) "in [0,3.5)" true (v >= 0.0 && v < 3.5)
  done

let test_prng_bernoulli () =
  let r = Prng.create ~seed:11L in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Prng.bernoulli r ~p:0.3 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p close to 0.3" true (Float.abs (f -. 0.3) < 0.01)

let test_prng_choose_weighted () =
  let r = Prng.create ~seed:13L in
  let counts = Array.make 3 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Prng.choose_weighted r [| 0.7; 0.0; 0.3 |] in
    counts.(i) <- counts.(i) + 1
  done;
  check Alcotest.int "zero-weight class never chosen" 0 counts.(1);
  let f0 = float_of_int counts.(0) /. float_of_int n in
  Alcotest.(check bool) "ratio respected" true (Float.abs (f0 -. 0.7) < 0.01)

let test_prng_shuffle_permutation () =
  let r = Prng.create ~seed:17L in
  let arr = Array.init 100 (fun i -> i) in
  Prng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 100 (fun i -> i)) sorted

let test_prng_gaussian_moments () =
  let r = Prng.create ~seed:19L in
  let n = 200_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.gaussian r in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.01);
  Alcotest.(check bool) "var ~ 1" true (Float.abs (var -. 1.0) < 0.02)

(* --- Binary_heap --- *)

let test_heap_sorts =
  qtest "heap pops in sorted order"
    QCheck.(list int)
    (fun keys ->
      let h = Heap.create ~dummy:0 () in
      List.iter (fun k -> Heap.push h ~key:k k) keys;
      let out = ref [] in
      while not (Heap.is_empty h) do
        let k, _ = Heap.pop h in
        out := k :: !out
      done;
      List.rev !out = List.sort compare keys)

let test_heap_fifo_ties () =
  let h = Heap.create ~dummy:"" () in
  Heap.push h ~key:5 "first";
  Heap.push h ~key:5 "second";
  Heap.push h ~key:5 "third";
  check Alcotest.string "fifo 1" "first" (snd (Heap.pop h));
  check Alcotest.string "fifo 2" "second" (snd (Heap.pop h));
  check Alcotest.string "fifo 3" "third" (snd (Heap.pop h))

let test_heap_min_key () =
  let h = Heap.create ~dummy:0 () in
  check Alcotest.(option int) "empty" None (Heap.min_key h);
  Heap.push h ~key:9 0;
  Heap.push h ~key:2 0;
  check Alcotest.(option int) "min" (Some 2) (Heap.min_key h)

let test_heap_pop_empty () =
  let h = Heap.create ~dummy:0 () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Binary_heap.pop: empty heap")
    (fun () -> ignore (Heap.pop h))

let test_heap_interleaved =
  qtest "heap interleaved push/pop matches reference"
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Heap.create ~dummy:0 () in
      let reference = ref [] in
      List.for_all
        (fun (is_push, k) ->
          if is_push then begin
            Heap.push h ~key:k k;
            reference := List.sort compare (k :: !reference);
            true
          end
          else
            match !reference with
            | [] -> Heap.is_empty h
            | smallest :: rest ->
                let k', _ = Heap.pop h in
                reference := rest;
                k' = smallest)
        ops)

(* --- Fvec / Ivec --- *)

let test_fvec_basic () =
  let v = Fvec.create () in
  for i = 1 to 100 do
    Fvec.push v (float_of_int i)
  done;
  check Alcotest.int "length" 100 (Fvec.length v);
  check (Alcotest.float 1e-9) "get" 7.0 (Fvec.get v 6);
  check (Alcotest.float 1e-9) "mean" 50.5 (Fvec.mean v);
  Fvec.set v 0 1000.0;
  check (Alcotest.float 1e-9) "set" 1000.0 (Fvec.get v 0);
  Fvec.clear v;
  check Alcotest.int "cleared" 0 (Fvec.length v)

let test_fvec_bounds () =
  let v = Fvec.create () in
  Fvec.push v 1.0;
  Alcotest.check_raises "oob" (Invalid_argument "Fvec: index out of bounds") (fun () ->
      ignore (Fvec.get v 1))

let test_fvec_sorted () =
  let v = Fvec.create () in
  List.iter (Fvec.push v) [ 3.0; 1.0; 2.0 ];
  check Alcotest.(array (float 1e-9)) "sorted" [| 1.0; 2.0; 3.0 |] (Fvec.sorted_copy v);
  check Alcotest.(array (float 1e-9)) "original order kept" [| 3.0; 1.0; 2.0 |]
    (Fvec.to_array v)

let test_ivec_basic () =
  let v = Ivec.create ~capacity:1 () in
  for i = 0 to 999 do
    Ivec.push v (999 - i)
  done;
  check Alcotest.int "length" 1000 (Ivec.length v);
  check Alcotest.int "get" 999 (Ivec.get v 0);
  let sorted = Ivec.sorted_copy v in
  check Alcotest.int "sorted min" 0 sorted.(0);
  check Alcotest.int "fold sum" (999 * 1000 / 2) (Ivec.fold ( + ) 0 v)

(* --- Fenwick --- *)

let test_fenwick_vs_naive =
  qtest "fenwick prefix sums match naive"
    QCheck.(pair (int_bound 50) (list (pair (int_bound 49) (int_bound 10))))
    (fun (n, updates) ->
      let n = max n 1 in
      let f = Fenwick.create n in
      let naive = Array.make n 0 in
      List.iter
        (fun (i, d) ->
          let i = i mod n in
          Fenwick.add f i d;
          naive.(i) <- naive.(i) + d)
        updates;
      let ok = ref true in
      for i = 0 to n - 1 do
        let expected = Array.fold_left ( + ) 0 (Array.sub naive 0 (i + 1)) in
        if Fenwick.prefix_sum f i <> expected then ok := false
      done;
      !ok)

let test_fenwick_range () =
  let f = Fenwick.create 10 in
  for i = 0 to 9 do
    Fenwick.add f i (i + 1)
  done;
  check Alcotest.int "range [2,4]" (3 + 4 + 5) (Fenwick.range_sum f ~lo:2 ~hi:4);
  check Alcotest.int "empty range" 0 (Fenwick.range_sum f ~lo:4 ~hi:2);
  check Alcotest.int "total" 55 (Fenwick.total f)

(* --- Ring_deque --- *)

let test_deque_model =
  qtest "deque behaves like a list model"
    QCheck.(list (int_bound 3))
    (fun ops ->
      let d = Deque.create ~capacity:1 () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
              Deque.push_back d 1;
              model := !model @ [ 1 ];
              true
          | 1 ->
              Deque.push_front d 2;
              model := 2 :: !model;
              true
          | 2 -> (
              match (Deque.pop_front d, !model) with
              | None, [] -> true
              | Some x, y :: rest ->
                  model := rest;
                  x = y
              | _ -> false)
          | _ -> (
              match (Deque.pop_back d, List.rev !model) with
              | None, [] -> true
              | Some x, y :: rest ->
                  model := List.rev rest;
                  x = y
              | _ -> false))
        ops
      && Deque.to_list d = !model)

let test_deque_wraparound () =
  let d = Deque.create ~capacity:4 () in
  for i = 1 to 3 do
    Deque.push_back d i
  done;
  check Alcotest.(option int) "pop 1" (Some 1) (Deque.pop_front d);
  check Alcotest.(option int) "pop 2" (Some 2) (Deque.pop_front d);
  for i = 4 to 8 do
    Deque.push_back d i
  done;
  check Alcotest.int "length" 6 (Deque.length d);
  check Alcotest.(list int) "order preserved" [ 3; 4; 5; 6; 7; 8 ] (Deque.to_list d)

let test_deque_get () =
  let d = Deque.create () in
  List.iter (Deque.push_back d) [ 10; 20; 30 ];
  check Alcotest.int "get 1" 20 (Deque.get d 1);
  Alcotest.check_raises "oob" (Invalid_argument "Ring_deque.get: index out of bounds")
    (fun () -> ignore (Deque.get d 3))

(* --- Text_table --- *)

let test_table_render () =
  let t = Text_table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Text_table.add_row t [ "1"; "2" ];
  Text_table.add_row t [ "333"; "4" ];
  let s = Text_table.render t in
  Alcotest.(check bool) "contains title" true
    (String.length s > 0 && String.sub s 0 6 = "== T =");
  let index_of sub =
    let n = String.length s and m = String.length sub in
    let rec go i = if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool) "rows in insertion order" true
    (index_of "333" > index_of "1 " && index_of "333" >= 0)

let test_table_arity () =
  let t = Text_table.create ~title:"T" ~columns:[ "a" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Text_table.add_row: arity mismatch")
    (fun () -> Text_table.add_row t [ "1"; "2" ])

let test_cell_formats () =
  check Alcotest.string "int commas" "1,234,567" (Text_table.cell_i 1234567);
  check Alcotest.string "small float" "1.500" (Text_table.cell_f 1.5);
  check Alcotest.string "nan" "-" (Text_table.cell_f nan)

(* --- Time_unit --- *)

let test_time_conversions () =
  check Alcotest.int "2.5us" 2500 (Time_unit.us 2.5);
  check Alcotest.int "1ms" 1_000_000 (Time_unit.ms 1.0);
  check (Alcotest.float 1e-9) "roundtrip" 2.5 (Time_unit.to_us (Time_unit.us 2.5));
  check Alcotest.int "cycles at 2.1GHz" 2100 (Time_unit.ns_to_cycles 1000);
  check Alcotest.int "ns from cycles" 1000 (Time_unit.cycles_to_ns 2100)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng copy" `Quick test_prng_copy_independent;
    Alcotest.test_case "prng split" `Quick test_prng_split_differs;
    Alcotest.test_case "prng int bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "prng int rejects <=0" `Quick test_prng_int_rejects_nonpositive;
    Alcotest.test_case "prng uniformity" `Quick test_prng_uniformity;
    Alcotest.test_case "prng exponential mean" `Quick test_prng_exponential_mean;
    Alcotest.test_case "prng float range" `Quick test_prng_float_range;
    Alcotest.test_case "prng bernoulli" `Quick test_prng_bernoulli;
    Alcotest.test_case "prng choose_weighted" `Quick test_prng_choose_weighted;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "prng gaussian moments" `Quick test_prng_gaussian_moments;
    test_heap_sorts;
    Alcotest.test_case "heap fifo ties" `Quick test_heap_fifo_ties;
    Alcotest.test_case "heap min_key" `Quick test_heap_min_key;
    Alcotest.test_case "heap pop empty" `Quick test_heap_pop_empty;
    test_heap_interleaved;
    Alcotest.test_case "fvec basic" `Quick test_fvec_basic;
    Alcotest.test_case "fvec bounds" `Quick test_fvec_bounds;
    Alcotest.test_case "fvec sorted" `Quick test_fvec_sorted;
    Alcotest.test_case "ivec basic" `Quick test_ivec_basic;
    test_fenwick_vs_naive;
    Alcotest.test_case "fenwick range" `Quick test_fenwick_range;
    test_deque_model;
    Alcotest.test_case "deque wraparound" `Quick test_deque_wraparound;
    Alcotest.test_case "deque get" `Quick test_deque_get;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity;
    Alcotest.test_case "cell formats" `Quick test_cell_formats;
    Alcotest.test_case "time conversions" `Quick test_time_conversions;
  ]

(* --- Ascii_chart --- *)

module Ascii_chart = Tq_util.Ascii_chart

let test_chart_renders_series () =
  let chart =
    Ascii_chart.render ~title:"T" ~width:20 ~height:8
      [
        { Ascii_chart.label = "up"; points = [ (0.0, 1.0); (1.0, 2.0); (2.0, 3.0) ] };
        { Ascii_chart.label = "down"; points = [ (0.0, 3.0); (1.0, 2.5); (2.0, 1.0) ] };
      ]
  in
  Alcotest.(check bool) "non-empty" true (String.length chart > 0);
  Alcotest.(check bool) "has title" true
    (String.length chart > 5 && String.sub chart 0 4 = ".. T");
  Alcotest.(check bool) "has legend" true
    (let has_sub needle =
       let n = String.length chart and m = String.length needle in
       let rec go i = i + m <= n && (String.sub chart i m = needle || go (i + 1)) in
       go 0
     in
     has_sub "* up" && has_sub "o down")

let test_chart_empty_when_insufficient () =
  check Alcotest.string "empty series" ""
    (Ascii_chart.render ~title:"T" [ { Ascii_chart.label = "x"; points = [] } ]);
  check Alcotest.string "single point" ""
    (Ascii_chart.render ~title:"T" [ { Ascii_chart.label = "x"; points = [ (1.0, 1.0) ] } ])

let test_chart_log_drops_nonpositive () =
  let chart =
    Ascii_chart.render ~title:"T" ~log_y:true
      [ { Ascii_chart.label = "x"; points = [ (0.0, 0.0); (1.0, 10.0); (2.0, 100.0) ] } ]
  in
  Alcotest.(check bool) "still renders from positive points" true (String.length chart > 0)

let test_chart_plot_table () =
  let t = Text_table.create ~title:"curve" ~columns:[ "load"; "sys-a"; "sys-b" ] in
  Text_table.add_row t [ "30%"; "1.5"; "2.5" ];
  Text_table.add_row t [ "60%"; "3.0"; "-" ];
  Text_table.add_row t [ "90%"; "9.0"; "4.5" ];
  let chart = Ascii_chart.plot_table t in
  Alcotest.(check bool) "renders" true (String.length chart > 0)

let test_chart_plot_table_non_numeric () =
  let t = Text_table.create ~title:"names" ~columns:[ "who"; "what" ] in
  Text_table.add_row t [ "alice"; "bob" ];
  Text_table.add_row t [ "carol"; "dan" ];
  check Alcotest.string "unplottable table is empty" "" (Ascii_chart.plot_table t)

let chart_suite =
  [
    Alcotest.test_case "chart renders" `Quick test_chart_renders_series;
    Alcotest.test_case "chart empty cases" `Quick test_chart_empty_when_insufficient;
    Alcotest.test_case "chart log drops" `Quick test_chart_log_drops_nonpositive;
    Alcotest.test_case "chart from table" `Quick test_chart_plot_table;
    Alcotest.test_case "chart non-numeric" `Quick test_chart_plot_table_non_numeric;
  ]

let suite = suite @ chart_suite

(* --- Bench_diff: the regression-gate engine behind tq_bench_diff --- *)

module Json = Tq_util.Json
module Bench_diff = Tq_util.Bench_diff

let parse_json label s =
  match Json.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "%s: %s" label e

let diff ?config base fresh =
  Bench_diff.compare ?config ~baseline:(parse_json "baseline" base)
    ~fresh:(parse_json "fresh" fresh) ()

let fails findings =
  List.filter_map
    (fun (f : Bench_diff.finding) ->
      if f.Bench_diff.severity = Bench_diff.Fail then Some f.Bench_diff.path else None)
    findings

let bd_contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let base_report =
  {|{"schema_version": 2, "generated_at": "2026-01-01T00:00:00Z",
     "benchmark": "x", "throughput": 100.0,
     "latency": {"p50_us": 10.0, "p99_us": 40.0}}|}

let test_bench_diff_tolerances () =
  (* within the 25% default everywhere: passes, generated_at ignored *)
  let f1 =
    {|{"schema_version": 2, "generated_at": "2026-02-02T00:00:00Z",
       "benchmark": "x", "throughput": 110.0,
       "latency": {"p50_us": 11.0, "p99_us": 41.0}}|}
  in
  Alcotest.(check bool) "noise within tolerance passes" true
    (Bench_diff.passed (diff base_report f1));
  (* a 3x regression on one leaf fails, and names the dotted path *)
  let f2 =
    {|{"schema_version": 2, "generated_at": "x", "benchmark": "x",
       "throughput": 100.0, "latency": {"p50_us": 30.0, "p99_us": 40.0}}|}
  in
  check Alcotest.(list string) "regression named by path" [ "latency.p50_us" ]
    (fails (diff base_report f2));
  (* a per-metric glob rule loosens exactly the matched paths *)
  let config =
    { Bench_diff.default_config with Bench_diff.rules = [ ("latency.*", 5.0) ] }
  in
  Alcotest.(check bool) "rule absorbs the regression" true
    (Bench_diff.passed (diff ~config base_report f2));
  (* render ends in the verdict line either way *)
  Alcotest.(check bool) "render says FAIL" true
    (bd_contains (Bench_diff.render (diff base_report f2)) "FAIL");
  Alcotest.(check bool) "render says PASS" true
    (bd_contains (Bench_diff.render (diff base_report f1)) "PASS")

let test_bench_diff_bounds_and_shape () =
  (* bounds gate the fresh value even when the diff is tiny *)
  let config =
    { Bench_diff.default_config with Bench_diff.bounds = [ ("throughput", 50.0) ] }
  in
  Alcotest.(check bool) "hard bound fails a within-tolerance value" false
    (Bench_diff.passed (diff ~config base_report base_report));
  (* a leaf the fresh report lost is a failure *)
  let lost =
    {|{"schema_version": 2, "benchmark": "x", "throughput": 100.0,
       "latency": {"p50_us": 10.0}}|}
  in
  check Alcotest.(list string) "missing leaf fails" [ "latency.p99_us" ]
    (fails (diff base_report lost));
  (* a leaf only the fresh report has is a warning, not a failure *)
  let extra =
    {|{"schema_version": 2, "benchmark": "x", "throughput": 100.0,
       "latency": {"p50_us": 10.0, "p99_us": 40.0, "p999_us": 90.0}}|}
  in
  let findings = diff base_report extra in
  Alcotest.(check bool) "extra leaf still passes" true (Bench_diff.passed findings);
  Alcotest.(check bool) "but is reported" true
    (List.exists
       (fun (f : Bench_diff.finding) -> f.Bench_diff.severity = Bench_diff.Warn)
       findings);
  (* strings must match exactly *)
  let renamed =
    {|{"schema_version": 2, "benchmark": "y", "throughput": 100.0,
       "latency": {"p50_us": 10.0, "p99_us": 40.0}}|}
  in
  check Alcotest.(list string) "string drift fails" [ "benchmark" ]
    (fails (diff base_report renamed))

let test_bench_diff_schema_refusal () =
  (* mismatched schema versions are refused outright *)
  let v3 = {|{"schema_version": 3, "benchmark": "x", "throughput": 100.0}|} in
  check Alcotest.(list string) "version mismatch refused" [ "schema_version" ]
    (fails (diff base_report v3));
  (* and so is a report with no schema_version at all *)
  let bare = {|{"benchmark": "x", "throughput": 100.0}|} in
  check Alcotest.(list string) "missing version refused" [ "schema_version" ]
    (fails (diff bare base_report));
  check Alcotest.(list string) "missing fresh version refused" [ "schema_version" ]
    (fails (diff base_report bare))

let test_glob_match () =
  let m p s = Bench_diff.glob_match p s in
  Alcotest.(check bool) "star matches anything" true (m "*" "latency.p99_us");
  Alcotest.(check bool) "star matches empty" true (m "*" "");
  Alcotest.(check bool) "literal must match" false (m "latency" "throughput");
  Alcotest.(check bool) "infix star" true
    (m "disabled*minor_words*" "disabled_span_minor_words_per_run");
  Alcotest.(check bool) "infix star rejects" false
    (m "disabled*minor_words*" "disabled_span_ns_per_run");
  Alcotest.(check bool) "two stars" true (m "*stage*sum*" "stages.parse.sum_ns");
  Alcotest.(check bool) "anchored suffix" false (m "*.p99_us" "latency.p99_us_extra")

let bench_diff_suite =
  [
    Alcotest.test_case "bench diff tolerances" `Quick test_bench_diff_tolerances;
    Alcotest.test_case "bench diff bounds + shape" `Quick test_bench_diff_bounds_and_shape;
    Alcotest.test_case "bench diff schema refusal" `Quick test_bench_diff_schema_refusal;
    Alcotest.test_case "bench diff glob" `Quick test_glob_match;
  ]

let suite = suite @ bench_diff_suite
