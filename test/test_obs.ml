(* Tests for tq_obs: the bounded ring-buffer tracer, counter registry,
   Chrome trace exporter, text dump and time-series store. *)

module Trace = Tq_obs.Trace
module Event = Tq_obs.Event
module Counters = Tq_obs.Counters
module Timeseries = Tq_obs.Timeseries
module Chrome_trace = Tq_obs.Chrome_trace
module Latency = Tq_obs.Latency
module Text_dump = Tq_obs.Text_dump

let check = Alcotest.check

let yield id = Event.Yield { job_id = id }

let job_ids tr =
  List.map (fun (r : Trace.record) -> Event.job_id r.event) (Trace.to_list tr)

(* --- trace ring buffer --- *)

let test_trace_ordering () =
  let tr = Trace.create ~capacity:8 () in
  Alcotest.(check bool) "fresh tracer enabled" true (Trace.enabled tr);
  for i = 1 to 5 do
    Trace.record tr ~ts_ns:(i * 10) ~lane:(Event.Worker 0) (yield i)
  done;
  check Alcotest.int "length" 5 (Trace.length tr);
  check Alcotest.int "total" 5 (Trace.total tr);
  check Alcotest.int "dropped" 0 (Trace.dropped tr);
  check Alcotest.(list int) "oldest first" [ 1; 2; 3; 4; 5 ] (job_ids tr);
  let seqs = List.map (fun (r : Trace.record) -> r.Trace.seq) (Trace.to_list tr) in
  check Alcotest.(list int) "monotone seq" [ 0; 1; 2; 3; 4 ] seqs

let test_trace_wraparound () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.record tr ~ts_ns:i ~lane:Event.Global (yield i)
  done;
  check Alcotest.int "buffer stays bounded" 4 (Trace.length tr);
  check Alcotest.int "total counts everything" 10 (Trace.total tr);
  check Alcotest.int "dropped = overwritten" 6 (Trace.dropped tr);
  check Alcotest.(list int) "newest survive, oldest first" [ 7; 8; 9; 10 ] (job_ids tr);
  Trace.clear tr;
  check Alcotest.int "clear empties" 0 (Trace.length tr);
  check Alcotest.int "clear resets total" 0 (Trace.total tr)

let test_trace_null_and_disable () =
  check Alcotest.int "null records nothing" 0
    (Trace.record Trace.null ~ts_ns:1 ~lane:Event.Global (yield 1);
     Trace.total Trace.null);
  Alcotest.(check bool) "null disabled" false (Trace.enabled Trace.null);
  Alcotest.check_raises "null cannot be enabled"
    (Invalid_argument "Trace.set_enabled: null tracer") (fun () ->
      Trace.set_enabled Trace.null true);
  let tr = Trace.create ~capacity:4 () in
  Trace.set_enabled tr false;
  Trace.record tr ~ts_ns:1 ~lane:Event.Global (yield 1);
  check Alcotest.int "disabled tracer drops" 0 (Trace.total tr);
  Trace.set_enabled tr true;
  Trace.record tr ~ts_ns:2 ~lane:Event.Global (yield 2);
  check Alcotest.int "re-enabled records" 1 (Trace.total tr)

(* --- counter registry --- *)

let test_counters_registry () =
  let reg = Counters.create () in
  let c = Counters.counter reg "dispatch.decisions" in
  Counters.incr c;
  Counters.incr c;
  Counters.add c 3;
  check Alcotest.int "counter accumulates" 5 (Counters.count c);
  let c' = Counters.counter reg "dispatch.decisions" in
  Counters.incr c';
  check Alcotest.int "same name, same cell" 6 (Counters.count c);
  check Alcotest.int "find_count" 6 (Counters.find_count reg "dispatch.decisions");
  check Alcotest.int "find_count missing = 0" 0 (Counters.find_count reg "nope");
  let g = Counters.gauge reg "queue.depth" in
  Counters.set g 42.0;
  check (Alcotest.float 1e-9) "gauge holds last" 42.0 (Counters.value g);
  Alcotest.(check bool) "kind mismatch rejected" true
    (try
       ignore (Counters.gauge reg "dispatch.decisions");
       false
     with Invalid_argument _ -> true)

let test_counters_dist () =
  let reg = Counters.create () in
  let d = Counters.dist reg "worker.overshoot_ns" in
  List.iter (Counters.observe d) [ 1; 3; 3; 100 ];
  check Alcotest.int "n" 4 (Counters.dist_count d);
  check (Alcotest.float 1e-9) "mean" 26.75 (Counters.dist_mean d);
  check Alcotest.int "max" 100 (Counters.dist_max d);
  let dump = Counters.dump reg in
  Alcotest.(check bool) "dump names the dist" true
    (String.length dump > 0
    && String.sub dump 0 (String.length "worker.overshoot_ns") = "worker.overshoot_ns")

(* --- Chrome trace exporter: golden output --- *)

let test_chrome_trace_golden () =
  let tr = Trace.create ~capacity:16 () in
  Trace.record tr ~ts_ns:1_000 ~lane:(Event.Dispatcher 0)
    (Event.Job_arrival { job_id = 7; class_idx = 0; service_ns = 800 });
  Trace.record tr ~ts_ns:1_200 ~lane:(Event.Dispatcher 0)
    (Event.Dispatch { job_id = 7; worker = 2; policy = "jsq-msq"; queue_len = 0 });
  Trace.record tr ~ts_ns:1_500 ~lane:(Event.Worker 2)
    (Event.Quantum_start { job_id = 7; quantum_ns = 2_000 });
  Trace.record tr ~ts_ns:2_300 ~lane:(Event.Worker 2)
    (Event.Quantum_end { job_id = 7; ran_ns = 800; finished = true });
  Trace.record tr ~ts_ns:2_300 ~lane:(Event.Worker 2)
    (Event.Completion { job_id = 7; sojourn_ns = 1_300 });
  let expected =
    "{\"traceEvents\":[\n\
     {\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"tq_sim\"}},\n\
     {\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"dispatcher 0\"}},\n\
     {\"ph\":\"M\",\"pid\":0,\"tid\":102,\"name\":\"thread_name\",\"args\":{\"name\":\"worker 2\"}},\n\
     {\"ph\":\"i\",\"pid\":0,\"tid\":1,\"ts\":1.000,\"s\":\"t\",\"name\":\"job_arrival\",\"args\":{\"job\":7,\"class\":0,\"service_ns\":800}},\n\
     {\"ph\":\"i\",\"pid\":0,\"tid\":1,\"ts\":1.200,\"s\":\"t\",\"name\":\"dispatch\",\"args\":{\"job\":7,\"worker\":2,\"policy\":\"jsq-msq\",\"queue_len\":0}},\n\
     {\"ph\":\"X\",\"pid\":0,\"tid\":102,\"ts\":1.500,\"dur\":0.800,\"name\":\"job 7\",\"args\":{\"job\":7,\"ran_ns\":800,\"finished\":true}},\n\
     {\"ph\":\"i\",\"pid\":0,\"tid\":102,\"ts\":2.300,\"s\":\"t\",\"name\":\"completion\",\"args\":{\"job\":7,\"sojourn_ns\":1300}}\n\
     ]}\n"
  in
  check Alcotest.string "golden chrome json" expected (Chrome_trace.export tr)

let test_text_dump () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.record tr ~ts_ns:(i * 100) ~lane:(Event.Worker 1) (yield i)
  done;
  let s = Text_dump.dump tr in
  Alcotest.(check bool) "header mentions totals" true
    (String.length s > 0
    && String.sub s 0 (String.length "trace: 6 events") = "trace: 6 events");
  let limited = Text_dump.dump ~limit:2 tr in
  let lines = String.split_on_char '\n' (String.trim limited) in
  (* header + elision marker + 2 event lines *)
  check Alcotest.int "limit keeps last events" 4 (List.length lines)

(* --- time series --- *)

let test_timeseries_csv () =
  let ts = Timeseries.create ~series:[ "queue_depth"; "busy" ] in
  Timeseries.push ts ~t_ns:10_000 [| 3.0; 2.0 |];
  Timeseries.push ts ~t_ns:20_000 [| 1.0; 4.0 |];
  check Alcotest.int "length" 2 (Timeseries.length ts);
  check Alcotest.(list string) "names" [ "queue_depth"; "busy" ] (Timeseries.names ts);
  let t_ns, row = Timeseries.get ts 1 in
  check Alcotest.int "get time" 20_000 t_ns;
  check (Alcotest.float 1e-9) "get value" 4.0 row.(1);
  check Alcotest.string "csv"
    "t_ns,queue_depth,busy\n10000,3,2\n20000,1,4\n" (Timeseries.to_csv ts);
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Timeseries.push: row width mismatch") (fun () ->
      Timeseries.push ts ~t_ns:30_000 [| 1.0 |])

let test_timeseries_growth () =
  let ts = Timeseries.create ~series:[ "v" ] in
  for i = 1 to 1_000 do
    Timeseries.push ts ~t_ns:i [| float_of_int i |]
  done;
  check Alcotest.int "grows past initial capacity" 1_000 (Timeseries.length ts);
  let t_ns, row = Timeseries.get ts 999 in
  check Alcotest.int "last time" 1_000 t_ns;
  check (Alcotest.float 1e-9) "last value" 1_000.0 row.(0)

(* --- Latency: the HDR-style registry behind tq_load --- *)

let test_latency_percentiles () =
  let reg = Latency.create () in
  let r = Latency.recorder reg "rpc" in
  for i = 1 to 10_000 do
    Latency.record r (i * 1_000)
  done;
  check Alcotest.int "count" 10_000 (Latency.count r);
  let within pct expect got =
    let err = Float.abs (float_of_int got -. expect) /. expect in
    if err > 0.05 then
      Alcotest.failf "%s: expected ~%.0f, got %d (err %.3f)" pct expect got err
  in
  within "p50" 5_000_000.0 (Latency.percentile r 50.0);
  within "p99" 9_900_000.0 (Latency.percentile r 99.0);
  within "p99.9" 9_990_000.0 (Latency.percentile r 99.9);
  within "mean" 5_000_500.0 (int_of_float (Latency.mean r));
  within "max" 10_000_000.0 (Latency.max_ns r)

let test_latency_registry () =
  let reg = Latency.create () in
  let a = Latency.recorder reg "alpha" in
  let b = Latency.recorder reg "beta" in
  Latency.record a 10;
  Latency.record b 20;
  Latency.record b 30;
  check Alcotest.bool "recorder is cached" true (Latency.recorder reg "alpha" == a);
  check
    Alcotest.(list string)
    "sorted names" [ "alpha"; "beta" ]
    (List.map fst (Latency.to_alist reg));
  check Alcotest.int "empty percentile" 0 (Latency.percentile (Latency.recorder reg "nope") 50.0);
  Latency.clear b;
  check Alcotest.int "cleared" 0 (Latency.count b);
  check Alcotest.int "other survives clear" 1 (Latency.count a);
  Latency.clear_all reg;
  check Alcotest.int "clear_all" 0 (Latency.count a)

let test_latency_clamps () =
  let reg = Latency.create ~max_ns:1_000 () in
  let r = Latency.recorder reg "clamp" in
  Latency.record r (-5);
  Latency.record r 1_000_000;
  check Alcotest.int "count" 2 (Latency.count r);
  check Alcotest.bool "oversized sample clamps to max" true (Latency.max_ns r <= 1_000);
  let json = Latency.to_json reg in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "json mentions recorder" true (contains json "\"clamp\"")

let suite =
  [
    Alcotest.test_case "trace ordering" `Quick test_trace_ordering;
    Alcotest.test_case "trace wraparound" `Quick test_trace_wraparound;
    Alcotest.test_case "null + disable" `Quick test_trace_null_and_disable;
    Alcotest.test_case "counter registry" `Quick test_counters_registry;
    Alcotest.test_case "overshoot dist" `Quick test_counters_dist;
    Alcotest.test_case "chrome trace golden" `Quick test_chrome_trace_golden;
    Alcotest.test_case "text dump" `Quick test_text_dump;
    Alcotest.test_case "timeseries csv" `Quick test_timeseries_csv;
    Alcotest.test_case "timeseries growth" `Quick test_timeseries_growth;
    Alcotest.test_case "latency percentiles" `Quick test_latency_percentiles;
    Alcotest.test_case "latency registry" `Quick test_latency_registry;
    Alcotest.test_case "latency clamps + json" `Quick test_latency_clamps;
  ]
