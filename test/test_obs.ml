(* Tests for tq_obs: the bounded ring-buffer tracer, counter registry,
   Chrome trace exporter, text dump and time-series store. *)

module Trace = Tq_obs.Trace
module Event = Tq_obs.Event
module Counters = Tq_obs.Counters
module Timeseries = Tq_obs.Timeseries
module Chrome_trace = Tq_obs.Chrome_trace
module Latency = Tq_obs.Latency
module Text_dump = Tq_obs.Text_dump
module Span = Tq_obs.Span
module Expo = Tq_obs.Expo
module Slo = Tq_obs.Slo

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* A strict-enough JSON well-formedness checker for exporter output:
   consumes one value, returns the index after it, raises Failure on
   malformed input.  Values: objects, arrays, strings (with escapes),
   numbers, true/false/null. *)
let json_parse s =
  let n = String.length s in
  let fail i msg = failwith (Printf.sprintf "json at %d: %s" i msg) in
  let rec skip_ws i = if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t' || s.[i] = '\r') then skip_ws (i + 1) else i in
  let rec value i =
    let i = skip_ws i in
    if i >= n then fail i "eof"
    else
      match s.[i] with
      | '{' -> obj (skip_ws (i + 1)) true
      | '[' -> arr (skip_ws (i + 1)) true
      | '"' -> string_ (i + 1)
      | 't' -> lit i "true"
      | 'f' -> lit i "false"
      | 'n' -> lit i "null"
      | '-' | '0' .. '9' -> number i
      | c -> fail i (Printf.sprintf "unexpected %c" c)
  and lit i w =
    if i + String.length w <= n && String.sub s i (String.length w) = w then
      i + String.length w
    else fail i ("expected " ^ w)
  and number i =
    let j = ref (if s.[i] = '-' then i + 1 else i) in
    while !j < n && (match s.[!j] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false) do
      incr j
    done;
    if !j = i then fail i "empty number" else !j
  and string_ i =
    if i >= n then fail i "unterminated string"
    else if s.[i] = '"' then i + 1
    else if s.[i] = '\\' then string_ (i + 2)
    else string_ (i + 1)
  and obj i first =
    if i < n && s.[i] = '}' then i + 1
    else begin
      let i = if first then i else skip_ws i in
      if i >= n || s.[i] <> '"' then fail i "object key";
      let i = skip_ws (string_ (i + 1)) in
      if i >= n || s.[i] <> ':' then fail i "colon";
      let i = skip_ws (value (i + 1)) in
      if i < n && s.[i] = ',' then obj (skip_ws (i + 1)) false
      else if i < n && s.[i] = '}' then i + 1
      else fail i "object sep"
    end
  and arr i first =
    if i < n && s.[i] = ']' then i + 1
    else begin
      let i = if first then i else i in
      let i = skip_ws (value i) in
      if i < n && s.[i] = ',' then arr (skip_ws (i + 1)) false
      else if i < n && s.[i] = ']' then i + 1
      else fail i "array sep"
    end
  in
  let i = skip_ws (value 0) in
  let i = skip_ws i in
  if i <> n then failwith (Printf.sprintf "json: %d trailing bytes" (n - i))

let json_well_formed name s =
  match json_parse s with
  | () -> ()
  | exception Failure msg -> Alcotest.failf "%s: %s" name msg

let yield id = Event.Yield { job_id = id }

let job_ids tr =
  List.map (fun (r : Trace.record) -> Event.job_id r.event) (Trace.to_list tr)

(* --- trace ring buffer --- *)

let test_trace_ordering () =
  let tr = Trace.create ~capacity:8 () in
  Alcotest.(check bool) "fresh tracer enabled" true (Trace.enabled tr);
  for i = 1 to 5 do
    Trace.record tr ~ts_ns:(i * 10) ~lane:(Event.Worker 0) (yield i)
  done;
  check Alcotest.int "length" 5 (Trace.length tr);
  check Alcotest.int "total" 5 (Trace.total tr);
  check Alcotest.int "dropped" 0 (Trace.dropped tr);
  check Alcotest.(list int) "oldest first" [ 1; 2; 3; 4; 5 ] (job_ids tr);
  let seqs = List.map (fun (r : Trace.record) -> r.Trace.seq) (Trace.to_list tr) in
  check Alcotest.(list int) "monotone seq" [ 0; 1; 2; 3; 4 ] seqs

let test_trace_wraparound () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.record tr ~ts_ns:i ~lane:Event.Global (yield i)
  done;
  check Alcotest.int "buffer stays bounded" 4 (Trace.length tr);
  check Alcotest.int "total counts everything" 10 (Trace.total tr);
  check Alcotest.int "dropped = overwritten" 6 (Trace.dropped tr);
  check Alcotest.(list int) "newest survive, oldest first" [ 7; 8; 9; 10 ] (job_ids tr);
  Trace.clear tr;
  check Alcotest.int "clear empties" 0 (Trace.length tr);
  check Alcotest.int "clear resets total" 0 (Trace.total tr)

let test_trace_null_and_disable () =
  check Alcotest.int "null records nothing" 0
    (Trace.record Trace.null ~ts_ns:1 ~lane:Event.Global (yield 1);
     Trace.total Trace.null);
  Alcotest.(check bool) "null disabled" false (Trace.enabled Trace.null);
  Alcotest.check_raises "null cannot be enabled"
    (Invalid_argument "Trace.set_enabled: null tracer") (fun () ->
      Trace.set_enabled Trace.null true);
  let tr = Trace.create ~capacity:4 () in
  Trace.set_enabled tr false;
  Trace.record tr ~ts_ns:1 ~lane:Event.Global (yield 1);
  check Alcotest.int "disabled tracer drops" 0 (Trace.total tr);
  Trace.set_enabled tr true;
  Trace.record tr ~ts_ns:2 ~lane:Event.Global (yield 2);
  check Alcotest.int "re-enabled records" 1 (Trace.total tr)

(* --- counter registry --- *)

let test_counters_registry () =
  let reg = Counters.create () in
  let c = Counters.counter reg "dispatch.decisions" in
  Counters.incr c;
  Counters.incr c;
  Counters.add c 3;
  check Alcotest.int "counter accumulates" 5 (Counters.count c);
  let c' = Counters.counter reg "dispatch.decisions" in
  Counters.incr c';
  check Alcotest.int "same name, same cell" 6 (Counters.count c);
  check Alcotest.int "find_count" 6 (Counters.find_count reg "dispatch.decisions");
  check Alcotest.int "find_count missing = 0" 0 (Counters.find_count reg "nope");
  let g = Counters.gauge reg "queue.depth" in
  Counters.set g 42.0;
  check (Alcotest.float 1e-9) "gauge holds last" 42.0 (Counters.value g);
  Alcotest.(check bool) "kind mismatch rejected" true
    (try
       ignore (Counters.gauge reg "dispatch.decisions");
       false
     with Invalid_argument _ -> true)

let test_counters_dist () =
  let reg = Counters.create () in
  let d = Counters.dist reg "worker.overshoot_ns" in
  List.iter (Counters.observe d) [ 1; 3; 3; 100 ];
  check Alcotest.int "n" 4 (Counters.dist_count d);
  check (Alcotest.float 1e-9) "mean" 26.75 (Counters.dist_mean d);
  check Alcotest.int "max" 100 (Counters.dist_max d);
  let dump = Counters.dump reg in
  Alcotest.(check bool) "dump names the dist" true
    (String.length dump > 0
    && String.sub dump 0 (String.length "worker.overshoot_ns") = "worker.overshoot_ns")

(* --- Chrome trace exporter: golden output --- *)

let test_chrome_trace_golden () =
  let tr = Trace.create ~capacity:16 () in
  Trace.record tr ~ts_ns:1_000 ~lane:(Event.Dispatcher 0)
    (Event.Job_arrival { job_id = 7; class_idx = 0; service_ns = 800 });
  Trace.record tr ~ts_ns:1_200 ~lane:(Event.Dispatcher 0)
    (Event.Dispatch { job_id = 7; worker = 2; policy = "jsq-msq"; queue_len = 0 });
  Trace.record tr ~ts_ns:1_500 ~lane:(Event.Worker 2)
    (Event.Quantum_start { job_id = 7; quantum_ns = 2_000 });
  Trace.record tr ~ts_ns:2_300 ~lane:(Event.Worker 2)
    (Event.Quantum_end { job_id = 7; ran_ns = 800; finished = true });
  Trace.record tr ~ts_ns:2_300 ~lane:(Event.Worker 2)
    (Event.Completion { job_id = 7; sojourn_ns = 1_300 });
  let expected =
    "{\"traceEvents\":[\n\
     {\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"tq_sim\"}},\n\
     {\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"dispatcher 0\"}},\n\
     {\"ph\":\"M\",\"pid\":0,\"tid\":102,\"name\":\"thread_name\",\"args\":{\"name\":\"worker 2\"}},\n\
     {\"ph\":\"i\",\"pid\":0,\"tid\":1,\"ts\":1.000,\"s\":\"t\",\"name\":\"job_arrival\",\"args\":{\"job\":7,\"class\":0,\"service_ns\":800}},\n\
     {\"ph\":\"i\",\"pid\":0,\"tid\":1,\"ts\":1.200,\"s\":\"t\",\"name\":\"dispatch\",\"args\":{\"job\":7,\"worker\":2,\"policy\":\"jsq-msq\",\"queue_len\":0}},\n\
     {\"ph\":\"X\",\"pid\":0,\"tid\":102,\"ts\":1.500,\"dur\":0.800,\"name\":\"job 7\",\"args\":{\"job\":7,\"ran_ns\":800,\"finished\":true}},\n\
     {\"ph\":\"i\",\"pid\":0,\"tid\":102,\"ts\":2.300,\"s\":\"t\",\"name\":\"completion\",\"args\":{\"job\":7,\"sojourn_ns\":1300}}\n\
     ]}\n"
  in
  check Alcotest.string "golden chrome json" expected (Chrome_trace.export tr)

let test_text_dump () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.record tr ~ts_ns:(i * 100) ~lane:(Event.Worker 1) (yield i)
  done;
  let s = Text_dump.dump tr in
  Alcotest.(check bool) "header mentions totals" true
    (String.length s > 0
    && String.sub s 0 (String.length "trace: 6 events") = "trace: 6 events");
  let limited = Text_dump.dump ~limit:2 tr in
  let lines = String.split_on_char '\n' (String.trim limited) in
  (* header + elision marker + 2 event lines *)
  check Alcotest.int "limit keeps last events" 4 (List.length lines)

(* --- time series --- *)

let test_timeseries_csv () =
  let ts = Timeseries.create ~series:[ "queue_depth"; "busy" ] in
  Timeseries.push ts ~t_ns:10_000 [| 3.0; 2.0 |];
  Timeseries.push ts ~t_ns:20_000 [| 1.0; 4.0 |];
  check Alcotest.int "length" 2 (Timeseries.length ts);
  check Alcotest.(list string) "names" [ "queue_depth"; "busy" ] (Timeseries.names ts);
  let t_ns, row = Timeseries.get ts 1 in
  check Alcotest.int "get time" 20_000 t_ns;
  check (Alcotest.float 1e-9) "get value" 4.0 row.(1);
  check Alcotest.string "csv"
    "t_ns,queue_depth,busy\n10000,3,2\n20000,1,4\n" (Timeseries.to_csv ts);
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Timeseries.push: row width mismatch") (fun () ->
      Timeseries.push ts ~t_ns:30_000 [| 1.0 |])

let test_timeseries_growth () =
  let ts = Timeseries.create ~series:[ "v" ] in
  for i = 1 to 1_000 do
    Timeseries.push ts ~t_ns:i [| float_of_int i |]
  done;
  check Alcotest.int "grows past initial capacity" 1_000 (Timeseries.length ts);
  let t_ns, row = Timeseries.get ts 999 in
  check Alcotest.int "last time" 1_000 t_ns;
  check (Alcotest.float 1e-9) "last value" 1_000.0 row.(0)

(* --- Latency: the HDR-style registry behind tq_load --- *)

let test_latency_percentiles () =
  let reg = Latency.create () in
  let r = Latency.recorder reg "rpc" in
  for i = 1 to 10_000 do
    Latency.record r (i * 1_000)
  done;
  check Alcotest.int "count" 10_000 (Latency.count r);
  let within pct expect got =
    let err = Float.abs (float_of_int got -. expect) /. expect in
    if err > 0.05 then
      Alcotest.failf "%s: expected ~%.0f, got %d (err %.3f)" pct expect got err
  in
  within "p50" 5_000_000.0 (Latency.percentile r 50.0);
  within "p99" 9_900_000.0 (Latency.percentile r 99.0);
  within "p99.9" 9_990_000.0 (Latency.percentile r 99.9);
  within "mean" 5_000_500.0 (int_of_float (Latency.mean r));
  within "max" 10_000_000.0 (Latency.max_ns r)

let test_latency_registry () =
  let reg = Latency.create () in
  let a = Latency.recorder reg "alpha" in
  let b = Latency.recorder reg "beta" in
  Latency.record a 10;
  Latency.record b 20;
  Latency.record b 30;
  check Alcotest.bool "recorder is cached" true (Latency.recorder reg "alpha" == a);
  check
    Alcotest.(list string)
    "sorted names" [ "alpha"; "beta" ]
    (List.map fst (Latency.to_alist reg));
  check Alcotest.int "empty percentile" 0 (Latency.percentile (Latency.recorder reg "nope") 50.0);
  Latency.clear b;
  check Alcotest.int "cleared" 0 (Latency.count b);
  check Alcotest.int "other survives clear" 1 (Latency.count a);
  Latency.clear_all reg;
  check Alcotest.int "clear_all" 0 (Latency.count a)

let test_latency_clamps () =
  let reg = Latency.create ~max_ns:1_000 () in
  let r = Latency.recorder reg "clamp" in
  Latency.record r (-5);
  Latency.record r 1_000_000;
  check Alcotest.int "count" 2 (Latency.count r);
  check Alcotest.bool "oversized sample clamps to max" true (Latency.max_ns r <= 1_000);
  let json = Latency.to_json reg in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "json mentions recorder" true (contains json "\"clamp\"")

(* --- latency: percentile properties + the debug owner check --- *)

let test_latency_percentile_props =
  qtest "latency percentile monotone and sample-bounded"
    QCheck.(list_of_size Gen.(int_range 1 120) (int_range 0 2_000_000))
    (fun samples ->
      (* the shrinker may drop below the generator's size floor *)
      QCheck.assume (samples <> []);
      let reg = Latency.create ~max_ns:4_000_000 () in
      let r = Latency.recorder reg "prop" in
      List.iter (Latency.record r) samples;
      let lo = List.fold_left min max_int samples in
      let hi = List.fold_left max 0 samples in
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 99.9; 100.0 ] in
      let vals = List.map (Latency.percentile r) ps in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      (* a percentile is the containing bucket's lower bound, so it may
         undershoot the smallest sample by one bucket width (1/32
         relative error); it never exceeds the largest sample *)
      let lo_bound = lo - (lo / 32) - 1 in
      monotone vals && List.for_all (fun v -> v >= lo_bound && v <= hi) vals)

let test_latency_owner_check () =
  let reg = Latency.create () in
  let r = Latency.recorder reg "owned" in
  Fun.protect
    ~finally:(fun () -> Latency.set_owner_check false)
    (fun () ->
      Latency.set_owner_check true;
      Latency.record r 10;
      let off_domain =
        Domain.spawn (fun () ->
            match Latency.record r 20 with
            | () -> `Recorded
            | exception Invalid_argument _ -> `Raised)
      in
      (match Domain.join off_domain with
      | `Raised -> ()
      | `Recorded -> Alcotest.fail "off-domain record must raise under the owner check");
      let handed_off =
        Domain.spawn (fun () ->
            Latency.adopt r;
            Latency.record r 30;
            Latency.count r)
      in
      check Alcotest.int "adopt legitimises the hand-off" 2 (Domain.join handed_off);
      (* ownership moved with the adopt: the creating domain is now the
         foreign one *)
      (match Latency.record r 40 with
      | () -> Alcotest.fail "creator must be rejected after the hand-off"
      | exception Invalid_argument _ -> ());
      Latency.adopt r;
      Latency.record r 50;
      check Alcotest.int "only owner records landed" 3 (Latency.count r))

(* --- multi-domain counter aggregation --- *)

let test_counters_merged () =
  let a = Counters.create () and b = Counters.create () in
  Counters.add (Counters.counter a "serve.parsed") 5;
  Counters.add (Counters.counter b "serve.parsed") 7;
  Counters.add (Counters.counter b "serve.shed") 2;
  Counters.set (Counters.gauge a "ring.occupancy") 3.0;
  Counters.set (Counters.gauge b "ring.occupancy") 4.5;
  List.iter (Counters.observe (Counters.dist a "quantum_ns")) [ 1; 2; 100 ];
  List.iter (Counters.observe (Counters.dist b "quantum_ns")) [ 3; 200 ];
  let m = Counters.merged [ a; b ] in
  check Alcotest.int "counters sum" 12 (Counters.find_count m "serve.parsed");
  check Alcotest.int "one-sided counter survives" 2 (Counters.find_count m "serve.shed");
  (match Counters.find m "ring.occupancy" with
  | Some (Counters.Gauge g) ->
      check (Alcotest.float 1e-9) "gauges sum to the system total" 7.5 (Counters.value g)
  | _ -> Alcotest.fail "merged gauge missing");
  (match Counters.find m "quantum_ns" with
  | Some (Counters.Dist d) ->
      check Alcotest.int "dist counts sum" 5 (Counters.dist_count d);
      check Alcotest.int "dist sums add" 306 (Counters.dist_sum d);
      check Alcotest.int "max of max" 200 (Counters.dist_max d)
  | _ -> Alcotest.fail "merged dist missing");
  (* the merge is a snapshot, not an alias *)
  Counters.incr (Counters.counter a "serve.parsed");
  check Alcotest.int "snapshot is a copy" 12 (Counters.find_count m "serve.parsed");
  let c = Counters.create () in
  Counters.set (Counters.gauge c "serve.shed") 1.0;
  Alcotest.(check bool) "kind clash across registries rejected" true
    (try
       ignore (Counters.merged [ b; c ]);
       false
     with Invalid_argument _ -> true)

(* --- cross-domain request spans --- *)

let test_span_record_and_merge () =
  let spans = Span.create ~capacity_per_sink:4 () in
  Alcotest.(check bool) "enabled" true (Span.enabled spans);
  let disp = Span.register spans (Event.Dispatcher 0) in
  let wrk = Span.register spans (Event.Worker 1) in
  Span.record disp ~req_id:1 ~phase:Span.Dispatch ~start_ns:100 ~dur_ns:10 ~arg:1;
  Span.record wrk ~req_id:1 ~phase:Span.Quantum ~start_ns:150 ~dur_ns:40 ~arg:1;
  Span.record disp ~req_id:2 ~phase:Span.Dispatch ~start_ns:150 ~dur_ns:5 ~arg:0;
  Span.record disp ~req_id:1 ~phase:Span.Reply_flush ~start_ns:300 ~dur_ns:8 ~arg:3;
  check Alcotest.int "total" 4 (Span.total spans);
  check Alcotest.int "nothing dropped" 0 (Span.dropped spans);
  let merged = Span.merge spans in
  check Alcotest.int "merge keeps everything" 4 (List.length merged);
  check
    Alcotest.(list int)
    "timeline sorted by start" [ 100; 150; 150; 300 ]
    (List.map (fun (r : Span.record) -> r.Span.start_ns) merged);
  (* the tie at 150: stable sort keeps the earlier-registered sink's
     record (the dispatcher's) ahead of the worker's *)
  (match merged with
  | _ :: (second : Span.record) :: _ ->
      check Alcotest.bool "ties keep registration order" true
        (second.Span.lane = Event.Dispatcher 0)
  | _ -> Alcotest.fail "merge lost records");
  (* one request id stitches across both lanes *)
  let lanes_of_req1 =
    List.filter_map
      (fun (r : Span.record) -> if r.Span.req_id = 1 then Some r.Span.lane else None)
      merged
  in
  Alcotest.(check bool) "req 1 spans both domains" true
    (List.mem (Event.Dispatcher 0) lanes_of_req1
    && List.mem (Event.Worker 1) lanes_of_req1)

let test_span_overwrite_and_null () =
  let spans = Span.create ~capacity_per_sink:2 () in
  let sink = Span.register spans (Event.Worker 0) in
  for i = 1 to 5 do
    Span.record sink ~req_id:i ~phase:Span.Quantum ~start_ns:(i * 10) ~dur_ns:1 ~arg:0
  done;
  check Alcotest.int "total counts everything" 5 (Span.total spans);
  check Alcotest.int "dropped = overwritten" 3 (Span.dropped spans);
  check
    Alcotest.(list int)
    "newest records survive" [ 4; 5 ]
    (List.map (fun (r : Span.record) -> r.Span.req_id) (Span.merge spans));
  (* the disabled collection: registration hands out the null sink and
     recording is a no-op *)
  Alcotest.(check bool) "null disabled" false (Span.enabled Span.null);
  let ns = Span.register Span.null (Event.Worker 9) in
  Span.record ns ~req_id:1 ~phase:Span.Shed ~start_ns:0 ~dur_ns:0 ~arg:0;
  check Alcotest.int "null stores nothing" 0 (Span.total Span.null);
  check Alcotest.int "null merges empty" 0 (List.length (Span.merge Span.null))

let test_span_chrome_json () =
  let spans = Span.create ~capacity_per_sink:8 () in
  let disp = Span.register spans (Event.Dispatcher 0) in
  let wrk = Span.register spans (Event.Worker 2) in
  Span.record disp ~req_id:7 ~phase:Span.Accept ~start_ns:1_000 ~dur_ns:0 ~arg:4;
  Span.record disp ~req_id:7 ~phase:Span.Dispatch ~start_ns:1_200 ~dur_ns:300 ~arg:2;
  Span.record wrk ~req_id:7 ~phase:Span.Quantum ~start_ns:1_600 ~dur_ns:900 ~arg:1;
  let json = Span.to_chrome spans in
  json_well_formed "span chrome json" json;
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "trace mentions %s" needle)
        true (contains json needle))
    [
      "\"tq_serve\"";
      "thread_name";
      "\"dispatcher 0\"";
      "\"worker 2\"";
      "\"ph\":\"X\"";
      "\"ph\":\"i\"";
      "\"name\":\"quantum\"";
      "\"req\":7";
    ]

let test_chrome_export_parses () =
  (* the golden test pins exact bytes; this one checks the exporter emits
     structurally valid JSON under wraparound and mixed lanes *)
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 9 do
    Trace.record tr ~ts_ns:(i * 100)
      ~lane:(if i mod 2 = 0 then Event.Global else Event.Worker (i mod 3))
      (yield i)
  done;
  json_well_formed "chrome export" (Chrome_trace.export tr)

(* --- prometheus exposition --- *)

let count_occurrences hay needle =
  let nl = String.length needle in
  let rec go i acc =
    if i + nl > String.length hay then acc
    else if String.sub hay i nl = needle then go (i + nl) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_expo_render () =
  let a = Counters.create () and b = Counters.create () in
  Counters.add (Counters.counter a "serve.parsed") 5;
  Counters.add (Counters.counter b "serve.parsed") 7;
  Counters.set (Counters.gauge a "ring.occupancy") 3.5;
  List.iter (Counters.observe (Counters.dist b "gap ns")) [ 1; 2; 3; 9 ];
  let text =
    Expo.render
      [ ([ ("role", "dispatcher") ], a); ([ ("role", "worker"); ("worker", "0") ], b) ]
  in
  check Alcotest.int "TYPE emitted once per shared name" 1
    (count_occurrences text "# TYPE tq_serve_parsed_total counter");
  check Alcotest.int "both label sets render" 2
    (count_occurrences text "tq_serve_parsed_total{");
  Alcotest.(check bool) "counter samples carry _total and labels" true
    (contains text "tq_serve_parsed_total{role=\"dispatcher\"} 5\n"
    && contains text "tq_serve_parsed_total{role=\"worker\",worker=\"0\"} 7\n");
  Alcotest.(check bool) "gauge renders without suffix" true
    (contains text "tq_ring_occupancy{role=\"dispatcher\"} 3.5\n");
  (* dist 1,2,3,9 -> cumulative power-of-two buckets: le=1 holds 1,
     le=3 holds 1,2,3, the 9 lands in le=15, +Inf sees all four *)
  Alcotest.(check bool) "histogram buckets are cumulative" true
    (contains text "# TYPE tq_gap_ns histogram"
    && contains text "tq_gap_ns_bucket{role=\"worker\",worker=\"0\",le=\"1\"} 1\n"
    && contains text "tq_gap_ns_bucket{role=\"worker\",worker=\"0\",le=\"3\"} 3\n"
    && contains text "tq_gap_ns_bucket{role=\"worker\",worker=\"0\",le=\"15\"} 4\n"
    && contains text "tq_gap_ns_bucket{role=\"worker\",worker=\"0\",le=\"+Inf\"} 4\n"
    && contains text "tq_gap_ns_sum{role=\"worker\",worker=\"0\"} 15\n"
    && contains text "tq_gap_ns_count{role=\"worker\",worker=\"0\"} 4\n")

let test_expo_latency () =
  let lat = Latency.create () in
  let r = Latency.recorder lat "echo" in
  for i = 1 to 100 do
    Latency.record r (i * 1_000)
  done;
  let text = Expo.render_latency ~name:"sojourn_ns" ~labels:[ ("role", "server") ] lat in
  Alcotest.(check bool) "histogram TYPE header" true
    (contains text "# TYPE tq_sojourn_ns histogram");
  Alcotest.(check bool) "histogram +Inf bucket" true
    (contains text "tq_sojourn_ns_bucket{role=\"server\",class=\"echo\",le=\"+Inf\"} 100\n");
  Alcotest.(check bool) "quantiles summary TYPE header" true
    (contains text "# TYPE tq_sojourn_ns_quantiles summary");
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Printf.sprintf "quantile %s present" q)
        true
        (contains text
           (Printf.sprintf
              "tq_sojourn_ns_quantiles{role=\"server\",class=\"echo\",quantile=%S} " q)))
    [ "0.5"; "0.9"; "0.99"; "0.999" ];
  Alcotest.(check bool) "count line" true
    (contains text "tq_sojourn_ns_count{role=\"server\",class=\"echo\"} 100\n");
  Alcotest.(check (list string)) "exposition lints clean" [] (Expo.lint text)

(* --- SLO monitor --- *)

let sec s = int_of_float (s *. 1e9)

let test_slo_burn_rate () =
  let obj = { Slo.name = "p99"; latency_ns = 1_000_000; goodput = 0.9 } in
  let t = Slo.create ~window_s:10.0 ~buckets:10 ~now_ns:0 [ obj ] in
  (match Slo.report ~now_ns:0 t with
  | [ rep ] ->
      check Alcotest.int "empty window" 0 rep.Slo.window_total;
      check (Alcotest.float 1e-9) "vacuous compliance" 1.0 rep.Slo.compliance;
      check (Alcotest.float 1e-9) "no burn without traffic" 0.0 rep.Slo.burn_rate
  | _ -> Alcotest.fail "one objective, one report");
  (* 80 good, then 10 late + 5 shed + 5 errored: compliance 0.8, and a
     10% budget burning at (1 - 0.8) / (1 - 0.9) = 2x *)
  for _ = 1 to 80 do
    Slo.observe t ~now_ns:(sec 2.0) (`Ok 500_000)
  done;
  for _ = 1 to 10 do
    Slo.observe t ~now_ns:(sec 5.0) (`Ok 2_000_000)
  done;
  for _ = 1 to 5 do
    Slo.observe t ~now_ns:(sec 5.0) `Shed
  done;
  for _ = 1 to 5 do
    Slo.observe t ~now_ns:(sec 5.0) `Error
  done;
  (match Slo.report ~now_ns:(sec 9.5) t with
  | [ rep ] ->
      check Alcotest.int "window total" 100 rep.Slo.window_total;
      check Alcotest.int "window good" 80 rep.Slo.window_good;
      check (Alcotest.float 1e-9) "compliance" 0.8 rep.Slo.compliance;
      check (Alcotest.float 1e-6) "burn rate" 2.0 rep.Slo.burn_rate
  | _ -> Alcotest.fail "one objective, one report");
  (* the per-bucket series: the all-good bucket at -7s, the all-bad one
     at -4s, oldest first *)
  (match Slo.window_series ~now_ns:(sec 9.5) t "p99" with
  | [ (a_age, a_frac); (b_age, b_frac) ] ->
      Alcotest.(check bool) "ages oldest-first and non-positive" true
        (a_age < b_age && b_age <= 0.0);
      check (Alcotest.float 1e-9) "good bucket fraction" 1.0 a_frac;
      check (Alcotest.float 1e-9) "bad bucket fraction" 0.0 b_frac
  | s -> Alcotest.failf "expected 2 live buckets, got %d" (List.length s));
  check Alcotest.(list (pair (float 1e-9) (float 1e-9))) "unknown objective" []
    (Slo.window_series ~now_ns:(sec 9.5) t "nope");
  (* slide the window: the good bucket expires first, leaving pure
     badness (burn 10x, a breach), then everything ages out *)
  (match Slo.report ~now_ns:(sec 14.0) t with
  | [ rep ] ->
      check Alcotest.int "good bucket expired" 20 rep.Slo.window_total;
      check (Alcotest.float 1e-9) "compliance collapses" 0.0 rep.Slo.compliance;
      check (Alcotest.float 1e-6) "burning hard" 10.0 rep.Slo.burn_rate
  | _ -> Alcotest.fail "one objective, one report");
  Alcotest.(check bool) "render flags the breach" true
    (contains (Slo.render ~now_ns:(sec 14.0) t) "BREACH");
  (match Slo.report ~now_ns:(sec 25.0) t with
  | [ rep ] ->
      check Alcotest.int "window fully aged out" 0 rep.Slo.window_total;
      check (Alcotest.float 1e-9) "back to vacuous compliance" 1.0 rep.Slo.compliance
  | _ -> Alcotest.fail "one objective, one report");
  Alcotest.(check bool) "render notes the empty window" true
    (contains (Slo.render ~now_ns:(sec 25.0) t) "(no traffic)")

let test_slo_validation () =
  let bad goodput latency_ns =
    try
      ignore
        (Slo.create ~now_ns:0 [ { Slo.name = "x"; latency_ns; goodput } ]);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "goodput 1.0 rejected" true (bad 1.0 1_000);
  Alcotest.(check bool) "goodput 0.0 rejected" true (bad 0.0 1_000);
  Alcotest.(check bool) "non-positive latency rejected" true (bad 0.9 0);
  Alcotest.(check bool) "empty window rejected" true
    (try
       ignore (Slo.create ~window_s:0.0 ~now_ns:0 []);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "trace ordering" `Quick test_trace_ordering;
    Alcotest.test_case "trace wraparound" `Quick test_trace_wraparound;
    Alcotest.test_case "null + disable" `Quick test_trace_null_and_disable;
    Alcotest.test_case "counter registry" `Quick test_counters_registry;
    Alcotest.test_case "overshoot dist" `Quick test_counters_dist;
    Alcotest.test_case "chrome trace golden" `Quick test_chrome_trace_golden;
    Alcotest.test_case "text dump" `Quick test_text_dump;
    Alcotest.test_case "timeseries csv" `Quick test_timeseries_csv;
    Alcotest.test_case "timeseries growth" `Quick test_timeseries_growth;
    Alcotest.test_case "latency percentiles" `Quick test_latency_percentiles;
    Alcotest.test_case "latency registry" `Quick test_latency_registry;
    Alcotest.test_case "latency clamps + json" `Quick test_latency_clamps;
    test_latency_percentile_props;
    Alcotest.test_case "latency owner check" `Quick test_latency_owner_check;
    Alcotest.test_case "counters merged" `Quick test_counters_merged;
    Alcotest.test_case "span record + merge" `Quick test_span_record_and_merge;
    Alcotest.test_case "span overwrite + null" `Quick test_span_overwrite_and_null;
    Alcotest.test_case "span chrome json" `Quick test_span_chrome_json;
    Alcotest.test_case "chrome export parses" `Quick test_chrome_export_parses;
    Alcotest.test_case "expo render" `Quick test_expo_render;
    Alcotest.test_case "expo latency summary" `Quick test_expo_latency;
    Alcotest.test_case "slo burn rate" `Quick test_slo_burn_rate;
    Alcotest.test_case "slo validation" `Quick test_slo_validation;
  ]

(* --- Profile: per-request stage decomposition --- *)

module Profile = Tq_obs.Profile
module Gc_events = Tq_obs.Gc_events

let sp ?(req = 0) ?(lane = Event.Dispatcher 0) ?(arg = 0) phase start_ns dur_ns =
  { Span.req_id = req; phase; lane; start_ns; dur_ns; arg }

(* One synthetic request with every boundary placed by explicit deltas,
   in pipeline order.  Returns the records plus the expected per-stage
   nanoseconds, so tests can assert the telescoping exactly. *)
let synthetic_request ~req ~p0 ~parse ~dispatch ~hop ~wait ~d0 ~gap ~d1 ~flush =
  let t0 = p0 + parse in
  let t1 = t0 + dispatch in
  let t2 = t1 + hop in
  let q0 = t2 + wait in
  let q1 = q0 + d0 + gap in
  let last_end = q1 + d1 in
  let records =
    [
      sp ~req Span.Parse p0 parse;
      sp ~req Span.Dispatch t0 dispatch;
      sp ~req ~lane:(Event.Worker 0) Span.Ring_hop t2 0;
      sp ~req ~lane:(Event.Worker 0) Span.Quantum q0 d0;
      sp ~req ~lane:(Event.Worker 0) Span.Quantum q1 d1;
      sp ~req Span.Reply_flush last_end flush;
    ]
  in
  let expected =
    [
      (Profile.S_parse, parse);
      (Profile.S_dispatch, dispatch);
      (Profile.S_ring_hop, hop);
      (Profile.S_first_run_wait, wait);
      (Profile.S_service, d0 + d1);
      (Profile.S_preempt_overhead, gap);
      (Profile.S_reply_flush, flush);
    ]
  in
  (records, expected, last_end + flush - p0)

let test_profile_exact_decomposition () =
  let n = 3 in
  let per_req =
    List.init n (fun i ->
        synthetic_request ~req:i ~p0:(1_000_000 * i) ~parse:500 ~dispatch:300
          ~hop:(100 + i) ~wait:4_000 ~d0:5_000 ~gap:(250 * i) ~d1:3_000 ~flush:600)
  in
  let records = List.concat_map (fun (r, _, _) -> r) per_req in
  let p = Profile.of_records records in
  check Alcotest.int "all requests decomposed" n (Profile.requests p);
  check Alcotest.int "all exact" n (Profile.exact p);
  check (Alcotest.float 1e-12) "zero relative error" 0.0 (Profile.sum_rel_error p);
  Alcotest.(check bool) "invariant holds" true (Profile.invariant_ok p);
  check Alcotest.int "no sheds" 0 (Profile.sheds p);
  check Alcotest.int "nothing unattributed" 0 (Profile.unattributed_count p);
  check Alcotest.int "nothing in flight" 0 (Profile.incomplete p);
  (* per-stage sums are the sum of the per-request deltas *)
  List.iter
    (fun stage ->
      let expected =
        List.fold_left (fun acc (_, exp, _) -> acc + List.assq stage exp) 0 per_req
      in
      check Alcotest.int
        (Printf.sprintf "stage %s sum" (Profile.stage_name stage))
        expected
        (Profile.stage_sum_ns p stage);
      check Alcotest.int
        (Printf.sprintf "stage %s count" (Profile.stage_name stage))
        n
        (Profile.stage_count p stage))
    Profile.stages;
  (* stage sums telescope to the sojourn, request by request *)
  let sojourns = List.fold_left (fun acc (_, _, s) -> acc + s) 0 per_req in
  let stage_total =
    List.fold_left (fun acc stage -> acc + Profile.stage_sum_ns p stage) 0 Profile.stages
  in
  check Alcotest.int "stages sum to sojourn" sojourns stage_total;
  (* the JSON and text views carry the invariant *)
  let json = Profile.to_json p in
  Alcotest.(check bool) "json has schema_version" true (contains json "\"schema_version\"");
  Alcotest.(check bool) "json has exact count" true (contains json "\"exact\": 3");
  Alcotest.(check bool) "render shows the invariant" true
    (contains (Profile.render p) "sum invariant")

let test_profile_shed_and_accept () =
  let records, _, _ =
    synthetic_request ~req:0 ~p0:0 ~parse:500 ~dispatch:300 ~hop:100 ~wait:1_000
      ~d0:2_000 ~gap:0 ~d1:0 ~flush:400
  in
  let records =
    records
    @ [
        sp ~req:(-1) Span.Accept 5_000 0;
        sp ~req:(-1) Span.Shed 6_000 750;
        sp ~req:(-1) Span.Shed 7_000 1_250;
      ]
  in
  let p = Profile.of_records records in
  check Alcotest.int "one request decomposed" 1 (Profile.requests p);
  check Alcotest.int "accepts counted apart" 1 (Profile.accepts p);
  check Alcotest.int "sheds land in the shed stage" 2 (Profile.sheds p);
  Alcotest.(check bool) "invariant untouched by sheds" true (Profile.invariant_ok p)

let test_profile_degrades_without_crashing () =
  let good, _, _ =
    synthetic_request ~req:0 ~p0:0 ~parse:500 ~dispatch:300 ~hop:100 ~wait:1_000
      ~d0:2_000 ~gap:0 ~d1:0 ~flush:400
  in
  (* duplicate Parse boundary: a ring overwrite garbled request 1 *)
  let dup, _, _ =
    synthetic_request ~req:1 ~p0:100_000 ~parse:500 ~dispatch:300 ~hop:100
      ~wait:1_000 ~d0:2_000 ~gap:0 ~d1:0 ~flush:400
  in
  let dup = sp ~req:1 Span.Parse 100_000 500 :: dup in
  (* request 2 lost its quanta entirely *)
  let missing =
    [
      sp ~req:2 Span.Parse 200_000 500;
      sp ~req:2 Span.Dispatch 200_500 300;
      sp ~req:2 ~lane:(Event.Worker 1) Span.Ring_hop 200_900 0;
      sp ~req:2 Span.Reply_flush 210_000 400;
    ]
  in
  (* request 3's reply stamp precedes its quantum: negative stage *)
  let negative =
    [
      sp ~req:3 Span.Parse 300_000 0;
      sp ~req:3 Span.Dispatch 300_500 300;
      sp ~req:3 ~lane:(Event.Worker 1) Span.Ring_hop 300_900 0;
      sp ~req:3 ~lane:(Event.Worker 1) Span.Quantum 302_000 5_000;
      sp ~req:3 Span.Reply_flush 301_000 0;
    ]
  in
  (* request 4 is still in flight: no reply yet *)
  let in_flight =
    [ sp ~req:4 Span.Parse 400_000 0; sp ~req:4 Span.Dispatch 400_500 300 ]
  in
  let p = Profile.of_records (good @ dup @ missing @ negative @ in_flight) in
  check Alcotest.int "only the clean request decomposed" 1 (Profile.requests p);
  check Alcotest.int "three degraded to unattributed" 3 (Profile.unattributed_count p);
  check Alcotest.int "in-flight counted apart" 1 (Profile.incomplete p);
  Alcotest.(check bool) "invariant over decomposed requests only" true
    (Profile.invariant_ok p);
  (* quanta arriving out of order degrade too (the fold would go negative) *)
  let reordered =
    List.map
      (fun (r : Span.record) ->
        match r.Span.phase with
        | Span.Quantum when r.Span.dur_ns = 3_000 -> { r with Span.start_ns = 0 }
        | _ -> r)
      (let r, _, _ =
         synthetic_request ~req:9 ~p0:1_000_000 ~parse:500 ~dispatch:300 ~hop:100
           ~wait:1_000 ~d0:2_000 ~gap:100 ~d1:3_000 ~flush:400
       in
       r)
  in
  let p2 = Profile.of_records reordered in
  check Alcotest.int "reordered quanta do not decompose" 0 (Profile.requests p2);
  check Alcotest.int "they land in unattributed" 1 (Profile.unattributed_count p2)

(* Property: any cross-request interleaving that preserves each
   request's own record order decomposes every request exactly.  The
   riffle below merges the per-request streams, driven by the generated
   pick list. *)
let test_profile_interleaving_prop =
  let gen =
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 12)
           (* parse, dispatch, hop, wait, d0, gap, d1, flush *)
           (tup4 (int_range 0 1000) (int_range 0 1000) (int_range 0 1000)
              (tup4 (int_range 0 1000) (int_range 0 1000) (int_range 0 1000)
                 (pair (int_range 0 1000) (int_range 0 1000)))))
        (list_of_size (Gen.int_range 0 200) (int_range 0 1_000_000)))
  in
  qtest ~count:100 "profile: order-preserving interleavings stay exact" gen
    (fun (reqs, picks) ->
      let streams =
        List.mapi
          (fun i (parse, dispatch, hop, (wait, d0, gap, (d1, flush))) ->
            let records, _, _ =
              synthetic_request ~req:i ~p0:(10_000_000 * i) ~parse ~dispatch ~hop
                ~wait ~d0 ~gap ~d1 ~flush
            in
            ref records)
          reqs
      in
      let n = List.length streams in
      let arr = Array.of_list streams in
      let out = ref [] in
      let picks = ref (if picks = [] then [ 0 ] else picks) in
      let next_pick () =
        match !picks with
        | [] -> 0
        | p :: rest ->
            picks := (if rest = [] then [ p + 1 ] else rest);
            p
      in
      let remaining = ref (List.fold_left (fun a s -> a + List.length !s) 0 streams) in
      while !remaining > 0 do
        let start = next_pick () mod n in
        let rec find i =
          let idx = (start + i) mod n in
          match !(arr.(idx)) with
          | [] -> find (i + 1)
          | r :: rest ->
              arr.(idx) := rest;
              out := r :: !out;
              decr remaining
        in
        find 0
      done;
      let p = Profile.of_records (List.rev !out) in
      Profile.requests p = n && Profile.exact p = n
      && Profile.unattributed_count p = 0
      && Profile.invariant_ok p)

(* --- Gc_events: the Runtime_events consumer --- *)

let test_gc_events_smoke () =
  let spans = Span.create () in
  let g = Gc_events.start ~spans () in
  (* churn the minor heap so the consumer has pauses to report *)
  let junk = ref [] in
  for i = 1 to 5 do
    junk := [];
    for j = 1 to 50_000 do
      junk := (i * j) :: !junk
    done;
    Gc.minor ()
  done;
  Sys.opaque_identity !junk |> ignore;
  Gc_events.stop g;
  let c = Gc_events.counters g in
  Alcotest.(check bool) "minor pauses observed" true
    (Counters.find_count c "gc.minor_pauses" > 0);
  Alcotest.(check bool) "this domain's pause clock advanced" true
    (Gc_events.self_pause_ns g > 0);
  let records = Span.merge spans in
  Alcotest.(check bool) "gc spans ride the gc lane" true
    (List.exists
       (fun (r : Span.record) ->
         match r.Span.lane with
         | Event.Gc _ -> r.Span.phase = Span.Gc_minor || r.Span.phase = Span.Gc_major
         | _ -> false)
       records);
  (* stop is idempotent *)
  Gc_events.stop g

let profile_suite =
  [
    Alcotest.test_case "profile exact decomposition" `Quick test_profile_exact_decomposition;
    Alcotest.test_case "profile shed + accept" `Quick test_profile_shed_and_accept;
    Alcotest.test_case "profile degrades gracefully" `Quick test_profile_degrades_without_crashing;
    test_profile_interleaving_prop;
    Alcotest.test_case "gc events smoke" `Quick test_gc_events_smoke;
  ]

let suite = suite @ profile_suite

(* ------------------------------------------------------------------ *)
(* Tail: the always-on slow-request reservoir                          *)
(* ------------------------------------------------------------------ *)

module Tail = Tq_obs.Tail

let offer ?(now = 1) ?(worker = 0) ?(t0 = 0) ?(quantum = 100_000) ?(cap = -1)
    ?(inj = 0) ?(deq = 0) sink ~seq ~sojourn =
  Tail.offer sink ~now_ns:now ~seq ~class_idx:0 ~worker ~sojourn_ns:sojourn
    ~t0_ns:t0 ~quantum_ns:quantum ~cap ~inject_depth:inj ~deque_depth:deq

let test_tail_disabled_is_inert () =
  Alcotest.(check bool) "null collection disabled" false (Tail.enabled Tail.null);
  let sink = Tail.register Tail.null ~lane:0 in
  for i = 1 to 100 do
    offer sink ~seq:i ~sojourn:(i * 1_000)
  done;
  check Alcotest.int "nothing offered" 0 (Tail.offered Tail.null);
  check Alcotest.int "nothing retained" 0 (Tail.retained Tail.null);
  Alcotest.(check bool) "no dossiers" true
    (Tail.dossiers Tail.null ~records:[] ~limit:10 = [])

let test_tail_admit_evict_floor () =
  let t = Tail.create ~k:4 () in
  let sink = Tail.register t ~lane:0 in
  List.iteri (fun i s -> offer sink ~seq:i ~sojourn:s) [ 10; 20; 30; 40 ];
  check Alcotest.int "reservoir filled" 4 (Tail.retained t);
  (* the common case: a fast request bounces off the floor *)
  offer sink ~seq:100 ~sojourn:5;
  check Alcotest.int "fast request rejected" 4 (Tail.retained t);
  check Alcotest.int "admitted only the four" 4 (Tail.admitted t);
  (* a slower one evicts the current minimum *)
  offer sink ~seq:101 ~sojourn:50;
  let tops = List.map (fun e -> e.Tail.e_sojourn_ns) (Tail.entries t) in
  Alcotest.(check (list int)) "slowest-first, min evicted" [ 50; 40; 30; 20 ] tops;
  check Alcotest.int "offered counts everything" 6 (Tail.offered t);
  (* top ~limit truncates from the slow end *)
  let top2 = List.map (fun e -> e.Tail.e_seq) (Tail.top t ~limit:2) in
  Alcotest.(check (list int)) "top 2 by sojourn" [ 101; 3 ] top2

let test_tail_window_roll () =
  let t = Tail.create ~k:2 ~window_ns:100 () in
  let sink = Tail.register t ~lane:0 in
  offer sink ~now:10 ~seq:1 ~sojourn:500;
  (* next window: the old top-K survives as the previous window *)
  offer sink ~now:200 ~seq:2 ~sojourn:300;
  let seqs = List.map (fun e -> e.Tail.e_seq) (Tail.entries t) in
  Alcotest.(check (list int)) "both windows retained" [ 1; 2 ] seqs;
  (* a second roll forgets the first window entirely *)
  offer sink ~now:400 ~seq:3 ~sojourn:100;
  let seqs = List.sort compare (List.map (fun e -> e.Tail.e_seq) (Tail.entries t)) in
  Alcotest.(check (list int)) "window 1 aged out" [ 2; 3 ] seqs

let test_tail_breach_ring () =
  let t = Tail.create ~k:2 ~threshold_ns:1_000 () in
  let sink = Tail.register t ~lane:0 in
  (* fill the top-K with slow requests so the floor is high *)
  offer sink ~seq:1 ~sojourn:5_000;
  offer sink ~seq:2 ~sojourn:6_000;
  (* below the floor but over the threshold: retained via the breach ring *)
  offer sink ~seq:3 ~sojourn:1_500;
  let breached =
    List.filter (fun e -> e.Tail.e_breach) (Tail.entries t)
    |> List.map (fun e -> e.Tail.e_seq)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "all three breach the threshold" [ 1; 2; 3 ] breached;
  check Alcotest.int "breach kept despite losing the floor race" 3 (Tail.retained t);
  (* under the threshold and under the floor: gone *)
  offer sink ~seq:4 ~sojourn:500;
  check Alcotest.int "fast request still rejected" 3 (Tail.retained t)

let test_tail_dossier_exactness () =
  let records, expected, sojourn =
    synthetic_request ~req:7 ~p0:1_000 ~parse:500 ~dispatch:300 ~hop:100
      ~wait:4_000 ~d0:5_000 ~gap:250 ~d1:3_000 ~flush:600
  in
  (* core-level context riding the same worker: one steal, one stall
     inside the request's residency, one GC pause, plus decoys that do
     not overlap and must not be counted *)
  let t_end = 1_000 + sojourn in
  let records =
    records
    @ [
        sp ~req:(-1) ~lane:(Event.Worker 0) Span.Steal 2_000 100;
        sp ~req:(-1) ~lane:(Event.Worker 0) Span.Stall 3_000 200;
        sp ~req:(-1) ~lane:(Event.Gc 0) Span.Gc_minor 4_000 300;
        sp ~req:(-1) ~lane:(Event.Worker 1) Span.Steal 2_000 100;
        (* other worker *)
        sp ~req:(-1) ~lane:(Event.Worker 0) Span.Steal (t_end + 10_000) 100;
        (* after the request left *)
      ]
  in
  let t = Tail.create ~k:4 () in
  let sink = Tail.register t ~lane:0 in
  offer sink ~now:t_end ~t0:1_000 ~seq:7 ~sojourn ~inj:3 ~deq:2;
  (match Tail.dossiers t ~records ~limit:10 with
  | [ d ] ->
      Alcotest.(check bool) "attributed" true d.Tail.d_attributed;
      check Alcotest.int "stages telescope to the sojourn" sojourn
        (List.fold_left (fun acc (_, v) -> acc + v) 0 d.Tail.d_stages);
      check Alcotest.int "exact sojourn" sojourn d.Tail.d_sojourn_ns;
      List.iter
        (fun (stage, v) ->
          check Alcotest.int (Profile.stage_name stage) v
            (List.assq stage d.Tail.d_stages))
        expected;
      check Alcotest.int "two quanta" 2 d.Tail.d_quanta;
      check Alcotest.int "one overlapping steal" 1 d.Tail.d_steals;
      check Alcotest.int "one overlapping stall" 1 d.Tail.d_stalls;
      check Alcotest.int "one overlapping gc pause" 1 d.Tail.d_gc_pauses;
      check Alcotest.int "gc pause time" 300 d.Tail.d_gc_pause_ns;
      check Alcotest.int "inject depth sampled" 3
        d.Tail.d_entry.Tail.e_inject_depth;
      (* the JSON view is well-formed and carries the stage map *)
      let json = Tail.dossiers_json t [ d ] in
      json_well_formed "dossiers json" json;
      Alcotest.(check bool) "json has stages" true (contains json "\"stages_ns\"");
      Alcotest.(check bool) "json marks attribution" true
        (contains json "\"attributed\": true");
      (* the table renders the stage columns *)
      let txt = Tail.render ~class_name:(fun _ -> "echo") [ d ] in
      Alcotest.(check bool) "render mentions the class" true (contains txt "echo")
  | ds -> Alcotest.failf "expected one dossier, got %d" (List.length ds));
  (* without spans the dossier degrades to the admit-time sojourn *)
  match Tail.dossiers t ~records:[] ~limit:10 with
  | [ d ] ->
      Alcotest.(check bool) "unattributed without spans" false d.Tail.d_attributed;
      check Alcotest.int "falls back to admit sojourn" sojourn d.Tail.d_sojourn_ns
  | ds -> Alcotest.failf "expected one dossier, got %d" (List.length ds)

let test_tail_outlier_trace_filter () =
  let keep, _, s_keep =
    synthetic_request ~req:1 ~p0:0 ~parse:500 ~dispatch:300 ~hop:100 ~wait:1_000
      ~d0:2_000 ~gap:0 ~d1:0 ~flush:400
  in
  let drop, _, _ =
    synthetic_request ~req:2 ~p0:1_000_000 ~parse:500 ~dispatch:300 ~hop:100
      ~wait:1_000 ~d0:2_000 ~gap:0 ~d1:0 ~flush:400
  in
  let gc_in = sp ~req:(-1) ~lane:(Event.Gc 0) Span.Gc_minor 1_000 50 in
  let gc_out = sp ~req:(-1) ~lane:(Event.Gc 0) Span.Gc_minor 5_000_000 50 in
  let records = keep @ drop @ [ gc_in; gc_out ] in
  let t = Tail.create ~k:1 () in
  let sink = Tail.register t ~lane:0 in
  (* only request 1 is retained *)
  offer sink ~now:s_keep ~t0:0 ~seq:1 ~sojourn:s_keep;
  let kept = Tail.filter_records t records in
  Alcotest.(check bool) "retained request's spans kept" true
    (List.exists (fun (r : Span.record) -> r.Span.req_id = 1) kept);
  Alcotest.(check bool) "other request's spans dropped" false
    (List.exists (fun (r : Span.record) -> r.Span.req_id = 2) kept);
  Alcotest.(check bool) "overlapping gc pause kept" true
    (List.exists
       (fun (r : Span.record) ->
         r.Span.phase = Span.Gc_minor && r.Span.start_ns = 1_000)
       kept);
  Alcotest.(check bool) "distant gc pause dropped" false
    (List.exists (fun (r : Span.record) -> r.Span.start_ns = 5_000_000) kept);
  json_well_formed "outlier chrome json" (Tail.to_chrome t records)

(* Satellite: Counters.merged under real cross-domain concurrency.
   Each domain owns one registry (the single-writer rule) and bumps its
   counter a known number of times; merges taken mid-run never exceed
   the final total (no double counting), and the post-join merge
   conserves the sum exactly. *)
let test_counters_merged_domains_prop =
  qtest ~count:10 "counters merged conserves concurrent increments"
    QCheck.(pair (int_range 1 4) (int_range 1_000 20_000))
    (fun (domains, per_domain) ->
      let regs = List.init domains (fun _ -> Counters.create ()) in
      let doms =
        List.map
          (fun reg ->
            Domain.spawn (fun () ->
                let c = Counters.counter reg "merge.prop_total" in
                for _ = 1 to per_domain do
                  Counters.incr c
                done))
          regs
      in
      let total = domains * per_domain in
      (* racing merges: a snapshot may lag but never overshoots *)
      let mid_ok = ref true in
      for _ = 1 to 50 do
        let m = Counters.find_count (Counters.merged regs) "merge.prop_total" in
        if m < 0 || m > total then mid_ok := false
      done;
      List.iter Domain.join doms;
      !mid_ok
      && Counters.find_count (Counters.merged regs) "merge.prop_total" = total)

let tail_suite =
  [
    Alcotest.test_case "tail disabled is inert" `Quick test_tail_disabled_is_inert;
    Alcotest.test_case "tail admit/evict/floor" `Quick test_tail_admit_evict_floor;
    Alcotest.test_case "tail window roll" `Quick test_tail_window_roll;
    Alcotest.test_case "tail breach ring" `Quick test_tail_breach_ring;
    Alcotest.test_case "tail dossier exactness" `Quick test_tail_dossier_exactness;
    Alcotest.test_case "tail outlier trace filter" `Quick test_tail_outlier_trace_filter;
    test_counters_merged_domains_prop;
  ]

let suite = suite @ tail_suite
