(* Tests for tq_runtime: fibers, probe API, workers, executors, rings. *)

open Tq_runtime

let check = Alcotest.check

(* --- Fiber --- *)

let test_fiber_runs_to_completion () =
  let f = Fiber.create (fun () -> 42) in
  (match Fiber.resume f with
  | Fiber.Done v -> check Alcotest.int "result" 42 v
  | Fiber.Yielded -> Alcotest.fail "unexpected yield");
  Alcotest.(check bool) "finished" true (Fiber.finished f)

let test_fiber_yields () =
  let log = ref [] in
  let f =
    Fiber.create (fun () ->
        log := "a" :: !log;
        Fiber.yield ();
        log := "b" :: !log;
        Fiber.yield ();
        log := "c" :: !log;
        7)
  in
  Alcotest.(check bool) "yield 1" true (Fiber.resume f = Fiber.Yielded);
  Alcotest.(check bool) "yield 2" true (Fiber.resume f = Fiber.Yielded);
  (match Fiber.resume f with
  | Fiber.Done v -> check Alcotest.int "value" 7 v
  | Fiber.Yielded -> Alcotest.fail "should finish");
  check Alcotest.(list string) "segments in order" [ "a"; "b"; "c" ] (List.rev !log);
  check Alcotest.int "three resumes" 3 (Fiber.resumes f)

let test_fiber_interleaving () =
  let log = ref [] in
  let mk name =
    Fiber.create (fun () ->
        for i = 1 to 3 do
          log := Printf.sprintf "%s%d" name i :: !log;
          if i < 3 then Fiber.yield ()
        done)
  in
  let a = mk "a" and b = mk "b" in
  let rec round () =
    let progressed = ref false in
    List.iter
      (fun f ->
        if not (Fiber.finished f) then begin
          ignore (Fiber.resume f);
          progressed := true
        end)
      [ a; b ];
    if !progressed then round ()
  in
  round ();
  check Alcotest.(list string) "round robin interleave"
    [ "a1"; "b1"; "a2"; "b2"; "a3"; "b3" ]
    (List.rev !log)

let test_fiber_resume_after_done_rejected () =
  let f = Fiber.create (fun () -> ()) in
  ignore (Fiber.resume f);
  Alcotest.check_raises "double resume" (Invalid_argument "Fiber.resume: fiber already finished")
    (fun () -> ignore (Fiber.resume f))

let test_fiber_exception_propagates () =
  let f = Fiber.create (fun () -> failwith "boom") in
  Alcotest.check_raises "exception" (Failure "boom") (fun () -> ignore (Fiber.resume f))

let test_yield_outside_fiber_rejected () =
  Alcotest.check_raises "outside" (Invalid_argument "Fiber.yield: called outside a fiber")
    (fun () -> Fiber.yield ())

(* --- Clock --- *)

let test_virtual_clock () =
  let c = Clock.virtual_ () in
  check Alcotest.int "starts at 0" 0 (Clock.now_ns c);
  Clock.advance c 500;
  check Alcotest.int "advanced" 500 (Clock.now_ns c);
  Alcotest.(check bool) "is virtual" true (Clock.is_virtual c)

let test_wall_clock_advances () =
  let c = Clock.wall () in
  Alcotest.check_raises "no manual advance"
    (Invalid_argument "Clock.advance: wall clocks advance themselves") (fun () ->
      Clock.advance c 1);
  let a = Clock.now_ns c in
  let b = Clock.now_ns c in
  Alcotest.(check bool) "monotone-ish" true (b >= a)

(* --- Probe API --- *)

let with_ctx ~quantum_ns f =
  let clock = Clock.virtual_ () in
  let ctx = Probe_api.create ~clock ~quantum_ns in
  Probe_api.install ctx;
  Fun.protect ~finally:Probe_api.uninstall (fun () -> f clock ctx)

let test_probe_yields_on_expiry () =
  with_ctx ~quantum_ns:1000 (fun clock ctx ->
      let yields = ref 0 in
      let f =
        Fiber.create (fun () ->
            for _ = 1 to 10 do
              Clock.advance clock 300;
              Probe_api.probe ()
            done)
      in
      Probe_api.start_quantum ctx;
      let rec drive () =
        match Fiber.resume f with
        | Fiber.Yielded ->
            incr yields;
            Probe_api.start_quantum ctx;
            drive ()
        | Fiber.Done () -> ()
      in
      drive ();
      (* 3000ns of work, quantum 1000, probes every 300: yields at 1200,
         2400 -> 2 yields (the tail never refills a full quantum). *)
      check Alcotest.int "two yields" 2 !yields;
      check Alcotest.int "ctx counted them" 2 (Probe_api.yields_taken ctx);
      check Alcotest.int "ten probes" 10 (Probe_api.probes_executed ctx))

let test_probe_noop_without_context () =
  (* Instrumented code running outside TQ must not fail. *)
  Probe_api.probe ();
  Probe_api.critical_begin ();
  Probe_api.critical_end ()

let test_critical_section_defers_yield () =
  with_ctx ~quantum_ns:100 (fun clock ctx ->
      let phase = ref [] in
      let f =
        Fiber.create (fun () ->
            Probe_api.critical_begin ();
            Clock.advance clock 1000;
            Probe_api.probe ();
            (* expired, but suppressed *)
            phase := "in-critical" :: !phase;
            Probe_api.critical_end ();
            (* deferred yield fires here *)
            phase := "after-critical" :: !phase)
      in
      Probe_api.start_quantum ctx;
      Alcotest.(check bool) "yielded at critical exit" true (Fiber.resume f = Fiber.Yielded);
      check Alcotest.(list string) "suppressed inside" [ "in-critical" ] !phase;
      Probe_api.start_quantum ctx;
      Alcotest.(check bool) "completes" true (Fiber.resume f = Fiber.Done ()))

let test_nested_critical_sections () =
  with_ctx ~quantum_ns:100 (fun clock ctx ->
      let f =
        Fiber.create (fun () ->
            Probe_api.critical_begin ();
            Probe_api.critical_begin ();
            Clock.advance clock 500;
            Probe_api.critical_end ();
            (* still nested: no yield *)
            Probe_api.probe ();
            Probe_api.critical_end ())
      in
      Probe_api.start_quantum ctx;
      Alcotest.(check bool) "yields only at outermost exit" true
        (Fiber.resume f = Fiber.Yielded))

let test_instrumented_combinators_probe () =
  with_ctx ~quantum_ns:1_000_000 (fun _clock ctx ->
      let f =
        Fiber.create (fun () ->
            Instrumented.for_range ~probe_every:10 ~lo:0 ~hi:100 (fun _ -> ()))
      in
      Probe_api.start_quantum ctx;
      (match Fiber.resume f with Fiber.Done () -> () | _ -> Alcotest.fail "no yield expected");
      check Alcotest.int "ten probes" 10 (Probe_api.probes_executed ctx))

let test_work_ns_virtual () =
  with_ctx ~quantum_ns:1_000 (fun clock ctx ->
      let f = Fiber.create (fun () -> Instrumented.work_ns 3_000) in
      Probe_api.start_quantum ctx;
      let yields = ref 0 in
      let rec drive () =
        match Fiber.resume f with
        | Fiber.Yielded ->
            incr yields;
            Probe_api.start_quantum ctx;
            drive ()
        | Fiber.Done () -> ()
      in
      drive ();
      check Alcotest.int "virtual time consumed" 3_000 (Clock.now_ns clock);
      (* Quantum boundaries at 1000, 2000 and exactly at the final 3000
         (>= comparison) before the fiber returns. *)
      check Alcotest.int "yields at quantum boundaries" 3 !yields)

(* --- Task worker --- *)

let test_worker_ps_rotation () =
  let clock = Clock.virtual_ () in
  let finished = ref [] in
  let w =
    Task_worker.create ~clock ~quantum_ns:1_000
      ~on_finish:(fun task -> finished := task.Task_worker.task_id :: !finished)
      ()
  in
  Task_worker.submit w
    { Task_worker.task_id = 1; class_idx = 0; pinned = false;
      work = (fun ~wid:_ -> Instrumented.work_ns 5_000) };
  Task_worker.submit w
    { Task_worker.task_id = 2; class_idx = 0; pinned = false;
      work = (fun ~wid:_ -> Instrumented.work_ns 1_000) };
  Task_worker.run_until_idle w;
  check Alcotest.(list int) "short task finishes first" [ 2; 1 ] (List.rev !finished);
  check Alcotest.int "all finished" 0 (Task_worker.unfinished w);
  check Alcotest.int "finished count" 2 (Task_worker.finished_count w);
  Alcotest.(check bool) "yields happened" true (Task_worker.total_yields w > 0)

let test_worker_counters () =
  let clock = Clock.virtual_ () in
  let w = Task_worker.create ~clock ~quantum_ns:1_000 ~on_finish:(fun _ -> ()) () in
  Task_worker.submit w
    { Task_worker.task_id = 1; class_idx = 0; pinned = false;
      work = (fun ~wid:_ -> Instrumented.work_ns 2_500) };
  check Alcotest.int "unfinished" 1 (Task_worker.unfinished w);
  ignore (Task_worker.run_slice w);
  Alcotest.(check bool) "accumulates quanta" true (Task_worker.current_quanta w > 0);
  Task_worker.run_until_idle w;
  check Alcotest.int "quanta released on finish" 0 (Task_worker.current_quanta w)

(* --- Executor --- *)

let test_executor_completes_all () =
  let ex = Executor.create ~workers:4 ~quantum_ns:1_000 () in
  let sum = ref 0 in
  for i = 1 to 50 do
    Executor.submit ex (fun () ->
        Instrumented.work_ns (200 * i);
        sum := !sum + i)
  done;
  Executor.run ex;
  check Alcotest.int "all tasks ran" (50 * 51 / 2) !sum;
  check Alcotest.int "completed" 50 (Executor.completed ex)

let test_executor_jsq_balances () =
  let ex = Executor.create ~workers:4 ~quantum_ns:1_000 () in
  for _ = 1 to 64 do
    Executor.submit ex (fun () -> Instrumented.work_ns 1_000)
  done;
  Executor.run ex;
  let finished = Executor.worker_finished ex in
  Array.iter
    (fun count -> Alcotest.(check bool) "balanced 16 each" true (count = 16))
    finished

let test_executor_preempts_long_tasks () =
  let ex = Executor.create ~workers:1 ~quantum_ns:500 () in
  let order = ref [] in
  Executor.submit ex (fun () ->
      Instrumented.work_ns 5_000;
      order := "long" :: !order);
  Executor.submit ex (fun () ->
      Instrumented.work_ns 500;
      order := "short" :: !order);
  Executor.run ex;
  check Alcotest.(list string) "short escapes HoL blocking" [ "short"; "long" ]
    (List.rev !order);
  Alcotest.(check bool) "yields recorded" true (Executor.total_yields ex > 0)

(* --- SPSC ring --- *)

let test_ring_fifo () =
  let r = Spsc_ring.create ~capacity:4 in
  Alcotest.(check bool) "push 1" true (Spsc_ring.try_push r 1);
  Alcotest.(check bool) "push 2" true (Spsc_ring.try_push r 2);
  check Alcotest.(option int) "pop 1" (Some 1) (Spsc_ring.try_pop r);
  check Alcotest.(option int) "pop 2" (Some 2) (Spsc_ring.try_pop r);
  check Alcotest.(option int) "empty" None (Spsc_ring.try_pop r)

let test_ring_capacity () =
  let r = Spsc_ring.create ~capacity:2 in
  Alcotest.(check bool) "1" true (Spsc_ring.try_push r 1);
  Alcotest.(check bool) "2" true (Spsc_ring.try_push r 2);
  Alcotest.(check bool) "full" false (Spsc_ring.try_push r 3);
  ignore (Spsc_ring.try_pop r);
  Alcotest.(check bool) "space again" true (Spsc_ring.try_push r 3);
  check Alcotest.int "length" 2 (Spsc_ring.length r)

let test_ring_wraparound () =
  let r = Spsc_ring.create ~capacity:3 in
  for round = 1 to 10 do
    Alcotest.(check bool) "push" true (Spsc_ring.try_push r round);
    check Alcotest.(option int) "pop" (Some round) (Spsc_ring.try_pop r)
  done

let test_ring_cross_domain () =
  let r = Spsc_ring.create ~capacity:16 in
  let n = 10_000 in
  let consumer =
    Domain.spawn (fun () ->
        let sum = ref 0 and received = ref 0 in
        while !received < n do
          match Spsc_ring.try_pop r with
          | Some v ->
              sum := !sum + v;
              incr received
          | None -> Domain.cpu_relax ()
        done;
        !sum)
  in
  for i = 1 to n do
    while not (Spsc_ring.try_push r i) do
      Domain.cpu_relax ()
    done
  done;
  check Alcotest.int "all values transferred" (n * (n + 1) / 2) (Domain.join consumer)

(* --- Parallel executor --- *)

(* Submit a fixed batch and shut down; the pre-redesign [Parallel.run]
   convenience collapsed to exactly this create/submit/shutdown shape. *)
let run_batch ~workers ~quantum_ns jobs =
  let pool = Parallel.create ~workers ~quantum_ns () in
  Array.iter
    (fun job ->
      while not (Parallel.submit pool (fun ~wid:_ -> job ())) do
        Domain.cpu_relax ()
      done)
    jobs;
  Parallel.shutdown pool

let test_parallel_completes () =
  let counter = Atomic.make 0 in
  let jobs = Array.init 40 (fun _ -> fun () -> Atomic.incr counter) in
  let stats = run_batch ~workers:2 ~quantum_ns:1_000_000 jobs in
  check Alcotest.int "completed" 40 stats.Parallel.completed;
  check Alcotest.int "all side effects" 40 (Atomic.get counter);
  check Alcotest.int "per-worker adds up" 40
    (Array.fold_left ( + ) 0 stats.Parallel.per_worker_finished)

let test_parallel_balances () =
  let jobs = Array.init 64 (fun _ -> fun () -> ignore (Sys.opaque_identity (ref 0))) in
  let stats = run_batch ~workers:4 ~quantum_ns:1_000_000 jobs in
  Array.iter
    (fun c -> Alcotest.(check bool) "every worker got work" true (c > 0))
    stats.Parallel.per_worker_finished

let suite =
  [
    Alcotest.test_case "fiber completion" `Quick test_fiber_runs_to_completion;
    Alcotest.test_case "fiber yields" `Quick test_fiber_yields;
    Alcotest.test_case "fiber interleaving" `Quick test_fiber_interleaving;
    Alcotest.test_case "fiber double resume" `Quick test_fiber_resume_after_done_rejected;
    Alcotest.test_case "fiber exception" `Quick test_fiber_exception_propagates;
    Alcotest.test_case "yield outside fiber" `Quick test_yield_outside_fiber_rejected;
    Alcotest.test_case "virtual clock" `Quick test_virtual_clock;
    Alcotest.test_case "wall clock" `Quick test_wall_clock_advances;
    Alcotest.test_case "probe yields on expiry" `Quick test_probe_yields_on_expiry;
    Alcotest.test_case "probe noop without ctx" `Quick test_probe_noop_without_context;
    Alcotest.test_case "critical section" `Quick test_critical_section_defers_yield;
    Alcotest.test_case "nested critical" `Quick test_nested_critical_sections;
    Alcotest.test_case "instrumented combinators" `Quick test_instrumented_combinators_probe;
    Alcotest.test_case "work_ns virtual" `Quick test_work_ns_virtual;
    Alcotest.test_case "worker ps rotation" `Quick test_worker_ps_rotation;
    Alcotest.test_case "worker counters" `Quick test_worker_counters;
    Alcotest.test_case "executor completes" `Quick test_executor_completes_all;
    Alcotest.test_case "executor jsq balance" `Quick test_executor_jsq_balances;
    Alcotest.test_case "executor preempts" `Quick test_executor_preempts_long_tasks;
    Alcotest.test_case "ring fifo" `Quick test_ring_fifo;
    Alcotest.test_case "ring capacity" `Quick test_ring_capacity;
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "ring cross domain" `Quick test_ring_cross_domain;
    Alcotest.test_case "parallel completes" `Quick test_parallel_completes;
    Alcotest.test_case "parallel balances" `Quick test_parallel_balances;
  ]

(* --- MPSC buffer pool --- *)

let test_pool_alloc_all_distinct () =
  let pool = Mpsc_pool.create ~capacity:8 in
  let allocated = List.init 8 (fun _ -> Option.get (Mpsc_pool.alloc pool)) in
  check Alcotest.int "all allocated" 8 (List.length (List.sort_uniq compare allocated));
  check Alcotest.(option int) "exhausted" None (Mpsc_pool.alloc pool);
  check Alcotest.int "free count" 0 (Mpsc_pool.free_count pool)

let test_pool_release_recycles () =
  let pool = Mpsc_pool.create ~capacity:2 in
  let a = Option.get (Mpsc_pool.alloc pool) in
  let b = Option.get (Mpsc_pool.alloc pool) in
  Mpsc_pool.release pool a;
  check Alcotest.(option int) "recycled" (Some a) (Mpsc_pool.alloc pool);
  Mpsc_pool.release pool b;
  Mpsc_pool.release pool a;
  check Alcotest.int "both free" 2 (Mpsc_pool.free_count pool)

let test_pool_rejects_bad_release () =
  let pool = Mpsc_pool.create ~capacity:2 in
  Alcotest.check_raises "oob" (Invalid_argument "Mpsc_pool.release: bad buffer id")
    (fun () -> Mpsc_pool.release pool 2)

let test_pool_multi_producer_release () =
  (* Dispatcher allocates, two worker domains release concurrently; the
     pool must conserve buffers. *)
  let capacity = 64 in
  let pool = Mpsc_pool.create ~capacity in
  let rounds = 5_000 in
  let to_release = Spsc_ring.create ~capacity and to_release2 = Spsc_ring.create ~capacity in
  let stop = Atomic.make false in
  let releaser ring =
    Domain.spawn (fun () ->
        let released = ref 0 in
        while (not (Atomic.get stop)) || Spsc_ring.length ring > 0 do
          match Spsc_ring.try_pop ring with
          | Some buf ->
              Mpsc_pool.release pool buf;
              incr released
          | None -> Domain.cpu_relax ()
        done;
        !released)
  in
  let d1 = releaser to_release and d2 = releaser to_release2 in
  let sent = ref 0 in
  while !sent < rounds do
    match Mpsc_pool.alloc pool with
    | Some buf ->
        let ring = if !sent land 1 = 0 then to_release else to_release2 in
        while not (Spsc_ring.try_push ring buf) do
          Domain.cpu_relax ()
        done;
        incr sent
    | None -> Domain.cpu_relax ()
  done;
  Atomic.set stop true;
  let r1 = Domain.join d1 and r2 = Domain.join d2 in
  check Alcotest.int "every buffer released" rounds (r1 + r2);
  check Alcotest.int "pool conserved" capacity (Mpsc_pool.free_count pool)

(* --- Parallel: the persistent handle API behind tq_serve --- *)

let test_parallel_handle_lifecycle () =
  let pool = Parallel.create ~workers:2 ~ring_capacity:8 () in
  check Alcotest.int "workers" 2 (Parallel.workers pool);
  let hits = Array.init 2 (fun _ -> Atomic.make 0) in
  let submitted = ref 0 in
  let backoff = Backoff.create () in
  for i = 0 to 99 do
    let w = i mod 2 in
    while not (Parallel.submit_to pool ~worker:w (fun ~wid:_ -> Atomic.incr hits.(w))) do
      Backoff.once backoff
    done;
    incr submitted
  done;
  Parallel.drain pool;
  check Alcotest.int "drained" 0 (Parallel.in_flight pool);
  let stats = Parallel.shutdown pool in
  check Alcotest.int "completed" 100 stats.Parallel.completed;
  check Alcotest.int "worker 0 ran its share" 50 (Atomic.get hits.(0));
  check Alcotest.int "worker 1 ran its share" 50 (Atomic.get hits.(1));
  check Alcotest.(array int) "per-worker accounting" [| 50; 50 |]
    stats.Parallel.per_worker_finished

let test_parallel_submit_after_shutdown () =
  let pool = Parallel.create ~workers:1 () in
  ignore (Parallel.submit pool (fun ~wid:_ -> ()));
  let s1 = Parallel.shutdown pool in
  (* idempotent: a second shutdown just reports the same stats *)
  let s2 = Parallel.shutdown pool in
  check Alcotest.int "stable stats" s1.Parallel.completed s2.Parallel.completed;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Parallel.submit_to: pool is shut down") (fun () ->
      ignore (Parallel.submit pool (fun ~wid:_ -> ())));
  Alcotest.check_raises "bad worker index rejected before spawn side effects"
    (Invalid_argument "Parallel.submit_to: pool is shut down") (fun () ->
      ignore (Parallel.submit_to pool ~worker:7 (fun ~wid:_ -> ())))

let test_parallel_pick_least_loaded () =
  let pool = Parallel.create ~workers:3 ~ring_capacity:64 () in
  (* nothing in flight: pick must name a valid worker *)
  let w = Parallel.pick pool in
  check Alcotest.bool "valid worker" true (w >= 0 && w < 3);
  Parallel.drain pool;
  ignore (Parallel.shutdown pool)

let test_parallel_shutdown_drains_backlog () =
  (* shutdown alone must already be a zero-loss drain: every accepted
     job runs even with a deep backlog of slow jobs at shutdown time *)
  let pool = Parallel.create ~workers:2 ~ring_capacity:128 () in
  let ran = Atomic.make 0 in
  let n = 200 in
  let backoff = Backoff.create () in
  for _ = 1 to n do
    while
      not
        (Parallel.submit pool (fun ~wid:_ ->
             for _ = 1 to 50 do
               Sys.opaque_identity ignore ()
             done;
             Atomic.incr ran))
    do
      Backoff.once backoff
    done
  done;
  let stats = Parallel.shutdown pool in
  check Alcotest.int "no job lost" n (Atomic.get ran);
  check Alcotest.int "stats agree" n stats.Parallel.completed

(* appended to the runtime suite *)
let pool_suite =
  [
    Alcotest.test_case "pool alloc distinct" `Quick test_pool_alloc_all_distinct;
    Alcotest.test_case "pool recycles" `Quick test_pool_release_recycles;
    Alcotest.test_case "pool bad release" `Quick test_pool_rejects_bad_release;
    Alcotest.test_case "pool multi-producer" `Quick test_pool_multi_producer_release;
    Alcotest.test_case "parallel handle lifecycle" `Quick test_parallel_handle_lifecycle;
    Alcotest.test_case "parallel shutdown fence" `Quick test_parallel_submit_after_shutdown;
    Alcotest.test_case "parallel pick" `Quick test_parallel_pick_least_loaded;
    Alcotest.test_case "parallel zero-loss shutdown" `Quick test_parallel_shutdown_drains_backlog;
  ]

let suite = suite @ pool_suite

(* --- Stall attribution: the gc_pause_ns hook --- *)

(* A 1ns stall threshold turns every non-zero inter-quantum gap into a
   "stall", so a single multi-quantum task (tiny quantum, a probe per
   iteration) manufactures hundreds of them without sleeping.  The gap
   sizes are scheduling noise; the *attribution* is deterministic given
   the injected GC clock: a clock that leaps every read makes every gap
   look GC-caused, a frozen clock makes none of them, and no clock at
   all leaves them unknown. *)
let stall_counts gc_pause_ns =
  let regs = [| Tq_obs.Counters.create () |] in
  let pool =
    Parallel.create ~workers:1 ~quantum_ns:100 ~stall_threshold_ns:1
      ~worker_counters:regs ?gc_pause_ns ()
  in
  let backoff = Backoff.create () in
  while
    not
      (Parallel.submit pool (fun ~wid:_ ->
           for _ = 1 to 400 do
             for _ = 1 to 200 do
               Sys.opaque_identity ignore ()
             done;
             Probe_api.probe ()
           done))
  do
    Backoff.once backoff
  done;
  ignore (Parallel.shutdown pool);
  let count name = Tq_obs.Counters.find_count regs.(0) name in
  ( count "runtime.stalls",
    count "runtime.stall_gc",
    count "runtime.stall_other",
    count "runtime.stall_unknown" )

let test_stall_attribution_gc () =
  (* the fake GC clock leaps 1ms on every read: any gap looks GC-eaten *)
  let fake = ref 0 in
  let stalls, gc, other, unknown =
    stall_counts
      (Some
         (fun () ->
           fake := !fake + 1_000_000;
           !fake))
  in
  check Alcotest.bool "some stalls detected at a 1ns threshold" true (stalls > 0);
  check Alcotest.int "every stall attributed to gc" stalls gc;
  check Alcotest.int "none attributed elsewhere" 0 (other + unknown)

let test_stall_attribution_other () =
  (* a frozen GC clock: the runtime visibly did not eat the core *)
  let stalls, gc, other, unknown = stall_counts (Some (fun () -> 0)) in
  check Alcotest.bool "some stalls detected" true (stalls > 0);
  check Alcotest.int "every stall attributed to other" stalls other;
  check Alcotest.int "none attributed to gc" 0 (gc + unknown)

let test_stall_attribution_unknown () =
  (* no hook wired: the classifier must not guess *)
  let stalls, gc, other, unknown = stall_counts None in
  check Alcotest.bool "some stalls detected" true (stalls > 0);
  check Alcotest.int "every stall unknown" stalls unknown;
  check Alcotest.int "nothing attributed" 0 (gc + other)

let stall_suite =
  [
    Alcotest.test_case "stall attribution gc" `Quick test_stall_attribution_gc;
    Alcotest.test_case "stall attribution other" `Quick test_stall_attribution_other;
    Alcotest.test_case "stall attribution unknown" `Quick test_stall_attribution_unknown;
  ]

(* --- SPMC steal deque --- *)

let drain_deque d =
  let sum = ref 0 and count = ref 0 in
  let rec go () =
    match Spmc_deque.pop d with
    | Some v ->
        sum := !sum + v;
        incr count;
        go ()
    | None -> ()
  in
  go ();
  (!sum, !count)

let test_deque_owner_fifo () =
  let d = Spmc_deque.create ~capacity:4 in
  Alcotest.(check bool) "push 1" true (Spmc_deque.push d 1);
  Alcotest.(check bool) "push 2" true (Spmc_deque.push d 2);
  check Alcotest.int "length" 2 (Spmc_deque.length d);
  check Alcotest.(option int) "pop oldest first" (Some 1) (Spmc_deque.pop d);
  check Alcotest.(option int) "then next" (Some 2) (Spmc_deque.pop d);
  check Alcotest.(option int) "empty" None (Spmc_deque.pop d);
  (* wraparound keeps order *)
  for round = 1 to 10 do
    Alcotest.(check bool) "push" true (Spmc_deque.push d round);
    check Alcotest.(option int) "pop" (Some round) (Spmc_deque.pop d)
  done

let test_deque_capacity_one () =
  let d = Spmc_deque.create ~capacity:1 in
  check Alcotest.int "capacity" 1 (Spmc_deque.capacity d);
  Alcotest.(check bool) "push" true (Spmc_deque.push d 7);
  Alcotest.(check bool) "full" false (Spmc_deque.push d 8);
  let into = Spmc_deque.create ~capacity:1 in
  check Alcotest.int "steal takes the lone item" 1 (Spmc_deque.steal_into d ~into);
  check Alcotest.(option int) "victim empty" None (Spmc_deque.pop d);
  check Alcotest.(option int) "thief has it" (Some 7) (Spmc_deque.pop into)

let test_deque_steal_half_bounds () =
  let d = Spmc_deque.create ~capacity:16 in
  for i = 1 to 10 do
    Alcotest.(check bool) "fill" true (Spmc_deque.push d i)
  done;
  let into = Spmc_deque.create ~capacity:16 in
  check Alcotest.int "no self steal" 0 (Spmc_deque.steal_into d ~into:d);
  check Alcotest.int "steals ceil(half)" 5 (Spmc_deque.steal_into d ~into);
  check Alcotest.int "victim keeps the rest" 5 (Spmc_deque.length d);
  check Alcotest.int "thief holds the batch" 5 (Spmc_deque.length into);
  let s1, c1 = drain_deque d and s2, c2 = drain_deque into in
  check Alcotest.int "no loss, no duplication" (10 * 11 / 2) (s1 + s2);
  check Alcotest.int "count conserved" 10 (c1 + c2);
  (* an almost-full destination bounds the batch by its room *)
  let d = Spmc_deque.create ~capacity:16 in
  for i = 1 to 8 do
    ignore (Spmc_deque.push d i : bool)
  done;
  let tight = Spmc_deque.create ~capacity:4 in
  for i = 100 to 102 do
    ignore (Spmc_deque.push tight i : bool)
  done;
  check Alcotest.int "bounded by room in into" 1 (Spmc_deque.steal_into d ~into:tight);
  check Alcotest.int "victim debited exactly that" 7 (Spmc_deque.length d);
  (* empty victim: nothing to take *)
  let empty = Spmc_deque.create ~capacity:8 in
  let into = Spmc_deque.create ~capacity:8 in
  check Alcotest.int "empty victim" 0 (Spmc_deque.steal_into empty ~into)

(* Linearizability-style stress on real domains: one owner pushing and
   popping, concurrent thieves stealing halves into private deques.
   Every pushed value must be popped exactly once somewhere — checked
   by conserving both the count and the sum (a lost value breaks the
   sum, a duplicated one breaks it the other way). *)
let deque_stress ~capacity ~n ~thieves =
  let src = Spmc_deque.create ~capacity in
  let stop = Atomic.make false in
  let thief_doms =
    List.init thieves (fun _ ->
        Domain.spawn (fun () ->
            let mine = Spmc_deque.create ~capacity in
            let sum = ref 0 and count = ref 0 in
            let drain () =
              let s, c = drain_deque mine in
              sum := !sum + s;
              count := !count + c
            in
            while not (Atomic.get stop) do
              ignore (Spmc_deque.steal_into src ~into:mine : int);
              drain ();
              Domain.cpu_relax ()
            done;
            (* final sweep: the owner has drained [src], but claims we
               made just before [stop] may still sit in [mine] *)
            ignore (Spmc_deque.steal_into src ~into:mine : int);
            drain ();
            (!sum, !count)))
  in
  let owner_sum = ref 0 and owner_count = ref 0 in
  let owner_pop () =
    match Spmc_deque.pop src with
    | Some v ->
        owner_sum := !owner_sum + v;
        incr owner_count
    | None -> Domain.cpu_relax ()
  in
  for i = 1 to n do
    while not (Spmc_deque.push src i) do
      owner_pop ()
    done;
    if i land 7 = 0 then owner_pop ()
  done;
  let rec drain_src () =
    match Spmc_deque.pop src with
    | Some v ->
        owner_sum := !owner_sum + v;
        incr owner_count;
        drain_src ()
    | None -> ()
  in
  drain_src ();
  Atomic.set stop true;
  let thief_results = List.map Domain.join thief_doms in
  let total_sum =
    List.fold_left (fun acc (s, _) -> acc + s) !owner_sum thief_results
  in
  let total_count =
    List.fold_left (fun acc (_, c) -> acc + c) !owner_count thief_results
  in
  total_count = n && total_sum = n * (n + 1) / 2

let deque_stress_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:10
       ~name:"spmc deque conserves every value under concurrent theft"
       QCheck.(
         triple (int_range 2 64) (int_range 100 20_000) (int_range 1 3))
       (fun (capacity, n, thieves) -> deque_stress ~capacity ~n ~thieves))

let deque_suite =
  [
    Alcotest.test_case "deque owner fifo" `Quick test_deque_owner_fifo;
    Alcotest.test_case "deque capacity one" `Quick test_deque_capacity_one;
    Alcotest.test_case "deque steal half" `Quick test_deque_steal_half_bounds;
    deque_stress_prop;
  ]

(* --- Work_source steal groups are lane slices --- *)

(* Mirrors Parallel's group construction: worker [w] may only steal
   from siblings with the same [w mod lanes].  A thief facing an empty
   slice must come up dry even when other lanes are loaded — crossing
   lanes would undo the serve plane's partitioning. *)
let test_work_source_lane_slice () =
  let lanes = 2 and workers = 6 in
  let sources =
    Array.init workers (fun wid -> Work_source.create ~wid ~capacity:64)
  in
  let group_of wid =
    Array.to_list sources
    |> List.filteri (fun w _ -> w mod lanes = wid mod lanes)
    |> Array.of_list
  in
  Array.iteri (fun wid s -> Work_source.set_group s (group_of wid)) sources;
  let load wid n =
    for i = 1 to n do
      Alcotest.(check bool) "inject" true (Work_source.inject sources.(wid) i)
    done;
    ignore
      (Work_source.drain sources.(wid)
         ~is_pinned:(fun _ -> false)
         ~submit:(fun _ -> Alcotest.fail "no pinned/overflow expected")
        : int)
  in
  (* The other lane's deques are the most loaded overall; in-slice
     victim selection must ignore them. *)
  load 1 16;
  load 3 12;
  load 2 4;
  load 4 8;
  (match Work_source.try_steal sources.(0) with
  | Some (victim, moved) ->
      check Alcotest.int "most-loaded in-slice victim" 4 victim;
      check Alcotest.int "took half the victim's deque" 4 moved
  | None -> Alcotest.fail "in-slice work available, steal came up empty");
  (* Drain lane 0's remaining stealable work; with its slice empty the
     thief finds nothing, however loaded the other lane is. *)
  Array.iter
    (fun s ->
      if Work_source.wid s mod lanes = 0 then
        while Work_source.next s <> None do
          ()
        done)
    sources;
  check Alcotest.int "other lane untouched" 16
    (Work_source.stealable sources.(1));
  (match Work_source.try_steal sources.(0) with
  | None -> ()
  | Some (victim, moved) ->
      Alcotest.failf "stole %d from worker %d outside the lane slice" moved
        victim);
  (* Every victim observed over repeated rounds shares the thief's
     slice: [w mod lanes] is invariant between thief and victim. *)
  load 2 32;
  load 4 32;
  load 1 32;
  let rounds = ref 0 in
  let continue = ref true in
  while !continue do
    match Work_source.try_steal sources.(0) with
    | Some (victim, _) ->
        incr rounds;
        check Alcotest.int "victim shares the thief's slice" 0 (victim mod lanes);
        (* consume the haul so the next round re-picks a victim *)
        while Work_source.next sources.(0) <> None do
          ()
        done
    | None -> continue := false
  done;
  Alcotest.(check bool) "steals happened" true (!rounds > 0);
  check Alcotest.int "other lane still untouched" 48
    (Work_source.stealable sources.(1))

let work_source_suite =
  [
    Alcotest.test_case "work source lane slice boundary" `Quick
      test_work_source_lane_slice;
  ]

let suite = suite @ stall_suite @ deque_suite @ work_source_suite
