(* Tests for tq_engine: event ordering, cancellation, busy server, links. *)

module Sim = Tq_engine.Sim
module Busy_server = Tq_engine.Busy_server
module Link = Tq_engine.Link

let check = Alcotest.check

let test_event_order () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule_at sim ~time:30 (fun () -> log := 30 :: !log));
  ignore (Sim.schedule_at sim ~time:10 (fun () -> log := 10 :: !log));
  ignore (Sim.schedule_at sim ~time:20 (fun () -> log := 20 :: !log));
  Sim.run sim;
  check Alcotest.(list int) "timestamp order" [ 10; 20; 30 ] (List.rev !log);
  check Alcotest.int "clock at last event" 30 (Sim.now sim)

let test_same_time_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.schedule_at sim ~time:7 (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  check Alcotest.(list int) "fifo among equal timestamps" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_schedule_from_handler () =
  let sim = Sim.create () in
  let fired = ref [] in
  ignore
    (Sim.schedule_at sim ~time:5 (fun () ->
         fired := ("a", Sim.now sim) :: !fired;
         ignore (Sim.schedule_after sim ~delay:10 (fun () -> fired := ("b", Sim.now sim) :: !fired))));
  Sim.run sim;
  check
    Alcotest.(list (pair string int))
    "chained events" [ ("a", 5); ("b", 15) ] (List.rev !fired)

let test_schedule_past_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim ~time:10 (fun () ->
      Alcotest.check_raises "past" (Invalid_argument "Sim.schedule_at: time is in the past")
        (fun () -> ignore (Sim.schedule_at sim ~time:5 ignore))));
  Sim.run sim

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let ev = Sim.schedule_at sim ~time:10 (fun () -> fired := true) in
  Sim.cancel ev;
  Alcotest.(check bool) "marked cancelled" true (Sim.cancelled ev);
  Sim.run sim;
  Alcotest.(check bool) "did not fire" false !fired;
  check Alcotest.int "no events processed" 0 (Sim.events_processed sim)

let test_run_until () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule_at sim ~time:10 (fun () -> log := 10 :: !log));
  ignore (Sim.schedule_at sim ~time:100 (fun () -> log := 100 :: !log));
  Sim.run ~until:50 sim;
  check Alcotest.(list int) "only early event" [ 10 ] !log;
  check Alcotest.int "clock advanced to limit" 50 (Sim.now sim);
  Sim.run sim;
  check Alcotest.(list int) "rest runs" [ 100; 10 ] !log

let test_step () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim ~time:1 ignore);
  Alcotest.(check bool) "step true" true (Sim.step sim);
  Alcotest.(check bool) "step false when drained" false (Sim.step sim)

let test_busy_server_serializes () =
  let sim = Sim.create () in
  let server = Busy_server.create sim () in
  let done_at = ref [] in
  for i = 1 to 3 do
    Busy_server.submit server ~cost:10 i ~done_:(fun i -> done_at := (i, Sim.now sim) :: !done_at)
  done;
  check Alcotest.int "two queued behind one in service" 2 (Busy_server.queue_length server);
  Sim.run sim;
  check
    Alcotest.(list (pair int int))
    "serialized completions" [ (1, 10); (2, 20); (3, 30) ] (List.rev !done_at);
  check Alcotest.int "busy time" 30 (Busy_server.busy_time server);
  check Alcotest.int "served" 3 (Busy_server.served server);
  Alcotest.(check bool) "idle after drain" false (Busy_server.busy server)

let test_busy_server_idle_restart () =
  let sim = Sim.create () in
  let server = Busy_server.create sim () in
  let log = ref [] in
  Busy_server.submit server ~cost:5 "a" ~done_:(fun x -> log := (x, Sim.now sim) :: !log);
  Sim.run sim;
  (* Submit again after the server went idle. *)
  ignore (Sim.schedule_at sim ~time:100 (fun () ->
      Busy_server.submit server ~cost:5 "b" ~done_:(fun x -> log := (x, Sim.now sim) :: !log)));
  Sim.run sim;
  check
    Alcotest.(list (pair string int))
    "restarts cleanly" [ ("a", 5); ("b", 105) ] (List.rev !log)

let test_busy_server_varied_costs () =
  let sim = Sim.create () in
  let server = Busy_server.create sim () in
  let finish = ref [] in
  List.iter
    (fun (name, cost) ->
      Busy_server.submit server ~cost name ~done_:(fun x -> finish := (x, Sim.now sim) :: !finish))
    [ ("slow", 100); ("fast", 1) ];
  Sim.run sim;
  check
    Alcotest.(list (pair string int))
    "fifo even when second is cheap" [ ("slow", 100); ("fast", 101) ] (List.rev !finish)

let test_link_delivery () =
  let sim = Sim.create () in
  let received = ref [] in
  let link = Link.create sim ~latency:7 ~handler:(fun x -> received := (x, Sim.now sim) :: !received) in
  Link.send link "x";
  ignore (Sim.schedule_at sim ~time:3 (fun () -> Link.send link "y"));
  Sim.run sim;
  check
    Alcotest.(list (pair string int))
    "fixed latency, order preserved" [ ("x", 7); ("y", 10) ] (List.rev !received);
  check Alcotest.int "sent count" 2 (Link.sent link)

let test_event_storm_deterministic () =
  (* Two identical simulations must execute identically. *)
  let run () =
    let sim = Sim.create () in
    let rng = Tq_util.Prng.create ~seed:99L in
    let sum = ref 0 in
    let rec spawn depth =
      if depth < 12 then
        ignore
          (Sim.schedule_after sim ~delay:(Tq_util.Prng.int rng 100 + 1) (fun () ->
               sum := !sum + Sim.now sim;
               spawn (depth + 1);
               spawn (depth + 1)))
    in
    spawn 0;
    Sim.run sim;
    (!sum, Sim.events_processed sim)
  in
  let a = run () and b = run () in
  check Alcotest.(pair int int) "deterministic" a b

let test_periodic_bounded () =
  let sim = Sim.create () in
  let fired = ref [] in
  let p = Sim.periodic sim ~until:100 ~interval:25 (fun () -> fired := Sim.now sim :: !fired) in
  Sim.run sim;
  check Alcotest.(list int) "fires every interval up to until" [ 25; 50; 75; 100 ]
    (List.rev !fired);
  check Alcotest.int "fired count" 4 (Sim.periodic_fired p)

let test_periodic_stop () =
  let sim = Sim.create () in
  let fired = ref 0 in
  let p = Sim.periodic sim ~interval:10 (fun () -> incr fired) in
  ignore
    (Sim.schedule_at sim ~time:35 (fun () ->
         Sim.stop_periodic p;
         (* Idempotent. *)
         Sim.stop_periodic p));
  Sim.run sim;
  check Alcotest.int "stopped after 3 firings" 3 !fired;
  check Alcotest.int "fired count matches" 3 (Sim.periodic_fired p)

let test_busy_server_occupy () =
  let sim = Sim.create () in
  let srv = Busy_server.create sim () in
  let done_at = ref [] in
  let submit v = Busy_server.submit srv ~cost:10 v ~done_:(fun v -> done_at := (v, Sim.now sim) :: !done_at) in
  submit "a";
  (* Blackout jumps ahead of the queued "b": real work resumes only
     after the outage window. *)
  submit "b";
  Busy_server.occupy srv ~cost:100;
  Sim.run sim;
  check
    Alcotest.(list (pair string int))
    "occupy delays queued work" [ ("a", 10); ("b", 120) ] (List.rev !done_at);
  check Alcotest.int "occupy is not a served item" 2 (Busy_server.served srv)

let suite =
  [
    Alcotest.test_case "event order" `Quick test_event_order;
    Alcotest.test_case "periodic bounded" `Quick test_periodic_bounded;
    Alcotest.test_case "periodic stop" `Quick test_periodic_stop;
    Alcotest.test_case "busy server occupy" `Quick test_busy_server_occupy;
    Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
    Alcotest.test_case "schedule from handler" `Quick test_schedule_from_handler;
    Alcotest.test_case "schedule past rejected" `Quick test_schedule_past_rejected;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "step" `Quick test_step;
    Alcotest.test_case "busy server serializes" `Quick test_busy_server_serializes;
    Alcotest.test_case "busy server restart" `Quick test_busy_server_idle_restart;
    Alcotest.test_case "busy server varied costs" `Quick test_busy_server_varied_costs;
    Alcotest.test_case "link delivery" `Quick test_link_delivery;
    Alcotest.test_case "deterministic storm" `Quick test_event_storm_deterministic;
  ]

(* --- Process (direct-style simulation coroutines) --- *)

module Process = Tq_engine.Process

let test_process_sleep_sequence () =
  let sim = Sim.create () in
  let log = ref [] in
  Process.spawn sim (fun ctx ->
      log := ("start", Process.now ctx) :: !log;
      Process.sleep ctx 100;
      log := ("mid", Process.now ctx) :: !log;
      Process.sleep ctx 250;
      log := ("end", Process.now ctx) :: !log);
  Sim.run sim;
  check
    Alcotest.(list (pair string int))
    "timeline" [ ("start", 0); ("mid", 100); ("end", 350) ] (List.rev !log)

let test_process_interleaving () =
  let sim = Sim.create () in
  let log = ref [] in
  let worker name period =
    Process.spawn sim (fun ctx ->
        for i = 1 to 3 do
          Process.sleep ctx period;
          log := (name, i, Process.now ctx) :: !log
        done)
  in
  worker "fast" 10;
  worker "slow" 25;
  Sim.run sim;
  check
    Alcotest.(list (triple string int int))
    "merged timeline"
    [
      ("fast", 1, 10); ("fast", 2, 20); ("slow", 1, 25); ("fast", 3, 30);
      ("slow", 2, 50); ("slow", 3, 75);
    ]
    (List.rev !log)

let test_process_mailbox_blocks () =
  let sim = Sim.create () in
  let mb = Process.Mailbox.create () in
  let got = ref [] in
  Process.spawn sim (fun ctx ->
      let v = Process.Mailbox.recv ctx mb in
      got := (v, Process.now ctx) :: !got);
  ignore
    (Sim.schedule_at sim ~time:500 (fun () -> Process.Mailbox.send sim mb "hello"));
  Sim.run sim;
  check Alcotest.(list (pair string int)) "received at send time" [ ("hello", 500) ] !got

let test_process_mailbox_queued_message_immediate () =
  let sim = Sim.create () in
  let mb = Process.Mailbox.create () in
  Process.Mailbox.send sim mb 42;
  let got = ref None in
  Process.spawn sim (fun ctx -> got := Some (Process.Mailbox.recv ctx mb, Process.now ctx));
  Sim.run sim;
  check Alcotest.(option (pair int int)) "no wait" (Some (42, 0)) !got;
  check Alcotest.int "drained" 0 (Process.Mailbox.length mb)

let test_process_producer_consumer_pipeline () =
  let sim = Sim.create () in
  let mb = Process.Mailbox.create () in
  let results = ref [] in
  (* Producer emits every 10ns; consumer takes 15ns per item: queueing
     delay accumulates exactly as in a D/D/1 queue. *)
  Process.spawn sim (fun ctx ->
      for i = 1 to 4 do
        Process.sleep ctx 10;
        Process.Mailbox.send (Process.sim ctx) mb i
      done);
  Process.spawn sim (fun ctx ->
      for _ = 1 to 4 do
        let item = Process.Mailbox.recv ctx mb in
        Process.sleep ctx 15;
        results := (item, Process.now ctx) :: !results
      done);
  Sim.run sim;
  check
    Alcotest.(list (pair int int))
    "D/D/1 departures" [ (1, 25); (2, 40); (3, 55); (4, 70) ] (List.rev !results)

let test_process_try_recv () =
  let sim = Sim.create () in
  let mb = Process.Mailbox.create () in
  check Alcotest.(option int) "empty" None (Process.Mailbox.try_recv mb);
  Process.Mailbox.send sim mb 7;
  check Alcotest.(option int) "queued" (Some 7) (Process.Mailbox.try_recv mb)

let process_suite =
  [
    Alcotest.test_case "process sleep" `Quick test_process_sleep_sequence;
    Alcotest.test_case "process interleaving" `Quick test_process_interleaving;
    Alcotest.test_case "mailbox blocks" `Quick test_process_mailbox_blocks;
    Alcotest.test_case "mailbox immediate" `Quick test_process_mailbox_queued_message_immediate;
    Alcotest.test_case "producer consumer" `Quick test_process_producer_consumer_pipeline;
    Alcotest.test_case "mailbox try_recv" `Quick test_process_try_recv;
  ]

let suite = suite @ process_suite
