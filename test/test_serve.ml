(* Tests for tq_serve: the wire codec, stream reassembly, and the live
   loopback server — a mixed-class smoke run and a drain-under-load
   shutdown, both against a real TCP socket. *)

module Protocol = Tq_serve.Protocol
module Server = Tq_serve.Server
module Client = Tq_serve.Client
module App = Tq_serve.App

let check = Alcotest.check

(* --- codec --- *)

let roundtrip req =
  let b = Buffer.create 64 in
  Protocol.encode_request b ~req_id:99 req;
  let frame = Buffer.to_bytes b in
  let rb = Protocol.Reassembly.create () in
  Protocol.Reassembly.add rb frame (Bytes.length frame);
  match Protocol.Reassembly.next rb with
  | Ok (Some payload) -> (
      match Protocol.decode_request payload with
      | Ok (id, req') ->
          check Alcotest.int "req_id" 99 id;
          req'
      | Error msg -> Alcotest.failf "decode: %s" msg)
  | Ok None -> Alcotest.fail "frame not reassembled"
  | Error msg -> Alcotest.failf "reassembly: %s" msg

let test_codec_roundtrip () =
  let reqs =
    [
      Protocol.Echo { spin_ns = 12_345; payload = "hello, \x00 binary" };
      Protocol.Echo { spin_ns = 0; payload = "" };
      Protocol.Kv_get { key = App.kv_key 7 };
      Protocol.Kv_set { key = "k"; value = String.make 1000 'v' };
      Protocol.Tpcc { kind = Tq_tpcc.Transactions.New_order };
      Protocol.Tpcc { kind = Tq_tpcc.Transactions.Stock_level };
    ]
  in
  List.iter (fun req -> check Alcotest.bool "request survives" true (roundtrip req = req)) reqs;
  List.iter
    (fun resp ->
      let frame = Protocol.response_frame resp in
      let rb = Protocol.Reassembly.create () in
      Protocol.Reassembly.add rb frame (Bytes.length frame);
      match Protocol.Reassembly.next rb with
      | Ok (Some payload) ->
          check Alcotest.bool "response survives" true
            (Protocol.decode_response payload = Ok resp)
      | _ -> Alcotest.fail "response frame lost")
    [
      { Protocol.req_id = 3; status = Protocol.Ok; body = "out" };
      { Protocol.req_id = 4; status = Protocol.Shed; body = "" };
      (* an [Error] response's message rides in the wire body *)
      { Protocol.req_id = 5; status = Protocol.Error "boom"; body = "" };
    ]

let test_reassembly_byte_at_a_time () =
  let b = Buffer.create 256 in
  let n = 20 in
  for i = 0 to n - 1 do
    Protocol.encode_request b ~req_id:i
      (Protocol.Echo { spin_ns = i; payload = String.make (i * 3) 'x' })
  done;
  let stream = Buffer.to_bytes b in
  let rb = Protocol.Reassembly.create () in
  let got = ref 0 in
  let byte = Bytes.create 1 in
  Bytes.iter
    (fun c ->
      Bytes.set byte 0 c;
      Protocol.Reassembly.add rb byte 1;
      let rec drain () =
        match Protocol.Reassembly.next rb with
        | Ok (Some payload) ->
            (match Protocol.decode_request payload with
            | Ok (id, Protocol.Echo { spin_ns; payload }) ->
                check Alcotest.int "ids in order" !got id;
                check Alcotest.int "spin" !got spin_ns;
                check Alcotest.int "payload length" (!got * 3) (String.length payload)
            | _ -> Alcotest.fail "wrong request");
            incr got;
            drain ()
        | Ok None -> ()
        | Error msg -> Alcotest.failf "reassembly: %s" msg
      in
      drain ())
    stream;
  check Alcotest.int "all frames recovered" n !got;
  check Alcotest.int "nothing left over" 0 (Protocol.Reassembly.pending_bytes rb)

let test_reassembly_rejects_oversized () =
  let rb = Protocol.Reassembly.create () in
  let evil = Bytes.create 4 in
  Bytes.set_int32_be evil 0 (Int32.of_int (Protocol.max_frame_bytes + 1));
  Protocol.Reassembly.add rb evil 4;
  match Protocol.Reassembly.next rb with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized length prefix must be rejected"

(* --- live loopback server --- *)

let with_server config f =
  let srv = Server.create config in
  let th = Thread.create (fun () -> Server.serve srv) () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Thread.join th)
    (fun () -> f srv)

let base_config =
  {
    Server.default_config with
    port = 0 (* ephemeral: tests never collide on a port *);
    workers = 2;
    rx_depth = 65536;
    kv_keys = 64;
  }

let nth_request i =
  match i mod 4 with
  | 0 -> Protocol.Echo { spin_ns = 500; payload = Printf.sprintf "p%d" i }
  | 1 -> Protocol.Kv_set { key = App.kv_key (i mod 64); value = Printf.sprintf "w%d" i }
  | 2 -> Protocol.Kv_get { key = App.kv_key (i mod 64) }
  | _ -> Protocol.Tpcc { kind = Tq_tpcc.Transactions.Payment }

let test_loopback_smoke () =
  with_server base_config (fun srv ->
      let n = 3_000 and window = 64 in
      let client = Client.connect ~port:(Server.port srv) () in
      let answered = Array.make n false in
      let t0 = Unix.gettimeofday () in
      let recv_one () =
        let resp = Client.recv client in
        let id = resp.Protocol.req_id in
        check Alcotest.bool "known id" true (id >= 0 && id < n);
        check Alcotest.bool "answered once" false answered.(id);
        answered.(id) <- true;
        (match resp.Protocol.status with
        | Protocol.Ok -> ()
        | Protocol.Shed -> Alcotest.fail "shed under tiny load"
        | Protocol.Error msg -> Alcotest.failf "handler error: %s" msg);
        match (nth_request id, resp.Protocol.body) with
        | Protocol.Echo { payload; _ }, body ->
            check Alcotest.string "echo echoes" payload body
        | Protocol.Kv_set _, body -> check Alcotest.string "set acks" "+" body
        | Protocol.Kv_get _, body ->
            check Alcotest.bool "get hits a prepopulated/written key" true
              (String.length body > 0 && body.[0] = '+')
        | Protocol.Tpcc _, body ->
            check Alcotest.bool "tpcc reports an outcome" true (String.length body > 0)
        | Protocol.Stats _, _ -> Alcotest.fail "smoke mix sends no Stats requests"
      in
      let inflight = ref 0 in
      for i = 0 to n - 1 do
        Client.send client ~req_id:i (nth_request i);
        incr inflight;
        if !inflight >= window then begin
          recv_one ();
          decr inflight
        end
      done;
      while !inflight > 0 do
        recv_one ();
        decr inflight
      done;
      let elapsed = Unix.gettimeofday () -. t0 in
      Client.close client;
      check Alcotest.bool "every request answered" true (Array.for_all Fun.id answered);
      (* sanity, not a benchmark: thousands of mixed requests should take
         seconds at worst even on a single shared core *)
      check Alcotest.bool "sane latency" true (elapsed /. float_of_int n < 0.01);
      let s = Server.stats srv in
      check Alcotest.int "parsed all" n s.Server.parsed;
      check Alcotest.int "dispatched all" n s.Server.dispatched;
      check Alcotest.int "completed all" n s.Server.completed;
      check Alcotest.int "nothing shed" 0 s.Server.shed;
      check Alcotest.int "no protocol errors" 0 s.Server.protocol_errors;
      check Alcotest.int "no orphans" 0 s.Server.orphaned)

let test_drain_under_load () =
  let srv = Server.create { base_config with ring_capacity = 4096 } in
  let th = Thread.create (fun () -> Server.serve srv) () in
  let n = 1_000 in
  let client = Client.connect ~port:(Server.port srv) () in
  for i = 0 to n - 1 do
    Client.send client ~req_id:i (Protocol.Echo { spin_ns = 20_000; payload = "" })
  done;
  (* wait for the server to take ownership of every request... *)
  let deadline = Unix.gettimeofday () +. 30.0 in
  while (Server.stats srv).Server.parsed < n && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  check Alcotest.int "server accepted everything" n (Server.stats srv).Server.parsed;
  (* ...then pull the plug mid-flight: a graceful drain must still
     answer every single one *)
  Server.stop srv;
  let ok = ref 0 and shed = ref 0 and got = ref 0 in
  (try
     while !got < n do
       let resp = Client.recv client in
       (match resp.Protocol.status with
       | Protocol.Ok -> incr ok
       | Protocol.Shed -> incr shed
       | Protocol.Error msg -> Alcotest.failf "handler error: %s" msg);
       incr got
     done
   with End_of_file -> ());
  Thread.join th;
  Client.close client;
  let s = Server.stats srv in
  check Alcotest.int "every parsed request answered" n !got;
  check Alcotest.int "dispatched + shed = parsed" s.Server.parsed
    (s.Server.dispatched + s.Server.shed);
  check Alcotest.int "zero in-flight lost" s.Server.dispatched s.Server.completed;
  check Alcotest.int "client saw the completions" s.Server.completed !ok;
  check Alcotest.int "client saw the sheds" s.Server.shed !shed

(* --- the Stats RPC and live observability --- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let run_batch client n =
  for i = 0 to n - 1 do
    Client.send client ~req_id:i (nth_request i)
  done;
  for _ = 1 to n do
    ignore (Client.recv client)
  done

let test_stats_rpc () =
  with_server base_config (fun srv ->
      let n = 200 in
      let client = Client.connect ~port:(Server.port srv) () in
      run_batch client n;
      (* JSON view: accurate accounting, not counted in parsed *)
      let body = Client.stats client in
      List.iter
        (fun needle ->
          check Alcotest.bool (Printf.sprintf "json has %s" needle) true
            (contains body needle))
        [
          Printf.sprintf "\"parsed\": %d" n;
          Printf.sprintf "\"dispatched\": %d" n;
          Printf.sprintf "\"completed\": %d" n;
          "\"shed\": 0";
          "\"in_flight\": 0";
          "\"per_class\"";
          "\"echo\"";
          "\"runtime\"";
          "\"latency\"";
        ];
      (* the prometheus view renders the same counters as text *)
      let text = Client.stats ~view:Protocol.Stats_text client in
      List.iter
        (fun needle ->
          check Alcotest.bool (Printf.sprintf "text has %s" needle) true
            (contains text needle))
        [
          Printf.sprintf "tq_serve_parsed_total{role=\"dispatcher\"} %d\n" n;
          "# TYPE tq_serve_parsed_total counter";
          "tq_runtime_quanta_total{role=\"worker\",worker=\"0\"}";
          "# TYPE tq_serve_sojourn_ns histogram";
          "# TYPE tq_serve_latency_ns histogram";
          "# TYPE tq_serve_latency_ns_quantiles summary";
          "quantile=\"0.99\"";
        ];
      check Alcotest.(list string) "exposition lints clean" [] (Tq_obs.Expo.lint text);
      (* stats answers ride outside the work accounting *)
      let s = Server.stats srv in
      check Alcotest.int "stats RPCs counted apart" 2 s.Server.stats_served;
      check Alcotest.int "parsed untouched by stats" n s.Server.parsed;
      check Alcotest.int "parsed = dispatched + shed" s.Server.parsed
        (s.Server.dispatched + s.Server.shed);
      (* in-process accessors agree with the RPC body *)
      let merged = Tq_serve.Server.merged_counters srv in
      check Alcotest.int "merged dispatcher counter" n
        (Tq_obs.Counters.find_count merged "serve.parsed");
      check Alcotest.bool "workers ran quanta" true
        (Tq_obs.Counters.find_count merged "runtime.quanta" > 0);
      check Alcotest.bool "sojourns recorded" true
        (Tq_obs.Latency.count (Tq_obs.Latency.recorder (Server.latency srv) "all") = n);
      Client.close client)

let test_shed_visible_in_stats () =
  (* rx_depth 1: with a pipelined burst nearly everything sheds, and the
     Stats RPC must show it while keeping the accounting identity *)
  with_server { base_config with rx_depth = 1 } (fun srv ->
      let n = 300 in
      let client = Client.connect ~port:(Server.port srv) () in
      for i = 0 to n - 1 do
        Client.send client ~req_id:i (Protocol.Echo { spin_ns = 1_000; payload = "x" })
      done;
      let shed = ref 0 and ok = ref 0 in
      for _ = 1 to n do
        match (Client.recv client).Protocol.status with
        | Protocol.Shed -> incr shed
        | Protocol.Ok -> incr ok
        | Protocol.Error msg -> Alcotest.failf "handler error: %s" msg
      done;
      check Alcotest.bool "the gate shed something" true (!shed > 0);
      check Alcotest.int "every send answered" n (!shed + !ok);
      let body = Client.stats client in
      check Alcotest.bool "shed visible in the snapshot" true
        (contains body (Printf.sprintf "\"shed\": %d" !shed));
      let s = Server.stats srv in
      check Alcotest.int "client and server agree on sheds" !shed s.Server.shed;
      check Alcotest.int "parsed = dispatched + shed" s.Server.parsed
        (s.Server.dispatched + s.Server.shed);
      let merged = Server.merged_counters srv in
      check Alcotest.int "per-class shed counter" !shed
        (Tq_obs.Counters.find_count merged "serve.shed.echo");
      Client.close client)

let test_cross_domain_spans () =
  let spans = Tq_obs.Span.create ~capacity_per_sink:4096 () in
  let srv = Server.create ~spans base_config in
  let th = Thread.create (fun () -> Server.serve srv) () in
  let n = 100 in
  let client = Client.connect ~port:(Server.port srv) () in
  run_batch client n;
  let trace = Client.stats ~view:Protocol.Stats_trace client in
  Client.close client;
  Server.stop srv;
  Thread.join th;
  check Alcotest.bool "trace view serves chrome json" true
    (contains trace "\"traceEvents\"" && contains trace "\"name\":\"quantum\"");
  let records = Tq_obs.Span.merge spans in
  check Alcotest.bool "spans recorded" true (List.length records > 0);
  check Alcotest.int "nothing dropped at this volume" 0 (Tq_obs.Span.dropped spans);
  (* each phase of the pipeline shows up *)
  List.iter
    (fun phase ->
      check Alcotest.bool
        (Printf.sprintf "phase %s present" (Tq_obs.Span.phase_name phase))
        true
        (List.exists (fun (r : Tq_obs.Span.record) -> r.Tq_obs.Span.phase = phase) records))
    [
      Tq_obs.Span.Accept;
      Tq_obs.Span.Parse;
      Tq_obs.Span.Dispatch;
      Tq_obs.Span.Ring_hop;
      Tq_obs.Span.Quantum;
      Tq_obs.Span.Reply_flush;
    ];
  (* the tentpole property: one request id observed on the dispatcher
     lane AND a worker lane — the cross-domain stitch *)
  let dispatcher_ids, worker_ids =
    List.fold_left
      (fun (d, w) (r : Tq_obs.Span.record) ->
        if r.Tq_obs.Span.req_id < 0 then (d, w)
        else
          match r.Tq_obs.Span.lane with
          | Tq_obs.Event.Dispatcher _ -> (r.Tq_obs.Span.req_id :: d, w)
          | Tq_obs.Event.Worker _ -> (d, r.Tq_obs.Span.req_id :: w)
          | Tq_obs.Event.Global | Tq_obs.Event.Gc _ -> (d, w))
      ([], []) records
  in
  let stitched =
    List.filter (fun id -> List.mem id worker_ids) dispatcher_ids |> List.sort_uniq compare
  in
  check Alcotest.bool "request ids stitch across domains" true
    (List.length stitched >= n / 2);
  (* every dispatched request produced exactly one Quantum-per-slice
     chain ending in a completion: ids on worker lanes are the
     dispatcher-issued sequence, so they are dense from 0 *)
  let s = Server.stats srv in
  check Alcotest.int "server answered the batch" n s.Server.completed

let suite =
  [
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "reassembly byte-at-a-time" `Quick test_reassembly_byte_at_a_time;
    Alcotest.test_case "reassembly oversized" `Quick test_reassembly_rejects_oversized;
    Alcotest.test_case "loopback smoke" `Quick test_loopback_smoke;
    Alcotest.test_case "drain under load" `Quick test_drain_under_load;
    Alcotest.test_case "stats rpc" `Quick test_stats_rpc;
    Alcotest.test_case "shed visible in stats" `Quick test_shed_visible_in_stats;
    Alcotest.test_case "cross-domain spans" `Quick test_cross_domain_spans;
  ]

(* --- the breakdown view: stage decomposition over the wire --- *)

let test_breakdown_rpc () =
  let spans = Tq_obs.Span.create ~capacity_per_sink:8192 () in
  let srv = Server.create ~spans base_config in
  let th = Thread.create (fun () -> Server.serve srv) () in
  let n = 100 in
  let client = Client.connect ~port:(Server.port srv) () in
  run_batch client n;
  (* the JSON view decomposes live traffic and carries the invariant *)
  let body = Client.stats ~view:Protocol.Stats_breakdown client in
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "breakdown json has %s" needle) true
        (contains body needle))
    [
      "\"schema_version\"";
      "\"requests\"";
      "\"sum_rel_error\"";
      "\"stages\"";
      "\"service\"";
      "\"reply_flush\"";
      "\"sojourn\"";
    ];
  (* the text view renders the table + invariant footer *)
  let text = Client.stats ~view:Protocol.Stats_breakdown_text client in
  check Alcotest.bool "text view shows the table" true
    (contains text "Stage breakdown" && contains text "sum invariant");
  Client.close client;
  Server.stop srv;
  Thread.join th;
  (* with the writers quiesced, the in-process accessor must decompose
     (nearly) everything exactly: all stamps share one wall clock *)
  let p = Server.breakdown srv in
  check Alcotest.bool "most requests decomposed" true (Tq_obs.Profile.requests p >= n * 9 / 10);
  check Alcotest.bool "decompositions are exact" true
    (Tq_obs.Profile.exact_fraction p >= 0.9);
  check Alcotest.bool "stage sums track sojourn" true
    (Tq_obs.Profile.sum_rel_error p < 0.01);
  check Alcotest.int "nothing dropped at this volume" 0 (Tq_obs.Span.dropped spans)

let test_breakdown_needs_spans () =
  (* without span collection there is nothing to decompose: the RPC must
     say so instead of returning an empty report *)
  with_server base_config (fun srv ->
      let client = Client.connect ~port:(Server.port srv) () in
      run_batch client 10;
      (match Client.stats ~view:Protocol.Stats_breakdown client with
      | exception Failure msg ->
          check Alcotest.bool "error names the fix" true (contains msg "--obs")
      | body -> Alcotest.failf "expected an error response, got: %s" body);
      Client.close client)

let breakdown_suite =
  [
    Alcotest.test_case "breakdown rpc" `Quick test_breakdown_rpc;
    Alcotest.test_case "breakdown needs spans" `Quick test_breakdown_needs_spans;
  ]

let suite = suite @ breakdown_suite

(* --- the adaptive controller and the live fault plane --- *)

let adaptive_config =
  let ctl =
    {
      (Tq_control.Controller.default_config
         ~quantum_initial_ns:base_config.Server.quantum_ns ~shed_initial:1_024)
      with
      Tq_control.Controller.interval_ns = 1_000_000 (* 1 ms: many ticks per test *);
      objective = { Tq_obs.Slo.name = "test"; latency_ns = 5_000_000; goodput = 0.99 };
      quantum_min_ns = 1_000;
      quantum_max_ns = 2 * base_config.Server.quantum_ns;
    }
  in
  {
    base_config with
    Server.adaptive = Some ctl;
    heartbeat_interval_s = 0.01;
    missed_heartbeats = 3;
  }

let test_adaptive_controller_live () =
  with_server adaptive_config (fun srv ->
      let client = Client.connect ~port:(Server.port srv) () in
      run_batch client 500;
      (* several controller intervals pass even on a fast machine *)
      Unix.sleepf 0.05;
      run_batch client 100;
      let body = Client.stats ~view:Protocol.Stats_control client in
      List.iter
        (fun needle ->
          check Alcotest.bool (Printf.sprintf "control view has %s" needle) true
            (contains body needle))
        [ "\"ticks\""; "\"decisions\""; "\"shed_limit\""; "\"burn\""; "\"classes\"" ];
      check Alcotest.bool "controller actually ticked" true
        (match Server.control_json srv with
        | Some s -> contains s "\"ticks\"" && not (contains s "\"ticks\": 0,")
        | None -> false);
      (* the controller's telemetry rides the merged registry, and the
         full snapshot embeds the control state *)
      let merged = Server.merged_counters srv in
      check Alcotest.bool "control.ticks counter" true
        (Tq_obs.Counters.find_count merged "control.ticks" > 0);
      check Alcotest.bool "snapshot embeds control" true
        (contains (Server.snapshot_json srv) "\"control\"");
      Client.close client)

let test_control_view_needs_adaptive () =
  with_server base_config (fun srv ->
      let client = Client.connect ~port:(Server.port srv) () in
      (match Client.stats ~view:Protocol.Stats_control client with
      | exception Failure msg ->
          check Alcotest.bool "error names the fix" true (contains msg "--adaptive")
      | body -> Alcotest.failf "expected an error response, got: %s" body);
      check Alcotest.bool "no in-process control state" true
        (Server.control_json srv = None);
      Client.close client)

(* Kill a worker domain mid-load: the heartbeat monitor must notice,
   re-dispatch its pending requests to the survivor, and the drain
   invariant (zero admitted requests lost) must hold end to end. *)
let test_kill_worker_recovery () =
  let config = { adaptive_config with Server.ring_capacity = 4_096 } in
  let srv = Server.create config in
  let th = Thread.create (fun () -> Server.serve srv) () in
  let n = 600 in
  let client = Client.connect ~port:(Server.port srv) () in
  for i = 0 to n - 1 do
    Client.send client ~req_id:i (Protocol.Echo { spin_ns = 50_000; payload = "" })
  done;
  (* wait until the pool owns a good chunk, then pull a domain *)
  let deadline = Unix.gettimeofday () +. 30.0 in
  while
    (Server.stats srv).Server.dispatched < n / 4 && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.0005
  done;
  Server.kill_worker srv ~worker:1;
  let ok = ref 0 and shed = ref 0 in
  for _ = 1 to n do
    match (Client.recv client).Protocol.status with
    | Protocol.Ok -> incr ok
    | Protocol.Shed -> incr shed
    | Protocol.Error msg -> Alcotest.failf "handler error: %s" msg
  done;
  check Alcotest.int "every request answered" n (!ok + !shed);
  let s = Server.stats srv in
  check Alcotest.int "zero loss across the kill" s.Server.dispatched s.Server.completed;
  check Alcotest.int "death verdict reached" 1 s.Server.dead_workers;
  check Alcotest.bool "orphans re-dispatched to the survivor" true
    (s.Server.redispatched > 0);
  check Alcotest.int "one worker left standing" 1 (Server.alive_workers srv);
  Server.stop srv;
  Thread.join th;
  Client.close client;
  (* the drain still holds after the thread joined *)
  let s = Server.stats srv in
  check Alcotest.int "post-drain conservation" s.Server.dispatched s.Server.completed

(* A stall shorter than the death verdict, plus a dispatcher pause:
   both must ride through with no dead worker and no lost request. *)
let test_stall_and_pause_ride_through () =
  with_server { base_config with Server.heartbeat_interval_s = 0.02;
                missed_heartbeats = 5 }
    (fun srv ->
      let n = 200 in
      let client = Client.connect ~port:(Server.port srv) () in
      for i = 0 to n - 1 do
        Client.send client ~req_id:i (Protocol.Echo { spin_ns = 10_000; payload = "" })
      done;
      Server.inject_stall srv ~worker:0 ~duration_ns:30_000_000;
      Server.pause_dispatcher srv ~duration_ns:20_000_000;
      let ok = ref 0 and shed = ref 0 in
      for _ = 1 to n do
        match (Client.recv client).Protocol.status with
        | Protocol.Ok -> incr ok
        | Protocol.Shed -> incr shed
        | Protocol.Error msg -> Alcotest.failf "handler error: %s" msg
      done;
      check Alcotest.int "every request answered" n (!ok + !shed);
      let s = Server.stats srv in
      check Alcotest.int "no death verdict on a transient stall" 0 s.Server.dead_workers;
      check Alcotest.int "zero loss" s.Server.dispatched s.Server.completed;
      Client.close client)

(* The fault schedule driver against the real server loop: events fire
   at their offsets through the on_tick hook. *)
let test_live_fault_schedule () =
  (* the batch below holds ~20 ms of work, so the kill at 8 ms lands
     while the victim still owns queued requests *)
  let events =
    match Tq_fault.Live.parse "stall@2:w0:5,kill@8:w1" with
    | Ok evs -> evs
    | Error msg -> Alcotest.failf "parse: %s" msg
  in
  let live = Tq_fault.Live.create events in
  check Alcotest.int "two events pending" 2 (Tq_fault.Live.pending live);
  let config = { adaptive_config with Server.ring_capacity = 4_096 } in
  let srv = Server.create config in
  let actions =
    {
      Tq_fault.Live.stall =
        (fun ~worker ~duration_ns -> Server.inject_stall srv ~worker ~duration_ns);
      kill = (fun ~worker -> Server.kill_worker srv ~worker);
      pause = (fun ~duration_ns -> Server.pause_dispatcher srv ~duration_ns);
    }
  in
  Server.on_tick srv (fun ~now_ns -> ignore (Tq_fault.Live.poll live ~now_ns actions : int));
  let th = Thread.create (fun () -> Server.serve srv) () in
  let n = 800 in
  let client = Client.connect ~port:(Server.port srv) () in
  for i = 0 to n - 1 do
    Client.send client ~req_id:i (Protocol.Echo { spin_ns = 50_000; payload = "" })
  done;
  let answered = ref 0 in
  for _ = 1 to n do
    match (Client.recv client).Protocol.status with
    | Protocol.Ok | Protocol.Shed -> incr answered
    | Protocol.Error msg -> Alcotest.failf "handler error: %s" msg
  done;
  check Alcotest.int "every request answered through the schedule" n !answered;
  check Alcotest.int "both events fired" 2 (Tq_fault.Live.fired live);
  let s = Server.stats srv in
  check Alcotest.int "zero loss under the schedule" s.Server.dispatched s.Server.completed;
  check Alcotest.int "the killed worker was declared dead" 1 s.Server.dead_workers;
  Server.stop srv;
  Thread.join th;
  Client.close client

let test_live_parse_errors () =
  (match Tq_fault.Live.parse "stall@5:w0:10, pause@8:3 ,kill@9:w2" with
  | Ok evs -> check Alcotest.int "spec with spaces parses" 3 (List.length evs)
  | Error msg -> Alcotest.failf "parse: %s" msg);
  List.iter
    (fun spec ->
      match Tq_fault.Live.parse spec with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" spec
      | Error msg ->
          check Alcotest.bool "error names the grammar" true (contains msg "stall@"))
    [ "stall@5"; "kill@5:x1"; "frob@1:w0"; "stall@5:w-1:10" ]

let fault_suite =
  [
    Alcotest.test_case "adaptive controller live" `Quick test_adaptive_controller_live;
    Alcotest.test_case "control view needs --adaptive" `Quick
      test_control_view_needs_adaptive;
    Alcotest.test_case "kill worker: zero-loss recovery" `Quick test_kill_worker_recovery;
    Alcotest.test_case "stall + pause ride through" `Quick
      test_stall_and_pause_ride_through;
    Alcotest.test_case "live fault schedule" `Quick test_live_fault_schedule;
    Alcotest.test_case "live fault spec parse" `Quick test_live_parse_errors;
  ]

let suite = suite @ fault_suite

(* --- the multi-lane I/O plane: pooled framing and lane sharding --- *)

(* encode_response_into must produce byte-for-byte what response_frame
   produces, even into a buffer full of stale garbage (the pool hands
   out dirty reused buffers by design), and Outbuf must survive
   arbitrary partial consumes — together the zero-copy reply path. *)
let test_zero_copy_framing () =
  let resps =
    [
      { Protocol.req_id = 1; status = Protocol.Ok; body = "" };
      { Protocol.req_id = 0x1234_5678_9abc; status = Protocol.Ok; body = "payload" };
      { Protocol.req_id = 2; status = Protocol.Shed; body = "" };
      { Protocol.req_id = 3; status = Protocol.Error "boom"; body = "ignored" };
      { Protocol.req_id = 4; status = Protocol.Ok; body = String.make 300 'z' };
    ]
  in
  List.iter
    (fun resp ->
      let golden = Protocol.response_frame resp in
      let len = Protocol.response_frame_len resp in
      check Alcotest.int "frame_len predicts the frame" (Bytes.length golden) len;
      let dirty = Bytes.make (len + 32) '\xff' in
      let n = Protocol.encode_response_into dirty ~off:16 resp in
      check Alcotest.int "encode_into reports the frame length" len n;
      check Alcotest.bool "encode_into matches response_frame" true
        (Bytes.sub dirty 16 n = golden))
    resps;
  (* Outbuf: interleaved adds and partial consumes preserve the byte
     stream across compactions and growth. *)
  let ob = Protocol.Outbuf.create ~capacity:16 () in
  let fed = Buffer.create 256 and drained = Buffer.create 256 in
  let rng = Tq_util.Prng.create ~seed:7L in
  for i = 0 to 99 do
    let chunk = String.make (Tq_util.Prng.int rng 40) (Char.chr (65 + (i mod 26))) in
    Buffer.add_string fed chunk;
    Protocol.Outbuf.add_bytes ob (Bytes.of_string chunk) ~off:0 ~len:(String.length chunk);
    let pending = Protocol.Outbuf.pending_bytes ob in
    let take = Tq_util.Prng.int rng (pending + 1) in
    let buf, off, len = Protocol.Outbuf.peek ob in
    check Alcotest.int "peek agrees with pending" pending len;
    Buffer.add_subbytes drained buf off take;
    Protocol.Outbuf.consume ob take
  done;
  let buf, off, len = Protocol.Outbuf.peek ob in
  Buffer.add_subbytes drained buf off len;
  Protocol.Outbuf.consume ob len;
  check Alcotest.bool "outbuf drained empty" true (Protocol.Outbuf.is_empty ob);
  check Alcotest.string "outbuf preserves the byte stream" (Buffer.contents fed)
    (Buffer.contents drained)

(* Buffer-pool property: however acquires and releases interleave, a
   response encoded into a (dirty, reused) pooled buffer decodes back
   to exactly itself — no cross-request bleed — and the pool really
   does recycle (hits on same-size traffic, exact fresh allocations on
   oversize). *)
let test_pool_reuse_no_bleed =
  let pool = Tq_serve.Pool.create ~max_pooled:4 ~buf_bytes:64 () in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"pooled framing never bleeds across requests"
       QCheck.(list_of_size (Gen.int_range 1 40) (pair small_nat (int_bound 120)))
       (fun reqs ->
         (* Half the buffers stay "in flight" briefly so reuse really
            interleaves with live encodes. *)
         let held = ref [] in
         List.iteri
           (fun i (id, body_len) ->
             let resp =
               {
                 Protocol.req_id = id;
                 status = (if body_len mod 3 = 0 then Protocol.Shed else Protocol.Ok);
                 body = String.init body_len (fun j -> Char.chr ((id + j) mod 256));
               }
             in
             let resp =
               if body_len mod 3 = 0 then { resp with body = "" } else resp
             in
             let len = Protocol.response_frame_len resp in
             let buf = Tq_serve.Pool.acquire pool ~len in
             check Alcotest.bool "buffer fits the frame" true (Bytes.length buf >= len);
             let n = Protocol.encode_response_into buf ~off:0 resp in
             check Alcotest.bool "pooled encode matches the golden frame" true
               (Bytes.sub buf 0 n = Protocol.response_frame resp);
             if i mod 2 = 0 then held := buf :: !held
             else Tq_serve.Pool.release pool buf)
           reqs;
         List.iter (Tq_serve.Pool.release pool) !held;
         true))

let test_pool_recycles () =
  let pool = Tq_serve.Pool.create ~max_pooled:8 ~buf_bytes:64 () in
  (* warm: one buffer in circulation -> every acquire after the first
     must be a free-list hit *)
  for _ = 1 to 50 do
    let b = Tq_serve.Pool.acquire pool ~len:32 in
    Tq_serve.Pool.release pool b
  done;
  check Alcotest.int "one miss to warm the pool" 1 (Tq_serve.Pool.misses pool);
  check Alcotest.int "then every acquire hits" 49 (Tq_serve.Pool.hits pool);
  (* oversize requests bypass the pool with exact allocations *)
  let big = Tq_serve.Pool.acquire pool ~len:1000 in
  check Alcotest.int "oversize is exact" 1000 (Bytes.length big);
  check Alcotest.int "oversize counted" 1 (Tq_serve.Pool.oversize pool);
  Tq_serve.Pool.release pool big;
  check Alcotest.int "wrong-size release discarded" 1 (Tq_serve.Pool.discarded pool);
  (* scrubbed pools hand back zeroed buffers *)
  let sp = Tq_serve.Pool.create ~scrub:true ~buf_bytes:64 () in
  let b = Tq_serve.Pool.acquire sp ~len:64 in
  Bytes.fill b 0 64 'x';
  Tq_serve.Pool.release sp b;
  let b' = Tq_serve.Pool.acquire sp ~len:64 in
  check Alcotest.bool "scrub zeroes reused buffers" true
    (Bytes.for_all (fun c -> c = '\x00') b')

let test_multi_lane_loopback () =
  with_server { base_config with Server.lanes = 2 } (fun srv ->
      check Alcotest.int "server reports its lanes" 2 (Server.lanes srv);
      let n = 2_000 in
      let clients = Array.init 4 (fun _ -> Client.connect ~port:(Server.port srv) ()) in
      let answered = Array.make n false in
      (* window of 32 per connection, ids striped across clients *)
      let window = 32 in
      let inflight = Array.make 4 0 in
      let recv_one c k =
        let resp = Client.recv clients.(c) in
        let id = resp.Protocol.req_id in
        check Alcotest.bool "id belongs to this connection" true (id mod 4 = c);
        check Alcotest.bool "answered once" false answered.(id);
        answered.(id) <- true;
        (match resp.Protocol.status with
        | Protocol.Ok -> ()
        | Protocol.Shed -> Alcotest.fail "shed under tiny load"
        | Protocol.Error msg -> Alcotest.failf "handler error: %s" msg);
        inflight.(c) <- inflight.(c) - k
      in
      for i = 0 to n - 1 do
        let c = i mod 4 in
        Client.send clients.(c) ~req_id:i (nth_request i);
        inflight.(c) <- inflight.(c) + 1;
        if inflight.(c) >= window then recv_one c 1
      done;
      Array.iteri
        (fun c _ ->
          while inflight.(c) > 0 do
            recv_one c 1
          done)
        clients;
      check Alcotest.bool "every request answered across lanes" true
        (Array.for_all Fun.id answered);
      (* exact accounting survives the sharding *)
      let s = Server.stats srv in
      check Alcotest.int "parsed all" n s.Server.parsed;
      check Alcotest.int "completions conserved" n s.Server.completed;
      check Alcotest.int "parsed = dispatched + shed" s.Server.parsed
        (s.Server.dispatched + s.Server.shed);
      check Alcotest.int "no orphans" 0 s.Server.orphaned;
      check Alcotest.int "connections counted once" 4 s.Server.connections;
      (* the snapshot's io_plane section: right lane count, accept
         spreading gave both lanes connections, per-lane identity *)
      let body = Client.stats clients.(0) in
      check Alcotest.bool "io_plane present" true (contains body "\"io_plane\"");
      check Alcotest.bool "snapshot shows 2 lanes" true (contains body "\"lanes\": 2");
      check Alcotest.bool "lane 0 took connections" false
        (contains body "{\"lane\": 0, \"connections\": 0,");
      check Alcotest.bool "lane 1 took connections" false
        (contains body "{\"lane\": 1, \"connections\": 0,");
      (* sojourns from both lanes pool into one ladder *)
      check Alcotest.int "latency merged across lanes" n
        (Tq_obs.Latency.count (Tq_obs.Latency.recorder (Server.latency srv) "all"));
      Array.iter Client.close clients)

(* lanes=1 must be byte-identical on the wire to the classic
   single-dispatcher server: drive a raw socket with a strict
   request/response window of 1 and compare every response frame
   against the golden encoding. *)
let test_lanes1_wire_byte_compat () =
  with_server base_config (fun srv ->
      check Alcotest.int "default config is single-lane" 1 (Server.lanes srv);
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", Server.port srv));
      let read_exactly n =
        let buf = Bytes.create n in
        let got = ref 0 in
        while !got < n do
          match Unix.read fd buf !got (n - !got) with
          | 0 -> Alcotest.fail "server closed mid-frame"
          | k -> got := !got + k
        done;
        buf
      in
      for i = 0 to 199 do
        let payload = String.make (i mod 97) 'e' in
        let b = Buffer.create 128 in
        Protocol.encode_request b ~req_id:i (Protocol.Echo { spin_ns = 0; payload });
        let frame = Buffer.to_bytes b in
        let sent = Unix.write fd frame 0 (Bytes.length frame) in
        check Alcotest.int "request written whole" (Bytes.length frame) sent;
        let golden =
          Protocol.response_frame { Protocol.req_id = i; status = Protocol.Ok; body = payload }
        in
        let got = read_exactly (Bytes.length golden) in
        check Alcotest.bool
          (Printf.sprintf "response %d byte-identical on the wire" i)
          true (got = golden)
      done;
      Unix.close fd)

let lane_suite =
  [
    Alcotest.test_case "zero-copy framing" `Quick test_zero_copy_framing;
    test_pool_reuse_no_bleed;
    Alcotest.test_case "pool recycles buffers" `Quick test_pool_recycles;
    Alcotest.test_case "multi-lane loopback" `Quick test_multi_lane_loopback;
    Alcotest.test_case "lanes=1 wire byte-compat" `Quick test_lanes1_wire_byte_compat;
  ]

let suite = suite @ lane_suite

(* --- tail forensics: the outliers views and the HTTP metrics plane --- *)

let test_outlier_codec_roundtrip () =
  (* tags 6/7 carry a limit payload past the view tag; 0 = all *)
  List.iter
    (fun view ->
      check Alcotest.bool "outlier stats view survives" true
        (roundtrip (Protocol.Stats { view }) = Protocol.Stats { view }))
    [
      Protocol.Stats_outliers { limit = 0 };
      Protocol.Stats_outliers { limit = 7 };
      Protocol.Stats_outliers { limit = 65_535 };
      Protocol.Stats_outliers_text { limit = 0 };
      Protocol.Stats_outliers_text { limit = 10 };
    ]

let tail_config = { base_config with lanes = 2; steal = true }

let test_outliers_rpc () =
  let spans = Tq_obs.Span.create ~capacity_per_sink:16_384 () in
  let tail = Tq_obs.Tail.create ~k:8 () in
  let srv = Server.create ~spans ~tail tail_config in
  let th = Thread.create (fun () -> Server.serve srv) () in
  let n = 200 in
  let client = Client.connect ~port:(Server.port srv) () in
  run_batch client n;
  (* live over the wire: JSON and table views *)
  let body = Client.stats ~view:(Protocol.Stats_outliers { limit = 5 }) client in
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "outliers json has %s" needle) true
        (contains body needle))
    [ "\"dossiers\""; "\"offered\""; "\"retained\""; "\"stages_ns\""; "\"seq\"" ];
  let text = Client.stats ~view:(Protocol.Stats_outliers_text { limit = 5 }) client in
  check Alcotest.bool "table view renders" true
    (contains text "Slow-request dossiers" && contains text "sojourn");
  Client.close client;
  Server.stop srv;
  Thread.join th;
  (* quiesced: the in-process dossiers must attribute exactly *)
  let ds = Server.outlier_dossiers srv ~limit:0 in
  check Alcotest.bool "dossiers retained" true (ds <> []);
  check Alcotest.bool "limit truncates" true
    (List.length (Server.outlier_dossiers srv ~limit:3) <= 3);
  List.iter
    (fun d ->
      check Alcotest.bool "attributed after drain" true d.Tq_obs.Tail.d_attributed;
      let sum =
        List.fold_left (fun acc (_, v) -> acc + v) 0 d.Tq_obs.Tail.d_stages
      in
      check Alcotest.int "stages telescope to the sojourn exactly" sum
        d.Tq_obs.Tail.d_sojourn_ns;
      let e = d.Tq_obs.Tail.d_entry in
      check Alcotest.bool "lane in range" true
        (e.Tq_obs.Tail.e_lane >= 0 && e.Tq_obs.Tail.e_lane < 2);
      check Alcotest.bool "worker in range" true
        (e.Tq_obs.Tail.e_worker >= 0 && e.Tq_obs.Tail.e_worker < 2);
      check Alcotest.bool "controller quantum sampled" true
        (e.Tq_obs.Tail.e_quantum_ns > 0))
    ds;
  (* the acceptance ledger closes after drain *)
  let s = Server.stats srv in
  check Alcotest.int "accepted = completed after drain"
    s.Server.dispatched
    (s.Server.completed + s.Server.lost + s.Server.dropped);
  check Alcotest.int "no spans dropped at this volume" 0 (Server.span_dropped srv);
  (* the outlier-only trace is well-formed and much smaller than the
     full request stream: only retained requests' spans survive *)
  let trace = Server.tail_trace srv in
  check Alcotest.bool "outlier trace is chrome json" true
    (contains trace "\"traceEvents\"")

let test_outliers_need_tail () =
  with_server base_config (fun srv ->
      let client = Client.connect ~port:(Server.port srv) () in
      run_batch client 10;
      (match Client.stats ~view:(Protocol.Stats_outliers { limit = 5 }) client with
      | exception Failure msg ->
          check Alcotest.bool "error names the fix" true (contains msg "--tail-k")
      | body -> Alcotest.failf "expected an error response, got: %s" body);
      Client.close client)

(* A one-shot HTTP/1.1 GET against the metrics plane, raw sockets: the
   test must not trust the listener's own client code (there is none). *)
let http_get ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path in
  ignore (Unix.write_substring fd req 0 (String.length req));
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  (try
     let rec loop () =
       let n = Unix.read fd chunk 0 4096 in
       if n > 0 then begin
         Buffer.add_subbytes buf chunk 0 n;
         loop ()
       end
     in
     loop ()
   with End_of_file | Unix.Unix_error _ -> ());
  Unix.close fd;
  let s = Buffer.contents buf in
  let rec find_sep i =
    if i + 4 > String.length s then None
    else if String.sub s i 4 = "\r\n\r\n" then Some i
    else find_sep (i + 1)
  in
  match find_sep 0 with
  | None -> Alcotest.failf "no header/body separator in response to %s" path
  | Some i ->
      let head = String.sub s 0 i in
      let body = String.sub s (i + 4) (String.length s - i - 4) in
      let status =
        match String.index_opt head '\r' with
        | Some eol -> String.sub head 0 eol
        | None -> head
      in
      (status, head, body)

(* Pull one metric sample's value out of Prometheus exposition text. *)
let metric_value body line_prefix =
  let lines = String.split_on_char '\n' body in
  List.find_map
    (fun l ->
      if
        String.length l > String.length line_prefix
        && String.sub l 0 (String.length line_prefix) = line_prefix
      then
        String.rindex_opt l ' '
        |> Option.map (fun sp ->
               float_of_string
                 (String.sub l (sp + 1) (String.length l - sp - 1)))
      else None)
    lines

let test_http_metrics_plane () =
  let spans = Tq_obs.Span.create ~capacity_per_sink:16_384 () in
  let tail = Tq_obs.Tail.create ~k:8 () in
  let srv = Server.create ~spans ~tail tail_config in
  let th = Thread.create (fun () -> Server.serve srv) () in
  let stopped = ref false in
  let http =
    Tq_serve.Http_expo.start ~port:0
      ~metrics:(fun () -> Server.prometheus srv)
      ~outliers:(fun () -> Server.outliers_json srv ~limit:0)
      ~healthz:(fun () -> not !stopped)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Tq_serve.Http_expo.stop http;
      Server.stop srv;
      Thread.join th)
    (fun () ->
      let hport = Tq_serve.Http_expo.port http in
      let n = 200 in
      let client = Client.connect ~port:(Server.port srv) () in
      run_batch client n;
      (* /metrics: content type, lint-clean, and byte-consistent with
         the Stats RPC Prometheus view on the accounting identities *)
      let status, head, metrics = http_get ~port:hport "/metrics" in
      check Alcotest.bool "200 on /metrics" true (contains status "200");
      check Alcotest.bool "prometheus content type" true
        (contains head "text/plain; version=0.0.4");
      Alcotest.(check (list string)) "exposition passes lint" []
        (Tq_obs.Expo.lint metrics);
      let v name =
        match metric_value metrics name with
        | Some v -> v
        | None -> Alcotest.failf "metric %s missing from /metrics" name
      in
      let parsed = v "tq_serve_parsed_total{role=\"dispatcher\"}" in
      let dispatched = v "tq_serve_dispatched_total{role=\"dispatcher\"}" in
      let shed = v "tq_serve_shed_total{role=\"dispatcher\"}" in
      check (Alcotest.float 0.0) "parsed = dispatched + shed" parsed
        (dispatched +. shed);
      let g name =
        match metric_value metrics name with
        | Some v -> v
        | None -> Alcotest.failf "gauge %s missing from /metrics" name
      in
      let accepted = g "tq_serve_accepted{role=\"dispatcher\"}" in
      let completed = v "tq_serve_completed_total{role=\"dispatcher\"}" in
      let lost = g "tq_serve_lost{role=\"dispatcher\"}" in
      let dropped = g "tq_serve_dropped{role=\"dispatcher\"}" in
      let in_flight = g "tq_serve_in_flight{role=\"dispatcher\"}" in
      check (Alcotest.float 0.0) "accepted = completed + lost + dropped + in_flight"
        accepted
        (completed +. lost +. dropped +. in_flight);
      (* the RPC Prometheus view agrees on the same identity lines *)
      let rpc = Client.stats ~view:Protocol.Stats_text client in
      List.iter
        (fun name ->
          check (Alcotest.float 0.0)
            (Printf.sprintf "%s consistent across planes" name)
            (Option.get (metric_value metrics name))
            (match metric_value rpc name with
            | Some v -> v
            | None -> Alcotest.failf "metric %s missing from RPC view" name))
        [
          "tq_serve_parsed_total{role=\"dispatcher\"}";
          "tq_serve_dispatched_total{role=\"dispatcher\"}";
          "tq_serve_shed_total{role=\"dispatcher\"}";
        ];
      (* per-lane span-drop gauges ride the exposition *)
      check Alcotest.bool "span_dropped exposed per lane" true
        (contains metrics "tq_obs_span_dropped{role=\"lane\"");
      (* /outliers serves the dossier JSON *)
      let status, head, outliers = http_get ~port:hport "/outliers" in
      check Alcotest.bool "200 on /outliers" true (contains status "200");
      check Alcotest.bool "json content type" true (contains head "application/json");
      check Alcotest.bool "dossiers served over http" true
        (contains outliers "\"dossiers\"");
      (* /healthz flips with the callback *)
      let status, _, body = http_get ~port:hport "/healthz" in
      check Alcotest.bool "healthy while serving" true
        (contains status "200" && contains body "ok");
      stopped := true;
      let status, _, _ = http_get ~port:hport "/healthz" in
      check Alcotest.bool "503 when draining" true (contains status "503");
      (* unknown path: 404, connection still answered cleanly *)
      let status, _, _ = http_get ~port:hport "/nope" in
      check Alcotest.bool "404 elsewhere" true (contains status "404");
      Client.close client);
  (* stop is idempotent *)
  Tq_serve.Http_expo.stop http

let tail_suite =
  [
    Alcotest.test_case "outlier codec roundtrip" `Quick test_outlier_codec_roundtrip;
    Alcotest.test_case "outliers rpc" `Quick test_outliers_rpc;
    Alcotest.test_case "outliers need tail sampling" `Quick test_outliers_need_tail;
    Alcotest.test_case "http metrics plane" `Quick test_http_metrics_plane;
  ]

let suite = suite @ tail_suite
