(* tq_par: the multicore sweep orchestrator.

   The contract under test is determinism — jobs must never change
   results, only wall-clock — plus the result cache's integrity story:
   stable keys, invalidation on any input change, and corrupted entries
   falling back to recompute. *)

module Domain_pool = Tq_par.Domain_pool
module Seed_stream = Tq_par.Seed_stream
module Result_cache = Tq_par.Result_cache
module Sweep = Tq_par.Sweep
module Text_table = Tq_util.Text_table

let check = Alcotest.check

(* --- Seed_stream --- *)

let test_seed_stream_deterministic () =
  let a = Seed_stream.derive ~experiment:"fig7" ~point:3 ~seed:42L in
  let b = Seed_stream.derive ~experiment:"fig7" ~point:3 ~seed:42L in
  check Alcotest.int64 "same key, same stream" a b;
  (* The documented keying must stay stable across releases: cached
     results and committed tables depend on it. *)
  check Alcotest.bool "derive is pure across calls" true
    (Seed_stream.derive ~experiment:"x" ~point:0 ~seed:0L
    = Seed_stream.derive ~experiment:"x" ~point:0 ~seed:0L)

let test_seed_stream_keying () =
  let base = Seed_stream.derive ~experiment:"fig7" ~point:0 ~seed:42L in
  check Alcotest.bool "point changes stream" true
    (base <> Seed_stream.derive ~experiment:"fig7" ~point:1 ~seed:42L);
  check Alcotest.bool "experiment changes stream" true
    (base <> Seed_stream.derive ~experiment:"fig8" ~point:0 ~seed:42L);
  check Alcotest.bool "seed changes stream" true
    (base <> Seed_stream.derive ~experiment:"fig7" ~point:0 ~seed:43L);
  Alcotest.check_raises "negative point rejected"
    (Invalid_argument "Seed_stream.derive: negative point index") (fun () ->
      ignore (Seed_stream.derive ~experiment:"x" ~point:(-1) ~seed:0L))

let test_seed_stream_spread () =
  (* Neighbouring points must not produce correlated generators: check
     the low bits of the first draw spread over 64 points. *)
  let draws =
    List.init 64 (fun i ->
        let rng = Seed_stream.prng ~experiment:"spread" ~point:i ~seed:7L in
        Tq_util.Prng.int rng 1024)
  in
  let distinct = List.length (List.sort_uniq compare draws) in
  check Alcotest.bool "first draws mostly distinct" true (distinct > 56)

(* --- Domain_pool --- *)

let test_pool_preserves_order () =
  (* Uneven task costs force out-of-order completion; results must
     still come back in task order. *)
  let tasks =
    Array.init 40 (fun i () ->
        let spin = if i mod 7 = 0 then 20_000 else 200 in
        let acc = ref 0 in
        for k = 1 to spin do
          acc := (!acc + k) mod 1_000_003
        done;
        ignore !acc;
        i)
  in
  let results, stats = Domain_pool.run ~jobs:4 tasks in
  check (Alcotest.list Alcotest.int) "task order preserved"
    (List.init 40 Fun.id) (Array.to_list results);
  check Alcotest.int "every task ran exactly once" 40
    (Array.fold_left ( + ) 0 stats.per_domain_tasks);
  check Alcotest.int "jobs clamped as requested" 4 stats.jobs

let test_pool_jobs1_inline () =
  let ran_on = ref [] in
  let tasks = Array.init 5 (fun i () -> ran_on := i :: !ran_on; i * i) in
  let results, stats = Domain_pool.run ~jobs:1 tasks in
  check (Alcotest.list Alcotest.int) "results" [ 0; 1; 4; 9; 16 ]
    (Array.to_list results);
  (* jobs=1 runs inline in submission order. *)
  check (Alcotest.list Alcotest.int) "sequential order" [ 0; 1; 2; 3; 4 ]
    (List.rev !ran_on);
  check Alcotest.int "one domain" 1 stats.jobs

let test_pool_clamps_to_task_count () =
  let results, stats = Domain_pool.run ~jobs:16 (Array.init 3 (fun i () -> i)) in
  check Alcotest.int "jobs clamped to tasks" 3 stats.jobs;
  check (Alcotest.list Alcotest.int) "results" [ 0; 1; 2 ] (Array.to_list results)

exception Boom

let test_pool_propagates_exception () =
  let tasks = Array.init 8 (fun i () -> if i = 5 then raise Boom else i) in
  Alcotest.check_raises "task exception re-raised" Boom (fun () ->
      ignore (Domain_pool.run ~jobs:3 tasks))

(* --- Result_cache --- *)

let mk_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "tq_cache_test_%d_%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let sample_table () =
  let t = Text_table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Text_table.add_row t [ "1"; "2.5" ];
  Text_table.add_row t [ "30%"; "nan" ];
  t

let test_cache_key_stability () =
  let key () =
    Result_cache.key ~experiment:"fig7" ~point:"extreme-bimodal"
      ~params:"fp-v1 scale=1" ~seed:42L
  in
  check Alcotest.string "digest is stable across calls" (key ()) (key ());
  (* Pin the digest: if the key derivation ever changes, this must be a
     conscious decision (it silently invalidates every user's cache). *)
  check Alcotest.string "digest pinned"
    (Digest.to_hex
       (Digest.string
          "tq_par-key-v1\nfig7\nextreme-bimodal\nfp-v1 scale=1\n42"))
    (key ())

let test_cache_key_invalidation () =
  let base =
    Result_cache.key ~experiment:"fig7" ~point:"p" ~params:"dispatch_ns=70" ~seed:42L
  in
  check Alcotest.bool "cost-model parameter change invalidates" true
    (base
    <> Result_cache.key ~experiment:"fig7" ~point:"p" ~params:"dispatch_ns=71"
         ~seed:42L);
  check Alcotest.bool "seed change invalidates" true
    (base
    <> Result_cache.key ~experiment:"fig7" ~point:"p" ~params:"dispatch_ns=70"
         ~seed:43L);
  check Alcotest.bool "point change invalidates" true
    (base
    <> Result_cache.key ~experiment:"fig7" ~point:"q" ~params:"dispatch_ns=70"
         ~seed:42L)

let test_cache_fingerprint_tracks_cost_model () =
  let base = Sweep.fingerprint () in
  check Alcotest.string "fingerprint stable" base (Sweep.fingerprint ());
  let perturbed =
    { Tq_sched.Overheads.tq_default with dispatch_ns = 71 }
  in
  check Alcotest.bool "fingerprint changes with a cost-model field" true
    (base <> Sweep.fingerprint ~overheads:perturbed ())

let test_cache_roundtrip () =
  let cache = Result_cache.create ~dir:(mk_dir ()) () in
  let key = Result_cache.key ~experiment:"e" ~point:"p" ~params:"x" ~seed:1L in
  check Alcotest.bool "empty cache misses" true (Result_cache.find cache key = None);
  Result_cache.store cache key (sample_table ());
  (match Result_cache.find cache key with
  | None -> Alcotest.fail "expected a hit after store"
  | Some t ->
      check Alcotest.string "roundtrip preserves render"
        (Text_table.render (sample_table ()))
        (Text_table.render t));
  check Alcotest.int "one hit" 1 (Result_cache.hits cache);
  check Alcotest.int "one miss" 1 (Result_cache.misses cache)

let test_cache_corruption_falls_back () =
  let dir = mk_dir () in
  let cache = Result_cache.create ~dir () in
  let key = Result_cache.key ~experiment:"e" ~point:"p" ~params:"x" ~seed:1L in
  Result_cache.store cache key (sample_table ());
  let file = Filename.concat dir key in
  (* Truncate mid-payload: the integrity digest no longer matches. *)
  let oc = open_out_gen [ Open_wronly; Open_trunc ] 0o644 file in
  output_string oc "tqcache1 deadbeef\npartial";
  close_out oc;
  check Alcotest.bool "corrupted entry is a miss, not a crash" true
    (Result_cache.find cache key = None);
  (* Same for raw garbage and for an empty file. *)
  let oc = open_out file in
  output_string oc "not a cache entry at all";
  close_out oc;
  check Alcotest.bool "garbage is a miss" true (Result_cache.find cache key = None);
  let oc = open_out file in
  close_out oc;
  check Alcotest.bool "empty file is a miss" true (Result_cache.find cache key = None)

let test_cache_disabled () =
  let cache = Result_cache.disabled () in
  let key = Result_cache.key ~experiment:"e" ~point:"p" ~params:"x" ~seed:1L in
  Result_cache.store cache key (sample_table ());
  check Alcotest.bool "disabled cache never hits" true
    (Result_cache.find cache key = None)

(* --- Sweep over the registry --- *)

let cheap_ids = [ "table2"; "fig15"; "dispatcher" ]

let cheap_experiments () = List.filter_map Tq_experiments.Registry.find cheap_ids

let render_all outcomes =
  outcomes
  |> List.concat_map (fun (o : Sweep.outcome) -> List.map Text_table.render o.tables)
  |> String.concat "\n"

let test_sweep_jobs_invariance () =
  (* The acceptance bar for the whole orchestration layer: jobs=1 and
     jobs=4 must produce byte-identical tables. *)
  let seq, _ = Sweep.run ~jobs:1 (cheap_experiments ()) in
  let par, stats = Sweep.run ~jobs:4 (cheap_experiments ()) in
  check Alcotest.string "jobs=1 and jobs=4 byte-identical" (render_all seq)
    (render_all par);
  check Alcotest.int "tables grouped per experiment" (List.length seq)
    (List.length par);
  check Alcotest.int "all points executed" 4
    (Array.fold_left ( + ) 0 stats.pool.per_domain_tasks)

let test_sweep_cache_serves_second_run () =
  let cache = Result_cache.create ~dir:(mk_dir ()) () in
  let cold, cold_stats = Sweep.run ~jobs:2 ~cache (cheap_experiments ()) in
  check Alcotest.int "cold run misses every point" 4 cold_stats.cache_misses;
  let warm, warm_stats = Sweep.run ~jobs:2 ~cache (cheap_experiments ()) in
  check Alcotest.int "warm run hits every point" 4
    (warm_stats.cache_hits - cold_stats.cache_hits);
  check Alcotest.string "cached tables byte-identical" (render_all cold)
    (render_all warm)

let test_sweep_publishes_obs_counters () =
  let obs = Tq_obs.Obs.create () in
  let cache = Result_cache.create ~dir:(mk_dir ()) () in
  let _, _ = Sweep.run ~jobs:2 ~cache ~obs (cheap_experiments ()) in
  let c = obs.Tq_obs.Obs.counters in
  check Alcotest.int "misses counted through obs" 4
    (Tq_obs.Counters.find_count c "par.cache.misses");
  check Alcotest.bool "per-domain task counters present" true
    (Tq_obs.Counters.find_count c "par.domain0.tasks"
     + Tq_obs.Counters.find_count c "par.domain1.tasks"
    = 4)

let test_registry_points_unique () =
  List.iter
    (fun (e : Tq_experiments.Registry.experiment) ->
      let labels = List.map (fun (p : Tq_experiments.Registry.point) -> p.label) e.points in
      check Alcotest.int
        (e.id ^ " point labels unique (cache keys collide otherwise)")
        (List.length labels)
        (List.length (List.sort_uniq compare labels)))
    Tq_experiments.Registry.all;
  check Alcotest.bool "grid has every point" true
    (Tq_experiments.Registry.point_count >= 24)

let suite =
  [
    Alcotest.test_case "seed_stream deterministic" `Quick test_seed_stream_deterministic;
    Alcotest.test_case "seed_stream keying" `Quick test_seed_stream_keying;
    Alcotest.test_case "seed_stream spread" `Quick test_seed_stream_spread;
    Alcotest.test_case "pool preserves order" `Quick test_pool_preserves_order;
    Alcotest.test_case "pool jobs=1 inline" `Quick test_pool_jobs1_inline;
    Alcotest.test_case "pool clamps jobs" `Quick test_pool_clamps_to_task_count;
    Alcotest.test_case "pool propagates exceptions" `Quick test_pool_propagates_exception;
    Alcotest.test_case "cache key stability" `Quick test_cache_key_stability;
    Alcotest.test_case "cache key invalidation" `Quick test_cache_key_invalidation;
    Alcotest.test_case "fingerprint tracks cost model" `Quick
      test_cache_fingerprint_tracks_cost_model;
    Alcotest.test_case "cache roundtrip" `Quick test_cache_roundtrip;
    Alcotest.test_case "cache corruption falls back" `Quick test_cache_corruption_falls_back;
    Alcotest.test_case "cache disabled" `Quick test_cache_disabled;
    Alcotest.test_case "sweep jobs invariance" `Slow test_sweep_jobs_invariance;
    Alcotest.test_case "sweep cache second run" `Slow test_sweep_cache_serves_second_run;
    Alcotest.test_case "sweep publishes obs counters" `Slow test_sweep_publishes_obs_counters;
    Alcotest.test_case "registry points unique" `Quick test_registry_points_unique;
  ]
