(* Tests for the extension features: LAS scheduling, multi-dispatcher
   two-level systems, the prefetcher model, reentrancy-aware
   instrumentation, dynamic quanta, and the experiment registry. *)

module Sim = Tq_engine.Sim
module Prng = Tq_util.Prng
module Time_unit = Tq_util.Time_unit
module Table1 = Tq_workload.Table1
module Metrics = Tq_workload.Metrics
module Job = Tq_sched.Job
module Worker = Tq_sched.Worker
module Overheads = Tq_sched.Overheads
module Two_level = Tq_sched.Two_level
module Dispatch_policy = Tq_sched.Dispatch_policy
module Experiment = Tq_sched.Experiment
module Presets = Tq_sched.Presets
module Pointer_chase = Tq_cache.Pointer_chase
module Hierarchy = Tq_cache.Hierarchy

let check = Alcotest.check

let request ?(req_id = 1) ?(class_idx = 0) ~service_ns ~arrival_ns () =
  { Tq_workload.Arrivals.req_id; class_idx; service_ns; arrival_ns }

let job ?req_id ?class_idx ~service_ns ?(arrival_ns = 0) () =
  Job.of_request ~probe_overhead_frac:0.0
    (request ?req_id ?class_idx ~service_ns ~arrival_ns ())

(* --- LAS --- *)

let las_worker sim finished =
  Worker.create sim ~wid:0 ~rng:(Prng.create ~seed:1L)
    ~policy:(Worker.Las { base_quantum_ns = 1_000; max_quantum_ns = 4_000 })
    ~overheads:Overheads.zero
    ~on_finish:(fun j -> finished := (j.Job.id, Sim.now sim) :: !finished)
    ()

let test_las_prioritizes_least_attained () =
  let sim = Sim.create () in
  let finished = ref [] in
  let w = las_worker sim finished in
  (* Long job runs alone for a while, then a short newcomer arrives: LAS
     must serve the newcomer (attained 0) to completion first. *)
  Worker.enqueue w (job ~req_id:1 ~service_ns:20_000 ());
  ignore
    (Sim.schedule_at sim ~time:5_000 (fun () ->
         Worker.enqueue w (job ~req_id:2 ~service_ns:1_000 ())));
  Sim.run sim;
  (match List.rev !finished with
  | [ (2, t2); (1, t1) ] ->
      (* Worst case: arrival (5000) + the incumbent's current slice (up
         to the 4000 cap) + own service (1000). *)
      Alcotest.(check bool) (Printf.sprintf "newcomer done at %d" t2) true (t2 <= 10_000);
      Alcotest.(check bool) "long finishes later" true (t1 > t2)
  | other ->
      Alcotest.failf "unexpected completion order: %s"
        (String.concat ";" (List.map (fun (i, t) -> Printf.sprintf "(%d,%d)" i t) other)))

let test_las_quantum_grows_with_attained () =
  let sim = Sim.create () in
  let finished = ref [] in
  let w = las_worker sim finished in
  let j = job ~req_id:1 ~service_ns:20_000 () in
  Worker.enqueue w j;
  Sim.run sim;
  (* First slice 1000 (attained 0 -> base), later slices grow to the
     4000 cap: 1000 + 1000 + 2000 + 4000 + ... -> far fewer than the 20
     quanta a fixed 1us quantum would need. *)
  Alcotest.(check bool)
    (Printf.sprintf "%d quanta" j.Job.serviced_quanta)
    true
    (j.Job.serviced_quanta >= 5 && j.Job.serviced_quanta <= 10)

let test_las_fifo_among_equal_attained () =
  let sim = Sim.create () in
  let finished = ref [] in
  let w = las_worker sim finished in
  Worker.enqueue w (job ~req_id:1 ~service_ns:500 ());
  Worker.enqueue w (job ~req_id:2 ~service_ns:500 ());
  Worker.enqueue w (job ~req_id:3 ~service_ns:500 ());
  Sim.run sim;
  check
    Alcotest.(list int)
    "fifo order for fresh jobs" [ 1; 2; 3 ]
    (List.rev_map fst !finished)

let test_las_system_short_jobs () =
  let r =
    Experiment.run ~seed:11L ~system:(Presets.tq_las ())
      ~workload:Table1.extreme_bimodal_sim ~rate_rps:3_000_000.0
      ~duration_ns:(Time_unit.ms 30.0) ()
  in
  let p999 = Metrics.sojourn_percentile r.metrics ~class_idx:0 99.9 in
  Alcotest.(check bool)
    (Printf.sprintf "LAS keeps short tail tiny (%.0fns)" p999)
    true (p999 < 20_000.0)

(* --- multi-dispatcher --- *)

let tq_config ~dispatchers =
  {
    Two_level.cores = 16;
    dispatchers;
    quantum_policy = Worker.Ps { quantum_ns = 2_000; per_class_quantum = None };
    dispatch_policy = Dispatch_policy.Jsq_msq;
    overheads = Overheads.tq_default;
  }

let test_multi_dispatcher_conservation () =
  let r =
    Experiment.run ~seed:11L
      ~system:(Experiment.Two_level (tq_config ~dispatchers:3))
      ~workload:Table1.exp1 ~rate_rps:2_000_000.0 ~duration_ns:(Time_unit.ms 20.0) ()
  in
  Alcotest.(check bool) "completions bounded" true
    (Metrics.total_completed r.metrics <= r.offered);
  Alcotest.(check bool) "most completed" true
    (float_of_int (Metrics.total_completed r.metrics) > 0.85 *. float_of_int r.offered)

let test_multi_dispatcher_splits_load () =
  let run dispatchers =
    let sim = Sim.create () in
    let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
    let t =
      Two_level.create sim ~rng:(Prng.create ~seed:3L) ~config:(tq_config ~dispatchers)
        ~metrics ()
    in
    ignore
      (Tq_workload.Arrivals.install sim ~rng:(Prng.create ~seed:5L) ~workload:Table1.exp1
         ~rate_rps:4_000_000.0 ~duration_ns:(Time_unit.ms 10.0)
         ~sink:(fun req -> Two_level.submit t req));
    Sim.run sim;
    (Two_level.dispatcher_busy_ns t, Two_level.max_dispatcher_busy_ns t)
  in
  let total1, max1 = run 1 in
  let total2, max2 = run 2 in
  check Alcotest.int "one dispatcher: max = total" total1 max1;
  Alcotest.(check bool) "two dispatchers: halved bottleneck" true
    (float_of_int max2 < 0.65 *. float_of_int total2);
  Alcotest.(check bool) "same total work" true
    (abs (total1 - total2) < total1 / 20)

let test_multi_dispatcher_raises_capacity () =
  (* At 20 Mrps of 1us jobs on 64 cores, one 70ns dispatcher (14 Mrps)
     drowns; two keep up. *)
  let run dispatchers =
    let r =
      Experiment.run ~seed:11L
        ~system:(Presets.tq ~cores:64 ~dispatchers ())
        ~workload:Table1.exp1 ~rate_rps:20_000_000.0 ~duration_ns:(Time_unit.ms 6.0) ()
    in
    Metrics.sojourn_percentile r.metrics ~class_idx:0 99.0
  in
  let one = run 1 and two = run 2 in
  Alcotest.(check bool)
    (Printf.sprintf "1 dispatcher saturated (%.0f) vs 2 ok (%.0f)" one two)
    true
    (one > 10.0 *. two)

let test_zero_dispatchers_rejected () =
  let sim = Sim.create () in
  let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
  Alcotest.check_raises "rejected"
    (Invalid_argument "Two_level.create: need at least one dispatcher") (fun () ->
      ignore
        (Two_level.create sim ~rng:(Prng.create ~seed:1L) ~config:(tq_config ~dispatchers:0)
           ~metrics ()))

(* --- prefetcher / sequential chase --- *)

let test_prefetch_streams_hit_l1 () =
  let shared = Hierarchy.create_shared () in
  let core = Hierarchy.create_core ~prefetch:true shared in
  let geo = Hierarchy.geometry core in
  (* Sequential walk over 256KB: after the first line, everything should
     be prefetched into L1. *)
  let lines = 256 * 1024 / 64 in
  let misses = ref 0 in
  for i = 0 to lines - 1 do
    if Hierarchy.access core (i * 64) > geo.l1_latency then incr misses
  done;
  Alcotest.(check bool) (Printf.sprintf "%d slow accesses" !misses) true (!misses <= 2)

let test_prefetch_useless_for_random () =
  let chase ~order ~prefetch =
    Pointer_chase.run
      {
        Pointer_chase.framework = Pointer_chase.Tls;
        access_order = order;
        prefetch;
        cores = 2;
        arrays_per_core = 4;
        array_bytes = 64 * 1024;
        quantum_accesses = 500;
        target_accesses_per_core = 60_000;
        seed = 7L;
      }
  in
  let random = chase ~order:Pointer_chase.Random_order ~prefetch:false in
  let seq_pf = chase ~order:Pointer_chase.Sequential ~prefetch:true in
  Alcotest.(check bool)
    (Printf.sprintf "random %.1f >> sequential+prefetch %.1f"
       random.Pointer_chase.mean_latency_cycles seq_pf.Pointer_chase.mean_latency_cycles)
    true
    (random.Pointer_chase.mean_latency_cycles
    > 2.0 *. seq_pf.Pointer_chase.mean_latency_cycles)

(* --- reentrancy-aware instrumentation --- *)

let test_non_reentrant_functions_unprobed () =
  let open Tq_ir in
  let src =
    {
      Ast.src_funcs =
        [
          ("main", Ast.loop_n 5_000 (Ast.seq [ Ast.CallFn "lock-held"; Ast.work 3 ]));
          ("lock-held", Ast.loop_n 100 (Ast.work 6));
        ];
      src_main = "main";
    }
  in
  let prog = Lower.lower_program src in
  let instrumented =
    Tq_instrument.Tq_pass.instrument
      ~config:{ Tq_instrument.Tq_pass.bound = 100; non_reentrant = [ "lock-held" ] }
      prog
  in
  check Alcotest.int "no probes inside the critical function" 0
    (Cfg.probe_count (Cfg.func_of_program instrumented "lock-held"));
  Alcotest.(check bool) "caller still instrumented" true
    (Cfg.probe_count (Cfg.func_of_program instrumented "main") > 0)

(* --- dynamic quanta in the VM --- *)

let test_vm_quantum_schedule () =
  let open Tq_ir in
  let prog = Lower.lower_program { Ast.src_funcs = [ ("main", Ast.work 60_000) ]; src_main = "main" } in
  let tq =
    Tq_instrument.Tq_pass.instrument
      ~config:{ Tq_instrument.Tq_pass.bound = 100; non_reentrant = [] }
      prog
  in
  let r =
    Tq_instrument.Vm.run
      {
        Tq_instrument.Vm.default_config with
        quantum_cycles = 2_000;
        quantum_schedule = Some [| 1_000; 4_000 |];
        seed = 3L;
      }
      tq
  in
  (match r.Tq_instrument.Vm.yield_intervals with
  | first :: second :: rest ->
      Alcotest.(check bool) (Printf.sprintf "first ~1000 (%d)" first) true
        (first >= 1_000 && first < 1_400);
      Alcotest.(check bool) (Printf.sprintf "second ~4000 (%d)" second) true
        (second >= 4_000 && second < 4_400);
      (* The last schedule entry repeats. *)
      List.iter
        (fun i -> Alcotest.(check bool) "subsequent ~4000" true (i >= 4_000 && i < 4_400))
        rest
  | _ -> Alcotest.fail "expected at least two yields")

(* --- experiment registry --- *)

let test_registry_integrity () =
  let ids =
    List.map (fun (e : Tq_experiments.Registry.experiment) -> e.id) Tq_experiments.Registry.all
  in
  check Alcotest.int "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check bool) "every paper figure present" true
    (List.for_all
       (fun id -> List.mem id ids)
       [ "fig1"; "fig2"; "fig4"; "fig5_6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11";
         "fig12"; "fig13"; "fig14"; "fig15"; "fig16"; "table2"; "table3" ]);
  Alcotest.(check bool) "find works" true (Tq_experiments.Registry.find "fig7" <> None);
  Alcotest.(check bool) "find rejects unknown" true
    (Tq_experiments.Registry.find "fig99" = None)

let test_registry_cheap_experiments_render () =
  (* The cheap, simulation-free experiments run instantly and must
     produce non-empty tables. *)
  List.iter
    (fun id ->
      match Tq_experiments.Registry.find id with
      | None -> Alcotest.failf "missing %s" id
      | Some e ->
          List.iter
            (fun table ->
              let s = Tq_util.Text_table.render table in
              Alcotest.(check bool) (id ^ " non-empty") true (String.length s > 50))
            (Tq_experiments.Registry.tables e))
    [ "table2"; "dispatcher"; "fig16" ]

let suite =
  [
    Alcotest.test_case "las prioritizes least attained" `Quick test_las_prioritizes_least_attained;
    Alcotest.test_case "las quantum grows" `Quick test_las_quantum_grows_with_attained;
    Alcotest.test_case "las fifo among equals" `Quick test_las_fifo_among_equal_attained;
    Alcotest.test_case "las system short jobs" `Quick test_las_system_short_jobs;
    Alcotest.test_case "multi-dispatcher conservation" `Quick test_multi_dispatcher_conservation;
    Alcotest.test_case "multi-dispatcher splits load" `Quick test_multi_dispatcher_splits_load;
    Alcotest.test_case "multi-dispatcher capacity" `Quick test_multi_dispatcher_raises_capacity;
    Alcotest.test_case "zero dispatchers rejected" `Quick test_zero_dispatchers_rejected;
    Alcotest.test_case "prefetch streams" `Quick test_prefetch_streams_hit_l1;
    Alcotest.test_case "prefetch vs random" `Quick test_prefetch_useless_for_random;
    Alcotest.test_case "non-reentrant unprobed" `Quick test_non_reentrant_functions_unprobed;
    Alcotest.test_case "vm quantum schedule" `Quick test_vm_quantum_schedule;
    Alcotest.test_case "registry integrity" `Quick test_registry_integrity;
    Alcotest.test_case "registry cheap render" `Quick test_registry_cheap_experiments_render;
  ]

(* --- harness helpers and Caladan flow steering --- *)

let test_harness_helpers () =
  check Alcotest.(list (float 1e-9)) "rates" [ 1.0; 2.0 ]
    (Tq_experiments.Harness.rates ~capacity:10.0 [ 0.1; 0.2 ]);
  check Alcotest.string "mrps formatting" "3.50" (Tq_experiments.Harness.mrps 3_500_000.0)

let test_harness_caladan_best_picks_finite () =
  let r =
    Tq_experiments.Harness.caladan_best ~workload:Table1.exp1 ~rate_rps:1_000_000.0
      ~duration_ns:(Time_unit.ms 5.0) ~class_idx:0
  in
  Alcotest.(check bool) "ran" true (Metrics.total_completed r.metrics > 0)

let test_caladan_flow_steering_conserves () =
  let config =
    { (Tq_sched.Caladan.default_config ~mode:Tq_sched.Caladan.Directpath ~cores:16) with
      rss_flows = Some 4 }
  in
  let r =
    Experiment.run ~seed:3L ~system:(Experiment.Caladan config) ~workload:Table1.exp1
      ~rate_rps:1_000_000.0 ~duration_ns:(Time_unit.ms 10.0) ()
  in
  Alcotest.(check bool) "conserves with flow steering" true
    (float_of_int (Metrics.total_completed r.metrics) > 0.85 *. float_of_int r.offered)

let test_tq_pass_bound_monotone () =
  (* A looser bound must not need more probes. *)
  let open Tq_ir in
  let p =
    Lower.lower_program
      { Ast.src_funcs = [ ("main", Ast.work 5_000) ]; src_main = "main" }
  in
  let probes bound =
    Cfg.program_probe_count
      (Tq_instrument.Tq_pass.instrument
         ~config:{ Tq_instrument.Tq_pass.bound; non_reentrant = [] }
         p)
  in
  Alcotest.(check bool) "monotone" true (probes 200 >= probes 800)

let harness_suite =
  [
    Alcotest.test_case "harness helpers" `Quick test_harness_helpers;
    Alcotest.test_case "caladan_best" `Quick test_harness_caladan_best_picks_finite;
    Alcotest.test_case "caladan flow steering" `Quick test_caladan_flow_steering_conserves;
    Alcotest.test_case "tq pass bound monotone" `Quick test_tq_pass_bound_monotone;
  ]

let suite = suite @ harness_suite
