(* Tests for the robustness stack (tq_fault + the failure handling in
   tq_sched/tq_workload): retry/backoff math, request conservation under
   faults, failure recovery in all three systems, and overload
   protection by admission control. *)

module Sim = Tq_engine.Sim
module Prng = Tq_util.Prng
module Arrivals = Tq_workload.Arrivals
module Metrics = Tq_workload.Metrics
module Retry = Tq_workload.Retry
module Table1 = Tq_workload.Table1
module Worker = Tq_sched.Worker
module Two_level = Tq_sched.Two_level
module Centralized = Tq_sched.Centralized
module Caladan = Tq_sched.Caladan
module Admission = Tq_sched.Admission
module Presets = Tq_sched.Presets
module Plan = Tq_fault.Plan
module Injector = Tq_fault.Injector
module Fault_experiment = Tq_fault.Fault_experiment

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let req ?(req_id = 1) ?(class_idx = 0) ~service_ns ~arrival_ns () =
  { Arrivals.req_id; class_idx; service_ns; arrival_ns }

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* --- Retry backoff math (property tests) --- *)

let backoff_config_gen =
  QCheck.(
    map
      (fun (base, extra, timeout) ->
        {
          Retry.default_config with
          timeout_ns = timeout;
          backoff_base_ns = base;
          backoff_cap_ns = base + extra;
        })
      (triple (int_bound 1_000_000) (int_bound 1_000_000) (int_range 1 1_000_000)))

let backoff_capped =
  qtest "backoff always within [0, cap]"
    QCheck.(pair backoff_config_gen (int_range 1 500))
    (fun (config, retry) ->
      let b = Retry.backoff_ns config ~retry in
      b >= 0 && b <= config.Retry.backoff_cap_ns)

let backoff_monotone =
  qtest "backoff non-decreasing in retry number"
    QCheck.(pair backoff_config_gen (int_range 1 100))
    (fun (config, retry) ->
      Retry.backoff_ns config ~retry <= Retry.backoff_ns config ~retry:(retry + 1))

let backoff_doubles =
  qtest "backoff doubles from base until the cap"
    QCheck.(pair (int_range 1 1000) (int_range 1 15))
    (fun (base, retry) ->
      let config =
        { Retry.default_config with timeout_ns = 1; backoff_base_ns = base;
          backoff_cap_ns = max_int }
      in
      Retry.backoff_ns config ~retry = base lsl (retry - 1))

let test_backoff_edges () =
  let config =
    { Retry.default_config with timeout_ns = 10; backoff_base_ns = 0; backoff_cap_ns = 0 }
  in
  check Alcotest.int "zero base stays zero" 0 (Retry.backoff_ns config ~retry:50);
  check Alcotest.bool "retry < 1 rejected" true
    (raises_invalid (fun () -> Retry.backoff_ns config ~retry:0));
  let config =
    { Retry.default_config with timeout_ns = 10; backoff_base_ns = max_int / 2;
      backoff_cap_ns = max_int }
  in
  (* A shift that would wrap must clamp to the cap, not go negative. *)
  check Alcotest.int "overflow clamps to cap" max_int (Retry.backoff_ns config ~retry:63)

(* --- Retry layer timeline --- *)

let retry_config =
  { Retry.default_config with timeout_ns = 10_000; backoff_base_ns = 1_000;
    backoff_cap_ns = 4_000 }

let test_retry_recovers_dropped_request () =
  let sim = Sim.create () in
  let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
  let r_ref = ref None in
  let submissions = ref [] in
  (* First attempt vanishes (a NIC drop); the second is served 1 us
     after submission. *)
  let submit (rq : Arrivals.request) =
    submissions := (rq.arrival_ns, Sim.now sim) :: !submissions;
    if List.length !submissions > 1 then
      ignore
        (Sim.schedule_after sim ~delay:1_000 (fun () ->
             match !r_ref with
             | Some r -> Retry.note_completion r ~req_id:rq.req_id ~finish_ns:(Sim.now sim)
             | None -> assert false)
          : Sim.event)
  in
  let r = Retry.create sim ~config:retry_config ~metrics ~submit () in
  r_ref := Some r;
  ignore
    (Sim.schedule_at sim ~time:0 (fun () ->
         Retry.sink r (req ~service_ns:1_000 ~arrival_ns:0 ()))
      : Sim.event);
  Sim.run sim;
  (* Timeout at 10 us, first-retry backoff 1 us, re-submit at 11 us,
     completion at 12 us — measured from the ORIGINAL arrival. *)
  check Alcotest.int "two submissions" 2 (List.length !submissions);
  check Alcotest.int "attempts counted once each" 2 (Metrics.attempts metrics);
  check Alcotest.int "one retry" 1 (Metrics.retries metrics);
  check Alcotest.int "no timeout drop" 0 (Metrics.timeout_drops metrics);
  check Alcotest.int "eventual completion recorded" 1 (Metrics.eventual_completed metrics);
  check (Alcotest.float 0.01) "eventual latency from original arrival" 12_000.0
    (Metrics.overall_eventual_percentile metrics 100.0);
  check Alcotest.int "re-submission carries retry arrival time" 11_000
    (match !submissions with (a, _) :: _ -> a | [] -> -1);
  check Alcotest.int "nothing in flight" 0 (Retry.in_flight r);
  check Alcotest.int "attempts_of" 2 (Retry.attempts_of r ~req_id:1)

let test_retry_abandons_then_counts_duplicate () =
  let sim = Sim.create () in
  let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
  (* The scheduler never answers. *)
  let r = Retry.create sim ~config:retry_config ~metrics ~submit:(fun _ -> ()) () in
  ignore
    (Sim.schedule_at sim ~time:0 (fun () ->
         Retry.sink r (req ~service_ns:1_000 ~arrival_ns:0 ()))
      : Sim.event);
  Sim.run sim;
  check Alcotest.int "all attempts used" 3 (Metrics.attempts metrics);
  check Alcotest.int "two retries" 2 (Metrics.retries metrics);
  check Alcotest.int "abandoned" 1 (Metrics.timeout_drops metrics);
  check Alcotest.int "no eventual completion" 0 (Metrics.eventual_completed metrics);
  check Alcotest.int "nothing in flight" 0 (Retry.in_flight r);
  (* A straggler completion after abandonment is wasted work. *)
  Retry.note_completion r ~req_id:1 ~finish_ns:(Sim.now sim);
  check Alcotest.int "late completion is a duplicate" 1 (Metrics.duplicates metrics);
  check Alcotest.int "still no eventual completion" 0 (Metrics.eventual_completed metrics)

(* The shared retry budget: once spent, timed-out requests are
   abandoned with attempts left and counted apart from ordinary
   attempt-limit drops. *)
let test_retry_budget_exhausted () =
  let sim = Sim.create () in
  let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
  let config = { retry_config with Retry.retry_budget = Some 3 } in
  (* The scheduler never answers; without a budget each of the three
     requests would retry twice (max_attempts 3). *)
  let r = Retry.create sim ~config ~metrics ~submit:(fun _ -> ()) () in
  ignore
    (Sim.schedule_at sim ~time:0 (fun () ->
         for i = 1 to 3 do
           Retry.sink r (req ~req_id:i ~service_ns:1_000 ~arrival_ns:0 ())
         done)
      : Sim.event);
  Sim.run sim;
  check Alcotest.int "budget caps total retries" 3 (Metrics.retries metrics);
  check Alcotest.int "budget accounting agrees" 3 (Retry.retries_spent r);
  check Alcotest.int "every request eventually dropped" 3 (Metrics.timeout_drops metrics);
  check Alcotest.bool "budget-denied drops surfaced" true
    (Metrics.retries_exhausted metrics > 0);
  check Alcotest.int "nothing in flight" 0 (Retry.in_flight r);
  (* Zero budget degenerates to no retries at all. *)
  let sim = Sim.create () in
  let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
  let r =
    Retry.create sim
      ~config:{ retry_config with Retry.retry_budget = Some 0 }
      ~metrics ~submit:(fun _ -> ()) ()
  in
  ignore
    (Sim.schedule_at sim ~time:0 (fun () ->
         Retry.sink r (req ~service_ns:1_000 ~arrival_ns:0 ()))
      : Sim.event);
  Sim.run sim;
  check Alcotest.int "zero budget: no retries" 0 (Metrics.retries metrics);
  check Alcotest.int "zero budget: dropped at first timeout" 1
    (Metrics.retries_exhausted metrics);
  check Alcotest.bool "negative budget rejected" true
    (raises_invalid (fun () ->
         Retry.create sim
           ~config:{ retry_config with Retry.retry_budget = Some (-1) }
           ~metrics ~submit:(fun _ -> ()) ()))

(* Full jitter keeps the backoff inside [0, deterministic backoff] and
   stays reproducible under a fixed RNG seed. *)
let test_retry_full_jitter () =
  let resubmission_times config ~seed =
    let sim = Sim.create () in
    let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
    let times = ref [] in
    let submit (_ : Arrivals.request) = times := Sim.now sim :: !times in
    let r =
      Retry.create sim ~config ~metrics ~submit ~rng:(Prng.create ~seed) ()
    in
    ignore
      (Sim.schedule_at sim ~time:0 (fun () ->
           Retry.sink r (req ~service_ns:1_000 ~arrival_ns:0 ()))
        : Sim.event);
    Sim.run sim;
    List.rev !times
  in
  let config =
    { retry_config with Retry.jitter = true; max_attempts = 8;
      backoff_base_ns = 4_000; backoff_cap_ns = 4_000 }
  in
  let times = resubmission_times config ~seed:7L in
  check Alcotest.int "all attempts submitted" 8 (List.length times);
  (* Each retry leaves at the timeout plus a uniform [0, 4000] draw. *)
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        let gap = b - a in
        check Alcotest.bool "jittered backoff within [timeout, timeout+cap]" true
          (gap >= config.Retry.timeout_ns
          && gap <= config.Retry.timeout_ns + config.Retry.backoff_cap_ns);
        pairs rest
    | _ -> ()
  in
  pairs times;
  (* at least one draw actually moved off the deterministic schedule *)
  check Alcotest.bool "jitter jitters" true
    (List.exists2
       (fun a b -> a <> b)
       times
       (resubmission_times { config with Retry.jitter = false } ~seed:7L));
  check Alcotest.bool "fixed seed reproduces" true
    (times = resubmission_times config ~seed:7L)

(* --- Admission control --- *)

let test_admission_queue_limit () =
  let a = Admission.create (Admission.Queue_limit { max_in_system = 4 }) in
  check Alcotest.bool "admits under the cap" true (Admission.admit a ~in_system:3);
  check Alcotest.bool "rejects at the cap" false (Admission.admit a ~in_system:4);
  check Alcotest.bool "rejects above the cap" false (Admission.admit a ~in_system:9);
  check Alcotest.int "rejections counted" 2 (Admission.rejected a)

let test_admission_ewma () =
  let a = Admission.create (Admission.Ewma_sojourn { threshold_ns = 1_000; alpha = 0.5 }) in
  check Alcotest.bool "admits before any completion" true (Admission.admit a ~in_system:999);
  Admission.note_completion a ~sojourn_ns:4_000;
  check (Alcotest.float 0.01) "first sample seeds the EWMA" 4_000.0
    (Admission.ewma_sojourn_ns a);
  check Alcotest.bool "rejects while estimate above threshold" false
    (Admission.admit a ~in_system:0);
  Admission.note_completion a ~sojourn_ns:100;
  Admission.note_completion a ~sojourn_ns:100;
  Admission.note_completion a ~sojourn_ns:100;
  (* 4000 -> 2050 -> 1075 -> 587.5 *)
  check Alcotest.bool "readmits once the estimate decays" true (Admission.admit a ~in_system:0);
  check Alcotest.bool "bad alpha rejected" true
    (raises_invalid (fun () ->
         Admission.create (Admission.Ewma_sojourn { threshold_ns = 1_000; alpha = 1.5 })))

let test_admission_edges () =
  (* The boundary is exact: in_system strictly below the cap admits,
     at the cap sheds — a cap of 1 serializes, it does not starve. *)
  let a = Admission.create (Admission.Queue_limit { max_in_system = 1 }) in
  check Alcotest.bool "cap 1 admits an empty system" true (Admission.admit a ~in_system:0);
  check Alcotest.bool "cap 1 sheds at its own depth" false (Admission.admit a ~in_system:1);
  (* Zero capacity would shed everything forever; it is rejected up
     front rather than becoming a silently-dead front door. *)
  check Alcotest.bool "zero-capacity create rejected" true
    (raises_invalid (fun () ->
         Admission.create (Admission.Queue_limit { max_in_system = 0 })));
  check Alcotest.bool "zero-capacity retune rejected" true
    (raises_invalid (fun () ->
         Admission.set_policy a (Admission.Queue_limit { max_in_system = 0 })));
  check Alcotest.bool "failed retune leaves the old policy in force" true
    (Admission.policy a = Admission.Queue_limit { max_in_system = 1 })

let test_admission_retune_preserves_state () =
  (* The controller retunes thresholds mid-run; learned state (the
     sojourn EWMA, the rejection tally) must survive every swap. *)
  let a = Admission.create (Admission.Ewma_sojourn { threshold_ns = 1_000; alpha = 0.5 }) in
  Admission.note_completion a ~sojourn_ns:4_000;
  check Alcotest.bool "rejects above the threshold" false (Admission.admit a ~in_system:0);
  let rejected_before = Admission.rejected a in
  let ewma_before = Admission.ewma_sojourn_ns a in
  Admission.set_policy a (Admission.Ewma_sojourn { threshold_ns = 8_000; alpha = 0.5 });
  check (Alcotest.float 0.01) "EWMA preserved across the retune" ewma_before
    (Admission.ewma_sojourn_ns a);
  check Alcotest.int "rejection tally preserved" rejected_before (Admission.rejected a);
  check Alcotest.bool "relaxed threshold admits at once" true
    (Admission.admit a ~in_system:0);
  (* Cross-policy swap: the tally keeps accumulating monotonically. *)
  Admission.set_policy a (Admission.Queue_limit { max_in_system = 2 });
  check Alcotest.bool "queue limit in force after swap" false
    (Admission.admit a ~in_system:2);
  check Alcotest.int "tally spans policies" (rejected_before + 1) (Admission.rejected a);
  Admission.set_policy a (Admission.Ewma_sojourn { threshold_ns = 1_000; alpha = 0.5 });
  check Alcotest.bool "EWMA still in effect after returning" false
    (Admission.admit a ~in_system:0)

(* --- Plan validation --- *)

let test_plan_validate () =
  let stall intensity tick_ns =
    Plan.Stalls { intensity; duration = Plan.Fixed_ns 1_000; scope = Plan.All_workers; tick_ns }
  in
  Plan.validate (stall 0.5 1_000);
  check Alcotest.bool "intensity > 1" true
    (raises_invalid (fun () -> Plan.validate (stall 1.5 1_000)));
  check Alcotest.bool "zero tick" true
    (raises_invalid (fun () -> Plan.validate (stall 0.5 0)));
  check Alcotest.bool "drop prob out of range" true
    (raises_invalid (fun () -> Plan.validate (Plan.Nic_drop { prob = -0.1 })));
  check Alcotest.bool "uniform lo > hi" true
    (raises_invalid (fun () ->
         Plan.validate
           (Plan.Stalls
              { intensity = 0.1; duration = Plan.Uniform_ns { lo = 10; hi = 5 };
                scope = Plan.All_workers; tick_ns = 1_000 })))

(* --- Injector determinism and intensity --- *)

let count_stalls ~seed ~intensity =
  let sim = Sim.create () in
  let rng = Prng.create ~seed in
  let target =
    { Injector.cores = 4;
      stall = (fun ~wid:_ ~duration_ns:_ -> ());
      kill = (fun ~wid:_ -> ());
      dispatcher_outage = (fun ~dispatcher:_ ~duration_ns:_ -> ()) }
  in
  let inj =
    Injector.install sim ~rng ~target ~until_ns:1_000_000
      [ Plan.Stalls
          { intensity; duration = Plan.Fixed_ns 20_000; scope = Plan.All_workers;
            tick_ns = 5_000 } ]
  in
  Sim.run sim;
  (Injector.stalls_injected inj, Injector.stall_ns_injected inj)

let test_injector_deterministic_and_monotone () =
  let a = count_stalls ~seed:5L ~intensity:0.05 in
  let a' = count_stalls ~seed:5L ~intensity:0.05 in
  let b = count_stalls ~seed:5L ~intensity:0.3 in
  check Alcotest.(pair int int) "same seed, same injections" a a';
  check Alcotest.bool "some stalls injected" true (fst a > 0);
  check Alcotest.bool "higher intensity injects more" true (fst b > fst a);
  check Alcotest.bool "stall time follows" true (snd b > snd a)

(* --- Conservation under faults (TQ accounting regression) --- *)

let test_conservation_under_faults () =
  let sim = Sim.create () in
  let rng = Prng.create ~seed:7L in
  let workload = Table1.exp1 in
  let metrics = Metrics.create ~workload ~warmup_ns:0 in
  let config = { Two_level.default_config with cores = 4 } in
  let t = Two_level.create sim ~rng:(Prng.split rng) ~config ~metrics () in
  let duration_ns = 1_000_000 in
  ignore
    (Two_level.install_health_monitor t ~interval_ns:10_000 ~until_ns:duration_ns ()
      : Sim.periodic);
  let workers = Two_level.workers t in
  let violations = ref 0 and samples = ref 0 in
  let check_conservation () =
    let a = Two_level.accounting t in
    let on_worker = Array.fold_left (fun acc w -> acc + Worker.unfinished w) 0 workers in
    incr samples;
    if a.accepted <> a.in_dispatch + on_worker + a.completed + a.lost + a.dropped_no_worker
    then incr violations
  in
  ignore (Sim.periodic sim ~until:duration_ns ~interval:3_000 check_conservation : Sim.periodic);
  let target =
    { Injector.cores = 4;
      stall = (fun ~wid ~duration_ns -> Worker.inject_stall workers.(wid) ~duration_ns);
      kill = (fun ~wid -> Worker.kill workers.(wid));
      dispatcher_outage = (fun ~dispatcher:_ ~duration_ns:_ -> ()) }
  in
  ignore
    (Injector.install sim ~rng:(Prng.split rng) ~target ~until_ns:duration_ns
       [ Plan.Stalls
           { intensity = 0.2; duration = Plan.Fixed_ns 30_000; scope = Plan.All_workers;
             tick_ns = 5_000 };
         Plan.Kill { wid = 1; at_ns = duration_ns / 2 } ]
      : Injector.t);
  let rate_rps = 0.7 *. Arrivals.capacity_rps ~cores:4 workload in
  let issued =
    Arrivals.install sim ~rng:(Prng.split rng) ~workload ~rate_rps ~duration_ns
      ~sink:(Two_level.submit t)
  in
  Sim.run sim;
  check_conservation ();
  let a = Two_level.accounting t in
  check Alcotest.bool "enough samples" true (!samples > 100);
  check Alcotest.int "conservation held at every sample" 0 !violations;
  check Alcotest.int "every arrival accounted" !issued a.submitted;
  check Alcotest.int "drained: nothing left in the system" 0 (Two_level.in_system t);
  check Alcotest.int "accepted = completed + lost + dropped at drain" a.accepted
    (a.completed + a.lost + a.dropped_no_worker);
  check Alcotest.bool "the kill lost at most one in-flight job" true (a.lost <= 1);
  check Alcotest.bool "snapshot consistent at drain" true
    (let queued, in_flight, busy = Two_level.obs_snapshot t in
     queued = 0 && in_flight = 0 && busy = 0)

(* --- Dispatcher health tracking: mark dead, re-dispatch, revive --- *)

let test_mark_dead_redispatches_queued_jobs () =
  let sim = Sim.create () in
  let rng = Prng.create ~seed:11L in
  let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
  let config = { Two_level.default_config with cores = 2 } in
  let t = Two_level.create sim ~rng ~config ~metrics () in
  (* Load both cores with long jobs, then declare core 0 dead while it
     still has work queued. *)
  ignore
    (Sim.schedule_at sim ~time:0 (fun () ->
         for i = 1 to 8 do
           Two_level.submit t (req ~req_id:i ~service_ns:20_000 ~arrival_ns:0 ())
         done)
      : Sim.event);
  ignore
    (Sim.schedule_at sim ~time:30_000 (fun () -> Two_level.mark_worker_dead t ~wid:0)
      : Sim.event);
  Sim.run sim;
  let a = Two_level.accounting t in
  check Alcotest.bool "queued jobs were re-dispatched" true (a.redispatches >= 1);
  (* The core was slow, not dead: nothing was actually destroyed, and
     every re-dispatched job completed on the other core. *)
  check Alcotest.int "all jobs completed" 8 a.completed;
  check Alcotest.int "nothing lost" 0 a.lost;
  check Alcotest.int "nothing stranded" 0 (Two_level.in_system t);
  check Alcotest.bool "core excluded from dispatch" true
    (not (Two_level.worker_marked_alive t ~wid:0));
  check Alcotest.int "one core believed alive" 1 (Two_level.alive_worker_count t)

let test_stalled_core_marked_dead_then_revived () =
  let sim = Sim.create () in
  let rng = Prng.create ~seed:3L in
  let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
  let config = { Two_level.default_config with cores = 2 } in
  let t = Two_level.create sim ~rng ~config ~metrics () in
  ignore
    (Two_level.install_health_monitor t ~interval_ns:10_000 ~until_ns:300_000
       ~missed_heartbeats:2 ()
      : Sim.periodic);
  let workers = Two_level.workers t in
  ignore
    (Sim.schedule_at sim ~time:1 (fun () ->
         Worker.inject_stall workers.(0) ~duration_ns:100_000)
      : Sim.event);
  let during = ref true and after = ref false in
  ignore
    (Sim.schedule_at sim ~time:50_000 (fun () ->
         during := Two_level.worker_marked_alive t ~wid:0)
      : Sim.event);
  ignore
    (Sim.schedule_at sim ~time:150_000 (fun () ->
         after := Two_level.worker_marked_alive t ~wid:0)
      : Sim.event);
  Sim.run sim;
  check Alcotest.bool "stalled core marked dead after missed heartbeats" false !during;
  check Alcotest.bool "revived when it responds again" true !after;
  check Alcotest.bool "worker itself was never dead" true (Worker.alive workers.(0))

(* --- Full fault runs (Fault_experiment acceptance) --- *)

let test_kill_one_of_16_degrades_gracefully () =
  let workload = Table1.exp1 in
  let system = Presets.tq () in
  let duration_ns = 2_000_000 in
  let config =
    {
      (Fault_experiment.default_config
         ~rate_rps:(0.7 *. Arrivals.capacity_rps ~cores:16 workload)
         ~duration_ns)
      with
      faults = [ Plan.Kill { wid = 3; at_ns = duration_ns / 3 } ];
      retry = None;
    }
  in
  let r = Fault_experiment.run ~system ~workload config in
  check Alcotest.int "kill injected" 1 r.kills;
  check Alcotest.int "no stranded jobs" 0 r.stranded;
  check Alcotest.bool "at most the in-flight job was destroyed" true (r.lost <= 1);
  (match r.acct with
  | None -> Alcotest.fail "TQ run must expose accounting"
  | Some a ->
      check Alcotest.int "conservation at drain" a.accepted
        (a.completed + a.lost + a.dropped_no_worker);
      check Alcotest.int "no dispatch dead-ends" 0 a.dropped_no_worker);
  check Alcotest.bool "goodput stays near fault-free" true
    (Fault_experiment.goodput_ratio r >= 0.99);
  (* "Bounded p99": the tail after losing 1/16 capacity at 70% load
     stays far from the deadline. *)
  check Alcotest.bool "p99 bounded" true
    (Metrics.overall_eventual_percentile r.metrics 99.0
    < 0.5 *. float_of_int config.deadline_ns)

let test_nic_drops_recovered_by_retry () =
  let workload = Table1.exp1 in
  let system = Presets.tq ~cores:8 () in
  let rate_rps = 0.5 *. Arrivals.capacity_rps ~cores:8 workload in
  let duration_ns = 2_000_000 in
  let base = Fault_experiment.default_config ~rate_rps ~duration_ns in
  let faults = [ Plan.Nic_drop { prob = 0.2 } ] in
  let with_retry =
    Fault_experiment.run ~system ~workload
      { base with faults;
        retry = Some { Retry.default_config with timeout_ns = 50_000;
                       max_attempts = 4; backoff_base_ns = 5_000;
                       backoff_cap_ns = 40_000 };
        deadline_ns = 400_000 }
  in
  let without_retry =
    Fault_experiment.run ~system ~workload
      { base with faults; retry = None; deadline_ns = 400_000 }
  in
  check Alcotest.bool "drops happened" true (Metrics.nic_drops with_retry.metrics > 0);
  check Alcotest.bool "retries happened" true (Metrics.retries with_retry.metrics > 0);
  check Alcotest.bool "retry recovers nearly all drops" true
    (Fault_experiment.goodput_ratio with_retry >= 0.95);
  check Alcotest.bool "without retry ~20% of goodput is gone" true
    (Fault_experiment.goodput_ratio without_retry < 0.9)

let test_dispatcher_outage_rides_through () =
  let workload = Table1.exp1 in
  let system = Presets.tq ~cores:8 () in
  let duration_ns = 2_000_000 in
  let config =
    {
      (Fault_experiment.default_config
         ~rate_rps:(0.5 *. Arrivals.capacity_rps ~cores:8 workload)
         ~duration_ns)
      with
      faults =
        [ Plan.Dispatcher_outage
            { dispatcher = 0; at_ns = duration_ns / 2; duration_ns = 100_000 } ];
      retry = None;
      deadline_ns = 500_000;
    }
  in
  let r = Fault_experiment.run ~system ~workload config in
  check Alcotest.int "outage injected" 1 r.outages;
  check Alcotest.int "nothing stranded" 0 r.stranded;
  check Alcotest.int "nothing lost" 0 r.lost;
  (* Arrivals queue behind the outage and are served afterwards. *)
  check Alcotest.bool "goodput survives the outage" true
    (Fault_experiment.goodput_ratio r >= 0.9)

let test_admission_protects_goodput_past_saturation () =
  let workload = Table1.exp1 in
  let system = Presets.tq ~cores:8 () in
  let capacity = Arrivals.capacity_rps ~cores:8 workload in
  let duration_ns = 3_000_000 in
  let run ~load ~admission =
    Fault_experiment.run ~system ~workload
      {
        (Fault_experiment.default_config ~rate_rps:(load *. capacity) ~duration_ns) with
        retry = None;
        admission;
        deadline_ns = 200_000;
      }
  in
  let limit = Admission.Queue_limit { max_in_system = 32 } in
  let peak = run ~load:0.9 ~admission:limit in
  let protected_ = run ~load:1.4 ~admission:limit in
  let naked = run ~load:1.4 ~admission:Accept_all in
  check Alcotest.bool "sheds under overload" true
    (Metrics.rejections protected_.metrics > 0);
  check Alcotest.bool "goodput within 10% of peak past saturation" true
    (protected_.goodput_rps >= 0.9 *. peak.goodput_rps);
  check Alcotest.bool "without admission goodput collapses" true
    (naked.goodput_rps < 0.5 *. protected_.goodput_rps)

let test_fault_run_deterministic () =
  let workload = Table1.high_bimodal in
  let config =
    {
      (Fault_experiment.default_config
         ~rate_rps:(0.6 *. Arrivals.capacity_rps ~cores:4 workload)
         ~duration_ns:500_000)
      with
      faults =
        [ Plan.Stalls
            { intensity = 0.1; duration = Plan.Exp_ns { mean = 20_000 };
              scope = Plan.All_workers; tick_ns = 5_000 };
          Plan.Kill { wid = 2; at_ns = 250_000 };
          Plan.Nic_drop { prob = 0.05 } ];
    }
  in
  let run () =
    let r = Fault_experiment.run ~system:(Presets.tq ~cores:4 ()) ~workload config in
    (r.goodput, r.events, r.stalls_injected, Metrics.nic_drops r.metrics)
  in
  let a = run () and b = run () in
  check Alcotest.(pair (pair int int) (pair int int)) "same seed, same run"
    (let g, e, s, d = a in ((g, e), (s, d)))
    (let g, e, s, d = b in ((g, e), (s, d)))

(* --- Baseline fault models --- *)

let centralized_config ~cores =
  {
    Centralized.cores;
    quantum_ns = None;
    net_op_ns = 0;
    sched_op_ns = 0;
    sched_scan_per_core_ns = 0;
    preempt_ns = 0;
    probe_overhead_frac = 0.0;
  }

let test_centralized_kill_rescues_queue () =
  let sim = Sim.create () in
  let rng = Prng.create ~seed:1L in
  let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
  let t = Centralized.create sim ~rng ~config:(centralized_config ~cores:2) ~metrics () in
  ignore
    (Sim.schedule_at sim ~time:0 (fun () ->
         for i = 1 to 6 do
           Centralized.submit t (req ~req_id:i ~service_ns:10_000 ~arrival_ns:0 ())
         done)
      : Sim.event);
  (* Core 0 dies mid-service: its in-flight job is destroyed, but the
     central queue keeps feeding the surviving core. *)
  ignore
    (Sim.schedule_at sim ~time:5_000 (fun () -> Centralized.kill_worker t ~wid:0)
      : Sim.event);
  Sim.run sim;
  check Alcotest.int "one job destroyed" 1 (Centralized.lost_jobs t);
  check Alcotest.int "the rest completed" 5 (Metrics.total_completed metrics);
  let queued, in_flight, _ = Centralized.obs_snapshot t in
  check Alcotest.(pair int int) "drained" (0, 0) (queued, in_flight)

let test_centralized_stall_delays_but_completes () =
  let sim = Sim.create () in
  let rng = Prng.create ~seed:1L in
  let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
  let t = Centralized.create sim ~rng ~config:(centralized_config ~cores:2) ~metrics () in
  ignore
    (Sim.schedule_at sim ~time:1 (fun () ->
         Centralized.inject_stall t ~wid:0 ~duration_ns:50_000)
      : Sim.event);
  ignore
    (Sim.schedule_at sim ~time:2 (fun () ->
         for i = 1 to 4 do
           Centralized.submit t (req ~req_id:i ~service_ns:10_000 ~arrival_ns:2 ())
         done)
      : Sim.event);
  Sim.run sim;
  check Alcotest.int "nothing lost" 0 (Centralized.lost_jobs t);
  check Alcotest.int "all jobs completed despite the stall" 4
    (Metrics.total_completed metrics)

let test_caladan_kill_rescued_by_stealing () =
  let sim = Sim.create () in
  let rng = Prng.create ~seed:2L in
  let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
  let config = Caladan.default_config ~mode:Caladan.Directpath ~cores:2 in
  let completed = ref 0 in
  let t =
    Caladan.create sim ~rng ~config ~metrics ~on_complete:(fun _ -> incr completed) ()
  in
  ignore
    (Sim.schedule_at sim ~time:0 (fun () ->
         for i = 1 to 10 do
           Caladan.submit t (req ~req_id:i ~service_ns:10_000 ~arrival_ns:0 ())
         done)
      : Sim.event);
  ignore
    (Sim.schedule_at sim ~time:5_000 (fun () -> Caladan.kill_worker t ~wid:0) : Sim.event);
  Sim.run sim;
  (* Work stealing is the only rescue: everything except the in-flight
     job on the dead core must still complete, on the surviving core. *)
  check Alcotest.bool "at most one destroyed" true (Caladan.lost_jobs t <= 1);
  check Alcotest.int "destroyed + completed = offered" 10 (!completed + Caladan.lost_jobs t);
  let _, in_flight, _ = Caladan.obs_snapshot t in
  check Alcotest.int "no stranded jobs" 0 in_flight

let suite =
  [
    backoff_capped;
    backoff_monotone;
    backoff_doubles;
    Alcotest.test_case "backoff edge cases" `Quick test_backoff_edges;
    Alcotest.test_case "retry recovers a dropped request" `Quick
      test_retry_recovers_dropped_request;
    Alcotest.test_case "retry abandons, duplicates counted" `Quick
      test_retry_abandons_then_counts_duplicate;
    Alcotest.test_case "retry budget exhausted" `Quick test_retry_budget_exhausted;
    Alcotest.test_case "retry full jitter" `Quick test_retry_full_jitter;
    Alcotest.test_case "admission queue limit" `Quick test_admission_queue_limit;
    Alcotest.test_case "admission ewma sojourn" `Quick test_admission_ewma;
    Alcotest.test_case "admission boundary and zero capacity" `Quick test_admission_edges;
    Alcotest.test_case "admission retune preserves state" `Quick
      test_admission_retune_preserves_state;
    Alcotest.test_case "plan validation" `Quick test_plan_validate;
    Alcotest.test_case "injector deterministic, intensity monotone" `Quick
      test_injector_deterministic_and_monotone;
    Alcotest.test_case "conservation under faults" `Quick test_conservation_under_faults;
    Alcotest.test_case "mark-dead re-dispatches queued jobs" `Quick
      test_mark_dead_redispatches_queued_jobs;
    Alcotest.test_case "stalled core marked dead then revived" `Quick
      test_stalled_core_marked_dead_then_revived;
    Alcotest.test_case "1/16 cores killed: graceful degradation" `Quick
      test_kill_one_of_16_degrades_gracefully;
    Alcotest.test_case "nic drops recovered by retry" `Quick
      test_nic_drops_recovered_by_retry;
    Alcotest.test_case "dispatcher outage rides through" `Quick
      test_dispatcher_outage_rides_through;
    Alcotest.test_case "admission keeps goodput past saturation" `Quick
      test_admission_protects_goodput_past_saturation;
    Alcotest.test_case "fault runs deterministic" `Quick test_fault_run_deterministic;
    Alcotest.test_case "centralized kill rescues queue" `Quick
      test_centralized_kill_rescues_queue;
    Alcotest.test_case "centralized stall delays but completes" `Quick
      test_centralized_stall_delays_but_completes;
    Alcotest.test_case "caladan kill rescued by stealing" `Quick
      test_caladan_kill_rescued_by_stealing;
  ]
