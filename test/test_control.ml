(* Unit tests for the feedback control law: pure samples in, actions
   out — no scheduler behind it, which is the point of keeping the
   controller policy-only. *)

module C = Tq_control.Controller

let check = Alcotest.check

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

let objective = { Tq_obs.Slo.name = "test"; latency_ns = 1_000_000; goodput = 0.99 }

(* 10 us initial quantum, shed limit 4096, 100 us ticks, hold 2. *)
let cfg =
  {
    (C.default_config ~quantum_initial_ns:10_000 ~shed_initial:4_096)
    with
    C.objective;
  }

let sample ~now ~classes ?(queued = 0) ?(in_flight = 0) ?(busy = 0) () =
  {
    C.now_ns = now;
    queued;
    in_flight;
    busy_cores = busy;
    classes =
      Array.map (fun (completed, good, shed) -> { C.completed; good; shed }) classes;
  }

(* --- validation --- *)

let test_validation () =
  let bad f = raises_invalid (fun () -> C.create (f cfg)) in
  check Alcotest.bool "zero interval" true (bad (fun c -> { c with C.interval_ns = 0 }));
  check Alcotest.bool "inverted quantum clamp" true
    (bad (fun c -> { c with C.quantum_min_ns = 100; quantum_max_ns = 10 }));
  check Alcotest.bool "initial quantum outside clamp" true
    (bad (fun c -> { c with C.quantum_initial_ns = c.C.quantum_max_ns + 1 }));
  check Alcotest.bool "inverted shed clamp" true
    (bad (fun c -> { c with C.shed_min = 10; shed_max = 5; shed_initial = 7 }));
  check Alcotest.bool "initial shed outside clamp" true
    (bad (fun c -> { c with C.shed_initial = c.C.shed_max + 1 }));
  check Alcotest.bool "inverted watermarks" true
    (bad (fun c -> { c with C.burn_lo = 2.0; burn_hi = 1.0 }));
  check Alcotest.bool "hold_ticks < 1" true (bad (fun c -> { c with C.hold_ticks = 0 }));
  check Alcotest.bool "min_window < 1" true (bad (fun c -> { c with C.min_window = 0 }));
  check Alcotest.bool "decrease >= 1" true (bad (fun c -> { c with C.decrease = 1.0 }));
  check Alcotest.bool "increase <= 1" true (bad (fun c -> { c with C.increase = 1.0 }));
  check Alcotest.bool "headroom > 1" true (bad (fun c -> { c with C.headroom = 1.5 }))

let test_initial_actions () =
  let t = C.create cfg in
  (match C.initial_actions t with
  | [ C.Set_quantum { class_idx = None; quantum_ns }; C.Set_shed_limit { max_in_system } ]
    ->
      check Alcotest.int "initial quantum" 10_000 quantum_ns;
      check Alcotest.int "initial shed limit" 4_096 max_in_system
  | _ -> Alcotest.fail "expected base quantum + shed limit");
  check Alcotest.int "attach quantum visible" 10_000 (C.quantum_ns t ~class_idx:0);
  check Alcotest.int "attach shed visible" 4_096 (C.shed_limit t)

(* --- evidence floor --- *)

let test_min_window_skips () =
  let t = C.create cfg in
  (* 100% late, but never enough completions per window to judge: the
     quantum must not move no matter how long this goes on. *)
  for i = 1 to 20 do
    let s = sample ~now:(i * 100_000) ~classes:[| (i * 4, 0, 0) |] () in
    check Alcotest.(list reject) "no actions on thin windows" [] (C.tick t s)
  done;
  check Alcotest.int "quantum untouched" 10_000 (C.quantum_ns t ~class_idx:0);
  check Alcotest.int "no decisions" 0 (C.decisions t);
  check Alcotest.int "ticks still counted" 20 (C.ticks t)

(* --- quantum loop --- *)

(* Differential lateness: class 0 burns hard while class 1 keeps the
   system-wide burn inside budget — the interference signature that the
   quantum decrease exists for. *)
let test_quantum_down_needs_persistence () =
  let t = C.create cfg in
  let tick i =
    C.tick t
      (sample ~now:(i * 100_000)
         ~classes:[| (i * 8, 0, 0); (i * 1000, i * 1000, 0) |]
         ())
  in
  check Alcotest.(list reject) "one hot tick never actuates" [] (tick 1);
  let class0_moves =
    List.filter_map
      (function
        | C.Set_quantum { class_idx = Some 0; quantum_ns } -> Some quantum_ns
        | _ -> None)
      (tick 2)
  in
  (* (class 1, all-good, may probe its own quantum up on the same tick) *)
  check Alcotest.(list int) "multiplicative decrease on the held breach" [ 5_000 ]
    class0_moves;
  check Alcotest.int "class 0 state moved" 5_000 (C.quantum_ns t ~class_idx:0);
  check Alcotest.int "class 1 probed up independently" 13_000 (C.quantum_ns t ~class_idx:1)

let test_quantum_frozen_while_system_breaching () =
  let t = C.create cfg in
  (* Class 0 is perfectly healthy, but the system as a whole burns
     (class 1 is fully late): neither direction may move — shrinking
     cannot drain a backlog, and growing would trade away granularity
     mid-incident. *)
  for i = 1 to 6 do
    let actions =
      C.tick t
        (sample ~now:(i * 100_000)
           ~classes:[| (i * 1000, i * 1000, 0); (i * 100, 0, 0) |]
           ())
    in
    List.iter
      (function
        | C.Set_quantum _ -> Alcotest.fail "quantum moved during a system-wide breach"
        | C.Set_shed_limit _ -> ())
      actions
  done;
  check Alcotest.int "healthy class untouched" 10_000 (C.quantum_ns t ~class_idx:0);
  check Alcotest.int "breaching class untouched" 10_000 (C.quantum_ns t ~class_idx:1)

let test_quantum_up_when_healthy () =
  let t = C.create cfg in
  let tick i = C.tick t (sample ~now:(i * 100_000) ~classes:[| (i * 100, i * 100, 0) |] ()) in
  check Alcotest.(list reject) "one cool tick never actuates" [] (tick 1);
  (match tick 2 with
  | [ C.Set_quantum { class_idx = Some 0; quantum_ns } ] ->
      check Alcotest.int "multiplicative increase" 13_000 quantum_ns
  | _ -> Alcotest.fail "expected a quantum increase after sustained health");
  (* the clamp ceiling binds eventually *)
  for i = 3 to 30 do ignore (tick i : C.action list) done;
  check Alcotest.int "ceiling respected" cfg.C.quantum_max_ns (C.quantum_ns t ~class_idx:0)

(* --- admission loop --- *)

(* Drive the completion-rate EWMA to a known value (100 completions per
   100 us window = 1e-3/ns), then breach via the leading sensor: a deep
   in-flight backlog predicts sojourns past the target long before late
   completions arrive. *)
let test_shed_snaps_to_little_target () =
  let t = C.create cfg in
  let tick i ~in_flight =
    C.tick t (sample ~now:(i * 100_000) ~in_flight ~classes:[| (i * 100, i * 100, 0) |] ())
  in
  ignore (tick 1 ~in_flight:0 : C.action list);
  (* rate_ewma now known; healthy ticks may raise the quantum, which is
     fine — we only watch the shed limit here. *)
  let shed_moves actions =
    List.filter_map
      (function C.Set_shed_limit { max_in_system } -> Some max_in_system | _ -> None)
      actions
  in
  check Alcotest.(list int) "first breach tick holds fire" []
    (shed_moves (tick 2 ~in_flight:1_000_000));
  (match shed_moves (tick 3 ~in_flight:1_000_000) with
  | [ limit ] ->
      (* rate x latency x headroom = 1e-3 * 1e6 * 0.8 = 800 *)
      check Alcotest.int "snapped to the Little's-law target" 800 limit
  | _ -> Alcotest.fail "expected the shed limit to snap down");
  check Alcotest.int "limit visible" 800 (C.shed_limit t);
  (* Further sustained breach: the cap already sits at the target, and
     the law never cuts below it — residual lateness is backlog
     draining, not something the gate can fix. *)
  for i = 4 to 8 do
    check Alcotest.(list int) "never below the Little target" []
      (shed_moves (tick i ~in_flight:1_000_000))
  done

let test_shed_probe_requires_binding_gate () =
  let t = C.create cfg in
  let tick i ~shed =
    C.tick t (sample ~now:(i * 100_000) ~in_flight:8 ~classes:[| (i * 100, i * 100, shed) |] ())
  in
  let shed_moves actions =
    List.filter_map
      (function C.Set_shed_limit { max_in_system } -> Some max_in_system | _ -> None)
      actions
  in
  (* Healthy and nobody sheds: raising the cap would silently disarm
     it, so the probe must stay quiet. *)
  for i = 1 to 6 do
    check Alcotest.(list int) "no probe while the gate is slack" []
      (shed_moves (tick i ~shed:0))
  done;
  (* Healthy while the gate visibly binds: probe upward, additively. *)
  let seen = ref [] in
  for i = 7 to 10 do
    seen := !seen @ shed_moves (tick i ~shed:(i * 10))
  done;
  (match !seen with
  | limit :: _ ->
      check Alcotest.int "additive probe step" (4_096 + (4_096 / 8)) limit
  | [] -> Alcotest.fail "expected an upward probe while the gate binds");
  check Alcotest.bool "probe stays under the ceiling" true
    (C.shed_limit t <= cfg.C.shed_max)

(* --- bookkeeping --- *)

let test_state_json () =
  let t = C.create cfg in
  ignore (C.tick t (sample ~now:100_000 ~classes:[| (100, 100, 0) |] ()) : C.action list);
  let s = C.state_json t in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "state has %s" needle) true (contains needle))
    [ "\"ticks\""; "\"decisions\""; "\"shed_limit\""; "\"burn\""; "\"classes\"";
      "\"quantum_ns\"" ]

let suite =
  [
    Alcotest.test_case "config validation" `Quick test_validation;
    Alcotest.test_case "initial actions" `Quick test_initial_actions;
    Alcotest.test_case "min_window evidence floor" `Quick test_min_window_skips;
    Alcotest.test_case "quantum down needs persistence" `Quick
      test_quantum_down_needs_persistence;
    Alcotest.test_case "quantum frozen during system breach" `Quick
      test_quantum_frozen_while_system_breaching;
    Alcotest.test_case "quantum up when healthy" `Quick test_quantum_up_when_healthy;
    Alcotest.test_case "shed snaps to Little target" `Quick
      test_shed_snaps_to_little_target;
    Alcotest.test_case "shed probe requires binding gate" `Quick
      test_shed_probe_requires_binding_gate;
    Alcotest.test_case "state json" `Quick test_state_json;
  ]
