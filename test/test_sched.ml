(* Tests for tq_sched: workers, dispatch policies, the TQ two-level
   system and both baseline models. *)

module Sim = Tq_engine.Sim
module Prng = Tq_util.Prng
module Time_unit = Tq_util.Time_unit
module Table1 = Tq_workload.Table1
module Metrics = Tq_workload.Metrics
module Arrivals = Tq_workload.Arrivals
module Job = Tq_sched.Job
module Worker = Tq_sched.Worker
module Overheads = Tq_sched.Overheads
module Dispatch_policy = Tq_sched.Dispatch_policy
module Two_level = Tq_sched.Two_level
module Centralized = Tq_sched.Centralized
module Caladan = Tq_sched.Caladan
module Experiment = Tq_sched.Experiment
module Presets = Tq_sched.Presets

let check = Alcotest.check

let request ?(req_id = 1) ?(class_idx = 0) ~service_ns ~arrival_ns () =
  { Arrivals.req_id; class_idx; service_ns; arrival_ns }

let job ?req_id ?class_idx ~service_ns ?(arrival_ns = 0) () =
  Job.of_request ~probe_overhead_frac:0.0
    (request ?req_id ?class_idx ~service_ns ~arrival_ns ())

(* --- Job --- *)

let test_job_inflation () =
  let j =
    Job.of_request ~probe_overhead_frac:0.5 (request ~service_ns:1000 ~arrival_ns:0 ())
  in
  check Alcotest.int "remaining inflated" 1500 j.remaining_ns;
  check Alcotest.int "true service kept" 1000 j.service_ns;
  Alcotest.(check bool) "not finished" false (Job.finished j)

(* --- Worker: processor sharing --- *)

let make_worker ?(policy = Worker.Ps { quantum_ns = 1000; per_class_quantum = None })
    ?(overheads = Overheads.zero) sim finished =
  Worker.create sim ~wid:0 ~rng:(Prng.create ~seed:1L) ~policy ~overheads
    ~on_finish:(fun j -> finished := (j.Job.id, Sim.now sim) :: !finished)
    ()

let test_worker_ps_interleaves () =
  let sim = Sim.create () in
  let finished = ref [] in
  let w = make_worker sim finished in
  Worker.note_assigned w;
  Worker.note_assigned w;
  Worker.enqueue w (job ~req_id:1 ~service_ns:10_000 ());
  Worker.enqueue w (job ~req_id:2 ~service_ns:1_000 ());
  Sim.run sim;
  (* PS with 1us quanta: job2 runs its single quantum at [1000,2000);
     job1 finishes after 10 quanta interleaved: at 11000. *)
  check
    Alcotest.(list (pair int int))
    "short job first" [ (2, 2_000); (1, 11_000) ] (List.rev !finished);
  check Alcotest.int "all finished" 0 (Worker.unfinished w);
  check Alcotest.int "finished count" 2 (Worker.finished_jobs w)

let test_worker_fcfs_runs_to_completion () =
  let sim = Sim.create () in
  let finished = ref [] in
  let w = make_worker ~policy:Worker.Fcfs sim finished in
  Worker.enqueue w (job ~req_id:1 ~service_ns:10_000 ());
  Worker.enqueue w (job ~req_id:2 ~service_ns:1_000 ());
  Sim.run sim;
  check
    Alcotest.(list (pair int int))
    "fcfs order" [ (1, 10_000); (2, 11_000) ] (List.rev !finished)

let test_worker_yield_cost () =
  let sim = Sim.create () in
  let finished = ref [] in
  let overheads = { Overheads.zero with yield_ns = 100 } in
  let w = make_worker ~overheads sim finished in
  Worker.enqueue w (job ~req_id:1 ~service_ns:3_000 ());
  Sim.run sim;
  (* Three quanta: two preemptions pay 100ns each, final slice finishes. *)
  check Alcotest.(list (pair int int)) "yield cost added" [ (1, 3_200) ] !finished

let test_worker_finish_cost () =
  let sim = Sim.create () in
  let finished = ref [] in
  let overheads = { Overheads.zero with finish_ns = 60 } in
  let w = make_worker ~overheads sim finished in
  Worker.enqueue w (job ~req_id:1 ~service_ns:500 ());
  Sim.run sim;
  check Alcotest.(list (pair int int)) "finish cost" [ (1, 560) ] !finished

let test_worker_quantum_jitter_bounds () =
  let sim = Sim.create () in
  let finished = ref [] in
  let overheads = { Overheads.zero with quantum_jitter_ns = 200 } in
  let w = make_worker ~overheads sim finished in
  Worker.enqueue w (job ~req_id:1 ~service_ns:10_000 ());
  Sim.run sim;
  (* Jitter only lengthens quanta, so completion happens no later than
     uninstrumented service + 0 (jitter consumes service faster). *)
  let _, t = List.hd !finished in
  Alcotest.(check bool) "finishes at exactly total service" true (t = 10_000)

let test_worker_per_class_quantum () =
  let sim = Sim.create () in
  let finished = ref [] in
  let policy = Worker.Ps { quantum_ns = 1_000; per_class_quantum = Some [| 500; 4_000 |] } in
  let w = make_worker ~policy sim finished in
  Worker.enqueue w (job ~req_id:1 ~class_idx:0 ~service_ns:1_000 ());
  Worker.enqueue w (job ~req_id:2 ~class_idx:1 ~service_ns:4_000 ());
  Sim.run sim;
  (* class0 quantum 500: job1 preempted once. Timeline:
     j1 [0,500) j2 [500,4500) j1 [4500,5000). *)
  check
    Alcotest.(list (pair int int))
    "per-class quanta" [ (2, 4_500); (1, 5_000) ] (List.rev !finished)

let test_worker_serviced_quanta_counter () =
  let sim = Sim.create () in
  let finished = ref [] in
  let w = make_worker sim finished in
  let j = job ~req_id:1 ~service_ns:5_000 () in
  Worker.note_assigned w;
  Worker.enqueue w j;
  Sim.run sim;
  check Alcotest.int "job serviced 5 quanta" 5 j.Job.serviced_quanta;
  check Alcotest.int "current quanta drops on finish" 0 (Worker.current_quanta w)

let test_worker_steal () =
  let sim = Sim.create () in
  let finished = ref [] in
  let w = make_worker ~policy:Worker.Fcfs sim finished in
  Worker.note_assigned w;
  Worker.note_assigned w;
  Worker.enqueue w (job ~req_id:1 ~service_ns:10_000 ());
  Worker.enqueue w (job ~req_id:2 ~service_ns:10_000 ());
  (* Job 1 is in service, job 2 queued: steal takes job 2. *)
  (match Worker.steal w with
  | Some j -> check Alcotest.int "stole queued job" 2 j.Job.id
  | None -> Alcotest.fail "expected a stolen job");
  check Alcotest.int "victim load updated" 1 (Worker.unfinished w);
  check Alcotest.(option (of_pp (fun _ _ -> ()))) "no more to steal" None
    (Worker.steal w |> Option.map ignore)

(* --- Dispatch policies --- *)

let workers_with_loads sim loads =
  (* Fabricate dispatcher-visible loads via assignment counters. *)
  Array.mapi
    (fun wid load ->
      let w =
        Worker.create sim ~wid ~rng:(Prng.create ~seed:2L)
          ~policy:Worker.Fcfs ~overheads:Overheads.zero ~on_finish:ignore ()
      in
      for _ = 1 to load do
        Worker.note_assigned w
      done;
      w)
    loads

let test_jsq_picks_min () =
  let sim = Sim.create () in
  let workers = workers_with_loads sim [| 3; 1; 2 |] in
  let c = Dispatch_policy.make_chooser Dispatch_policy.Jsq_random ~rng:(Prng.create ~seed:3L) in
  check Alcotest.int "least loaded" 1 (Dispatch_policy.choose c workers)

let test_msq_tiebreak () =
  let sim = Sim.create () in
  let finished = ref [] in
  (* Two equally loaded workers; the one whose current jobs have serviced
     more quanta must win the tie. *)
  let mk wid service =
    let w =
      Worker.create sim ~wid ~rng:(Prng.create ~seed:4L)
        ~policy:(Worker.Ps { quantum_ns = 1_000; per_class_quantum = None })
        ~overheads:Overheads.zero
        ~on_finish:(fun j -> finished := j.Job.id :: !finished)
        ()
    in
    Worker.note_assigned w;
    Worker.enqueue w (job ~req_id:wid ~service_ns:service ());
    w
  in
  let w0 = mk 0 100_000 and w1 = mk 1 100_000 in
  (* Let w1 accumulate more serviced quanta by feeding it nothing extra
     but running longer: both run the same; instead preload w1's job with
     progress. *)
  Sim.run ~until:5_500 sim;
  (* Both have ~5 quanta; force asymmetry via a second partially-run job. *)
  ignore w0;
  Alcotest.(check bool) "both still busy" true
    (Worker.unfinished w0 = 1 && Worker.unfinished w1 = 1);
  (* Manually bump w1's progress to break the tie deterministically. *)
  let extra = job ~req_id:99 ~service_ns:50_000 () in
  Worker.note_assigned w1;
  Worker.enqueue w1 extra;
  Worker.note_assigned w0;
  Worker.enqueue w0 (job ~req_id:98 ~service_ns:50_000 ());
  Sim.run ~until:50_000 sim;
  let c = Dispatch_policy.make_chooser Dispatch_policy.Jsq_msq ~rng:(Prng.create ~seed:5L) in
  let q0 = Worker.current_quanta w0 and q1 = Worker.current_quanta w1 in
  let expected = if q1 > q0 then 1 else 0 in
  check Alcotest.int "picks max serviced quanta" expected
    (Dispatch_policy.choose c [| w0; w1 |])

let test_round_robin_cycles () =
  let sim = Sim.create () in
  let workers = workers_with_loads sim [| 0; 0; 0 |] in
  let c = Dispatch_policy.make_chooser Dispatch_policy.Round_robin ~rng:(Prng.create ~seed:6L) in
  let picks = List.init 6 (fun _ -> Dispatch_policy.choose c workers) in
  check Alcotest.(list int) "cycles" [ 0; 1; 2; 0; 1; 2 ] picks

let test_random_in_range () =
  let sim = Sim.create () in
  let workers = workers_with_loads sim [| 0; 0; 0; 0 |] in
  let c = Dispatch_policy.make_chooser Dispatch_policy.Random ~rng:(Prng.create ~seed:7L) in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    let i = Dispatch_policy.choose c workers in
    Alcotest.(check bool) "in range" true (i >= 0 && i < 4);
    seen.(i) <- true
  done;
  Alcotest.(check bool) "all workers eventually chosen" true (Array.for_all Fun.id seen)

let test_power_of_two_prefers_lighter () =
  let sim = Sim.create () in
  let workers = workers_with_loads sim [| 10; 0 |] in
  let c = Dispatch_policy.make_chooser Dispatch_policy.Power_of_two ~rng:(Prng.create ~seed:8L) in
  for _ = 1 to 50 do
    check Alcotest.int "always the idle one of the pair" 1 (Dispatch_policy.choose c workers)
  done

(* --- Two-level system --- *)

let run_system ~system ~workload ~rate_rps ~duration_ns =
  Experiment.run ~seed:11L ~system ~workload ~rate_rps ~duration_ns ()

let test_two_level_conservation () =
  let r =
    run_system ~system:(Presets.tq ()) ~workload:Table1.exp1 ~rate_rps:2_000_000.0
      ~duration_ns:(Time_unit.ms 20.0)
  in
  Alcotest.(check bool) "completions bounded by offered" true
    (Metrics.total_completed r.metrics <= r.offered);
  Alcotest.(check bool) "most post-warmup jobs completed" true
    (float_of_int (Metrics.total_completed r.metrics) > 0.85 *. float_of_int r.offered)

let test_two_level_low_load_latency () =
  (* At 5% load the sojourn of an exp(1us) job should be close to its
     service time: little queueing. *)
  let r =
    run_system ~system:(Presets.tq ()) ~workload:Table1.exp1 ~rate_rps:800_000.0
      ~duration_ns:(Time_unit.ms 20.0)
  in
  let p50 = Metrics.sojourn_percentile r.metrics ~class_idx:0 50.0 in
  Alcotest.(check bool) "p50 sojourn ~ service" true (p50 < 2_500.0)

let test_two_level_short_jobs_protected () =
  (* Extreme bimodal at medium load: short jobs must not be stuck behind
     500us long jobs (that's the whole point of tiny quanta). *)
  let r =
    run_system ~system:(Presets.tq ())
      ~workload:Table1.extreme_bimodal_sim ~rate_rps:2_000_000.0
      ~duration_ns:(Time_unit.ms 40.0)
  in
  let p999 = Metrics.sojourn_percentile r.metrics ~class_idx:0 99.9 in
  Alcotest.(check bool)
    (Printf.sprintf "short p99.9 sojourn %.0fns well under long service" p999)
    true (p999 < 100_000.0)

let test_two_level_fcfs_hol_blocking () =
  (* Same workload under TQ-FCFS: short jobs suffer head-of-line blocking,
     tail far above the preemptive case. *)
  let ps =
    run_system ~system:(Presets.tq ()) ~workload:Table1.extreme_bimodal_sim
      ~rate_rps:2_000_000.0 ~duration_ns:(Time_unit.ms 40.0)
  in
  let fcfs =
    run_system ~system:(Presets.tq_fcfs ()) ~workload:Table1.extreme_bimodal_sim
      ~rate_rps:2_000_000.0 ~duration_ns:(Time_unit.ms 40.0)
  in
  let p_ps = Metrics.sojourn_percentile ps.metrics ~class_idx:0 99.9 in
  let p_fcfs = Metrics.sojourn_percentile fcfs.metrics ~class_idx:0 99.9 in
  Alcotest.(check bool)
    (Printf.sprintf "fcfs tail (%.0f) >> ps tail (%.0f)" p_fcfs p_ps)
    true
    (p_fcfs > 3.0 *. p_ps)

let test_two_level_jsq_beats_random () =
  let jsq =
    run_system ~system:(Presets.tq ()) ~workload:Table1.rocksdb_scan_0_5
      ~rate_rps:2_500_000.0 ~duration_ns:(Time_unit.ms 40.0)
  in
  let rand =
    run_system ~system:(Presets.tq_rand ()) ~workload:Table1.rocksdb_scan_0_5
      ~rate_rps:2_500_000.0 ~duration_ns:(Time_unit.ms 40.0)
  in
  let p_jsq = Metrics.sojourn_percentile jsq.metrics ~class_idx:0 99.9 in
  let p_rand = Metrics.sojourn_percentile rand.metrics ~class_idx:0 99.9 in
  Alcotest.(check bool)
    (Printf.sprintf "random (%.0f) worse than jsq (%.0f)" p_rand p_jsq)
    true (p_rand > p_jsq)

let test_dispatcher_busy_scales_with_jobs_not_quanta () =
  let run quantum_ns =
    run_system
      ~system:(Presets.tq ~quantum_ns ())
      ~workload:Table1.high_bimodal ~rate_rps:200_000.0
      ~duration_ns:(Time_unit.ms 20.0)
  in
  let busy_small = (run 500).dispatcher_busy_ns in
  let busy_large = (run 8_000).dispatcher_busy_ns in
  (* TQ's dispatcher works per job: quantum size must not change load by
     more than sampling noise. *)
  Alcotest.(check bool)
    (Printf.sprintf "dispatcher busy %d vs %d" busy_small busy_large)
    true
    (float_of_int (abs (busy_small - busy_large)) < 0.02 *. float_of_int (max busy_small busy_large + 1))

(* --- Centralized (Shinjuku model) --- *)

let test_centralized_ideal_ps_short_jobs () =
  let r =
    run_system
      ~system:(Experiment.Centralized (Centralized.ideal_config ~quantum_ns:1_000 ~cores:16))
      ~workload:Table1.extreme_bimodal_sim ~rate_rps:2_000_000.0
      ~duration_ns:(Time_unit.ms 40.0)
  in
  let p999 = Metrics.sojourn_percentile r.metrics ~class_idx:0 99.9 in
  Alcotest.(check bool) "ideal centralized PS protects short jobs" true (p999 < 50_000.0)

let test_centralized_preemption_overhead_costs_throughput () =
  let run preempt_ns =
    let config =
      { (Centralized.ideal_config ~quantum_ns:1_000 ~cores:16) with preempt_ns }
    in
    run_system ~system:(Experiment.Centralized config) ~workload:Table1.high_bimodal
      ~rate_rps:280_000.0 ~duration_ns:(Time_unit.ms 30.0)
  in
  let ideal = run 0 and costly = run 1_000 in
  let p_ideal = Metrics.sojourn_percentile ideal.metrics ~class_idx:0 99.9 in
  let p_costly = Metrics.sojourn_percentile costly.metrics ~class_idx:0 99.9 in
  (* 1us overhead per 1us quantum doubles effective work: at ~90% offered
     load the costly system is saturated and its tail explodes. *)
  Alcotest.(check bool)
    (Printf.sprintf "overheads blow up tail: %.0f vs %.0f" p_costly p_ideal)
    true
    (p_costly > 10.0 *. p_ideal)

let test_centralized_dispatcher_gap_grows_with_cores () =
  (* 1ms jobs saturating all cores; sched op 200ns. At 3us quanta and 16
     cores the dispatcher cannot keep up: effective quantum > 1.1x. *)
  let gap cores quantum_ns =
    let sim = Sim.create () in
    let config = Centralized.shinjuku_config ~quantum_ns ~cores in
    let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
    let t = Centralized.create sim ~rng:(Prng.create ~seed:1L) ~config ~metrics () in
    (* Keep every core busy: 2 jobs per core of 1ms each. *)
    for i = 1 to 2 * cores do
      Centralized.submit t
        (request ~req_id:i ~service_ns:(Time_unit.ms 1.0) ~arrival_ns:0 ())
    done;
    Sim.run sim;
    Centralized.mean_effective_quantum_ns t
  in
  let eff_16 = gap 16 3_000 and eff_8 = gap 8 3_000 in
  Alcotest.(check bool)
    (Printf.sprintf "16 cores overrun (%.0f), 8 cores ok (%.0f)" eff_16 eff_8)
    true
    (eff_16 > 1.1 *. 3_000.0 && eff_8 < 1.1 *. 3_000.0)

let test_centralized_fcfs_mode () =
  let sim = Sim.create () in
  let config =
    { (Centralized.ideal_config ~quantum_ns:0 ~cores:1) with quantum_ns = None }
  in
  let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
  let t = Centralized.create sim ~rng:(Prng.create ~seed:1L) ~config ~metrics () in
  Centralized.submit t (request ~req_id:1 ~service_ns:1_000 ~arrival_ns:0 ());
  Centralized.submit t (request ~req_id:2 ~service_ns:1_000 ~arrival_ns:0 ());
  Sim.run sim;
  check Alcotest.int "both done" 2 (Metrics.total_completed metrics);
  check (Alcotest.float 1.0) "second waited (fcfs)" 2_000.0
    (Metrics.sojourn_percentile metrics ~class_idx:0 100.0)

(* --- Caladan model --- *)

let test_caladan_work_stealing_balances () =
  (* Two long jobs typically landing anywhere via RSS: stealing must keep
     makespan near one service time, not two. *)
  let sim = Sim.create () in
  let config = Caladan.default_config ~mode:Caladan.Directpath ~cores:2 in
  let metrics = Metrics.create ~workload:Table1.high_bimodal ~warmup_ns:0 in
  let t = Caladan.create sim ~rng:(Prng.create ~seed:3L) ~config ~metrics () in
  Caladan.submit t (request ~req_id:1 ~class_idx:1 ~service_ns:100_000 ~arrival_ns:0 ());
  Caladan.submit t (request ~req_id:2 ~class_idx:1 ~service_ns:100_000 ~arrival_ns:0 ());
  Sim.run sim;
  let makespan = Metrics.sojourn_percentile metrics ~class_idx:1 100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "makespan %.0f ~ one service time" makespan)
    true (makespan < 150_000.0)

let test_caladan_hol_blocking () =
  (* Caladan (FCFS) must show far worse short-job tails than TQ on the
     extreme bimodal workload — the paper's headline comparison. *)
  let cal =
    run_system
      ~system:(Presets.caladan ~mode:Caladan.Directpath ())
      ~workload:Table1.extreme_bimodal_sim ~rate_rps:2_000_000.0
      ~duration_ns:(Time_unit.ms 40.0)
  in
  let tq =
    run_system ~system:(Presets.tq ()) ~workload:Table1.extreme_bimodal_sim
      ~rate_rps:2_000_000.0 ~duration_ns:(Time_unit.ms 40.0)
  in
  let p_cal = Metrics.sojourn_percentile cal.metrics ~class_idx:0 99.9 in
  let p_tq = Metrics.sojourn_percentile tq.metrics ~class_idx:0 99.9 in
  Alcotest.(check bool)
    (Printf.sprintf "caladan short tail %.0f >> tq %.0f" p_cal p_tq)
    true
    (p_cal > 5.0 *. p_tq)

let test_caladan_long_jobs_favored () =
  (* FCFS runs long jobs unpreempted: their latency at medium load should
     beat TQ's PS (which shares the core). *)
  let cal =
    run_system
      ~system:(Presets.caladan ~mode:Caladan.Directpath ())
      ~workload:Table1.extreme_bimodal_sim ~rate_rps:2_000_000.0
      ~duration_ns:(Time_unit.ms 40.0)
  in
  let tq =
    run_system ~system:(Presets.tq ()) ~workload:Table1.extreme_bimodal_sim
      ~rate_rps:2_000_000.0 ~duration_ns:(Time_unit.ms 40.0)
  in
  let p_cal = Metrics.sojourn_percentile cal.metrics ~class_idx:1 99.9 in
  let p_tq = Metrics.sojourn_percentile tq.metrics ~class_idx:1 99.9 in
  Alcotest.(check bool)
    (Printf.sprintf "caladan long tail %.0f < tq %.0f" p_cal p_tq)
    true (p_cal < p_tq)

let test_caladan_iokernel_bottleneck () =
  (* The IOKernel core saturates at ~1/iokernel_op_ns packets/sec. *)
  let r =
    run_system
      ~system:(Presets.caladan ~mode:Caladan.Iokernel ())
      ~workload:Table1.exp1 ~rate_rps:12_000_000.0 ~duration_ns:(Time_unit.ms 10.0)
  in
  (* 12 Mrps offered against ~8.3 Mrps IOKernel capacity: it cannot keep
     up; sojourn tail explodes. *)
  let p99 = Metrics.sojourn_percentile r.metrics ~class_idx:0 99.0 in
  Alcotest.(check bool) "iokernel saturated" true (p99 > 100_000.0)

(* --- Experiment helpers --- *)

let test_throughput_at_low_load () =
  let r =
    run_system ~system:(Presets.tq ()) ~workload:Table1.exp1 ~rate_rps:1_000_000.0
      ~duration_ns:(Time_unit.ms 20.0)
  in
  let tput = Experiment.throughput_rps r in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.0f ~ offered rate" tput)
    true
    (Float.abs (tput -. 1_000_000.0) /. 1_000_000.0 < 0.1)

let test_max_rate_under_slo () =
  (* Fake runner: SLO satisfied only below 5.0. *)
  let run_at rate =
    let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
    if rate < 5.0 then
      Metrics.record metrics ~class_idx:0 ~arrival_ns:0 ~finish_ns:10 ~service_ns:10
    else Metrics.record metrics ~class_idx:0 ~arrival_ns:0 ~finish_ns:1000 ~service_ns:10;
    { Experiment.metrics; offered = 1; duration_ns = 10; events = 0; dispatcher_busy_ns = 0; timeseries = None }
  in
  let ok (r : Experiment.result) =
    Metrics.sojourn_percentile r.metrics ~class_idx:0 100.0 < 100.0
  in
  let best =
    Experiment.max_rate_under_slo ~run_at ~rates:[ 1.0; 2.0; 4.0; 6.0; 8.0 ] ~ok
  in
  check (Alcotest.float 1e-9) "largest passing rate" 4.0 best

let test_presets_shinjuku_quanta () =
  check Alcotest.int "bimodal 5us" 5_000 (Presets.shinjuku_quantum_for "extreme-bimodal");
  check Alcotest.int "tpcc 10us" 10_000 (Presets.shinjuku_quantum_for "tpcc");
  check Alcotest.int "rocksdb 15us" 15_000
    (Presets.shinjuku_quantum_for "rocksdb-0.5pct-scan")

(* --- multi-dispatcher diagnostics --- *)

let test_multi_dispatcher_busy_accounting () =
  let sim = Sim.create () in
  let config =
    {
      Two_level.default_config with
      cores = 4;
      dispatchers = 2;
      overheads = { Overheads.zero with dispatch_ns = 100; ring_hop_ns = 10 };
    }
  in
  let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
  let t = Two_level.create sim ~rng:(Prng.create ~seed:5L) ~config ~metrics () in
  (* req_id mod dispatchers spreads RSS-style: odd ids to dispatcher 1,
     even to dispatcher 0, three jobs each. *)
  for i = 1 to 6 do
    Two_level.submit t (request ~req_id:i ~service_ns:1_000 ~arrival_ns:0 ())
  done;
  Alcotest.(check bool) "work queued at dispatchers" true
    (Two_level.dispatcher_queue_length t > 0);
  Sim.run sim;
  check Alcotest.int "total dispatcher busy = 6 x 100ns" 600
    (Two_level.dispatcher_busy_ns t);
  check Alcotest.int "even split: bottleneck = 3 x 100ns" 300
    (Two_level.max_dispatcher_busy_ns t);
  check Alcotest.int "queues drained" 0 (Two_level.dispatcher_queue_length t);
  check Alcotest.int "all jobs completed" 6 (Metrics.total_completed metrics)

let test_single_dispatcher_max_equals_total () =
  let sim = Sim.create () in
  let config =
    {
      Two_level.default_config with
      cores = 2;
      dispatchers = 1;
      overheads = { Overheads.zero with dispatch_ns = 70 };
    }
  in
  let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
  let t = Two_level.create sim ~rng:(Prng.create ~seed:5L) ~config ~metrics () in
  for i = 1 to 5 do
    Two_level.submit t (request ~req_id:i ~service_ns:500 ~arrival_ns:0 ())
  done;
  Sim.run sim;
  check Alcotest.int "one dispatcher carries everything" 350
    (Two_level.dispatcher_busy_ns t);
  check Alcotest.int "max = total with one dispatcher"
    (Two_level.dispatcher_busy_ns t)
    (Two_level.max_dispatcher_busy_ns t)

(* --- observability integration --- *)

let test_experiment_obs_integration () =
  let obs = Tq_obs.Obs.create ~trace_capacity:4_096 ~sample_interval_ns:100_000 () in
  let r =
    Experiment.run ~obs ~system:(Presets.tq ()) ~workload:Table1.extreme_bimodal_sim
      ~rate_rps:2_000_000.0 ~duration_ns:(Time_unit.ms 2.0) ()
  in
  let trace = obs.Tq_obs.Obs.trace in
  Alcotest.(check bool) "events recorded" true (Tq_obs.Trace.total trace > 0);
  let kinds = Hashtbl.create 8 in
  Tq_obs.Trace.iter trace (fun rec_ ->
      Hashtbl.replace kinds (Tq_obs.Event.name rec_.Tq_obs.Trace.event) ());
  Alcotest.(check bool)
    (Printf.sprintf "at least 5 event types in trace (%d)" (Hashtbl.length kinds))
    true
    (Hashtbl.length kinds >= 5);
  let reg = obs.Tq_obs.Obs.counters in
  Alcotest.(check bool) "dispatch decisions counted" true
    (Tq_obs.Counters.find_count reg "dispatch.decisions" > 0);
  Alcotest.(check bool) "worker quanta counted" true
    (Tq_obs.Counters.find_count reg "worker.quanta" > 0);
  Alcotest.(check bool) "completions counted" true
    (Tq_obs.Counters.find_count reg "worker.completions" > 0);
  (match r.timeseries with
  | Some ts ->
      Alcotest.(check bool) "occupancy sampled" true (Tq_obs.Timeseries.length ts > 0)
  | None -> Alcotest.fail "obs run must produce a timeseries");
  (* The exporter output must at least be shaped like a Chrome trace. *)
  let json = Tq_obs.Chrome_trace.export trace in
  Alcotest.(check bool) "chrome json shape" true
    (String.length json > 2
    && String.sub json 0 15 = "{\"traceEvents\":"
    && json.[String.length json - 2] = '}')

let test_experiment_without_obs_has_no_timeseries () =
  let r =
    run_system ~system:(Presets.tq ()) ~workload:Table1.exp1 ~rate_rps:500_000.0
      ~duration_ns:(Time_unit.ms 1.0)
  in
  Alcotest.(check bool) "no sampler by default" true (r.timeseries = None)

let suite =
  [
    Alcotest.test_case "job inflation" `Quick test_job_inflation;
    Alcotest.test_case "worker ps interleaves" `Quick test_worker_ps_interleaves;
    Alcotest.test_case "worker fcfs" `Quick test_worker_fcfs_runs_to_completion;
    Alcotest.test_case "worker yield cost" `Quick test_worker_yield_cost;
    Alcotest.test_case "worker finish cost" `Quick test_worker_finish_cost;
    Alcotest.test_case "worker jitter bounds" `Quick test_worker_quantum_jitter_bounds;
    Alcotest.test_case "worker per-class quantum" `Quick test_worker_per_class_quantum;
    Alcotest.test_case "worker quanta counter" `Quick test_worker_serviced_quanta_counter;
    Alcotest.test_case "worker steal" `Quick test_worker_steal;
    Alcotest.test_case "jsq picks min" `Quick test_jsq_picks_min;
    Alcotest.test_case "msq tiebreak" `Quick test_msq_tiebreak;
    Alcotest.test_case "round robin" `Quick test_round_robin_cycles;
    Alcotest.test_case "random in range" `Quick test_random_in_range;
    Alcotest.test_case "power of two" `Quick test_power_of_two_prefers_lighter;
    Alcotest.test_case "two-level conservation" `Quick test_two_level_conservation;
    Alcotest.test_case "two-level low load" `Quick test_two_level_low_load_latency;
    Alcotest.test_case "two-level protects short jobs" `Quick test_two_level_short_jobs_protected;
    Alcotest.test_case "fcfs hol blocking" `Quick test_two_level_fcfs_hol_blocking;
    Alcotest.test_case "jsq beats random" `Quick test_two_level_jsq_beats_random;
    Alcotest.test_case "dispatcher load quantum-independent" `Quick
      test_dispatcher_busy_scales_with_jobs_not_quanta;
    Alcotest.test_case "centralized ideal ps" `Quick test_centralized_ideal_ps_short_jobs;
    Alcotest.test_case "centralized preempt overhead" `Quick
      test_centralized_preemption_overhead_costs_throughput;
    Alcotest.test_case "centralized dispatcher gap" `Quick
      test_centralized_dispatcher_gap_grows_with_cores;
    Alcotest.test_case "centralized fcfs mode" `Quick test_centralized_fcfs_mode;
    Alcotest.test_case "caladan stealing" `Quick test_caladan_work_stealing_balances;
    Alcotest.test_case "caladan hol blocking" `Quick test_caladan_hol_blocking;
    Alcotest.test_case "caladan favors long jobs" `Quick test_caladan_long_jobs_favored;
    Alcotest.test_case "caladan iokernel bottleneck" `Quick test_caladan_iokernel_bottleneck;
    Alcotest.test_case "throughput low load" `Quick test_throughput_at_low_load;
    Alcotest.test_case "max rate under slo" `Quick test_max_rate_under_slo;
    Alcotest.test_case "shinjuku quanta presets" `Quick test_presets_shinjuku_quanta;
    Alcotest.test_case "multi-dispatcher busy accounting" `Quick
      test_multi_dispatcher_busy_accounting;
    Alcotest.test_case "single-dispatcher max busy" `Quick
      test_single_dispatcher_max_equals_total;
    Alcotest.test_case "experiment obs integration" `Quick
      test_experiment_obs_integration;
    Alcotest.test_case "no obs, no timeseries" `Quick
      test_experiment_without_obs_has_no_timeseries;
  ]

(* --- determinism and multi-seed --- *)

let test_experiment_deterministic () =
  let run () =
    run_system ~system:(Presets.tq ()) ~workload:Table1.extreme_bimodal_sim
      ~rate_rps:2_500_000.0 ~duration_ns:(Time_unit.ms 10.0)
  in
  let a = run () and b = run () in
  check Alcotest.int "same completions" (Metrics.total_completed a.metrics)
    (Metrics.total_completed b.metrics);
  check (Alcotest.float 1e-9) "same tail"
    (Metrics.sojourn_percentile a.metrics ~class_idx:0 99.9)
    (Metrics.sojourn_percentile b.metrics ~class_idx:0 99.9);
  check Alcotest.int "same event count" a.events b.events

let test_run_seeds_aggregation () =
  let results =
    Experiment.run_seeds ~seeds:[ 1L; 2L; 3L ] ~system:(Presets.tq ())
      ~workload:Table1.exp1 ~rate_rps:1_000_000.0 ~duration_ns:(Time_unit.ms 10.0) ()
  in
  check Alcotest.int "three runs" 3 (List.length results);
  let mean = Experiment.mean_sojourn_percentile results ~class_idx:0 99.9 in
  Alcotest.(check bool) "mean finite and sane" true (mean > 1_000.0 && mean < 100_000.0);
  (* Different seeds: at least two runs differ. *)
  let tails =
    List.map
      (fun (r : Experiment.result) -> Metrics.sojourn_percentile r.metrics ~class_idx:0 99.9)
      results
  in
  Alcotest.(check bool) "seeds differ" true (List.length (List.sort_uniq compare tails) > 1)

let determinism_suite =
  [
    Alcotest.test_case "experiment deterministic" `Quick test_experiment_deterministic;
    Alcotest.test_case "run_seeds aggregation" `Quick test_run_seeds_aggregation;
  ]

let suite = suite @ determinism_suite
