let () =
  Alcotest.run "tiny_quanta"
    [
      ("util", Test_util.suite);
      ("stats", Test_stats.suite);
      ("engine", Test_engine.suite);
      ("workload", Test_workload.suite);
      ("sched", Test_sched.suite);
      ("ir", Test_ir.suite);
      ("instrument", Test_instrument.suite);
      ("cache", Test_cache.suite);
      ("kv", Test_kv.suite);
      ("tpcc", Test_tpcc.suite);
      ("runtime", Test_runtime.suite);
      ("extensions", Test_extensions.suite);
      ("queueing", Test_queueing.suite);
      ("net", Test_net.suite);
      ("facade", Test_facade.suite);
      ("obs", Test_obs.suite);
      ("fault", Test_fault.suite);
      ("control", Test_control.suite);
      ("par", Test_par.suite);
      ("serve", Test_serve.suite);
    ]
