(** The evaluated workloads, exactly as listed in Table 1 of the paper,
    plus the "extreme bimodal" variant used by the Section 2 motivating
    simulation (0.5 us / 500 us). *)

(** Section 2 simulation workload: 99.5% x 0.5us, 0.5% x 500us. *)
val extreme_bimodal_sim : Service_dist.t

(** Table 1: 99.5% x 0.3us (Short), 0.5% x 509us (Long). *)
val extreme_bimodal : Service_dist.t

(** Table 1: 50% x 1us, 50% x 100us. *)
val high_bimodal : Service_dist.t

(** Table 1 TPC-C mix: Payment 5.7us/44%, OrderStatus 6us/4%,
    NewOrder 20us/44%, Delivery 88us/4%, StockLevel 100us/4%. *)
val tpcc : Service_dist.t

(** Table 1: exponential service times with mean 1us. *)
val exp1 : Service_dist.t

(** Table 1: GET 1.2us 99.5% / SCAN 675us 0.5%. *)
val rocksdb_scan_0_5 : Service_dist.t

(** Table 1: GET 1.2us 50% / SCAN 675us 50%. *)
val rocksdb_scan_50 : Service_dist.t

(** All Table 1 workloads, in paper order. *)
val all : Service_dist.t list

(** [find name] looks a workload up by its [Service_dist.name], or by
    its Table 1 position alias ("table1-a" .. "table1-f", in the order
    of [all]). *)
val find : string -> Service_dist.t option
