(* Client-side per-request timeout + retry with capped exponential
   backoff (the RackSched-style robustness layer).

   Sits between the arrival generator and the scheduler: use [sink] as
   the Arrivals sink, and have the experiment driver call
   [note_completion] whenever the scheduler finishes a job.  An attempt
   that does not complete within [timeout_ns] is retried after
   min(backoff_base_ns * 2^(retry-1), backoff_cap_ns), up to
   [max_attempts] total submissions; after that the request is
   abandoned (a timeout drop).

   The original attempt is NOT cancelled on retry — it cannot be, the
   packet is already in the server — so a request can complete twice;
   the first useful completion wins and later ones are counted as
   duplicates.  All accounting flows into the retry-aware counters of
   {!Metrics}. *)

module Sim = Tq_engine.Sim
module Trace = Tq_obs.Trace
module Event = Tq_obs.Event
module Prng = Tq_util.Prng

type config = {
  timeout_ns : int;  (** per-attempt client timeout *)
  max_attempts : int;  (** total submissions allowed, >= 1 *)
  backoff_base_ns : int;  (** backoff before the first retry *)
  backoff_cap_ns : int;  (** exponential backoff ceiling *)
  jitter : bool;  (** full jitter: retry after uniform [0, backoff] *)
  retry_budget : int option;
      (** total retries allowed across every request; [None] = unlimited *)
}

let default_config =
  {
    timeout_ns = 200_000;
    max_attempts = 3;
    backoff_base_ns = 10_000;
    backoff_cap_ns = 160_000;
    jitter = false;
    retry_budget = None;
  }

let validate_config c =
  if c.timeout_ns <= 0 then invalid_arg "Retry: timeout_ns must be positive";
  if c.max_attempts < 1 then invalid_arg "Retry: max_attempts must be >= 1";
  if c.backoff_base_ns < 0 then invalid_arg "Retry: negative backoff_base_ns";
  if c.backoff_cap_ns < c.backoff_base_ns then
    invalid_arg "Retry: backoff_cap_ns below backoff_base_ns";
  match c.retry_budget with
  | Some b when b < 0 -> invalid_arg "Retry: negative retry_budget"
  | _ -> ()

(* Backoff before retry number [retry] (1 = first retry): doubling from
   the base, clamped to the cap.  Shift-count is bounded so the doubling
   cannot overflow for any retry number. *)
let backoff_ns config ~retry =
  if retry < 1 then invalid_arg "Retry.backoff_ns: retry must be >= 1";
  if config.backoff_base_ns = 0 then 0
  else begin
    let doublings = min (retry - 1) 40 in
    let b = config.backoff_base_ns lsl doublings in
    (* lsl can wrap for pathological bases; treat any wrap as capped. *)
    if b <= 0 || b > config.backoff_cap_ns then config.backoff_cap_ns else b
  end

type outcome = Pending | Completed | Abandoned

type entry = {
  req : Arrivals.request;  (** original request (original arrival time) *)
  mutable attempt : int;  (** submissions so far *)
  mutable outcome : outcome;
  mutable timeout_ev : Sim.event option;
}

type t = {
  sim : Sim.t;
  config : config;
  submit : Arrivals.request -> unit;
  metrics : Metrics.t;
  trace : Trace.t;
  rng : Prng.t;
  tbl : (int, entry) Hashtbl.t;
  mutable in_flight : int;  (** requests neither completed nor abandoned *)
  mutable retries_spent : int;  (** against [config.retry_budget] *)
}

let create sim ~config ~metrics ~submit ?(obs = Tq_obs.Obs.disabled ())
    ?(rng = Prng.create ~seed:0x5245545259L) () =
  validate_config config;
  {
    sim;
    config;
    submit;
    metrics;
    trace = obs.Tq_obs.Obs.trace;
    rng;
    tbl = Hashtbl.create 4096;
    in_flight = 0;
    retries_spent = 0;
  }

let rec launch t e =
  e.attempt <- e.attempt + 1;
  Metrics.record_attempt t.metrics;
  let now = Sim.now t.sim in
  t.submit { e.req with arrival_ns = now };
  e.timeout_ev <-
    Some
      (Sim.schedule_after t.sim ~delay:t.config.timeout_ns (fun () -> on_timeout t e))

and on_timeout t e =
  if e.outcome = Pending then begin
    e.timeout_ev <- None;
    let budget_left =
      match t.config.retry_budget with
      | None -> true
      | Some b -> t.retries_spent < b
    in
    if e.attempt >= t.config.max_attempts || not budget_left then begin
      e.outcome <- Abandoned;
      t.in_flight <- t.in_flight - 1;
      Metrics.record_timeout_drop t.metrics;
      if e.attempt < t.config.max_attempts then
        (* the shared budget, not this request's attempt limit, said no *)
        Metrics.record_retries_exhausted t.metrics;
      if Trace.enabled t.trace then
        Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:Event.Global
          (Event.Drop
             {
               job_id = e.req.req_id;
               reason =
                 (if e.attempt >= t.config.max_attempts then "retries-exhausted"
                  else "retry-budget-exhausted");
             })
    end
    else begin
      t.retries_spent <- t.retries_spent + 1;
      let backoff = backoff_ns t.config ~retry:e.attempt in
      (* Full jitter (AWS-style): spread synchronized timeouts uniformly
         over [0, backoff] so retry waves do not re-arrive as a wave. *)
      let backoff =
        if t.config.jitter && backoff > 0 then
          Prng.int_in_range t.rng ~lo:0 ~hi:backoff
        else backoff
      in
      Metrics.record_retry t.metrics;
      if Trace.enabled t.trace then
        Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:Event.Global
          (Event.Retry
             { job_id = e.req.req_id; attempt = e.attempt + 1; backoff_ns = backoff });
      ignore
        (Sim.schedule_after t.sim ~delay:backoff (fun () ->
             (* A stray completion may land during the backoff window. *)
             if e.outcome = Pending then launch t e)
          : Sim.event)
    end
  end

let sink t (req : Arrivals.request) =
  let e = { req; attempt = 0; outcome = Pending; timeout_ev = None } in
  Hashtbl.replace t.tbl req.req_id e;
  t.in_flight <- t.in_flight + 1;
  launch t e

let note_completion t ~req_id ~finish_ns =
  match Hashtbl.find_opt t.tbl req_id with
  | None -> ()  (* submitted around the retry layer; nothing to track *)
  | Some e -> (
      match e.outcome with
      | Completed | Abandoned -> Metrics.record_duplicate t.metrics
      | Pending ->
          e.outcome <- Completed;
          t.in_flight <- t.in_flight - 1;
          (match e.timeout_ev with Some ev -> Sim.cancel ev | None -> ());
          e.timeout_ev <- None;
          Metrics.record_eventual t.metrics ~class_idx:e.req.class_idx
            ~arrival_ns:e.req.arrival_ns ~finish_ns)

let in_flight t = t.in_flight
let retries_spent t = t.retries_spent

let attempts_of t ~req_id =
  match Hashtbl.find_opt t.tbl req_id with Some e -> e.attempt | None -> 0
