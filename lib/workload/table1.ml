open Service_dist

let us f = Tq_util.Time_unit.us f

let extreme_bimodal_sim =
  make ~name:"extreme-bimodal-sim"
    [
      { class_name = "Short"; ratio = 0.995; sampler = Fixed (us 0.5) };
      { class_name = "Long"; ratio = 0.005; sampler = Fixed (us 500.0) };
    ]

let extreme_bimodal =
  make ~name:"extreme-bimodal"
    [
      { class_name = "Short"; ratio = 0.995; sampler = Fixed (us 0.3) };
      { class_name = "Long"; ratio = 0.005; sampler = Fixed (us 509.0) };
    ]

let high_bimodal =
  make ~name:"high-bimodal"
    [
      { class_name = "Short"; ratio = 0.5; sampler = Fixed (us 1.0) };
      { class_name = "Long"; ratio = 0.5; sampler = Fixed (us 100.0) };
    ]

let tpcc =
  make ~name:"tpcc"
    [
      { class_name = "Payment"; ratio = 0.44; sampler = Fixed (us 5.7) };
      { class_name = "OrderStatus"; ratio = 0.04; sampler = Fixed (us 6.0) };
      { class_name = "NewOrder"; ratio = 0.44; sampler = Fixed (us 20.0) };
      { class_name = "Delivery"; ratio = 0.04; sampler = Fixed (us 88.0) };
      { class_name = "StockLevel"; ratio = 0.04; sampler = Fixed (us 100.0) };
    ]

let exp1 =
  make ~name:"exp1"
    [ { class_name = "Exp"; ratio = 1.0; sampler = Exponential (float_of_int (us 1.0)) } ]

let rocksdb_scan_0_5 =
  make ~name:"rocksdb-0.5pct-scan"
    [
      { class_name = "GET"; ratio = 0.995; sampler = Fixed (us 1.2) };
      { class_name = "SCAN"; ratio = 0.005; sampler = Fixed (us 675.0) };
    ]

let rocksdb_scan_50 =
  make ~name:"rocksdb-50pct-scan"
    [
      { class_name = "GET"; ratio = 0.5; sampler = Fixed (us 1.2) };
      { class_name = "SCAN"; ratio = 0.5; sampler = Fixed (us 675.0) };
    ]

let all =
  [ extreme_bimodal; high_bimodal; tpcc; exp1; rocksdb_scan_0_5; rocksdb_scan_50 ]

(* Figure/table positions in the paper, as shorthand for the workloads:
   table1-a..f in the order of [all]. *)
let aliases =
  [
    ("table1-a", extreme_bimodal);
    ("table1-b", high_bimodal);
    ("table1-c", tpcc);
    ("table1-d", exp1);
    ("table1-e", rocksdb_scan_0_5);
    ("table1-f", rocksdb_scan_50);
  ]

let find name =
  match List.assoc_opt name aliases with
  | Some w -> Some w
  | None ->
      List.find_opt
        (fun (w : Service_dist.t) -> w.name = name)
        (extreme_bimodal_sim :: all)
