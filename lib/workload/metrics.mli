(** Per-class latency accounting for one experiment run.

    Records sojourn time (arrival at the server to completion, the
    paper's server-side metric) and slowdown (sojourn / service time) per
    job class.  Samples whose arrival falls inside the warm-up window are
    discarded, mirroring the paper's "first 10% of samples dropped". *)

type t

val create : workload:Service_dist.t -> warmup_ns:int -> t

(** [record t ~class_idx ~arrival_ns ~finish_ns ~service_ns] accounts one
    completed job. *)
val record : t -> class_idx:int -> arrival_ns:int -> finish_ns:int -> service_ns:int -> unit

(** Number of recorded (post-warm-up) completions for a class. *)
val completed : t -> class_idx:int -> int

val total_completed : t -> int

(** [sojourn_percentile t ~class_idx p] in nanoseconds. *)
val sojourn_percentile : t -> class_idx:int -> float -> float

(** [slowdown_percentile t ~class_idx p]. *)
val slowdown_percentile : t -> class_idx:int -> float -> float

(** Percentile over all classes merged. *)
val overall_sojourn_percentile : t -> float -> float

val overall_slowdown_percentile : t -> float -> float
val mean_sojourn : t -> class_idx:int -> float
val class_count : t -> int
val class_name : t -> int -> string

(** {2 Retry-aware accounting}

    Used by the fault-injection stack ({!Retry}, [tq_fault]).  The plain
    {!record} samples are per-*attempt* as the server sees them; the
    [eventual] samples are per-*request*, from the original arrival to
    the first useful completion across retries.  Drop/rejection counters
    are raw (not warm-up filtered) — they account events, not latency
    samples. *)

(** [record_eventual t ~class_idx ~arrival_ns ~finish_ns] records the
    end-to-end request latency; [arrival_ns] is the original (first
    attempt) arrival. *)
val record_eventual : t -> class_idx:int -> arrival_ns:int -> finish_ns:int -> unit

(** One per submission attempt (first tries and retries alike). *)
val record_attempt : t -> unit

(** One per re-submission caused by a client-side timeout. *)
val record_retry : t -> unit

(** Request abandoned after exhausting its attempt budget. *)
val record_timeout_drop : t -> unit

(** Request abandoned because the client's shared retry budget ran out
    (also counted as a timeout drop, so drop totals stay exhaustive). *)
val record_retries_exhausted : t -> unit

(** Request lost on the NIC path (fault injection). *)
val record_nic_drop : t -> unit

(** Request shed by the admission controller. *)
val record_rejection : t -> unit

(** Completion that arrived after the request was already completed by
    an earlier attempt, or after the client abandoned it. *)
val record_duplicate : t -> unit

val attempts : t -> int
val retries : t -> int
val timeout_drops : t -> int

(** Subset of {!timeout_drops} denied by the shared retry budget. *)
val retries_exhausted : t -> int
val nic_drops : t -> int
val rejections : t -> int
val duplicates : t -> int

(** Requests with a recorded (post-warm-up) eventual completion. *)
val eventual_completed : t -> int

val eventual_percentile : t -> class_idx:int -> float -> float
val overall_eventual_percentile : t -> float -> float

(** [goodput_within t ~deadline_ns] counts post-warm-up requests whose
    eventual sojourn was at most [deadline_ns] — completions past the
    deadline are wasted work, which is what makes overload collapse
    visible even in an open-loop simulation. *)
val goodput_within : t -> deadline_ns:int -> int
