module Sample_set = Tq_stats.Sample_set

type t = {
  workload : Service_dist.t;
  warmup_ns : int;
  sojourn : Sample_set.t array;
  slowdown : Sample_set.t array;
  (* Retry-aware accounting (tq_fault).  [sojourn] above is per-attempt
     as the server sees it; [eventual] is per-request, measured from the
     original arrival to the first useful completion. *)
  eventual : Sample_set.t array;
  mutable attempts : int;
  mutable retries : int;
  mutable drops_timeout : int;  (** abandoned after the attempt limit *)
  mutable retries_exhausted : int;
      (** of the timeout drops, those denied a retry by the shared
          retry budget rather than their own attempt limit *)
  mutable drops_nic : int;  (** lost on the NIC path (fault injection) *)
  mutable rejections : int;  (** shed by the admission controller *)
  mutable duplicates : int;  (** completions after the request was done/abandoned *)
}

let create ~workload ~warmup_ns =
  let n = Service_dist.class_count workload in
  {
    workload;
    warmup_ns;
    sojourn = Array.init n (fun _ -> Sample_set.create ());
    slowdown = Array.init n (fun _ -> Sample_set.create ());
    eventual = Array.init n (fun _ -> Sample_set.create ());
    attempts = 0;
    retries = 0;
    drops_timeout = 0;
    retries_exhausted = 0;
    drops_nic = 0;
    rejections = 0;
    duplicates = 0;
  }

let record t ~class_idx ~arrival_ns ~finish_ns ~service_ns =
  if finish_ns < arrival_ns then invalid_arg "Metrics.record: finish before arrival";
  if arrival_ns >= t.warmup_ns then begin
    let sojourn = float_of_int (finish_ns - arrival_ns) in
    Sample_set.add t.sojourn.(class_idx) sojourn;
    Sample_set.add t.slowdown.(class_idx) (sojourn /. float_of_int (max 1 service_ns))
  end

let record_eventual t ~class_idx ~arrival_ns ~finish_ns =
  if finish_ns < arrival_ns then
    invalid_arg "Metrics.record_eventual: finish before arrival";
  if arrival_ns >= t.warmup_ns then
    Sample_set.add t.eventual.(class_idx) (float_of_int (finish_ns - arrival_ns))

let record_attempt t = t.attempts <- t.attempts + 1
let record_retry t = t.retries <- t.retries + 1
let record_timeout_drop t = t.drops_timeout <- t.drops_timeout + 1

let record_retries_exhausted t =
  t.retries_exhausted <- t.retries_exhausted + 1
let record_nic_drop t = t.drops_nic <- t.drops_nic + 1
let record_rejection t = t.rejections <- t.rejections + 1
let record_duplicate t = t.duplicates <- t.duplicates + 1
let attempts t = t.attempts
let retries t = t.retries
let timeout_drops t = t.drops_timeout
let retries_exhausted t = t.retries_exhausted
let nic_drops t = t.drops_nic
let rejections t = t.rejections
let duplicates t = t.duplicates

let completed t ~class_idx = Sample_set.count t.sojourn.(class_idx)

let total_completed t =
  Array.fold_left (fun acc s -> acc + Sample_set.count s) 0 t.sojourn

let sojourn_percentile t ~class_idx p = Sample_set.percentile t.sojourn.(class_idx) p
let slowdown_percentile t ~class_idx p = Sample_set.percentile t.slowdown.(class_idx) p

let merged sets =
  let merged = Sample_set.create () in
  Array.iter
    (fun s -> Array.iter (Sample_set.add merged) (Sample_set.to_sorted_array s))
    sets;
  merged

let overall_sojourn_percentile t p = Sample_set.percentile (merged t.sojourn) p
let overall_slowdown_percentile t p = Sample_set.percentile (merged t.slowdown) p
let mean_sojourn t ~class_idx = Sample_set.mean t.sojourn.(class_idx)
let class_count t = Service_dist.class_count t.workload
let class_name t i = Service_dist.class_name t.workload i

let eventual_completed t =
  Array.fold_left (fun acc s -> acc + Sample_set.count s) 0 t.eventual

let eventual_percentile t ~class_idx p = Sample_set.percentile t.eventual.(class_idx) p
let overall_eventual_percentile t p = Sample_set.percentile (merged t.eventual) p

(* Post-warm-up requests that completed within [deadline_ns] of their
   original arrival: the numerator of goodput. *)
let goodput_within t ~deadline_ns =
  let deadline = float_of_int deadline_ns in
  Array.fold_left
    (fun acc s ->
      Array.fold_left
        (fun acc v -> if v <= deadline then acc + 1 else acc)
        acc (Sample_set.to_sorted_array s))
    0 t.eventual
