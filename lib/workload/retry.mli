(** Client-side per-request timeout + retry with capped exponential
    backoff.

    Wraps a scheduler's submission path: feed arrivals through {!sink}
    and report completions through {!note_completion}.  An attempt that
    has not completed after [timeout_ns] is re-submitted after
    [min (backoff_base_ns * 2^(retry-1)) backoff_cap_ns], up to
    [max_attempts] total submissions, after which the request is
    abandoned and counted as a timeout drop.  The in-server attempt is
    never recalled, so late completions can arrive and are counted as
    duplicates.  Accounting goes to the retry-aware counters of
    {!Metrics}. *)

type config = {
  timeout_ns : int;  (** per-attempt client timeout, > 0 *)
  max_attempts : int;  (** total submissions allowed, >= 1 *)
  backoff_base_ns : int;  (** backoff before the first retry, >= 0 *)
  backoff_cap_ns : int;  (** exponential backoff ceiling, >= base *)
  jitter : bool;
      (** full jitter: each retry waits a uniform draw from
          [0, backoff] instead of the deterministic backoff, so
          synchronized timeouts do not re-arrive as a wave *)
  retry_budget : int option;
      (** total retries allowed across {e all} requests ([None] =
          unlimited, >= 0 otherwise): once spent, a timed-out request
          is abandoned even with attempts left, counted as a
          retries-exhausted timeout drop *)
}

(** 200 us timeout, 3 attempts, 10 us base / 160 us cap backoff, no
    jitter, unlimited budget. *)
val default_config : config

(** Pure backoff schedule: delay before retry number [retry] (1 = first
    retry), before jitter.  Raises [Invalid_argument] if [retry < 1].
    Always in [0, backoff_cap_ns]; overflow-safe for any retry count. *)
val backoff_ns : config -> retry:int -> int

type t

(** [create sim ~config ~metrics ~submit ?obs ?rng ()] builds the retry
    layer in front of [submit] (the scheduler's intake).  [rng] drives
    the jitter draws (a fixed-seed stream by default, so runs stay
    reproducible).  Raises [Invalid_argument] on a malformed
    [config]. *)
val create :
  Tq_engine.Sim.t ->
  config:config ->
  metrics:Metrics.t ->
  submit:(Arrivals.request -> unit) ->
  ?obs:Tq_obs.Obs.t ->
  ?rng:Tq_util.Prng.t ->
  unit ->
  t

(** Arrival intake: tracks the request and submits its first attempt. *)
val sink : t -> Arrivals.request -> unit

(** Report that the scheduler finished the job for [req_id] at
    [finish_ns].  First useful completion records the eventual
    (original-arrival to finish) latency and cancels the pending
    timeout; later ones count as duplicates.  Unknown ids are ignored. *)
val note_completion : t -> req_id:int -> finish_ns:int -> unit

(** Requests neither completed nor abandoned yet. *)
val in_flight : t -> int

(** Retries scheduled so far (what counts against [retry_budget]). *)
val retries_spent : t -> int

(** Submissions made so far for [req_id] (0 if unknown). *)
val attempts_of : t -> req_id:int -> int
