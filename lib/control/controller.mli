(** Sampling feedback controller for blind-scheduling knobs.

    Tiny Quanta exposes exactly two runtime knobs — the preemption
    quantum (per request class) and the admission shed threshold — and
    both trade throughput against tail latency: shrinking the quantum
    buys interleaving (short requests stop waiting behind long ones) at
    the price of preemption overhead, and lowering the admission limit
    sheds load early so what is admitted still meets its deadline.  The
    right settings depend on the offered load and on faults (a stalled
    core removes capacity), neither of which the operator knows in
    advance.  This controller closes the loop: a driver samples the
    running system every [interval_ns], hands the cumulative counts to
    {!tick}, and applies the returned {!action}s through the system's
    live actuators ({!Tq_sched.System_intf.S.set_quantum} /
    [set_admission], or the serve-path equivalents).

    {b Control law.}  The sensor is the per-class {e late burn rate}:
    among requests completed since the last tick, the fraction that
    missed the objective's latency target, divided by the error budget
    [1 - goodput] (the SRE burn convention of {!Tq_obs.Slo} — burn 1.0
    exactly spends the budget).  Sustained burn above [burn_hi] for
    [hold_ticks] consecutive ticks triggers a multiplicative decrease
    of that class's quantum (more interleaving) and snaps the global
    admission limit to a Little's-law target: smoothed completion rate
    x latency target x [headroom], the deepest backlog the measured
    capacity can drain inside the objective — one decision lands near
    the right cap whether the cause is overload or stalled cores (the
    completion rate already reflects lost capacity).  Sustained burn
    below [burn_lo] triggers a multiplicative quantum increase (less
    preemption overhead) and an additive admission-limit increase
    (probe for reclaimed capacity); the asymmetry — snap down, creep
    up — keeps recovery from overshooting into a fresh breach.

    {b Stability.}  Three mechanisms keep the loop from oscillating:
    the [burn_lo < burn_hi] dead band (no action while burn is between
    the watermarks), the [hold_ticks] persistence requirement (a single
    bad window never actuates; counters reset whenever burn re-enters
    the dead band), and the [min_window] evidence floor (ticks with too
    few completions are skipped entirely, so an idle system never drifts).
    Actuation is clamped to [quantum_min_ns, quantum_max_ns] and
    [shed_min, shed_max], and an action is only emitted when the clamped
    value actually changed.

    The controller is pure policy: it never touches the system, only
    maps samples to actions, which keeps it identical across the DES
    simulator and the live serving path and makes the law unit-testable
    without a scheduler.  Single-threaded, like the rest of the
    observability layer: one controller per driving thread. *)

(** Cumulative per-class completion counts, as seen at one instant.
    All three fields are monotone totals since system start; the
    controller differences consecutive samples itself. *)
type class_sample = {
  completed : int;  (** requests finished, good or late *)
  good : int;  (** completed within the objective's latency target *)
  shed : int;  (** rejected by admission before any service *)
}

(** One observation of the running system, passed to {!tick}. *)
type sample = {
  now_ns : int;  (** sample timestamp (virtual or wall clock) *)
  queued : int;  (** requests waiting, dispatcher + worker queues *)
  in_flight : int;  (** admitted but unfinished *)
  busy_cores : int;  (** workers mid-quantum *)
  classes : class_sample array;  (** per request class, index = class *)
}

(** A knob movement for the driver to apply.  [Set_quantum] with
    [class_idx = None] retunes the base quantum (all classes);
    [Set_shed_limit] replaces the admission policy's in-system cap. *)
type action =
  | Set_quantum of { class_idx : int option; quantum_ns : int }
  | Set_shed_limit of { max_in_system : int }

type config = {
  interval_ns : int;  (** sampling period the driver should use *)
  objective : Tq_obs.Slo.objective;
      (** latency target defining "good", goodput defining the budget *)
  quantum_min_ns : int;  (** actuation floor (probe overhead wall) *)
  quantum_max_ns : int;  (** actuation ceiling *)
  quantum_initial_ns : int;  (** operating point at attach *)
  shed_min : int;  (** admission-limit floor (never shed to zero) *)
  shed_max : int;  (** admission-limit ceiling *)
  shed_initial : int;  (** admission limit at attach *)
  burn_hi : float;  (** breach watermark: act above this, persistently *)
  burn_lo : float;  (** healthy watermark: relax below this, persistently *)
  hold_ticks : int;  (** consecutive ticks beyond a watermark before acting *)
  min_window : int;  (** minimum completions per tick to judge a class *)
  decrease : float;  (** multiplicative step down, in (0, 1) *)
  increase : float;  (** multiplicative quantum step up, > 1 *)
  headroom : float;
      (** fraction of the latency target the Little's-law shed target
          aims at, in (0, 1]: lower = shed earlier, more slack *)
}

(** [default_config ~quantum_initial_ns ~shed_initial] — 100 us ticks,
    the {!Tq_obs.Slo.default_objective}, quantum clamped to [500 ns,
    20 us], shed limit clamped to [8, 16384], watermarks 1.0 / 0.5,
    2-tick hold, 8-completion evidence floor, x0.5 down / x1.3 up,
    0.8 headroom. *)
val default_config : quantum_initial_ns:int -> shed_initial:int -> config

type t

(** [create ?obs config] — a controller at its initial operating point.
    Decisions are published to [obs] as [control.*] counters and gauges.
    Raises [Invalid_argument] on non-positive interval, inverted clamp
    ranges or watermarks, an initial value outside its clamp range,
    factors outside their domains, or [hold_ticks]/[min_window] < 1. *)
val create : ?obs:Tq_obs.Obs.t -> config -> t

val config : t -> config

(** [initial_actions t] — the actions that move a freshly created
    system to the controller's initial operating point ([Set_quantum]
    base + [Set_shed_limit]); apply once at attach time. *)
val initial_actions : t -> action list

(** [tick t sample] — ingest one observation and return the knob
    movements it warrants (usually none).  Call at [interval_ns]
    cadence; the sample's class array may grow between ticks as new
    classes appear. *)
val tick : t -> sample -> action list

(** Current quantum for [class_idx] (the initial quantum for classes
    never yet observed). *)
val quantum_ns : t -> class_idx:int -> int

(** Current admission in-system cap. *)
val shed_limit : t -> int

(** Ticks ingested. *)
val ticks : t -> int

(** Actions emitted over the controller's lifetime. *)
val decisions : t -> int

(** One-line JSON of the controller's live state — ticks, decisions,
    shed limit, global burn, and per-class quantum/burn — served by the
    [tq_serve] stats RPC's [control] view. *)
val state_json : t -> string
