(* The feedback control law: samples in, knob movements out.  Pure
   policy — the sim driver and the live server both apply the returned
   actions through their own actuators, so the law is shared and
   testable without a scheduler behind it. *)

type class_sample = { completed : int; good : int; shed : int }

type sample = {
  now_ns : int;
  queued : int;
  in_flight : int;
  busy_cores : int;
  classes : class_sample array;
}

type action =
  | Set_quantum of { class_idx : int option; quantum_ns : int }
  | Set_shed_limit of { max_in_system : int }

type config = {
  interval_ns : int;
  objective : Tq_obs.Slo.objective;
  quantum_min_ns : int;
  quantum_max_ns : int;
  quantum_initial_ns : int;
  shed_min : int;
  shed_max : int;
  shed_initial : int;
  burn_hi : float;
  burn_lo : float;
  hold_ticks : int;
  min_window : int;
  decrease : float;
  increase : float;
  headroom : float;
}

let default_config ~quantum_initial_ns ~shed_initial =
  {
    interval_ns = 100_000;
    objective = Tq_obs.Slo.default_objective;
    quantum_min_ns = 500;
    quantum_max_ns = 20_000;
    quantum_initial_ns;
    shed_min = 8;
    shed_max = 16_384;
    shed_initial;
    burn_hi = 1.0;
    burn_lo = 0.5;
    hold_ticks = 2;
    min_window = 8;
    decrease = 0.5;
    increase = 1.3;
    headroom = 0.8;
  }

(* Per-class loop state.  [hot]/[cool] count consecutive ticks beyond a
   watermark; both reset whenever burn re-enters the dead band, which is
   the hysteresis that stops a borderline class from flapping. *)
type class_state = {
  mutable quantum_ns : int;
  mutable last : class_sample;
  mutable burn : float;
  mutable hot : int;
  mutable cool : int;
}

type t = {
  cfg : config;
  mutable classes : class_state array;
  mutable shed_limit : int;
  mutable shed_hot : int;
  mutable shed_cool : int;
  mutable global_burn : float;
  mutable last_now_ns : int option;  (** previous tick's timestamp *)
  mutable rate_ewma : float;  (** smoothed completion rate, per ns *)
  mutable ticks : int;
  mutable decisions : int;
  (* telemetry *)
  c_ticks : Tq_obs.Counters.counter;
  c_decisions : Tq_obs.Counters.counter;
  c_quantum_down : Tq_obs.Counters.counter;
  c_quantum_up : Tq_obs.Counters.counter;
  c_shed_down : Tq_obs.Counters.counter;
  c_shed_up : Tq_obs.Counters.counter;
  c_skipped : Tq_obs.Counters.counter;
  g_burn : Tq_obs.Counters.gauge;
  g_predicted : Tq_obs.Counters.gauge;
  g_shed_limit : Tq_obs.Counters.gauge;
  g_quantum : Tq_obs.Counters.gauge;
}

let validate (cfg : config) =
  let fail fmt = Printf.ksprintf invalid_arg ("Controller.create: " ^^ fmt) in
  if cfg.interval_ns <= 0 then fail "interval must be positive";
  if cfg.quantum_min_ns <= 0 || cfg.quantum_min_ns > cfg.quantum_max_ns then
    fail "quantum clamp range [%d, %d] invalid" cfg.quantum_min_ns cfg.quantum_max_ns;
  if cfg.quantum_initial_ns < cfg.quantum_min_ns
     || cfg.quantum_initial_ns > cfg.quantum_max_ns
  then fail "initial quantum %d outside clamp range" cfg.quantum_initial_ns;
  if cfg.shed_min <= 0 || cfg.shed_min > cfg.shed_max then
    fail "shed clamp range [%d, %d] invalid" cfg.shed_min cfg.shed_max;
  if cfg.shed_initial < cfg.shed_min || cfg.shed_initial > cfg.shed_max then
    fail "initial shed limit %d outside clamp range" cfg.shed_initial;
  if not (cfg.burn_lo >= 0.0 && cfg.burn_lo < cfg.burn_hi) then
    fail "watermarks must satisfy 0 <= burn_lo < burn_hi";
  if cfg.hold_ticks < 1 then fail "hold_ticks must be >= 1";
  if cfg.min_window < 1 then fail "min_window must be >= 1";
  if not (cfg.decrease > 0.0 && cfg.decrease < 1.0) then
    fail "decrease factor must lie in (0, 1)";
  if cfg.increase <= 1.0 then fail "increase factor must be > 1";
  if not (cfg.headroom > 0.0 && cfg.headroom <= 1.0) then
    fail "headroom must lie in (0, 1]"

let create ?(obs = Tq_obs.Obs.disabled ()) cfg =
  validate cfg;
  let reg = obs.Tq_obs.Obs.counters in
  let counter = Tq_obs.Counters.counter reg and gauge = Tq_obs.Counters.gauge reg in
  let t =
    {
      cfg;
      classes = [||];
      shed_limit = cfg.shed_initial;
      shed_hot = 0;
      shed_cool = 0;
      global_burn = 0.0;
      last_now_ns = None;
      rate_ewma = 0.0;
      ticks = 0;
      decisions = 0;
      c_ticks = counter "control.ticks";
      c_decisions = counter "control.decisions";
      c_quantum_down = counter "control.quantum_down";
      c_quantum_up = counter "control.quantum_up";
      c_shed_down = counter "control.shed_down";
      c_shed_up = counter "control.shed_up";
      c_skipped = counter "control.skipped";
      g_burn = gauge "control.burn";
      g_predicted = gauge "control.predicted_sojourn_ns";
      g_shed_limit = gauge "control.shed_limit";
      g_quantum = gauge "control.quantum_ns";
    }
  in
  Tq_obs.Counters.set t.g_shed_limit (float_of_int cfg.shed_initial);
  Tq_obs.Counters.set t.g_quantum (float_of_int cfg.quantum_initial_ns);
  t

let config t = t.cfg

let initial_actions t =
  [
    Set_quantum { class_idx = None; quantum_ns = t.cfg.quantum_initial_ns };
    Set_shed_limit { max_in_system = t.shed_limit };
  ]

let fresh_class cfg =
  {
    quantum_ns = cfg.quantum_initial_ns;
    last = { completed = 0; good = 0; shed = 0 };
    burn = 0.0;
    hot = 0;
    cool = 0;
  }

let ensure_classes t n =
  let have = Array.length t.classes in
  if n > have then
    t.classes <-
      Array.init n (fun i -> if i < have then t.classes.(i) else fresh_class t.cfg)

(* Late burn over one window: the fraction of completions that missed
   the latency target, over the error budget.  Sheds are deliberately
   excluded — the quantum only shapes the latency of what was admitted,
   and counting sheds here would lock the loop at the floor whenever the
   gate is doing its job under overload. *)
let late_burn (cfg : config) ~completed ~good =
  if completed <= 0 then 0.0
  else
    let late_frac = float_of_int (completed - good) /. float_of_int completed in
    late_frac /. (1.0 -. cfg.objective.Tq_obs.Slo.goodput)

(* One class's quantum loop: persistence-gated multiplicative moves.
   [system_breaching] is the whole-system burn verdict this tick: when
   every class is late the problem is backlog, and shrinking a quantum
   cannot drain a queue — it only adds preemption overhead — so the
   decrease is suppressed and the admission loop handles it.  The
   quantum shrinks only on {e differential} lateness: this class burns
   while the system as a whole is inside budget, the signature of
   short requests stuck behind long slices (interference, not load). *)
let step_class t idx (st : class_state) (cur : class_sample) ~system_breaching
    actions =
  let cfg = t.cfg in
  let d_completed = cur.completed - st.last.completed
  and d_good = cur.good - st.last.good in
  st.last <- cur;
  if d_completed < cfg.min_window then (
    Tq_obs.Counters.incr t.c_skipped;
    actions)
  else begin
    st.burn <- late_burn cfg ~completed:d_completed ~good:d_good;
    let move target counter =
      if target = st.quantum_ns then actions
      else begin
        st.quantum_ns <- target;
        t.decisions <- t.decisions + 1;
        Tq_obs.Counters.incr t.c_decisions;
        Tq_obs.Counters.incr counter;
        if idx = 0 then Tq_obs.Counters.set t.g_quantum (float_of_int target);
        Set_quantum { class_idx = Some idx; quantum_ns = target } :: actions
      end
    in
    if st.burn >= cfg.burn_hi then begin
      st.cool <- 0;
      if system_breaching then begin
        st.hot <- 0;
        actions
      end
      else begin
        st.hot <- st.hot + 1;
        if st.hot >= cfg.hold_ticks then begin
          st.hot <- 0;
          let target =
            max cfg.quantum_min_ns
              (int_of_float (float_of_int st.quantum_ns *. cfg.decrease))
          in
          move target t.c_quantum_down
        end
        else actions
      end
    end
    else if st.burn <= cfg.burn_lo then begin
      st.hot <- 0;
      if system_breaching then begin
        (* The class looks healthy only because its completions predate
           the backlog; don't trade preemption granularity away now. *)
        st.cool <- 0;
        actions
      end
      else begin
        st.cool <- st.cool + 1;
        if st.cool >= cfg.hold_ticks then begin
          st.cool <- 0;
          let target =
            min cfg.quantum_max_ns
              (max (st.quantum_ns + 1)
                 (int_of_float (float_of_int st.quantum_ns *. cfg.increase)))
          in
          move target t.c_quantum_up
        end
        else actions
      end
    end
    else begin
      (* dead band: burn is acceptable, reset persistence counters *)
      st.hot <- 0;
      st.cool <- 0;
      actions
    end
  end

(* The admission loop.  Its breach sensor is deliberately {e leading}:
   besides the (lagging) late-completion burn it watches the predicted
   sojourn — in-flight depth over smoothed completion rate, Little's
   law — which flags a growing backlog ~one service time before late
   completions start arriving.  On sustained breach the in-system cap
   snaps to the Little's-law target (rate x latency target x headroom,
   the deepest backlog the measured capacity can drain inside the
   objective) and never below it: once the cap sits at the target,
   residual lateness is old backlog draining (or damage the gate
   cannot fix), and cutting further only trades completions for sheds.
   On sustained health it probes upward additively, and only while the
   gate is actually binding (sheds happened this window) — raising a
   cap the system never reaches would silently disarm it for the next
   burst.  The asymmetry (snap down, creep up) keeps recovery from
   overshooting into a fresh breach. *)
let step_shed t ~window_ok ~in_flight ~d_shed actions =
  let cfg = t.cfg in
  if not window_ok || t.rate_ewma <= 0.0 then actions
  else begin
    let latency = float_of_int cfg.objective.Tq_obs.Slo.latency_ns in
    let predicted_ns = float_of_int in_flight /. t.rate_ewma in
    Tq_obs.Counters.set t.g_predicted predicted_ns;
    let little =
      max cfg.shed_min
        (min cfg.shed_max (int_of_float (t.rate_ewma *. latency *. cfg.headroom)))
    in
    let move target counter =
      if target = t.shed_limit then actions
      else begin
        t.shed_limit <- target;
        t.decisions <- t.decisions + 1;
        Tq_obs.Counters.incr t.c_decisions;
        Tq_obs.Counters.incr counter;
        Tq_obs.Counters.set t.g_shed_limit (float_of_int target);
        Set_shed_limit { max_in_system = target } :: actions
      end
    in
    let breaching = t.global_burn >= cfg.burn_hi || predicted_ns > latency in
    let healthy =
      t.global_burn <= cfg.burn_lo && predicted_ns < cfg.headroom *. latency
    in
    if breaching then begin
      t.shed_cool <- 0;
      t.shed_hot <- t.shed_hot + 1;
      if t.shed_hot >= cfg.hold_ticks then begin
        t.shed_hot <- 0;
        if little < t.shed_limit then move little t.c_shed_down else actions
      end
      else actions
    end
    else if healthy then begin
      t.shed_hot <- 0;
      t.shed_cool <- t.shed_cool + 1;
      if t.shed_cool >= cfg.hold_ticks then begin
        t.shed_cool <- 0;
        if d_shed > 0 then
          move (min cfg.shed_max (t.shed_limit + max 1 (t.shed_limit / 8))) t.c_shed_up
        else actions
      end
      else actions
    end
    else begin
      t.shed_hot <- 0;
      t.shed_cool <- 0;
      actions
    end
  end

let tick t (sample : sample) =
  t.ticks <- t.ticks + 1;
  Tq_obs.Counters.incr t.c_ticks;
  ensure_classes t (Array.length sample.classes);
  (* Aggregate the window before per-class state consumes [last]. *)
  let d_completed = ref 0 and d_good = ref 0 and d_shed = ref 0 in
  Array.iteri
    (fun i (cur : class_sample) ->
      let st = t.classes.(i) in
      d_completed := !d_completed + (cur.completed - st.last.completed);
      d_good := !d_good + (cur.good - st.last.good);
      d_shed := !d_shed + (cur.shed - st.last.shed))
    sample.classes;
  (* Smoothed service capacity estimate (completions per ns), the input
     to the Little's-law shed target. *)
  (match t.last_now_ns with
  | Some last when sample.now_ns > last ->
      let rate = float_of_int !d_completed /. float_of_int (sample.now_ns - last) in
      t.rate_ewma <-
        (if t.rate_ewma = 0.0 then rate
         else (0.3 *. rate) +. (0.7 *. t.rate_ewma))
  | _ -> ());
  t.last_now_ns <- Some sample.now_ns;
  let window_ok = !d_completed >= t.cfg.min_window in
  if window_ok then begin
    t.global_burn <- late_burn t.cfg ~completed:!d_completed ~good:!d_good;
    Tq_obs.Counters.set t.g_burn t.global_burn
  end;
  let system_breaching = window_ok && t.global_burn >= t.cfg.burn_hi in
  let actions = ref [] in
  Array.iteri
    (fun i cur ->
      actions := step_class t i t.classes.(i) cur ~system_breaching !actions)
    sample.classes;
  actions := step_shed t ~window_ok ~in_flight:sample.in_flight ~d_shed:!d_shed !actions;
  List.rev !actions

let quantum_ns t ~class_idx =
  if class_idx >= 0 && class_idx < Array.length t.classes then
    t.classes.(class_idx).quantum_ns
  else t.cfg.quantum_initial_ns

let shed_limit t = t.shed_limit
let ticks t = t.ticks
let decisions t = t.decisions

let state_json t =
  let module J = Tq_util.Json in
  let classes =
    Array.to_list
      (Array.mapi
         (fun i (st : class_state) ->
           J.Obj
             [
               ("class", J.Number (float_of_int i));
               ("quantum_ns", J.Number (float_of_int st.quantum_ns));
               ("burn", J.Number st.burn);
               ("completed", J.Number (float_of_int st.last.completed));
               ("good", J.Number (float_of_int st.last.good));
               ("shed", J.Number (float_of_int st.last.shed));
             ])
         t.classes)
  in
  J.to_string
    (J.Obj
       [
         ("ticks", J.Number (float_of_int t.ticks));
         ("decisions", J.Number (float_of_int t.decisions));
         ("shed_limit", J.Number (float_of_int t.shed_limit));
         ("burn", J.Number t.global_burn);
         ("objective_latency_ns",
          J.Number (float_of_int t.cfg.objective.Tq_obs.Slo.latency_ns));
         ("objective_goodput", J.Number t.cfg.objective.Tq_obs.Slo.goodput);
         ("classes", J.List classes);
       ])
