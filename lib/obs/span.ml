(* Cross-domain request spans for the live serving path.

   The simulator's Trace is a single ring written from one thread; the
   live server has a dispatcher thread plus N worker domains, so one
   shared ring would be a data race.  Here every domain registers its
   own bounded sink (the Spsc_ring idiom: per-cell Atomics so record
   publication is ordered with the cursor update, single writer per
   sink) and a merge step stitches the per-domain buffers into one
   timeline keyed by request id.

   The hot-path contract matches Trace: a sink of a disabled collection
   is [null_sink] (capacity 0), so a record call costs one branch and
   allocates nothing — every argument is an immediate int.  Call sites
   additionally guard clock reads with [enabled]. *)

type phase =
  | Accept
  | Parse
  | Dispatch
  | Ring_hop
  | Quantum
  | Reply_flush
  | Stall
  | Shed
  | Steal
  | Gc_minor
  | Gc_major

let phase_name = function
  | Accept -> "accept"
  | Parse -> "parse"
  | Dispatch -> "dispatch"
  | Ring_hop -> "ring_hop"
  | Quantum -> "quantum"
  | Reply_flush -> "reply_flush"
  | Stall -> "stall"
  | Shed -> "shed"
  | Steal -> "steal"
  | Gc_minor -> "gc_minor"
  | Gc_major -> "gc_major"

type record = {
  req_id : int;
  phase : phase;
  lane : Event.lane;
  start_ns : int;
  dur_ns : int;
  arg : int;
}

type sink = {
  s_lane : Event.lane;
  cells : record option Atomic.t array;
  s_capacity : int;
  next : int Atomic.t;  (** records ever written by the owning domain *)
}

type t = {
  enabled : bool;
  capacity_per_sink : int;
  sinks : sink list Atomic.t;  (** registration order, newest first *)
}

let null_sink =
  { s_lane = Event.Global; cells = [||]; s_capacity = 0; next = Atomic.make 0 }

let null = { enabled = false; capacity_per_sink = 0; sinks = Atomic.make [] }

let create ?(capacity_per_sink = 65_536) () =
  if capacity_per_sink < 1 then
    invalid_arg "Span.create: capacity_per_sink must be positive";
  { enabled = true; capacity_per_sink; sinks = Atomic.make [] }

let enabled t = t.enabled

(* Registration is the only cross-domain write on the collection
   itself, so it goes through a CAS loop; each worker registers its own
   sink from its own domain. *)
let register t lane =
  if not t.enabled then null_sink
  else begin
    let s =
      {
        s_lane = lane;
        cells = Array.init t.capacity_per_sink (fun _ -> Atomic.make None);
        s_capacity = t.capacity_per_sink;
        next = Atomic.make 0;
      }
    in
    let rec add () =
      let cur = Atomic.get t.sinks in
      if not (Atomic.compare_and_set t.sinks cur (s :: cur)) then add ()
    in
    add ();
    s
  end

let record sink ~req_id ~phase ~start_ns ~dur_ns ~arg =
  if sink.s_capacity > 0 then begin
    let seq = Atomic.get sink.next in
    Atomic.set
      sink.cells.(seq mod sink.s_capacity)
      (Some { req_id; phase; lane = sink.s_lane; start_ns; dur_ns; arg });
    Atomic.set sink.next (seq + 1)
  end

let sink_records sink =
  let next = Atomic.get sink.next in
  let first = max 0 (next - sink.s_capacity) in
  let acc = ref [] in
  for seq = next - 1 downto first do
    match Atomic.get sink.cells.(seq mod sink.s_capacity) with
    | Some r -> acc := r :: !acc
    | None -> ()
  done;
  !acc

let total t =
  List.fold_left (fun acc s -> acc + Atomic.get s.next) 0 (Atomic.get t.sinks)

let sink_dropped sink = max 0 (Atomic.get sink.next - sink.s_capacity)

let dropped t =
  List.fold_left (fun acc s -> acc + sink_dropped s) 0 (Atomic.get t.sinks)

(* Stitch the per-domain buffers into one timeline: stable sort by span
   start, so records within one sink keep their relative order whenever
   their starts are ordered (they are, for every phase whose start is
   the recording domain's own clock) and ties never reorder a sink. *)
let merge t =
  Atomic.get t.sinks
  |> List.rev (* registration order: dispatcher first *)
  |> List.concat_map sink_records
  |> List.stable_sort (fun a b -> compare a.start_ns b.start_ns)

let ts_us ns = Printf.sprintf "%.3f" (float_of_int ns /. 1e3)

let json_of_record buf r =
  let tid = Event.lane_tid r.lane in
  let args = Printf.sprintf "{\"req\":%d,\"arg\":%d}" r.req_id r.arg in
  if r.dur_ns > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":%S,\"args\":%s},\n"
         tid (ts_us r.start_ns) (ts_us r.dur_ns) (phase_name r.phase) args)
  else
    Buffer.add_string buf
      (Printf.sprintf
         "{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"s\":\"t\",\"name\":%S,\"args\":%s},\n"
         tid (ts_us r.start_ns) (phase_name r.phase) args)

let records_to_chrome records =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  Buffer.add_string buf
    "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"tq_serve\"}},\n";
  let lanes = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if not (Hashtbl.mem lanes (Event.lane_tid r.lane)) then
        Hashtbl.add lanes (Event.lane_tid r.lane) r.lane)
    records;
  Hashtbl.fold (fun tid lane acc -> (tid, lane) :: acc) lanes []
  |> List.sort compare
  |> List.iter (fun (tid, lane) ->
         Buffer.add_string buf
           (Printf.sprintf
              "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%S}},\n"
              tid (Event.lane_name lane)));
  List.iter (fun r -> json_of_record buf r) records;
  (* Drop the trailing ",\n" of the last entry. *)
  Buffer.truncate buf (Buffer.length buf - 2);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let to_chrome t = records_to_chrome (merge t)

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome t))
