(** Named wall-clock latency recorders with HDR-style histograms.

    The counter registry's power-of-two {!Counters.dist} buckets bound
    relative error by 2x — fine for spotting a distribution's shape,
    useless for reporting p99.9.  This module gives the load-generation
    path what it needs instead: per-class log-bucketed histograms
    ({!Tq_stats.Histogram}, 1/32 relative error) keyed by name, with
    percentile queries, a text rendering, and a JSON export the serving
    benchmarks commit ([BENCH_serve.json]).

    Recorders are single-threaded (one load generator records into one
    registry); create one registry per recording thread.  The constraint
    is asserted in debug mode: with {!set_owner_check} on, recording
    from a domain other than the recorder's owner raises. *)

(** A registry of named latency histograms. *)
type t

(** One recorder: a log-bucketed histogram of nanosecond samples. *)
type recorder

(** [create ?max_ns ()] — an empty registry whose recorders track
    latencies in [0, max_ns] (default 100 s; larger samples clamp). *)
val create : ?max_ns:int -> unit -> t

(** [recorder t name] — the recorder registered under [name], created
    empty on first use. *)
val recorder : t -> string -> recorder

(** [record r ns] adds one latency sample (negative samples clamp
    to 0).  With the owner check on, raises [Invalid_argument] when
    called from a domain other than [r]'s owner. *)
val record : recorder -> int -> unit

(** [set_owner_check on] — globally enable (or disable, the default)
    the debug-mode single-writer assertion: each recorder remembers the
    domain that created it and {!record} verifies the caller matches.
    Off, the hot path pays one ref load and branch. *)
val set_owner_check : bool -> unit

(** [adopt r] transfers [r]'s ownership to the calling domain — for the
    legitimate create-then-hand-off pattern (build the registry on the
    main domain, record on a worker). *)
val adopt : recorder -> unit

(** Number of samples recorded. *)
val count : recorder -> int

(** [percentile r p] — a representative sample at percentile [p] (in
    [0, 100]); 0 when empty. *)
val percentile : recorder -> float -> int

(** Mean sample in nanoseconds; [nan] when empty. *)
val mean : recorder -> float

(** Largest sample recorded. *)
val max_ns : recorder -> int

(** [iter_buckets r f] calls [f ~lo ~hi ~count] on each non-empty
    underlying histogram bucket covering [[lo, hi)], in increasing
    order — what {!Expo} renders as a cumulative Prometheus
    histogram. *)
val iter_buckets : recorder -> (lo:int -> hi:int -> count:int -> unit) -> unit

(** [clear r] forgets every sample (e.g. at the end of a warmup
    window). *)
val clear : recorder -> unit

(** [clear_all t] clears every recorder in the registry. *)
val clear_all : t -> unit

(** Registered recorders with their names, sorted by name. *)
val to_alist : t -> (string * recorder) list

(** [merge ts] — a fresh registry pooling every source registry's
    samples, bucket-wise (same-named recorders combine; results match
    the pooled percentiles up to the histograms' native resolution).
    Sources are read without locks: call after the recording domains
    have quiesced for an exact cut, or live for an eventually-consistent
    snapshot.  This is how the multi-lane serve plane aggregates its
    per-lane sojourn ladders for the Stats RPC. *)
val merge : t list -> t

(** [dump t] — one line per recorder: count, mean and the standard
    percentile ladder (p50 / p90 / p99 / p99.9), in microseconds. *)
val dump : t -> string

(** [json_fields r] — the recorder's summary as a JSON object body
    (count, mean_us, p50_us .. p999_us, max_us), without braces, for
    embedding in larger reports. *)
val json_fields : recorder -> string

(** [to_json t] — the whole registry as one JSON object keyed by
    recorder name. *)
val to_json : t -> string
