(** The trace vocabulary: every scheduling decision the paper's
    evaluation reasons about (Sections 2 and 5), as a typed event.

    Events carry their full payload as constructor arguments, so a
    recorded trace can be post-processed without re-running the
    simulation; the exporters ({!Chrome_trace}, {!Text_dump}) share the
    {!args} rendering so their output stays consistent. *)

(** The hardware context an event happened on — one Perfetto track per
    dispatcher core and per worker core.  Events that precede core
    assignment (client-side arrival) go on [Global].  [Gc d] is the
    per-domain garbage-collector track ({!Gc_events} owns it: GC pause
    spans render alongside, not inside, domain [d]'s worker lane). *)
type lane = Global | Dispatcher of int | Worker of int | Gc of int

type t =
  | Job_arrival of { job_id : int; class_idx : int; service_ns : int }
      (** A request entered the system with its (blind) service demand. *)
  | Dispatch of { job_id : int; worker : int; policy : string; queue_len : int }
      (** Dispatcher decision: [worker] chosen under [policy];
          [queue_len] is the chosen worker's queue depth at decision
          time (the tie-break input). *)
  | Ring_hop of { job_id : int; worker : int }
      (** Message ride on the dispatcher->worker ring. *)
  | Quantum_start of { job_id : int; quantum_ns : int }
      (** A worker began running the job for one quantum. *)
  | Quantum_end of { job_id : int; ran_ns : int; finished : bool }
      (** The quantum ended after [ran_ns]; [finished] if the job
          completed rather than being preempted. *)
  | Yield of { job_id : int }  (** Voluntary yield before quantum expiry. *)
  | Preempt_overshoot of { job_id : int; overshoot_ns : int }
      (** The quantum ran [overshoot_ns] past its nominal length
          (probe-timing slack, Section 3.2). *)
  | Steal of { job_id : int; victim : int }
      (** Work stealing: the job was taken from [victim]'s queue. *)
  | Completion of { job_id : int; sojourn_ns : int }
      (** The job left the system after [sojourn_ns] in it. *)
  | Stall_start of { worker : int; duration_ns : int }
      (** Injected core stall (GC pause / SMI / antagonist) begins. *)
  | Stall_end of { worker : int }  (** The injected stall ended. *)
  | Worker_killed of { worker : int }  (** Permanent core failure injected. *)
  | Worker_marked_dead of { worker : int }
      (** The dispatcher's health tracking excluded this worker. *)
  | Worker_marked_alive of { worker : int }
      (** A suspected-dead worker showed progress again and was
          readmitted to the dispatch set. *)
  | Redispatch of { job_id : int; from_worker : int; to_worker : int }
      (** Queued-but-unstarted job rescued from a dead worker. *)
  | Retry of { job_id : int; attempt : int; backoff_ns : int }
      (** Client-side timeout fired; attempt [attempt] will be submitted
          after [backoff_ns]. *)
  | Drop of { job_id : int; reason : string }
      (** Request lost: ["nic"], ["admission"], ["no-worker"], or
          ["retries-exhausted"]. *)
  | Dispatcher_outage of { dispatcher : int; duration_ns : int }
      (** The dispatcher core itself went dark for [duration_ns]. *)

(** [lane_name lane] — human-readable track label, e.g. ["worker 3"]. *)
val lane_name : lane -> string

(** [lane_tid lane] — stable Chrome-trace thread id: global, then
    dispatchers, then workers, so Perfetto sorts lanes in pipeline
    order. *)
val lane_tid : lane -> int

(** [name ev] — the event's constructor as a lowercase tag, e.g.
    ["quantum_end"]. *)
val name : t -> string

(** [job_id ev] — the job an event concerns, or [-1] for core-level
    events (stalls, kills, outages) that concern no particular job. *)
val job_id : t -> int

(** [args ev] — the payload as ordered key/raw-JSON pairs; shared by the
    Chrome exporter and the text dump so the two stay consistent. *)
val args : t -> (string * string) list

(** [to_string ev] — [name] followed by space-separated [key=value]
    pairs. *)
val to_string : t -> string
