(* Tail-based span sampling: always-on forensics for the slow few.

   Full span tracing records every request and is the wrong tool at
   calibrated load; aggregate histograms can't say which stage hurt
   which request.  This module keeps the middle ground the production
   µs-scale systems converged on (RackSched's per-request tail
   accounting): a per-lane bounded reservoir that retains, per sliding
   window, the K slowest completed requests plus every request
   breaching a latency threshold — and nothing else.

   The hot path is the dispatcher's reply pop.  Its common case is
   rejection (the request was fast), which costs one enabled branch
   plus one integer compare against the window's floor; admissions
   touch at most K slots (K is the configured dossier budget, a small
   constant — effectively O(1)) and are the only allocation.  The
   disabled path follows {!Span}'s null-sink discipline exactly: a
   sink of a disabled collection has capacity 0, so an [offer] is a
   single branch over all-int arguments, allocating nothing.

   Single-writer, like every per-lane structure: only the owning lane
   offers into its sink.  Retained entries are published through
   per-slot [Atomic.t]s holding immutable records, so a cross-lane
   reader (the Stats RPC, the HTTP /outliers endpoint) never sees a
   torn entry — only a slightly stale reservoir, which is fine: the
   slow requests of the last window don't change under the reader. *)

type entry = {
  e_seq : int;
  e_class : int;
  e_lane : int;
  e_worker : int;
  e_sojourn_ns : int;
  e_t0_ns : int;
  e_end_ns : int;
  e_quantum_ns : int;
  e_cap : int;
  e_inject_depth : int;
  e_deque_depth : int;
  e_breach : bool;
}

type sink = {
  s_k : int;  (* 0 = the null sink: offer is one branch *)
  s_threshold_ns : int;
  s_window_ns : int;
  s_lane : int;
  slots : entry option Atomic.t array;  (* current window's K slowest *)
  prev : entry option Atomic.t array;  (* last full window, snapshotted *)
  breaches : entry option Atomic.t array;  (* threshold ring, oldest overwritten *)
  mutable breach_next : int;
  mutable floor_ns : int;  (* min sojourn among filled slots; reject gate *)
  mutable filled : int;
  mutable window_start_ns : int;
  mutable m_offered : int;
  mutable m_admitted : int;
}

type t = {
  enabled : bool;
  k : int;
  threshold_ns : int;
  window_ns : int;
  sinks : sink list Atomic.t;  (* registration order, newest first *)
}

let null_sink =
  {
    s_k = 0;
    s_threshold_ns = 0;
    s_window_ns = 0;
    s_lane = -1;
    slots = [||];
    prev = [||];
    breaches = [||];
    breach_next = 0;
    floor_ns = 0;
    filled = 0;
    window_start_ns = 0;
    m_offered = 0;
    m_admitted = 0;
  }

let null =
  { enabled = false; k = 0; threshold_ns = 0; window_ns = 0; sinks = Atomic.make [] }

let create ?(k = 16) ?(threshold_ns = 0) ?(window_ns = 1_000_000_000) () =
  if k < 1 then invalid_arg "Tail.create: k must be positive";
  if window_ns < 1 then invalid_arg "Tail.create: window_ns must be positive";
  if threshold_ns < 0 then invalid_arg "Tail.create: threshold_ns must be >= 0";
  { enabled = true; k; threshold_ns; window_ns; sinks = Atomic.make [] }

let enabled t = t.enabled
let k t = t.k
let threshold_ns t = t.threshold_ns
let window_ns t = t.window_ns

let register t ~lane =
  if not t.enabled then null_sink
  else begin
    let mk () = Array.init t.k (fun _ -> Atomic.make None) in
    let s =
      {
        s_k = t.k;
        s_threshold_ns = t.threshold_ns;
        s_window_ns = t.window_ns;
        s_lane = lane;
        slots = mk ();
        prev = mk ();
        breaches = mk ();
        breach_next = 0;
        floor_ns = 0;
        filled = 0;
        window_start_ns = 0;
        m_offered = 0;
        m_admitted = 0;
      }
    in
    let rec add () =
      let cur = Atomic.get t.sinks in
      if not (Atomic.compare_and_set t.sinks cur (s :: cur)) then add ()
    in
    add ();
    s
  end

(* Tumble to a new window: the current top-K becomes the previous
   window's snapshot (still queryable until the next roll), the slots
   empty and the floor drops to zero.  Owner-only, like [offer]. *)
let roll s ~now_ns =
  for i = 0 to s.s_k - 1 do
    Atomic.set s.prev.(i) (Atomic.get s.slots.(i));
    Atomic.set s.slots.(i) None
  done;
  s.filled <- 0;
  s.floor_ns <- 0;
  s.window_start_ns <- now_ns

(* O(K) with constant K: place the entry, then rescan for the new
   floor.  Only reached for entries that beat the floor — the common
   case never gets here. *)
let insert_slot s e =
  if s.filled < s.s_k then begin
    Atomic.set s.slots.(s.filled) (Some e);
    s.filled <- s.filled + 1;
    if s.filled = s.s_k then begin
      let m = ref max_int in
      Array.iter
        (fun c -> match Atomic.get c with Some e -> if e.e_sojourn_ns < !m then m := e.e_sojourn_ns | None -> ())
        s.slots;
      s.floor_ns <- !m
    end
  end
  else begin
    (* evict the current minimum, then recompute the floor *)
    let min_i = ref 0 and min_v = ref max_int in
    Array.iteri
      (fun i c ->
        match Atomic.get c with
        | Some e -> if e.e_sojourn_ns < !min_v then begin min_v := e.e_sojourn_ns; min_i := i end
        | None -> ())
      s.slots;
    Atomic.set s.slots.(!min_i) (Some e);
    let m = ref max_int in
    Array.iter
      (fun c -> match Atomic.get c with Some e -> if e.e_sojourn_ns < !m then m := e.e_sojourn_ns | None -> ())
      s.slots;
    s.floor_ns <- !m
  end

let offer sink ~now_ns ~seq ~class_idx ~worker ~sojourn_ns ~t0_ns ~quantum_ns ~cap
    ~inject_depth ~deque_depth =
  if sink.s_k > 0 then begin
    sink.m_offered <- sink.m_offered + 1;
    if sink.window_start_ns = 0 then sink.window_start_ns <- now_ns
    else if now_ns - sink.window_start_ns >= sink.s_window_ns then roll sink ~now_ns;
    let breach = sink.s_threshold_ns > 0 && sojourn_ns >= sink.s_threshold_ns in
    if breach || sink.filled < sink.s_k || sojourn_ns > sink.floor_ns then begin
      (* the only allocation on the enabled path: an admitted entry *)
      let e =
        {
          e_seq = seq;
          e_class = class_idx;
          e_lane = sink.s_lane;
          e_worker = worker;
          e_sojourn_ns = sojourn_ns;
          e_t0_ns = t0_ns;
          e_end_ns = now_ns;
          e_quantum_ns = quantum_ns;
          e_cap = cap;
          e_inject_depth = inject_depth;
          e_deque_depth = deque_depth;
          e_breach = breach;
        }
      in
      sink.m_admitted <- sink.m_admitted + 1;
      if breach then begin
        Atomic.set sink.breaches.(sink.breach_next mod sink.s_k) (Some e);
        sink.breach_next <- sink.breach_next + 1
      end;
      if sink.filled < sink.s_k || sojourn_ns > sink.floor_ns then insert_slot sink e
    end
  end

let sum_sinks t f =
  List.fold_left (fun acc s -> acc + f s) 0 (Atomic.get t.sinks)

let offered t = sum_sinks t (fun s -> s.m_offered)
let admitted t = sum_sinks t (fun s -> s.m_admitted)

(* Snapshot every retained entry across lanes: current window, previous
   window and the breach rings, deduplicated by sequence id (a breach
   is usually also among the K slowest), slowest first. *)
let entries t =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let take cell =
    match Atomic.get cell with
    | Some e when not (Hashtbl.mem seen e.e_seq) ->
        Hashtbl.add seen e.e_seq ();
        acc := e :: !acc
    | _ -> ()
  in
  List.iter
    (fun s ->
      Array.iter take s.slots;
      Array.iter take s.prev;
      Array.iter take s.breaches)
    (Atomic.get t.sinks);
  List.sort (fun a b -> compare b.e_sojourn_ns a.e_sojourn_ns) !acc

let retained t = List.length (entries t)

let top t ~limit =
  if limit < 0 then invalid_arg "Tail.top: negative limit";
  List.filteri (fun i _ -> i < limit) (entries t)

(* {2 Dossiers: entries enriched from the span stream} *)

type dossier = {
  d_entry : entry;
  d_attributed : bool;
  d_sojourn_ns : int;
  d_stages : (Profile.stage * int) list;
  d_quanta : int;
  d_steals : int;
  d_stalls : int;
  d_gc_pauses : int;
  d_gc_pause_ns : int;
}

let dossiers t ~records ~limit =
  let picked = top t ~limit in
  let stages_tbl = Hashtbl.create 64 in
  List.iter
    (fun (id, stages) -> Hashtbl.replace stages_tbl id stages)
    (Profile.request_stages records);
  List.map
    (fun e ->
      let overlaps (r : Span.record) =
        r.Span.start_ns < e.e_end_ns && r.Span.start_ns + r.Span.dur_ns > e.e_t0_ns
      in
      let quanta = ref 0 and steals = ref 0 and stalls = ref 0 in
      let gc_pauses = ref 0 and gc_pause_ns = ref 0 in
      List.iter
        (fun (r : Span.record) ->
          match r.Span.phase with
          | Span.Quantum when r.Span.req_id = e.e_seq -> incr quanta
          | Span.Steal when r.Span.lane = Event.Worker e.e_worker && overlaps r ->
              incr steals
          | Span.Stall when r.Span.lane = Event.Worker e.e_worker && overlaps r ->
              incr stalls
          | (Span.Gc_minor | Span.Gc_major) when overlaps r ->
              incr gc_pauses;
              gc_pause_ns := !gc_pause_ns + r.Span.dur_ns
          | _ -> ())
        records;
      match Hashtbl.find_opt stages_tbl e.e_seq with
      | Some stages ->
          {
            d_entry = e;
            d_attributed = true;
            d_sojourn_ns = List.fold_left (fun acc (_, v) -> acc + v) 0 stages;
            d_stages = stages;
            d_quanta = !quanta;
            d_steals = !steals;
            d_stalls = !stalls;
            d_gc_pauses = !gc_pauses;
            d_gc_pause_ns = !gc_pause_ns;
          }
      | None ->
          {
            d_entry = e;
            d_attributed = false;
            d_sojourn_ns = e.e_sojourn_ns;
            d_stages = [];
            d_quanta = !quanta;
            d_steals = !steals;
            d_stalls = !stalls;
            d_gc_pauses = !gc_pauses;
            d_gc_pause_ns = !gc_pause_ns;
          })
    picked

let dossier_json ~class_name d =
  let e = d.d_entry in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"seq\": %d, \"class\": %S, \"lane\": %d, \"worker\": %d, \"breach\": %b, \
        \"admit_sojourn_ns\": %d, \"t0_ns\": %d, \"quantum_ns\": %d, \
        \"admission_cap\": %d, \"inject_depth\": %d, \"deque_depth\": %d, \
        \"attributed\": %b, \"sojourn_ns\": %d, \"stage_sum_ns\": %d, "
       e.e_seq (class_name e.e_class) e.e_lane e.e_worker e.e_breach e.e_sojourn_ns
       e.e_t0_ns e.e_quantum_ns e.e_cap e.e_inject_depth e.e_deque_depth
       d.d_attributed d.d_sojourn_ns
       (List.fold_left (fun acc (_, v) -> acc + v) 0 d.d_stages));
  (if d.d_attributed then begin
     Buffer.add_string b "\"stages_ns\": {";
     List.iteri
       (fun i (s, v) ->
         if i > 0 then Buffer.add_string b ", ";
         Buffer.add_string b (Printf.sprintf "%S: %d" (Profile.stage_name s) v))
       d.d_stages;
     Buffer.add_string b "}, "
   end
   else Buffer.add_string b "\"stages_ns\": null, ");
  Buffer.add_string b
    (Printf.sprintf
       "\"quanta\": %d, \"preemptions\": %d, \"steals\": %d, \"stalls\": %d, \
        \"gc_pauses\": %d, \"gc_pause_ns\": %d}"
       d.d_quanta (max 0 (d.d_quanta - 1)) d.d_steals d.d_stalls d.d_gc_pauses
       d.d_gc_pause_ns);
  Buffer.contents b

let dossiers_json ?(class_name = string_of_int) t ds =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"k\": %d,\n  \"threshold_ns\": %d,\n  \"window_ns\": %d,\n  \
        \"offered\": %d,\n  \"admitted\": %d,\n  \"retained\": %d,\n  \"dossiers\": [\n"
       t.k t.threshold_ns t.window_ns (offered t) (admitted t) (retained t));
  List.iteri
    (fun i d ->
      Buffer.add_string b "    ";
      Buffer.add_string b (dossier_json ~class_name d);
      if i < List.length ds - 1 then Buffer.add_string b ",";
      Buffer.add_string b "\n")
    ds;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let us ns = float_of_int ns /. 1e3

let render ?(class_name = string_of_int) ds =
  let table =
    Tq_util.Text_table.create
      ~title:(Printf.sprintf "Slow-request dossiers (%d retained)" (List.length ds))
      ~columns:
        [
          "seq"; "class"; "lane"; "wrk"; "sojourn us"; "parse"; "disp"; "hop";
          "wait"; "serve"; "preempt"; "flush"; "q"; "steal"; "gc"; "depth";
        ]
  in
  List.iter
    (fun d ->
      let e = d.d_entry in
      let stage s =
        match List.assq_opt s d.d_stages with
        | Some v -> Tq_util.Text_table.cell_f (us v)
        | None -> "-"
      in
      Tq_util.Text_table.add_row table
        [
          string_of_int e.e_seq;
          class_name e.e_class;
          string_of_int e.e_lane;
          string_of_int e.e_worker;
          Tq_util.Text_table.cell_f (us d.d_sojourn_ns)
          ^ (if e.e_breach then "!" else "");
          stage Profile.S_parse;
          stage Profile.S_dispatch;
          stage Profile.S_ring_hop;
          stage Profile.S_first_run_wait;
          stage Profile.S_service;
          stage Profile.S_preempt_overhead;
          stage Profile.S_reply_flush;
          string_of_int d.d_quanta;
          string_of_int d.d_steals;
          Printf.sprintf "%d/%s" d.d_gc_pauses
            (Tq_util.Text_table.cell_f (us d.d_gc_pause_ns));
          Printf.sprintf "%d+%d" e.e_inject_depth e.e_deque_depth;
        ])
    ds;
  Tq_util.Text_table.render table
  ^ "sojourn '!' = threshold breach; stages in us telescope to the sojourn \
     exactly when attributed; depth = inject+deque seen at dispatch\n"

(* Outlier-only Perfetto export: the retained requests' own spans plus
   any core-level span (steal, stall, GC pause) overlapping a retained
   request's residency — a multi-minute run collapses to a readable
   timeline of just the requests worth staring at. *)
let filter_records t records =
  let picked = entries t in
  let ids = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace ids e.e_seq ()) picked;
  let intervals = List.map (fun e -> (e.e_t0_ns, e.e_end_ns)) picked in
  let overlaps_any (r : Span.record) =
    List.exists
      (fun (t0, t1) -> r.Span.start_ns < t1 && r.Span.start_ns + r.Span.dur_ns > t0)
      intervals
  in
  List.filter
    (fun (r : Span.record) ->
      if Hashtbl.mem ids r.Span.req_id then true
      else
        match r.Span.phase with
        | Span.Steal | Span.Stall | Span.Gc_minor | Span.Gc_major ->
            overlaps_any r
        | _ -> false)
    records

let to_chrome t records = Span.records_to_chrome (filter_records t records)
