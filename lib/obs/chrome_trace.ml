(* Chrome trace-event JSON exporter (the Perfetto / chrome://tracing
   format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).

   One thread track per lane.  Quanta become "X" complete events —
   reconstructed from [Quantum_end], whose [ran_ns] gives the start —
   so Perfetto shows the per-core quantum interleaving directly;
   everything else becomes a thread-scoped instant.  Timestamps are
   microseconds (the format's unit) with nanosecond precision. *)

let ts_us ns = Printf.sprintf "%.3f" (float_of_int ns /. 1e3)

let json_of_record buf (r : Trace.record) =
  let tid = Event.lane_tid r.lane in
  let args =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%S:%s" k v) (Event.args r.event))
    ^ "}"
  in
  match r.event with
  | Event.Quantum_start _ -> ()  (* rendered via the matching Quantum_end *)
  | Event.Quantum_end { job_id; ran_ns; _ } ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":\"job %d\",\"args\":%s},\n"
           tid
           (ts_us (r.ts_ns - ran_ns))
           (ts_us ran_ns) job_id args)
  | Event.Stall_start { duration_ns; _ } ->
      (* Injected stall as a complete span so the blackout window shows
         on the core's lane (Stall_end carries no extra information). *)
      Buffer.add_string buf
        (Printf.sprintf
           "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":\"stall\",\"args\":%s},\n"
           tid (ts_us r.ts_ns) (ts_us duration_ns) args)
  | Event.Stall_end _ -> ()
  | _ ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"s\":\"t\",\"name\":%S,\"args\":%s},\n"
           tid (ts_us r.ts_ns) (Event.name r.event) args)

let export trace =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  Buffer.add_string buf
    "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"tq_sim\"}},\n";
  (* Name each lane that appears, in tid order, so Perfetto sorts
     dispatchers above workers. *)
  let lanes = Hashtbl.create 16 in
  Trace.iter trace (fun r ->
      if not (Hashtbl.mem lanes (Event.lane_tid r.lane)) then
        Hashtbl.add lanes (Event.lane_tid r.lane) r.lane);
  Hashtbl.fold (fun tid lane acc -> (tid, lane) :: acc) lanes []
  |> List.sort compare
  |> List.iter (fun (tid, lane) ->
         Buffer.add_string buf
           (Printf.sprintf
              "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%S}},\n"
              tid (Event.lane_name lane)));
  Trace.iter trace (fun r -> json_of_record buf r);
  (* Drop the trailing ",\n" of the last entry. *)
  Buffer.truncate buf (Buffer.length buf - 2);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_file trace path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (export trace))
