(* Named monotonic counters, gauges and power-of-two-bucket
   distributions, grouped in a registry.

   Registration (a hashtable lookup) happens once, at subsystem create
   time; the handle a subsystem holds is a bare mutable record, so a
   hot-path bump is a single store.  Counters are cheap enough to stay
   always-on; only the event tracer is gated. *)

type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float }

type dist = {
  d_name : string;
  buckets : int array;  (** bucket [i] counts observations in [2^i-1 .. 2^i) *)
  mutable n : int;
  mutable sum : int;
  mutable max_obs : int;
}

type metric = Counter of counter | Gauge of gauge | Dist of dist

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Counters.counter: " ^ name ^ " is not a counter")
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.add t.tbl name (Counter c);
      c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg ("Counters.gauge: " ^ name ^ " is not a gauge")
  | None ->
      let g = { g_name = name; value = 0.0 } in
      Hashtbl.add t.tbl name (Gauge g);
      g

let dist t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Dist d) -> d
  | Some _ -> invalid_arg ("Counters.dist: " ^ name ^ " is not a dist")
  | None ->
      let d = { d_name = name; buckets = Array.make 63 0; n = 0; sum = 0; max_obs = 0 } in
      Hashtbl.add t.tbl name (Dist d);
      d

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let count c = c.count
let set g v = g.value <- v
let value g = g.value

let bucket_of v =
  let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
  go 0 (max 0 v)

let observe d v =
  let v = max 0 v in
  let b = min 62 (bucket_of v) in
  d.buckets.(b) <- d.buckets.(b) + 1;
  d.n <- d.n + 1;
  d.sum <- d.sum + v;
  d.max_obs <- max d.max_obs v

let dist_count d = d.n
let dist_mean d = if d.n = 0 then nan else float_of_int d.sum /. float_of_int d.n
let dist_max d = d.max_obs
let dist_sum d = d.sum
let dist_buckets d = Array.copy d.buckets

(* Lookup by name, for tests and generic dumps. *)
let find t name = Hashtbl.find_opt t.tbl name

(* Missing (or non-counter) reads as 0, so assertions and dashboards
   need no option plumbing. *)
let find_count t name =
  match find t name with Some (Counter c) -> c.count | _ -> 0

let to_alist t =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Multi-domain aggregation.  Registries are single-writer (see the
   .mli ownership rule); a snapshot reads other domains' bare mutable
   cells without synchronization, which is safe in OCaml 5 — ints are
   word-sized, no tearing — but only eventually consistent: a merged
   value can lag the owner by a few bumps. *)
let merged ts =
  let out = create () in
  List.iter
    (fun src ->
      List.iter
        (fun (name, m) ->
          match m with
          | Counter c -> add (counter out name) c.count
          | Gauge g ->
              let og = gauge out name in
              og.value <- og.value +. g.value
          | Dist d ->
              let od = dist out name in
              Array.iteri
                (fun i n -> od.buckets.(i) <- od.buckets.(i) + n)
                d.buckets;
              od.n <- od.n + d.n;
              od.sum <- od.sum + d.sum;
              od.max_obs <- max od.max_obs d.max_obs)
        (to_alist src))
    ts;
  out

let dump t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%-36s %d\n" name c.count)
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "%-36s %g\n" name g.value)
      | Dist d ->
          Buffer.add_string buf
            (Printf.sprintf "%-36s n=%d mean=%.1f max=%d\n" name d.n (dist_mean d)
               d.max_obs);
          Array.iteri
            (fun i n ->
              if n > 0 then
                Buffer.add_string buf
                  (Printf.sprintf "  %-34s %d\n"
                     (Printf.sprintf "[%d..%d)"
                        (if i = 0 then 0 else 1 lsl (i - 1))
                        (1 lsl i))
                     n))
            d.buckets)
    (to_alist t);
  Buffer.contents buf
