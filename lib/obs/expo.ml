(* Prometheus-style text exposition.

   Renders counter registries and latency registries in the text format
   every metrics scraper understands: `# HELP` / `# TYPE` headers,
   sanitized names, escaped label values.  Multiple registries can
   carry the same metric names under different label sets (the
   per-domain registries of the serve path render as worker="0",
   worker="1", ...) — the headers are emitted once per metric name, as
   the format requires.

   Conformance is load-bearing here, not cosmetic: [lint] re-parses an
   exposition and applies the checks a `promtool check metrics` run
   would (histograms end in a +Inf bucket and carry _sum/_count,
   counters end in _total, every sample has a declared family, bucket
   counts are cumulative) so CI can gate the real scrape output. *)

let sanitize name =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_')
    name

(* Label values escape exactly three characters: backslash, double
   quote and newline.  OCaml's %S escapes more (e.g. high bytes to
   \xNN), which scrapers reject. *)
let escape_label v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* HELP text escapes only backslash and newline (no quoting). *)
let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labels_str = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v))
             labels)
      ^ "}"

let metric_kind = function
  | Counters.Counter _ -> "counter"
  | Counters.Gauge _ -> "gauge"
  | Counters.Dist _ -> "histogram"

let add_headers buf fq kind help =
  Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" fq (escape_help help));
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fq kind)

(* Power-of-two dist as a cumulative prometheus histogram: bucket [i]
   of the dist covers [2^(i-1), 2^i), so its inclusive upper bound is
   2^i - 1. *)
let add_dist buf fq lbl d =
  let buckets = Counters.dist_buckets d in
  let top = ref (-1) in
  Array.iteri (fun i n -> if n > 0 then top := i) buckets;
  let cum = ref 0 in
  for i = 0 to !top do
    cum := !cum + buckets.(i);
    let le = (1 lsl i) - 1 in
    Buffer.add_string buf
      (Printf.sprintf "%s_bucket%s %d\n" fq
         (labels_str (lbl @ [ ("le", string_of_int le) ]))
         !cum)
  done;
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket%s %d\n" fq
       (labels_str (lbl @ [ ("le", "+Inf") ]))
       (Counters.dist_count d));
  Buffer.add_string buf
    (Printf.sprintf "%s_sum%s %d\n" fq (labels_str lbl) (Counters.dist_sum d));
  Buffer.add_string buf
    (Printf.sprintf "%s_count%s %d\n" fq (labels_str lbl) (Counters.dist_count d))

let render ?(prefix = "tq") registries =
  let buf = Buffer.create 1024 in
  (* Union of metric names across registries, name -> kind (first
     registry that defines it wins; kind clashes across registries are a
     registration bug caught by Counters itself on merge). *)
  let names = Hashtbl.create 32 in
  let ordered = ref [] in
  List.iter
    (fun (_, reg) ->
      List.iter
        (fun (name, m) ->
          if not (Hashtbl.mem names name) then begin
            Hashtbl.add names name m;
            ordered := name :: !ordered
          end)
        (Counters.to_alist reg))
    registries;
  List.iter
    (fun name ->
      let kind = metric_kind (Hashtbl.find names name) in
      let fq =
        prefix ^ "_" ^ sanitize name
        ^ if kind = "counter" then "_total" else ""
      in
      add_headers buf fq kind name;
      List.iter
        (fun (lbl, reg) ->
          match Counters.find reg name with
          | None -> ()
          | Some (Counters.Counter c) ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %d\n" fq (labels_str lbl) (Counters.count c))
          | Some (Counters.Gauge g) ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %g\n" fq (labels_str lbl) (Counters.value g))
          | Some (Counters.Dist d) -> add_dist buf fq lbl d)
        registries)
    (List.sort compare !ordered);
  Buffer.contents buf

let quantiles = [ (50.0, "0.5"); (90.0, "0.9"); (99.0, "0.99"); (99.9, "0.999") ]

(* A latency registry renders as TWO families: the real histogram (log
   buckets, cumulative, +Inf-terminated — aggregatable by a scraper)
   and a pre-computed quantile summary under <fq>_quantiles for humans
   and dashboards that want p99 without a histogram_quantile() query. *)
let render_latency ?(prefix = "tq") ~name ?(labels = []) lat =
  let buf = Buffer.create 512 in
  let fq = prefix ^ "_" ^ sanitize name in
  let recorders = Latency.to_alist lat in
  let sum_count r =
    let n = Latency.count r in
    let sum = if n = 0 then 0.0 else Latency.mean r *. float_of_int n in
    (sum, n)
  in
  add_headers buf fq "histogram" (name ^ " latency histogram (ns)");
  List.iter
    (fun (rname, r) ->
      let lbl = labels @ [ ("class", rname) ] in
      let cum = ref 0 in
      Latency.iter_buckets r (fun ~lo:_ ~hi ~count ->
          cum := !cum + count;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" fq
               (labels_str (lbl @ [ ("le", string_of_int (hi - 1)) ]))
               !cum));
      let sum, n = sum_count r in
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket%s %d\n" fq
           (labels_str (lbl @ [ ("le", "+Inf") ]))
           n);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %.0f\n" fq (labels_str lbl) sum);
      Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" fq (labels_str lbl) n))
    recorders;
  let sq = fq ^ "_quantiles" in
  add_headers buf sq "summary" (name ^ " latency quantiles (ns)");
  List.iter
    (fun (rname, r) ->
      let lbl = labels @ [ ("class", rname) ] in
      List.iter
        (fun (p, q) ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" sq
               (labels_str (lbl @ [ ("quantile", q) ]))
               (Latency.percentile r p)))
        quantiles;
      let sum, n = sum_count r in
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %.0f\n" sq (labels_str lbl) sum);
      Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" sq (labels_str lbl) n))
    recorders;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Lint: promtool-check-metrics-style validation of an exposition.    *)

type sample = { s_name : string; s_labels : (string * string) list; s_value : string }

let name_re_ok name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

(* Parse `name{k="v",...} value` (a rendered line, not arbitrary
   exposition: values are unescaped verbatim, which is enough for
   linting structure). *)
let parse_sample line =
  match String.index_opt line '{' with
  | None -> (
      match String.index_opt line ' ' with
      | None -> None
      | Some sp ->
          Some
            {
              s_name = String.sub line 0 sp;
              s_labels = [];
              s_value = String.sub line (sp + 1) (String.length line - sp - 1);
            })
  | Some lb -> (
      match String.rindex_opt line '}' with
      | None -> None
      | Some rb ->
          let name = String.sub line 0 lb in
          let body = String.sub line (lb + 1) (rb - lb - 1) in
          let value =
            let rest = String.sub line (rb + 1) (String.length line - rb - 1) in
            String.trim rest
          in
          let labels =
            String.split_on_char ',' body
            |> List.filter_map (fun kv ->
                   match String.index_opt kv '=' with
                   | None -> None
                   | Some eq ->
                       let k = String.sub kv 0 eq in
                       let v = String.sub kv (eq + 1) (String.length kv - eq - 1) in
                       let v =
                         if String.length v >= 2 && v.[0] = '"' then
                           String.sub v 1 (String.length v - 2)
                         else v
                       in
                       Some (k, v))
          in
          Some { s_name = name; s_labels = labels; s_value = value })

let strip_suffix name sfx =
  let n = String.length name and s = String.length sfx in
  if n > s && String.sub name (n - s) s = sfx then Some (String.sub name 0 (n - s))
  else None

let lint text =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let helps : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  (* family name -> (label-key minus le) -> (le, cumulative count) list,
     newest first; plus whether _sum/_count were seen. *)
  let hist_buckets : (string * string, (string * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let hist_sum : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let hist_count : (string * string, float) Hashtbl.t = Hashtbl.create 16 in
  let group_key labels =
    labels
    |> List.filter (fun (k, _) -> k <> "le" && k <> "quantile")
    |> List.sort compare
    |> List.map (fun (k, v) -> k ^ "=" ^ v)
    |> String.concat ","
  in
  let family_of name =
    (* The family a sample belongs to, given the declared types. *)
    if Hashtbl.mem types name then Some name
    else
      [ "_bucket"; "_sum"; "_count" ]
      |> List.find_map (fun sfx ->
             match strip_suffix name sfx with
             | Some base when Hashtbl.mem types base -> Some base
             | _ -> None)
  in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        match String.index_opt rest ' ' with
        | Some sp -> Hashtbl.replace helps (String.sub rest 0 sp) ()
        | None -> Hashtbl.replace helps rest ()
      end
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        match String.index_opt rest ' ' with
        | None -> problem "malformed TYPE line: %s" line
        | Some sp ->
            let name = String.sub rest 0 sp in
            let kind = String.sub rest (sp + 1) (String.length rest - sp - 1) in
            if Hashtbl.mem types name then problem "duplicate TYPE for %s" name;
            if not (name_re_ok name) then problem "invalid metric name %s" name;
            if kind = "counter" && strip_suffix name "_total" = None then
              problem "counter %s does not end in _total" name;
            if not (Hashtbl.mem helps name) then problem "no HELP line for %s" name;
            Hashtbl.replace types name kind
      end
      else if String.length line >= 1 && line.[0] = '#' then ()
      else
        match parse_sample line with
        | None -> problem "unparseable sample line: %s" line
        | Some s -> (
            match family_of s.s_name with
            | None -> problem "sample %s has no declared TYPE" s.s_name
            | Some fam -> (
                let kind = Hashtbl.find types fam in
                let key = (fam, group_key s.s_labels) in
                match kind with
                | "histogram" ->
                    if s.s_name = fam ^ "_bucket" then begin
                      let le =
                        try List.assoc "le" s.s_labels
                        with Not_found ->
                          problem "histogram bucket %s missing le label" fam;
                          ""
                      in
                      let cell =
                        match Hashtbl.find_opt hist_buckets key with
                        | Some r -> r
                        | None ->
                            let r = ref [] in
                            Hashtbl.add hist_buckets key r;
                            r
                      in
                      cell := (le, float_of_string s.s_value) :: !cell
                    end
                    else if s.s_name = fam ^ "_sum" then Hashtbl.replace hist_sum key ()
                    else if s.s_name = fam ^ "_count" then
                      Hashtbl.replace hist_count key (float_of_string s.s_value)
                    else if s.s_name = fam then
                      problem "bare sample %s for histogram family" fam
                | "summary" ->
                    if
                      s.s_name = fam
                      && not (List.mem_assoc "quantile" s.s_labels)
                    then problem "summary sample %s missing quantile label" fam
                | _ -> ())))
    lines;
  (* Per histogram series: +Inf last, cumulative counts, _sum/_count. *)
  Hashtbl.iter
    (fun ((fam, gkey) as key) cell ->
      let buckets = List.rev !cell in
      (match List.rev buckets with
      | ("+Inf", inf_cum) :: _ -> (
          match Hashtbl.find_opt hist_count key with
          | Some c when c <> inf_cum ->
              problem "histogram %s{%s}: +Inf bucket %g <> _count %g" fam gkey inf_cum
                c
          | _ -> ())
      | _ -> problem "histogram %s{%s}: last bucket is not le=\"+Inf\"" fam gkey);
      let rec cumulative prev = function
        | [] -> ()
        | (_, c) :: rest ->
            if c < prev then
              problem "histogram %s{%s}: bucket counts not cumulative" fam gkey
            else cumulative c rest
      in
      cumulative 0.0 buckets;
      if not (Hashtbl.mem hist_sum key) then
        problem "histogram %s{%s}: missing _sum" fam gkey;
      if not (Hashtbl.mem hist_count key) then
        problem "histogram %s{%s}: missing _count" fam gkey)
    hist_buckets;
  List.rev !problems
