(* Prometheus-style text exposition.

   Renders counter registries and latency registries in the text format
   every metrics scraper understands: `# TYPE` headers, sanitized
   names, optional labels.  Multiple registries can carry the same
   metric names under different label sets (the per-domain registries
   of the serve path render as worker="0", worker="1", ...) — the TYPE
   header is emitted once per metric name, as the format requires. *)

let sanitize name =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_')
    name

let labels_str = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" (sanitize k) v) labels)
      ^ "}"

let metric_kind = function
  | Counters.Counter _ -> "counter"
  | Counters.Gauge _ -> "gauge"
  | Counters.Dist _ -> "histogram"

(* Power-of-two dist as a cumulative prometheus histogram: bucket [i]
   of the dist covers [2^(i-1), 2^i), so its inclusive upper bound is
   2^i - 1. *)
let add_dist buf fq lbl d =
  let buckets = Counters.dist_buckets d in
  let top = ref (-1) in
  Array.iteri (fun i n -> if n > 0 then top := i) buckets;
  let cum = ref 0 in
  for i = 0 to !top do
    cum := !cum + buckets.(i);
    let le = (1 lsl i) - 1 in
    Buffer.add_string buf
      (Printf.sprintf "%s_bucket%s %d\n" fq
         (labels_str (lbl @ [ ("le", string_of_int le) ]))
         !cum)
  done;
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket%s %d\n" fq
       (labels_str (lbl @ [ ("le", "+Inf") ]))
       (Counters.dist_count d));
  Buffer.add_string buf
    (Printf.sprintf "%s_sum%s %d\n" fq (labels_str lbl) (Counters.dist_sum d));
  Buffer.add_string buf
    (Printf.sprintf "%s_count%s %d\n" fq (labels_str lbl) (Counters.dist_count d))

let render ?(prefix = "tq") registries =
  let buf = Buffer.create 1024 in
  (* Union of metric names across registries, name -> kind (first
     registry that defines it wins; kind clashes across registries are a
     registration bug caught by Counters itself on merge). *)
  let names = Hashtbl.create 32 in
  let ordered = ref [] in
  List.iter
    (fun (_, reg) ->
      List.iter
        (fun (name, m) ->
          if not (Hashtbl.mem names name) then begin
            Hashtbl.add names name m;
            ordered := name :: !ordered
          end)
        (Counters.to_alist reg))
    registries;
  List.iter
    (fun name ->
      let kind = metric_kind (Hashtbl.find names name) in
      let fq =
        prefix ^ "_" ^ sanitize name
        ^ if kind = "counter" then "_total" else ""
      in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fq kind);
      List.iter
        (fun (lbl, reg) ->
          match Counters.find reg name with
          | None -> ()
          | Some (Counters.Counter c) ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %d\n" fq (labels_str lbl) (Counters.count c))
          | Some (Counters.Gauge g) ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %g\n" fq (labels_str lbl) (Counters.value g))
          | Some (Counters.Dist d) -> add_dist buf fq lbl d)
        registries)
    (List.sort compare !ordered);
  Buffer.contents buf

let quantiles = [ (50.0, "0.5"); (90.0, "0.9"); (99.0, "0.99"); (99.9, "0.999") ]

let render_latency ?(prefix = "tq") ~name ?(labels = []) lat =
  let buf = Buffer.create 512 in
  let fq = prefix ^ "_" ^ sanitize name in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" fq);
  List.iter
    (fun (rname, r) ->
      let lbl = labels @ [ ("class", rname) ] in
      List.iter
        (fun (p, q) ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" fq
               (labels_str (lbl @ [ ("quantile", q) ]))
               (Latency.percentile r p)))
        quantiles;
      let n = Latency.count r in
      let sum = if n = 0 then 0.0 else Latency.mean r *. float_of_int n in
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %.0f\n" fq (labels_str lbl) sum);
      Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" fq (labels_str lbl) n))
    (Latency.to_alist lat);
  Buffer.contents buf
