(** Human-readable trace dump: one line per surviving record, oldest
    first, with a header noting ring-buffer overwrites. *)

(** [dump ?limit trace] renders the trace as text, keeping only the last
    [limit] records when given (a note reports how many earlier events
    were elided). *)
val dump : ?limit:int -> Trace.t -> string
