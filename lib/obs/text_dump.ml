(* Human-readable trace dump: one line per surviving record, oldest
   first, with a header noting ring-buffer overwrites. *)

let pp_record buf (r : Trace.record) =
  Buffer.add_string buf
    (Printf.sprintf "%12d ns  %-14s %s\n" r.ts_ns
       (Event.lane_name r.lane)
       (Event.to_string r.event))

let dump ?limit trace =
  let buf = Buffer.create 1024 in
  let total = Trace.total trace and kept = Trace.length trace in
  Buffer.add_string buf
    (Printf.sprintf "trace: %d events recorded, %d in buffer (%d overwritten)\n" total
       kept (Trace.dropped trace));
  let skip =
    match limit with Some l when l < kept -> kept - l | _ -> 0
  in
  if skip > 0 then Buffer.add_string buf (Printf.sprintf "... %d earlier events elided\n" skip);
  let i = ref 0 in
  Trace.iter trace (fun r ->
      if !i >= skip then pp_record buf r;
      incr i);
  Buffer.contents buf
