(** Prometheus-style text exposition for {!Counters} and {!Latency}
    registries.

    The serve path's Stats RPC renders its live metrics through this
    module so that any scraper (or [tq_load --stats-interval]) can read
    a running server.  Metric names are sanitized (every character
    outside [[a-zA-Z0-9_]] becomes ['_']), counters gain the
    conventional [_total] suffix, power-of-two {!Counters.dist}s render
    as cumulative histograms, and {!Latency} recorders render as
    summaries with a [class] label per recorder. *)

(** [sanitize name] — [name] with every character outside
    [[a-zA-Z0-9_]] replaced by ['_']. *)
val sanitize : string -> string

(** [render ?prefix registries] — the text exposition of every metric
    in [registries], each entry a label set and the registry it
    describes (e.g. [([], dispatcher_reg)] and
    [([("worker", "0")], w0_reg)]).  The [# TYPE] header is emitted once
    per metric name even when several registries carry it; names are
    prefixed with [prefix] (default ["tq"]). *)
val render : ?prefix:string -> ((string * string) list * Counters.t) list -> string

(** [render_latency ?prefix ~name ?labels lat] — every recorder of
    [lat] as one Prometheus summary named [prefix ^ "_" ^ name], the
    recorder name as its [class] label, with the p50/p90/p99/p99.9
    quantile ladder plus [_sum] and [_count]. *)
val render_latency :
  ?prefix:string -> name:string -> ?labels:(string * string) list -> Latency.t -> string
