(** Prometheus-style text exposition for {!Counters} and {!Latency}
    registries.

    The serve path's Stats RPC renders its live metrics through this
    module so that any scraper (or [tq_load --stats-interval]) can read
    a running server.  Metric names are sanitized (every character
    outside [[a-zA-Z0-9_]] becomes ['_']), counters gain the
    conventional [_total] suffix, label values get the format's
    escaping (backslash, double quote, newline — and nothing else),
    every family carries [# HELP] and [# TYPE] headers, and histogram
    families terminate with a [+Inf] bucket plus [_sum] / [_count].
    {!lint} re-checks all of that on rendered output, promtool-style,
    so CI can gate the real scrape. *)

(** [sanitize name] — [name] with every character outside
    [[a-zA-Z0-9_]] replaced by ['_']. *)
val sanitize : string -> string

(** [escape_label v] — [v] with backslash, double quote and newline
    escaped as the exposition format requires (and no other escaping,
    unlike OCaml's [%S]). *)
val escape_label : string -> string

(** [render ?prefix registries] — the text exposition of every metric
    in [registries], each entry a label set and the registry it
    describes (e.g. [([], dispatcher_reg)] and
    [([("worker", "0")], w0_reg)]).  The [# HELP] / [# TYPE] headers
    are emitted once per metric name even when several registries carry
    it; names are prefixed with [prefix] (default ["tq"]);
    {!Counters.dist}s render as cumulative [+Inf]-terminated
    histograms. *)
val render : ?prefix:string -> ((string * string) list * Counters.t) list -> string

(** [render_latency ?prefix ~name ?labels lat] — every recorder of
    [lat] as two families: a real histogram named
    [prefix ^ "_" ^ name] (log-bucketed, cumulative, [+Inf]-terminated,
    with [_sum] / [_count] — aggregatable by the scraper) and a
    pre-computed p50/p90/p99/p99.9 summary under [..._quantiles], each
    recorder distinguished by its [class] label. *)
val render_latency :
  ?prefix:string -> name:string -> ?labels:(string * string) list -> Latency.t -> string

(** [lint text] — validate an exposition the way
    [promtool check metrics] would: every sample needs a declared
    [# TYPE] (and every TYPE a HELP), counter names end in [_total],
    metric names are well-formed, histogram series are cumulative, end
    in a [le="+Inf"] bucket that equals [_count], and carry [_sum].
    Returns the list of problems — empty means conformant. *)
val lint : string -> string list
