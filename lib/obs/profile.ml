(* Per-request stage decomposition: where the milliseconds go.

   The span streams of the live serve path already carry every boundary
   a request crosses — parse start, dispatch decision, ring pickup,
   each quantum, reply pop — each stamped from the same wall clock.
   This module folds a merged stream into per-stage latency histograms
   by telescoping consecutive boundaries:

     parse            p0 .. t0        decode + classify + admission
     dispatch         t0 .. t1        worker choice + ring push
     ring_hop         t1 .. t2        sitting in the SPSC ring
     first_run_wait   t2 .. q0        in the worker's run queue
     service          sum of quantum durations
     preempt_overhead gaps between consecutive quanta
     reply_flush      last quantum end .. dispatcher reply pop

   Because each stage is a difference of consecutive boundary stamps,
   the stages of one request sum to its sojourn (reply pop - parse
   start) {e exactly}, by construction — that is the invariant the
   Stats RPC breakdown view, tq_load --breakdown and the committed
   BENCH_breakdown.json all carry and CI asserts on live data.

   Degradation, never failure: a request whose spans were overwritten
   (bounded sinks), out of order (cross-domain clock skew) or partially
   missing lands in the [unattributed] bucket with its sojourn intact;
   requests still in flight at snapshot time count as [incomplete];
   shed requests get a [shed] stage of their own (parse start to shed
   decision).  Accept spans are connection-scoped, so they are counted
   but excluded from the per-request sum. *)

type stage =
  | S_parse
  | S_dispatch
  | S_ring_hop
  | S_first_run_wait
  | S_service
  | S_preempt_overhead
  | S_reply_flush

let stage_name = function
  | S_parse -> "parse"
  | S_dispatch -> "dispatch"
  | S_ring_hop -> "ring_hop"
  | S_first_run_wait -> "first_run_wait"
  | S_service -> "service"
  | S_preempt_overhead -> "preempt_overhead"
  | S_reply_flush -> "reply_flush"

let stages =
  [
    S_parse;
    S_dispatch;
    S_ring_hop;
    S_first_run_wait;
    S_service;
    S_preempt_overhead;
    S_reply_flush;
  ]

let stage_names = List.map stage_name stages

(* One request's boundary records, accumulated while scanning the
   merged stream.  Only the fields the telescoping needs. *)
type pending = {
  mutable parse_start : int;  (** p0, -1 when unseen *)
  mutable dispatch_start : int;  (** t0 *)
  mutable dispatch_end : int;  (** t1 *)
  mutable hop : int;  (** t2 *)
  mutable quanta : (int * int) list;  (** (start, dur), newest first *)
  mutable reply_end : int;  (** reply pop stamp, -1 while in flight *)
  mutable duplicate : bool;  (** a boundary was recorded twice (overwrite) *)
}

type t = {
  latency : Latency.t;
  recorders : (stage * Latency.recorder) list;
  sojourn : Latency.recorder;
  shed_rec : Latency.recorder;
  unattributed_rec : Latency.recorder;
  stage_sums : (stage, int ref) Hashtbl.t;
  mutable requests : int;  (** fully decomposed *)
  mutable exact : int;  (** stage sum = sojourn, integer-exact *)
  mutable sojourn_sum : int;  (** over decomposed requests *)
  mutable stage_sum_total : int;  (** over decomposed requests *)
  mutable sheds : int;
  mutable unattributed : int;
  mutable incomplete : int;
  mutable accepts : int;
}

let create () =
  let latency = Latency.create () in
  {
    latency;
    recorders = List.map (fun s -> (s, Latency.recorder latency (stage_name s))) stages;
    sojourn = Latency.recorder latency "sojourn";
    shed_rec = Latency.recorder latency "shed";
    unattributed_rec = Latency.recorder latency "unattributed";
    stage_sums = Hashtbl.create 8;
    requests = 0;
    exact = 0;
    sojourn_sum = 0;
    stage_sum_total = 0;
    sheds = 0;
    unattributed = 0;
    incomplete = 0;
    accepts = 0;
  }

let fresh_pending () =
  {
    parse_start = -1;
    dispatch_start = -1;
    dispatch_end = -1;
    hop = -1;
    quanta = [];
    reply_end = -1;
    duplicate = false;
  }

let record_stage t stage ns =
  Latency.record (List.assq stage t.recorders) ns;
  let sum =
    match Hashtbl.find_opt t.stage_sums stage with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.stage_sums stage r;
        r
  in
  sum := !sum + ns

let unattributed t p =
  t.unattributed <- t.unattributed + 1;
  if p.parse_start >= 0 && p.reply_end >= 0 then
    Latency.record t.unattributed_rec (p.reply_end - p.parse_start)

(* Telescope one completed request into the seven stage values.  Any
   missing boundary or negative stage yields [None] — a partial
   decomposition would silently break the sum invariant. *)
let telescope p =
  if
    p.duplicate || p.reply_end < 0 || p.parse_start < 0 || p.dispatch_start < 0
    || p.dispatch_end < 0 || p.hop < 0 || p.quanta = []
  then None
  else begin
    let quanta = List.rev p.quanta in
    let q0_start, _ = List.hd quanta in
    let service = List.fold_left (fun acc (_, d) -> acc + d) 0 quanta in
    let last_end, preempt =
      List.fold_left
        (fun (prev_end, gaps) (s, d) -> (s + d, gaps + (s - prev_end)))
        (q0_start, 0) quanta
    in
    let vals =
      [
        (S_parse, p.dispatch_start - p.parse_start);
        (S_dispatch, p.dispatch_end - p.dispatch_start);
        (S_ring_hop, p.hop - p.dispatch_end);
        (S_first_run_wait, q0_start - p.hop);
        (S_service, service);
        (S_preempt_overhead, preempt);
        (S_reply_flush, p.reply_end - last_end);
      ]
    in
    if List.exists (fun (_, v) -> v < 0) vals then None else Some vals
  end

let finish_request t p =
  if p.reply_end < 0 then t.incomplete <- t.incomplete + 1
  else
    match telescope p with
    | None -> unattributed t p
    | Some vals ->
        let sojourn = p.reply_end - p.parse_start in
        let stage_sum = List.fold_left (fun acc (_, v) -> acc + v) 0 vals in
        List.iter (fun (s, v) -> record_stage t s v) vals;
        Latency.record t.sojourn sojourn;
        t.requests <- t.requests + 1;
        t.sojourn_sum <- t.sojourn_sum + sojourn;
        t.stage_sum_total <- t.stage_sum_total + stage_sum;
        if stage_sum = sojourn then t.exact <- t.exact + 1

let set_boundary p field v =
  (* A boundary seen twice means ring overwrite garbled this request. *)
  match field with
  | `Parse -> if p.parse_start >= 0 then p.duplicate <- true else p.parse_start <- v
  | `Dispatch_start ->
      if p.dispatch_start >= 0 then p.duplicate <- true else p.dispatch_start <- v
  | `Hop -> if p.hop >= 0 then p.duplicate <- true else p.hop <- v
  | `Reply -> if p.reply_end >= 0 then p.duplicate <- true else p.reply_end <- v

let collect_pendings ~on_accept ~on_shed records =
  let pendings : (int, pending) Hashtbl.t = Hashtbl.create 1024 in
  let pending req_id =
    match Hashtbl.find_opt pendings req_id with
    | Some p -> p
    | None ->
        let p = fresh_pending () in
        Hashtbl.add pendings req_id p;
        p
  in
  List.iter
    (fun (r : Span.record) ->
      match r.phase with
      | Span.Accept -> on_accept ()
      | Span.Shed -> on_shed r.dur_ns
      | Span.Parse when r.req_id >= 0 ->
          set_boundary (pending r.req_id) `Parse r.start_ns
      | Span.Dispatch when r.req_id >= 0 ->
          let p = pending r.req_id in
          set_boundary p `Dispatch_start r.start_ns;
          p.dispatch_end <- r.start_ns + r.dur_ns
      | Span.Ring_hop when r.req_id >= 0 ->
          set_boundary (pending r.req_id) `Hop r.start_ns
      | Span.Quantum when r.req_id >= 0 ->
          let p = pending r.req_id in
          p.quanta <- (r.start_ns, r.dur_ns) :: p.quanta
      | Span.Reply_flush when r.req_id >= 0 ->
          set_boundary (pending r.req_id) `Reply (r.start_ns + r.dur_ns)
      | Span.Parse | Span.Dispatch | Span.Ring_hop | Span.Quantum
      | Span.Reply_flush | Span.Stall | Span.Steal | Span.Gc_minor
      | Span.Gc_major -> ())
    records;
  pendings

let of_records records =
  let t = create () in
  let pendings =
    collect_pendings records
      ~on_accept:(fun () -> t.accepts <- t.accepts + 1)
      ~on_shed:(fun dur ->
        t.sheds <- t.sheds + 1;
        Latency.record t.shed_rec dur)
  in
  Hashtbl.iter (fun _ p -> finish_request t p) pendings;
  t

let request_stages records =
  let pendings =
    collect_pendings records ~on_accept:ignore ~on_shed:(fun _ -> ())
  in
  Hashtbl.fold
    (fun req_id p acc ->
      match telescope p with Some vals -> (req_id, vals) :: acc | None -> acc)
    pendings []

let latency t = t.latency
let requests t = t.requests
let exact t = t.exact
let sheds t = t.sheds
let unattributed_count t = t.unattributed
let incomplete t = t.incomplete
let accepts t = t.accepts

let stage_count t stage = Latency.count (List.assq stage t.recorders)

let stage_sum_ns t stage =
  match Hashtbl.find_opt t.stage_sums stage with Some r -> !r | None -> 0

let sum_rel_error t =
  if t.sojourn_sum = 0 then 0.0
  else
    Float.abs (float_of_int (t.stage_sum_total - t.sojourn_sum))
    /. float_of_int t.sojourn_sum

let invariant_ok t = t.requests = 0 || (t.exact = t.requests && sum_rel_error t < 0.01)

let exact_fraction t =
  if t.requests = 0 then 1.0 else float_of_int t.exact /. float_of_int t.requests

let share t sum =
  if t.sojourn_sum = 0 then 0.0 else float_of_int sum /. float_of_int t.sojourn_sum

let to_json t =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Tq_util.Bench_meta.json_fields ());
  Buffer.add_string b "  \"benchmark\": \"tq_serve stage breakdown\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"requests\": %d,\n  \"exact\": %d,\n  \"exact_fraction\": %.6f,\n  \
        \"sum_rel_error\": %.6f,\n  \"unattributed\": %d,\n  \"incomplete\": %d,\n  \
        \"shed\": %d,\n  \"accepts\": %d,\n"
       t.requests t.exact (exact_fraction t) (sum_rel_error t) t.unattributed
       t.incomplete t.sheds t.accepts);
  Buffer.add_string b
    (Printf.sprintf "  \"sojourn_sum_ns\": %d,\n  \"stage_sum_ns\": %d,\n"
       t.sojourn_sum t.stage_sum_total);
  Buffer.add_string b "  \"stages\": {\n";
  List.iteri
    (fun i stage ->
      let r = List.assq stage t.recorders in
      Buffer.add_string b
        (Printf.sprintf "    %S: {%s, \"sum_ns\": %d, \"share\": %.4f}%s\n"
           (stage_name stage) (Latency.json_fields r) (stage_sum_ns t stage)
           (share t (stage_sum_ns t stage))
           (if i = List.length stages - 1 then "" else ",")))
    stages;
  Buffer.add_string b "  },\n";
  Buffer.add_string b
    (Printf.sprintf "  \"shed_stage\": {%s},\n" (Latency.json_fields t.shed_rec));
  Buffer.add_string b
    (Printf.sprintf "  \"unattributed_stage\": {%s},\n"
       (Latency.json_fields t.unattributed_rec));
  Buffer.add_string b
    (Printf.sprintf "  \"sojourn\": {%s}\n}\n" (Latency.json_fields t.sojourn));
  Buffer.contents b

let us ns = float_of_int ns /. 1e3

let render t =
  let table =
    Tq_util.Text_table.create
      ~title:
        (Printf.sprintf
           "Stage breakdown: %d requests decomposed (%d exact, %d unattributed, %d \
            shed, %d in flight)"
           t.requests t.exact t.unattributed t.sheds t.incomplete)
      ~columns:[ "stage"; "count"; "p50 us"; "p90 us"; "p99 us"; "sum ms"; "share %" ]
  in
  let row name r sum =
    Tq_util.Text_table.add_row table
      [
        name;
        Tq_util.Text_table.cell_i (Latency.count r);
        Tq_util.Text_table.cell_f (us (Latency.percentile r 50.0));
        Tq_util.Text_table.cell_f (us (Latency.percentile r 90.0));
        Tq_util.Text_table.cell_f (us (Latency.percentile r 99.0));
        Tq_util.Text_table.cell_f (float_of_int sum /. 1e6);
        Tq_util.Text_table.cell_f (100.0 *. share t sum);
      ]
  in
  List.iter
    (fun stage -> row (stage_name stage) (List.assq stage t.recorders) (stage_sum_ns t stage))
    stages;
  row "shed" t.shed_rec 0;
  row "unattributed" t.unattributed_rec 0;
  row "= sojourn" t.sojourn t.sojourn_sum;
  Tq_util.Text_table.render table
  ^ Printf.sprintf "sum invariant: stage sums cover %.4f of sojourn (%.2f%% exact)\n"
      (1.0 -. sum_rel_error t)
      (100.0 *. exact_fraction t)
