(** Chrome trace-event JSON exporter (the Perfetto / [chrome://tracing]
    format).

    One thread track per {!Event.lane}.  Quanta become ["X"] complete
    events — reconstructed from [Quantum_end], whose [ran_ns] gives the
    start — so Perfetto shows the per-core quantum interleaving
    directly; injected stalls also render as spans, and everything else
    becomes a thread-scoped instant.  Timestamps are microseconds (the
    format's unit) with nanosecond precision. *)

(** [export trace] — the whole surviving ring as one JSON document
    (open it at {{:https://ui.perfetto.dev} ui.perfetto.dev}). *)
val export : Trace.t -> string

(** [write_file trace path] writes {!export} output to [path], closing
    the file even on error. *)
val write_file : Trace.t -> string -> unit
