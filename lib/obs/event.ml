(* The trace vocabulary: every scheduling decision the paper's
   evaluation reasons about (Sections 2 and 5), as a typed event.

   A [lane] is the hardware context an event happened on — one Perfetto
   track per dispatcher core and per worker core.  Events that precede
   core assignment (client-side arrival) go on [Global]. *)

type lane = Global | Dispatcher of int | Worker of int | Gc of int

type t =
  | Job_arrival of { job_id : int; class_idx : int; service_ns : int }
  | Dispatch of { job_id : int; worker : int; policy : string; queue_len : int }
      (** Dispatcher decision: [worker] chosen under [policy];
          [queue_len] is the chosen worker's queue depth at decision
          time (the tie-break input). *)
  | Ring_hop of { job_id : int; worker : int }
      (** Message ride on the dispatcher->worker ring. *)
  | Quantum_start of { job_id : int; quantum_ns : int }
  | Quantum_end of { job_id : int; ran_ns : int; finished : bool }
  | Yield of { job_id : int }
  | Preempt_overshoot of { job_id : int; overshoot_ns : int }
      (** The quantum ran [overshoot_ns] past its nominal length
          (probe-timing slack, Section 3.2). *)
  | Steal of { job_id : int; victim : int }
  | Completion of { job_id : int; sojourn_ns : int }
  | Stall_start of { worker : int; duration_ns : int }
      (** Injected core stall (GC pause / SMI / antagonist) begins. *)
  | Stall_end of { worker : int }
  | Worker_killed of { worker : int }  (** permanent core failure injected *)
  | Worker_marked_dead of { worker : int }
      (** The dispatcher's health tracking excluded this worker. *)
  | Worker_marked_alive of { worker : int }
      (** A suspected-dead worker showed progress again and was
          readmitted to the dispatch set. *)
  | Redispatch of { job_id : int; from_worker : int; to_worker : int }
      (** Queued-but-unstarted job rescued from a dead worker. *)
  | Retry of { job_id : int; attempt : int; backoff_ns : int }
      (** Client-side timeout fired; attempt [attempt] will be submitted
          after [backoff_ns]. *)
  | Drop of { job_id : int; reason : string }
      (** Request lost: "nic", "admission", "no-worker", or
          "retries-exhausted". *)
  | Dispatcher_outage of { dispatcher : int; duration_ns : int }

let lane_name = function
  | Global -> "global"
  | Dispatcher d -> Printf.sprintf "dispatcher %d" d
  | Worker w -> Printf.sprintf "worker %d" w
  | Gc d -> Printf.sprintf "gc domain %d" d

(* Stable Chrome-trace thread ids: global, then dispatchers, then
   workers, then GC lanes, so Perfetto sorts lanes in pipeline order. *)
let lane_tid = function
  | Global -> 0
  | Dispatcher d -> 1 + d
  | Worker w -> 100 + w
  | Gc d -> 200 + d

let name = function
  | Job_arrival _ -> "job_arrival"
  | Dispatch _ -> "dispatch"
  | Ring_hop _ -> "ring_hop"
  | Quantum_start _ -> "quantum_start"
  | Quantum_end _ -> "quantum_end"
  | Yield _ -> "yield"
  | Preempt_overshoot _ -> "preempt_overshoot"
  | Steal _ -> "steal"
  | Completion _ -> "completion"
  | Stall_start _ -> "stall_start"
  | Stall_end _ -> "stall_end"
  | Worker_killed _ -> "worker_killed"
  | Worker_marked_dead _ -> "worker_marked_dead"
  | Worker_marked_alive _ -> "worker_marked_alive"
  | Redispatch _ -> "redispatch"
  | Retry _ -> "retry"
  | Drop _ -> "drop"
  | Dispatcher_outage _ -> "dispatcher_outage"

(* -1 for core-level events that concern no particular job. *)
let job_id = function
  | Job_arrival { job_id; _ }
  | Dispatch { job_id; _ }
  | Ring_hop { job_id; _ }
  | Quantum_start { job_id; _ }
  | Quantum_end { job_id; _ }
  | Yield { job_id }
  | Preempt_overshoot { job_id; _ }
  | Steal { job_id; _ }
  | Completion { job_id; _ }
  | Redispatch { job_id; _ }
  | Retry { job_id; _ }
  | Drop { job_id; _ } -> job_id
  | Stall_start _ | Stall_end _ | Worker_killed _ | Worker_marked_dead _
  | Worker_marked_alive _ | Dispatcher_outage _ -> -1

(* Event payload as ordered key/raw-JSON pairs; shared by the Chrome
   exporter and the text dump so the two stay consistent. *)
let args = function
  | Job_arrival { job_id; class_idx; service_ns } ->
      [ ("job", string_of_int job_id);
        ("class", string_of_int class_idx);
        ("service_ns", string_of_int service_ns) ]
  | Dispatch { job_id; worker; policy; queue_len } ->
      [ ("job", string_of_int job_id);
        ("worker", string_of_int worker);
        ("policy", Printf.sprintf "%S" policy);
        ("queue_len", string_of_int queue_len) ]
  | Ring_hop { job_id; worker } ->
      [ ("job", string_of_int job_id); ("worker", string_of_int worker) ]
  | Quantum_start { job_id; quantum_ns } ->
      [ ("job", string_of_int job_id); ("quantum_ns", string_of_int quantum_ns) ]
  | Quantum_end { job_id; ran_ns; finished } ->
      [ ("job", string_of_int job_id);
        ("ran_ns", string_of_int ran_ns);
        ("finished", if finished then "true" else "false") ]
  | Yield { job_id } -> [ ("job", string_of_int job_id) ]
  | Preempt_overshoot { job_id; overshoot_ns } ->
      [ ("job", string_of_int job_id); ("overshoot_ns", string_of_int overshoot_ns) ]
  | Steal { job_id; victim } ->
      [ ("job", string_of_int job_id); ("victim", string_of_int victim) ]
  | Completion { job_id; sojourn_ns } ->
      [ ("job", string_of_int job_id); ("sojourn_ns", string_of_int sojourn_ns) ]
  | Stall_start { worker; duration_ns } ->
      [ ("worker", string_of_int worker); ("duration_ns", string_of_int duration_ns) ]
  | Stall_end { worker } -> [ ("worker", string_of_int worker) ]
  | Worker_killed { worker } -> [ ("worker", string_of_int worker) ]
  | Worker_marked_dead { worker } -> [ ("worker", string_of_int worker) ]
  | Worker_marked_alive { worker } -> [ ("worker", string_of_int worker) ]
  | Redispatch { job_id; from_worker; to_worker } ->
      [ ("job", string_of_int job_id);
        ("from", string_of_int from_worker);
        ("to", string_of_int to_worker) ]
  | Retry { job_id; attempt; backoff_ns } ->
      [ ("job", string_of_int job_id);
        ("attempt", string_of_int attempt);
        ("backoff_ns", string_of_int backoff_ns) ]
  | Drop { job_id; reason } ->
      [ ("job", string_of_int job_id); ("reason", Printf.sprintf "%S" reason) ]
  | Dispatcher_outage { dispatcher; duration_ns } ->
      [ ("dispatcher", string_of_int dispatcher);
        ("duration_ns", string_of_int duration_ns) ]

let to_string ev =
  name ev ^ " "
  ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) (args ev))
