(* Sliding-window SLO evaluation with burn-rate output.

   An objective says "a fraction >= [goodput] of responses must be good",
   where good = an Ok response within [latency_ns].  The monitor keeps a
   ring of fixed-width time buckets per objective (good count, total
   count); observations land in the bucket their timestamp selects,
   stale buckets are zeroed lazily as the window advances, and a report
   sums the live buckets.  Burn rate is the SRE convention:
   error_rate / error_budget, where the budget is 1 - goodput — burn 1.0
   exactly exhausts the budget over the window, > 1.0 is on fire. *)

type objective = { name : string; latency_ns : int; goodput : float }

let default_objective =
  { name = "default"; latency_ns = 1_000_000; goodput = 0.99 }

type track = {
  objective : objective;
  good : int array;
  tot : int array;
  epoch : int array;  (** absolute bucket index each slot currently holds *)
}

type t = {
  tracks : track list;
  bucket_ns : int;
  buckets : int;
  mutable last_now_ns : int;
}

let create ?(window_s = 10.0) ?(buckets = 20) ~now_ns objectives =
  if window_s <= 0.0 then invalid_arg "Slo.create: window_s must be positive";
  if buckets < 1 then invalid_arg "Slo.create: need at least one bucket";
  List.iter
    (fun o ->
      if o.goodput <= 0.0 || o.goodput >= 1.0 then
        invalid_arg "Slo.create: goodput must be in (0, 1)";
      if o.latency_ns <= 0 then invalid_arg "Slo.create: latency_ns must be positive")
    objectives;
  let bucket_ns = max 1 (int_of_float (window_s *. 1e9) / buckets) in
  {
    tracks =
      List.map
        (fun objective ->
          {
            objective;
            good = Array.make buckets 0;
            tot = Array.make buckets 0;
            epoch = Array.make buckets (-1);
          })
        objectives;
    bucket_ns;
    buckets;
    last_now_ns = now_ns;
  }

let slot t track ~now_ns =
  let abs = now_ns / t.bucket_ns in
  let i = abs mod t.buckets in
  if track.epoch.(i) <> abs then begin
    (* this slot last held an older window segment: recycle it *)
    track.epoch.(i) <- abs;
    track.good.(i) <- 0;
    track.tot.(i) <- 0
  end;
  i

let observe t ~now_ns status =
  t.last_now_ns <- max t.last_now_ns now_ns;
  List.iter
    (fun track ->
      let i = slot t track ~now_ns in
      track.tot.(i) <- track.tot.(i) + 1;
      match status with
      | `Ok latency_ns ->
          if latency_ns <= track.objective.latency_ns then
            track.good.(i) <- track.good.(i) + 1
      | `Shed | `Error -> ())
    t.tracks

type report = {
  objective : objective;
  window_total : int;
  window_good : int;
  compliance : float;  (** good / total; 1.0 over an empty window *)
  burn_rate : float;  (** (1 - compliance) / (1 - goodput) *)
}

let live t track ~now_ns =
  (* A slot is live when its epoch lies inside the last [buckets]
     absolute indices ending at now. *)
  let abs_now = now_ns / t.bucket_ns in
  let good = ref 0 and tot = ref 0 in
  for i = 0 to t.buckets - 1 do
    let e = track.epoch.(i) in
    if e >= 0 && e > abs_now - t.buckets && e <= abs_now then begin
      good := !good + track.good.(i);
      tot := !tot + track.tot.(i)
    end
  done;
  (!good, !tot)

let report_track t track ~now_ns =
  let good, tot = live t track ~now_ns in
  let compliance = if tot = 0 then 1.0 else float_of_int good /. float_of_int tot in
  {
    objective = track.objective;
    window_total = tot;
    window_good = good;
    compliance;
    burn_rate = (1.0 -. compliance) /. (1.0 -. track.objective.goodput);
  }

let report ?now_ns t =
  let now_ns = Option.value now_ns ~default:t.last_now_ns in
  List.map (fun track -> report_track t track ~now_ns) t.tracks

let window_series ?now_ns t objective_name =
  let now_ns = Option.value now_ns ~default:t.last_now_ns in
  match
    List.find_opt (fun (tr : track) -> tr.objective.name = objective_name) t.tracks
  with
  | None -> []
  | Some track ->
      let abs_now = now_ns / t.bucket_ns in
      let acc = ref [] in
      for back = t.buckets - 1 downto 0 do
        let abs = abs_now - back in
        if abs >= 0 then begin
          let i = abs mod t.buckets in
          let age_s =
            float_of_int (back * t.bucket_ns) /. 1e9
          in
          if track.epoch.(i) = abs && track.tot.(i) > 0 then
            acc :=
              ( -.age_s,
                float_of_int track.good.(i) /. float_of_int track.tot.(i) )
              :: !acc
        end
      done;
      List.rev !acc

let render ?now_ns t =
  let reports = report ?now_ns t in
  let b = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf
           "slo %-10s target p(lat<=%.0fus) >= %.3f   window %6d reqs   \
            compliance %.4f   burn %5.2fx%s\n"
           r.objective.name
           (float_of_int r.objective.latency_ns /. 1e3)
           r.objective.goodput r.window_total r.compliance r.burn_rate
           (if r.window_total = 0 then "  (no traffic)"
            else if r.burn_rate > 1.0 then "  BREACH"
            else "")))
    reports;
  Buffer.contents b
