(** The observability context threaded through a scheduler run: one
    event tracer plus one metric registry.

    {!disabled} gives the zero-cost default — a null tracer (one branch
    per would-be record, no allocation) and a private registry nobody
    reads — so subsystems can register and bump unconditionally.

    The fixed-interval time-series sampler lives alongside, but is owned
    by the run driver ([Tq_sched.Experiment]) because only it knows the
    sampling clock; see [Experiment.run ?obs]. *)

type t = {
  trace : Trace.t;
  counters : Counters.t;
  sample_interval_ns : int;  (** time-series sampling period (virtual time) *)
}

(** [create ?trace_capacity ?sample_interval_ns ()] — a live context: an
    enabled tracer holding the last [trace_capacity] (default 65536)
    events and a fresh counter registry, sampling every
    [sample_interval_ns] (default 10000) of virtual time. *)
val create : ?trace_capacity:int -> ?sample_interval_ns:int -> unit -> t

(** [disabled ()] — the no-cost context: null tracer, throwaway
    registry.  What every subsystem's [?obs] argument defaults to. *)
val disabled : unit -> t

(** [of_counters reg] — a context carrying [reg] with tracing off: what
    a worker domain threads through [?obs]-taking subsystems so its
    per-domain registry (see the {!Counters} ownership rule) stays live
    while the single-threaded tracer stays null. *)
val of_counters : Counters.t -> t
