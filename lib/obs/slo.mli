(** Sliding-window SLO monitoring with burn-rate output.

    An {!objective} states "a fraction of at least [goodput] of
    responses must be {e good}", where good means an [Ok] response whose
    latency is within [latency_ns]; shed and errored responses count
    against the objective.  The monitor evaluates each objective over a
    sliding window of fixed-width time buckets and reports compliance
    plus the SRE burn rate: error_rate / error_budget, where the budget
    is [1 - goodput] — burn 1.0 exactly exhausts the budget over the
    window, above 1.0 the SLO is being breached.

    Single-threaded, like {!Latency}: one monitor per observing
    thread (the load generator owns its own). *)

(** One service-level objective. *)
type objective = {
  name : string;
  latency_ns : int;  (** per-request latency target *)
  goodput : float;  (** required good fraction, in (0, 1) *)
}

(** 1 ms at 99% goodput — the [tq_load --dashboard] default. *)
val default_objective : objective

type t

(** [create ?window_s ?buckets ~now_ns objectives] — a monitor
    evaluating every objective over a sliding window of [window_s]
    seconds (default 10) split into [buckets] buckets (default 20);
    [now_ns] anchors the window clock.  Raises [Invalid_argument] for an
    empty-window, non-(0,1) goodput or non-positive latency target. *)
val create : ?window_s:float -> ?buckets:int -> now_ns:int -> objective list -> t

(** [observe t ~now_ns status] records one response: [`Ok latency_ns]
    (good iff within each objective's target), [`Shed] or [`Error]
    (always bad). *)
val observe : t -> now_ns:int -> [ `Ok of int | `Shed | `Error ] -> unit

type report = {
  objective : objective;
  window_total : int;  (** responses in the live window *)
  window_good : int;
  compliance : float;  (** good / total; 1.0 over an empty window *)
  burn_rate : float;  (** (1 - compliance) / (1 - goodput) *)
}

(** [report ?now_ns t] — one report per objective, evaluated at
    [now_ns] (default: the latest observed timestamp). *)
val report : ?now_ns:int -> t -> report list

(** [window_series ?now_ns t name] — the named objective's per-bucket
    good fraction across the live window, as (seconds-before-now ≤ 0,
    fraction) points for {!Tq_util.Ascii_chart}; empty buckets are
    skipped, unknown names yield []. *)
val window_series : ?now_ns:int -> t -> string -> (float * float) list

(** [render ?now_ns t] — one line per objective: target, window volume,
    compliance, burn rate, and a BREACH marker when burning more than
    1x budget. *)
val render : ?now_ns:int -> t -> string
