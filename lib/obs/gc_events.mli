(** GC pause telemetry via OCaml 5 [Runtime_events].

    A background systhread self-monitors the process through the
    runtime's always-compiled tracing ring, pairs minor/major
    collection begin/end events into pause spans per domain, and
    publishes them three ways: as {!Span} records on the per-domain
    {!Event.Gc} lanes (so Perfetto shows each pause next to the worker
    lane it stalled), as counters and pause-duration distributions in a
    registry of its own, and as a per-domain cumulative pause clock
    that the scheduler's stall detector reads to attribute wall-clock
    gaps to GC rather than OS preemption.

    Timestamps are calibrated once at {!start} from the runtime's
    monotonic clock to the wall clock the span layer uses (a forced
    minor collection bracketed by two wall readings) — alignment is
    good to a few microseconds.

    One consumer per process: the thread owns the registry and the GC
    sinks (single-writer rule); everything exposed for cross-domain
    reading is either an [Atomic] or eventually-consistent counters. *)

(** A running consumer. *)
type t

(** [start ?spans ?poll_interval_s ()] begins collection: enables
    [Runtime_events] for this process, calibrates the clock offset and
    spawns the consumer thread (polling every [poll_interval_s],
    default 1 ms).  GC pause spans are recorded into [spans] when it is
    an enabled collection (default {!Span.null} — counters only). *)
val start : ?spans:Span.t -> ?poll_interval_s:float -> unit -> t

(** [stop t] drains outstanding events, frees the cursor and joins the
    consumer thread.  Idempotent. *)
val stop : t -> unit

(** [counters t] — the consumer's registry: [gc.minor_pauses],
    [gc.major_pauses] (counters), [gc.minor_pause_ns],
    [gc.major_pause_ns] (distributions) and [gc.events_lost] (ring
    overflow on the runtime side). *)
val counters : t -> Counters.t

(** [spans t] — the span collection GC pauses are recorded into (the
    one passed to {!start}). *)
val spans : t -> Span.t

(** [domain_pause_ns t dom] — cumulative GC pause nanoseconds observed
    on runtime domain index [dom]; 0 for out-of-range indices.
    Eventually consistent: lags the live domain by up to one poll
    interval. *)
val domain_pause_ns : t -> int -> int

(** [self_pause_ns t] — {!domain_pause_ns} for the calling domain.
    Uses [Domain.self] as the ring index, which matches the runtime's
    ring ids under the serve path's spawn-once domain layout; a
    workload that churns hundreds of domains would need a real
    id-to-ring map. *)
val self_pause_ns : t -> int

(** [calibrated t] — whether the mono-to-wall offset was established at
    start; when [false] (no pause event observed during calibration,
    not expected in practice) GC spans stay on the monotonic timebase. *)
val calibrated : t -> bool
