(** Fixed-interval time series: one row of named values per sample tick.

    The sampler ([Tq_sched.Experiment]) pushes a full row at each
    virtual-time interval; export is CSV or an ASCII chart. *)

type t

(** [create ~series] — an empty series with one named column per entry.
    Raises [Invalid_argument] on an empty list. *)
val create : series:string list -> t

(** [names t] — the column names, in declaration order. *)
val names : t -> string list

(** [length t] — number of samples pushed so far. *)
val length : t -> int

(** [push t ~t_ns row] appends one sample row.  Raises
    [Invalid_argument] if [row] width differs from the declared series
    count. *)
val push : t -> t_ns:int -> float array -> unit

(** [get t i] — the [i]-th sample as [(timestamp_ns, row)]. *)
val get : t -> int -> int * float array

(** [to_csv t] — the series as CSV with a [t_ns] column followed by one
    column per declared name. *)
val to_csv : t -> string

(** [render ?width ?height ~title t] — one ASCII chart, x = virtual time
    in microseconds, one symbol per series. *)
val render : ?width:int -> ?height:int -> title:string -> t -> string
