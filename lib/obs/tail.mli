(** Tail-based span sampling: always-on forensics for the slow few.

    Full tracing ([--obs]) records every request and is unusable at
    calibrated load; aggregate views ({!Profile} histograms, {!Latency}
    ladders) cannot say {e which} stage hurt {e which} request.  This
    module keeps the middle ground production µs-scale systems use
    (RackSched's per-request tail accounting): a per-lane bounded
    reservoir retaining only the K slowest requests per sliding window
    plus any request breaching a latency threshold.

    Hot-path contract, same discipline as {!Span}'s null sink: a sink
    of a disabled collection has [k = 0], so {!offer} is a single
    branch over all-int arguments with zero allocation.  On the enabled
    path the common case (the request was fast) is one compare against
    the window's floor; admissions touch at most K slots — K a small
    configured constant — and are the only allocation.

    Single-writer per sink (the owning lane's dispatcher); retained
    entries are published through per-slot [Atomic.t]s holding
    immutable records, so cross-lane readers (Stats RPC, HTTP
    [/outliers]) never see a torn entry. *)

(** One retained slow request: identity, residency, and the controller
    and queue state sampled at dispatch time.  [e_cap = -1] means
    admission was unlimited; [e_breach] marks a threshold breach (as
    opposed to a merely-slowest-K admission). *)
type entry = {
  e_seq : int;  (** request sequence id, = [Span.record.req_id] *)
  e_class : int;  (** request class index *)
  e_lane : int;  (** owning dispatcher lane *)
  e_worker : int;  (** worker that executed (post-steal) *)
  e_sojourn_ns : int;  (** sojourn observed at reply pop *)
  e_t0_ns : int;  (** request arrival stamp *)
  e_end_ns : int;  (** reply pop stamp *)
  e_quantum_ns : int;  (** controller quantum for the class at dispatch *)
  e_cap : int;  (** admission cap at dispatch, -1 = unlimited *)
  e_inject_depth : int;  (** target worker's inject-ring depth at dispatch *)
  e_deque_depth : int;  (** target worker's deque depth at dispatch *)
  e_breach : bool;
}

(** A per-lane reservoir.  Single-writer: only the owning lane may
    {!offer}. *)
type sink

(** A collection of per-lane sinks plus the shared configuration. *)
type t

(** The shared disabled collection: registration hands out
    {!null_sink}, nothing is ever retained.  What every [?tail]
    argument defaults to. *)
val null : t

(** The sink that rejects everything at the cost of one branch. *)
val null_sink : sink

(** [create ?k ?threshold_ns ?window_ns ()] — an enabled collection
    retaining the [k] (default 16) slowest requests per lane per
    [window_ns] (default 1s) sliding window, plus every request with
    sojourn ≥ [threshold_ns] (default 0 = no threshold rule). *)
val create : ?k:int -> ?threshold_ns:int -> ?window_ns:int -> unit -> t

(** [enabled t] — whether sinks of [t] retain anything; guard extra
    work (clock reads, depth sampling) on this. *)
val enabled : t -> bool

(** [k t] — the per-lane dossier budget. *)
val k : t -> int

(** [threshold_ns t] — the breach threshold, 0 when none. *)
val threshold_ns : t -> int

(** [window_ns t] — the sliding-window length. *)
val window_ns : t -> int

(** [register t ~lane] — a fresh sink owned by dispatcher lane [lane]
    (registration is thread-safe; offering is not).  Returns
    {!null_sink} when [t] is disabled. *)
val register : t -> lane:int -> sink

(** [offer sink ~now_ns ~seq ~class_idx ~worker ~sojourn_ns ~t0_ns
    ~quantum_ns ~cap ~inject_depth ~deque_depth] considers one
    completed request for retention.  All-int arguments; the disabled
    path is one branch, the enabled reject path one extra compare. *)
val offer :
  sink ->
  now_ns:int ->
  seq:int ->
  class_idx:int ->
  worker:int ->
  sojourn_ns:int ->
  t0_ns:int ->
  quantum_ns:int ->
  cap:int ->
  inject_depth:int ->
  deque_depth:int ->
  unit

(** [offered t] — requests considered across all sinks. *)
val offered : t -> int

(** [admitted t] — requests that were retained (including later
    evictions). *)
val admitted : t -> int

(** [entries t] — snapshot of every currently retained entry across
    lanes: current window, previous window and the breach rings,
    deduplicated by sequence id, slowest first. *)
val entries : t -> entry list

(** [retained t] = [List.length (entries t)]. *)
val retained : t -> int

(** [top t ~limit] — the [limit] slowest retained entries. *)
val top : t -> limit:int -> entry list

(** A retained request enriched from the span stream: exact per-stage
    attribution (when the request's spans telescope — see
    {!Profile.request_stages}) plus steal / stall / GC-pause
    annotations from core-level spans overlapping its residency.
    When [d_attributed], [d_sojourn_ns] is the span-derived sojourn
    and equals the sum of [d_stages] exactly; otherwise it is the
    admission-time sojourn and [d_stages] is empty. *)
type dossier = {
  d_entry : entry;
  d_attributed : bool;
  d_sojourn_ns : int;
  d_stages : (Profile.stage * int) list;
  d_quanta : int;  (** quanta the request ran; preemptions = quanta - 1 *)
  d_steals : int;  (** steals on the executing worker during residency *)
  d_stalls : int;  (** stall spans on the executing worker during residency *)
  d_gc_pauses : int;  (** GC pauses (any domain) overlapping residency *)
  d_gc_pause_ns : int;  (** total overlapping GC pause time *)
}

(** [dossiers t ~records ~limit] — the top-[limit] retained entries
    enriched against a merged span stream (see {!Span.merge}). *)
val dossiers : t -> records:Span.record list -> limit:int -> dossier list

(** [dossier_json ~class_name d] — one dossier as a JSON object; all
    durations are exact nanosecond integers so the telescoping
    invariant is checkable on the wire. *)
val dossier_json : class_name:(int -> string) -> dossier -> string

(** [dossiers_json ?class_name t ds] — the [/outliers] / RPC document:
    configuration, offered/admitted/retained counts, and the dossier
    array. *)
val dossiers_json : ?class_name:(int -> string) -> t -> dossier list -> string

(** [render ?class_name ds] — the [tq_load --outliers] table: one row
    per dossier with sojourn, the seven stages (µs), quanta, steals,
    GC and queue depths. *)
val render : ?class_name:(int -> string) -> dossier list -> string

(** [filter_records t records] — only the spans that matter for the
    retained requests: their own spans plus any core-level span
    (steal, stall, GC pause) overlapping a retained residency. *)
val filter_records : t -> Span.record list -> Span.record list

(** [to_chrome t records] — outlier-only Perfetto export: the
    {!filter_records} cut rendered via {!Span.records_to_chrome}, so a
    multi-minute run yields a readable timeline of just the slow
    requests. *)
val to_chrome : t -> Span.record list -> string
