(* Fixed-interval time series: one row of named values per sample tick.
   The sampler (Tq_sched.Experiment) pushes a full row at each virtual-
   time interval; export is CSV or an ASCII chart. *)

type t = {
  names : string array;
  mutable times : int array;  (** ns timestamps, [0..len) valid *)
  mutable rows : float array array;
  mutable len : int;
}

let create ~series =
  if series = [] then invalid_arg "Timeseries.create: need at least one series";
  {
    names = Array.of_list series;
    times = Array.make 64 0;
    rows = Array.make 64 [||];
    len = 0;
  }

let names t = Array.to_list t.names
let length t = t.len

let push t ~t_ns row =
  if Array.length row <> Array.length t.names then
    invalid_arg "Timeseries.push: row width mismatch";
  if t.len = Array.length t.times then begin
    let cap = 2 * t.len in
    let times = Array.make cap 0 and rows = Array.make cap [||] in
    Array.blit t.times 0 times 0 t.len;
    Array.blit t.rows 0 rows 0 t.len;
    t.times <- times;
    t.rows <- rows
  end;
  t.times.(t.len) <- t_ns;
  t.rows.(t.len) <- Array.copy row;
  t.len <- t.len + 1

let get t i = (t.times.(i), t.rows.(i))

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("t_ns," ^ String.concat "," (Array.to_list t.names) ^ "\n");
  for i = 0 to t.len - 1 do
    Buffer.add_string buf (string_of_int t.times.(i));
    Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%g" v)) t.rows.(i);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* One chart, x = virtual time in us, one symbol per series. *)
let render ?(width = 64) ?(height = 16) ~title t =
  let series =
    List.mapi
      (fun si name ->
        {
          Tq_util.Ascii_chart.label = name;
          points =
            List.init t.len (fun i ->
                (float_of_int t.times.(i) /. 1e3, t.rows.(i).(si)));
        })
      (Array.to_list t.names)
  in
  Tq_util.Ascii_chart.render ~width ~height ~x_label:"t (us)" ~title series
