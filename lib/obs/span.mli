(** Cross-domain request spans for the live serving path.

    {!Trace} is a single ring written from one thread — fine for the
    simulator, a data race for the live server (one dispatcher thread
    plus N worker domains).  This module gives each domain its own
    bounded, lock-free span buffer (the {!Tq_runtime.Spsc_ring} idiom:
    per-cell [Atomic]s order record publication with the cursor update;
    exactly one domain writes each sink) and a {!merge} step that
    stitches the per-domain buffers into one request timeline.

    The hot-path contract matches {!Trace}: every record argument is an
    immediate int, and a sink obtained from a disabled collection is
    {!null_sink}, so the disabled record path is one branch with zero
    allocation.  Guard any extra clock reads with {!enabled}. *)

(** One step of a request's journey through the server, in pipeline
    order.  [Quantum] and [Stall] are core-level ([Stall] marks a
    wall-clock gap ≫ quantum between consecutive quanta on one domain —
    a GC pause or an OS preemption made visible).  [Steal] marks a
    worker-side steal: the thief records it on its own lane with the
    victim's worker index in [arg].  [Gc_minor] and
    [Gc_major] are per-domain collector pauses recorded by
    {!Gc_events} on the [Event.Gc] lanes. *)
type phase =
  | Accept
  | Parse
  | Dispatch
  | Ring_hop
  | Quantum
  | Reply_flush
  | Stall
  | Shed
  | Steal
  | Gc_minor
  | Gc_major

(** Lower-case stable name, used as the Perfetto event name. *)
val phase_name : phase -> string

(** One recorded span.  [dur_ns = 0] renders as an instant; [arg] is a
    phase-dependent small payload (worker index, class index, connection
    id); [req_id = -1] for core-level spans that concern no request. *)
type record = {
  req_id : int;
  phase : phase;
  lane : Event.lane;
  start_ns : int;  (** wall-clock span start *)
  dur_ns : int;
  arg : int;
}

(** A per-domain bounded span buffer.  Single-writer: only the domain
    that {!register}ed it may {!record}; when full the oldest records
    are overwritten. *)
type sink

(** A collection of per-domain sinks. *)
type t

(** The shared disabled collection: registration hands out
    {!null_sink}, nothing is ever stored.  What every [?spans] argument
    defaults to. *)
val null : t

(** The sink that drops everything at the cost of one branch. *)
val null_sink : sink

(** [create ?capacity_per_sink ()] — an enabled collection whose sinks
    keep the last [capacity_per_sink] (default 65536) records each. *)
val create : ?capacity_per_sink:int -> unit -> t

(** [enabled t] — whether sinks of [t] store anything; guard extra
    work (clock reads, payload computation) on this. *)
val enabled : t -> bool

(** [register t lane] — a fresh sink on [lane], owned by the calling
    domain (registration itself is thread-safe; recording is not).
    Returns {!null_sink} when [t] is disabled. *)
val register : t -> Event.lane -> sink

(** [record sink ~req_id ~phase ~start_ns ~dur_ns ~arg] appends one
    span.  All-int arguments: allocation happens only on the enabled
    path. *)
val record :
  sink -> req_id:int -> phase:phase -> start_ns:int -> dur_ns:int -> arg:int -> unit

(** [total t] — records ever written across all sinks (including
    overwritten ones). *)
val total : t -> int

(** [dropped t] — records lost to ring overwrites across all sinks. *)
val dropped : t -> int

(** [sink_dropped sink] — records lost to ring overwrites in this one
    sink; what the per-lane [obs.span_dropped] counter exposes. *)
val sink_dropped : sink -> int

(** [merge t] — every surviving record, stitched into one timeline:
    stable-sorted by [start_ns], ties keeping per-sink recording order.
    Call after the writers have quiesced (server drained) for an exact
    cut; a live merge is a best-effort snapshot. *)
val merge : t -> record list

(** [to_chrome t] — the merged timeline as Chrome trace-event JSON (one
    Perfetto track per lane, reusing {!Event.lane_tid} /
    {!Event.lane_name}); spans with [dur_ns > 0] are complete ["X"]
    events, instants are ["i"]. *)
val to_chrome : t -> string

(** [records_to_chrome records] — the same Chrome trace-event JSON for
    an arbitrary (already merged/filtered) record list; what the
    outlier-only export ({!Tail.to_chrome}) builds on. *)
val records_to_chrome : record list -> string

(** [write_file t path] writes {!to_chrome} output to [path]. *)
val write_file : t -> string -> unit
