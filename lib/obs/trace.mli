(** Bounded ring-buffer event tracer.

    The hot-path contract: call sites guard with {!enabled} so that a
    disabled tracer costs one load + branch and allocates nothing —

    {[
      if Trace.enabled tr then
        Trace.record tr ~ts_ns:(Sim.now sim) ~lane (Event.Yield { job_id })
    ]}

    The event constructor application sits inside the guard, so the
    disabled branch never allocates (verified by the Bechamel
    micro-benchmark in [bench/main.ml]).  When the buffer is full the
    oldest records are overwritten; {!dropped} counts the overwrites. *)

(** One recorded event with its position and timing. *)
type record = {
  seq : int;  (** 0-based global sequence number (survives overwrites) *)
  ts_ns : int;  (** virtual-time timestamp *)
  lane : Event.lane;
  event : Event.t;
}

type t

(** The shared disabled tracer: zero capacity, never records, cannot be
    enabled.  Use it as the default everywhere tracing is optional. *)
val null : t

(** [create ~capacity ()] — an enabled tracer whose ring keeps the last
    [capacity] (default 65536) records.  Raises [Invalid_argument] if
    [capacity < 1]. *)
val create : ?capacity:int -> unit -> t

(** [enabled t] — whether {!record} currently stores anything; the one
    branch every instrumented hot path pays. *)
val enabled : t -> bool

(** [set_enabled t on] toggles recording.  Raises [Invalid_argument]
    when trying to enable {!null}. *)
val set_enabled : t -> bool -> unit

(** [record t ~ts_ns ~lane event] appends one record (overwriting the
    oldest when full).  No-op when disabled — but call it behind an
    {!enabled} guard anyway so the event payload is never even
    allocated. *)
val record : t -> ts_ns:int -> lane:Event.lane -> Event.t -> unit

(** [total t] — records ever written, including overwritten ones. *)
val total : t -> int

(** [length t] — records currently held in the ring. *)
val length : t -> int

(** [dropped t] — records lost to ring overwrites
    ([total - capacity], floored at 0). *)
val dropped : t -> int

(** [clear t] empties the ring and resets the sequence counter. *)
val clear : t -> unit

(** [iter t f] visits the surviving records oldest-first. *)
val iter : t -> (record -> unit) -> unit

(** [to_list t] — the surviving records oldest-first. *)
val to_list : t -> record list
