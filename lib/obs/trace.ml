(* Bounded ring-buffer event tracer.

   The hot-path contract: call sites guard with [enabled] so that a
   disabled tracer costs one load + branch and allocates nothing —

     if Trace.enabled tr then
       Trace.record tr ~ts_ns:(Sim.now sim) ~lane (Event.Yield { job_id })

   The event constructor application sits inside the guard, so the
   disabled branch never allocates (verified by the Bechamel
   micro-benchmark in bench/main.ml).  When the buffer is full the
   oldest records are overwritten; [dropped] counts the overwrites. *)

type record = { seq : int; ts_ns : int; lane : Event.lane; event : Event.t }

type t = {
  mutable enabled : bool;
  buf : record option array;
  capacity : int;
  mutable next_seq : int;  (** total records ever written *)
}

(* The shared disabled tracer: zero capacity, never records.  Use it as
   the default everywhere tracing is optional. *)
let null = { enabled = false; buf = [||]; capacity = 0; next_seq = 0 }

let create ?(capacity = 65_536) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  { enabled = true; buf = Array.make capacity None; capacity; next_seq = 0 }

let enabled t = t.enabled

let set_enabled t on =
  if t.capacity = 0 && on then invalid_arg "Trace.set_enabled: null tracer"
  else t.enabled <- on

let record t ~ts_ns ~lane event =
  if t.enabled then begin
    t.buf.(t.next_seq mod t.capacity) <-
      Some { seq = t.next_seq; ts_ns; lane; event };
    t.next_seq <- t.next_seq + 1
  end

let total t = t.next_seq
let length t = min t.next_seq t.capacity
let dropped t = max 0 (t.next_seq - t.capacity)

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next_seq <- 0

(* Oldest-first iteration over whatever survives in the ring. *)
let iter t f =
  if t.capacity > 0 then begin
    let first = max 0 (t.next_seq - t.capacity) in
    for seq = first to t.next_seq - 1 do
      match t.buf.(seq mod t.capacity) with
      | Some r -> f r
      | None -> ()
    done
  end

let to_list t =
  let acc = ref [] in
  iter t (fun r -> acc := r :: !acc);
  List.rev !acc
