module Histogram = Tq_stats.Histogram

type recorder = { hist : Histogram.t; max_value : int; mutable owner : int }
type t = { table : (string, recorder) Hashtbl.t; max_value : int }

(* The single-threaded constraint used to be documentation only; with
   the owner check on, every record verifies the calling domain is the
   recorder's owner (the domain that created or last adopted it).  Off
   by default: the hot path then pays one ref load and branch. *)
let owner_check = ref false
let set_owner_check on = owner_check := on
let self () = (Domain.self () :> int)

let create ?(max_ns = 100_000_000_000) () =
  if max_ns <= 0 then invalid_arg "Latency.create: max_ns must be positive";
  { table = Hashtbl.create 16; max_value = max_ns }

let recorder t name =
  match Hashtbl.find_opt t.table name with
  | Some r -> r
  | None ->
      let r =
        {
          hist = Histogram.create ~max_value:t.max_value ();
          max_value = t.max_value;
          owner = self ();
        }
      in
      Hashtbl.add t.table name r;
      r

let adopt r = r.owner <- self ()

let record r ns =
  if !owner_check && self () <> r.owner then
    invalid_arg "Latency.record: recorder used off its owning domain";
  Histogram.record r.hist (max 0 (min ns r.max_value))

let count r = Histogram.count r.hist
let percentile r p = if count r = 0 then 0 else Histogram.percentile r.hist p
let mean r = Histogram.mean r.hist
let max_ns r = Histogram.max_recorded r.hist
let iter_buckets r f = Histogram.iter_buckets r.hist f
let clear r = Histogram.clear r.hist
let clear_all t = Hashtbl.iter (fun _ r -> clear r) t.table

let to_alist t =
  Hashtbl.fold (fun name r acc -> (name, r) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Bucket-level aggregation: replaying each source bucket's lower bound
   [count] times lands in the same bucket of the destination histogram
   (identical bucket boundaries), so percentiles of the merge equal the
   percentiles of the pooled samples up to the histograms' native
   resolution.  The sources are read without locks — merge per-lane
   registries after the writers quiesced for an exact cut, or live for
   an eventually-consistent snapshot. *)
let merge ts =
  let max_value =
    List.fold_left (fun acc t -> max acc t.max_value) 1 ts
  in
  let out = create ~max_ns:max_value () in
  List.iter
    (fun t ->
      List.iter
        (fun (name, r) ->
          let dst = recorder out name in
          iter_buckets r (fun ~lo ~hi:_ ~count ->
              Histogram.record_n dst.hist (max 0 (min lo dst.max_value)) ~count))
        (to_alist t))
    ts;
  out

let us ns = float_of_int ns /. 1e3

let dump t =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, r) ->
      Buffer.add_string b
        (Printf.sprintf
           "%-12s %8d samples  mean %8.2fus  p50 %8.2fus  p90 %8.2fus  p99 %8.2fus  \
            p99.9 %8.2fus\n"
           name (count r)
           (if count r = 0 then 0.0 else mean r /. 1e3)
           (us (percentile r 50.0))
           (us (percentile r 90.0))
           (us (percentile r 99.0))
           (us (percentile r 99.9))))
    (to_alist t);
  Buffer.contents b

let json_fields r =
  Printf.sprintf
    "\"count\": %d, \"mean_us\": %.3f, \"p50_us\": %.3f, \"p90_us\": %.3f, \"p99_us\": \
     %.3f, \"p999_us\": %.3f, \"max_us\": %.3f"
    (count r)
    (if count r = 0 then 0.0 else mean r /. 1e3)
    (us (percentile r 50.0))
    (us (percentile r 90.0))
    (us (percentile r 99.0))
    (us (percentile r 99.9))
    (us (max_ns r))

let to_json t =
  let entries =
    List.map
      (fun (name, r) -> Printf.sprintf "    %S: {%s}" name (json_fields r))
      (to_alist t)
  in
  "{\n" ^ String.concat ",\n" entries ^ "\n  }"
