(** Named monotonic counters, gauges and power-of-two-bucket
    distributions, grouped in a registry.

    Registration (a hashtable lookup) happens once, at subsystem create
    time; the handle a subsystem holds is a bare mutable record, so a
    hot-path bump is a single store.  Counters are cheap enough to stay
    always-on; only the event tracer is gated.

    {b Ownership rule (multi-domain use).}  A registry is single-writer:
    exactly one domain registers into and bumps a given registry, and it
    must finish registering every name before other domains start
    reading.  The multi-domain serve path therefore keeps one registry
    per domain (dispatcher plus one per worker) and aggregates with
    {!merged}, which sums without locks.  Cross-domain reads are safe —
    OCaml ints are word-sized, no tearing — but only eventually
    consistent: a snapshot may lag each owner by a few bumps. *)

(** A monotonically increasing integer metric. *)
type counter

(** A last-write-wins float metric. *)
type gauge

(** A histogram with power-of-two buckets: bucket [i] counts
    observations in [[2{^i-1}, 2{^i})]. *)
type dist

(** A registered metric, as returned by {!find}. *)
type metric = Counter of counter | Gauge of gauge | Dist of dist

(** The registry: a name-keyed table of metrics. *)
type t

(** [create ()] — an empty registry. *)
val create : unit -> t

(** [counter t name] — the counter registered under [name], creating it
    at 0 on first use.  Raises [Invalid_argument] if [name] is already a
    gauge or dist. *)
val counter : t -> string -> counter

(** [gauge t name] — the gauge registered under [name], creating it at
    0.0 on first use.  Raises [Invalid_argument] on a kind clash. *)
val gauge : t -> string -> gauge

(** [dist t name] — the distribution registered under [name], created
    empty on first use.  Raises [Invalid_argument] on a kind clash. *)
val dist : t -> string -> dist

(** [incr c] adds 1. *)
val incr : counter -> unit

(** [add c n] adds [n]. *)
val add : counter -> int -> unit

(** [count c] — current value. *)
val count : counter -> int

(** [set g v] overwrites the gauge. *)
val set : gauge -> float -> unit

(** [value g] — current gauge reading. *)
val value : gauge -> float

(** [observe d v] records one observation (negative values clamp
    to 0). *)
val observe : dist -> int -> unit

(** [dist_count d] — number of observations. *)
val dist_count : dist -> int

(** [dist_mean d] — mean observation, [nan] when empty. *)
val dist_mean : dist -> float

(** [dist_max d] — largest observation, 0 when empty. *)
val dist_max : dist -> int

(** [dist_sum d] — sum of all observations. *)
val dist_sum : dist -> int

(** [dist_buckets d] — a copy of the bucket counts; bucket [i] covers
    [[2{^i-1}, 2{^i})].  For exporters ({!Expo}) and tests. *)
val dist_buckets : dist -> int array

(** [find t name] — lookup by name, for tests and generic dumps. *)
val find : t -> string -> metric option

(** [find_count t name] — a counter's value by name; a missing (or
    non-counter) name reads as 0, so assertions and dashboards need no
    option plumbing. *)
val find_count : t -> string -> int

(** [to_alist t] — every registered metric, sorted by name. *)
val to_alist : t -> (string * metric) list

(** [merged ts] — a fresh registry aggregating every registry in [ts]:
    counters and distributions sum (bucket-wise, with max-of-max),
    gauges sum — per-domain queue depths add up to the system total.
    This is the lock-free snapshot helper for per-domain registries; see
    the ownership rule above for its consistency guarantee.  Raises
    [Invalid_argument] when two registries disagree on a name's metric
    kind. *)
val merged : t list -> t

(** [dump t] — plain-text rendering of the whole registry, one metric
    per line (distributions list their non-empty buckets). *)
val dump : t -> string
