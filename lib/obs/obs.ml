(* The observability context threaded through a scheduler run: one
   event tracer plus one metric registry.  [disabled ()] gives the
   zero-cost default — a null tracer (one branch per would-be record,
   no allocation) and a private registry nobody reads; subsystems can
   therefore register and bump unconditionally.

   The fixed-interval time-series sampler lives alongside, but is owned
   by the run driver (Tq_sched.Experiment) because only it knows the
   sampling clock; see [Experiment.run ?obs]. *)

type t = {
  trace : Trace.t;
  counters : Counters.t;
  sample_interval_ns : int;  (** time-series sampling period (virtual time) *)
}

let create ?(trace_capacity = 65_536) ?(sample_interval_ns = 10_000) () =
  {
    trace = Trace.create ~capacity:trace_capacity ();
    counters = Counters.create ();
    sample_interval_ns;
  }

let disabled () =
  { trace = Trace.null; counters = Counters.create (); sample_interval_ns = 10_000 }

(* Counters without tracing: what a worker domain threads through
   subsystems that take an [?obs] — its per-domain registry stays live
   while the (single-threaded) tracer stays null. *)
let of_counters counters =
  { trace = Trace.null; counters; sample_interval_ns = 10_000 }
