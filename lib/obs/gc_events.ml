(* OCaml 5 Runtime_events consumer: GC pauses as first-class telemetry.

   The wall-clock-gap stall detector in Tq_runtime sees that a worker
   lost its core; it cannot say to whom.  This module recovers the
   runtime's own side of the story: a background systhread self-monitors
   the process through [Runtime_events] (the always-compiled OCaml 5
   tracing ring), pairs EV_MINOR / EV_MAJOR begin/end callbacks into
   pause spans per domain, and publishes three things —

   - spans on the per-domain [Event.Gc] lanes, merged into the Perfetto
     timeline next to the worker lanes they explain;
   - counters/distributions (gc.minor_pauses, gc.minor_pause_ns, ...)
     in a registry of its own, rendered by the Stats RPC like any other;
   - a per-domain cumulative pause clock ([self_pause_ns]) that the
     scheduler's stall detector reads to attribute a wall-clock gap to
     GC vs everything else.

   Clock domains: Runtime_events stamps events from the monotonic
   clock, spans use wall time ([Unix.gettimeofday]).  [start] calibrates
   a single mono->wall offset by forcing a minor collection bracketed by
   two wall readings and matching it to the first pause event polled —
   good to a few microseconds, plenty for timeline alignment.

   Ownership: the consumer thread is the single writer of the registry,
   the Gc-lane sinks and the begin-slot arrays; the cumulative pause
   clocks are Atomics because worker domains read them mid-quantum.
   Ring ids index the arrays directly; with the serve path's
   spawn-once domain layout they coincide with [Domain.self] ids, which
   is what makes [self_pause_ns] work (documented caveat in the mli). *)

(* Runtime_events supports at most 128 live domains. *)
let max_domains = 128

type t = {
  spans : Span.t;
  counters : Counters.t;
  minor_pauses : Counters.counter;
  major_pauses : Counters.counter;
  events_lost : Counters.counter;
  minor_pause_ns : Counters.dist;
  major_pause_ns : Counters.dist;
  pause_cum : int Atomic.t array;  (** per-domain cumulative pause ns *)
  sinks : Span.sink option array;  (** lazily registered, consumer-owned *)
  minor_begin : int array;  (** mono ns of open EV_MINOR, -1 when none *)
  major_begin : int array;
  mutable offset_ns : int;  (** mono ns + offset = wall ns *)
  mutable calibrated : bool;
  stop_flag : bool Atomic.t;
  mutable thread : Thread.t option;
}

let wall_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
let mono_of_ts ts = Int64.to_int (Runtime_events.Timestamp.to_int64 ts)

let counters t = t.counters
let spans t = t.spans

let domain_pause_ns t dom =
  if dom < 0 || dom >= max_domains then 0 else Atomic.get t.pause_cum.(dom)

let self_pause_ns t = domain_pause_ns t (Domain.self () :> int)

let sink_for t dom =
  let dom = dom land (max_domains - 1) in
  match t.sinks.(dom) with
  | Some s -> s
  | None ->
      let s = Span.register t.spans (Event.Gc dom) in
      t.sinks.(dom) <- Some s;
      s

let on_pause t dom ~major ~begin_mono ~end_mono =
  let dur = end_mono - begin_mono in
  if dur >= 0 && dom >= 0 && dom < max_domains then begin
    Atomic.set t.pause_cum.(dom) (Atomic.get t.pause_cum.(dom) + dur);
    if major then begin
      Counters.incr t.major_pauses;
      Counters.observe t.major_pause_ns dur
    end
    else begin
      Counters.incr t.minor_pauses;
      Counters.observe t.minor_pause_ns dur
    end;
    if Span.enabled t.spans then
      Span.record (sink_for t dom) ~req_id:(-1)
        ~phase:(if major then Span.Gc_major else Span.Gc_minor)
        ~start_ns:(begin_mono + t.offset_ns) ~dur_ns:dur ~arg:dom
  end

let consumer_callbacks t =
  let runtime_begin dom ts phase =
    let dom = dom land (max_domains - 1) in
    match phase with
    | Runtime_events.EV_MINOR -> t.minor_begin.(dom) <- mono_of_ts ts
    | Runtime_events.EV_MAJOR -> t.major_begin.(dom) <- mono_of_ts ts
    | _ -> ()
  in
  let runtime_end dom ts phase =
    let dom = dom land (max_domains - 1) in
    match phase with
    | Runtime_events.EV_MINOR ->
        if t.minor_begin.(dom) >= 0 then begin
          on_pause t dom ~major:false ~begin_mono:t.minor_begin.(dom)
            ~end_mono:(mono_of_ts ts);
          t.minor_begin.(dom) <- -1
        end
    | Runtime_events.EV_MAJOR ->
        if t.major_begin.(dom) >= 0 then begin
          on_pause t dom ~major:true ~begin_mono:t.major_begin.(dom)
            ~end_mono:(mono_of_ts ts);
          t.major_begin.(dom) <- -1
        end
    | _ -> ()
  in
  let lost_events _dom n = Counters.add t.events_lost n in
  Runtime_events.Callbacks.create ~runtime_begin ~runtime_end ~lost_events ()

(* Pair one forced minor collection's mono stamp with the wall clock
   bracketing it.  The cursor is drained first so the matched event is
   ours, not a leftover from startup. *)
let calibrate cursor =
  let drain = Runtime_events.Callbacks.create () in
  let rec flush () =
    if Runtime_events.read_poll cursor drain None > 0 then flush ()
  in
  flush ();
  let w0 = wall_ns () in
  Gc.minor ();
  let w1 = wall_ns () in
  let seen = ref None in
  let cb =
    Runtime_events.Callbacks.create
      ~runtime_end:(fun _dom ts phase ->
        if phase = Runtime_events.EV_MINOR && !seen = None then
          seen := Some (mono_of_ts ts))
      ()
  in
  let attempts = ref 0 in
  while !seen = None && !attempts < 50 do
    ignore (Runtime_events.read_poll cursor cb None);
    if !seen = None then Thread.delay 0.001;
    incr attempts
  done;
  match !seen with
  | Some mono -> Some (((w0 + w1) / 2) - mono)
  | None -> None

let start ?(spans = Span.null) ?(poll_interval_s = 0.001) () =
  Runtime_events.start ();
  let cursor = Runtime_events.create_cursor None in
  let counters = Counters.create () in
  let t =
    {
      spans;
      counters;
      minor_pauses = Counters.counter counters "gc.minor_pauses";
      major_pauses = Counters.counter counters "gc.major_pauses";
      events_lost = Counters.counter counters "gc.events_lost";
      minor_pause_ns = Counters.dist counters "gc.minor_pause_ns";
      major_pause_ns = Counters.dist counters "gc.major_pause_ns";
      pause_cum = Array.init max_domains (fun _ -> Atomic.make 0);
      sinks = Array.make max_domains None;
      minor_begin = Array.make max_domains (-1);
      major_begin = Array.make max_domains (-1);
      offset_ns = 0;
      calibrated = false;
      stop_flag = Atomic.make false;
      thread = None;
    }
  in
  (match calibrate cursor with
  | Some off ->
      t.offset_ns <- off;
      t.calibrated <- true
  | None -> ());
  let callbacks = consumer_callbacks t in
  let loop () =
    while not (Atomic.get t.stop_flag) do
      ignore (Runtime_events.read_poll cursor callbacks None);
      Thread.delay poll_interval_s
    done;
    (* Final drain so pauses up to the stop point make the trace. *)
    ignore (Runtime_events.read_poll cursor callbacks None);
    Runtime_events.free_cursor cursor
  in
  t.thread <- Some (Thread.create loop ());
  t

let calibrated t = t.calibrated

let stop t =
  match t.thread with
  | None -> ()
  | Some th ->
      Atomic.set t.stop_flag true;
      Thread.join th;
      t.thread <- None
