(** Per-request stage decomposition of the live serve path — where the
    milliseconds go.

    Folds a merged {!Span} stream into per-stage latency histograms by
    telescoping consecutive request boundaries (parse start, dispatch
    decision, ring pickup, quanta, reply pop), all stamped from the
    same wall clock:

    {v
    parse -> dispatch -> ring_hop -> first_run_wait
          -> service -> preempt_overhead -> reply_flush
    v}

    Because every stage is a difference of consecutive boundary stamps,
    a decomposed request's stages sum to its sojourn {e exactly} — the
    invariant behind the Stats RPC breakdown view, [tq_load
    --breakdown] and the committed BENCH_breakdown.json.  Requests with
    overwritten, out-of-order or missing spans degrade to an
    [unattributed] bucket (never an exception); shed requests get a
    [shed] stage; accepts are connection-scoped and excluded from the
    per-request sum. *)

(** A per-request pipeline stage, in order. *)
type stage =
  | S_parse  (** decode + classify + admission, parse start to dispatch start *)
  | S_dispatch  (** worker choice + ring push *)
  | S_ring_hop  (** sitting in the dispatcher->worker SPSC ring *)
  | S_first_run_wait  (** in the worker's run queue before the first quantum *)
  | S_service  (** sum of quantum durations actually running *)
  | S_preempt_overhead  (** gaps between consecutive quanta (requeue waits) *)
  | S_reply_flush  (** last quantum end to dispatcher reply pop *)

(** [stage_name s] — stable lower-case name (JSON keys, table rows,
    Prometheus [class] label). *)
val stage_name : stage -> string

(** Every stage, in pipeline order. *)
val stages : stage list

(** [stage_names] = [List.map stage_name stages]. *)
val stage_names : string list

(** A completed decomposition. *)
type t

(** [of_records records] decomposes a merged span stream (see
    {!Span.merge}); total over all requests found in it.  Never
    raises on malformed streams. *)
val of_records : Span.record list -> t

(** [request_stages records] — per-request exact decompositions: for
    every request in the stream whose boundaries telescope cleanly, its
    id and the seven stage values in pipeline order (summing to the
    request's sojourn exactly).  Requests that would land in the
    unattributed bucket are omitted.  What {!Tail} uses to attach an
    exact stage breakdown to each retained slow request. *)
val request_stages : Span.record list -> (int * (stage * int) list) list

(** [latency t] — the per-stage recorders keyed by {!stage_name} plus
    ["sojourn"], ["shed"] and ["unattributed"]; feed to
    {!Expo.render_latency} for the per-stage Prometheus series. *)
val latency : t -> Latency.t

(** [requests t] — requests fully decomposed into stages. *)
val requests : t -> int

(** [exact t] — decomposed requests whose stage sum equals their
    sojourn to the nanosecond. *)
val exact : t -> int

(** [exact_fraction t] — [exact / requests], 1.0 when empty. *)
val exact_fraction : t -> float

(** [sheds t] — requests that landed in the [shed] stage. *)
val sheds : t -> int

(** [unattributed_count t] — requests degraded to the unattributed
    bucket (overwritten / out-of-order / partial spans). *)
val unattributed_count : t -> int

(** [incomplete t] — requests still in flight at snapshot time. *)
val incomplete : t -> int

(** [accepts t] — connection accepts seen (excluded from request sums). *)
val accepts : t -> int

(** [stage_count t s] — samples recorded into stage [s]. *)
val stage_count : t -> stage -> int

(** [stage_sum_ns t s] — total nanoseconds attributed to stage [s]. *)
val stage_sum_ns : t -> stage -> int

(** [sum_rel_error t] — | total stage sum - total sojourn | / total
    sojourn over all decomposed requests (0 when empty). *)
val sum_rel_error : t -> float

(** [invariant_ok t] — every decomposed request telescoped exactly and
    the aggregate error is under 1%. *)
val invariant_ok : t -> bool

(** [to_json t] — the BENCH_breakdown.json document: schema header,
    invariant counters, per-stage count/percentiles/sum/share. *)
val to_json : t -> string

(** [render t] — the [tq_load --breakdown] table: one row per stage
    with count, p50/p90/p99 (µs), total ms and share of sojourn. *)
val render : t -> string
