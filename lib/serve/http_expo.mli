(** A minimal HTTP/1.1 exposition sidecar for the live server: the
    plain-text plane scrapers and humans expect next to the binary RPC
    plane.

    Serves exactly three GET endpoints, each rendered by a callback the
    caller supplies (so the listener knows nothing about the server):

    - [/metrics] — Prometheus text exposition
      ([text/plain; version=0.0.4]), wired to {!Server.prometheus};
    - [/outliers] — the tail-forensics dossiers as JSON, wired to
      {!Server.outliers_json};
    - [/healthz] — liveness: [200 ok] while the health callback answers
      [true], [503 draining] after.

    One accept thread plus one short-lived thread per connection;
    every response carries [Connection: close].  This is a
    control-plane sidecar with scrape-rate traffic — it never touches
    the RPC data path, its threads never block a lane or a worker. *)

type t

(** [start ?host ~port ~metrics ~outliers ~healthz ()] binds (default
    loopback; [port = 0] picks an ephemeral port, see {!port}), starts
    the accept thread and returns immediately.  The callbacks run on
    per-connection threads and must therefore be thread-safe — the
    {!Server} render views are.  Raises [Unix.Unix_error] on e.g. a
    busy port. *)
val start :
  ?host:string ->
  port:int ->
  metrics:(unit -> string) ->
  outliers:(unit -> string) ->
  healthz:(unit -> bool) ->
  unit ->
  t

(** The actually bound port — the [port] given to {!start} unless that
    was 0. *)
val port : t -> int

(** [stop t] closes the listening socket and joins the accept thread;
    idempotent.  In-flight per-connection threads finish their single
    response on their own. *)
val stop : t -> unit
