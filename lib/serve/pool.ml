(* A lock-free pool of fixed-size byte buffers for the reply framing
   hot path.

   Workers acquire a buffer, encode a response frame into it, and ship
   it across the reply ring; the owning dispatcher lane blits the frame
   into the connection's write accumulator and releases the buffer.
   Acquire and release therefore happen on different domains, so the
   free list is a Treiber stack over [Atomic.compare_and_set] — the GC
   makes the classic ABA hazard moot (a popped cons cell is never
   recycled while another thread still holds a reference to it).

   The win is minor-GC pressure: a pooled frame is one long-lived
   [Bytes] reused for the server's lifetime instead of a fresh
   allocation per reply (the PR 6 breakdown showed reply framing and
   flushing at ~74% of sojourn on a shared core).  Each release still
   conses one list cell; that is three words against a frame buffer's
   hundreds. *)

type t = {
  buf_bytes : int;
  max_pooled : int;
  free : bytes list Atomic.t;
  pooled : int Atomic.t;  (* approximate stack depth, governs discards *)
  scrub : bool;
  hits : int Atomic.t;
  misses : int Atomic.t;
  oversize : int Atomic.t;
  discarded : int Atomic.t;
}

let create ?(max_pooled = 1024) ?(scrub = false) ~buf_bytes () =
  if buf_bytes < 64 then invalid_arg "Pool.create: buf_bytes must be >= 64";
  if max_pooled < 0 then invalid_arg "Pool.create: max_pooled must be >= 0";
  {
    buf_bytes;
    max_pooled;
    free = Atomic.make [];
    pooled = Atomic.make 0;
    scrub;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    oversize = Atomic.make 0;
    discarded = Atomic.make 0;
  }

let buf_bytes t = t.buf_bytes

let rec pop t =
  match Atomic.get t.free with
  | [] -> None
  | b :: rest as old ->
      if Atomic.compare_and_set t.free old rest then begin
        Atomic.decr t.pooled;
        Some b
      end
      else pop t

let acquire t ~len =
  if len < 0 then invalid_arg "Pool.acquire: negative length";
  if len > t.buf_bytes then begin
    (* Oversize frames (multi-MB stats bodies) fall back to an exact
       fresh allocation; [release] recognises and drops them. *)
    Atomic.incr t.oversize;
    Bytes.create len
  end
  else
    match pop t with
    | Some b ->
        Atomic.incr t.hits;
        b
    | None ->
        Atomic.incr t.misses;
        Bytes.create t.buf_bytes

let rec push t b =
  let old = Atomic.get t.free in
  if not (Atomic.compare_and_set t.free old (b :: old)) then push t b
  else Atomic.incr t.pooled

let release t b =
  if Bytes.length b <> t.buf_bytes || Atomic.get t.pooled >= t.max_pooled then
    (* wrong size (an oversize fallback) or the pool is full: let the
       GC have it — correctness never depends on a successful return *)
    Atomic.incr t.discarded
  else begin
    if t.scrub then Bytes.fill b 0 t.buf_bytes '\000';
    push t b
  end

let pooled t = Atomic.get t.pooled
let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let oversize t = Atomic.get t.oversize
let discarded t = Atomic.get t.discarded

let fill_counters t reg =
  let c name v = Tq_obs.Counters.set (Tq_obs.Counters.gauge reg name) (float_of_int v) in
  c "serve.pool.pooled" (pooled t);
  c "serve.pool.hits" (hits t);
  c "serve.pool.misses" (misses t);
  c "serve.pool.oversize" (oversize t);
  c "serve.pool.discarded" (discarded t)
