(** Open-loop load generator for {!Server} (the [tq_load] engine).

    Arrivals are a Poisson process at [rate_rps], spread round-robin
    over [connections] pipelined connections — open loop, as in the
    paper's evaluation (and LibPreemptible's harness): a slow server
    does {e not} slow the generator down, it just grows the generator's
    outbound queues, so tail latencies reflect queueing honestly.

    The run has a warmup window (responses ignored for recording),
    then a measurement window (per-class wall-clock latencies into a
    {!Tq_obs.Latency} registry), then a grace period draining
    still-outstanding responses.  Latency is measured send-to-response
    per request id; requests are matched by the ids the server
    echoes. *)

(** Request mix, sampled per arrival. *)
type mix = {
  echo : float;  (** weight of spin-echo requests *)
  kv : float;  (** weight of KV requests *)
  tpcc : float;  (** weight of TPC-C transactions *)
  echo_heavy : float;
      (** weight of *heavy* spin-echo requests — same unkeyed echo
          class, [echo_heavy_spin_ns] of service.  A small weight with
          a large spin makes the offered load heavy-tailed, the shape
          that strands backlog behind one worker and that idle-time
          work stealing ([--steal on]) redistributes *)
  echo_spin_ns : int;  (** server-side spin per echo request *)
  echo_heavy_spin_ns : int;  (** server-side spin per heavy echo request *)
  kv_set_fraction : float;  (** SETs among KV requests (rest are GETs) *)
  kv_keys : int;  (** keyspace size; must not exceed the server's *)
}

(** 70% echo (1 us spin), 25% KV (30% sets), 5% TPC-C, 1024 keys, no
    heavy echoes. *)
val default_mix : mix

type config = {
  host : string;
  port : int;
  connections : int;
  rate_rps : float;
  warmup_s : float;
  measure_s : float;
  grace_s : float;  (** post-window wait for outstanding responses *)
  seed : int64;
  mix : mix;
  slo : Tq_obs.Slo.objective list;
      (** latency/goodput objectives evaluated live over a sliding
          window; empty means monitor {!Tq_obs.Slo.default_objective} *)
  stats_interval_s : float option;
      (** [Some s]: poll the server's Stats RPC every [s] seconds over a
          dedicated connection, collecting the JSON snapshots in
          [stats_polls] *)
  dashboard : bool;
      (** render a live ANSI dashboard to stderr (SLO burn rates, the
          goodput window and achieved throughput as
          {!Tq_util.Ascii_chart} curves) *)
  server_lanes : int;
      (** the dispatcher lane count the target server was started with
          ([tq_serve --lanes]); pure report metadata so emitted
          BENCH/CI JSON is self-describing — the generator's behavior
          does not depend on it *)
}

(** Loopback, 8 connections, 0.5 s warmup, 2 s measurement, 2 s grace,
    [default_mix], no stats polling or dashboard, [server_lanes = 1];
    [rate_rps] has no default — choose the offered load. *)
val default_config : rate_rps:float -> port:int -> config

type result = {
  sent : int;  (** requests sent over the whole run *)
  received : int;  (** responses of any status *)
  ok : int;
  shed : int;  (** admission rejections *)
  errors : int;  (** handler failures *)
  measured_sent : int;  (** sent inside the measurement window *)
  measured_ok : int;  (** their [Ok] responses *)
  throughput_rps : float;  (** [measured_ok] over the window *)
  latency : Tq_obs.Latency.t;
      (** per-class (["echo"], ["kv_get"], ...) plus ["all"]; [Ok]
          responses to measured sends only *)
  outstanding : int;  (** unanswered when the grace period ended *)
  slo_reports : Tq_obs.Slo.report list;
      (** final sliding-window verdict per objective (every response
          observed, warmup included) *)
  stats_polls : (float * string) list;
      (** Stats-RPC JSON snapshots, (seconds since start, body), when
          [stats_interval_s] was set *)
}

(** [run config] executes one load-generation session (blocking; wall
    clock). *)
val run : config -> result

(** [to_json ?outliers config result] — the single-run benchmark report
    ([tq_load --json], the CI serve-smoke artifact): offered vs
    achieved rate, loss/shed accounting, lane metadata and the
    per-class latency ladder.  [outliers], when given, is spliced in
    verbatim as the ["outliers"] field — pass the server's
    [Stats_outliers] body ([tq_load --outliers N]) to embed the
    slow-request dossiers in the report.  (The committed
    [BENCH_serve.json] is the lane-{e sweep} report, emitted by
    [bench/main.exe --serve-bench], which embeds these runs.) *)
val to_json : ?outliers:string -> config -> result -> string
