(* One dispatcher lane of the multi-lane I/O plane.

   A lane is a self-contained copy of the classic dispatcher loop: it
   polls the shared listener (accept spreading hands it an even share
   of connections), owns those connections outright, steers their
   parsed requests into its own slice of the worker pool, polls its
   slice's reply rings and flushes responses back.  Nothing on the
   per-request path crosses lanes, so every lane-local structure —
   connection table, pending table, tallies, counter registry, latency
   registry, span sink — is single-writer plain mutable state, exactly
   as in the single-dispatcher design.

   The worker pool is shared but partitioned: lane [l] of [L] owns
   workers [w] with [w mod L = l], preserving the SPSC contract (one
   producer per dispatch ring) with zero coordination.  Three things
   are deliberately global and cross-lane-safe: the pool's atomic
   counters (JSQ, in-flight backpressure), the quantum cells the
   feedback controller actuates, and the buffer pool (a lock-free
   Treiber stack).  Cross-lane *reads* of a lane's tallies (the Stats
   RPC, [Server.stats]) see word-sized plain loads: never torn, only
   eventually consistent — and exact once the lane's domain has been
   joined. *)

module Parallel = Tq_runtime.Parallel
module Spsc_ring = Tq_runtime.Spsc_ring
module Admission = Tq_sched.Admission
module Counters = Tq_obs.Counters
module Span = Tq_obs.Span
module Tail = Tq_obs.Tail
module Event = Tq_obs.Event
module Latency = Tq_obs.Latency
module Reassembly = Protocol.Reassembly
module Outbuf = Protocol.Outbuf

(* Reply-ring payload: connection, span/request id, request class,
   dispatch stamp, worker-side completion stamp (0 when spans are off),
   and the encoded frame as a pooled buffer plus its live length. *)
type reply = {
  r_cid : int;
  r_sid : int;
  r_class : int;
  r_t0 : int;
  r_done : int;
  r_buf : bytes;  (* pooled: the lane releases it after blitting *)
  r_len : int;
}

type shared = {
  pool : Parallel.t;
  apps : App.t array;
  reply_rings : reply Spsc_ring.t array;  (* indexed by worker *)
  bufs : Pool.t;
  listener : Listener.t;
  stop_flag : bool Atomic.t;
  paused_until_ns : int Atomic.t;
  spans : Span.t;
  spans_on : bool;
  tail : Tail.t;
  tail_on : bool;
  lanes : int;
  rx_depth : int;
  drain_timeout_s : float;
  heartbeat_interval_ns : int;
  missed_heartbeats : int;
  ctl_latency_ns : int;
}

type conn = {
  fd : Unix.file_descr;
  cid : int;
  rb : Reassembly.t;
  wb : Outbuf.t;
  mutable alive : bool;
}

(* [parsed] is deliberately NOT a stored tally: every parsed
   request-work frame lands in exactly one of [t_dispatched] /
   [t_shed], so [counts] derives it from the same two loads it
   reports — which keeps the [parsed = dispatched + shed] identity
   exact even for a Stats render racing this lane's dispatch path
   (three independently-updated cells could be observed mid-bump).
   The same discipline covers the acceptance ledger: [accepted] is
   [dispatched] by definition (admission happens before the tally) and
   [in_flight] is derived in [Server.set_gauges] from the same loads,
   so [accepted = completed + lost + dropped + in_flight] is exact in
   every render.  [t_lost] is stamped once at lane exit (requests still
   pending after the drain deadline — dead-worker leftovers);
   [t_dropped] is the structural reserve for a future queue-drop path,
   0 today. *)
type tallies = {
  mutable t_connections : int;
  mutable t_dispatched : int;
  mutable t_completed : int;
  mutable t_shed : int;
  mutable t_lost : int;
  mutable t_dropped : int;
  mutable t_stats_served : int;
  mutable t_protocol_errors : int;
  mutable t_orphaned : int;
  mutable t_duplicates : int;
  mutable t_redispatched : int;
  mutable t_dead_workers : int;
}

type counts = {
  connections : int;
  parsed : int;
  dispatched : int;
  completed : int;
  shed : int;
  lost : int;
  dropped : int;
  stats_served : int;
  protocol_errors : int;
  orphaned : int;
  duplicates : int;
  redispatched : int;
  dead_workers : int;
}

(* One admitted-but-unanswered request, keyed by span id: everything
   needed to re-dispatch to another worker in the slice if its current
   one is declared dead.  First reply retires the entry; replies that
   find no entry are duplicates and are dropped with a count. *)
type pending = {
  p_cid : int;
  p_req_id : int;
  p_req : Protocol.request;
  p_class : int;
  p_t0 : int;
  mutable p_worker : int;
  (* controller / queue state sampled at dispatch, for tail dossiers
     (all zero / -1 when tail sampling is off) *)
  p_quantum_ns : int;
  p_cap : int;
  p_inject : int;
  p_deque : int;
}

type t = {
  sh : shared;
  id : int;
  slice : int array;  (* global worker indices this lane dispatches to *)
  conns : (int, conn) Hashtbl.t;
  pending : (int, pending) Hashtbl.t;
  tallies : tallies;
  reg : Counters.t;
  sink : Span.sink;
  tail_sink : Tail.sink;
  latency : Latency.t;
  lat_all : Latency.recorder;
  lat_class : Latency.recorder array;
  adm : Admission.t;
  c_dispatched : Counters.counter;
  c_completed : Counters.counter;
  c_shed : Counters.counter;
  c_stats_served : Counters.counter;
  c_dispatched_by : Counters.counter array;
  c_completed_by : Counters.counter array;
  c_shed_by : Counters.counter array;
  d_sojourn : Counters.dist;
  c_duplicates : Counters.counter;
  c_redispatched : Counters.counter;
  c_workers_dead : Counters.counter;
  ctl_completed : int array;  (* cumulative per-class, controller sensing *)
  ctl_good : int array;
  ctl_shed : int array;
  hb_beats : int array;  (* by slice position *)
  hb_missed : int array;
  mutable hb_next_ns : int;
  mutable render_stats : (Protocol.stats_view -> (string, string) result) option;
  mutable tick_hook : (now_ns:int -> unit) option;
  mutable next_cid : int;  (* strided: start [id], step [lanes] *)
  mutable next_sid : int;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let per_class f =
  Array.init Protocol.class_count (fun i -> f (Protocol.class_name i))

let create sh ~id ~reg ~admission =
  let slice =
    Array.of_seq
      (Seq.filter
         (fun w -> w mod sh.lanes = id)
         (Seq.init (Parallel.workers sh.pool) Fun.id))
  in
  if Array.length slice = 0 then invalid_arg "Lane.create: empty worker slice";
  let latency = Latency.create () in
  {
    sh;
    id;
    slice;
    conns = Hashtbl.create 64;
    pending = Hashtbl.create 1024;
    tallies =
      {
        t_connections = 0;
        t_dispatched = 0;
        t_completed = 0;
        t_shed = 0;
        t_lost = 0;
        t_dropped = 0;
        t_stats_served = 0;
        t_protocol_errors = 0;
        t_orphaned = 0;
        t_duplicates = 0;
        t_redispatched = 0;
        t_dead_workers = 0;
      };
    reg;
    sink = Span.register sh.spans (Event.Dispatcher id);
    tail_sink = Tail.register sh.tail ~lane:id;
    latency;
    lat_all = Latency.recorder latency "all";
    lat_class = per_class (fun name -> Latency.recorder latency name);
    adm = Admission.create admission;
    c_dispatched = Counters.counter reg "serve.dispatched";
    c_completed = Counters.counter reg "serve.completed";
    c_shed = Counters.counter reg "serve.shed";
    c_stats_served = Counters.counter reg "serve.stats_served";
    c_dispatched_by = per_class (fun n -> Counters.counter reg ("serve.dispatched." ^ n));
    c_completed_by = per_class (fun n -> Counters.counter reg ("serve.completed." ^ n));
    c_shed_by = per_class (fun n -> Counters.counter reg ("serve.shed." ^ n));
    d_sojourn = Counters.dist reg "serve.sojourn_ns";
    c_duplicates = Counters.counter reg "serve.duplicates";
    c_redispatched = Counters.counter reg "serve.redispatched";
    c_workers_dead = Counters.counter reg "serve.workers_dead";
    ctl_completed = Array.make Protocol.class_count 0;
    ctl_good = Array.make Protocol.class_count 0;
    ctl_shed = Array.make Protocol.class_count 0;
    hb_beats = Array.make (Array.length slice) (-1);
    hb_missed = Array.make (Array.length slice) 0;
    hb_next_ns = 0;
    render_stats = None;
    tick_hook = None;
    next_cid = id;
    next_sid = id;
  }

let id t = t.id
let registry t = t.reg
let latency t = t.latency
let admission t = t.adm
let open_conns t = Hashtbl.length t.conns
let set_stats_renderer t f = t.render_stats <- Some f
let set_tick t f = t.tick_hook <- Some f

let counts t =
  let s = t.tallies in
  let dispatched = s.t_dispatched in
  let shed = s.t_shed in
  {
    connections = s.t_connections;
    parsed = dispatched + shed;
    dispatched;
    completed = s.t_completed;
    shed;
    lost = s.t_lost;
    dropped = s.t_dropped;
    stats_served = s.t_stats_served;
    protocol_errors = s.t_protocol_errors;
    orphaned = s.t_orphaned;
    duplicates = s.t_duplicates;
    redispatched = s.t_redispatched;
    dead_workers = s.t_dead_workers;
  }

let in_flight t = t.tallies.t_dispatched - t.tallies.t_completed
let span_dropped t = Span.sink_dropped t.sink

let ctl_counts t ~class_idx =
  (t.ctl_completed.(class_idx), t.ctl_good.(class_idx), t.ctl_shed.(class_idx))

(* {2 Connection lifecycle} *)

let close_conn t conn =
  if conn.alive then begin
    conn.alive <- false;
    Hashtbl.remove t.conns conn.cid;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let adopt_fd t fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let cid = t.next_cid in
  t.next_cid <- cid + t.sh.lanes;
  Hashtbl.replace t.conns cid
    { fd; cid; rb = Reassembly.create (); wb = Outbuf.create (); alive = true };
  t.tallies.t_connections <- t.tallies.t_connections + 1;
  if t.sh.spans_on then
    Span.record t.sink ~req_id:(-1) ~phase:Span.Accept ~start_ns:(now_ns ())
      ~dur_ns:0 ~arg:cid

(* Dispatcher-side responses (shed verdicts, stats bodies) go through
   the same pooled zero-copy path as worker replies. *)
let add_response t conn resp =
  let len = Protocol.response_frame_len resp in
  let buf = Pool.acquire t.sh.bufs ~len in
  let n = Protocol.encode_response_into buf ~off:0 resp in
  Outbuf.add_bytes conn.wb buf ~off:0 ~len:n;
  Pool.release t.sh.bufs buf

let shed_response t conn req_id =
  add_response t conn { Protocol.req_id; status = Protocol.Shed; body = "" }

(* Stats requests are introspection, answered synchronously on the lane
   that owns the connection: they must work during overload (when
   admission sheds request work) and must not perturb the accounting
   they report.  The rendering itself is a server-level closure — it
   merges every lane's view. *)
let serve_stats t conn req_id view =
  t.tallies.t_stats_served <- t.tallies.t_stats_served + 1;
  Counters.incr t.c_stats_served;
  let body =
    match t.render_stats with
    | Some render -> render view
    | None -> Error "stats renderer not wired"
  in
  let resp =
    match body with
    | Error msg -> { Protocol.req_id; status = Protocol.Error msg; body = "" }
    | Ok body ->
        if String.length body <= Protocol.max_frame_bytes - 16 then
          { Protocol.req_id; status = Protocol.Ok; body }
        else
          { Protocol.req_id; status = Protocol.Error "stats body too large"; body = "" }
  in
  add_response t conn resp

(* {2 Dispatch} *)

(* The worker-side closure for one request: execute on the running
   worker's app, encode into a pooled buffer, push onto that worker's
   reply ring.  The app and ring are resolved from the [wid] the pool
   passes at execution time, never captured at placement: a stolen job
   runs against the thief's app and pushes the thief's own reply ring,
   which keeps every reply ring single-producer — and, because steals
   are bounded to the lane slice, the ring is still one this lane
   polls.  (Keyed requests are pinned at dispatch and so always run
   where placed.) *)
let make_job t ~sid ~cid ~class_idx ~t0 ~req_id req =
  let apps = t.sh.apps in
  let rings = t.sh.reply_rings in
  let bufs = t.sh.bufs in
  let spans_on = t.sh.spans_on in
  fun ~wid ->
    let app = apps.(wid) in
    let ring = rings.(wid) in
    let resp = App.execute app ~now_ns:(now_ns ()) ~req_id req in
    let len = Protocol.response_frame_len resp in
    let buf = Pool.acquire bufs ~len in
    let n = Protocol.encode_response_into buf ~off:0 resp in
    let reply =
      {
        r_cid = cid;
        r_sid = sid;
        r_class = class_idx;
        r_t0 = t0;
        r_done = (if spans_on then now_ns () else 0);
        r_buf = buf;
        r_len = n;
      }
    in
    if not (Spsc_ring.try_push ring reply) then begin
      let backoff = Tq_runtime.Backoff.create () in
      while not (Spsc_ring.try_push ring reply) do
        Tq_runtime.Backoff.once backoff
      done
    end

let shed t conn ~p0 ~class_idx req_id =
  t.tallies.t_shed <- t.tallies.t_shed + 1;
  Counters.incr t.c_shed;
  Counters.incr t.c_shed_by.(class_idx);
  t.ctl_shed.(class_idx) <- t.ctl_shed.(class_idx) + 1;
  if t.sh.spans_on then
    Span.record t.sink ~req_id:(-1) ~phase:Span.Shed ~start_ns:p0
      ~dur_ns:(max 0 (now_ns () - p0))
      ~arg:class_idx;
  shed_response t conn req_id

(* [p0] is the parse-start stamp from [parse_frames] (0 when spans are
   off): the request's first boundary.  A dispatched request gets a
   per-request [Parse] span [p0, t0) under its span id so the stage
   decomposition can telescope from the very first touch; a shed
   request gets a [Shed] span covering [p0, decision). *)
let dispatch t conn ~p0 req_id req =
  let class_idx = Protocol.class_of_request req in
  let pool_load = Parallel.in_flight t.sh.pool in
  let admitted =
    Parallel.alive_in t.sh.pool ~workers:t.slice > 0
    && pool_load < t.sh.rx_depth
    && Admission.admit t.adm ~in_system:pool_load
  in
  if not admitted then shed t conn ~p0 ~class_idx req_id
  else begin
    let key = Protocol.steering_key req in
    let w =
      match key with
      | Some key ->
          (* Keyed steering inside the slice, unless the home worker
             died — consistency yields to availability (its store is
             gone anyway).  Keys are consistent per lane, and a client
             connection sticks to one lane for its lifetime; see the
             DESIGN.md caveat on cross-lane key placement. *)
          let w = t.slice.(Hashtbl.hash key mod Array.length t.slice) in
          if Parallel.worker_alive t.sh.pool ~worker:w then w
          else Parallel.pick_in t.sh.pool ~workers:t.slice
      | None -> Parallel.pick_in t.sh.pool ~workers:t.slice
    in
    let sid = t.next_sid in
    let cid = conn.cid in
    (* Tail forensics samples the controller and queue state the
       request saw at dispatch — quantum in force for its class, the
       admission cap, and the chosen worker's inject/deque depths —
       so a slow request's dossier can say what the plane looked like
       when it was placed.  Guarded: the disabled path reads no state. *)
    let q_ns, cap, inj, deq =
      if t.sh.tail_on then
        ( Parallel.quantum_ns t.sh.pool ~class_idx (),
          (match Admission.policy t.adm with
          | Admission.Queue_limit { max_in_system } -> max_in_system
          | Admission.Accept_all | Admission.Ewma_sojourn _ -> -1),
          Parallel.inject_depth t.sh.pool ~worker:w,
          Parallel.deque_depth t.sh.pool ~worker:w )
      else (0, -1, 0, 0)
    in
    let t0 = now_ns () in
    let job = make_job t ~sid ~cid ~class_idx ~t0 ~req_id req in
    (* Keyed requests pin: their per-worker KV store lives only on the
       steered worker, so a thief must never relocate them. *)
    if
      Parallel.submit_to t.sh.pool ~tag:sid ~class_idx ~pinned:(key <> None)
        ~worker:w job
    then begin
      t.next_sid <- sid + t.sh.lanes;
      t.tallies.t_dispatched <- t.tallies.t_dispatched + 1;
      Counters.incr t.c_dispatched;
      Counters.incr t.c_dispatched_by.(class_idx);
      Hashtbl.replace t.pending sid
        {
          p_cid = cid;
          p_req_id = req_id;
          p_req = req;
          p_class = class_idx;
          p_t0 = t0;
          p_worker = w;
          p_quantum_ns = q_ns;
          p_cap = cap;
          p_inject = inj;
          p_deque = deq;
        };
      if t.sh.spans_on then begin
        Span.record t.sink ~req_id:sid ~phase:Span.Parse ~start_ns:p0
          ~dur_ns:(max 0 (t0 - p0)) ~arg:conn.cid;
        Span.record t.sink ~req_id:sid ~phase:Span.Dispatch ~start_ns:t0
          ~dur_ns:(now_ns () - t0) ~arg:w
      end
    end
    else
      (* the chosen core's ring is full: backpressure, shed at the door *)
      shed t conn ~p0 ~class_idx req_id
  end

let rec parse_frames t conn =
  if conn.alive then
    match Reassembly.next conn.rb with
    | Error _ ->
        t.tallies.t_protocol_errors <- t.tallies.t_protocol_errors + 1;
        close_conn t conn
    | Ok None -> ()
    | Ok (Some payload) -> (
        let p0 = if t.sh.spans_on then now_ns () else 0 in
        match Protocol.decode_request payload with
        | Error _ ->
            t.tallies.t_protocol_errors <- t.tallies.t_protocol_errors + 1;
            close_conn t conn
        | Ok (req_id, req) ->
            (match req with
            | Protocol.Stats { view } -> serve_stats t conn req_id view
            | _ -> dispatch t conn ~p0 req_id req);
            parse_frames t conn)

let accept_new t progress =
  match Listener.poll t.sh.listener ~lane:t.id with
  | [] -> ()
  | fds ->
      progress := true;
      List.iter (adopt_fd t) fds

let read_conn t chunk progress conn =
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> close_conn t conn
  | n ->
      progress := true;
      Reassembly.add conn.rb chunk n;
      parse_frames t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_conn t conn

let conn_list t = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []

let poll_replies t progress =
  Array.iter
    (fun w ->
      let ring = t.sh.reply_rings.(w) in
      let rec go () =
        match Spsc_ring.try_pop ring with
        | None -> ()
        | Some reply ->
            progress := true;
            (match Hashtbl.find_opt t.pending reply.r_sid with
            | None ->
                (* Already answered by a re-dispatched copy (the original
                   worker finished after being declared dead).  Count and
                   drop — the client saw exactly one response. *)
                t.tallies.t_duplicates <- t.tallies.t_duplicates + 1;
                Counters.incr t.c_duplicates
            | Some p -> (
                Hashtbl.remove t.pending reply.r_sid;
                t.tallies.t_completed <- t.tallies.t_completed + 1;
                Counters.incr t.c_completed;
                Counters.incr t.c_completed_by.(reply.r_class);
                let now = now_ns () in
                let sojourn = now - reply.r_t0 in
                Admission.note_completion t.adm ~sojourn_ns:sojourn;
                Counters.observe t.d_sojourn sojourn;
                Latency.record t.lat_all sojourn;
                Latency.record t.lat_class.(reply.r_class) sojourn;
                t.ctl_completed.(reply.r_class) <- t.ctl_completed.(reply.r_class) + 1;
                if sojourn <= t.sh.ctl_latency_ns then
                  t.ctl_good.(reply.r_class) <- t.ctl_good.(reply.r_class) + 1;
                if t.sh.spans_on then
                  (* worker push -> lane pop-and-buffer: the reply ring
                     hop plus write buffering, the request's last leg *)
                  Span.record t.sink ~req_id:reply.r_sid ~phase:Span.Reply_flush
                    ~start_ns:reply.r_done
                    ~dur_ns:(max 0 (now - reply.r_done))
                    ~arg:reply.r_cid;
                if t.sh.tail_on then
                  (* [w] is the ring owner, i.e. the worker that
                     actually executed the request (a stolen job pushes
                     the thief's ring) — the dossier names the real
                     executor, not the placement choice *)
                  Tail.offer t.tail_sink ~now_ns:now ~seq:reply.r_sid
                    ~class_idx:reply.r_class ~worker:w ~sojourn_ns:sojourn
                    ~t0_ns:reply.r_t0 ~quantum_ns:p.p_quantum_ns ~cap:p.p_cap
                    ~inject_depth:p.p_inject ~deque_depth:p.p_deque;
                match Hashtbl.find_opt t.conns reply.r_cid with
                | Some conn ->
                    Outbuf.add_bytes conn.wb reply.r_buf ~off:0 ~len:reply.r_len
                | None -> t.tallies.t_orphaned <- t.tallies.t_orphaned + 1));
            Pool.release t.sh.bufs reply.r_buf;
            go ()
      in
      go ())
    t.slice

let flush_conn t progress conn =
  if not (Outbuf.is_empty conn.wb) then begin
    let buf, off, len = Outbuf.peek conn.wb in
    match Unix.write conn.fd buf off len with
    | n ->
        if n > 0 then progress := true;
        Outbuf.consume conn.wb n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> close_conn t conn
  end

let pending_writes t =
  Hashtbl.fold (fun _ c acc -> acc || not (Outbuf.is_empty c.wb)) t.conns false

let reply_rings_empty t =
  Array.for_all (fun w -> Spsc_ring.length t.sh.reply_rings.(w) = 0) t.slice

let slice_in_flight t =
  Array.fold_left
    (fun acc w -> acc + Parallel.worker_in_flight t.sh.pool ~worker:w)
    0 t.slice

(* Block on socket readiness only when this lane's whole pipeline is
   quiet.  With work in flight the lane polls, like the paper's
   dedicated dispatcher core — but through a spin-then-park backoff, so
   on a machine where lanes and workers share cores a reply-less poll
   round hands the core to the workers (see {!Tq_runtime.Backoff}).
   The select timeout also bounds cross-lane accept-handoff latency. *)
let idle_wait t backoff =
  if slice_in_flight t = 0 && reply_rings_empty t && not (pending_writes t) then begin
    let fds = List.map (fun c -> c.fd) (conn_list t) in
    let fds =
      if Listener.is_open t.sh.listener then Listener.fd t.sh.listener :: fds
      else fds
    in
    match Unix.select fds [] [] 0.02 with
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ()
  end
  else Tq_runtime.Backoff.once backoff

(* {2 Worker health: heartbeats, death verdicts, re-dispatch}

   Per-lane over the lane's own slice: requests stranded on a worker
   declared dead are re-submitted to living slice workers under their
   original span id, so the client still gets exactly one response (the
   duplicate filter in [poll_replies] absorbs any race with a
   not-quite-dead original).  A full replacement ring leaves the entry
   in [pending] for the next heartbeat round. *)

let redispatch_orphans t =
  if t.tallies.t_dead_workers > 0 && Parallel.alive_in t.sh.pool ~workers:t.slice > 0
  then begin
    let orphans =
      Hashtbl.fold
        (fun sid p acc ->
          if not (Parallel.worker_alive t.sh.pool ~worker:p.p_worker) then
            (sid, p) :: acc
          else acc)
        t.pending []
    in
    List.iter
      (fun (sid, p) ->
        let w = Parallel.pick_in t.sh.pool ~workers:t.slice in
        let job =
          make_job t ~sid ~cid:p.p_cid ~class_idx:p.p_class ~t0:p.p_t0
            ~req_id:p.p_req_id p.p_req
        in
        if
          Parallel.submit_to t.sh.pool ~tag:sid ~class_idx:p.p_class
            ~pinned:(Protocol.steering_key p.p_req <> None)
            ~worker:w job
        then begin
          p.p_worker <- w;
          t.tallies.t_redispatched <- t.tallies.t_redispatched + 1;
          Counters.incr t.c_redispatched
        end)
      orphans
  end

(* Progress-based liveness: a worker that made no loop pass across a
   whole heartbeat window while holding work is suspect; after
   [missed_heartbeats] consecutive suspect windows it is declared dead
   and its pending requests move.  Idle workers always beat, so quiet
   periods never accumulate misses. *)
let heartbeat_check t ~now =
  if t.sh.heartbeat_interval_ns > 0 && now >= t.hb_next_ns then begin
    t.hb_next_ns <- now + t.sh.heartbeat_interval_ns;
    Array.iteri
      (fun i w ->
        if Parallel.worker_alive t.sh.pool ~worker:w then begin
          let b = Parallel.beats t.sh.pool ~worker:w in
          if b = t.hb_beats.(i) && Parallel.worker_in_flight t.sh.pool ~worker:w > 0
          then begin
            t.hb_missed.(i) <- t.hb_missed.(i) + 1;
            if t.hb_missed.(i) >= t.sh.missed_heartbeats then begin
              ignore (Parallel.mark_dead t.sh.pool ~worker:w : int);
              t.tallies.t_dead_workers <- t.tallies.t_dead_workers + 1;
              Counters.incr t.c_workers_dead
            end
          end
          else t.hb_missed.(i) <- 0;
          t.hb_beats.(i) <- b
        end)
      t.slice;
    redispatch_orphans t
  end

(* {2 The lane loop} *)

let run t =
  (* the latency recorders were created on the thread that built the
     server; this lane's domain records into them from here on *)
  Latency.adopt t.lat_all;
  Array.iter Latency.adopt t.lat_class;
  let chunk = Bytes.create 65536 in
  let stopping = ref false in
  let stop_deadline = ref infinity in
  let running = ref true in
  let backoff = Tq_runtime.Backoff.create () in
  while !running do
    let progress = ref false in
    let now = now_ns () in
    (match t.tick_hook with Some f -> f ~now_ns:now | None -> ());
    if (not !stopping) && Atomic.get t.sh.stop_flag then begin
      (* Graceful drain: no new connections, no new frames; everything
         already dispatched still completes and flushes.  The first
         lane to notice closes the shared listener (idempotent). *)
      stopping := true;
      stop_deadline := Unix.gettimeofday () +. t.sh.drain_timeout_s;
      Listener.close t.sh.listener
    end;
    if now < Atomic.get t.sh.paused_until_ns then ()
      (* dispatcher outage (fault hook): nothing moves on any lane — no
         accepts, no replies, no heartbeat verdicts — exactly like a
         wedged dispatcher thread; workers keep serving their rings *)
    else begin
      heartbeat_check t ~now;
      if not !stopping then begin
        accept_new t progress;
        List.iter (fun c -> read_conn t chunk progress c) (conn_list t)
      end;
      poll_replies t progress;
      List.iter (fun c -> flush_conn t progress c) (conn_list t);
      if !stopping then begin
        let drained = in_flight t = 0 in
        if drained && not (pending_writes t) then running := false
        else if Unix.gettimeofday () > !stop_deadline then begin
          (* Unresponsive clients: finishing dispatched work is still
             unconditional — only their unflushed bytes are abandoned. *)
          Parallel.drain t.sh.pool;
          poll_replies t progress;
          running := false
        end
      end
    end;
    if !progress then Tq_runtime.Backoff.reset backoff
    else if !running then idle_wait t backoff
  done;
  (* Anything still pending after the drain gave up is lost for good
     (dead-worker leftovers whose re-dispatch never landed): stamp it
     so the acceptance ledger closes — accepted = completed + lost +
     dropped + in_flight, with in_flight 0 once every lane exits. *)
  t.tallies.t_lost <- Hashtbl.length t.pending;
  List.iter (fun c -> close_conn t c) (conn_list t)
