(** A shared nonblocking listening socket with round-robin accept
    spreading across dispatcher lanes.

    All lanes poll the one listener fd; an atomic ticket assigns each
    accepted connection an owning lane, so connection load spreads
    evenly regardless of which lane's accept(2) wins the kernel race.
    A lane that accepts a connection it does not own hands the fd to
    the owner through a small mutex-protected inbox; owners collect
    handoffs on their next poll pass.  Handoff latency is bounded by
    the lanes' readiness-loop timeout (tens of milliseconds at full
    idle), which only affects connection setup — never the per-request
    path. *)

type t

(** [create ~host ~port ~lanes] binds, listens (backlog 128) and sets
    the socket nonblocking.  [port] 0 asks the kernel for an ephemeral
    port — read it back with {!port}.  Raises [Invalid_argument] when
    [lanes < 1]; [Unix.Unix_error] propagates from bind. *)
val create : host:string -> port:int -> lanes:int -> t

(** The bound port (resolved when created with port 0). *)
val port : t -> int

(** The listening fd, for inclusion in a lane's readiness select. *)
val fd : t -> Unix.file_descr

(** Number of lanes connections are spread over. *)
val lanes : t -> int

(** [poll t ~lane] accepts every ready connection, deals each an owner
    by round-robin ticket, hands non-[lane] fds to their owners' inboxes
    and returns the fds [lane] now owns (self-accepted plus handed-off;
    already nonblocking).  Safe to call concurrently from every lane.
    Returns whatever the inbox holds even after {!close}. *)
val poll : t -> lane:int -> Unix.file_descr list

(** [close t] closes the listener and any handed-off-but-undrained fds.
    Idempotent and safe from any lane; lanes racing in accept or select
    observe EBADF and treat it as shutdown. *)
val close : t -> unit

(** [is_open t] — [false] once {!close} ran. *)
val is_open : t -> bool

(** Total connections accepted since creation. *)
val accepted : t -> int

(** Accepted connections that crossed lanes through an inbox (the rest
    were self-owned on accept). *)
val handed_off : t -> int
