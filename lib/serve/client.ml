type t = {
  fd : Unix.file_descr;
  rb : Protocol.Reassembly.t;
  chunk : bytes;
  mutable next_id : int;
}

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  { fd; rb = Protocol.Reassembly.create (); chunk = Bytes.create 65536; next_id = 0 }

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let send t ~req_id req =
  let b = Buffer.create 64 in
  Protocol.encode_request b ~req_id req;
  write_all t.fd (Buffer.contents b)

let rec recv t =
  match Protocol.Reassembly.next t.rb with
  | Error msg -> failwith ("Client.recv: " ^ msg)
  | Ok (Some payload) -> (
      match Protocol.decode_response payload with
      | Ok resp -> resp
      | Error msg -> failwith ("Client.recv: " ^ msg))
  | Ok None -> (
      match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
      | 0 -> raise End_of_file
      | n ->
          Protocol.Reassembly.add t.rb t.chunk n;
          recv t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv t)

let call t req =
  let req_id = t.next_id in
  t.next_id <- req_id + 1;
  send t ~req_id req;
  recv t

let stats ?(view = Protocol.Stats_json) t =
  match call t (Protocol.Stats { view }) with
  | { Protocol.status = Protocol.Ok; body; _ } -> body
  | { Protocol.status = Protocol.Error msg; _ } ->
      failwith ("Client.stats: server error: " ^ msg)
  | { Protocol.status = Protocol.Shed; _ } ->
      (* the server never sheds Stats; a Shed here is a protocol bug *)
      failwith "Client.stats: unexpected Shed"

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
