(* A shared nonblocking listening socket with accept spreading.

   Every dispatcher lane polls the one listener; accepted connections
   are dealt out round-robin by an atomic ticket so load spreads evenly
   no matter which lane's accept(2) happens to win the race.  A lane
   that accepts a connection it does not own pushes the fd onto the
   owner's inbox (Mutex + Queue — handoff is rare and cold compared to
   the per-request path, so a lock is the right tool); each lane drains
   its inbox on every poll pass.

   The kernel serializes concurrent accepts on one fd, so losers just
   see EAGAIN.  Close is idempotent and safe from any lane: a CAS picks
   the single closer, and lanes treat EBADF from a racing accept or
   select as shutdown. *)

type t = {
  fd : Unix.file_descr;
  port : int;
  lanes : int;
  rr : int Atomic.t;  (* round-robin ticket for ownership assignment *)
  inboxes : (Mutex.t * Unix.file_descr Queue.t) array;
  open_ : bool Atomic.t;
  accepted : int Atomic.t;
  handed_off : int Atomic.t;
}

let create ~host ~port ~lanes =
  if lanes < 1 then invalid_arg "Listener.create: lanes must be >= 1";
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind fd addr
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  {
    fd;
    port;
    lanes;
    rr = Atomic.make 0;
    inboxes = Array.init lanes (fun _ -> (Mutex.create (), Queue.create ()));
    open_ = Atomic.make true;
    accepted = Atomic.make 0;
    handed_off = Atomic.make 0;
  }

let port t = t.port
let fd t = t.fd
let lanes t = t.lanes
let accepted t = Atomic.get t.accepted
let handed_off t = Atomic.get t.handed_off

let push_inbox t ~lane fd =
  let m, q = t.inboxes.(lane) in
  Mutex.lock m;
  Queue.push fd q;
  Mutex.unlock m

let drain_inbox t ~lane acc =
  let m, q = t.inboxes.(lane) in
  Mutex.lock m;
  let fds = Queue.fold (fun acc fd -> fd :: acc) acc q in
  Queue.clear q;
  Mutex.unlock m;
  fds

(* Accept everything ready, assign each fd an owner by ticket, keep our
   own and hand off the rest; then collect what other lanes handed us.
   Returns the fds [lane] now owns (most recent first — callers treat
   the list as a set). *)
let poll t ~lane =
  if lane < 0 || lane >= t.lanes then invalid_arg "Listener.poll: bad lane";
  let mine = ref [] in
  let continue = ref (Atomic.get t.open_) in
  while !continue do
    match Unix.accept ~cloexec:true t.fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        Atomic.incr t.accepted;
        let owner = Atomic.fetch_and_add t.rr 1 mod t.lanes in
        if owner = lane then mine := fd :: !mine
        else begin
          Atomic.incr t.handed_off;
          push_inbox t ~lane:owner fd
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _)
      ->
        continue := false
    | exception Unix.Unix_error ((EBADF | EINVAL), _, _) ->
        (* another lane closed the listener under us: shutdown *)
        continue := false
  done;
  drain_inbox t ~lane !mine

let close t =
  if Atomic.compare_and_set t.open_ true false then begin
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    (* orphaned handoffs would leak fds; nobody will drain them now *)
    Array.iter
      (fun (m, q) ->
        Mutex.lock m;
        Queue.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) q;
        Queue.clear q;
        Mutex.unlock m)
      t.inboxes
  end

let is_open t = Atomic.get t.open_
