(** A lock-free pool of fixed-size byte buffers for reply framing.

    The multi-lane serve plane encodes each response into a pooled
    [Bytes] on the worker domain, ships it over the reply ring, and the
    owning dispatcher lane blits it into the connection's write
    accumulator and returns it here — so the framing hot path reuses a
    small set of long-lived buffers instead of allocating per reply,
    cutting minor-GC pressure where the PR 6 stage breakdown showed the
    time going (reply framing/flush ~74% of sojourn on a shared core).

    The free list is a Treiber stack over [Atomic.compare_and_set]:
    acquire and release are safe from any domain, lock-free, and ABA is
    a non-issue under OCaml's GC.  Correctness never depends on the
    pool: a miss allocates fresh, an oversize request falls back to an
    exact allocation, and a release the pool cannot take is simply
    dropped for the GC to collect. *)

type t

(** [create ?max_pooled ?scrub ~buf_bytes ()] — a pool of buffers of
    exactly [buf_bytes] bytes (must be at least 64), keeping at most
    [max_pooled] (default 1024) on the free list.  With [scrub] (debug;
    default off) every released buffer is zeroed before reuse, so any
    read past a frame's encoded length shows as zeros instead of stale
    bytes — the property the cross-request-bleed test pins down.
    Raises [Invalid_argument] on nonsensical parameters. *)
val create : ?max_pooled:int -> ?scrub:bool -> buf_bytes:int -> unit -> t

(** The fixed buffer size this pool hands out. *)
val buf_bytes : t -> int

(** [acquire t ~len] — a buffer with room for [len] bytes: a pooled
    (or fresh) [buf_bytes]-sized buffer when [len] fits, an exact fresh
    allocation otherwise.  Contents are unspecified (stale unless the
    pool scrubs) — the caller must track its own encoded length and
    never read past it.  Raises [Invalid_argument] on a negative
    [len]. *)
val acquire : t -> len:int -> bytes

(** [release t b] returns [b] to the free list.  Buffers of the wrong
    size (oversize fallbacks) and releases beyond [max_pooled] are
    dropped silently.  Never release a buffer still referenced
    elsewhere — the next {!acquire} may hand it to another request. *)
val release : t -> bytes -> unit

(** Buffers currently on the free list (approximate under concurrent
    traffic). *)
val pooled : t -> int

(** Acquires served from the free list. *)
val hits : t -> int

(** Acquires that had to allocate a fresh pool-sized buffer. *)
val misses : t -> int

(** Acquires larger than [buf_bytes], served by exact fresh
    allocations. *)
val oversize : t -> int

(** Releases dropped (wrong size or pool full). *)
val discarded : t -> int

(** [fill_counters t reg] publishes the pool statistics as
    [serve.pool.*] gauges into [reg] — call with a render-local registry
    when building a metrics exposition. *)
val fill_counters : t -> Tq_obs.Counters.t -> unit
