(* The dispatcher core: owns all sockets, steers parsed requests into
   the persistent worker pool, and writes completed responses back.
   Workers never touch a socket; the dispatcher never runs request
   work — the paper's two-level split mapped onto Unix. *)

module Parallel = Tq_runtime.Parallel
module Spsc_ring = Tq_runtime.Spsc_ring
module Admission = Tq_sched.Admission
module Counters = Tq_obs.Counters
module Obs = Tq_obs.Obs
module Span = Tq_obs.Span
module Event = Tq_obs.Event
module Latency = Tq_obs.Latency
module Expo = Tq_obs.Expo
module Profile = Tq_obs.Profile
module Gc_events = Tq_obs.Gc_events
module Reassembly = Protocol.Reassembly

type config = {
  host : string;
  port : int;
  workers : int;
  quantum_ns : int;
  ring_capacity : int;
  rx_depth : int;
  admission : Admission.policy;
  kv_keys : int;
  seed : int64;
  drain_timeout_s : float;
  adaptive : Tq_control.Controller.config option;
  heartbeat_interval_s : float;
  missed_heartbeats : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 4;
    quantum_ns = 100_000;
    ring_capacity = 256;
    rx_depth = 1024;
    admission = Admission.Accept_all;
    kv_keys = 1024;
    seed = 42L;
    drain_timeout_s = 5.0;
    adaptive = None;
    heartbeat_interval_s = 0.05;
    missed_heartbeats = 4;
  }

type stats = {
  connections : int;
  parsed : int;
  dispatched : int;
  completed : int;
  shed : int;
  stats_served : int;
  protocol_errors : int;
  orphaned : int;
  duplicates : int;
  redispatched : int;
  dead_workers : int;
}

type conn = {
  fd : Unix.file_descr;
  cid : int;
  rb : Reassembly.t;
  wb : Buffer.t;
  mutable wb_off : int;
  mutable alive : bool;
}

(* Mutable tallies, only ever written by the dispatcher thread; other
   threads of the same domain may read them (systhreads interleave under
   the domain lock, so plain loads are coherent there). *)
type tallies = {
  mutable t_connections : int;
  mutable t_parsed : int;
  mutable t_dispatched : int;
  mutable t_completed : int;
  mutable t_shed : int;
  mutable t_stats_served : int;
  mutable t_protocol_errors : int;
  mutable t_orphaned : int;
  mutable t_duplicates : int;
  mutable t_redispatched : int;
  mutable t_dead_workers : int;
}

(* Reply-ring payload: connection, span/request id, request class,
   dispatch stamp, worker-side completion stamp (0 when spans are off),
   encoded response frame. *)
type reply = {
  r_cid : int;
  r_sid : int;
  r_class : int;
  r_t0 : int;
  r_done : int;
  r_frame : bytes;
}

(* One admitted-but-unanswered request, keyed by span id in [pending].
   Carries everything needed to re-dispatch the request to another
   worker if its current one is declared dead — the request itself (a
   decoded frame is immutable), its class and timing stamps.  The first
   reply for a span id retires the entry; replies that find no entry
   are duplicates (the original worker finished after all, racing its
   replacement) and are dropped with a count. *)
type pending = {
  p_cid : int;
  p_req_id : int;
  p_req : Protocol.request;
  p_class : int;
  p_t0 : int;
  mutable p_worker : int;
}

type t = {
  config : config;
  listener : Unix.file_descr;
  mutable listener_open : bool;
  port : int;
  pool : Parallel.t;
  apps : App.t array;
  reply_rings : reply Spsc_ring.t array;
  adm : Admission.t;
  conns : (int, conn) Hashtbl.t;
  stop_flag : bool Atomic.t;
  tallies : tallies;
  disp_reg : Counters.t;  (** dispatcher-owned registry ([serve.*]) *)
  worker_regs : Counters.t array;  (** one per worker domain ([runtime.*]) *)
  spans : Span.t;
  disp_sink : Span.sink;
  spans_on : bool;
  gc : Gc_events.t option;
  latency : Latency.t;
  lat_all : Latency.recorder;
  lat_class : Latency.recorder array;
  c_parsed : Counters.counter;
  c_dispatched : Counters.counter;
  c_completed : Counters.counter;
  c_shed : Counters.counter;
  c_stats_served : Counters.counter;
  c_parsed_by : Counters.counter array;
  c_dispatched_by : Counters.counter array;
  c_completed_by : Counters.counter array;
  c_shed_by : Counters.counter array;
  g_in_flight : Counters.gauge;
  g_open_conns : Counters.gauge;
  g_workers : Counters.gauge;
  g_ring_occupancy : Counters.gauge;
  d_sojourn : Counters.dist;
  c_duplicates : Counters.counter;
  c_redispatched : Counters.counter;
  c_workers_dead : Counters.counter;
  pending : (int, pending) Hashtbl.t;
  ctl : Tq_control.Controller.t option;
  ctl_latency_ns : int;  (** the controller objective's "good" cutoff *)
  ctl_completed : int array;  (** cumulative per-class, controller sensing *)
  ctl_good : int array;
  ctl_shed : int array;
  mutable ctl_next_ns : int;
  hb_beats : int array;  (** last sampled heartbeat per worker *)
  hb_missed : int array;  (** consecutive no-progress heartbeat windows *)
  mutable hb_next_ns : int;
  mutable paused_until_ns : int;  (** fault hook: dispatcher does nothing *)
  mutable tick_hook : (now_ns:int -> unit) option;
  mutable next_cid : int;
  mutable next_sid : int;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let per_class f =
  Array.init Protocol.class_count (fun i -> f (Protocol.class_name i))

let create ?(obs = Obs.disabled ()) ?(spans = Span.null) ?gc config =
  if config.workers < 1 then invalid_arg "Server.create: need at least one worker";
  if config.rx_depth < 1 then invalid_arg "Server.create: rx_depth must be positive";
  let listener = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
  Unix.listen listener 128;
  Unix.set_nonblock listener;
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let reg = obs.Obs.counters in
  let worker_regs = Array.init config.workers (fun _ -> Counters.create ()) in
  let latency = Latency.create () in
  let ctl = Option.map (Tq_control.Controller.create ~obs) config.adaptive in
  let t =
  {
    config;
    listener;
    listener_open = true;
    port;
    pool =
      Parallel.create ~workers:config.workers ~quantum_ns:config.quantum_ns
        ~ring_capacity:config.ring_capacity ~classes:Protocol.class_count ~spans
        ~worker_counters:worker_regs
        ?gc_pause_ns:(Option.map (fun g () -> Gc_events.self_pause_ns g) gc)
        ();
    apps =
      Array.init config.workers (fun i ->
          App.create ~kv_keys:config.kv_keys
            ~seed:(Int64.add config.seed (Int64.of_int i))
            ());
    reply_rings =
      Array.init config.workers (fun _ ->
          Spsc_ring.create ~capacity:(max 1024 (4 * config.ring_capacity)));
    adm = Admission.create config.admission;
    conns = Hashtbl.create 64;
    stop_flag = Atomic.make false;
    tallies =
      {
        t_connections = 0;
        t_parsed = 0;
        t_dispatched = 0;
        t_completed = 0;
        t_shed = 0;
        t_stats_served = 0;
        t_protocol_errors = 0;
        t_orphaned = 0;
        t_duplicates = 0;
        t_redispatched = 0;
        t_dead_workers = 0;
      };
    disp_reg = reg;
    worker_regs;
    spans;
    disp_sink = Span.register spans (Event.Dispatcher 0);
    spans_on = Span.enabled spans;
    gc;
    latency;
    lat_all = Latency.recorder latency "all";
    lat_class = per_class (fun name -> Latency.recorder latency name);
    c_parsed = Counters.counter reg "serve.parsed";
    c_dispatched = Counters.counter reg "serve.dispatched";
    c_completed = Counters.counter reg "serve.completed";
    c_shed = Counters.counter reg "serve.shed";
    c_stats_served = Counters.counter reg "serve.stats_served";
    c_parsed_by = per_class (fun n -> Counters.counter reg ("serve.parsed." ^ n));
    c_dispatched_by = per_class (fun n -> Counters.counter reg ("serve.dispatched." ^ n));
    c_completed_by = per_class (fun n -> Counters.counter reg ("serve.completed." ^ n));
    c_shed_by = per_class (fun n -> Counters.counter reg ("serve.shed." ^ n));
    g_in_flight = Counters.gauge reg "serve.in_flight";
    g_open_conns = Counters.gauge reg "serve.open_connections";
    g_workers = Counters.gauge reg "serve.alive_workers";
    g_ring_occupancy = Counters.gauge reg "serve.ring_occupancy";
    d_sojourn = Counters.dist reg "serve.sojourn_ns";
    c_duplicates = Counters.counter reg "serve.duplicates";
    c_redispatched = Counters.counter reg "serve.redispatched";
    c_workers_dead = Counters.counter reg "serve.workers_dead";
    pending = Hashtbl.create 1024;
    ctl;
    ctl_latency_ns =
      (match ctl with
      | Some c ->
          (Tq_control.Controller.config c).Tq_control.Controller.objective
            .Tq_obs.Slo.latency_ns
      | None -> max_int);
    ctl_completed = Array.make Protocol.class_count 0;
    ctl_good = Array.make Protocol.class_count 0;
    ctl_shed = Array.make Protocol.class_count 0;
    ctl_next_ns = 0;
    hb_beats = Array.make config.workers (-1);
    hb_missed = Array.make config.workers 0;
    hb_next_ns = 0;
    paused_until_ns = 0;
    tick_hook = None;
    next_cid = 0;
    next_sid = 0;
  }
  in
  (* Move the knobs to the controller's initial operating point before
     any request is admitted, so the loop starts from a known state. *)
  (match ctl with
  | None -> ()
  | Some c ->
      List.iter
        (function
          | Tq_control.Controller.Set_quantum { class_idx; quantum_ns } ->
              Parallel.set_quantum t.pool ?class_idx ~quantum_ns ()
          | Tq_control.Controller.Set_shed_limit { max_in_system } ->
              Admission.set_policy t.adm (Admission.Queue_limit { max_in_system }))
        (Tq_control.Controller.initial_actions c));
  t

let port t = t.port
let stop t = Atomic.set t.stop_flag true

let stats t =
  let s = t.tallies in
  {
    connections = s.t_connections;
    parsed = s.t_parsed;
    dispatched = s.t_dispatched;
    completed = s.t_completed;
    shed = s.t_shed;
    stats_served = s.t_stats_served;
    protocol_errors = s.t_protocol_errors;
    orphaned = s.t_orphaned;
    duplicates = s.t_duplicates;
    redispatched = s.t_redispatched;
    dead_workers = s.t_dead_workers;
  }

let in_flight t = t.tallies.t_dispatched - t.tallies.t_completed
let spans t = t.spans
let latency t = t.latency

(* {2 Live metrics snapshot} *)

let refresh_gauges t =
  Counters.set t.g_in_flight (float_of_int (in_flight t));
  Counters.set t.g_open_conns (float_of_int (Hashtbl.length t.conns));
  Counters.set t.g_workers (float_of_int (Parallel.alive_workers t.pool));
  let occ = ref 0 in
  for w = 0 to Parallel.workers t.pool - 1 do
    occ := !occ + Parallel.ring_depth t.pool ~worker:w
  done;
  Counters.set t.g_ring_occupancy (float_of_int !occ)

(* Everything, one registry: dispatcher serve.* merged with the workers'
   runtime.* (lock-free eventually-consistent reads; see the Counters
   ownership rule). *)
let gc_registries t =
  match t.gc with None -> [] | Some g -> [ Gc_events.counters g ]

let merged_counters t =
  refresh_gauges t;
  Counters.merged ((t.disp_reg :: Array.to_list t.worker_regs) @ gc_registries t)

let snapshot_json t =
  refresh_gauges t;
  let s = t.tallies in
  let merged = Counters.merged (Array.to_list t.worker_regs) in
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"connections\": %d,\n  \"open_connections\": %d,\n  \"parsed\": %d,\n  \
        \"dispatched\": %d,\n  \"completed\": %d,\n  \"shed\": %d,\n  \
        \"stats_served\": %d,\n  \"protocol_errors\": %d,\n  \"orphaned\": %d,\n  \
        \"duplicates\": %d,\n  \"redispatched\": %d,\n  \"dead_workers\": %d,\n  \
        \"in_flight\": %d,\n  \"workers\": %d,\n  \"alive_workers\": %d,\n  \
        \"ring_occupancy\": %d,\n"
       s.t_connections (Hashtbl.length t.conns) s.t_parsed s.t_dispatched
       s.t_completed s.t_shed s.t_stats_served s.t_protocol_errors s.t_orphaned
       s.t_duplicates s.t_redispatched s.t_dead_workers (in_flight t)
       (Parallel.workers t.pool)
       (Parallel.alive_workers t.pool)
       (int_of_float (Counters.value t.g_ring_occupancy)));
  (match t.ctl with
  | None -> ()
  | Some c ->
      Buffer.add_string b
        (Printf.sprintf "  \"control\": %s,\n" (Tq_control.Controller.state_json c)));
  Buffer.add_string b "  \"per_class\": {\n";
  for i = 0 to Protocol.class_count - 1 do
    Buffer.add_string b
      (Printf.sprintf
         "    %S: {\"parsed\": %d, \"dispatched\": %d, \"completed\": %d, \"shed\": \
          %d}%s\n"
         (Protocol.class_name i)
         (Counters.count t.c_parsed_by.(i))
         (Counters.count t.c_dispatched_by.(i))
         (Counters.count t.c_completed_by.(i))
         (Counters.count t.c_shed_by.(i))
         (if i = Protocol.class_count - 1 then "" else ","))
  done;
  Buffer.add_string b "  },\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"runtime\": {\"quanta\": %d, \"yields\": %d, \"completions\": %d, \
        \"stalls\": %d},\n"
       (Counters.find_count merged "runtime.quanta")
       (Counters.find_count merged "runtime.yields")
       (Counters.find_count merged "runtime.completions")
       (Counters.find_count merged "runtime.stalls"));
  (match t.gc with
  | None -> ()
  | Some g ->
      let greg = Gc_events.counters g in
      Buffer.add_string b
        (Printf.sprintf
           "  \"gc\": {\"minor_pauses\": %d, \"major_pauses\": %d, \"events_lost\": \
            %d, \"stall_gc\": %d, \"stall_other\": %d},\n"
           (Counters.find_count greg "gc.minor_pauses")
           (Counters.find_count greg "gc.major_pauses")
           (Counters.find_count greg "gc.events_lost")
           (Counters.find_count merged "runtime.stall_gc")
           (Counters.find_count merged "runtime.stall_other")));
  (if t.spans_on then
     Buffer.add_string b
       (Printf.sprintf "  \"spans\": {\"total\": %d, \"dropped\": %d},\n"
          (Span.total t.spans) (Span.dropped t.spans)));
  Buffer.add_string b
    (Printf.sprintf "  \"latency\": %s\n}\n" (Latency.to_json t.latency));
  Buffer.contents b

let breakdown t = Profile.of_records (Span.merge t.spans)

let prometheus t =
  refresh_gauges t;
  let registries =
    ([ ("role", "dispatcher") ], t.disp_reg)
    :: List.mapi
         (fun i reg -> ([ ("role", "worker"); ("worker", string_of_int i) ], reg))
         (Array.to_list t.worker_regs)
    @ (match t.gc with
      | None -> []
      | Some g -> [ ([ ("role", "gc") ], Gc_events.counters g) ])
  in
  Expo.render registries
  (* per-class HDR latency; named apart from the serve.sojourn_ns
     power-of-two dist, which already renders as tq_serve_sojourn_ns *)
  ^ Expo.render_latency ~name:"serve_latency_ns" t.latency
  ^
  (* Per-stage series come from decomposing the live span buffers — a
     merge per scrape, fine at scrape cadence, meaningless without
     spans. *)
  if t.spans_on then
    Expo.render_latency ~name:"serve_stage_ns" (Profile.latency (breakdown t))
  else ""

(* {2 Dispatch} *)

let close_conn t conn =
  if conn.alive then begin
    conn.alive <- false;
    Hashtbl.remove t.conns conn.cid;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let shed_response conn req_id =
  Protocol.encode_response conn.wb { Protocol.req_id; status = Protocol.Shed; body = "" }

(* Stats requests are introspection, answered synchronously right here:
   they must work during overload (when admission sheds request work)
   and must not perturb the accounting they report. *)
let serve_stats t conn req_id view =
  t.tallies.t_stats_served <- t.tallies.t_stats_served + 1;
  Counters.incr t.c_stats_served;
  let body =
    match view with
    | Protocol.Stats_json -> Ok (snapshot_json t)
    | Protocol.Stats_text -> Ok (prometheus t)
    | Protocol.Stats_trace -> Ok (Span.to_chrome t.spans)
    | Protocol.Stats_control -> (
        match t.ctl with
        | Some c -> Ok (Tq_control.Controller.state_json c)
        | None -> Error "controller off: run the server with --adaptive")
    | Protocol.Stats_breakdown | Protocol.Stats_breakdown_text ->
        if not t.spans_on then
          Error "stage breakdown needs spans: run the server with --obs"
        else
          let p = breakdown t in
          Ok
            (match view with
            | Protocol.Stats_breakdown -> Profile.to_json p
            | _ -> Profile.render p)
  in
  let resp =
    match body with
    | Error msg -> { Protocol.req_id; status = Protocol.Error msg; body = "" }
    | Ok body ->
        if String.length body <= Protocol.max_frame_bytes - 16 then
          { Protocol.req_id; status = Protocol.Ok; body }
        else
          { Protocol.req_id; status = Protocol.Error "stats body too large"; body = "" }
  in
  Protocol.encode_response conn.wb resp

(* The worker-side closure for one request: execute on [worker]'s app,
   push the encoded response onto [worker]'s reply ring.  Factored out
   of [dispatch] because re-dispatch after a worker death must rebuild
   it against the replacement worker's app and ring. *)
let make_job t ~worker ~sid ~cid ~class_idx ~t0 ~req_id req =
  let app = t.apps.(worker) in
  let ring = t.reply_rings.(worker) in
  let spans_on = t.spans_on in
  fun () ->
    let resp = App.execute app ~now_ns:(now_ns ()) ~req_id req in
    let frame = Protocol.response_frame resp in
    let reply =
      {
        r_cid = cid;
        r_sid = sid;
        r_class = class_idx;
        r_t0 = t0;
        r_done = (if spans_on then now_ns () else 0);
        r_frame = frame;
      }
    in
    if not (Spsc_ring.try_push ring reply) then begin
      let backoff = Tq_runtime.Backoff.create () in
      while not (Spsc_ring.try_push ring reply) do
        Tq_runtime.Backoff.once backoff
      done
    end

(* [p0] is the parse-start stamp from [parse_frames] (0 when spans are
   off): the request's first boundary.  A dispatched request gets a
   per-request [Parse] span [p0, t0) under its span id so the stage
   decomposition can telescope from the very first touch; a shed
   request gets a [Shed] span covering [p0, decision) — the time we
   spent on a request we then refused. *)
let dispatch t conn ~p0 req_id req =
  let class_idx = Protocol.class_of_request req in
  t.tallies.t_parsed <- t.tallies.t_parsed + 1;
  Counters.incr t.c_parsed;
  Counters.incr t.c_parsed_by.(class_idx);
  let pool_load = Parallel.in_flight t.pool in
  let admitted =
    Parallel.alive_workers t.pool > 0
    && pool_load < t.config.rx_depth
    && Admission.admit t.adm ~in_system:pool_load
  in
  if not admitted then begin
    t.tallies.t_shed <- t.tallies.t_shed + 1;
    Counters.incr t.c_shed;
    Counters.incr t.c_shed_by.(class_idx);
    t.ctl_shed.(class_idx) <- t.ctl_shed.(class_idx) + 1;
    if t.spans_on then
      Span.record t.disp_sink ~req_id:(-1) ~phase:Span.Shed ~start_ns:p0
        ~dur_ns:(max 0 (now_ns () - p0))
        ~arg:class_idx;
    shed_response conn req_id
  end
  else begin
    let w =
      match Protocol.steering_key req with
      | Some key ->
          (* Keyed steering, unless the home worker died — consistency
             yields to availability (its store is gone anyway). *)
          let w = Hashtbl.hash key mod Parallel.workers t.pool in
          if Parallel.worker_alive t.pool ~worker:w then w else Parallel.pick t.pool
      | None -> Parallel.pick t.pool
    in
    let sid = t.next_sid in
    let cid = conn.cid in
    let t0 = now_ns () in
    let job = make_job t ~worker:w ~sid ~cid ~class_idx ~t0 ~req_id req in
    if Parallel.submit_to t.pool ~tag:sid ~class_idx ~worker:w job then begin
      t.next_sid <- sid + 1;
      t.tallies.t_dispatched <- t.tallies.t_dispatched + 1;
      Counters.incr t.c_dispatched;
      Counters.incr t.c_dispatched_by.(class_idx);
      Hashtbl.replace t.pending sid
        { p_cid = cid; p_req_id = req_id; p_req = req; p_class = class_idx; p_t0 = t0; p_worker = w };
      if t.spans_on then begin
        Span.record t.disp_sink ~req_id:sid ~phase:Span.Parse ~start_ns:p0
          ~dur_ns:(max 0 (t0 - p0)) ~arg:conn.cid;
        Span.record t.disp_sink ~req_id:sid ~phase:Span.Dispatch ~start_ns:t0
          ~dur_ns:(now_ns () - t0) ~arg:w
      end
    end
    else begin
      (* the chosen core's ring is full: backpressure, shed at the door *)
      t.tallies.t_shed <- t.tallies.t_shed + 1;
      Counters.incr t.c_shed;
      Counters.incr t.c_shed_by.(class_idx);
      t.ctl_shed.(class_idx) <- t.ctl_shed.(class_idx) + 1;
      if t.spans_on then
        Span.record t.disp_sink ~req_id:(-1) ~phase:Span.Shed ~start_ns:p0
          ~dur_ns:(max 0 (now_ns () - p0))
          ~arg:class_idx;
      shed_response conn req_id
    end
  end

let rec parse_frames t conn =
  if conn.alive then
    match Reassembly.next conn.rb with
    | Error _ ->
        t.tallies.t_protocol_errors <- t.tallies.t_protocol_errors + 1;
        close_conn t conn
    | Ok None -> ()
    | Ok (Some payload) -> (
        let p0 = if t.spans_on then now_ns () else 0 in
        match Protocol.decode_request payload with
        | Error _ ->
            t.tallies.t_protocol_errors <- t.tallies.t_protocol_errors + 1;
            close_conn t conn
        | Ok (req_id, req) ->
            (match req with
            | Protocol.Stats { view } -> serve_stats t conn req_id view
            | _ -> dispatch t conn ~p0 req_id req);
            parse_frames t conn)

let rec accept_new t progress =
  match Unix.accept ~cloexec:true t.listener with
  | fd, _addr ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      let cid = t.next_cid in
      t.next_cid <- cid + 1;
      Hashtbl.replace t.conns cid
        { fd; cid; rb = Reassembly.create (); wb = Buffer.create 4096; wb_off = 0; alive = true };
      t.tallies.t_connections <- t.tallies.t_connections + 1;
      if t.spans_on then
        Span.record t.disp_sink ~req_id:(-1) ~phase:Span.Accept ~start_ns:(now_ns ())
          ~dur_ns:0 ~arg:cid;
      progress := true;
      accept_new t progress
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_new t progress

let read_conn t chunk progress conn =
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> close_conn t conn
  | n ->
      progress := true;
      Reassembly.add conn.rb chunk n;
      parse_frames t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_conn t conn

let conn_list t = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []

let poll_replies t progress =
  Array.iter
    (fun ring ->
      let rec go () =
        match Spsc_ring.try_pop ring with
        | None -> ()
        | Some reply ->
            progress := true;
            if not (Hashtbl.mem t.pending reply.r_sid) then begin
              (* Already answered by a re-dispatched copy (the original
                 worker finished after being declared dead).  Count and
                 drop — the client saw exactly one response. *)
              t.tallies.t_duplicates <- t.tallies.t_duplicates + 1;
              Counters.incr t.c_duplicates
            end
            else begin
              Hashtbl.remove t.pending reply.r_sid;
              t.tallies.t_completed <- t.tallies.t_completed + 1;
              Counters.incr t.c_completed;
              Counters.incr t.c_completed_by.(reply.r_class);
              let now = now_ns () in
              let sojourn = now - reply.r_t0 in
              Admission.note_completion t.adm ~sojourn_ns:sojourn;
              Counters.observe t.d_sojourn sojourn;
              Latency.record t.lat_all sojourn;
              Latency.record t.lat_class.(reply.r_class) sojourn;
              t.ctl_completed.(reply.r_class) <- t.ctl_completed.(reply.r_class) + 1;
              if sojourn <= t.ctl_latency_ns then
                t.ctl_good.(reply.r_class) <- t.ctl_good.(reply.r_class) + 1;
              if t.spans_on then
                (* worker push -> dispatcher pop-and-buffer: the reply
                   ring hop plus write buffering, the request's last leg *)
                Span.record t.disp_sink ~req_id:reply.r_sid ~phase:Span.Reply_flush
                  ~start_ns:reply.r_done
                  ~dur_ns:(max 0 (now - reply.r_done))
                  ~arg:reply.r_cid;
              match Hashtbl.find_opt t.conns reply.r_cid with
              | Some conn -> Buffer.add_bytes conn.wb reply.r_frame
              | None -> t.tallies.t_orphaned <- t.tallies.t_orphaned + 1
            end;
            go ()
      in
      go ())
    t.reply_rings

let flush_conn t progress conn =
  let total = Buffer.length conn.wb in
  let len = total - conn.wb_off in
  if len > 0 then begin
    match Unix.write_substring conn.fd (Buffer.contents conn.wb) conn.wb_off len with
    | n ->
        if n > 0 then progress := true;
        conn.wb_off <- conn.wb_off + n;
        if conn.wb_off = total then begin
          Buffer.clear conn.wb;
          conn.wb_off <- 0
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> close_conn t conn
  end

let pending_writes t =
  Hashtbl.fold (fun _ c acc -> acc || Buffer.length c.wb - c.wb_off > 0) t.conns false

let reply_rings_empty t =
  Array.for_all (fun r -> Spsc_ring.length r = 0) t.reply_rings

(* Block on socket readiness only when the whole pipeline is quiet.
   With work in flight the dispatcher polls, like the paper's dedicated
   dispatcher core — but through a spin-then-park backoff, so that on a
   machine where dispatcher and workers share cores a reply-less poll
   round hands the core to the workers instead of burning their
   timeslice (see {!Tq_runtime.Backoff}). *)
let idle_wait t backoff =
  if Parallel.in_flight t.pool = 0 && reply_rings_empty t && not (pending_writes t) then begin
    let fds = List.map (fun c -> c.fd) (conn_list t) in
    let fds = if t.listener_open then t.listener :: fds else fds in
    match Unix.select fds [] [] 0.02 with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  end
  else Tq_runtime.Backoff.once backoff

let close_listener t =
  if t.listener_open then begin
    t.listener_open <- false;
    try Unix.close t.listener with Unix.Unix_error _ -> ()
  end

(* {2 Worker health: heartbeats, death verdicts, re-dispatch} *)

(* Requests stranded on workers that have been declared dead are
   re-submitted to living workers under their original span id, so the
   client still gets exactly one response (the duplicate filter in
   [poll_replies] absorbs any race with a not-quite-dead original).
   A full replacement ring leaves the entry in [pending] for the next
   heartbeat round. *)
let redispatch_orphans t =
  if t.tallies.t_dead_workers > 0 && Parallel.alive_workers t.pool > 0 then begin
    let orphans =
      Hashtbl.fold
        (fun sid p acc ->
          if not (Parallel.worker_alive t.pool ~worker:p.p_worker) then (sid, p) :: acc
          else acc)
        t.pending []
    in
    List.iter
      (fun (sid, p) ->
        let w = Parallel.pick t.pool in
        let job =
          make_job t ~worker:w ~sid ~cid:p.p_cid ~class_idx:p.p_class ~t0:p.p_t0
            ~req_id:p.p_req_id p.p_req
        in
        if Parallel.submit_to t.pool ~tag:sid ~class_idx:p.p_class ~worker:w job
        then begin
          p.p_worker <- w;
          t.tallies.t_redispatched <- t.tallies.t_redispatched + 1;
          Counters.incr t.c_redispatched
        end)
      orphans
  end

(* Progress-based liveness: a worker that made no loop pass across a
   whole heartbeat window while holding work is suspect; after
   [missed_heartbeats] consecutive suspect windows it is declared dead
   and its pending requests move.  Idle workers always beat (the poll
   loop itself beats), so quiet periods never accumulate misses. *)
let heartbeat_check t ~now =
  let interval_ns = int_of_float (t.config.heartbeat_interval_s *. 1e9) in
  if interval_ns > 0 && now >= t.hb_next_ns then begin
    t.hb_next_ns <- now + interval_ns;
    for w = 0 to Parallel.workers t.pool - 1 do
      if Parallel.worker_alive t.pool ~worker:w then begin
        let b = Parallel.beats t.pool ~worker:w in
        if b = t.hb_beats.(w) && Parallel.worker_in_flight t.pool ~worker:w > 0
        then begin
          t.hb_missed.(w) <- t.hb_missed.(w) + 1;
          if t.hb_missed.(w) >= t.config.missed_heartbeats then begin
            ignore (Parallel.mark_dead t.pool ~worker:w : int);
            t.tallies.t_dead_workers <- t.tallies.t_dead_workers + 1;
            Counters.incr t.c_workers_dead
          end
        end
        else t.hb_missed.(w) <- 0;
        t.hb_beats.(w) <- b
      end
    done;
    redispatch_orphans t
  end

(* {2 The feedback control loop} *)

let controller_tick t ~now =
  match t.ctl with
  | None -> ()
  | Some c ->
      if now >= t.ctl_next_ns then begin
        let interval =
          (Tq_control.Controller.config c).Tq_control.Controller.interval_ns
        in
        t.ctl_next_ns <- now + interval;
        let queued = ref 0 in
        for w = 0 to Parallel.workers t.pool - 1 do
          queued := !queued + Parallel.ring_depth t.pool ~worker:w
        done;
        let classes =
          Array.init Protocol.class_count (fun i ->
              {
                Tq_control.Controller.completed = t.ctl_completed.(i);
                good = t.ctl_good.(i);
                shed = t.ctl_shed.(i);
              })
        in
        let actions =
          Tq_control.Controller.tick c
            {
              Tq_control.Controller.now_ns = now;
              queued = !queued;
              in_flight = Parallel.in_flight t.pool;
              busy_cores = Parallel.alive_workers t.pool;
              classes;
            }
        in
        List.iter
          (function
            | Tq_control.Controller.Set_quantum { class_idx; quantum_ns } ->
                Parallel.set_quantum t.pool ?class_idx ~quantum_ns ()
            | Tq_control.Controller.Set_shed_limit { max_in_system } ->
                Admission.set_policy t.adm
                  (Admission.Queue_limit { max_in_system }))
          actions
      end

(* {2 Live fault hooks} *)

let inject_stall t ~worker ~duration_ns =
  Parallel.stall_worker t.pool ~worker ~duration_ns ~now_ns:(now_ns ())

let kill_worker t ~worker = Parallel.kill_worker t.pool ~worker
let pause_dispatcher t ~duration_ns = t.paused_until_ns <- now_ns () + duration_ns
let on_tick t f = t.tick_hook <- Some f
let control_json t = Option.map Tq_control.Controller.state_json t.ctl
let alive_workers t = Parallel.alive_workers t.pool

let serve t =
  let chunk = Bytes.create 65536 in
  let stopping = ref false in
  let stop_deadline = ref infinity in
  let running = ref true in
  let backoff = Tq_runtime.Backoff.create () in
  while !running do
    let progress = ref false in
    let now = now_ns () in
    (match t.tick_hook with Some f -> f ~now_ns:now | None -> ());
    if (not !stopping) && Atomic.get t.stop_flag then begin
      (* Graceful drain: no new connections, no new frames; everything
         already dispatched still completes and flushes. *)
      stopping := true;
      stop_deadline := Unix.gettimeofday () +. t.config.drain_timeout_s;
      close_listener t
    end;
    if now < t.paused_until_ns then ()
      (* dispatcher outage (fault hook): nothing moves — no accepts, no
         replies, no heartbeat verdicts — exactly like a wedged
         dispatcher thread; workers keep serving their rings *)
    else begin
      heartbeat_check t ~now;
      controller_tick t ~now;
      if not !stopping then begin
        accept_new t progress;
        List.iter (fun c -> read_conn t chunk progress c) (conn_list t)
      end;
      poll_replies t progress;
      List.iter (fun c -> flush_conn t progress c) (conn_list t);
      if !stopping then begin
        let drained = in_flight t = 0 in
        if drained && not (pending_writes t) then running := false
        else if Unix.gettimeofday () > !stop_deadline then begin
          (* Unresponsive clients: finishing dispatched work is still
             unconditional — only their unflushed bytes are abandoned. *)
          Parallel.drain t.pool;
          poll_replies t progress;
          running := false
        end
      end
    end;
    if !progress then Tq_runtime.Backoff.reset backoff
    else if !running then idle_wait t backoff
  done;
  ignore (Parallel.shutdown t.pool : Parallel.stats);
  List.iter (fun c -> close_conn t c) (conn_list t);
  close_listener t
