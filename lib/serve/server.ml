(* The serving front-end: a multi-lane I/O plane over a shared,
   partitioned worker pool.

   Each of the [lanes] dispatcher lanes ({!Lane}) owns a shard of the
   connections (dealt out by the shared {!Listener}'s accept
   spreading) and a disjoint slice of the workers, and runs the
   classic accept/read/dispatch/reply/flush loop independently —
   workers never touch a socket; lanes never run request work.  This
   module owns what is genuinely global: the pool and apps, the
   listener, the pooled framing buffers, lane lifecycle (lane 0 runs
   on the caller of [serve]; lanes 1.. get their own domains), the
   feedback controller (ticked by lane 0, sensing all lanes), and the
   merged cross-lane views behind [stats], the Stats RPC and the
   Prometheus exposition. *)

module Parallel = Tq_runtime.Parallel
module Spsc_ring = Tq_runtime.Spsc_ring
module Admission = Tq_sched.Admission
module Counters = Tq_obs.Counters
module Obs = Tq_obs.Obs
module Span = Tq_obs.Span
module Tail = Tq_obs.Tail
module Latency = Tq_obs.Latency
module Expo = Tq_obs.Expo
module Profile = Tq_obs.Profile
module Gc_events = Tq_obs.Gc_events

type config = {
  host : string;
  port : int;
  workers : int;
  lanes : int;
  quantum_ns : int;
  ring_capacity : int;
  rx_depth : int;
  admission : Admission.policy;
  steal : bool;
  kv_keys : int;
  seed : int64;
  drain_timeout_s : float;
  adaptive : Tq_control.Controller.config option;
  heartbeat_interval_s : float;
  missed_heartbeats : int;
  pool_bufs : int;
  pool_buf_bytes : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 4;
    lanes = 1;
    quantum_ns = 100_000;
    ring_capacity = 256;
    rx_depth = 1024;
    admission = Admission.Accept_all;
    steal = false;
    kv_keys = 1024;
    seed = 42L;
    drain_timeout_s = 5.0;
    adaptive = None;
    heartbeat_interval_s = 0.05;
    missed_heartbeats = 4;
    pool_bufs = 1024;
    pool_buf_bytes = 4096;
  }

type stats = {
  connections : int;
  parsed : int;
  dispatched : int;
  completed : int;
  shed : int;
  lost : int;
  dropped : int;
  stats_served : int;
  protocol_errors : int;
  orphaned : int;
  duplicates : int;
  redispatched : int;
  dead_workers : int;
}

type t = {
  config : config;
  listener : Listener.t;
  pool : Parallel.t;
  bufs : Pool.t;
  lanes : Lane.t array;
  shared : Lane.shared;
  worker_regs : Counters.t array;  (** one per worker domain ([runtime.*]) *)
  spans : Span.t;
  spans_on : bool;
  tail : Tail.t;
  tail_on : bool;
  gc : Gc_events.t option;
  ctl : Tq_control.Controller.t option;
  mutable ctl_next_ns : int;
  mutable tick_hook : (now_ns:int -> unit) option;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let create ?(obs = Obs.disabled ()) ?(spans = Span.null) ?(tail = Tail.null) ?gc
    config =
  if config.workers < 1 then invalid_arg "Server.create: need at least one worker";
  if config.rx_depth < 1 then invalid_arg "Server.create: rx_depth must be positive";
  if config.lanes < 1 then invalid_arg "Server.create: need at least one lane";
  if config.lanes > config.workers then
    invalid_arg "Server.create: more lanes than workers (empty worker slices)";
  let listener = Listener.create ~host:config.host ~port:config.port ~lanes:config.lanes in
  let worker_regs = Array.init config.workers (fun _ -> Counters.create ()) in
  let pool =
    (* [lanes] shapes the pool's steal groups to this plane's worker
       slices, so a thief only ever robs workers whose reply rings its
       own lane polls. *)
    Parallel.create ~workers:config.workers ~quantum_ns:config.quantum_ns
      ~ring_capacity:config.ring_capacity ~classes:Protocol.class_count
      ~lanes:config.lanes ~steal:config.steal ~spans
      ~worker_counters:worker_regs
      ?gc_pause_ns:(Option.map (fun g () -> Gc_events.self_pause_ns g) gc)
      ()
  in
  let ctl = Option.map (Tq_control.Controller.create ~obs) config.adaptive in
  let ctl_latency_ns =
    match ctl with
    | Some c ->
        (Tq_control.Controller.config c).Tq_control.Controller.objective
          .Tq_obs.Slo.latency_ns
    | None -> max_int
  in
  let shared =
    {
      Lane.pool;
      apps =
        Array.init config.workers (fun i ->
            App.create ~kv_keys:config.kv_keys
              ~seed:(Int64.add config.seed (Int64.of_int i))
              ());
      reply_rings =
        Array.init config.workers (fun _ ->
            Spsc_ring.create ~capacity:(max 1024 (4 * config.ring_capacity)));
      bufs =
        Pool.create ~max_pooled:config.pool_bufs ~buf_bytes:config.pool_buf_bytes ();
      listener;
      stop_flag = Atomic.make false;
      paused_until_ns = Atomic.make 0;
      spans;
      spans_on = Span.enabled spans;
      tail;
      tail_on = Tail.enabled tail;
      lanes = config.lanes;
      rx_depth = config.rx_depth;
      drain_timeout_s = config.drain_timeout_s;
      heartbeat_interval_ns = int_of_float (config.heartbeat_interval_s *. 1e9);
      missed_heartbeats = config.missed_heartbeats;
      ctl_latency_ns;
    }
  in
  let lanes =
    (* lane 0 writes the caller's observability registry, keeping the
       single-dispatcher CLI behaviour; extra lanes get their own *)
    Array.init config.lanes (fun id ->
        let reg = if id = 0 then obs.Obs.counters else Counters.create () in
        Lane.create shared ~id ~reg ~admission:config.admission)
  in
  let t =
    {
      config;
      listener;
      pool;
      bufs = shared.Lane.bufs;
      lanes;
      shared;
      worker_regs;
      spans;
      spans_on = Span.enabled spans;
      tail;
      tail_on = Tail.enabled tail;
      gc;
      ctl;
      ctl_next_ns = 0;
      tick_hook = None;
    }
  in
  (* Move the knobs to the controller's initial operating point before
     any request is admitted, so the loop starts from a known state. *)
  (match ctl with
  | None -> ()
  | Some c ->
      List.iter
        (function
          | Tq_control.Controller.Set_quantum { class_idx; quantum_ns } ->
              Parallel.set_quantum pool ?class_idx ~quantum_ns ()
          | Tq_control.Controller.Set_shed_limit { max_in_system } ->
              Array.iter
                (fun lane ->
                  Admission.set_policy (Lane.admission lane)
                    (Admission.Queue_limit { max_in_system }))
                lanes)
        (Tq_control.Controller.initial_actions c));
  t

let port t = Listener.port t.listener
let lanes t = t.config.lanes
let stop t = Atomic.set t.shared.Lane.stop_flag true

(* Cross-lane sums over each lane's plain tallies: never torn
   (word-sized loads), eventually consistent live, exact once [serve]
   returned (domain join orders every lane write before the read). *)
let stats t =
  let z =
    {
      connections = 0;
      parsed = 0;
      dispatched = 0;
      completed = 0;
      shed = 0;
      lost = 0;
      dropped = 0;
      stats_served = 0;
      protocol_errors = 0;
      orphaned = 0;
      duplicates = 0;
      redispatched = 0;
      dead_workers = 0;
    }
  in
  Array.fold_left
    (fun acc lane ->
      let c = Lane.counts lane in
      {
        connections = acc.connections + c.Lane.connections;
        parsed = acc.parsed + c.Lane.parsed;
        dispatched = acc.dispatched + c.Lane.dispatched;
        completed = acc.completed + c.Lane.completed;
        shed = acc.shed + c.Lane.shed;
        lost = acc.lost + c.Lane.lost;
        dropped = acc.dropped + c.Lane.dropped;
        stats_served = acc.stats_served + c.Lane.stats_served;
        protocol_errors = acc.protocol_errors + c.Lane.protocol_errors;
        orphaned = acc.orphaned + c.Lane.orphaned;
        duplicates = acc.duplicates + c.Lane.duplicates;
        redispatched = acc.redispatched + c.Lane.redispatched;
        dead_workers = acc.dead_workers + c.Lane.dead_workers;
      })
    z t.lanes

let in_flight t = Array.fold_left (fun acc l -> acc + Lane.in_flight l) 0 t.lanes
let open_conns t = Array.fold_left (fun acc l -> acc + Lane.open_conns l) 0 t.lanes
let spans t = t.spans
let latency t = Latency.merge (Array.to_list (Array.map Lane.latency t.lanes))

(* {2 Merged live views}

   Rendering happens on whichever thread asks (an in-process accessor,
   or the lane serving a Stats RPC), so gauges are computed into the
   render-local merged registry — never written into a lane's
   registry, which has exactly one writer: its lane. *)

let ring_occupancy t =
  let occ = ref 0 in
  for w = 0 to Parallel.workers t.pool - 1 do
    occ := !occ + Parallel.ring_depth t.pool ~worker:w
  done;
  !occ

let span_dropped t =
  Array.fold_left (fun acc l -> acc + Lane.span_dropped l) 0 t.lanes

let set_gauges t reg =
  let g name v = Counters.set (Counters.gauge reg name) (float_of_int v) in
  (* The acceptance ledger, derived from ONE tallies snapshot so the
     [accepted = completed + lost + dropped + in_flight] identity holds
     exactly in every render (four independently read cells could be
     observed mid-bump). *)
  let s = stats t in
  g "serve.accepted" s.dispatched;
  g "serve.lost" s.lost;
  g "serve.dropped" s.dropped;
  g "serve.in_flight" (s.dispatched - s.completed - s.lost - s.dropped);
  g "serve.open_connections" (open_conns t);
  g "serve.alive_workers" (Parallel.alive_workers t.pool);
  g "serve.ring_occupancy" (ring_occupancy t);
  g "serve.lanes" t.config.lanes;
  g "serve.accept_handoffs" (Listener.handed_off t.listener);
  g "obs.span_dropped" (span_dropped t);
  Pool.fill_counters t.bufs reg

(* [serve.parsed] is not a stored tally anywhere (see {!Lane.counts}):
   re-derive it in each render-local merged registry from the same
   merged snapshot's dispatched + shed, per class and in total, so the
   identity is exact within any rendered text. *)
let derive_parsed reg =
  let derive name d s =
    Counters.add (Counters.counter reg name)
      (Counters.find_count reg d + Counters.find_count reg s)
  in
  derive "serve.parsed" "serve.dispatched" "serve.shed";
  for i = 0 to Protocol.class_count - 1 do
    let n = Protocol.class_name i in
    derive ("serve.parsed." ^ n) ("serve.dispatched." ^ n) ("serve.shed." ^ n)
  done;
  reg

let lane_regs t = Array.to_list (Array.map Lane.registry t.lanes)

let gc_registries t =
  match t.gc with None -> [] | Some g -> [ Gc_events.counters g ]

let merged_counters t =
  let merged =
    derive_parsed
      (Counters.merged ((lane_regs t @ Array.to_list t.worker_regs) @ gc_registries t))
  in
  set_gauges t merged;
  merged

let snapshot_json t =
  let s = stats t in
  let serve = derive_parsed (Counters.merged (lane_regs t)) in
  let merged = Counters.merged (Array.to_list t.worker_regs) in
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"connections\": %d,\n  \"open_connections\": %d,\n  \"parsed\": %d,\n  \
        \"dispatched\": %d,\n  \"completed\": %d,\n  \"shed\": %d,\n  \
        \"lost\": %d,\n  \"dropped\": %d,\n  \
        \"stats_served\": %d,\n  \"protocol_errors\": %d,\n  \"orphaned\": %d,\n  \
        \"duplicates\": %d,\n  \"redispatched\": %d,\n  \"dead_workers\": %d,\n  \
        \"in_flight\": %d,\n  \"workers\": %d,\n  \"alive_workers\": %d,\n  \
        \"ring_occupancy\": %d,\n"
       s.connections (open_conns t) s.parsed s.dispatched s.completed s.shed s.lost
       s.dropped s.stats_served s.protocol_errors s.orphaned s.duplicates
       s.redispatched s.dead_workers
       (s.dispatched - s.completed - s.lost - s.dropped)
       (Parallel.workers t.pool)
       (Parallel.alive_workers t.pool)
       (ring_occupancy t));
  (* the I/O plane: lane count, accept spreading and framing-pool health,
     plus each lane's own share of the work *)
  Buffer.add_string b
    (Printf.sprintf
       "  \"io_plane\": {\"lanes\": %d, \"accepted\": %d, \"handed_off\": %d, \
        \"pool\": {\"buf_bytes\": %d, \"pooled\": %d, \"hits\": %d, \"misses\": %d, \
        \"oversize\": %d, \"discarded\": %d}, \"per_lane\": ["
       t.config.lanes
       (Listener.accepted t.listener)
       (Listener.handed_off t.listener)
       (Pool.buf_bytes t.bufs) (Pool.pooled t.bufs) (Pool.hits t.bufs)
       (Pool.misses t.bufs) (Pool.oversize t.bufs) (Pool.discarded t.bufs));
  Array.iteri
    (fun i lane ->
      let c = Lane.counts lane in
      Buffer.add_string b
        (Printf.sprintf
           "{\"lane\": %d, \"connections\": %d, \"parsed\": %d, \"dispatched\": %d, \
            \"completed\": %d, \"shed\": %d, \"span_dropped\": %d}%s"
           i c.Lane.connections c.Lane.parsed c.Lane.dispatched c.Lane.completed
           c.Lane.shed (Lane.span_dropped lane)
           (if i = Array.length t.lanes - 1 then "" else ", ")))
    t.lanes;
  Buffer.add_string b "]},\n";
  (match t.ctl with
  | None -> ()
  | Some c ->
      Buffer.add_string b
        (Printf.sprintf "  \"control\": %s,\n" (Tq_control.Controller.state_json c)));
  Buffer.add_string b "  \"per_class\": {\n";
  for i = 0 to Protocol.class_count - 1 do
    let n = Protocol.class_name i in
    Buffer.add_string b
      (Printf.sprintf
         "    %S: {\"parsed\": %d, \"dispatched\": %d, \"completed\": %d, \"shed\": \
          %d}%s\n"
         n
         (Counters.find_count serve ("serve.parsed." ^ n))
         (Counters.find_count serve ("serve.dispatched." ^ n))
         (Counters.find_count serve ("serve.completed." ^ n))
         (Counters.find_count serve ("serve.shed." ^ n))
         (if i = Protocol.class_count - 1 then "" else ","))
  done;
  Buffer.add_string b "  },\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"runtime\": {\"quanta\": %d, \"yields\": %d, \"completions\": %d, \
        \"stalls\": %d, \"steals\": %d, \"steal_items\": %d, \
        \"steal_failures\": %d},\n"
       (Counters.find_count merged "runtime.quanta")
       (Counters.find_count merged "runtime.yields")
       (Counters.find_count merged "runtime.completions")
       (Counters.find_count merged "runtime.stalls")
       (Counters.find_count merged "runtime.steals")
       (Counters.find_count merged "runtime.steal_items")
       (Counters.find_count merged "runtime.steal_failures"));
  (match t.gc with
  | None -> ()
  | Some g ->
      let greg = Gc_events.counters g in
      Buffer.add_string b
        (Printf.sprintf
           "  \"gc\": {\"minor_pauses\": %d, \"major_pauses\": %d, \"events_lost\": \
            %d, \"stall_gc\": %d, \"stall_other\": %d},\n"
           (Counters.find_count greg "gc.minor_pauses")
           (Counters.find_count greg "gc.major_pauses")
           (Counters.find_count greg "gc.events_lost")
           (Counters.find_count merged "runtime.stall_gc")
           (Counters.find_count merged "runtime.stall_other")));
  (if t.spans_on then
     Buffer.add_string b
       (Printf.sprintf "  \"spans\": {\"total\": %d, \"dropped\": %d},\n"
          (Span.total t.spans) (Span.dropped t.spans)));
  Buffer.add_string b
    (Printf.sprintf "  \"latency\": %s\n}\n" (Latency.to_json (latency t)));
  Buffer.contents b

let breakdown t = Profile.of_records (Span.merge t.spans)

(* {2 Tail forensics views} *)

let tail t = t.tail

let outlier_dossiers t ~limit =
  let limit = if limit <= 0 then Tail.retained t.tail else limit in
  Tail.dossiers t.tail ~records:(Span.merge t.spans) ~limit

let outliers_json t ~limit =
  Tail.dossiers_json ~class_name:Protocol.class_name t.tail
    (outlier_dossiers t ~limit)

let outliers_text t ~limit =
  Tail.render ~class_name:Protocol.class_name (outlier_dossiers t ~limit)

let tail_trace t = Tail.to_chrome t.tail (Span.merge t.spans)

let prometheus t =
  (* one merged dispatcher series regardless of lane count — the lane
     split is an implementation axis; the exposition's shape stays what
     single-dispatcher dashboards expect *)
  let disp = derive_parsed (Counters.merged (lane_regs t)) in
  set_gauges t disp;
  (* span-sink overflow per lane: a tiny labelled registry per lane so
     a scrape can pinpoint WHICH lane's buffer wrapped, not just that
     one did (the merged [obs.span_dropped] gauge above is the total) *)
  let lane_drop_regs =
    List.mapi
      (fun i lane ->
        let reg = Counters.create () in
        Counters.set
          (Counters.gauge reg "obs.span_dropped")
          (float_of_int (Lane.span_dropped lane));
        ([ ("role", "lane"); ("lane", string_of_int i) ], reg))
      (Array.to_list t.lanes)
  in
  let registries =
    (([ ("role", "dispatcher") ], disp) :: lane_drop_regs)
    @ List.mapi
        (fun i reg -> ([ ("role", "worker"); ("worker", string_of_int i) ], reg))
        (Array.to_list t.worker_regs)
    @ (match t.gc with
      | None -> []
      | Some g -> [ ([ ("role", "gc") ], Gc_events.counters g) ])
  in
  Expo.render registries
  (* per-class HDR latency; named apart from the serve.sojourn_ns
     power-of-two dist, which already renders as tq_serve_sojourn_ns *)
  ^ Expo.render_latency ~name:"serve_latency_ns" (latency t)
  ^
  (* Per-stage series come from decomposing the live span buffers — a
     merge per scrape, fine at scrape cadence, meaningless without
     spans. *)
  if t.spans_on then
    Expo.render_latency ~name:"serve_stage_ns" (Profile.latency (breakdown t))
  else ""

(* {2 The Stats RPC renderer}

   Wired into every lane; runs on whichever lane's connection carries
   the request.  All inputs are cross-lane-safe reads. *)

let render_stats t view =
  match view with
  | Protocol.Stats_json -> Ok (snapshot_json t)
  | Protocol.Stats_text -> Ok (prometheus t)
  | Protocol.Stats_trace -> Ok (Span.to_chrome t.spans)
  | Protocol.Stats_control -> (
      match t.ctl with
      | Some c -> Ok (Tq_control.Controller.state_json c)
      | None -> Error "controller off: run the server with --adaptive")
  | Protocol.Stats_breakdown | Protocol.Stats_breakdown_text ->
      if not t.spans_on then
        Error "stage breakdown needs spans: run the server with --obs"
      else
        let p = breakdown t in
        Ok
          (match view with
          | Protocol.Stats_breakdown -> Profile.to_json p
          | _ -> Profile.render p)
  | Protocol.Stats_outliers { limit } ->
      if not t.tail_on then
        Error "tail forensics off: run the server with --tail-k > 0"
      else Ok (outliers_json t ~limit)
  | Protocol.Stats_outliers_text { limit } ->
      if not t.tail_on then
        Error "tail forensics off: run the server with --tail-k > 0"
      else Ok (outliers_text t ~limit)

(* {2 The feedback control loop}

   Ticked by lane 0; senses the whole plane (per-class tallies summed
   over every lane — racy-but-sound monotone counters) and actuates
   globally: the quantum cells are shared pool atomics, the shed limit
   lands on every lane's admission policy cell. *)

let controller_tick t ~now =
  match t.ctl with
  | None -> ()
  | Some c ->
      if now >= t.ctl_next_ns then begin
        let interval =
          (Tq_control.Controller.config c).Tq_control.Controller.interval_ns
        in
        t.ctl_next_ns <- now + interval;
        let classes =
          Array.init Protocol.class_count (fun i ->
              let completed = ref 0 and good = ref 0 and shed = ref 0 in
              Array.iter
                (fun lane ->
                  let cc, gg, ss = Lane.ctl_counts lane ~class_idx:i in
                  completed := !completed + cc;
                  good := !good + gg;
                  shed := !shed + ss)
                t.lanes;
              {
                Tq_control.Controller.completed = !completed;
                good = !good;
                shed = !shed;
              })
        in
        let actions =
          Tq_control.Controller.tick c
            {
              Tq_control.Controller.now_ns = now;
              queued = ring_occupancy t;
              in_flight = Parallel.in_flight t.pool;
              busy_cores = Parallel.alive_workers t.pool;
              classes;
            }
        in
        List.iter
          (function
            | Tq_control.Controller.Set_quantum { class_idx; quantum_ns } ->
                Parallel.set_quantum t.pool ?class_idx ~quantum_ns ()
            | Tq_control.Controller.Set_shed_limit { max_in_system } ->
                Array.iter
                  (fun lane ->
                    Admission.set_policy (Lane.admission lane)
                      (Admission.Queue_limit { max_in_system }))
                  t.lanes)
          actions
      end

(* {2 Live fault hooks} *)

let inject_stall t ~worker ~duration_ns =
  Parallel.stall_worker t.pool ~worker ~duration_ns ~now_ns:(now_ns ())

let kill_worker t ~worker = Parallel.kill_worker t.pool ~worker

let pause_dispatcher t ~duration_ns =
  Atomic.set t.shared.Lane.paused_until_ns (now_ns () + duration_ns)

let on_tick t f = t.tick_hook <- Some f
let control_json t = Option.map Tq_control.Controller.state_json t.ctl
let alive_workers t = Parallel.alive_workers t.pool

let serve t =
  let renderer = render_stats t in
  Array.iter (fun lane -> Lane.set_stats_renderer lane renderer) t.lanes;
  Lane.set_tick t.lanes.(0) (fun ~now_ns:now ->
      (match t.tick_hook with Some f -> f ~now_ns:now | None -> ());
      (* the fault schedule above may have just paused the plane; the
         controller honours the pause like everything else *)
      if now >= Atomic.get t.shared.Lane.paused_until_ns then
        controller_tick t ~now);
  let extra =
    Array.init
      (Array.length t.lanes - 1)
      (fun i -> Domain.spawn (fun () -> Lane.run t.lanes.(i + 1)))
  in
  Lane.run t.lanes.(0);
  Array.iter Domain.join extra;
  ignore (Parallel.shutdown t.pool : Parallel.stats);
  Listener.close t.listener
