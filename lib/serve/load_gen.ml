module Prng = Tq_util.Prng
module Latency = Tq_obs.Latency
module Slo = Tq_obs.Slo
module Ascii_chart = Tq_util.Ascii_chart
module Transactions = Tq_tpcc.Transactions

type mix = {
  echo : float;
  kv : float;
  tpcc : float;
  echo_heavy : float;
  echo_spin_ns : int;
  echo_heavy_spin_ns : int;
  kv_set_fraction : float;
  kv_keys : int;
}

let default_mix =
  {
    echo = 0.70;
    kv = 0.25;
    tpcc = 0.05;
    echo_heavy = 0.0;
    echo_spin_ns = 1_000;
    echo_heavy_spin_ns = 0;
    kv_set_fraction = 0.3;
    kv_keys = 1024;
  }

type config = {
  host : string;
  port : int;
  connections : int;
  rate_rps : float;
  warmup_s : float;
  measure_s : float;
  grace_s : float;
  seed : int64;
  mix : mix;
  slo : Slo.objective list;
  stats_interval_s : float option;
  dashboard : bool;
  server_lanes : int;
}

let default_config ~rate_rps ~port =
  {
    host = "127.0.0.1";
    port;
    connections = 8;
    rate_rps;
    warmup_s = 0.5;
    measure_s = 2.0;
    grace_s = 2.0;
    seed = 42L;
    mix = default_mix;
    slo = [];
    stats_interval_s = None;
    dashboard = false;
    server_lanes = 1;
  }

type result = {
  sent : int;
  received : int;
  ok : int;
  shed : int;
  errors : int;
  measured_sent : int;
  measured_ok : int;
  throughput_rps : float;
  latency : Latency.t;
  outstanding : int;
  slo_reports : Slo.report list;
  stats_polls : (float * string) list;
}

type conn = {
  fd : Unix.file_descr;
  rb : Protocol.Reassembly.t;
  out : Protocol.Outbuf.t;
  scratch : Buffer.t;  (* one request frame at a time, blitted into [out] *)
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let sample_request rng mix =
  let total = mix.echo +. mix.echo_heavy +. mix.kv +. mix.tpcc in
  if total <= 0.0 then invalid_arg "Load_gen: request mix has zero total weight";
  let r = Prng.float rng total in
  if r < mix.echo then Protocol.Echo { spin_ns = mix.echo_spin_ns; payload = "" }
  else if r < mix.echo +. mix.echo_heavy then
    (* the heavy tail of a skewed offered load: same unkeyed echo
       class, much longer spin — what work stealing redistributes *)
    Protocol.Echo { spin_ns = mix.echo_heavy_spin_ns; payload = "" }
  else if r < mix.echo +. mix.echo_heavy +. mix.kv then begin
    let key = App.kv_key (Prng.int rng (max 1 mix.kv_keys)) in
    if Prng.bernoulli rng ~p:mix.kv_set_fraction then
      Protocol.Kv_set { key; value = "v" }
    else Protocol.Kv_get { key }
  end
  else Protocol.Tpcc { kind = Transactions.sample_kind rng }

let connect config =
  Array.init config.connections (fun _ ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      Unix.set_nonblock fd;
      {
        fd;
        rb = Protocol.Reassembly.create ();
        out = Protocol.Outbuf.create ();
        scratch = Buffer.create 256;
      })

let flush_conn c =
  if not (Protocol.Outbuf.is_empty c.out) then begin
    let buf, off, len = Protocol.Outbuf.peek c.out in
    match Unix.write c.fd buf off len with
    | n -> Protocol.Outbuf.consume c.out n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        raise End_of_file
  end

let run config =
  if config.rate_rps <= 0.0 then invalid_arg "Load_gen: rate_rps must be positive";
  if config.connections < 1 then invalid_arg "Load_gen: need at least one connection";
  let rng = Prng.create ~seed:config.seed in
  let conns = connect config in
  let chunk = Bytes.create 65536 in
  let latency = Latency.create () in
  let all = Latency.recorder latency "all" in
  let per_class =
    Array.init Protocol.class_count (fun i ->
        Latency.recorder latency (Protocol.class_name i))
  in
  (* req_id -> (send time, class, sent inside the measurement window) *)
  let pending : (int, int * int * bool) Hashtbl.t = Hashtbl.create 4096 in
  let sent = ref 0
  and received = ref 0
  and ok = ref 0
  and shed = ref 0
  and errors = ref 0
  and measured_sent = ref 0
  and measured_ok = ref 0 in
  let t0 = now_ns () in
  let warmup_end = t0 + int_of_float (config.warmup_s *. 1e9) in
  let measure_end = warmup_end + int_of_float (config.measure_s *. 1e9) in
  let interarrival = 1e9 /. config.rate_rps in
  let next_send = ref (float_of_int t0) in
  let next_id = ref 0 in
  let progress = ref false in
  (* SLO monitoring is always on (one short list walk per response);
     with no explicit objectives the default one stands in, so the
     dashboard and report never come up empty. *)
  let objectives = if config.slo = [] then [ Slo.default_objective ] else config.slo in
  let slo_mon = Slo.create ~now_ns:t0 objectives in
  (* Periodic tick state: stats polling over a dedicated connection
     (the Stats RPC, so the view is the server's, not ours) and the live
     dashboard. *)
  let ticking = config.dashboard || config.stats_interval_s <> None in
  let tick_ns =
    int_of_float (Option.value config.stats_interval_s ~default:0.5 *. 1e9)
  in
  let next_tick = ref (if ticking then t0 + tick_ns else max_int) in
  let stats_client =
    if config.stats_interval_s <> None then
      try Some (Client.connect ~host:config.host ~port:config.port ()) with _ -> None
    else None
  in
  let stats_polls = ref [] in
  let thr_series = ref [] in
  let last_tick_ok = ref 0 in
  let last_tick_ns = ref t0 in
  let keep n l = List.filteri (fun i _ -> i < n) l in
  let render_dashboard ~now ~elapsed =
    let b = Buffer.create 2048 in
    Buffer.add_string b "\x1b[2J\x1b[H";
    Buffer.add_string b
      (Printf.sprintf "tq_load dashboard   t=%6.1fs   offered %.0f rps\n" elapsed
         config.rate_rps);
    Buffer.add_string b
      (Printf.sprintf "sent %d   ok %d   shed %d   errors %d   outstanding %d\n\n"
         !sent !ok !shed !errors (Hashtbl.length pending));
    Buffer.add_string b (Slo.render ~now_ns:now slo_mon);
    let goodput =
      Ascii_chart.render ~height:10 ~x_label:"window age (s)" ~y_label:"good frac"
        ~title:"SLO goodput over the sliding window"
        (List.map
           (fun (o : Slo.objective) ->
             { Ascii_chart.label = o.name; points = Slo.window_series ~now_ns:now slo_mon o.name })
           objectives)
    in
    if goodput <> "" then Buffer.add_string b ("\n" ^ goodput);
    let thr =
      Ascii_chart.render ~height:8 ~x_label:"elapsed (s)" ~y_label:"rps"
        ~title:"achieved throughput"
        [ { Ascii_chart.label = "ok rps"; points = List.rev !thr_series } ]
    in
    if thr <> "" then Buffer.add_string b ("\n" ^ thr);
    prerr_string (Buffer.contents b);
    flush stderr
  in
  let tick now =
    next_tick := now + tick_ns;
    let elapsed = float_of_int (now - t0) /. 1e9 in
    let dt = float_of_int (now - !last_tick_ns) /. 1e9 in
    if dt > 0.0 then
      thr_series :=
        keep 240 ((elapsed, float_of_int (!ok - !last_tick_ok) /. dt) :: !thr_series);
    last_tick_ok := !ok;
    last_tick_ns := now;
    (match stats_client with
    | Some c -> (
        try stats_polls := (elapsed, Client.stats c) :: !stats_polls
        with _ -> ())
    | None -> ());
    if config.dashboard then render_dashboard ~now ~elapsed
  in
  let receive_conn c =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> raise End_of_file
    | n -> (
        progress := true;
        Protocol.Reassembly.add c.rb chunk n;
        let rec parse () =
          match Protocol.Reassembly.next c.rb with
          | Error msg -> failwith ("Load_gen: " ^ msg)
          | Ok None -> ()
          | Ok (Some payload) -> (
              match Protocol.decode_response payload with
              | Error msg -> failwith ("Load_gen: " ^ msg)
              | Ok resp ->
                  incr received;
                  (match Hashtbl.find_opt pending resp.Protocol.req_id with
                  | None -> ()
                  | Some (t_send, class_idx, measured) ->
                      Hashtbl.remove pending resp.Protocol.req_id;
                      let now = now_ns () in
                      (match resp.Protocol.status with
                      | Protocol.Ok ->
                          Slo.observe slo_mon ~now_ns:now (`Ok (now - t_send));
                          incr ok;
                          if measured then begin
                            incr measured_ok;
                            let lat = now - t_send in
                            Latency.record all lat;
                            Latency.record per_class.(class_idx) lat
                          end
                      | Protocol.Shed ->
                          Slo.observe slo_mon ~now_ns:now `Shed;
                          incr shed
                      | Protocol.Error _ ->
                          Slo.observe slo_mon ~now_ns:now `Error;
                          incr errors));
                  parse ())
        in
        parse ())
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> raise End_of_file
  in
  let sending = ref true in
  let grace_deadline = ref max_int in
  let backoff = Tq_runtime.Backoff.create () in
  (try
     while !sending || (Hashtbl.length pending > 0 && now_ns () < !grace_deadline) do
       let now = now_ns () in
       if !sending then
         if now >= measure_end then begin
           sending := false;
           grace_deadline := now + int_of_float (config.grace_s *. 1e9)
         end
         else
           (* fire every arrival the schedule owes us — open loop, the
              generator never waits for the server *)
           while !sending && !next_send <= float_of_int now do
             let req = sample_request rng config.mix in
             let req_id = !next_id in
             incr next_id;
             (* encode only — one batched write per poll round (below)
                instead of a syscall per request *)
             let c = conns.(req_id mod Array.length conns) in
             Buffer.clear c.scratch;
             Protocol.encode_request c.scratch ~req_id req;
             Protocol.Outbuf.add_buffer c.out c.scratch;
             let measured = now >= warmup_end && now < measure_end in
             Hashtbl.replace pending req_id
               (now, Protocol.class_of_request req, measured);
             incr sent;
             if measured then incr measured_sent;
             progress := true;
             next_send := !next_send +. Prng.exponential rng ~mean:interarrival
           done;
       Array.iter flush_conn conns;
       Array.iter receive_conn conns;
       if ticking && now >= !next_tick then tick now;
       (* On a core shared with the server, an empty poll round must
          yield rather than spin (catch-up sending keeps the offered
          rate honest across the nap). *)
       if !progress then begin
         progress := false;
         Tq_runtime.Backoff.reset backoff
       end
       else Tq_runtime.Backoff.once backoff
     done
   with End_of_file -> ());
  Array.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  (match stats_client with Some c -> Client.close c | None -> ());
  {
    sent = !sent;
    received = !received;
    ok = !ok;
    shed = !shed;
    errors = !errors;
    measured_sent = !measured_sent;
    measured_ok = !measured_ok;
    throughput_rps = float_of_int !measured_ok /. config.measure_s;
    latency;
    outstanding = Hashtbl.length pending;
    slo_reports = Slo.report slo_mon;
    stats_polls = List.rev !stats_polls;
  }

let to_json ?outliers config r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Tq_util.Bench_meta.json_fields ());
  Buffer.add_string b "  \"benchmark\": \"tq_serve loopback\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"server_lanes\": %d,\n  \"host_cores\": %d,\n"
       config.server_lanes
       (Domain.recommended_domain_count ()));
  Buffer.add_string b
    (Printf.sprintf "  \"connections\": %d,\n  \"offered_rps\": %.0f,\n"
       config.connections config.rate_rps);
  Buffer.add_string b
    (Printf.sprintf
       "  \"warmup_s\": %g,\n  \"measure_s\": %g,\n  \"mix\": {\"echo\": %g, \"kv\": \
        %g, \"tpcc\": %g, \"echo_heavy\": %g, \"echo_spin_ns\": %d, \
        \"echo_heavy_spin_ns\": %d},\n"
       config.warmup_s config.measure_s config.mix.echo config.mix.kv config.mix.tpcc
       config.mix.echo_heavy config.mix.echo_spin_ns config.mix.echo_heavy_spin_ns);
  Buffer.add_string b
    (Printf.sprintf
       "  \"sent\": %d,\n  \"received\": %d,\n  \"ok\": %d,\n  \"shed\": %d,\n  \
        \"errors\": %d,\n  \"outstanding\": %d,\n"
       r.sent r.received r.ok r.shed r.errors r.outstanding);
  Buffer.add_string b
    (Printf.sprintf
       "  \"measured_sent\": %d,\n  \"measured_ok\": %d,\n  \"throughput_rps\": \
        %.0f,\n"
       r.measured_sent r.measured_ok r.throughput_rps);
  Buffer.add_string b "  \"slo\": [";
  List.iteri
    (fun i (rep : Slo.report) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\": %S, \"target_latency_ns\": %d, \"target_goodput\": %g, \
            \"window_total\": %d, \"compliance\": %.6f, \"burn_rate\": %.3f}"
           rep.objective.name rep.objective.latency_ns rep.objective.goodput
           rep.window_total rep.compliance rep.burn_rate))
    r.slo_reports;
  Buffer.add_string b "],\n";
  (match outliers with
  | None -> ()
  | Some json ->
      (* Splice the server's Stats_outliers body in verbatim: it is
         already one complete JSON object. *)
      Buffer.add_string b "  \"outliers\": ";
      Buffer.add_string b (String.trim json);
      Buffer.add_string b ",\n");
  Buffer.add_string b
    (Printf.sprintf "  \"latency\": %s\n}\n" (Latency.to_json r.latency));
  Buffer.contents b
