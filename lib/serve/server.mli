(** The live multicore RPC server: TQ's two-level structure over real
    sockets.

    Level 1 is the I/O plane — [lanes] independent dispatcher lanes
    ({!Lane}).  Each lane owns a shard of the connections (dealt out by
    the shared {!Listener}'s round-robin accept spreading) and a
    disjoint slice of the workers (worker [w] belongs to lane
    [w mod lanes]), and runs the classic dispatcher loop: reassemble
    length-prefixed frames, steer each request (KV by key hash within
    the slice so per-key state stays on one core, everything else JSQ
    over the slice's in-flight counters), and write completed responses
    back through pooled zero-copy framing ({!Pool},
    {!Protocol.Outbuf}).  Lanes never execute request work — blind
    scheduling, per-*request* dispatcher cost; with [lanes = 1] the
    plane is exactly the single-dispatcher design.  Lane 0 runs on the
    thread that calls {!serve}; lanes 1.. get their own domains.

    Level 2 is a persistent {!Tq_runtime.Parallel} pool: worker domains
    that force-multitask request fibers with wall-clock quanta and push
    encoded responses onto per-worker SPSC reply rings the dispatcher
    polls.

    Overload protection happens at the socket boundary, before any
    dispatch cost: a NIC-style ring-depth gate (shed when pool-wide
    in-flight reaches [rx_depth], like {!Tq_net.Nic} dropping on a full
    RX ring) composed with a pluggable {!Tq_sched.Admission} policy fed
    with completion sojourns.  Shed requests still get an immediate
    [Shed] response, so clients can tell rejection from loss.

    {!stop} triggers graceful drain: stop accepting and parsing,
    finish every dispatched request, flush every reply, then tear the
    pool down — zero admitted requests are lost (the accounting
    invariant [parsed = dispatched + shed] and
    [dispatched = completed] after drain, asserted by the drain test). *)

type config = {
  host : string;  (** bind address; default loopback *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  workers : int;  (** worker domains *)
  lanes : int;
      (** dispatcher lanes; must not exceed [workers] (each lane needs
          a non-empty worker slice).  1 = the classic single-dispatcher
          layout, byte-identical on the wire *)
  quantum_ns : int;  (** forced-multitasking quantum (wall clock) *)
  ring_capacity : int;  (** dispatcher->worker ring depth *)
  rx_depth : int;
      (** shed when pool-wide in-flight requests reach this (the
          RX-ring-depth admission gate) *)
  admission : Tq_sched.Admission.policy;
      (** additional policy gate, fed with completion sojourns *)
  steal : bool;
      (** arm idle-time work stealing in the pool: a worker whose
          queues are empty takes half of the most-loaded sibling deque
          in its lane slice.  Key-steered requests stay pinned to
          their home worker; only unkeyed, not-yet-started work moves.
          Steals surface as [runtime.steals] / [runtime.steal_items] /
          [runtime.steal_failures] and as [Steal] spans *)
  kv_keys : int;  (** prepopulated keys per worker store *)
  seed : int64;
  drain_timeout_s : float;
      (** give up flushing replies to unresponsive clients this long
          after {!stop} (the drain itself — finishing dispatched work —
          is unconditional) *)
  adaptive : Tq_control.Controller.config option;
      (** run the feedback controller: sampled at its [interval_ns] from
          the dispatcher loop, sensing completion burn and backlog,
          actuating per-class pool quanta and the admission shed limit
          (which replaces [admission] with a live [Queue_limit]).
          Decisions surface as [control.*] counters and the
          [Stats_control] RPC view.  [None] = static knobs. *)
  heartbeat_interval_s : float;
      (** worker liveness sampling period for the dispatcher's
          heartbeat monitor; [0] disables the monitor *)
  missed_heartbeats : int;
      (** consecutive no-progress windows before a worker holding work
          is declared dead and its requests are re-dispatched (each
          lane monitors its own slice) *)
  pool_bufs : int;
      (** framing buffers kept on the shared reply-buffer pool's free
          list ({!Pool}); more buffers, fewer allocation misses under
          deep pipelining *)
  pool_buf_bytes : int;
      (** size of each pooled framing buffer; responses that encode
          larger fall back to exact fresh allocations *)
}

(** Loopback, 4 workers, 1 lane, 100 us quanta, 256-deep rings,
    rx_depth 1024, accept-all admission, stealing off, no controller,
    50 ms heartbeats with a 4-miss death verdict, 1024 pooled 4 KiB
    framing buffers. *)
val default_config : config

(** Dispatcher-side request accounting (a snapshot; see {!stats}). *)
type stats = {
  connections : int;  (** connections accepted over the lifetime *)
  parsed : int;  (** request-work frames successfully decoded *)
  dispatched : int;  (** admitted and handed to a worker *)
  completed : int;  (** responses popped from reply rings *)
  shed : int;  (** rejected by ring-depth or admission policy *)
  lost : int;
      (** admitted requests still pending when their lane exited (their
          worker died and re-dispatch never landed); 0 after a clean
          drain *)
  dropped : int;
      (** structural reserve for a future queue-drop path, 0 today;
          together with [lost] it closes the acceptance ledger
          [accepted = completed + lost + dropped + in_flight] *)
  stats_served : int;
      (** Stats RPCs answered at the dispatcher (not counted in
          [parsed], so [parsed = dispatched + shed] stays exact) *)
  protocol_errors : int;  (** malformed frames (connection closed) *)
  orphaned : int;  (** responses whose connection had closed *)
  duplicates : int;
      (** replies for already-answered requests, dropped (a worker
          declared dead completed after its work was re-dispatched) *)
  redispatched : int;
      (** requests moved off a dead worker onto a living one *)
  dead_workers : int;  (** workers declared dead by the heartbeat monitor *)
}

type t

(** [create ?obs ?spans ?tail ?gc config] binds and listens (raising
    [Unix.Unix_error] on e.g. a busy port) and spawns the worker pool.

    [obs] receives the dispatcher-owned [serve.*] counters (aggregate
    and per-class), snapshot gauges and the sojourn distribution; each
    worker domain additionally owns a private [runtime.*] registry
    (quanta, yields, stalls, quantum-length / overshoot / probe-cadence
    distributions) that snapshots merge in lock-free.

    [spans] (default disabled, zero per-request cost) turns on
    cross-domain request spans: the dispatcher records
    accept/parse/dispatch/shed/reply-flush on its own sink, workers
    record ring-hop/quantum/stall on theirs, all stitched by request id
    ({!Tq_obs.Span.merge}) into one Perfetto timeline.

    [tail] (default {!Tq_obs.Tail.null}, zero per-request cost) turns
    on always-on tail forensics: each lane registers one bounded
    reservoir sink that retains the K slowest completions per sliding
    window plus every threshold breach, with controller state and queue
    depths sampled at dispatch time.  Pair it with [spans] to get exact
    per-stage attribution in the dossiers ({!outliers_json}).

    [gc] (a running {!Tq_obs.Gc_events} consumer) wires GC telemetry
    in: workers attribute wall-clock stalls to GC vs OS preemption
    ([runtime.stall_gc] / [runtime.stall_other] instead of
    [runtime.stall_unknown]), and the GC registry joins the snapshot,
    the Prometheus exposition (as [role="gc"]) and {!merged_counters}.
    Start it with the same span collection to also get GC pause spans
    in the trace. *)
val create :
  ?obs:Tq_obs.Obs.t ->
  ?spans:Tq_obs.Span.t ->
  ?tail:Tq_obs.Tail.t ->
  ?gc:Tq_obs.Gc_events.t ->
  config ->
  t

(** The actually bound port — [config.port] unless that was 0. *)
val port : t -> int

(** The configured lane count. *)
val lanes : t -> int

(** [serve t] runs lane 0's dispatcher loop in the calling thread,
    spawns one domain per extra lane, and returns once every lane has
    observed {!stop} and drained.  Call at most once. *)
val serve : t -> unit

(** [stop t] requests graceful drain on every lane; safe from another
    thread or a signal handler.  Idempotent. *)
val stop : t -> unit

(** Live accounting snapshot: per-lane tallies summed.  Safe from any
    thread — cross-lane reads are word-sized plain loads, never torn,
    eventually consistent while lanes run and exact once {!serve} has
    returned. *)
val stats : t -> stats

(** Requests admitted but not yet answered ([dispatched - completed]). *)
val in_flight : t -> int

(** {2 Live observability}

    What the Stats RPC renders; exposed directly for in-process use
    (tests, embedding).  Every view merges all lanes and computes its
    gauges into render-local registries, so these are safe from any
    thread — a lane's own registry keeps exactly one writer. *)

(** The span collection passed to {!create} ({!Tq_obs.Span.null} when
    none was). *)
val spans : t -> Tq_obs.Span.t

(** The tail-forensics collection passed to {!create}
    ({!Tq_obs.Tail.null} when none was). *)
val tail : t -> Tq_obs.Tail.t

(** Span records lost to sink-ring overwrites, summed over every lane —
    the [obs.span_dropped] total; 0 means the trace and the stage
    attribution are complete. *)
val span_dropped : t -> int

(** Completion sojourn latencies (dispatch to reply-ring pop), per
    request class plus ["all"] — each lane records its own registry as
    it polls replies; this pools them with {!Tq_obs.Latency.merge}
    (HDR percentiles at native resolution). *)
val latency : t -> Tq_obs.Latency.t

(** One registry aggregating every lane's [serve.*] metrics with every
    worker's [runtime.*] registry (lock-free merge; eventually
    consistent), plus the render-time gauges and [serve.pool.*]
    framing-pool health. *)
val merged_counters : t -> Tq_obs.Counters.t

(** The live metrics snapshot as a JSON object: accounting, gauges,
    the [io_plane] section (lane count, accept spreading, buffer-pool
    health, per-lane shares), per-class breakdown, runtime totals and
    the latency ladder — the [Stats_json] RPC body. *)
val snapshot_json : t -> string

(** The same snapshot as Prometheus text exposition — the [Stats_text]
    RPC body.  The lanes render as one merged [role="dispatcher"]
    series (the lane split is an implementation axis, so the
    exposition's shape is lane-count independent); workers carry
    [role] / [worker] labels; with spans enabled the per-stage
    decomposition renders as the [tq_serve_stage_ns] histogram
    family. *)
val prometheus : t -> string

(** [breakdown t] — the per-stage sojourn decomposition of the span
    buffers as they stand ({!Tq_obs.Profile.of_records} over a live
    merge): the [Stats_breakdown] RPC body, exposed for in-process
    assertions.  Meaningful only with spans enabled and exact only
    after drain. *)
val breakdown : t -> Tq_obs.Profile.t

(** [outlier_dossiers t ~limit] — the [limit] slowest retained requests
    ([limit <= 0] for all), enriched against the live span merge: exact
    per-stage attribution, quantum/steal/stall counts and overlapping
    GC pauses ({!Tq_obs.Tail.dossiers}). *)
val outlier_dossiers : t -> limit:int -> Tq_obs.Tail.dossier list

(** [outliers_json t ~limit] — the dossiers plus reservoir header as
    one JSON object: the [Stats_outliers] RPC body. *)
val outliers_json : t -> limit:int -> string

(** [outliers_text t ~limit] — the dossiers as a human-readable table:
    the [Stats_outliers_text] RPC body. *)
val outliers_text : t -> limit:int -> string

(** [tail_trace t] — Chrome trace-event JSON restricted to the retained
    outliers (their spans plus overlapping steal/stall/GC records): the
    outlier-only Perfetto timeline ([tq_serve --tail-trace-out]). *)
val tail_trace : t -> string

(** {2 Live fault plane}

    The failure modes of {!Tq_fault.Plan}, inflicted on the running
    server: recovery is proven here, not simulated.  All three are safe
    from the dispatcher thread (e.g. an {!on_tick} hook); [kill_worker]
    and [inject_stall] are also safe from any thread (atomic flags the
    worker reads). *)

(** [inject_stall t ~worker ~duration_ns] — the worker busy-occupies
    its core for the duration: no service, no heartbeat, then recovers
    by itself.  A long enough stall triggers the heartbeat monitor's
    death verdict; the duplicate filter absorbs the resulting races. *)
val inject_stall : t -> worker:int -> duration_ns:int -> unit

(** [kill_worker t ~worker] — the worker domain exits at its next loop
    pass, permanently, abandoning queued work.  The heartbeat monitor
    notices within [missed_heartbeats] windows, declares it dead and
    re-dispatches its pending requests — no request is lost. *)
val kill_worker : t -> worker:int -> unit

(** [pause_dispatcher t ~duration_ns] — every lane does nothing (no
    accepts, reads, replies or verdicts) until the deadline: a
    wedged-I/O-plane fault.  Workers keep serving their rings. *)
val pause_dispatcher : t -> duration_ns:int -> unit

(** [on_tick t f] — call [f ~now_ns] once per lane-0 loop pass (before
    anything else moves, pause included); the hook a fault schedule
    driver ({!Tq_fault.Live}) uses to fire timed events without a
    thread.  Set before {!serve}. *)
val on_tick : t -> (now_ns:int -> unit) -> unit

(** The controller's live state as one JSON object (the [Stats_control]
    RPC body); [None] without [adaptive]. *)
val control_json : t -> string option

(** Workers not declared dead. *)
val alive_workers : t -> int
