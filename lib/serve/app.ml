module Probe_api = Tq_runtime.Probe_api
module Transactions = Tq_tpcc.Transactions

type t = {
  kv : Tq_kv.Store.t;
  db : Tq_tpcc.Schema.t;
  rng : Tq_util.Prng.t;
}

let kv_key i = Printf.sprintf "key%06d" i

let create ?(kv_keys = 1024) ~seed () =
  let kv = Tq_kv.Store.create () in
  for i = 0 to kv_keys - 1 do
    Tq_kv.Store.put kv (kv_key i) (Printf.sprintf "value%06d" i)
  done;
  {
    kv;
    db = Tq_tpcc.Schema.create ~seed ();
    rng = Tq_util.Prng.create ~seed;
  }

let now_wall_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* The synthetic spin kernel: busy work probed every iteration, like a
   loop instrumented by the TQ pass.  Yields whenever the quantum
   expires; time spent yielded does not count as spin progress (the
   deadline is re-read from the wall clock). *)
let spin ~spin_ns =
  let deadline = now_wall_ns () + spin_ns in
  let x = ref 1 in
  while now_wall_ns () < deadline do
    (* a handful of ALU ops per probe so the probe itself is not the
       whole loop body *)
    for _ = 1 to 32 do
      x := (!x * 48271) land 0x3FFFFFFF
    done;
    Probe_api.probe ()
  done;
  ignore (Sys.opaque_identity !x)

let outcome_body : Transactions.outcome -> string = function
  | Ordered { o_id; total } -> Printf.sprintf "ordered:%d:%d" o_id total
  | Paid { amount } -> Printf.sprintf "paid:%d" amount
  | Status { last_order; undelivered_lines } ->
      Printf.sprintf "status:%d:%d"
        (match last_order with Some o -> o | None -> -1)
        undelivered_lines
  | Delivered { orders } -> Printf.sprintf "delivered:%d" orders
  | Stock_low { count } -> Printf.sprintf "stock_low:%d" count

let execute t ~now_ns ~req_id (req : Protocol.request) =
  match
    match req with
    | Echo { spin_ns; payload } ->
        if spin_ns > 0 then spin ~spin_ns;
        payload
    | Kv_get { key } -> (
        let r =
          match Tq_kv.Store.get t.kv key with Some v -> "+" ^ v | None -> "-"
        in
        Probe_api.probe ();
        r)
    | Kv_set { key; value } ->
        Tq_kv.Store.put t.kv key value;
        Probe_api.probe ();
        "+"
    | Tpcc { kind } ->
        let outcome = Transactions.run t.db t.rng kind ~now_ns in
        Probe_api.probe ();
        outcome_body outcome
    | Stats _ ->
        (* Stats requests are answered at the dispatcher; one reaching a
           worker app is a server bug, not a client error. *)
        failwith "Stats request dispatched to a worker"
  with
  | body -> { Protocol.req_id; status = Protocol.Ok; body }
  | exception exn ->
      { Protocol.req_id; status = Protocol.Error (Printexc.to_string exn); body = "" }
