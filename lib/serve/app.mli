(** Per-worker application state and request execution.

    Each worker domain owns one [App.t] — a private key-value store and
    TPC-C database plus a seeded PRNG — so handlers never share mutable
    state across domains.  The dispatcher keeps per-key results
    coherent by steering every KV operation for a key to the same
    worker ({!Protocol.steering_key}); TPC-C and echo requests carry no
    cross-request state and balance freely.

    Handlers run inside worker fibers under forced multitasking: the
    echo spin loop calls the yield probe ({!Tq_runtime.Probe_api.probe})
    every iteration, so a long spin is preempted at quantum boundaries
    exactly like the paper's instrumented benchmarks. *)

type t

(** [create ~seed ()] builds one worker's state: a KV store prepopulated
    with [kv_keys] (default 1024) deterministic keys ([key000042]-style,
    so load-generator GETs hit), and a default-scale TPC-C database. *)
val create : ?kv_keys:int -> seed:int64 -> unit -> t

(** [kv_key i] — the canonical prepopulated key name for index [i] (the
    generator uses the same function, keeping hit rates meaningful). *)
val kv_key : int -> string

(** [execute t ~now_ns req] runs one request to completion (yielding at
    probes) and returns its response.  Handler exceptions become
    [Protocol.Error] responses rather than killing the worker. *)
val execute : t -> now_ns:int -> req_id:int -> Protocol.request -> Protocol.response
