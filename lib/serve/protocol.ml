(* Length-prefixed binary framing.  All integers big-endian.  Frame
   payload layouts:

     request:  req_id:u64  tag:u8  body
       tag 0 Echo:    spin_ns:u32  payload...
       tag 1 Kv_get:  key...
       tag 2 Kv_set:  klen:u16  key  value...
       tag 3 Tpcc:    kind:u8
       tag 4 Stats:   view:u8 (0 json, 1 text, 2 trace, 3/4 breakdown,
                               5 control, 6/7 outliers)
     response: req_id:u64  status:u8  body
       status 0 Ok, 1 Shed, 2 Error (body = message) *)

type stats_view =
  | Stats_json
  | Stats_text
  | Stats_trace
  | Stats_breakdown
  | Stats_breakdown_text
  | Stats_control
  | Stats_outliers of { limit : int }
  | Stats_outliers_text of { limit : int }

type request =
  | Echo of { spin_ns : int; payload : string }
  | Kv_get of { key : string }
  | Kv_set of { key : string; value : string }
  | Tpcc of { kind : Tq_tpcc.Transactions.kind }
  | Stats of { view : stats_view }

type status = Ok | Shed | Error of string
type response = { req_id : int; status : status; body : string }

(* Sized for Stats_trace bodies: a merged span trace of a few hundred
   thousand records is several MB of JSON. *)
let max_frame_bytes = 1 lsl 24
let class_count = 5

let class_of_request = function
  | Echo _ -> 0
  | Kv_get _ -> 1
  | Kv_set _ -> 2
  | Tpcc _ -> 3
  | Stats _ -> 4

let class_name = function
  | 0 -> "echo"
  | 1 -> "kv_get"
  | 2 -> "kv_set"
  | 3 -> "tpcc"
  | 4 -> "stats"
  | i -> invalid_arg (Printf.sprintf "Protocol.class_name: %d" i)

let steering_key = function
  | Kv_get { key } | Kv_set { key; _ } -> Some key
  | Echo _ | Tpcc _ | Stats _ -> None

let view_tag = function
  | Stats_json -> 0
  | Stats_text -> 1
  | Stats_trace -> 2
  | Stats_breakdown -> 3
  | Stats_breakdown_text -> 4
  | Stats_control -> 5
  | Stats_outliers _ -> 6
  | Stats_outliers_text _ -> 7

let view_of_tag = function
  | 0 -> Some Stats_json
  | 1 -> Some Stats_text
  | 2 -> Some Stats_trace
  | 3 -> Some Stats_breakdown
  | 4 -> Some Stats_breakdown_text
  | 5 -> Some Stats_control
  | 6 -> Some (Stats_outliers { limit = 0 })
  | 7 -> Some (Stats_outliers_text { limit = 0 })
  | _ -> None

let kind_tag : Tq_tpcc.Transactions.kind -> int = function
  | Payment -> 0
  | Order_status -> 1
  | New_order -> 2
  | Delivery -> 3
  | Stock_level -> 4

let kind_of_tag : int -> Tq_tpcc.Transactions.kind option = function
  | 0 -> Some Payment
  | 1 -> Some Order_status
  | 2 -> Some New_order
  | 3 -> Some Delivery
  | 4 -> Some Stock_level
  | _ -> None

(* Appends [payload builder] output prefixed with its length. *)
let with_frame b build =
  let body = Buffer.create 64 in
  build body;
  let len = Buffer.length body in
  if len > max_frame_bytes then invalid_arg "Protocol: frame exceeds max_frame_bytes";
  Buffer.add_int32_be b (Int32.of_int len);
  Buffer.add_buffer b body

let encode_request b ~req_id r =
  with_frame b (fun body ->
      Buffer.add_int64_be body (Int64.of_int req_id);
      match r with
      | Echo { spin_ns; payload } ->
          Buffer.add_uint8 body 0;
          Buffer.add_int32_be body (Int32.of_int spin_ns);
          Buffer.add_string body payload
      | Kv_get { key } ->
          Buffer.add_uint8 body 1;
          Buffer.add_string body key
      | Kv_set { key; value } ->
          Buffer.add_uint8 body 2;
          Buffer.add_uint16_be body (String.length key);
          Buffer.add_string body key;
          Buffer.add_string body value
      | Tpcc { kind } ->
          Buffer.add_uint8 body 3;
          Buffer.add_uint8 body (kind_tag kind)
      | Stats { view } -> (
          Buffer.add_uint8 body 4;
          Buffer.add_uint8 body (view_tag view);
          (* outlier views carry a top-N limit (0 = all retained) *)
          match view with
          | Stats_outliers { limit } | Stats_outliers_text { limit } ->
              Buffer.add_uint16_be body limit
          | Stats_json | Stats_text | Stats_trace | Stats_breakdown
          | Stats_breakdown_text | Stats_control -> ()))

let status_tag = function Ok -> 0 | Shed -> 1 | Error _ -> 2

let encode_response b r =
  with_frame b (fun body ->
      Buffer.add_int64_be body (Int64.of_int r.req_id);
      Buffer.add_uint8 body (status_tag r.status);
      match r.status with
      | Error msg -> Buffer.add_string body msg
      | Ok | Shed -> Buffer.add_string body r.body)

let response_frame r =
  let b = Buffer.create (String.length r.body + 16) in
  encode_response b r;
  Buffer.to_bytes b

(* Zero-copy response path: the frame layout is simple enough to size
   exactly and write in place, so workers can encode straight into a
   pooled buffer instead of going through [Buffer] (one allocation for
   the Buffer's backing store plus one copy out per response). *)

let response_body r = match r.status with Error msg -> msg | Ok | Shed -> r.body

let response_frame_len r =
  (* length prefix + req_id:u64 + status:u8 + body *)
  4 + 8 + 1 + String.length (response_body r)

let encode_response_into buf ~off r =
  let body = response_body r in
  let blen = String.length body in
  let flen = 9 + blen in
  if flen > max_frame_bytes then invalid_arg "Protocol: frame exceeds max_frame_bytes";
  if off < 0 || off + 4 + flen > Bytes.length buf then
    invalid_arg "Protocol.encode_response_into: buffer too small";
  Bytes.set_int32_be buf off (Int32.of_int flen);
  Bytes.set_int64_be buf (off + 4) (Int64.of_int r.req_id);
  Bytes.set_uint8 buf (off + 12) (status_tag r.status);
  Bytes.blit_string body 0 buf (off + 13) blen;
  4 + flen

module Outbuf = struct
  (* The mirror image of [Reassembly]: a flat byte region with
     produce-at-back ([len]) and consume-from-front ([head]), so a
     partial [write] just advances the cursor — no [Buffer.contents]
     copy per flush and no reshuffling per short write. *)
  type t = { mutable buf : bytes; mutable head : int; mutable len : int }

  let create ?(capacity = 4096) () =
    if capacity <= 0 then invalid_arg "Outbuf.create: capacity must be positive";
    { buf = Bytes.create capacity; head = 0; len = 0 }

  let pending_bytes t = t.len - t.head
  let is_empty t = t.head = t.len

  let compact t =
    if t.head > 0 && (t.head = t.len || t.head > Bytes.length t.buf / 2) then begin
      Bytes.blit t.buf t.head t.buf 0 (t.len - t.head);
      t.len <- t.len - t.head;
      t.head <- 0
    end

  let reserve t n =
    compact t;
    if t.len + n > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while t.len + n > !cap do
        cap := !cap * 2
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end

  let add_bytes t src ~off ~len =
    if len < 0 || off < 0 || off + len > Bytes.length src then
      invalid_arg "Outbuf.add_bytes: bad slice";
    reserve t len;
    Bytes.blit src off t.buf t.len len;
    t.len <- t.len + len

  let add_buffer t src =
    let len = Buffer.length src in
    reserve t len;
    Buffer.blit src 0 t.buf t.len len;
    t.len <- t.len + len

  let peek t = (t.buf, t.head, pending_bytes t)

  let consume t n =
    if n < 0 || n > pending_bytes t then invalid_arg "Outbuf.consume: bad count";
    t.head <- t.head + n;
    compact t
end

let ( let* ) = Result.bind

let need payload n =
  if Bytes.length payload >= n then Result.Ok () else Result.Error "truncated frame"

let decode_request payload =
  let* () = need payload 9 in
  let req_id = Int64.to_int (Bytes.get_int64_be payload 0) in
  let tag = Bytes.get_uint8 payload 8 in
  let rest off = Bytes.sub_string payload off (Bytes.length payload - off) in
  match tag with
  | 0 ->
      let* () = need payload 13 in
      let spin_ns = Int32.to_int (Bytes.get_int32_be payload 9) in
      if spin_ns < 0 then Result.Error "negative spin"
      else Result.Ok (req_id, Echo { spin_ns; payload = rest 13 })
  | 1 -> Result.Ok (req_id, Kv_get { key = rest 9 })
  | 2 ->
      let* () = need payload 11 in
      let klen = Bytes.get_uint16_be payload 9 in
      let* () = need payload (11 + klen) in
      let key = Bytes.sub_string payload 11 klen in
      Result.Ok (req_id, Kv_set { key; value = rest (11 + klen) })
  | 3 -> (
      let* () = need payload 10 in
      match kind_of_tag (Bytes.get_uint8 payload 9) with
      | Some kind -> Result.Ok (req_id, Tpcc { kind })
      | None -> Result.Error "unknown tpcc kind")
  | 4 -> (
      let* () = need payload 10 in
      match view_of_tag (Bytes.get_uint8 payload 9) with
      | Some view ->
          let view =
            (* the optional u16 limit after the view tag, 0 when absent *)
            if Bytes.length payload < 12 then view
            else
              let limit = Bytes.get_uint16_be payload 10 in
              match view with
              | Stats_outliers _ -> Stats_outliers { limit }
              | Stats_outliers_text _ -> Stats_outliers_text { limit }
              | v -> v
          in
          Result.Ok (req_id, Stats { view })
      | None -> Result.Error "unknown stats view")
  | t -> Result.Error (Printf.sprintf "unknown request tag %d" t)

let decode_response payload =
  let* () = need payload 9 in
  let req_id = Int64.to_int (Bytes.get_int64_be payload 0) in
  let body = Bytes.sub_string payload 9 (Bytes.length payload - 9) in
  match Bytes.get_uint8 payload 8 with
  | 0 -> Result.Ok { req_id; status = Ok; body }
  | 1 -> Result.Ok { req_id; status = Shed; body }
  | 2 -> Result.Ok { req_id; status = Error body; body = "" }
  | t -> Result.Error (Printf.sprintf "unknown status tag %d" t)

module Reassembly = struct
  (* A flat byte buffer with consume-from-front: [head] is the parse
     cursor, [len] the fill level; compaction slides the live region
     back to offset 0 when the dead prefix dominates. *)
  type t = { mutable buf : bytes; mutable head : int; mutable len : int }

  let create () = { buf = Bytes.create 4096; head = 0; len = 0 }
  let pending_bytes t = t.len - t.head

  let compact t =
    if t.head > 0 && (t.head = t.len || t.head > Bytes.length t.buf / 2) then begin
      Bytes.blit t.buf t.head t.buf 0 (t.len - t.head);
      t.len <- t.len - t.head;
      t.head <- 0
    end

  let add t chunk n =
    compact t;
    if t.len + n > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while t.len + n > !cap do
        cap := !cap * 2
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
    Bytes.blit chunk 0 t.buf t.len n;
    t.len <- t.len + n

  let next t =
    if pending_bytes t < 4 then Result.Ok None
    else
      let flen = Int32.to_int (Bytes.get_int32_be t.buf t.head) in
      if flen < 0 || flen > max_frame_bytes then
        Result.Error (Printf.sprintf "bad frame length %d" flen)
      else if pending_bytes t < 4 + flen then Result.Ok None
      else begin
        let payload = Bytes.sub t.buf (t.head + 4) flen in
        t.head <- t.head + 4 + flen;
        compact t;
        Result.Ok (Some payload)
      end
end
