(** Wire protocol of the live RPC server: length-prefixed binary frames
    over a byte stream.

    Every message is a 4-byte big-endian payload length followed by the
    payload.  Requests carry a client-chosen 64-bit id that the server
    echoes back, so clients can pipeline arbitrarily deep on one
    connection; responses to one connection's requests arrive in
    completion order, not submission order (workers multitask).

    The request classes mirror the paper's evaluation applications: a
    spin-loop echo (the synthetic microbenchmark), key-value GET/SET
    (the memcached/RocksDB stand-in, {!Tq_kv}), and TPC-C transactions
    ({!Tq_tpcc}). *)

(** What a {!request.Stats} call asks the server to render: the live
    metrics snapshot as JSON, the same snapshot as Prometheus text
    exposition ({!Tq_obs.Expo}), the merged request-span trace as
    Chrome trace-event JSON ({!Tq_obs.Span.to_chrome}), or the
    per-stage sojourn decomposition ({!Tq_obs.Profile}) as JSON or as
    the human-readable table.  The trace and breakdown views need the
    server running with spans enabled ([--obs] / a trace file);
    otherwise the breakdown views answer with an [Error] status. *)
type stats_view =
  | Stats_json
  | Stats_text
  | Stats_trace
  | Stats_breakdown
  | Stats_breakdown_text
  | Stats_control
      (** the feedback controller's live state (ticks, decisions,
          current quanta and shed limit, per-class burn) as one JSON
          object; an [Error] status when the server runs without
          [--adaptive] *)
  | Stats_outliers of { limit : int }
      (** the tail-forensics dossiers ({!Tq_obs.Tail}): the [limit]
          slowest retained requests ([limit = 0] for all) with exact
          per-stage attribution, as one JSON object; an [Error] status
          when the server runs without tail sampling *)
  | Stats_outliers_text of { limit : int }
      (** the same dossiers as a human-readable table *)

(** One RPC request. *)
type request =
  | Echo of { spin_ns : int; payload : string }
      (** spin for [spin_ns] of wall-clock work under forced
          multitasking, then echo [payload] *)
  | Kv_get of { key : string }
  | Kv_set of { key : string; value : string }
  | Tpcc of { kind : Tq_tpcc.Transactions.kind }
  | Stats of { view : stats_view }
      (** introspection: answered synchronously by the dispatcher, never
          dispatched to a worker, and counted in [stats_served] rather
          than [parsed] — so the [parsed = dispatched + shed] invariant
          stays about request work *)

(** Server verdict carried by every response. *)
type status =
  | Ok
  | Shed  (** rejected by admission control before any work *)
  | Error of string  (** handler raised; the body holds the message *)

(** One RPC response: the echoed request id, a verdict and a
    class-specific body. *)
type response = { req_id : int; status : status; body : string }

(** Largest accepted frame payload; a peer announcing more is a protocol
    error and its connection is closed. *)
val max_frame_bytes : int

(** {2 Request classes} *)

(** Number of request classes (for per-class metric arrays). *)
val class_count : int

(** [class_of_request r] — stable index in [0, class_count). *)
val class_of_request : request -> int

(** [class_name i] — ["echo"], ["kv_get"], ["kv_set"], ["tpcc"] or
    ["stats"]. *)
val class_name : int -> string

(** [steering_key r] — [Some key] for requests that must stick to one
    worker (KV operations: per-key get-after-set consistency needs all
    operations on a key to land on the same core's store); [None] for
    requests the dispatcher may JSQ-balance freely. *)
val steering_key : request -> string option

(** {2 Encoding} *)

(** [encode_request b ~req_id r] appends one complete request frame. *)
val encode_request : Buffer.t -> req_id:int -> request -> unit

(** [encode_response b r] appends one complete response frame. *)
val encode_response : Buffer.t -> response -> unit

(** [response_frame r] — one freshly allocated complete response frame
    (what workers push onto reply rings). *)
val response_frame : response -> bytes

(** [response_frame_len r] — exact size in bytes of [r]'s complete
    frame (length prefix included); what a worker asks the buffer pool
    for before {!encode_response_into}. *)
val response_frame_len : response -> int

(** [encode_response_into buf ~off r] writes [r]'s complete frame into
    [buf] starting at [off] and returns the number of bytes written
    (= {!response_frame_len}).  The zero-copy twin of
    {!response_frame}: encode straight into a pooled buffer, no
    intermediate [Buffer].  Raises [Invalid_argument] when the frame
    would not fit or exceed {!max_frame_bytes}. *)
val encode_response_into : bytes -> off:int -> response -> int

(** [decode_request payload] — parse one frame payload (without the
    length prefix). *)
val decode_request : bytes -> (int * request, string) result

(** [decode_response payload] — parse one frame payload. *)
val decode_response : bytes -> (response, string) result

(** {2 Stream reassembly}

    A growable byte accumulator that splits a TCP byte stream back into
    frame payloads; each side keeps one per connection. *)
module Reassembly : sig
  type t

  (** An empty accumulator. *)
  val create : unit -> t

  (** [add t chunk n] appends the first [n] bytes of [chunk]. *)
  val add : t -> bytes -> int -> unit

  (** [next t] pops the next complete frame payload, if one is buffered.
      [Error _] on an oversized or corrupt length prefix (close the
      connection). *)
  val next : t -> (bytes option, string) result

  (** Bytes buffered but not yet returned as frames. *)
  val pending_bytes : t -> int
end

(** {2 Write accumulation}

    The mirror image of {!Reassembly}: a growable byte region with
    produce-at-back / consume-from-front semantics, one per connection
    on the server side.  Reply frames are blitted in; a flush peeks at
    the live region, writes what the socket takes, and consumes exactly
    that — a partial write costs a cursor bump, not a re-copy, and a
    full flush never calls [Buffer.contents]. *)
module Outbuf : sig
  type t

  (** [create ?capacity ()] — an empty accumulator (default initial
      capacity 4096 bytes; grows by doubling). *)
  val create : ?capacity:int -> unit -> t

  (** [add_bytes t src ~off ~len] appends [len] bytes of [src] starting
      at [off].  Raises [Invalid_argument] on a bad slice. *)
  val add_bytes : t -> bytes -> off:int -> len:int -> unit

  (** [add_buffer t src] appends the whole contents of the [Buffer]
      (a direct blit; the buffer is not cleared). *)
  val add_buffer : t -> Buffer.t -> unit

  (** [peek t] — [(buf, off, len)]: the pending region, valid until the
      next mutating call.  Pass straight to [Unix.write]. *)
  val peek : t -> bytes * int * int

  (** [consume t n] drops the first [n] pending bytes (what the socket
      accepted).  Raises [Invalid_argument] when [n] exceeds the pending
      count. *)
  val consume : t -> int -> unit

  (** Bytes appended but not yet consumed. *)
  val pending_bytes : t -> int

  (** [is_empty t] — no pending bytes (the connection needs no write
      polling). *)
  val is_empty : t -> bool
end
