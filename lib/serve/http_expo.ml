(* A deliberately minimal HTTP/1.1 exposition listener: enough protocol
   for Prometheus scrapers, curl and load balancer health checks, and
   nothing more.  One accept thread, one short-lived thread per
   connection, Connection: close on every response — the endpoint is a
   control-plane sidecar, not a data-plane server, so the classic
   thread-per-request shape is the right simplicity/robustness trade
   here (the RPC plane never touches these threads). *)

type t = {
  sock : Unix.file_descr;
  t_port : int;
  stopped : bool Atomic.t;
  accept_thread : Thread.t;
}

let http_date () =
  (* RFC 7231 IMF-fixdate, hand-rolled: no external date dependency. *)
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  let day = [| "Sun"; "Mon"; "Tue"; "Wed"; "Thu"; "Fri"; "Sat" |] in
  let mon =
    [| "Jan"; "Feb"; "Mar"; "Apr"; "May"; "Jun";
       "Jul"; "Aug"; "Sep"; "Oct"; "Nov"; "Dec" |]
  in
  Printf.sprintf "%s, %02d %s %04d %02d:%02d:%02d GMT" day.(tm.Unix.tm_wday)
    tm.Unix.tm_mday mon.(tm.Unix.tm_mon) (1900 + tm.Unix.tm_year)
    tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  (try
     while !off < n do
       off := !off + Unix.write fd b !off (n - !off)
     done
   with Unix.Unix_error _ -> ())

let respond fd ~status ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.1 %s\r\nDate: %s\r\nContent-Type: %s\r\n\
       Content-Length: %d\r\nConnection: close\r\n\r\n"
      status (http_date ()) content_type (String.length body)
  in
  write_all fd (head ^ body)

(* Read until the end of the request head (CRLFCRLF) or the peer stops
   sending; we only need the request line, so any body is ignored. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 16384 then Buffer.contents buf
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 | (exception Unix.Unix_error _) -> Buffer.contents buf
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          let s = Buffer.contents buf in
          let has_end =
            let rec scan i =
              i >= 0
              && (String.sub s i 4 = "\r\n\r\n" || scan (i - 1))
            in
            String.length s >= 4 && scan (String.length s - 4)
          in
          if has_end then s else go ()
  in
  go ()

let handle ~metrics ~outliers ~healthz fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let head = read_head fd in
      match String.index_opt head '\r' with
      | None -> respond fd ~status:"400 Bad Request" ~content_type:"text/plain" "bad request\n"
      | Some eol -> (
          let line = String.sub head 0 eol in
          match String.split_on_char ' ' line with
          | [ meth; target; _version ] when meth = "GET" || meth = "HEAD" -> (
              (* Strip any query string: /metrics?x=y serves /metrics. *)
              let path =
                match String.index_opt target '?' with
                | Some q -> String.sub target 0 q
                | None -> target
              in
              match path with
              | "/metrics" ->
                  respond fd ~status:"200 OK"
                    ~content_type:"text/plain; version=0.0.4; charset=utf-8"
                    (metrics ())
              | "/outliers" ->
                  respond fd ~status:"200 OK"
                    ~content_type:"application/json; charset=utf-8"
                    (outliers ())
              | "/healthz" ->
                  if healthz () then
                    respond fd ~status:"200 OK" ~content_type:"text/plain" "ok\n"
                  else
                    respond fd ~status:"503 Service Unavailable"
                      ~content_type:"text/plain" "draining\n"
              | _ ->
                  respond fd ~status:"404 Not Found" ~content_type:"text/plain"
                    "not found: try /metrics, /outliers or /healthz\n")
          | _ :: _ :: _ ->
              respond fd ~status:"405 Method Not Allowed"
                ~content_type:"text/plain" "GET only\n"
          | _ ->
              respond fd ~status:"400 Bad Request" ~content_type:"text/plain"
                "bad request\n"))

let start ?(host = "127.0.0.1") ~port ~metrics ~outliers ~healthz () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     Unix.close sock;
     raise e);
  Unix.listen sock 16;
  let t_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stopped = Atomic.make false in
  let accept_thread =
    Thread.create
      (fun () ->
        let rec loop () =
          match Unix.accept sock with
          | fd, _ ->
              ignore (Thread.create (handle ~metrics ~outliers ~healthz) fd);
              loop ()
          | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
              (* stop closed the listening socket under us: done *)
              ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              if not (Atomic.get stopped) then loop ()
        in
        loop ())
      ()
  in
  { sock; t_port; stopped; accept_thread }

let port t = t.t_port

let stop t =
  if not (Atomic.exchange t.stopped true) then (
    (* shutdown, not just close: on Linux, close alone does not wake a
       thread blocked in accept on the same fd — shutdown does, with
       EINVAL, which the accept loop treats as the shutdown signal. *)
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    Thread.join t.accept_thread)
