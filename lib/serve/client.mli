(** A minimal blocking client for {!Server}: one TCP connection,
    synchronous or pipelined calls.

    Used by the loopback tests and as the building block the open-loop
    {!Load_gen} does {e not} use (the generator needs non-blocking
    sockets); anything that just wants to talk to a running [tq_serve]
    — demos, smoke checks, debugging — starts here. *)

type t

(** [connect ~host ~port ()] — blocking TCP connect with Nagle
    disabled.  Default host is loopback. *)
val connect : ?host:string -> port:int -> unit -> t

(** [send t ~req_id req] writes one request frame (blocking until the
    kernel accepts it); pair with {!recv} to pipeline. *)
val send : t -> req_id:int -> Protocol.request -> unit

(** [recv t] blocks for the next response frame.  Raises [End_of_file]
    if the server closes, [Failure] on a protocol error. *)
val recv : t -> Protocol.response

(** [call t req] — one synchronous round trip ([send] then [recv];
    responses on an otherwise-idle connection come back in order). *)
val call : t -> Protocol.request -> Protocol.response

(** [stats ?view t] — one Stats round trip, returning the rendered body
    (default view: the JSON snapshot).  Raises [Failure] if the server
    answers anything but [Ok]. *)
val stats : ?view:Protocol.stats_view -> t -> string

(** Close the connection (idempotent). *)
val close : t -> unit
