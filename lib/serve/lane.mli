(** One dispatcher lane of the multi-lane I/O plane.

    A lane is a self-contained copy of the classic dispatcher loop:
    it polls the shared {!Listener} (accept spreading hands it an even
    share of connections), owns those connections outright, steers
    their parsed requests into its own slice of the worker pool
    (workers [w] with [w mod lanes = lane_id] — preserving the SPSC
    one-producer-per-ring contract with zero coordination), polls its
    slice's reply rings and flushes responses back through pooled
    zero-copy framing.

    Nothing on the per-request path crosses lanes, so all per-lane
    state (connections, pending table, tallies, counters, latency,
    span sink) is single-writer plain mutable state.  Cross-lane reads
    of that state — the Stats RPC renderer, [Server.stats] — see
    word-sized plain loads: never torn, eventually consistent, exact
    once the lane's domain is joined.  {!Server} owns lane creation,
    lifecycle and the merged views; this interface exists for it and
    for whitebox tests. *)

(** What a worker pushes onto its reply ring: ids, stamps and the
    response frame in a pooled buffer.  Abstract outside the plane —
    {!Server} only needs the type to size the rings. *)
type reply

(** Everything the lanes share: the partitioned worker pool, the apps
    and reply rings (indexed by global worker), the buffer pool, the
    listener, the stop/pause controls and the fixed serving knobs. *)
type shared = {
  pool : Tq_runtime.Parallel.t;
  apps : App.t array;
  reply_rings : reply Tq_runtime.Spsc_ring.t array;
  bufs : Pool.t;
  listener : Listener.t;
  stop_flag : bool Atomic.t;
  paused_until_ns : int Atomic.t;  (** all lanes idle until this stamp *)
  spans : Tq_obs.Span.t;
  spans_on : bool;
  tail : Tq_obs.Tail.t;  (** tail-forensics reservoirs, one sink per lane *)
  tail_on : bool;
  lanes : int;
  rx_depth : int;
  drain_timeout_s : float;
  heartbeat_interval_ns : int;
  missed_heartbeats : int;
  ctl_latency_ns : int;  (** the controller objective's "good" cutoff *)
}

(** One lane. *)
type t

(** A consistent-on-join snapshot of one lane's tallies; field meanings
    match [Server.stats].  [parsed] is derived as
    [dispatched + shed] from the same two loads the record reports, so
    the accounting identity holds {e exactly} in every snapshot — even
    one rendered by another lane racing this lane's dispatch path.
    [lost] counts requests still pending when the lane exited (their
    worker died and re-dispatch never landed); [dropped] is the
    structural reserve for a future queue-drop path, 0 today — both
    feed the [accepted = completed + lost + dropped + in_flight]
    ledger the server derives. *)
type counts = {
  connections : int;
  parsed : int;
  dispatched : int;
  completed : int;
  shed : int;
  lost : int;
  dropped : int;
  stats_served : int;
  protocol_errors : int;
  orphaned : int;
  duplicates : int;
  redispatched : int;
  dead_workers : int;
}

(** [create sh ~id ~reg ~admission] — lane [id] of [sh.lanes], using
    [reg] as its counter registry (single-writer: only this lane may
    bump it) and a fresh admission controller with policy [admission].
    Raises [Invalid_argument] when the lane's worker slice would be
    empty ([lanes] exceeds the pool's workers). *)
val create :
  shared -> id:int -> reg:Tq_obs.Counters.t -> admission:Tq_sched.Admission.policy -> t

(** The lane's index in [0, lanes). *)
val id : t -> int

(** The lane's counter registry (reads are cross-lane safe). *)
val registry : t -> Tq_obs.Counters.t

(** The lane's latency registry; pool lanes with [Latency.merge]. *)
val latency : t -> Tq_obs.Latency.t

(** The lane's admission controller — the feedback controller retunes
    every lane through [Admission.set_policy] (the policy cell is
    atomic). *)
val admission : t -> Tq_sched.Admission.t

(** Connections currently owned by the lane. *)
val open_conns : t -> int

(** Snapshot of the lane's tallies (plain cross-lane reads: eventually
    consistent live, exact after the lane's domain joins). *)
val counts : t -> counts

(** Requests dispatched but not yet completed by this lane. *)
val in_flight : t -> int

(** Span records this lane's sink lost to ring overwrites — the
    [obs.span_dropped] per-lane gauge; 0 means every span of every
    request is still in the buffer. *)
val span_dropped : t -> int

(** [ctl_counts t ~class_idx] — cumulative [(completed, good, shed)]
    for one request class: the controller's per-lane sensing input,
    summed across lanes by the lane-0 tick. *)
val ctl_counts : t -> class_idx:int -> int * int * int

(** [set_stats_renderer t f] wires the server-level closure that
    renders a Stats RPC view across all lanes; the lane answers stats
    requests synchronously through it.  Must be set before {!run}. *)
val set_stats_renderer :
  t -> (Protocol.stats_view -> (string, string) result) -> unit

(** [set_tick t f] — a hook called once per loop pass with the current
    wall clock; the server installs the controller tick and live-fault
    schedule on lane 0.  Must be set before {!run}. *)
val set_tick : t -> (now_ns:int -> unit) -> unit

(** [run t] — the lane loop: accept/read/dispatch/reply/flush until the
    shared stop flag is observed and the lane's own work has drained
    (bounded by [drain_timeout_s]).  Blocks; call from the lane's
    domain.  Closes the lane's connections on exit; the caller retains
    pool shutdown and listener close. *)
val run : t -> unit
