(** Wall-clock fault schedule for the live serving path.

    The DES {!Injector} proves robustness in simulation; this module
    carries the same failure modes to a real running server.  Build a
    schedule from typed {!event}s (or {!parse} a CLI spec), then {!poll}
    it from the loop that owns the clock — e.g. the dispatcher's
    [Server.on_tick] hook — with the {!actions} that actually inflict
    each fault ([Server.inject_stall] / [kill_worker] /
    [pause_dispatcher]).  Threadless and deterministic: an event fires
    on the first poll at or after its deadline.

    Event times are relative to the {e first poll}, not to process
    start, so a schedule aligns with the serving window regardless of
    startup cost. *)

(** One scheduled fault.  [at_ns] is schedule-relative. *)
type event =
  | Stall of { at_ns : int; worker : int; duration_ns : int }
      (** busy-occupy one worker core: no service, no heartbeat *)
  | Kill of { at_ns : int; worker : int }
      (** the worker domain exits permanently, abandoning queued work *)
  | Pause of { at_ns : int; duration_ns : int }
      (** the dispatcher loop goes silent for the duration *)

(** How to inflict each fault kind on the target system. *)
type actions = {
  stall : worker:int -> duration_ns:int -> unit;
  kill : worker:int -> unit;
  pause : duration_ns:int -> unit;
}

type t

(** [create events] — a schedule; order does not matter. *)
val create : event list -> t

(** [poll t ~now_ns actions] — fire every event due at [now_ns]
    (against the first poll's epoch) and return how many fired. *)
val poll : t -> now_ns:int -> actions -> int

(** Events not yet fired. *)
val pending : t -> int

(** Events fired so far. *)
val fired : t -> int

(** [parse spec] — comma-separated events, times in milliseconds from
    the schedule epoch: [stall@T:wN:D] (stall worker N at T for D),
    [kill@T:wN], [pause@T:D].  E.g.
    ["stall@200:w0:50,kill@500:w1,pause@800:20"]. *)
val parse : string -> (event list, string) result
