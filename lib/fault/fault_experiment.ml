(* The fault-run driver: Experiment.run's shape, plus the robustness
   stack — fault injection, retry with backoff, admission control, and
   dispatcher health tracking — wired around any of the three systems.

   Goodput is the headline number: eventual completions (first useful
   completion per request, across retries) within [deadline_ns] of the
   original arrival, so both losses and deadline-blown stragglers count
   against a system. *)

module Sim = Tq_engine.Sim
module Prng = Tq_util.Prng
module Metrics = Tq_workload.Metrics
module Arrivals = Tq_workload.Arrivals
module Retry = Tq_workload.Retry
module Two_level = Tq_sched.Two_level
module System_intf = Tq_sched.System_intf
module Admission = Tq_sched.Admission
module Job = Tq_sched.Job

type config = {
  seed : int64;
  duration_ns : int;
  rate_rps : float;
  faults : Plan.spec list;
  retry : Retry.config option;  (** [None] = no client timeout/retry *)
  admission : Admission.policy;  (** TQ only; baselines have no gate *)
  health_interval_ns : int option;
      (** TQ only: heartbeat period for dispatcher health tracking;
          [None] = no failure handling (the ablation) *)
  missed_heartbeats : int;
  deadline_ns : int;  (** goodput deadline per request *)
  controller : Tq_control.Controller.config option;
      (** feedback control of quantum + admission; [None] = static knobs *)
}

let default_config ~rate_rps ~duration_ns =
  {
    seed = 42L;
    duration_ns;
    rate_rps;
    faults = [];
    retry = Some Retry.default_config;
    admission = Admission.Accept_all;
    health_interval_ns = Some 20_000;
    missed_heartbeats = 2;
    deadline_ns = 200_000;
    controller = None;
  }

type result = {
  metrics : Metrics.t;
  offered : int;
  duration_ns : int;
  deadline_ns : int;
  goodput : int;  (** eventual completions within the deadline *)
  goodput_rps : float;  (** over the post-warm-up window *)
  events : int;
  acct : Two_level.accounting option;  (** TQ only *)
  lost : int;  (** jobs destroyed by core failures *)
  stranded : int;  (** jobs still in the system when the sim drained *)
  stalls_injected : int;
  stall_ns_injected : int;
  kills : int;
  outages : int;
  control_ticks : int;  (** controller samples taken (0 without one) *)
  control_decisions : int;  (** knob movements the controller emitted *)
}

let run ?obs ~system ~workload config =
  let sim = Sim.create () in
  let rng = Prng.create ~seed:config.seed in
  let warmup_ns = config.duration_ns / 10 in
  let metrics = Metrics.create ~workload ~warmup_ns in
  let ctl = Option.map (Tq_control.Controller.create ?obs) config.controller in
  (* Controller sensing: cumulative per-class completion counts, where
     "good" means first-completion sojourn within the objective's
     latency target.  Maintained inline on the completion/reject path so
     the periodic tick only reads. *)
  let class_count = Tq_workload.Service_dist.class_count workload in
  let ctl_completed = Array.make class_count 0
  and ctl_good = Array.make class_count 0
  and ctl_shed = Array.make class_count 0 in
  let ctl_latency_ns =
    match ctl with
    | Some c ->
        (Tq_control.Controller.config c).Tq_control.Controller.objective
          .Tq_obs.Slo.latency_ns
    | None -> max_int
  in
  (* Completion routing is decided after the retry layer exists; the
     systems close over this cell. *)
  let note_complete = ref (fun (_ : Job.t) -> ()) in
  let on_complete job =
    (if ctl <> None then begin
       let idx = job.Job.class_idx in
       ctl_completed.(idx) <- ctl_completed.(idx) + 1;
       if Sim.now sim - job.Job.arrival_ns <= ctl_latency_ns then
         ctl_good.(idx) <- ctl_good.(idx) + 1
     end);
    !note_complete job
  in
  let on_reject (req : Arrivals.request) =
    if ctl <> None then
      ctl_shed.(req.class_idx) <- ctl_shed.(req.class_idx) + 1
  in
  (* One path over the packed instance: System_intf carries the
     per-system differences (admission is TQ-only, the health monitor is
     a no-op elsewhere, fault hooks address worker ground truth). *)
  let inst =
    System_intf.instantiate system sim ~rng:(Prng.split rng) ~metrics ?obs
      ~admission:config.admission ~on_complete ~on_reject ()
  in
  (* Close the loop: sample the running system at the controller's
     cadence and apply whatever knob movements it returns. *)
  (match ctl with
  | Some c ->
      let apply = function
        | Tq_control.Controller.Set_quantum { class_idx; quantum_ns } ->
            System_intf.set_quantum inst ~class_idx ~quantum_ns
        | Tq_control.Controller.Set_shed_limit { max_in_system } ->
            System_intf.set_admission inst (Admission.Queue_limit { max_in_system })
      in
      List.iter apply (Tq_control.Controller.initial_actions c);
      let interval_ns =
        (Tq_control.Controller.config c).Tq_control.Controller.interval_ns
      in
      ignore
        (Sim.periodic sim ~until:config.duration_ns ~interval:interval_ns (fun () ->
             let queued, in_flight, busy_cores = System_intf.obs_snapshot inst in
             let classes =
               Array.init class_count (fun i ->
                   {
                     Tq_control.Controller.completed = ctl_completed.(i);
                     good = ctl_good.(i);
                     shed = ctl_shed.(i);
                   })
             in
             let actions =
               Tq_control.Controller.tick c
                 {
                   Tq_control.Controller.now_ns = Sim.now sim;
                   queued;
                   in_flight;
                   busy_cores;
                   classes;
                 }
             in
             List.iter apply actions)
          : Sim.periodic)
  | None -> ());
  (match config.health_interval_ns with
  | Some interval_ns ->
      System_intf.install_health_monitor inst ~interval_ns ~until_ns:config.duration_ns
        ~missed_heartbeats:config.missed_heartbeats
  | None -> ());
  let submit = System_intf.submit inst in
  let target =
    {
      Injector.cores = System_intf.spec_cores system;
      stall = (fun ~wid ~duration_ns -> System_intf.inject_stall inst ~wid ~duration_ns);
      kill = (fun ~wid -> System_intf.kill_worker inst ~wid);
      dispatcher_outage =
        (fun ~dispatcher ~duration_ns ->
          System_intf.inject_dispatcher_outage inst ~dispatcher ~duration_ns);
    }
  in
  let acct = System_intf.accounting inst in
  let stranded_fn () = System_intf.in_system inst in
  let lost_fn () = System_intf.lost_jobs inst in
  let submit = Injector.wrap_sink ~rng ~metrics ?obs config.faults submit in
  let sink =
    match config.retry with
    | Some retry_config ->
        let r = Retry.create sim ~config:retry_config ~metrics ~submit ?obs () in
        note_complete :=
          (fun job -> Retry.note_completion r ~req_id:job.Job.id ~finish_ns:(Sim.now sim));
        Retry.sink r
    | None ->
        (* No retry layer: every completion is the eventual one and the
           job still carries its original arrival time. *)
        note_complete :=
          (fun job ->
            Metrics.record_eventual metrics ~class_idx:job.Job.class_idx
              ~arrival_ns:job.Job.arrival_ns ~finish_ns:(Sim.now sim));
        submit
  in
  let injected =
    Injector.install sim ~rng:(Prng.split rng) ~target ~until_ns:config.duration_ns
      config.faults
  in
  let issued =
    Arrivals.install sim ~rng:(Prng.split rng) ~workload ~rate_rps:config.rate_rps
      ~duration_ns:config.duration_ns ~sink
  in
  Sim.run sim;
  let goodput = Metrics.goodput_within metrics ~deadline_ns:config.deadline_ns in
  let measured_ns = config.duration_ns - warmup_ns in
  {
    metrics;
    offered = !issued;
    duration_ns = config.duration_ns;
    deadline_ns = config.deadline_ns;
    goodput;
    goodput_rps = float_of_int goodput /. (float_of_int measured_ns /. 1e9);
    events = Sim.events_processed sim;
    acct;
    lost = lost_fn ();
    stranded = stranded_fn ();
    stalls_injected = Injector.stalls_injected injected;
    stall_ns_injected = Injector.stall_ns_injected injected;
    kills = Injector.kills injected;
    outages = Injector.outages injected;
    control_ticks =
      (match ctl with Some c -> Tq_control.Controller.ticks c | None -> 0);
    control_decisions =
      (match ctl with Some c -> Tq_control.Controller.decisions c | None -> 0);
  }

(* Post-warm-up goodput as a fraction of the post-warm-up offered load
   (the Y axis of a degradation curve).  The denominator estimates the
   post-warm-up arrivals as 90% of the total — Poisson variance can push
   the raw quotient a hair past 1, so clamp. *)
let goodput_ratio r =
  let measured = float_of_int r.offered *. 0.9 in
  if measured <= 0.0 then 0.0 else Float.min 1.0 (float_of_int r.goodput /. measured)
