(** Turns a declarative {!Plan} into seeded DES events against a
    running system.

    Injection goes through the narrow {!target} hook record, so TQ and
    both baselines receive the identical fault timeline: stall
    generation draws from one split PRNG, tick by tick in worker order,
    independent of anything the scheduler does. *)

(** How to hurt a particular system. *)
type target = {
  cores : int;
  stall : wid:int -> duration_ns:int -> unit;
  kill : wid:int -> unit;
  dispatcher_outage : dispatcher:int -> duration_ns:int -> unit;
}

(** Injection bookkeeping (counts of injected events). *)
type t

(** [install sim ~rng ~target ~until_ns specs] schedules every fault in
    [specs]; periodic stall generation stops at [until_ns] so the sim
    drains.  [Nic_drop] specs are ignored here — apply {!wrap_sink} to
    the submission path instead.  Raises [Invalid_argument] on invalid
    specs or out-of-range worker ids. *)
val install :
  Tq_engine.Sim.t ->
  rng:Tq_util.Prng.t ->
  target:target ->
  until_ns:int ->
  Plan.spec list ->
  t

(** [wrap_sink ~rng ~metrics specs sink] returns a sink that silently
    loses each request with the combined [Nic_drop] probability of
    [specs] (recording it in [metrics]) and forwards the rest to
    [sink].  Returns [sink] unchanged when the plan has no drops. *)
val wrap_sink :
  rng:Tq_util.Prng.t ->
  metrics:Tq_workload.Metrics.t ->
  ?obs:Tq_obs.Obs.t ->
  Plan.spec list ->
  (Tq_workload.Arrivals.request -> unit) ->
  Tq_workload.Arrivals.request ->
  unit

(** [stalls_injected t] — transient stalls started so far. *)
val stalls_injected : t -> int

(** [stall_ns_injected t] — total injected blackout time in
    nanoseconds. *)
val stall_ns_injected : t -> int

(** [kills t] — permanent core failures delivered. *)
val kills : t -> int

(** [outages t] — dispatcher outages delivered. *)
val outages : t -> int

(** Stop all periodic stall generators early (tests). *)
val stop : t -> unit
