(** The fault-run driver: {!Tq_sched.Experiment.run}'s shape plus the
    robustness stack — fault injection ({!Injector}), client retry with
    capped backoff ({!Tq_workload.Retry}), admission control
    ({!Tq_sched.Admission}), and dispatcher health tracking — wired
    around any of the three systems so degradation curves are
    comparable. *)

(** Everything one fault run needs beyond the system and workload. *)
type config = {
  seed : int64;
  duration_ns : int;
  rate_rps : float;
  faults : Plan.spec list;
  retry : Tq_workload.Retry.config option;  (** [None] = no client retry *)
  admission : Tq_sched.Admission.policy;  (** TQ only; baselines have no gate *)
  health_interval_ns : int option;
      (** TQ only: heartbeat period for dispatcher health tracking;
          [None] = no failure handling (the ablation) *)
  missed_heartbeats : int;
  deadline_ns : int;  (** goodput deadline per request *)
  controller : Tq_control.Controller.config option;
      (** feedback control of quantum + admission: sampled at the
          controller's cadence via a {!Tq_engine.Sim.periodic}, actuated
          through {!Tq_sched.System_intf.S.set_quantum} /
          [set_admission]; [None] = static knobs (the historical
          behavior) *)
}

(** Fault-free defaults: seed 42, retry on, health tracking every 20 us
    (2 missed heartbeats), accept-all admission, 200 us deadline, no
    controller. *)
val default_config : rate_rps:float -> duration_ns:int -> config

(** Outcome of one fault run: throughput accounting plus injection
    tallies. *)
type result = {
  metrics : Tq_workload.Metrics.t;
  offered : int;
  duration_ns : int;
  deadline_ns : int;
  goodput : int;  (** eventual completions within the deadline *)
  goodput_rps : float;  (** over the post-warm-up window *)
  events : int;
  acct : Tq_sched.Two_level.accounting option;  (** TQ only *)
  lost : int;  (** jobs destroyed by core failures *)
  stranded : int;  (** jobs still in the system when the sim drained *)
  stalls_injected : int;
  stall_ns_injected : int;
  kills : int;
  outages : int;
  control_ticks : int;  (** controller samples taken (0 without one) *)
  control_decisions : int;  (** knob movements the controller emitted *)
}

(** [run ?obs ~system ~workload config] executes one seeded fault run:
    installs the plan's injectors, drives the open-loop arrival stream
    (with client retry when configured), drains, and tallies goodput
    against the deadline. *)
val run :
  ?obs:Tq_obs.Obs.t ->
  system:Tq_sched.Experiment.system_spec ->
  workload:Tq_workload.Service_dist.t ->
  config ->
  result

(** Post-warm-up goodput over post-warm-up offered load — the Y axis of
    a degradation curve. *)
val goodput_ratio : result -> float
