(* A wall-clock fault schedule for the live server: the DES injector's
   failure modes (Plan.Stalls / Kills / Dispatcher_outage) as concrete
   timed events, fired against caller-provided hooks from whatever loop
   owns the clock (the dispatcher's on_tick).  No thread of its own —
   events fire on the first poll at-or-after their deadline, which on a
   polling dispatcher means within one loop pass. *)

type event =
  | Stall of { at_ns : int; worker : int; duration_ns : int }
  | Kill of { at_ns : int; worker : int }
  | Pause of { at_ns : int; duration_ns : int }

type actions = {
  stall : worker:int -> duration_ns:int -> unit;
  kill : worker:int -> unit;
  pause : duration_ns:int -> unit;
}

type t = {
  mutable queue : event list;  (** sorted by deadline, relative to [epoch_ns] *)
  mutable epoch_ns : int;  (** set on first poll: events are schedule-relative *)
  mutable fired : int;
}

let at_ns = function
  | Stall { at_ns; _ } | Kill { at_ns; _ } | Pause { at_ns; _ } -> at_ns

let create events =
  {
    queue = List.sort (fun a b -> compare (at_ns a) (at_ns b)) events;
    epoch_ns = -1;
    fired = 0;
  }

let pending t = List.length t.queue
let fired t = t.fired

let poll t ~now_ns actions =
  if t.epoch_ns < 0 then t.epoch_ns <- now_ns;
  let rel = now_ns - t.epoch_ns in
  let rec go n = function
    | ev :: rest when at_ns ev <= rel ->
        (match ev with
        | Stall { worker; duration_ns; _ } -> actions.stall ~worker ~duration_ns
        | Kill { worker; _ } -> actions.kill ~worker
        | Pause { duration_ns; _ } -> actions.pause ~duration_ns);
        go (n + 1) rest
    | rest ->
        t.queue <- rest;
        n
  in
  let n = go 0 t.queue in
  t.fired <- t.fired + n;
  n

(* Spec grammar (comma-separated, times in milliseconds from start):
     stall@T:wN:D   stall worker N at T for D
     kill@T:wN      kill worker N at T
     pause@T:D      pause the dispatcher at T for D
   e.g. "stall@200:w0:50,kill@500:w1,pause@800:20". *)
let parse_one s =
  let ns_of_ms f = int_of_float (f *. 1e6) in
  match Scanf.sscanf_opt s "stall@%f:w%d:%f%!" (fun t w d -> (t, w, d)) with
  | Some (at, worker, dur) ->
      if worker < 0 then Error (Printf.sprintf "bad worker in %S" s)
      else Ok (Stall { at_ns = ns_of_ms at; worker; duration_ns = ns_of_ms dur })
  | None -> (
      match Scanf.sscanf_opt s "kill@%f:w%d%!" (fun t w -> (t, w)) with
      | Some (at, worker) ->
          if worker < 0 then Error (Printf.sprintf "bad worker in %S" s)
          else Ok (Kill { at_ns = ns_of_ms at; worker })
      | None -> (
          match Scanf.sscanf_opt s "pause@%f:%f%!" (fun t d -> (t, d)) with
          | Some (at, dur) -> Ok (Pause { at_ns = ns_of_ms at; duration_ns = ns_of_ms dur })
          | None ->
              Error
                (Printf.sprintf
                   "bad fault event %S (want stall@MS:wN:MS | kill@MS:wN | pause@MS:MS)"
                   s)))

let parse spec =
  let parts =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match parse_one p with Ok e -> go (e :: acc) rest | Error _ as e -> e)
  in
  go [] parts
