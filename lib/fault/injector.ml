(* Turns a declarative {!Plan} into seeded DES events against a system,
   through a narrow hook record so TQ and both baselines inject the
   same way.

   Determinism: stall generation draws from one split PRNG per install,
   tick by tick in worker order, so a fixed seed replays the identical
   fault timeline regardless of what the scheduler is doing. *)

module Sim = Tq_engine.Sim
module Prng = Tq_util.Prng

type target = {
  cores : int;
  stall : wid:int -> duration_ns:int -> unit;
  kill : wid:int -> unit;
  dispatcher_outage : dispatcher:int -> duration_ns:int -> unit;
}

type t = {
  mutable stalls_injected : int;
  mutable stall_ns_injected : int;
  mutable kills : int;
  mutable outages : int;
  mutable periodics : Sim.periodic list;
}

let scope_wids ~cores = function
  | Plan.All_workers -> List.init cores (fun i -> i)
  | Plan.Workers ws ->
      List.iter
        (fun w ->
          if w < 0 || w >= cores then invalid_arg "Injector: worker id out of range")
        ws;
      ws

let install sim ~rng ~target ~until_ns specs =
  List.iter Plan.validate specs;
  if until_ns <= 0 then invalid_arg "Injector.install: until_ns must be positive";
  let stats =
    { stalls_injected = 0; stall_ns_injected = 0; kills = 0; outages = 0; periodics = [] }
  in
  let add_periodic p = stats.periodics <- p :: stats.periodics in
  List.iter
    (fun spec ->
      match spec with
      | Plan.Stalls { intensity; duration; scope; tick_ns } ->
          if intensity > 0.0 then begin
            let wids = scope_wids ~cores:target.cores scope in
            let rng = Prng.split rng in
            (* Per tick per core, P(start a stall) chosen so stalled
               time / total time -> intensity. *)
            let p =
              Float.min 1.0
                (intensity *. float_of_int tick_ns /. Plan.mean_duration_ns duration)
            in
            add_periodic
              (Sim.periodic sim ~until:until_ns ~interval:tick_ns (fun () ->
                   List.iter
                     (fun wid ->
                       if Prng.bernoulli rng ~p then begin
                         let d = Plan.sample_duration rng duration in
                         stats.stalls_injected <- stats.stalls_injected + 1;
                         stats.stall_ns_injected <- stats.stall_ns_injected + d;
                         target.stall ~wid ~duration_ns:d
                       end)
                     wids))
          end
      | Plan.Kill { wid; at_ns } ->
          if wid >= target.cores then invalid_arg "Injector: kill worker id out of range";
          ignore
            (Sim.schedule_at sim ~time:(max (Sim.now sim + 1) at_ns) (fun () ->
                 stats.kills <- stats.kills + 1;
                 target.kill ~wid)
              : Sim.event)
      | Plan.Dispatcher_outage { dispatcher; at_ns; duration_ns } ->
          ignore
            (Sim.schedule_at sim ~time:(max (Sim.now sim + 1) at_ns) (fun () ->
                 stats.outages <- stats.outages + 1;
                 target.dispatcher_outage ~dispatcher ~duration_ns)
              : Sim.event)
      | Plan.Nic_drop _ ->
          (* Handled on the submission path: see [wrap_sink]. *)
          ())
    specs;
  stats

(* The NIC-path drop filter: wraps a system's submission sink.  Dropped
   requests vanish silently — the client only notices via its timeout,
   which is what makes the retry layer earn its keep. *)
let wrap_sink ~rng ~metrics ?(obs = Tq_obs.Obs.disabled ()) specs sink =
  let drop_prob =
    List.fold_left
      (fun acc spec ->
        match spec with Plan.Nic_drop { prob } -> 1.0 -. ((1.0 -. acc) *. (1.0 -. prob)) | _ -> acc)
      0.0 specs
  in
  if drop_prob <= 0.0 then sink
  else begin
    let rng = Prng.split rng in
    let trace = obs.Tq_obs.Obs.trace in
    fun (req : Tq_workload.Arrivals.request) ->
      if Prng.bernoulli rng ~p:drop_prob then begin
        Tq_workload.Metrics.record_nic_drop metrics;
        if Tq_obs.Trace.enabled trace then
          Tq_obs.Trace.record trace ~ts_ns:req.arrival_ns ~lane:Tq_obs.Event.Global
            (Tq_obs.Event.Drop { job_id = req.req_id; reason = "nic" })
      end
      else sink req
  end

let stalls_injected t = t.stalls_injected
let stall_ns_injected t = t.stall_ns_injected
let kills t = t.kills
let outages t = t.outages
let stop t = List.iter Sim.stop_periodic t.periodics
