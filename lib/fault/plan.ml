(* Declarative fault plans.

   A plan is a list of specs; the injector turns each into
   deterministic, seeded DES events.  Keeping the description separate
   from the mechanism means the same plan can be replayed against TQ and
   both baselines, which is what makes degradation curves comparable. *)

module Prng = Tq_util.Prng

type duration =
  | Fixed_ns of int
  | Uniform_ns of { lo : int; hi : int }
  | Exp_ns of { mean : int }

type scope = All_workers | Workers of int list

type spec =
  | Stalls of { intensity : float; duration : duration; scope : scope; tick_ns : int }
      (** Transient core blackouts: each tick, each in-scope core starts
          a stall with probability chosen so the long-run expected
          fraction of time stalled is [intensity]. *)
  | Kill of { wid : int; at_ns : int }  (** permanent core failure at [at_ns] *)
  | Dispatcher_outage of { dispatcher : int; at_ns : int; duration_ns : int }
      (** the dispatcher core goes dark for [duration_ns]; arrivals
          still queue behind the outage *)
  | Nic_drop of { prob : float }
      (** each request is lost on the NIC path with probability [prob] *)

let mean_duration_ns = function
  | Fixed_ns d -> float_of_int d
  | Uniform_ns { lo; hi } -> float_of_int (lo + hi) /. 2.0
  | Exp_ns { mean } -> float_of_int mean

let sample_duration rng = function
  | Fixed_ns d -> d
  | Uniform_ns { lo; hi } -> Prng.int_in_range rng ~lo ~hi
  | Exp_ns { mean } ->
      max 1 (int_of_float (Float.round (Prng.exponential rng ~mean:(float_of_int mean))))

let validate_duration = function
  | Fixed_ns d -> if d <= 0 then invalid_arg "Plan: stall duration must be positive"
  | Uniform_ns { lo; hi } ->
      if lo <= 0 || hi < lo then invalid_arg "Plan: bad uniform duration range"
  | Exp_ns { mean } -> if mean <= 0 then invalid_arg "Plan: mean duration must be positive"

let validate = function
  | Stalls { intensity; duration; scope = _; tick_ns } ->
      if not (intensity >= 0.0 && intensity <= 1.0) then
        invalid_arg "Plan: stall intensity must be in [0, 1]";
      if tick_ns <= 0 then invalid_arg "Plan: stall tick must be positive";
      validate_duration duration
  | Kill { wid; at_ns } ->
      if wid < 0 then invalid_arg "Plan: negative worker id";
      if at_ns < 0 then invalid_arg "Plan: negative kill time"
  | Dispatcher_outage { dispatcher; at_ns; duration_ns } ->
      if dispatcher < 0 then invalid_arg "Plan: negative dispatcher id";
      if at_ns < 0 then invalid_arg "Plan: negative outage time";
      if duration_ns <= 0 then invalid_arg "Plan: outage duration must be positive"
  | Nic_drop { prob } ->
      if not (prob >= 0.0 && prob <= 1.0) then
        invalid_arg "Plan: drop probability must be in [0, 1]"

let duration_to_string = function
  | Fixed_ns d -> Printf.sprintf "%dns" d
  | Uniform_ns { lo; hi } -> Printf.sprintf "U[%d,%d]ns" lo hi
  | Exp_ns { mean } -> Printf.sprintf "Exp(%dns)" mean

let to_string = function
  | Stalls { intensity; duration; scope; tick_ns } ->
      Printf.sprintf "stalls(%.1f%%, %s, %s, tick=%dns)" (100.0 *. intensity)
        (duration_to_string duration)
        (match scope with
        | All_workers -> "all"
        | Workers ws -> String.concat "," (List.map string_of_int ws))
        tick_ns
  | Kill { wid; at_ns } -> Printf.sprintf "kill(worker %d @ %dns)" wid at_ns
  | Dispatcher_outage { dispatcher; at_ns; duration_ns } ->
      Printf.sprintf "outage(dispatcher %d @ %dns for %dns)" dispatcher at_ns duration_ns
  | Nic_drop { prob } -> Printf.sprintf "nic-drop(p=%.3f)" prob
