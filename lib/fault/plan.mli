(** Declarative fault plans.

    A plan is a list of {!spec}s; {!Injector.install} turns each into
    deterministic, seeded DES events.  The description is separate from
    the mechanism so the same plan can be replayed against TQ and both
    baselines, making degradation curves comparable. *)

(** How long one injected stall lasts. *)
type duration =
  | Fixed_ns of int  (** always exactly this long *)
  | Uniform_ns of { lo : int; hi : int }  (** inclusive range *)
  | Exp_ns of { mean : int }  (** exponential with the given mean *)

(** Which worker cores a spec applies to. *)
type scope = All_workers | Workers of int list

(** One fault source; a plan is a list of these. *)
type spec =
  | Stalls of { intensity : float; duration : duration; scope : scope; tick_ns : int }
      (** Transient core blackouts (GC pauses, SMIs, antagonists): each
          [tick_ns], each in-scope core starts a stall with probability
          [intensity * tick_ns / mean_duration], so the long-run
          expected fraction of time stalled is [intensity]. *)
  | Kill of { wid : int; at_ns : int }  (** permanent core failure at [at_ns] *)
  | Dispatcher_outage of { dispatcher : int; at_ns : int; duration_ns : int }
      (** the dispatcher core goes dark for [duration_ns]; arrivals
          still queue behind the outage *)
  | Nic_drop of { prob : float }
      (** each request is lost on the NIC path with probability [prob] *)

(** [mean_duration_ns d] — the expected stall length in nanoseconds. *)
val mean_duration_ns : duration -> float

(** [sample_duration rng d] draws one stall length; deterministic given
    the PRNG state. *)
val sample_duration : Tq_util.Prng.t -> duration -> int

(** [validate spec] raises [Invalid_argument] on out-of-range
    parameters (negative durations, probabilities outside [0,1], …). *)
val validate : spec -> unit

(** [to_string spec] — a one-line human-readable description, used in
    table headers. *)
val to_string : spec -> string
