(** Declarative fault plans.

    A plan is a list of {!spec}s; {!Injector.install} turns each into
    deterministic, seeded DES events.  The description is separate from
    the mechanism so the same plan can be replayed against TQ and both
    baselines, making degradation curves comparable. *)

type duration =
  | Fixed_ns of int
  | Uniform_ns of { lo : int; hi : int }  (** inclusive range *)
  | Exp_ns of { mean : int }

type scope = All_workers | Workers of int list

type spec =
  | Stalls of { intensity : float; duration : duration; scope : scope; tick_ns : int }
      (** Transient core blackouts (GC pauses, SMIs, antagonists): each
          [tick_ns], each in-scope core starts a stall with probability
          [intensity * tick_ns / mean_duration], so the long-run
          expected fraction of time stalled is [intensity]. *)
  | Kill of { wid : int; at_ns : int }  (** permanent core failure at [at_ns] *)
  | Dispatcher_outage of { dispatcher : int; at_ns : int; duration_ns : int }
      (** the dispatcher core goes dark for [duration_ns]; arrivals
          still queue behind the outage *)
  | Nic_drop of { prob : float }
      (** each request is lost on the NIC path with probability [prob] *)

val mean_duration_ns : duration -> float

(** Deterministic given the PRNG state. *)
val sample_duration : Tq_util.Prng.t -> duration -> int

(** Raises [Invalid_argument] on out-of-range parameters. *)
val validate : spec -> unit

val to_string : spec -> string
