(** Tiny Quanta: efficient microsecond-scale blind scheduling.

    The umbrella module.  The two mechanisms of the paper live in:

    - {!Sched} — two-level scheduling: a load-balancing-only dispatcher
      (JSQ with Maximum-Serviced-Quanta ties) over per-core processor-
      sharing workers, plus the Shinjuku and Caladan baseline models and
      the experiment driver that regenerates the paper's figures.
    - {!Instrument} — forced multitasking's compiler side: the bounded-
      path physical-clock probe-placement pass, the instruction-counter
      baselines, and the cycle-accurate VM measuring probing overhead
      and yield-timing accuracy (Table 3).
    - {!Runtime} — forced multitasking's runtime side, for real OCaml
      code: effects-based fibers, the probe/yield API, single-domain and
      multi-domain executors.

    Substrates: {!Engine} (discrete-event simulation), {!Workload}
    (Table 1 workloads and Poisson clients), {!Cache} (hierarchy
    simulator and reuse-distance analysis), {!Kv} (the RocksDB stand-in),
    {!Tpcc} (OLTP substrate), {!Ir} (the miniature compiler IR),
    {!Stats} and {!Util}.

    Quickstart: simulate TQ on the extreme-bimodal workload and print
    the p99.9 sojourn of short requests —

    {[
      let result =
        Tq.Sched.Experiment.run
          ~system:(Tq.Sched.Presets.tq ())
          ~workload:Tq.Workload.Table1.extreme_bimodal
          ~rate_rps:3_000_000.0
          ~duration_ns:(Tq.Util.Time_unit.ms 100.0) ()
      in
      Tq.Workload.Metrics.sojourn_percentile result.metrics ~class_idx:0 99.9
    ]} *)

module Util = Tq_util
module Stats = Tq_stats
module Engine = Tq_engine
module Workload = Tq_workload
module Sched = Tq_sched
module Ir = Tq_ir
module Instrument = Tq_instrument
module Cache = Tq_cache
module Kv = Tq_kv
module Tpcc = Tq_tpcc
module Runtime = Tq_runtime
module Net = Tq_net
module Queueing = Tq_queueing
module Obs = Tq_obs

(** [version] of this reproduction. *)
let version = "1.0.0"
