(** Bounded work-stealing task pool over OCaml 5 Domains.

    The pool shards a task array round-robin into one bounded queue per
    worker domain; a worker drains its own queue first and then steals
    single tasks from the others through lock-free atomic cursors.
    Results land in an output array indexed by task position, so the
    merged output is identical no matter which domain ran which task or
    in what order they finished. *)

(** Execution report of one {!run}: how the work spread over domains. *)
type stats = {
  jobs : int;  (** worker domains actually used (clamped to task count) *)
  per_domain_tasks : int array;  (** tasks completed by each domain *)
  per_domain_busy_ns : int array;
      (** wall-clock nanoseconds each domain spent inside task bodies —
          the utilization numerator; divide by [wall_ns] for a
          per-domain busy fraction *)
  steals : int;  (** tasks claimed from another domain's queue *)
  wall_ns : int;  (** end-to-end wall-clock time of the pool run *)
}

(** [default_jobs ()] is the [TQ_JOBS] environment variable when it
    parses as a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [run ?jobs tasks] executes every task and returns their results in
    task order plus the execution {!stats}.  [jobs] defaults to
    {!default_jobs} and is clamped to [[1, Array.length tasks]];
    [jobs = 1] runs inline on the calling domain with no Domain spawned.
    Tasks must be thread-safe (no shared mutable state) and must not
    print.  If a task raises, the first such exception (in task order)
    is re-raised after all tasks have been joined. *)
val run : ?jobs:int -> (unit -> 'a) array -> 'a array * stats

(** [map ?jobs f arr] is [run] over [f] applied to each element,
    discarding the stats: a drop-in parallel [Array.map]. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
