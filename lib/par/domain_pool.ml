(* Bounded work-stealing pool over OCaml 5 Domains.

   Tasks are pre-sharded round-robin into per-worker queues; each queue
   is an immutable slice of task indices with an atomic cursor, so both
   the owner and thieves claim work with one fetch-and-add and no locks.
   A worker drains its own shard first (cache-friendly, zero contention
   in the balanced case) and only then steals from the other shards,
   which bounds total claims at exactly [n] tasks.

   Determinism: every task writes its result into its own slot of the
   output array, and the merge is by task index — scheduling decides
   only *when* a task runs, never what it computes (provided tasks close
   over their own state; see DESIGN.md "tq_par").  jobs=1 runs inline on
   the calling domain, so the sequential path has no Domain overhead. *)

type stats = {
  jobs : int;
  per_domain_tasks : int array;
  per_domain_busy_ns : int array;
  steals : int;
  wall_ns : int;
}

let default_jobs () =
  match Sys.getenv_opt "TQ_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* One shard: a fixed slice of task indices plus the claim cursor. *)
type shard = { indices : int array; cursor : int Atomic.t }

let claim shard =
  let i = Atomic.fetch_and_add shard.cursor 1 in
  if i < Array.length shard.indices then Some shard.indices.(i) else None

let run ?jobs (tasks : (unit -> 'a) array) =
  let n = Array.length tasks in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = max 1 (min jobs (max 1 n)) in
  let started = now_ns () in
  let results : ('a, exn) result option array = Array.make n None in
  let per_domain_tasks = Array.make jobs 0 in
  let per_domain_busy_ns = Array.make jobs 0 in
  let steals = Atomic.make 0 in
  let run_task w idx =
    let t0 = now_ns () in
    (results.(idx) <-
       Some (match tasks.(idx) () with v -> Ok v | exception e -> Error e));
    per_domain_busy_ns.(w) <- per_domain_busy_ns.(w) + (now_ns () - t0);
    per_domain_tasks.(w) <- per_domain_tasks.(w) + 1
  in
  if jobs = 1 then Array.iteri (fun idx _ -> run_task 0 idx) tasks
  else begin
    let shards =
      Array.init jobs (fun w ->
          let mine = ref [] in
          for idx = n - 1 downto 0 do
            if idx mod jobs = w then mine := idx :: !mine
          done;
          { indices = Array.of_list !mine; cursor = Atomic.make 0 })
    in
    let worker w =
      let rec drain_own () =
        match claim shards.(w) with
        | Some idx ->
            run_task w idx;
            drain_own ()
        | None -> ()
      in
      drain_own ();
      (* Own shard exhausted: steal a task at a time from the others,
         rescanning until every shard is dry. *)
      let rec steal_round () =
        let stole = ref false in
        for off = 1 to jobs - 1 do
          match claim shards.((w + off) mod jobs) with
          | Some idx ->
              Atomic.incr steals;
              run_task w idx;
              stole := true
          | None -> ()
        done;
        if !stole then steal_round ()
      in
      steal_round ()
    in
    let domains =
      Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    Array.iter Domain.join domains
  end;
  let out =
    Array.init n (fun i ->
        match results.(i) with
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false (* every index claimed exactly once *))
  in
  ( out,
    {
      jobs;
      per_domain_tasks;
      per_domain_busy_ns;
      steals = Atomic.get steals;
      wall_ns = now_ns () - started;
    } )

let map ?jobs f arr =
  fst (run ?jobs (Array.map (fun x () -> f x) arr))
