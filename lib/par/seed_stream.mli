(** Splittable PRNG streams for parallel sweep grids.

    Every point of a sweep grid draws from its own stream, keyed by
    [(experiment id, point index, root seed)].  Because the key never
    mentions the executing domain or the completion order, a sweep
    produces byte-identical results at any [--jobs] value — the
    determinism argument is spelled out in DESIGN.md ("tq_par"). *)

(** [derive ~experiment ~point ~seed] maps the grid-point key to a
    64-bit sub-seed.  The mapping is a fixed pure function (FNV-1a over
    [experiment], splitmix64-mixed with [point] and [seed]): the same
    key always yields the same sub-seed, across runs, processes and
    hosts.  Raises [Invalid_argument] if [point] is negative. *)
val derive : experiment:string -> point:int -> seed:int64 -> int64

(** [prng ~experiment ~point ~seed] is
    [Tq_util.Prng.create ~seed:(derive ~experiment ~point ~seed)] — the
    ready-to-use generator for one grid point. *)
val prng : experiment:string -> point:int -> seed:int64 -> Tq_util.Prng.t
