(* Multicore sweep orchestration over the experiment registry.

   The unit of parallelism is the registry *point* (one table).  Points
   are flattened in registry order into a task array, fanned out over
   the Domain_pool, and the merge step reassembles per-experiment table
   lists from the task-indexed result array — so the output is the same
   bytes as the sequential path regardless of domain count or completion
   order.

   Each task first consults the result cache under a key of
   (experiment id, point label, parameter fingerprint, registry seed):
   only points whose inputs changed are recomputed.  Pool utilization
   and cache hit/miss totals are published through the Tq_obs counter
   registry when an [obs] context is supplied. *)

module Registry = Tq_experiments.Registry

(* Every registry point seeds its own PRNGs from this root (via
   Tq_sched.Experiment's default); it is part of the cache key so a
   future change to the registry's seeding invalidates old entries. *)
let registry_seed = 42L

let fingerprint ?(overheads = Tq_sched.Overheads.tq_default) () =
  Format.asprintf "tq_par-fp-v1 scale=%g cores=16 overheads=[%a]"
    Tq_experiments.Harness.scale Tq_sched.Overheads.pp overheads

type outcome = {
  experiment : Registry.experiment;
  tables : Tq_util.Text_table.t list;
}

type stats = { pool : Domain_pool.stats; cache_hits : int; cache_misses : int }

let publish_obs obs (s : stats) =
  match obs with
  | None -> ()
  | Some (o : Tq_obs.Obs.t) ->
      let c = o.Tq_obs.Obs.counters in
      Tq_obs.Counters.add (Tq_obs.Counters.counter c "par.cache.hits") s.cache_hits;
      Tq_obs.Counters.add (Tq_obs.Counters.counter c "par.cache.misses") s.cache_misses;
      Tq_obs.Counters.add (Tq_obs.Counters.counter c "par.steals") s.pool.steals;
      Array.iteri
        (fun i tasks ->
          Tq_obs.Counters.add
            (Tq_obs.Counters.counter c (Printf.sprintf "par.domain%d.tasks" i))
            tasks;
          Tq_obs.Counters.set
            (Tq_obs.Counters.gauge c (Printf.sprintf "par.domain%d.utilization" i))
            (if s.pool.wall_ns = 0 then 0.0
             else
               float_of_int s.pool.per_domain_busy_ns.(i)
               /. float_of_int s.pool.wall_ns))
        s.pool.per_domain_tasks

let run ?jobs ?cache ?obs (experiments : Registry.experiment list) =
  let cache = match cache with Some c -> c | None -> Result_cache.disabled () in
  let params = fingerprint () in
  let tasks =
    Array.of_list
      (List.concat_map
         (fun (e : Registry.experiment) ->
           List.map
             (fun (p : Registry.point) ->
               let key =
                 Result_cache.key ~experiment:e.id ~point:p.label ~params
                   ~seed:registry_seed
               in
               fun () ->
                 match Result_cache.find cache key with
                 | Some table -> table
                 | None ->
                     let table = p.table () in
                     Result_cache.store cache key table;
                     table)
             e.points)
         experiments)
  in
  let results, pool = Domain_pool.run ?jobs tasks in
  (* Merge: peel the flat result array back into registry order. *)
  let cursor = ref 0 in
  let outcomes =
    List.map
      (fun (e : Registry.experiment) ->
        let tables =
          List.map
            (fun (_ : Registry.point) ->
              let t = results.(!cursor) in
              incr cursor;
              t)
            e.points
        in
        { experiment = e; tables })
      experiments
  in
  let stats =
    { pool; cache_hits = Result_cache.hits cache; cache_misses = Result_cache.misses cache }
  in
  publish_obs obs stats;
  (outcomes, stats)

let run_and_print ?jobs ?cache ?obs experiments =
  let outcomes, stats = run ?jobs ?cache ?obs experiments in
  List.iter (fun o -> Registry.print_tables o.experiment o.tables) outcomes;
  stats

let grid ?jobs ~experiment ~seed ~f points =
  Domain_pool.run ?jobs
    (Array.mapi
       (fun i x () ->
         let rng = Seed_stream.prng ~experiment ~point:i ~seed in
         f ~rng ~index:i x)
       points)

let summary (s : stats) =
  let util =
    Array.to_list s.pool.per_domain_busy_ns
    |> List.map (fun busy ->
           if s.pool.wall_ns = 0 then "-"
           else Printf.sprintf "%.0f%%" (100.0 *. float_of_int busy /. float_of_int s.pool.wall_ns))
    |> String.concat " "
  in
  Printf.sprintf
    "jobs=%d wall=%.1fs cache %d hit / %d miss, %d steals, domain utilization: %s"
    s.pool.jobs
    (float_of_int s.pool.wall_ns /. 1e9)
    s.cache_hits s.cache_misses s.pool.steals util
