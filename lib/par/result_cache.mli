(** Content-addressed cache of computed sweep tables.

    A grid point's result is stored under a digest of everything that
    determines it — experiment id, point label, a parameter fingerprint
    (cost model, [TQ_BENCH_SCALE], serialization version) and the root
    seed — so re-running a sweep only recomputes points whose inputs
    changed.  Entries live as one self-checking text file per point
    under the cache directory ([_tq_cache/] by default); deleting that
    directory is always safe and merely forces recomputation.
    DESIGN.md ("tq_par") lists the exact key contents. *)

type t

(** The default cache directory, ["_tq_cache"], relative to the working
    directory of the run. *)
val default_dir : string

(** [create ?dir ()] opens (lazily — the directory is created on first
    store) a cache rooted at [dir], defaulting to {!default_dir}. *)
val create : ?dir:string -> unit -> t

(** [disabled ()] is a cache that never hits, never writes and counts
    nothing — {!find} is a free [None], so callers need no special
    case and a [--no-cache] run reports zero cache traffic. *)
val disabled : unit -> t

(** [key ~experiment ~point ~params ~seed] digests the full grid-point
    identity into a stable hex name.  Any change to any component —
    including a single cost-model field inside [params] — yields a
    different key, which is how invalidation works: stale entries are
    simply never addressed again. *)
val key : experiment:string -> point:string -> params:string -> seed:int64 -> string

(** [find t key] returns the cached table, or [None] when the entry is
    absent, truncated or corrupted (integrity is re-checked on every
    load; a bad entry is a miss, never an error).  Updates the hit/miss
    counters; safe to call from any domain. *)
val find : t -> string -> Tq_util.Text_table.t option

(** [store t key table] persists the table under [key], atomically
    (temp file + rename), creating the cache directory if needed.
    Tables whose cells contain tabs or newlines are silently not cached;
    I/O errors are swallowed — the cache is an accelerator, never a
    correctness dependency. *)
val store : t -> string -> Tq_util.Text_table.t -> unit

(** [hits t] — number of successful {!find} lookups so far. *)
val hits : t -> int

(** [misses t] — number of {!find} lookups that fell through to
    recomputation. *)
val misses : t -> int
