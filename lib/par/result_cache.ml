(* Content-addressed result cache for sweep grid points.

   One file per grid point under [dir], named by the hex key digest.
   The payload is a line-oriented text serialization of the table with
   an MD5 integrity header:

     tqcache1 <md5-of-body>
     <title>
     <tab-joined header>
     <tab-joined row>*

   Loads re-digest the body and re-check row arity, so a truncated or
   bit-flipped entry reads as a miss (recompute) rather than a crash or
   a wrong table.  Stores go through a temp file + rename: concurrent
   domains computing the same point race benignly to an identical file.
   Hit/miss counts are atomics because lookups run on worker domains. *)

type t = {
  dir : string option;  (* None = caching disabled *)
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let default_dir = "_tq_cache"
let magic = "tqcache1"

let create ?(dir = default_dir) () =
  { dir = Some dir; hits = Atomic.make 0; misses = Atomic.make 0 }

let disabled () = { dir = None; hits = Atomic.make 0; misses = Atomic.make 0 }
let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses

let key ~experiment ~point ~params ~seed =
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          [ "tq_par-key-v1"; experiment; point; params; Int64.to_string seed ]))

let path t key = match t.dir with None -> None | Some d -> Some (Filename.concat d key)

(* Cells never contain tabs or newlines in practice (numbers and short
   labels); a table that does is simply not cacheable. *)
let serializable table =
  let clean s = not (String.exists (fun c -> c = '\t' || c = '\n') s) in
  let module T = Tq_util.Text_table in
  clean (T.title table)
  && List.for_all clean (T.header table)
  && List.for_all (List.for_all clean) (T.data_rows table)

let body_of_table table =
  let module T = Tq_util.Text_table in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (T.title table);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.concat "\t" (T.header table));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "\t" row);
      Buffer.add_char buf '\n')
    (T.data_rows table);
  Buffer.contents buf

let table_of_body body =
  let module T = Tq_util.Text_table in
  match String.split_on_char '\n' body with
  | title :: header :: rows ->
      let columns = String.split_on_char '\t' header in
      let arity = List.length columns in
      let rows = List.filter (fun r -> r <> "") rows in
      let parsed = List.map (String.split_on_char '\t') rows in
      if List.for_all (fun r -> List.length r = arity) parsed then begin
        let table = T.create ~title ~columns in
        List.iter (T.add_row table) parsed;
        Some table
      end
      else None
  | _ -> None

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          Some (really_input_string ic len))

let find t key =
  match path t key with
  | None -> None
  | Some file ->
      let loaded =
        match read_file file with
        | None | Some "" -> None
        | Some content -> (
            match String.index_opt content '\n' with
            | None -> None
            | Some i ->
                let header = String.sub content 0 i in
                let body =
                  String.sub content (i + 1) (String.length content - i - 1)
                in
                (match String.split_on_char ' ' header with
                | [ m; digest ]
                  when m = magic && digest = Digest.to_hex (Digest.string body) ->
                    table_of_body body
                | _ -> None))
      in
      (match loaded with
      | Some _ -> Atomic.incr t.hits
      | None -> Atomic.incr t.misses);
      loaded

let store t key table =
  match path t key with
  | None -> ()
  | Some file when serializable table -> (
      let dir = Option.get t.dir in
      (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let body = body_of_table table in
      let payload =
        magic ^ " " ^ Digest.to_hex (Digest.string body) ^ "\n" ^ body
      in
      let tmp =
        Printf.sprintf "%s.tmp.%d.%d" file (Unix.getpid ())
          (Domain.self () :> int)
      in
      match open_out_bin tmp with
      | exception Sys_error _ -> ()
      | oc ->
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc payload);
          (try Sys.rename tmp file with Sys_error _ -> ()))
  | Some _ -> ()
