(* Per-point PRNG keying for parallel sweeps.

   A grid point's stream depends only on (experiment id, point index,
   root seed) — never on which domain ran it or in what order — so a
   sweep's results are byte-identical at any [--jobs].  Derivation is
   FNV-1a over the experiment id folded through two rounds of the
   splitmix64 finalizer with the index and seed mixed in; splitmix64's
   avalanche keeps neighbouring indices statistically independent (the
   same construction Prng.create uses to expand its seed). *)

let ( +% ) = Int64.add
let ( *% ) = Int64.mul
let ( ^% ) = Int64.logxor

(* splitmix64 finalizer: full-avalanche 64-bit mix. *)
let mix64 z =
  let z = (z ^% Int64.shift_right_logical z 30) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^% Int64.shift_right_logical z 27) *% 0x94D049BB133111EBL in
  z ^% Int64.shift_right_logical z 31

let fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c -> h := (!h ^% Int64.of_int (Char.code c)) *% 0x100000001B3L)
    s;
  !h

let derive ~experiment ~point ~seed =
  if point < 0 then invalid_arg "Seed_stream.derive: negative point index";
  let h = fnv1a64 experiment in
  let h = mix64 (h +% (0x9E3779B97F4A7C15L *% Int64.of_int point)) in
  mix64 (h ^% seed)

let prng ~experiment ~point ~seed =
  Tq_util.Prng.create ~seed:(derive ~experiment ~point ~seed)
