(** Multicore orchestration of the experiment registry's sweep grids.

    Flattens registry experiments into independent single-table points,
    fans them out over the {!Domain_pool}, consults the {!Result_cache}
    per point, and merges the tables back in registry order.  The
    printed output at any [jobs] value is byte-identical to the
    sequential path; only the wall-clock time changes. *)

(** The root seed every registry point derives its PRNGs from; part of
    every cache key. *)
val registry_seed : int64

(** [fingerprint ()] captures everything code-side that determines a
    registry table's content: a schema version, [TQ_BENCH_SCALE], the
    modeled core count and the full cost model ([overheads] defaults to
    {!Tq_sched.Overheads.tq_default}).  Changing any component changes
    every cache key, invalidating the cache wholesale. *)
val fingerprint : ?overheads:Tq_sched.Overheads.t -> unit -> string

(** One experiment's recomputed (or cache-served) tables, in point
    order. *)
type outcome = {
  experiment : Tq_experiments.Registry.experiment;
  tables : Tq_util.Text_table.t list;
}

(** Execution report: pool behaviour plus cache effectiveness. *)
type stats = {
  pool : Domain_pool.stats;
  cache_hits : int;  (** points served from [_tq_cache/] *)
  cache_misses : int;  (** points recomputed *)
}

(** [run ?jobs ?cache ?obs experiments] computes every point of every
    listed experiment — in parallel when [jobs > 1] — and returns the
    outcomes in input order.  [cache] defaults to a disabled cache
    (always recompute); [obs], when given, receives the pool utilization
    and cache counters in its counter registry (under ["par.*"]). *)
val run :
  ?jobs:int ->
  ?cache:Result_cache.t ->
  ?obs:Tq_obs.Obs.t ->
  Tq_experiments.Registry.experiment list ->
  outcome list * stats

(** [run_and_print] is {!run} followed by
    {!Tq_experiments.Registry.print_tables} on each outcome, preserving
    registry order and formatting. *)
val run_and_print :
  ?jobs:int ->
  ?cache:Result_cache.t ->
  ?obs:Tq_obs.Obs.t ->
  Tq_experiments.Registry.experiment list ->
  stats

(** [grid ?jobs ~experiment ~seed ~f points] — generic parallel map for
    custom sweeps: point [i] runs [f ~rng ~index:i points.(i)] with its
    own {!Seed_stream} generator keyed by [(experiment, i, seed)], so
    results are independent of [jobs] and of completion order. *)
val grid :
  ?jobs:int ->
  experiment:string ->
  seed:int64 ->
  f:(rng:Tq_util.Prng.t -> index:int -> 'a -> 'b) ->
  'a array ->
  'b array * Domain_pool.stats

(** [summary stats] — one human-readable line: jobs, wall time, cache
    hits/misses, steals and per-domain utilization. *)
val summary : stats -> string
