module Prng = Tq_util.Prng

type t = Jsq_msq | Jsq_random | Random | Power_of_two | Round_robin

let to_string = function
  | Jsq_msq -> "jsq-msq"
  | Jsq_random -> "jsq-random"
  | Random -> "random"
  | Power_of_two -> "power-of-two"
  | Round_robin -> "round-robin"

type chooser = { policy : t; rng : Prng.t; mutable cursor : int }

let make_chooser policy ~rng = { policy; rng; cursor = 0 }

(* Indices of workers achieving the minimum unfinished-job count,
   restricted to [ok] indices. *)
let min_load_set ?(ok = fun _ -> true) workers =
  let best = ref max_int in
  Array.iteri
    (fun i w -> if ok i then best := min !best (Worker.unfinished w))
    workers;
  let ties = ref [] in
  Array.iteri
    (fun i w -> if ok i && Worker.unfinished w = !best then ties := i :: !ties)
    workers;
  !ties

(* The filtered variant used when the dispatcher's health tracking has
   excluded cores.  Kept separate from the unfiltered path below so that
   fault-free runs consume the PRNG stream exactly as before. *)
let choose_filtered c workers ok =
  let eligible =
    let acc = ref [] in
    Array.iteri (fun i _ -> if ok i then acc := i :: !acc) workers;
    Array.of_list (List.rev !acc)
  in
  let m = Array.length eligible in
  if m = 0 then invalid_arg "Dispatch_policy.choose: no alive workers";
  match c.policy with
  | Random -> eligible.(Prng.int c.rng m)
  | Round_robin ->
      let n = Array.length workers in
      (* First eligible index at or after the cursor, cyclically. *)
      let rec scan i k = if ok (i mod n) || k >= n then i mod n else scan (i + 1) (k + 1) in
      let i = scan c.cursor 0 in
      c.cursor <- (i + 1) mod n;
      i
  | Power_of_two ->
      let a = eligible.(Prng.int c.rng m) in
      let b =
        if m = 1 then a
        else begin
          let j = Prng.int c.rng (m - 1) in
          let cand = eligible.(j) in
          if cand = a then eligible.(m - 1) else cand
        end
      in
      let load_a = Worker.unfinished workers.(a)
      and load_b = Worker.unfinished workers.(b) in
      if load_a < load_b then a
      else if load_b < load_a then b
      else if Prng.bool c.rng then a
      else b
  | Jsq_random -> begin
      match min_load_set ~ok workers with
      | [] -> assert false
      | [ i ] -> i
      | ties ->
          let arr = Array.of_list ties in
          arr.(Prng.int c.rng (Array.length arr))
    end
  | Jsq_msq -> begin
      match min_load_set ~ok workers with
      | [] -> assert false
      | [ i ] -> i
      | ties ->
          let best = ref (List.hd ties) and best_q = ref min_int in
          List.iter
            (fun i ->
              let q = Worker.current_quanta workers.(i) in
              if q > !best_q then begin
                best := i;
                best_q := q
              end)
            (List.rev ties);
          !best
    end

let choose ?alive c workers =
  let n = Array.length workers in
  if n = 0 then invalid_arg "Dispatch_policy.choose: no workers";
  match alive with
  | Some ok -> choose_filtered c workers ok
  | None -> (
      match c.policy with
  | Random -> Prng.int c.rng n
  | Round_robin ->
      let i = c.cursor in
      c.cursor <- (c.cursor + 1) mod n;
      i
  | Power_of_two ->
      let a = Prng.int c.rng n in
      let b = if n = 1 then a else (a + 1 + Prng.int c.rng (n - 1)) mod n in
      let load_a = Worker.unfinished workers.(a)
      and load_b = Worker.unfinished workers.(b) in
      if load_a < load_b then a
      else if load_b < load_a then b
      else if Prng.bool c.rng then a
      else b
  | Jsq_random -> begin
      match min_load_set workers with
      | [] -> assert false
      | [ i ] -> i
      | ties ->
          let arr = Array.of_list ties in
          arr.(Prng.int c.rng (Array.length arr))
    end
      | Jsq_msq -> begin
          match min_load_set workers with
          | [] -> assert false
          | [ i ] -> i
          | ties ->
              (* MSQ: the core that has serviced the most quanta for its
                 current jobs likely has the least remaining work. *)
              let best = ref (List.hd ties) and best_q = ref min_int in
              List.iter
                (fun i ->
                  let q = Worker.current_quanta workers.(i) in
                  if q > !best_q then begin
                    best := i;
                    best_q := q
                  end)
                (List.rev ties);
              !best
        end)
