(** The Tiny Quanta system: two-level scheduling.

    Level 1 — a dispatcher that does *only* load balancing: it polls
    requests, spends [dispatch_ns] per request (it never parses job
    contents — blind scheduling), picks a worker by the configured
    policy, and pushes the job over a ring.  Its load is per-*job*, so
    shrinking the quantum does not increase dispatcher work.

    Level 2 — per-core workers that interleave quanta of their admitted
    jobs by forced multitasking ({!Worker}).  Completions bypass the
    dispatcher entirely: the worker records metrics and sends the reply
    itself, updating the counters the dispatcher reads. *)

type config = {
  cores : int;
  dispatchers : int;
      (** number of dispatcher cores; requests are RSS-spread across
          them and each balances over all workers (Section 6: scaling
          past one dispatcher's ~14 Mrps) *)
  quantum_policy : Worker.quantum_policy;
  dispatch_policy : Dispatch_policy.t;
  overheads : Overheads.t;
}

(** TQ defaults: 16 cores, 2 us PS quanta, JSQ+MSQ, calibrated costs. *)
val default_config : config

type t

(** Request conservation under faults; all fields are live (the record
    is the system's own mutable accounting).  The invariant pinned by
    the fault regression tests:

    [accepted = in_dispatch + on_worker + completed + lost +
    dropped_no_worker], where on_worker is the sum of
    [Worker.unfinished] over all cores (it includes jobs riding the
    ring, because assignment is counted at dispatch-decision time). *)
type accounting = {
  mutable submitted : int;
  mutable accepted : int;
  mutable rejected : int;  (** shed by admission control *)
  mutable in_dispatch : int;  (** inside a dispatcher (queued or in service) *)
  mutable on_ring : int;  (** riding a dispatcher->worker ring hop *)
  mutable completed : int;
  mutable lost : int;  (** destroyed by a core failure mid-slice *)
  mutable dropped_no_worker : int;  (** no live core to dispatch to *)
  mutable redispatches : int;  (** rescues off cores believed dead *)
}

(** [admission] (default [Accept_all]) gates every submission before
    dispatch cost is paid; [on_complete] fires per finished job,
    [on_reject] per shed request, [on_lost] per job destroyed by a core
    failure — the hooks the retry layer and fault harness attach to.

    [steal] (default [false]) arms idle-time work stealing under the
    dispatcher's push placement: a core that goes idle (and any core
    found idle when a ring delivery leaves a queue elsewhere) takes
    half of the most-loaded believed-alive core's queued-but-unstarted
    jobs, paying one [ring_hop_ns] transfer delay.  Assignment credit
    moves at steal time, so the {!accounting} invariant is unaffected.
    Steals count in [sched.steals] and trace as [Event.Steal].  With
    stealing off the event stream is byte-identical to the classic
    push-only TQ. *)
val create :
  Tq_engine.Sim.t ->
  rng:Tq_util.Prng.t ->
  config:config ->
  metrics:Tq_workload.Metrics.t ->
  ?obs:Tq_obs.Obs.t ->
  ?admission:Admission.policy ->
  ?steal:bool ->
  ?on_complete:(Job.t -> unit) ->
  ?on_reject:(Tq_workload.Arrivals.request -> unit) ->
  ?on_lost:(Job.t -> unit) ->
  unit ->
  t

(** [submit t req] is the NIC-arrival entry point. *)
val submit : t -> Tq_workload.Arrivals.request -> unit

(** {2 Failure handling}

    The dispatcher keeps a per-core health estimate, distinct from the
    ground truth [Worker.alive]: cores believed dead are excluded from
    dispatch and their queued-but-unstarted jobs are re-dispatched; a
    suspected core that answers heartbeats again (a stall, not a death)
    is readmitted. *)

(** Exclude core [wid] from dispatch and rescue its queued jobs.
    Idempotent. *)
val mark_worker_dead : t -> wid:int -> unit

(** Readmit core [wid] to the dispatch set.  Idempotent. *)
val mark_worker_alive : t -> wid:int -> unit

(** The dispatcher's current belief about core [wid]. *)
val worker_marked_alive : t -> wid:int -> bool

(** [install_health_monitor t ~interval_ns ~until_ns ?missed_heartbeats ()]
    starts the heartbeat loop: every interval each core is pinged
    ([Worker.responsive]); after [missed_heartbeats] consecutive misses
    (default 2) the core is marked dead, and a marked-dead core that
    responds again is revived.  Bounded by [until_ns] so the simulation
    can drain. *)
val install_health_monitor :
  t -> interval_ns:int -> until_ns:int -> ?missed_heartbeats:int -> unit ->
  Tq_engine.Sim.periodic

(** Blind the dispatcher for [duration_ns]: models a dispatcher-core
    outage.  Arrivals still queue (the NIC keeps delivering) and are
    served when the outage ends. *)
val inject_dispatcher_outage : t -> dispatcher:int -> duration_ns:int -> unit

(** {2 Live retuning}

    Actuators for {!Tq_control}-style feedback controllers: both take
    effect from the next slice / next arrival, never mid-event. *)

(** Retune the PS quantum on every worker core (see
    {!Worker.set_quantum}). *)
val set_quantum : t -> ?class_idx:int -> quantum_ns:int -> unit -> unit

(** Swap the live admission policy; rejection count and sojourn EWMA
    survive (see {!Admission.set_policy}). *)
val set_admission_policy : t -> Admission.policy -> unit

(** The live admission gate (sensor side: rejected count, EWMA). *)
val admission : t -> Admission.t

(** The live accounting record (mutated by the system as it runs). *)
val accounting : t -> accounting

(** Admitted requests not yet completed, lost, or dropped. *)
val in_system : t -> int

(** Cores the dispatcher currently believes alive. *)
val alive_worker_count : t -> int

(** Dispatcher utilization diagnostics (summed over dispatchers). *)
val dispatcher_busy_ns : t -> int

(** Total requests queued at dispatchers. *)
val dispatcher_queue_length : t -> int

(** Longest busy time of any single dispatcher core — the bottleneck
    measure when [dispatchers] > 1. *)
val max_dispatcher_busy_ns : t -> int

val workers : t -> Worker.t array

(** Steal batches executed, and jobs moved by them, since creation
    (both 0 unless [create ~steal:true]). *)
val steals : t -> int

val steal_items : t -> int

(** [(queued, in_flight, busy_cores)] at this instant, for the
    time-series sampler: jobs waiting (dispatcher + worker queues), jobs
    admitted but unfinished, and workers mid-quantum.  Queues of cores
    believed dead are included — a job there is still in the system
    until drained or lost, keeping the snapshot consistent with
    {!accounting} under faults. *)
val obs_snapshot : t -> int * int * int
