(** The Tiny Quanta system: two-level scheduling.

    Level 1 — a dispatcher that does *only* load balancing: it polls
    requests, spends [dispatch_ns] per request (it never parses job
    contents — blind scheduling), picks a worker by the configured
    policy, and pushes the job over a ring.  Its load is per-*job*, so
    shrinking the quantum does not increase dispatcher work.

    Level 2 — per-core workers that interleave quanta of their admitted
    jobs by forced multitasking ({!Worker}).  Completions bypass the
    dispatcher entirely: the worker records metrics and sends the reply
    itself, updating the counters the dispatcher reads. *)

type config = {
  cores : int;
  dispatchers : int;
      (** number of dispatcher cores; requests are RSS-spread across
          them and each balances over all workers (Section 6: scaling
          past one dispatcher's ~14 Mrps) *)
  quantum_policy : Worker.quantum_policy;
  dispatch_policy : Dispatch_policy.t;
  overheads : Overheads.t;
}

(** TQ defaults: 16 cores, 2 us PS quanta, JSQ+MSQ, calibrated costs. *)
val default_config : config

type t

val create :
  Tq_engine.Sim.t ->
  rng:Tq_util.Prng.t ->
  config:config ->
  metrics:Tq_workload.Metrics.t ->
  ?obs:Tq_obs.Obs.t ->
  unit ->
  t

(** [submit t req] is the NIC-arrival entry point. *)
val submit : t -> Tq_workload.Arrivals.request -> unit

(** Dispatcher utilization diagnostics (summed over dispatchers). *)
val dispatcher_busy_ns : t -> int

(** Total requests queued at dispatchers. *)
val dispatcher_queue_length : t -> int

(** Longest busy time of any single dispatcher core — the bottleneck
    measure when [dispatchers] > 1. *)
val max_dispatcher_busy_ns : t -> int

val workers : t -> Worker.t array

(** [(queued, in_flight, busy_cores)] at this instant, for the
    time-series sampler: jobs waiting (dispatcher + worker queues), jobs
    admitted but unfinished, and workers mid-quantum. *)
val obs_snapshot : t -> int * int * int
