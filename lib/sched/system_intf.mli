(** The unified system interface: one signature for every scheduler.

    Each of the three modelled systems — {!Two_level} (TQ),
    {!Centralized} (Shinjuku) and {!Caladan} — historically exposed its
    own create/submit/fault surface, and every driver (the experiment
    harness, the fault harness, the registry glue) carried a three-way
    match.  This module collapses that duplication: {!S} is the
    post-creation interface a driver needs (submission, accounting,
    metrics snapshots, fault hooks), {!instantiate} performs the single
    remaining per-system dispatch, and the packed {!instance} lets all
    downstream code run one functor-free path over a first-class
    module.

    Capabilities a system lacks degrade to harmless defaults rather
    than partiality: Caladan reports zero dispatcher busy time, the
    baselines ignore admission policies (they have no front-door gate),
    and {!S.install_health_monitor} is a no-op outside TQ (the
    centralized dispatcher sees core state directly; Caladan recovers
    only by stealing). *)

(** The per-system configuration, as built by {!Presets}.  This is the
    type historically named [Experiment.system_spec]; [Experiment]
    re-exports it, so existing constructors keep working. *)
type spec =
  | Two_level of Two_level.config
  | Stealing of Two_level.config
      (** TQ with idle-time work stealing armed
          ({!Two_level.create}[ ~steal:true]): same dispatcher push
          placement, plus an idle core's steal-half second chance.  A
          separate spec so sweeps compare push-only vs push+steal as
          peer systems. *)
  | Centralized of Centralized.config
  | Caladan of Caladan.config

(** Worker-core count of a spec (the fault injector's target space). *)
val spec_cores : spec -> int

(** Short stable name for labelling output ("two-level", "stealing",
    "centralized", "caladan"). *)
val spec_name : spec -> string

(** The operations every instantiated system supports.  [t] is the
    running system, already bound to a simulator, metrics sink and
    observability context by {!instantiate}. *)
module type S = sig
  type t

  (** System family name, e.g. ["two-level"]. *)
  val name : string

  (** NIC-arrival entry point: admit (or shed) and schedule one
      request. *)
  val submit : t -> Tq_workload.Arrivals.request -> unit

  (** Central-core busy time; 0 where no core is central (Caladan
      directpath). *)
  val dispatcher_busy_ns : t -> int

  (** [(queued, in_flight, busy_cores)] at this instant, for the
      time-series sampler (see {!Two_level.obs_snapshot}). *)
  val obs_snapshot : t -> int * int * int

  (** The live conservation record; [None] for systems that do not keep
      one (only TQ's dispatcher tracks per-request custody). *)
  val accounting : t -> Two_level.accounting option

  (** Admitted requests not yet completed, lost or dropped — the
      stranded count when the simulation drains. *)
  val in_system : t -> int

  (** Jobs destroyed by core failures so far. *)
  val lost_jobs : t -> int

  (** {2 Fault hooks} — the uniform injection surface {!Tq_fault}
      drives.  Ground truth is always the worker core itself; dispatcher
      beliefs (where they exist) are updated by the system's own failure
      handling. *)

  (** Blind core [wid] for [duration_ns] (transient stall). *)
  val inject_stall : t -> wid:int -> duration_ns:int -> unit

  (** Permanently kill core [wid]; its in-flight slice is lost. *)
  val kill_worker : t -> wid:int -> unit

  (** Blind the steering core [dispatcher] for [duration_ns]; systems
      with a single (or no) central core ignore [dispatcher]. *)
  val inject_dispatcher_outage : t -> dispatcher:int -> duration_ns:int -> unit

  (** {2 Live actuators} — the knobs a feedback controller
      ({!Tq_control}) turns while the system runs.  Systems without the
      knob degrade to a no-op: Caladan is FCFS run-to-completion (no
      quantum), and only TQ has a front-door admission gate. *)

  (** Retune the preemption quantum from the next slice on; [class_idx
      = None] retunes the base quantum, [Some c] one request class
      (systems with a single global quantum ignore the class). *)
  val set_quantum : t -> class_idx:int option -> quantum_ns:int -> unit

  (** Swap the live admission policy (shed threshold / queue limit). *)
  val set_admission : t -> Admission.policy -> unit

  (** Start periodic heartbeat health tracking (TQ only; a no-op for
      systems without a dispatcher health estimate). *)
  val install_health_monitor :
    t -> interval_ns:int -> until_ns:int -> missed_heartbeats:int -> unit
end

(** A running system packed with its operations: the value every driver
    threads instead of a per-system variant. *)
type instance = Instance : (module S with type t = 'a) * 'a -> instance

(** [instantiate spec sim ~rng ~metrics ?obs ?admission ?on_complete
    ?on_reject ?on_lost ()] builds the system described by [spec] on
    [sim] and packs it.  [admission] and [on_reject] apply to systems
    with a front-door gate (TQ); the baselines accept everything, as
    they always have. *)
val instantiate :
  spec ->
  Tq_engine.Sim.t ->
  rng:Tq_util.Prng.t ->
  metrics:Tq_workload.Metrics.t ->
  ?obs:Tq_obs.Obs.t ->
  ?admission:Admission.policy ->
  ?on_complete:(Job.t -> unit) ->
  ?on_reject:(Tq_workload.Arrivals.request -> unit) ->
  ?on_lost:(Job.t -> unit) ->
  unit ->
  instance

(** {2 Instance accessors} — unpack-and-call helpers so call sites stay
    as terse as the old concrete calls. *)

val submit : instance -> Tq_workload.Arrivals.request -> unit
val dispatcher_busy_ns : instance -> int
val obs_snapshot : instance -> int * int * int
val accounting : instance -> Two_level.accounting option
val in_system : instance -> int
val lost_jobs : instance -> int
val inject_stall : instance -> wid:int -> duration_ns:int -> unit
val kill_worker : instance -> wid:int -> unit
val inject_dispatcher_outage : instance -> dispatcher:int -> duration_ns:int -> unit
val set_quantum : instance -> class_idx:int option -> quantum_ns:int -> unit
val set_admission : instance -> Admission.policy -> unit

val install_health_monitor :
  instance -> interval_ns:int -> until_ns:int -> missed_heartbeats:int -> unit
