(** A TQ worker core.

    Runs quanta of its admitted jobs without any external signal (forced
    multitasking): each job executes for at most a quantum — plus a
    jitter term modeling probe-timing inaccuracy — then pays the yield
    cost and goes to the back of the local run queue (processor
    sharing).  FCFS mode runs jobs to completion instead (the TQ-FCFS
    ablation).

    The worker maintains the two counters the paper's dispatcher reads
    for load balancing: finished jobs (for JSQ's queue-length deltas) and
    serviced quanta of *current* jobs (for MSQ tie-breaking). *)

type quantum_policy =
  | Ps of { quantum_ns : int; per_class_quantum : int array option }
      (** processor sharing with the given quantum; [per_class_quantum]
          is the TQ-TIMING ablation: mis-sized quanta per job class *)
  | Fcfs  (** run to completion *)
  | Las of { base_quantum_ns : int; max_quantum_ns : int }
      (** least-attained-service: always run the job that has received
          the least service; its quantum grows with attained service
          (clamped to [base, max]) — the dynamic-quantum policy the
          paper cites forced multitasking as enabling (Section 3.1) *)

type t

(** [on_idle] fires when the core transitions from busy to idle with an
    empty queue — the work-stealing hook used by the Caladan model.
    [on_lost] fires for each job destroyed by a core failure (the
    in-flight slice of a killed core).  [obs] supplies the event tracer
    and counter registry; the default is disabled tracing (zero-cost)
    with a private, unread registry. *)
val create :
  Tq_engine.Sim.t ->
  wid:int ->
  rng:Tq_util.Prng.t ->
  policy:quantum_policy ->
  overheads:Overheads.t ->
  ?obs:Tq_obs.Obs.t ->
  ?on_idle:(unit -> unit) ->
  ?on_lost:(Job.t -> unit) ->
  on_finish:(Job.t -> unit) ->
  unit ->
  t

val is_busy : t -> bool

val wid : t -> int

(** [set_quantum t ?class_idx ~quantum_ns ()] retunes the PS quantum
    live (the feedback controller's actuator): with [class_idx] only
    that job class, without it the base quantum for every class with no
    override.  Takes effect from the next slice.  No-op under FCFS and
    LAS.  Raises [Invalid_argument] on a non-positive quantum. *)
val set_quantum : t -> ?class_idx:int -> quantum_ns:int -> unit -> unit

(** The quantum the next slice of a [class_idx] job would get ([None]
    under FCFS); LAS reports its base quantum. *)
val quantum_for_class : t -> class_idx:int -> int option

(** [enqueue t job] admits a job to this core (called by the dispatcher
    after the ring hop). *)
val enqueue : t -> Job.t -> unit

(** Dispatcher-visible load: jobs admitted but not yet finished. *)
val unfinished : t -> int

(** Sum of serviced quanta over the jobs currently on the core (MSQ). *)
val current_quanta : t -> int

val finished_jobs : t -> int
val busy_ns : t -> int

(** Jobs waiting in the local run queue (excludes the one executing). *)
val queue_length : t -> int

(** [note_assigned t] bumps the dispatcher-side assignment counter; the
    dispatcher calls this at decision time so in-flight jobs (on the
    ring) count as load. *)
val note_assigned : t -> unit

(** Undo one [note_assigned]: the dispatcher redirects a job that was
    bound for this core but never reached its queue (ring-arrival race
    with a mark-dead). *)
val note_unassigned : t -> unit

(** [steal t] removes the most recently queued job, if any (used only by
    the Caladan work-stealing model which shares this worker type). *)
val steal : t -> Job.t option

(** {2 Fault injection}

    Hooks used by [tq_fault].  A {e stall} is a transient core blackout
    (GC pause, SMI, antagonist thread): pending stall time is served
    between quanta, delaying — never corrupting — queued work.  A
    {e kill} is permanent: the in-flight slice's job is lost (reported
    via [on_lost]); queued jobs stay in place for {!drain} (dispatcher
    rescue) or {!steal}. *)

(** Add [duration_ns] of blackout to this core.  Ignored on a dead
    core; raises [Invalid_argument] if the duration is not positive. *)
val inject_stall : t -> duration_ns:int -> unit

(** Permanently fail the core.  Idempotent. *)
val kill : t -> unit

(** Remove and return all queued-but-unstarted jobs (oldest first),
    releasing their assignment count.  The dispatcher uses this to
    re-dispatch work away from a core it believes dead. *)
val drain : t -> Job.t list

(** [not killed] — the ground truth the dispatcher's health tracking
    tries to estimate. *)
val alive : t -> bool

(** A job slice (not a stall) is executing right now.  Health tracking
    uses this to avoid declaring a core dead mid-way through one long
    legitimate slice. *)
val in_service : t -> bool

(** Whether the core would answer a dispatcher heartbeat right now:
    [false] while dead or serving a blackout.  Forced multitasking means
    a healthy core replies between quanta even under a long job, so a
    long slice never looks unresponsive. *)
val responsive : t -> bool

(** Monotone count of slices completed over the core's lifetime; a
    loaded core whose [progress] does not advance is stalled or dead. *)
val progress : t -> int

(** The core has admitted-but-unfinished jobs. *)
val loaded : t -> bool

(** Total blackout time served so far. *)
val stalled_ns : t -> int

(** Jobs destroyed by a kill on this core. *)
val lost_jobs : t -> int
