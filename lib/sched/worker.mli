(** A TQ worker core.

    Runs quanta of its admitted jobs without any external signal (forced
    multitasking): each job executes for at most a quantum — plus a
    jitter term modeling probe-timing inaccuracy — then pays the yield
    cost and goes to the back of the local run queue (processor
    sharing).  FCFS mode runs jobs to completion instead (the TQ-FCFS
    ablation).

    The worker maintains the two counters the paper's dispatcher reads
    for load balancing: finished jobs (for JSQ's queue-length deltas) and
    serviced quanta of *current* jobs (for MSQ tie-breaking). *)

type quantum_policy =
  | Ps of { quantum_ns : int; per_class_quantum : int array option }
      (** processor sharing with the given quantum; [per_class_quantum]
          is the TQ-TIMING ablation: mis-sized quanta per job class *)
  | Fcfs  (** run to completion *)
  | Las of { base_quantum_ns : int; max_quantum_ns : int }
      (** least-attained-service: always run the job that has received
          the least service; its quantum grows with attained service
          (clamped to [base, max]) — the dynamic-quantum policy the
          paper cites forced multitasking as enabling (Section 3.1) *)

type t

(** [on_idle] fires when the core transitions from busy to idle with an
    empty queue — the work-stealing hook used by the Caladan model.
    [obs] supplies the event tracer and counter registry; the default is
    disabled tracing (zero-cost) with a private, unread registry. *)
val create :
  Tq_engine.Sim.t ->
  wid:int ->
  rng:Tq_util.Prng.t ->
  policy:quantum_policy ->
  overheads:Overheads.t ->
  ?obs:Tq_obs.Obs.t ->
  ?on_idle:(unit -> unit) ->
  on_finish:(Job.t -> unit) ->
  unit ->
  t

val is_busy : t -> bool

val wid : t -> int

(** [enqueue t job] admits a job to this core (called by the dispatcher
    after the ring hop). *)
val enqueue : t -> Job.t -> unit

(** Dispatcher-visible load: jobs admitted but not yet finished. *)
val unfinished : t -> int

(** Sum of serviced quanta over the jobs currently on the core (MSQ). *)
val current_quanta : t -> int

val finished_jobs : t -> int
val busy_ns : t -> int

(** Jobs waiting in the local run queue (excludes the one executing). *)
val queue_length : t -> int

(** [note_assigned t] bumps the dispatcher-side assignment counter; the
    dispatcher calls this at decision time so in-flight jobs (on the
    ring) count as load. *)
val note_assigned : t -> unit

(** [steal t] removes the most recently queued job, if any (used only by
    the Caladan work-stealing model which shares this worker type). *)
val steal : t -> Job.t option
