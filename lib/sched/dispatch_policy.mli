(** Load-balancing policies for the TQ dispatcher.

    The paper's default is Join-the-Shortest-Queue with
    Maximum-Serviced-Quanta tie-breaking; the alternatives are the
    Figure 12 ablations. *)

type t =
  | Jsq_msq
      (** JSQ; ties broken by the core whose current jobs have serviced
          the most quanta (expected smallest remaining work) *)
  | Jsq_random  (** JSQ; ties broken uniformly at random *)
  | Random  (** uniform random core (TQ-RAND) *)
  | Power_of_two  (** best of two random cores (TQ-POWER-TWO) *)
  | Round_robin  (** cyclic assignment *)

val to_string : t -> string

(** Mutable chooser state (round-robin cursor). *)
type chooser

val make_chooser : t -> rng:Tq_util.Prng.t -> chooser

(** [choose chooser workers] picks the worker index for the next job,
    reading each worker's dispatcher-visible counters.  [alive], when
    given, restricts the choice to indices it accepts — the dispatcher's
    health-tracking filter; raises [Invalid_argument] if it accepts
    none.  Fault-free callers omit it and get the historical PRNG
    stream unchanged. *)
val choose : ?alive:(int -> bool) -> chooser -> Worker.t array -> int
