(** The Caladan baseline: FCFS run-to-completion with work stealing.

    Requests are steered to worker cores by RSS hashing (uniform over
    cores for an open-loop client), each core runs its queue FCFS to
    completion, and idle cores steal queued jobs from loaded ones.  Two
    I/O modes, as evaluated in the paper:

    - [Iokernel]: a dedicated core forwards every packet (per-packet
      cost; becomes a throughput bottleneck), workers are lean.
    - [Directpath]: workers talk to the NIC directly — no central
      bottleneck, but each request carries extra packet-processing work
      on the worker.

    FCFS gives long jobs the best latency (never preempted) and short
    jobs severe head-of-line blocking under broad distributions. *)

type mode = Iokernel | Directpath

type config = {
  cores : int;
  mode : mode;
  iokernel_op_ns : int;  (** IOKernel per-packet forwarding cost *)
  directpath_extra_ns : int;  (** per-request worker-side NIC work *)
  steal_ns : int;  (** cost of one successful steal *)
  finish_ns : int;  (** per-job completion (TX) work *)
  rss_flows : int option;
      (** [Some f]: steer by hashing one of [f] client connections
          (packets of a flow stick to one core; few flows leave cores
          idle); [None]: idealized uniform spread (many connections) *)
}

val default_config : mode:mode -> cores:int -> config

type t

(** [on_complete] fires per finished job and [on_lost] per job destroyed
    by a core failure — hooks for the retry layer and fault harness. *)
val create :
  Tq_engine.Sim.t ->
  rng:Tq_util.Prng.t ->
  config:config ->
  metrics:Tq_workload.Metrics.t ->
  ?obs:Tq_obs.Obs.t ->
  ?on_complete:(Job.t -> unit) ->
  ?on_lost:(Job.t -> unit) ->
  unit ->
  t

val submit : t -> Tq_workload.Arrivals.request -> unit

(** Number of successful steals, for diagnostics. *)
val steals : t -> int

val workers : t -> Worker.t array

(** [(queued, in_flight, busy_cores)] at this instant (see
    {!Two_level.obs_snapshot}). *)
val obs_snapshot : t -> int * int * int

(** {2 Fault injection}

    There is no dispatcher health tracking here: a killed core's queued
    jobs are rescued only when another core goes idle and steals them —
    work stealing is the only recovery mechanism this architecture
    has. *)

val inject_stall : t -> wid:int -> duration_ns:int -> unit

val kill_worker : t -> wid:int -> unit

(** Jobs destroyed by kills, summed over cores. *)
val lost_jobs : t -> int

(** Blind the IOKernel forwarding core for [duration_ns] ([Iokernel]
    mode; a no-op burn on an unused server under [Directpath]). *)
val inject_iokernel_outage : t -> duration_ns:int -> unit
