module Sim = Tq_engine.Sim
module Busy_server = Tq_engine.Busy_server
module Prng = Tq_util.Prng
module Metrics = Tq_workload.Metrics
module Arrivals = Tq_workload.Arrivals
module Trace = Tq_obs.Trace
module Event = Tq_obs.Event
module Counters = Tq_obs.Counters

type mode = Iokernel | Directpath

type config = {
  cores : int;
  mode : mode;
  iokernel_op_ns : int;
  directpath_extra_ns : int;
  steal_ns : int;
  finish_ns : int;
  rss_flows : int option;
}

let default_config ~mode ~cores =
  {
    cores;
    mode;
    iokernel_op_ns = 120;
    directpath_extra_ns = 250;
    steal_ns = 200;
    finish_ns = 60;
    rss_flows = None;
  }

type t = {
  sim : Sim.t;
  config : config;
  rng : Prng.t;
  mutable workers : Worker.t array;
  iokernel : Arrivals.request Busy_server.t;
  metrics : Metrics.t;
  trace : Trace.t;
  c_arrivals : Counters.counter;
  c_dispatches : Counters.counter;
  c_steals : Counters.counter;
  mutable steals : int;
}

(* An idle worker scans for the most loaded victim and steals one job. *)
let try_steal t (thief : Worker.t) =
  let best = ref None and best_len = ref 0 in
  Array.iter
    (fun w ->
      let len = Worker.queue_length w in
      if len > !best_len then begin
        best := Some w;
        best_len := len
      end)
    t.workers;
  match !best with
  | None -> ()
  | Some victim -> begin
      match Worker.steal victim with
      | None -> ()
      | Some job ->
          t.steals <- t.steals + 1;
          Counters.incr t.c_steals;
          if Trace.enabled t.trace then
            Trace.record t.trace ~ts_ns:(Sim.now t.sim)
              ~lane:(Event.Worker (Worker.wid thief))
              (Event.Steal { job_id = job.Job.id; victim = Worker.wid victim });
          Worker.note_assigned thief;
          ignore
            (Sim.schedule_after t.sim ~delay:t.config.steal_ns (fun () ->
                 Worker.enqueue thief job)
              : Sim.event)
    end

let create sim ~rng ~config ~metrics ?(obs = Tq_obs.Obs.disabled ())
    ?(on_complete = fun (_ : Job.t) -> ()) ?(on_lost = fun (_ : Job.t) -> ()) () =
  if config.cores < 1 then invalid_arg "Caladan.create: need at least one core";
  let on_finish (job : Job.t) =
    Metrics.record metrics ~class_idx:job.class_idx ~arrival_ns:job.arrival_ns
      ~finish_ns:(Sim.now sim) ~service_ns:job.service_ns;
    on_complete job
  in
  let reg = obs.Tq_obs.Obs.counters in
  let t =
    {
      sim;
      config;
      rng;
      workers = [||];
      iokernel = Busy_server.create sim ();
      metrics;
      trace = obs.Tq_obs.Obs.trace;
      c_arrivals = Counters.counter reg "dispatch.arrivals";
      c_dispatches = Counters.counter reg "dispatch.decisions";
      c_steals = Counters.counter reg "sched.steals";
      steals = 0;
    }
  in
  let overheads = { Overheads.zero with finish_ns = config.finish_ns } in
  t.workers <-
    Array.init config.cores (fun wid ->
        (* Tie the knot: each worker's idle hook steals through [t]. *)
        let rec worker =
          lazy
            (Worker.create sim ~wid ~rng:(Prng.split rng) ~policy:Worker.Fcfs ~overheads
               ~obs
               ~on_idle:(fun () -> try_steal t (Lazy.force worker))
               ~on_lost ~on_finish ())
        in
        Lazy.force worker);
  t

let deliver t (req : Arrivals.request) =
  (* RSS: hash the flow when connection count is modeled, otherwise a
     uniform random core (the many-connections limit). *)
  let widx =
    match t.config.rss_flows with
    | Some flows ->
        Tq_net.Rss.queue_of_flow
          ~flow:(Tq_net.Rss.flow_of_request ~flows req.req_id)
          ~queues:t.config.cores
    | None -> Prng.int t.rng t.config.cores
  in
  let worker = t.workers.(widx) in
  Counters.incr t.c_dispatches;
  if Trace.enabled t.trace then
    Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:Event.Global
      (Event.Dispatch
         {
           job_id = req.req_id;
           worker = widx;
           policy = (if t.config.rss_flows = None then "rss-random" else "rss-hash");
           queue_len = Worker.queue_length worker;
         });
  Worker.note_assigned worker;
  let job = Job.of_request ~probe_overhead_frac:0.0 req in
  (match t.config.mode with
  | Iokernel -> ()
  | Directpath -> job.remaining_ns <- job.remaining_ns + t.config.directpath_extra_ns);
  (* If the RSS-chosen core is busy and someone is idle, stealing will
     rebalance on the idle core's next transition; also rebalance now so
     an already-idle core picks the job up. *)
  Worker.enqueue worker job;
  if Worker.queue_length worker > 0 then begin
    let idle = ref None in
    Array.iter (fun w -> if (not (Worker.is_busy w)) && !idle = None then idle := Some w) t.workers;
    match !idle with Some thief when thief != worker -> try_steal t thief | _ -> ()
  end

let submit t req =
  Counters.incr t.c_arrivals;
  if Trace.enabled t.trace then
    Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:Event.Global
      (Event.Job_arrival
         {
           job_id = req.Arrivals.req_id;
           class_idx = req.Arrivals.class_idx;
           service_ns = req.Arrivals.service_ns;
         });
  match t.config.mode with
  | Directpath -> deliver t req
  | Iokernel ->
      Busy_server.submit t.iokernel ~cost:t.config.iokernel_op_ns req
        ~done_:(fun req -> deliver t req)

let steals t = t.steals

let workers t = t.workers

(* {2 Fault hooks}

   There is no dispatcher to do health tracking: a killed core's queued
   jobs wait until some other core goes idle and steals them — rescue by
   work stealing, the only recovery mechanism this architecture has. *)

let inject_stall t ~wid ~duration_ns =
  Worker.inject_stall t.workers.(wid) ~duration_ns

let kill_worker t ~wid =
  Worker.kill t.workers.(wid);
  (* Give an already-idle core a chance to rescue the dead core's queue
     right away; later rescues ride the normal idle transitions. *)
  let idle = ref None in
  Array.iter
    (fun w -> if (not (Worker.is_busy w)) && Worker.alive w && !idle = None then idle := Some w)
    t.workers;
  match !idle with Some thief -> try_steal t thief | None -> ()

let lost_jobs t =
  Array.fold_left (fun acc w -> acc + Worker.lost_jobs w) 0 t.workers

let inject_iokernel_outage t ~duration_ns =
  if Trace.enabled t.trace then
    Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:(Event.Dispatcher 0)
      (Event.Dispatcher_outage { dispatcher = 0; duration_ns });
  (* Meaningful in [Iokernel] mode only: directpath has no central
     forwarding core to blind, so the occupy sits on an unused server. *)
  Busy_server.occupy t.iokernel ~cost:duration_ns

(* Instantaneous occupancy, for the time-series sampler. *)
let obs_snapshot t =
  let queued =
    Array.fold_left
      (fun acc w -> acc + Worker.queue_length w)
      (Busy_server.queue_length t.iokernel)
      t.workers
  in
  let in_flight = Array.fold_left (fun acc w -> acc + Worker.unfinished w) 0 t.workers in
  let busy =
    Array.fold_left (fun acc w -> acc + if Worker.is_busy w then 1 else 0) 0 t.workers
  in
  (queued, in_flight, busy)
