(** Named system configurations used throughout the evaluation.

    One entry per system/variant the paper measures, so every bench and
    example refers to systems by the paper's names. *)

(** TQ with defaults (16 cores, 1 dispatcher, 2 us quanta, JSQ+MSQ). *)
val tq :
  ?cores:int -> ?dispatchers:int -> ?quantum_ns:int -> unit -> Experiment.system_spec

(** TQ-STEAL: the same system with idle-time work stealing armed
    ({!Two_level.create}[ ~steal:true]) — the dispatcher still pushes
    by JSQ+MSQ, but an idle core takes half of the most-loaded core's
    queued jobs.  Sweeping [tq] against [tq_steal] isolates the value
    of the steal second chance under blind push placement. *)
val tq_steal :
  ?cores:int -> ?dispatchers:int -> ?quantum_ns:int -> unit -> Experiment.system_spec

(** Figure 11 ablations. *)

(** TQ-IC: state-of-the-art instruction-counter instrumentation — the
    paper measures +60% probing overhead on the RocksDB GET. *)
val tq_ic : ?cores:int -> ?quantum_ns:int -> unit -> Experiment.system_spec

(** TQ-SLOW-YIELD: +1 us added to every coroutine yield. *)
val tq_slow_yield : ?cores:int -> ?quantum_ns:int -> unit -> Experiment.system_spec

(** TQ-TIMING: emulated inaccurate preemption timing — 1 us quanta for
    class 0 (GET) and 3 us for class 1 (SCAN). *)
val tq_timing : ?cores:int -> unit -> Experiment.system_spec

(** Figure 12 ablations. *)

val tq_rand : ?cores:int -> ?quantum_ns:int -> unit -> Experiment.system_spec
val tq_power_two : ?cores:int -> ?quantum_ns:int -> unit -> Experiment.system_spec
val tq_fcfs : ?cores:int -> unit -> Experiment.system_spec

(** Extension: TQ with least-attained-service quantum scheduling —
    dynamic quanta growing from [base] (default 1 us) to [max]
    (default 8 us) with attained service. *)
val tq_las :
  ?cores:int -> ?base_quantum_ns:int -> ?max_quantum_ns:int -> unit -> Experiment.system_spec

(** Shinjuku with its per-workload optimal quantum (paper Section 5.1:
    5 us bimodal, 10 us TPC-C/Exp, 15 us RocksDB). *)
val shinjuku : ?cores:int -> quantum_ns:int -> unit -> Experiment.system_spec

(** [shinjuku_quantum_for workload_name] is the paper's per-workload
    quantum choice in nanoseconds. *)
val shinjuku_quantum_for : string -> int

val caladan : ?cores:int -> mode:Caladan.mode -> unit -> Experiment.system_spec

(** Concord (related work): centralized like Shinjuku, but preemption by
    shared cache line (cheap, ~50 ns) with a dispatcher that saturates
    around 4 Mrps. *)
val concord : ?cores:int -> quantum_ns:int -> unit -> Experiment.system_spec
