(** Pluggable admission control at the dispatcher's front door.

    Decides, per arriving request and before any dispatch cost is paid,
    whether to admit or shed.  Shedding early is the overload-protection
    mechanism: past saturation, rejecting the excess keeps the admitted
    requests fast, so goodput stays near peak instead of collapsing. *)

type policy =
  | Accept_all  (** no protection (the historical behavior) *)
  | Queue_limit of { max_in_system : int }
      (** reject when admitted-but-unfinished requests reach the cap *)
  | Ewma_sojourn of { threshold_ns : int; alpha : float }
      (** reject while the EWMA of completion sojourns (updated with
          weight [alpha] per completion) exceeds [threshold_ns] *)

type t

(** Raises [Invalid_argument] on nonsensical parameters. *)
val create : policy -> t

(** [set_policy t p] swaps the live policy (the feedback controller's
    actuator).  The rejection count and the sojourn EWMA are preserved
    across the swap, so mid-run retuning never resets learned state.
    Raises [Invalid_argument] on nonsensical parameters. *)
val set_policy : t -> policy -> unit

(** The policy currently in force. *)
val policy : t -> policy

(** [admit t ~in_system] decides one request; [in_system] is the
    dispatcher's count of admitted-but-unfinished requests.  Counts the
    rejection internally when the answer is [false]. *)
val admit : t -> in_system:int -> bool

(** Feed a completion's sojourn into the EWMA (no-op for the other
    policies). *)
val note_completion : t -> sojourn_ns:int -> unit

(** Requests shed so far. *)
val rejected : t -> int

(** Current EWMA estimate (0 until the first completion). *)
val ewma_sojourn_ns : t -> float

val policy_name : policy -> string
