module Sim = Tq_engine.Sim
module Deque = Tq_util.Ring_deque
module Prng = Tq_util.Prng
module Trace = Tq_obs.Trace
module Event = Tq_obs.Event
module Counters = Tq_obs.Counters

type quantum_policy =
  | Ps of { quantum_ns : int; per_class_quantum : int array option }
  | Fcfs
  | Las of { base_quantum_ns : int; max_quantum_ns : int }

type t = {
  sim : Sim.t;
  wid : int;
  rng : Prng.t;
  policy : quantum_policy;
  ov : Overheads.t;
  queue : Job.t Deque.t;
  on_finish : Job.t -> unit;
  on_idle : unit -> unit;
  trace : Trace.t;
  lane : Event.lane;
  c_quanta : Counters.counter;
  c_yields : Counters.counter;
  c_completions : Counters.counter;
  d_overshoot : Counters.dist;
  mutable busy : bool;
  mutable assigned : int;
  mutable finished : int;
  mutable current_quanta : int;
  mutable busy_ns : int;
}

let create sim ~wid ~rng ~policy ~overheads ?(obs = Tq_obs.Obs.disabled ())
    ?(on_idle = ignore) ~on_finish () =
  let reg = obs.Tq_obs.Obs.counters in
  {
    sim;
    wid;
    rng;
    policy;
    ov = overheads;
    queue = Deque.create ();
    on_finish;
    on_idle;
    trace = obs.Tq_obs.Obs.trace;
    lane = Event.Worker wid;
    c_quanta = Counters.counter reg "worker.quanta";
    c_yields = Counters.counter reg "worker.yields";
    c_completions = Counters.counter reg "worker.completions";
    d_overshoot = Counters.dist reg "worker.overshoot_ns";
    busy = false;
    assigned = 0;
    finished = 0;
    current_quanta = 0;
    busy_ns = 0;
  }

let wid t = t.wid

let jitter t =
  if t.ov.quantum_jitter_ns > 0 then Prng.int t.rng (t.ov.quantum_jitter_ns + 1) else 0

(* The nominal (policy) quantum, before probe-timing jitter. *)
let base_quantum_for t (job : Job.t) =
  match t.policy with
  | Fcfs -> None
  | Ps { quantum_ns; per_class_quantum } ->
      let base =
        match per_class_quantum with
        | Some arr when job.class_idx < Array.length arr -> arr.(job.class_idx)
        | _ -> quantum_ns
      in
      Some base
  | Las { base_quantum_ns; max_quantum_ns } ->
      (* Doubling quanta with attained service: a fresh job preempts
         quickly; a long-running one earns longer slices. *)
      let attained = Job.attained_ns job in
      Some (max base_quantum_ns (min max_quantum_ns attained))

(* LAS serves the job with the least attained service; PS/FCFS serve the
   queue head. *)
let pop_next t =
  match t.policy with
  | Ps _ | Fcfs -> Deque.pop_front t.queue
  | Las _ ->
      if Deque.is_empty t.queue then None
      else begin
        let best = ref 0 and best_attained = ref max_int in
        Deque.iter
          (fun (j : Job.t) ->
            let a = Job.attained_ns j in
            if a < !best_attained then best_attained := a)
          t.queue;
        (* Find the first job achieving the minimum, preserving FIFO
           order among equals. *)
        let n = Deque.length t.queue in
        let rec find i =
          if i >= n then 0
          else if Job.attained_ns (Deque.get t.queue i) = !best_attained then i
          else find (i + 1)
        in
        best := find 0;
        (* Rotate the winner to the front, then pop. *)
        let rec extract i acc =
          if i = 0 then Deque.pop_front t.queue
          else begin
            (match Deque.pop_front t.queue with
            | Some j -> acc := j :: !acc
            | None -> assert false);
            extract (i - 1) acc
          end
        in
        let skipped = ref [] in
        let winner = extract !best skipped in
        List.iter (Deque.push_front t.queue) !skipped;
        winner
      end

let rec run_next t =
  match pop_next t with
  | None ->
      t.busy <- false;
      t.on_idle ()
  | Some job ->
      t.busy <- true;
      (* Draw jitter separately from the base quantum so the overshoot
         past the nominal quantum is observable (same single PRNG draw
         per slice as before). *)
      let jit = ref 0 in
      let slice, finishes =
        match base_quantum_for t job with
        | None -> (job.remaining_ns, true)
        | Some base ->
            jit := jitter t;
            let q = base + !jit in
            if job.remaining_ns <= q then (job.remaining_ns, true)
            else (q, false)
      in
      let extra = if finishes then t.ov.finish_ns else t.ov.yield_ns in
      let busy_for = slice + extra in
      if Trace.enabled t.trace then
        Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:t.lane
          (Event.Quantum_start { job_id = job.id; quantum_ns = slice });
      ignore
        (Sim.schedule_after t.sim ~delay:busy_for (fun () ->
             t.busy_ns <- t.busy_ns + busy_for;
             job.remaining_ns <- job.remaining_ns - slice;
             job.serviced_quanta <- job.serviced_quanta + 1;
             t.current_quanta <- t.current_quanta + 1;
             Counters.incr t.c_quanta;
             let now = Sim.now t.sim in
             if Trace.enabled t.trace then
               Trace.record t.trace ~ts_ns:now ~lane:t.lane
                 (Event.Quantum_end { job_id = job.id; ran_ns = busy_for; finished = finishes });
             if finishes then begin
               t.current_quanta <- t.current_quanta - job.serviced_quanta;
               t.finished <- t.finished + 1;
               Counters.incr t.c_completions;
               if Trace.enabled t.trace then
                 Trace.record t.trace ~ts_ns:now ~lane:t.lane
                   (Event.Completion { job_id = job.id; sojourn_ns = now - job.arrival_ns });
               t.on_finish job
             end
             else begin
               Counters.incr t.c_yields;
               if !jit > 0 then Counters.observe t.d_overshoot !jit;
               if Trace.enabled t.trace then begin
                 Trace.record t.trace ~ts_ns:now ~lane:t.lane
                   (Event.Yield { job_id = job.id });
                 if !jit > 0 then
                   Trace.record t.trace ~ts_ns:now ~lane:t.lane
                     (Event.Preempt_overshoot { job_id = job.id; overshoot_ns = !jit })
               end;
               Deque.push_back t.queue job
             end;
             run_next t)
          : Sim.event)

let enqueue t job =
  Deque.push_back t.queue job;
  if not t.busy then run_next t

let unfinished t = t.assigned - t.finished
let current_quanta t = t.current_quanta
let finished_jobs t = t.finished
let busy_ns t = t.busy_ns
let queue_length t = Deque.length t.queue
let note_assigned t = t.assigned <- t.assigned + 1
let is_busy t = t.busy

let steal t =
  match Deque.pop_back t.queue with
  | Some job ->
      (* The job leaves this core: its load transfers to the thief, which
         calls [note_assigned] on itself. *)
      t.assigned <- t.assigned - 1;
      Some job
  | None -> None
