module Sim = Tq_engine.Sim
module Deque = Tq_util.Ring_deque
module Prng = Tq_util.Prng
module Trace = Tq_obs.Trace
module Event = Tq_obs.Event
module Counters = Tq_obs.Counters

type quantum_policy =
  | Ps of { quantum_ns : int; per_class_quantum : int array option }
  | Fcfs
  | Las of { base_quantum_ns : int; max_quantum_ns : int }

type t = {
  sim : Sim.t;
  wid : int;
  rng : Prng.t;
  mutable policy : quantum_policy;
  ov : Overheads.t;
  queue : Job.t Deque.t;
  on_finish : Job.t -> unit;
  on_idle : unit -> unit;
  on_lost : Job.t -> unit;
  trace : Trace.t;
  lane : Event.lane;
  c_quanta : Counters.counter;
  c_yields : Counters.counter;
  c_completions : Counters.counter;
  d_overshoot : Counters.dist;
  mutable busy : bool;
  mutable assigned : int;
  mutable finished : int;
  mutable current_quanta : int;
  mutable busy_ns : int;
  (* Fault-injection state (tq_fault).  A stall models a core blackout
     (GC pause, SMI, antagonist): it is served between quanta, so it
     delays but never corrupts the running slice.  A killed core loses
     its in-flight slice; queued jobs stay put for [drain] (dispatcher
     rescue) or [steal] (Caladan). *)
  mutable dead : bool;
  mutable in_service : bool;  (** a job slice (not a stall) is executing *)
  mutable in_stall : bool;  (** a blackout window is being served *)
  mutable stall_pending_ns : int;
  mutable stalled_ns : int;
  mutable lost : int;
  mutable quanta_total : int;  (** monotone progress counter, never reset *)
}

let create sim ~wid ~rng ~policy ~overheads ?(obs = Tq_obs.Obs.disabled ())
    ?(on_idle = ignore) ?(on_lost = ignore) ~on_finish () =
  let reg = obs.Tq_obs.Obs.counters in
  {
    sim;
    wid;
    rng;
    policy;
    ov = overheads;
    queue = Deque.create ();
    on_finish;
    on_idle;
    on_lost;
    trace = obs.Tq_obs.Obs.trace;
    lane = Event.Worker wid;
    c_quanta = Counters.counter reg "worker.quanta";
    c_yields = Counters.counter reg "worker.yields";
    c_completions = Counters.counter reg "worker.completions";
    d_overshoot = Counters.dist reg "worker.overshoot_ns";
    busy = false;
    assigned = 0;
    finished = 0;
    current_quanta = 0;
    busy_ns = 0;
    dead = false;
    in_service = false;
    in_stall = false;
    stall_pending_ns = 0;
    stalled_ns = 0;
    lost = 0;
    quanta_total = 0;
  }

let wid t = t.wid

(* The controller's actuator.  Takes effect from the next slice: the
   quantum of the slice currently executing was already committed to the
   event queue, exactly like a real core that re-reads its quantum
   register at the next preemption point. *)
let set_quantum t ?class_idx ~quantum_ns () =
  if quantum_ns <= 0 then invalid_arg "Worker.set_quantum: quantum must be positive";
  match t.policy with
  | Fcfs | Las _ -> ()
  | Ps { quantum_ns = base; per_class_quantum } -> (
      match class_idx with
      | None -> t.policy <- Ps { quantum_ns; per_class_quantum }
      | Some c ->
          if c < 0 then invalid_arg "Worker.set_quantum: negative class index";
          let arr =
            match per_class_quantum with
            | Some arr when c < Array.length arr -> arr
            | Some arr ->
                let bigger = Array.make (c + 1) base in
                Array.blit arr 0 bigger 0 (Array.length arr);
                bigger
            | None -> Array.make (c + 1) base
          in
          arr.(c) <- quantum_ns;
          t.policy <- Ps { quantum_ns = base; per_class_quantum = Some arr })

let quantum_for_class t ~class_idx =
  match t.policy with
  | Fcfs -> None
  | Las { base_quantum_ns; _ } -> Some base_quantum_ns
  | Ps { quantum_ns; per_class_quantum } -> (
      match per_class_quantum with
      | Some arr when class_idx >= 0 && class_idx < Array.length arr ->
          Some arr.(class_idx)
      | _ -> Some quantum_ns)

let jitter t =
  if t.ov.quantum_jitter_ns > 0 then Prng.int t.rng (t.ov.quantum_jitter_ns + 1) else 0

(* The nominal (policy) quantum, before probe-timing jitter. *)
let base_quantum_for t (job : Job.t) =
  match t.policy with
  | Fcfs -> None
  | Ps { quantum_ns; per_class_quantum } ->
      let base =
        match per_class_quantum with
        | Some arr when job.class_idx < Array.length arr -> arr.(job.class_idx)
        | _ -> quantum_ns
      in
      Some base
  | Las { base_quantum_ns; max_quantum_ns } ->
      (* Doubling quanta with attained service: a fresh job preempts
         quickly; a long-running one earns longer slices. *)
      let attained = Job.attained_ns job in
      Some (max base_quantum_ns (min max_quantum_ns attained))

(* LAS serves the job with the least attained service; PS/FCFS serve the
   queue head. *)
let pop_next t =
  match t.policy with
  | Ps _ | Fcfs -> Deque.pop_front t.queue
  | Las _ ->
      if Deque.is_empty t.queue then None
      else begin
        let best = ref 0 and best_attained = ref max_int in
        Deque.iter
          (fun (j : Job.t) ->
            let a = Job.attained_ns j in
            if a < !best_attained then best_attained := a)
          t.queue;
        (* Find the first job achieving the minimum, preserving FIFO
           order among equals. *)
        let n = Deque.length t.queue in
        let rec find i =
          if i >= n then 0
          else if Job.attained_ns (Deque.get t.queue i) = !best_attained then i
          else find (i + 1)
        in
        best := find 0;
        (* Rotate the winner to the front, then pop. *)
        let rec extract i acc =
          if i = 0 then Deque.pop_front t.queue
          else begin
            (match Deque.pop_front t.queue with
            | Some j -> acc := j :: !acc
            | None -> assert false);
            extract (i - 1) acc
          end
        in
        let skipped = ref [] in
        let winner = extract !best skipped in
        List.iter (Deque.push_front t.queue) !skipped;
        winner
      end

let rec run_next t =
  if t.dead then t.busy <- false  (* queue kept for [drain] / [steal] *)
  else if t.stall_pending_ns > 0 then begin
    (* Serve the accumulated blackout before touching the run queue.
       The slice in flight when the stall was injected has already run
       to its quantum boundary — the model charges stalls between
       quanta, a deliberate simplification (a real GC pause would also
       stretch the current slice). *)
    let d = t.stall_pending_ns in
    t.stall_pending_ns <- 0;
    t.busy <- true;
    t.in_stall <- true;
    if Trace.enabled t.trace then
      Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:t.lane
        (Event.Stall_start { worker = t.wid; duration_ns = d });
    ignore
      (Sim.schedule_after t.sim ~delay:d (fun () ->
           t.in_stall <- false;
           t.stalled_ns <- t.stalled_ns + d;
           if Trace.enabled t.trace then
             Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:t.lane
               (Event.Stall_end { worker = t.wid });
           run_next t)
        : Sim.event)
  end
  else
    match pop_next t with
    | None ->
        t.busy <- false;
        t.on_idle ()
    | Some job ->
        t.busy <- true;
        t.in_service <- true;
      (* Draw jitter separately from the base quantum so the overshoot
         past the nominal quantum is observable (same single PRNG draw
         per slice as before). *)
      let jit = ref 0 in
      let slice, finishes =
        match base_quantum_for t job with
        | None -> (job.remaining_ns, true)
        | Some base ->
            jit := jitter t;
            let q = base + !jit in
            if job.remaining_ns <= q then (job.remaining_ns, true)
            else (q, false)
      in
      let extra = if finishes then t.ov.finish_ns else t.ov.yield_ns in
      let busy_for = slice + extra in
      if Trace.enabled t.trace then
        Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:t.lane
          (Event.Quantum_start { job_id = job.id; quantum_ns = slice });
      ignore
        (Sim.schedule_after t.sim ~delay:busy_for (fun () ->
             t.in_service <- false;
             if t.dead then begin
               (* The core died mid-slice: the job's state is gone. *)
               t.busy <- false;
               t.current_quanta <- t.current_quanta - job.serviced_quanta;
               t.assigned <- t.assigned - 1;
               t.lost <- t.lost + 1;
               t.on_lost job
             end
             else begin
             t.busy_ns <- t.busy_ns + busy_for;
             job.remaining_ns <- job.remaining_ns - slice;
             job.serviced_quanta <- job.serviced_quanta + 1;
             t.current_quanta <- t.current_quanta + 1;
             t.quanta_total <- t.quanta_total + 1;
             Counters.incr t.c_quanta;
             let now = Sim.now t.sim in
             if Trace.enabled t.trace then
               Trace.record t.trace ~ts_ns:now ~lane:t.lane
                 (Event.Quantum_end { job_id = job.id; ran_ns = busy_for; finished = finishes });
             if finishes then begin
               t.current_quanta <- t.current_quanta - job.serviced_quanta;
               t.finished <- t.finished + 1;
               Counters.incr t.c_completions;
               if Trace.enabled t.trace then
                 Trace.record t.trace ~ts_ns:now ~lane:t.lane
                   (Event.Completion { job_id = job.id; sojourn_ns = now - job.arrival_ns });
               t.on_finish job
             end
             else begin
               Counters.incr t.c_yields;
               if !jit > 0 then Counters.observe t.d_overshoot !jit;
               if Trace.enabled t.trace then begin
                 Trace.record t.trace ~ts_ns:now ~lane:t.lane
                   (Event.Yield { job_id = job.id });
                 if !jit > 0 then
                   Trace.record t.trace ~ts_ns:now ~lane:t.lane
                     (Event.Preempt_overshoot { job_id = job.id; overshoot_ns = !jit })
               end;
               Deque.push_back t.queue job
             end;
             run_next t
             end)
          : Sim.event)

let enqueue t job =
  Deque.push_back t.queue job;
  if not t.busy then run_next t

let inject_stall t ~duration_ns =
  if duration_ns <= 0 then invalid_arg "Worker.inject_stall: duration must be positive";
  if not t.dead then begin
    t.stall_pending_ns <- t.stall_pending_ns + duration_ns;
    if not t.busy then run_next t
  end

let kill t =
  if not t.dead then begin
    t.dead <- true;
    t.stall_pending_ns <- 0;
    if Trace.enabled t.trace then
      Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:t.lane
        (Event.Worker_killed { worker = t.wid });
    (* If a slice is in flight, its closure sees [dead] and loses the
       job; if the core is mid-stall or idle, nothing more runs. *)
    if not t.busy then run_next t
  end

let drain t =
  let rec loop acc =
    match Deque.pop_front t.queue with
    | Some job ->
        t.assigned <- t.assigned - 1;
        loop (job :: acc)
    | None -> List.rev acc
  in
  loop []

let alive t = not t.dead
let in_service t = t.in_service

(* Whether the core would answer a dispatcher heartbeat right now.
   Forced multitasking guarantees the worker loop regains control every
   quantum, so a healthy core always replies promptly; only a blackout
   (stall) or death makes it miss pings.  A long legitimate slice does
   NOT make the core unresponsive. *)
let responsive t = not t.dead && not t.in_stall
let progress t = t.quanta_total
let loaded t = t.assigned - t.finished > 0
let stalled_ns t = t.stalled_ns
let lost_jobs t = t.lost

let unfinished t = t.assigned - t.finished
let current_quanta t = t.current_quanta
let finished_jobs t = t.finished
let busy_ns t = t.busy_ns
let queue_length t = Deque.length t.queue
let note_assigned t = t.assigned <- t.assigned + 1
let note_unassigned t = t.assigned <- t.assigned - 1
let is_busy t = t.busy

let steal t =
  match Deque.pop_back t.queue with
  | Some job ->
      (* The job leaves this core: its load transfers to the thief, which
         calls [note_assigned] on itself. *)
      t.assigned <- t.assigned - 1;
      Some job
  | None -> None
