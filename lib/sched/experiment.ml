module Sim = Tq_engine.Sim
module Prng = Tq_util.Prng
module Metrics = Tq_workload.Metrics
module Arrivals = Tq_workload.Arrivals
module Timeseries = Tq_obs.Timeseries

type system_spec = System_intf.spec =
  | Two_level of Two_level.config
  | Stealing of Two_level.config
  | Centralized of Centralized.config
  | Caladan of Caladan.config

type result = {
  metrics : Metrics.t;
  offered : int;
  duration_ns : int;
  events : int;
  dispatcher_busy_ns : int;
  timeseries : Timeseries.t option;
      (** queue depth / in-flight / busy cores sampled every
          [obs.sample_interval_ns] of virtual time; [None] without [?obs] *)
}

let run ?(seed = 42L) ?obs ~system ~workload ~rate_rps ~duration_ns () =
  let sim = Sim.create () in
  let rng = Prng.create ~seed in
  let warmup_ns = duration_ns / 10 in
  let metrics = Metrics.create ~workload ~warmup_ns in
  let inst = System_intf.instantiate system sim ~rng:(Prng.split rng) ~metrics ?obs () in
  let submit = System_intf.submit inst in
  let dispatcher_busy () = System_intf.dispatcher_busy_ns inst in
  let snapshot () = System_intf.obs_snapshot inst in
  (* The time-series sampler: a periodic event on the sim's virtual
     clock, bounded by [duration_ns] so the sim still drains. *)
  let timeseries =
    match obs with
    | None -> None
    | Some (obs : Tq_obs.Obs.t) ->
        let ts = Timeseries.create ~series:[ "queue_depth"; "in_flight"; "busy_cores" ] in
        let interval = max 1 obs.sample_interval_ns in
        ignore
          (Sim.periodic sim ~until:duration_ns ~interval (fun () ->
               let queued, in_flight, busy = snapshot () in
               Timeseries.push ts ~t_ns:(Sim.now sim)
                 [| float_of_int queued; float_of_int in_flight; float_of_int busy |])
            : Sim.periodic);
        Some ts
  in
  let issued =
    Arrivals.install sim ~rng:(Prng.split rng) ~workload ~rate_rps ~duration_ns
      ~sink:submit
  in
  Sim.run sim;
  {
    metrics;
    offered = !issued;
    duration_ns;
    events = Sim.events_processed sim;
    dispatcher_busy_ns = dispatcher_busy ();
    timeseries;
  }

let throughput_rps r =
  (* Completions counted after warm-up, over the post-warm-up window. *)
  let measured_ns = r.duration_ns - (r.duration_ns / 10) in
  float_of_int (Metrics.total_completed r.metrics) /. (float_of_int measured_ns /. 1e9)

let run_seeds ~seeds ~system ~workload ~rate_rps ~duration_ns () =
  List.map (fun seed -> run ~seed ~system ~workload ~rate_rps ~duration_ns ()) seeds

let mean_over results f =
  let values = List.filter (fun v -> not (Float.is_nan v)) (List.map f results) in
  match values with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)

let mean_sojourn_percentile results ~class_idx p =
  mean_over results (fun r -> Metrics.sojourn_percentile r.metrics ~class_idx p)

let mean_slowdown_percentile results ~class_idx p =
  mean_over results (fun r -> Metrics.slowdown_percentile r.metrics ~class_idx p)

let max_rate_under_slo ~run_at ~rates ~ok =
  List.fold_left
    (fun best rate -> if ok (run_at rate) then Float.max best rate else best)
    0.0 rates
