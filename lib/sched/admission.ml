(* Overload protection at the dispatcher's front door.

   Shedding happens before the dispatch pipeline is paid for, so a
   rejected request costs (nearly) nothing — the point of admission
   control is that under overload it is cheaper to say no early than to
   let every request queue and miss its deadline.  Policies are
   deliberately cheap enough for a per-request fast path: an integer
   compare (queue limit) or one EWMA update per completion. *)

type policy =
  | Accept_all
  | Queue_limit of { max_in_system : int }
      (** reject when admitted-but-unfinished requests reach the cap *)
  | Ewma_sojourn of { threshold_ns : int; alpha : float }
      (** reject while the exponentially weighted moving average of
          completion sojourns exceeds [threshold_ns] *)

(* [policy] is an [Atomic] so a controller domain can retune the gate
   while another domain (a dispatcher lane) is consulting it: the swap
   publishes the new policy value with release semantics, so readers
   never observe a half-initialized record.  [ewma_ns] and [rejected]
   stay plain — they are only touched by the lane that owns the gate. *)
type t = { policy : policy Atomic.t; mutable ewma_ns : float; mutable rejected : int }

let validate policy =
  match policy with
  | Accept_all -> ()
  | Queue_limit { max_in_system } ->
      if max_in_system < 1 then invalid_arg "Admission: max_in_system must be >= 1"
  | Ewma_sojourn { threshold_ns; alpha } ->
      if threshold_ns <= 0 then invalid_arg "Admission: threshold_ns must be positive";
      if not (alpha > 0.0 && alpha <= 1.0) then
        invalid_arg "Admission: alpha must be in (0, 1]"

let create policy =
  validate policy;
  { policy = Atomic.make policy; ewma_ns = 0.0; rejected = 0 }

(* Live retune (the feedback controller's actuator): the rejection tally
   and the sojourn EWMA survive the swap, so tightening and relaxing a
   threshold mid-run never resets what the gate has learned. *)
let set_policy t policy =
  validate policy;
  Atomic.set t.policy policy

let policy t = Atomic.get t.policy

let admit t ~in_system =
  let ok =
    match Atomic.get t.policy with
    | Accept_all -> true
    | Queue_limit { max_in_system } -> in_system < max_in_system
    | Ewma_sojourn { threshold_ns; _ } -> t.ewma_ns <= float_of_int threshold_ns
  in
  if not ok then t.rejected <- t.rejected + 1;
  ok

let note_completion t ~sojourn_ns =
  match Atomic.get t.policy with
  | Ewma_sojourn { alpha; _ } ->
      t.ewma_ns <-
        if t.ewma_ns = 0.0 then float_of_int sojourn_ns
        else (alpha *. float_of_int sojourn_ns) +. ((1.0 -. alpha) *. t.ewma_ns)
  | Accept_all | Queue_limit _ -> ()

let rejected t = t.rejected
let ewma_sojourn_ns t = t.ewma_ns

let policy_name = function
  | Accept_all -> "accept-all"
  | Queue_limit { max_in_system } -> Printf.sprintf "queue-limit(%d)" max_in_system
  | Ewma_sojourn { threshold_ns; alpha } ->
      Printf.sprintf "ewma-sojourn(%dns,a=%.2f)" threshold_ns alpha
