(* The unified system interface.  Each adapter wraps one concrete
   scheduler behind the shared signature; capabilities a system lacks
   degrade to defaults (zero, None, no-op) instead of partial
   functions, so drivers carry no per-system branching. *)

type spec =
  | Two_level of Two_level.config
  | Stealing of Two_level.config
  | Centralized of Centralized.config
  | Caladan of Caladan.config

let spec_cores = function
  | Two_level (cfg : Two_level.config) | Stealing cfg -> cfg.cores
  | Centralized (cfg : Centralized.config) -> cfg.cores
  | Caladan (cfg : Caladan.config) -> cfg.cores

let spec_name = function
  | Two_level _ -> "two-level"
  | Stealing _ -> "stealing"
  | Centralized _ -> "centralized"
  | Caladan _ -> "caladan"

module type S = sig
  type t

  val name : string
  val submit : t -> Tq_workload.Arrivals.request -> unit
  val dispatcher_busy_ns : t -> int
  val obs_snapshot : t -> int * int * int
  val accounting : t -> Two_level.accounting option
  val in_system : t -> int
  val lost_jobs : t -> int
  val inject_stall : t -> wid:int -> duration_ns:int -> unit
  val kill_worker : t -> wid:int -> unit
  val inject_dispatcher_outage : t -> dispatcher:int -> duration_ns:int -> unit

  (** Live actuators for feedback control.  Systems without the knob
      degrade to a no-op (Caladan is FCFS: no quantum; the baselines
      have no admission gate), preserving the no-per-system-branching
      driver contract. *)

  val set_quantum : t -> class_idx:int option -> quantum_ns:int -> unit
  val set_admission : t -> Admission.policy -> unit

  val install_health_monitor :
    t -> interval_ns:int -> until_ns:int -> missed_heartbeats:int -> unit
end

type instance = Instance : (module S with type t = 'a) * 'a -> instance

(* Faults address worker cores directly (the ground truth), exactly as
   the fault harness historically did for TQ: the dispatcher's belief is
   updated separately by its own health tracking. *)
module Two_level_system : S with type t = Two_level.t = struct
  type t = Two_level.t

  let name = "two-level"
  let submit = Two_level.submit
  let dispatcher_busy_ns = Two_level.dispatcher_busy_ns
  let obs_snapshot = Two_level.obs_snapshot
  let accounting t = Some (Two_level.accounting t)
  let in_system = Two_level.in_system
  let lost_jobs t = (Two_level.accounting t).Two_level.lost

  let inject_stall t ~wid ~duration_ns =
    Worker.inject_stall (Two_level.workers t).(wid) ~duration_ns

  let kill_worker t ~wid = Worker.kill (Two_level.workers t).(wid)
  let inject_dispatcher_outage = Two_level.inject_dispatcher_outage
  let set_quantum t ~class_idx ~quantum_ns = Two_level.set_quantum t ?class_idx ~quantum_ns ()
  let set_admission = Two_level.set_admission_policy

  let install_health_monitor t ~interval_ns ~until_ns ~missed_heartbeats =
    ignore
      (Two_level.install_health_monitor t ~interval_ns ~until_ns ~missed_heartbeats ()
        : Tq_engine.Sim.periodic)
end

(* Push+steal TQ runs on the same concrete type; only the label
   differs, so sweep output distinguishes the two systems. *)
module Stealing_system : S with type t = Two_level.t = struct
  include Two_level_system

  let name = "stealing"
end

module Centralized_system : S with type t = Centralized.t = struct
  type t = Centralized.t

  let name = "centralized"
  let submit = Centralized.submit
  let dispatcher_busy_ns = Centralized.dispatcher_busy_ns
  let obs_snapshot = Centralized.obs_snapshot
  let accounting _ = None

  let in_system t =
    let _, in_flight, _ = Centralized.obs_snapshot t in
    in_flight

  let lost_jobs = Centralized.lost_jobs
  let inject_stall = Centralized.inject_stall
  let kill_worker = Centralized.kill_worker

  let inject_dispatcher_outage t ~dispatcher:_ ~duration_ns =
    Centralized.inject_dispatcher_outage t ~duration_ns

  let install_health_monitor _ ~interval_ns:_ ~until_ns:_ ~missed_heartbeats:_ = ()
  let set_quantum t ~class_idx ~quantum_ns = Centralized.set_quantum t ?class_idx ~quantum_ns ()
  let set_admission _ _ = ()
end

module Caladan_system : S with type t = Caladan.t = struct
  type t = Caladan.t

  let name = "caladan"
  let submit = Caladan.submit

  (* Directpath has no central core; IOKernel forwarding cost is modelled
     on the packet path, not as dispatcher busy time. *)
  let dispatcher_busy_ns _ = 0
  let obs_snapshot = Caladan.obs_snapshot
  let accounting _ = None

  let in_system t =
    let _, in_flight, _ = Caladan.obs_snapshot t in
    in_flight

  let lost_jobs = Caladan.lost_jobs
  let inject_stall = Caladan.inject_stall
  let kill_worker = Caladan.kill_worker

  let inject_dispatcher_outage t ~dispatcher:_ ~duration_ns =
    Caladan.inject_iokernel_outage t ~duration_ns

  let install_health_monitor _ ~interval_ns:_ ~until_ns:_ ~missed_heartbeats:_ = ()

  (* FCFS run-to-completion: there is no quantum and no admission gate
     to retune. *)
  let set_quantum _ ~class_idx:_ ~quantum_ns:_ = ()
  let set_admission _ _ = ()
end

let instantiate spec sim ~rng ~metrics ?obs ?admission ?on_complete ?on_reject ?on_lost
    () =
  match spec with
  | Two_level config ->
      let t =
        Two_level.create sim ~rng ~config ~metrics ?obs ?admission ?on_complete
          ?on_reject ?on_lost ()
      in
      Instance ((module Two_level_system), t)
  | Stealing config ->
      let t =
        Two_level.create sim ~rng ~config ~metrics ?obs ?admission ~steal:true
          ?on_complete ?on_reject ?on_lost ()
      in
      Instance ((module Stealing_system), t)
  | Centralized config ->
      let t = Centralized.create sim ~rng ~config ~metrics ?obs ?on_complete ?on_lost () in
      Instance ((module Centralized_system), t)
  | Caladan config ->
      let t = Caladan.create sim ~rng ~config ~metrics ?obs ?on_complete ?on_lost () in
      Instance ((module Caladan_system), t)

let submit (Instance ((module M), t)) req = M.submit t req
let dispatcher_busy_ns (Instance ((module M), t)) = M.dispatcher_busy_ns t
let obs_snapshot (Instance ((module M), t)) = M.obs_snapshot t
let accounting (Instance ((module M), t)) = M.accounting t
let in_system (Instance ((module M), t)) = M.in_system t
let lost_jobs (Instance ((module M), t)) = M.lost_jobs t
let inject_stall (Instance ((module M), t)) ~wid ~duration_ns =
  M.inject_stall t ~wid ~duration_ns

let kill_worker (Instance ((module M), t)) ~wid = M.kill_worker t ~wid

let inject_dispatcher_outage (Instance ((module M), t)) ~dispatcher ~duration_ns =
  M.inject_dispatcher_outage t ~dispatcher ~duration_ns

let install_health_monitor (Instance ((module M), t)) ~interval_ns ~until_ns
    ~missed_heartbeats =
  M.install_health_monitor t ~interval_ns ~until_ns ~missed_heartbeats

let set_quantum (Instance ((module M), t)) ~class_idx ~quantum_ns =
  M.set_quantum t ~class_idx ~quantum_ns

let set_admission (Instance ((module M), t)) policy = M.set_admission t policy
