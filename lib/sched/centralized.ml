module Sim = Tq_engine.Sim
module Busy_server = Tq_engine.Busy_server
module Deque = Tq_util.Ring_deque
module Metrics = Tq_workload.Metrics
module Arrivals = Tq_workload.Arrivals
module Trace = Tq_obs.Trace
module Event = Tq_obs.Event
module Counters = Tq_obs.Counters

type config = {
  cores : int;
  quantum_ns : int option;
  net_op_ns : int;
  sched_op_ns : int;
  sched_scan_per_core_ns : int;
  preempt_ns : int;
  probe_overhead_frac : float;
}

let ideal_config ~quantum_ns ~cores =
  {
    cores;
    quantum_ns = Some quantum_ns;
    net_op_ns = 0;
    sched_op_ns = 0;
    sched_scan_per_core_ns = 0;
    preempt_ns = 0;
    probe_overhead_frac = 0.0;
  }

let shinjuku_config ~quantum_ns ~cores =
  {
    cores;
    quantum_ns = Some quantum_ns;
    net_op_ns = 100;
    sched_op_ns = 130;
    sched_scan_per_core_ns = 10;
    preempt_ns = 1_000;
    probe_overhead_frac = 0.0;
  }

(* A dispatcher-core operation: admitting an arrival or assigning a
   quantum of [job] to worker [wid]; both occupy the single dispatcher. *)
type op = Admit of Arrivals.request | Assign of { job : Job.t; wid : int }

type t = {
  sim : Sim.t;
  mutable config : config;  (** mutable so the quantum can be retuned live *)
  queue : Job.t Deque.t;  (** central pending/preempted jobs, PS order *)
  busy : bool array;  (** worker executing a slice *)
  inflight : bool array;  (** an Assign op for this worker is at the dispatcher *)
  pending : Job.t option array;  (** assignment delivered while still busy *)
  dispatcher : op Busy_server.t;
  metrics : Metrics.t;
  last_end : int array;  (** per-worker last slice end time *)
  (* Fault state: a stalled worker serves its blackout between slices
     ([busy] held true so the dispatcher parks assignments in
     [pending]); a dead worker loses its in-flight slice and has its
     parked assignment returned to the central queue. *)
  stall_pending : int array;
  in_stall : bool array;
  dead_w : bool array;
  mutable lost : int;
  on_complete : Job.t -> unit;
  on_lost : Job.t -> unit;
  trace : Trace.t;
  c_arrivals : Counters.counter;
  c_assigns : Counters.counter;
  c_quanta : Counters.counter;
  c_preemptions : Counters.counter;
  c_completions : Counters.counter;
  mutable gap_sum : int;
  mutable gap_count : int;
  mutable slice_sum : int;
  mutable slice_count : int;
}

let create sim ~rng:_ ~config ~metrics ?(obs = Tq_obs.Obs.disabled ())
    ?(on_complete = fun (_ : Job.t) -> ()) ?(on_lost = fun (_ : Job.t) -> ()) () =
  if config.cores < 1 then invalid_arg "Centralized.create: need at least one core";
  let reg = obs.Tq_obs.Obs.counters in
  {
    sim;
    config;
    queue = Deque.create ();
    busy = Array.make config.cores false;
    inflight = Array.make config.cores false;
    pending = Array.make config.cores None;
    dispatcher = Busy_server.create sim ();
    metrics;
    last_end = Array.make config.cores (-1);
    stall_pending = Array.make config.cores 0;
    in_stall = Array.make config.cores false;
    dead_w = Array.make config.cores false;
    lost = 0;
    on_complete;
    on_lost;
    trace = obs.Tq_obs.Obs.trace;
    c_arrivals = Counters.counter reg "dispatch.arrivals";
    c_assigns = Counters.counter reg "dispatch.decisions";
    c_quanta = Counters.counter reg "worker.quanta";
    c_preemptions = Counters.counter reg "worker.yields";
    c_completions = Counters.counter reg "worker.completions";
    gap_sum = 0;
    gap_count = 0;
    slice_sum = 0;
    slice_count = 0;
  }

(* An assignment op left the dispatcher core: the decision is made. *)
let note_assign t ~(job : Job.t) ~wid =
  Counters.incr t.c_assigns;
  if Trace.enabled t.trace then
    Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:(Event.Dispatcher 0)
      (Event.Dispatch
         {
           job_id = job.Job.id;
           worker = wid;
           policy = "centralized";
           queue_len = Deque.length t.queue;
         })

(* The dispatcher pipelines: it may prepare the *next* assignment for a
   worker while that worker still runs its current slice (one
   outstanding assignment per worker, like a mailbox).  The worker then
   switches with no dispatcher-induced gap — unless the dispatcher
   cannot keep up, which is exactly the Figure 16 bottleneck. *)
let rec kick t =
  if not (Deque.is_empty t.queue) then begin
    (* Prefer idle workers, then busy ones lacking a prefetched job. *)
    let pick want_idle =
      let found = ref None in
      Array.iteri
        (fun w busy ->
          if
            !found = None && busy <> want_idle && (not t.inflight.(w))
            && t.pending.(w) = None
            && not t.dead_w.(w)
          then found := Some w)
        t.busy;
      !found
    in
    let target = match pick true with Some w -> Some w | None -> pick false in
    match target with
    | None -> ()
    | Some wid -> (
        match Deque.pop_front t.queue with
        | None -> ()
        | Some job ->
            t.inflight.(wid) <- true;
            let cost =
              t.config.sched_op_ns + (t.config.sched_scan_per_core_ns * t.config.cores)
            in
            Busy_server.submit t.dispatcher ~cost (Assign { job; wid }) ~done_:(fun op ->
                match op with
                | Assign { job; wid } ->
                    t.inflight.(wid) <- false;
                    if t.dead_w.(wid) then begin
                      (* The core died while the assignment was being
                         prepared: the job goes back to the head of the
                         central queue. *)
                      Deque.push_front t.queue job;
                      kick t
                    end
                    else begin
                      note_assign t ~job ~wid;
                      if t.busy.(wid) then t.pending.(wid) <- Some job
                      else start_slice t ~job ~wid;
                      (* Keep the pipeline primed: prepare the next
                         assignment while slices run. *)
                      kick t
                    end
                | Admit _ -> assert false);
            kick t)
  end

and start_slice t ~job ~wid =
  let now = Sim.now t.sim in
  if t.last_end.(wid) >= 0 then begin
    (* Idle time between the previous slice ending and this one starting
       is dispatcher-induced delay. *)
    t.gap_sum <- t.gap_sum + (now - t.last_end.(wid));
    t.gap_count <- t.gap_count + 1
  end;
  t.busy.(wid) <- true;
  let slice, finishes =
    match t.config.quantum_ns with
    | None -> (job.remaining_ns, true)
    | Some q -> if job.remaining_ns <= q then (job.remaining_ns, true) else (q, false)
  in
  let overhead = if finishes then 0 else t.config.preempt_ns in
  t.slice_sum <- t.slice_sum + slice;
  t.slice_count <- t.slice_count + 1;
  if Trace.enabled t.trace then
    Trace.record t.trace ~ts_ns:now ~lane:(Event.Worker wid)
      (Event.Quantum_start { job_id = job.Job.id; quantum_ns = slice });
  ignore
    (Sim.schedule_after t.sim ~delay:(slice + overhead) (fun () ->
         if t.dead_w.(wid) then begin
           (* The core died mid-slice: the job's state is gone. *)
           t.lost <- t.lost + 1;
           t.busy.(wid) <- false;
           t.on_lost job;
           rescue_pending t ~wid
         end
         else begin
           job.remaining_ns <- job.remaining_ns - slice;
           job.serviced_quanta <- job.serviced_quanta + 1;
           Counters.incr t.c_quanta;
           let end_ns = Sim.now t.sim in
           if Trace.enabled t.trace then
             Trace.record t.trace ~ts_ns:end_ns ~lane:(Event.Worker wid)
               (Event.Quantum_end
                  { job_id = job.Job.id; ran_ns = slice + overhead; finished = finishes });
           if finishes then begin
             Counters.incr t.c_completions;
             if Trace.enabled t.trace then
               Trace.record t.trace ~ts_ns:end_ns ~lane:(Event.Worker wid)
                 (Event.Completion
                    { job_id = job.Job.id; sojourn_ns = end_ns - job.arrival_ns });
             Metrics.record t.metrics ~class_idx:job.class_idx ~arrival_ns:job.arrival_ns
               ~finish_ns:(Sim.now t.sim) ~service_ns:job.service_ns;
             t.on_complete job
           end
           else begin
             Counters.incr t.c_preemptions;
             if Trace.enabled t.trace then
               Trace.record t.trace ~ts_ns:end_ns ~lane:(Event.Worker wid)
                 (Event.Yield { job_id = job.Job.id });
             Deque.push_back t.queue job
           end;
           t.last_end.(wid) <- Sim.now t.sim;
           t.busy.(wid) <- false;
           after_slice t ~wid
         end)
      : Sim.event)

(* A dead core's parked assignment goes back to the central queue — the
   dispatcher owns all state in this model, so rescue is immediate. *)
and rescue_pending t ~wid =
  match t.pending.(wid) with
  | Some job ->
      t.pending.(wid) <- None;
      Deque.push_front t.queue job;
      kick t
  | None -> ()

(* What a worker does after a slice (or blackout window) ends: serve any
   injected stall first — [busy] stays true so assignments park in
   [pending] — then pick up parked work and re-prime the pipeline. *)
and after_slice t ~wid =
  if t.dead_w.(wid) then rescue_pending t ~wid
  else if t.stall_pending.(wid) > 0 then begin
    let d = t.stall_pending.(wid) in
    t.stall_pending.(wid) <- 0;
    t.busy.(wid) <- true;
    t.in_stall.(wid) <- true;
    if Trace.enabled t.trace then
      Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:(Event.Worker wid)
        (Event.Stall_start { worker = wid; duration_ns = d });
    ignore
      (Sim.schedule_after t.sim ~delay:d (fun () ->
           t.in_stall.(wid) <- false;
           t.busy.(wid) <- false;
           if Trace.enabled t.trace then
             Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:(Event.Worker wid)
               (Event.Stall_end { worker = wid });
           after_slice t ~wid)
        : Sim.event)
  end
  else begin
    (match t.pending.(wid) with
    | Some next ->
        t.pending.(wid) <- None;
        start_slice t ~job:next ~wid
    | None -> ());
    kick t;
    (* Work conservation: an idle worker with nothing to do poaches
       an assignment parked at a busy worker (the dispatcher pays
       another op to re-steer it). *)
    if (not t.busy.(wid)) && not t.inflight.(wid) then begin
      let victim = ref None in
      Array.iteri
        (fun w pending -> if !victim = None && pending <> None && w <> wid then victim := Some w)
        t.pending;
      match !victim with
      | Some w -> (
          match t.pending.(w) with
          | Some job ->
              t.pending.(w) <- None;
              t.inflight.(wid) <- true;
              let cost =
                t.config.sched_op_ns
                + (t.config.sched_scan_per_core_ns * t.config.cores)
              in
              Busy_server.submit t.dispatcher ~cost (Assign { job; wid })
                ~done_:(fun op ->
                  match op with
                  | Assign { job; wid } ->
                      t.inflight.(wid) <- false;
                      if t.dead_w.(wid) then begin
                        Deque.push_front t.queue job;
                        kick t
                      end
                      else begin
                        note_assign t ~job ~wid;
                        if t.busy.(wid) then t.pending.(wid) <- Some job
                        else start_slice t ~job ~wid;
                        kick t
                      end
                  | Admit _ -> assert false)
          | None -> ())
      | None -> ()
    end
  end

let submit t req =
  Counters.incr t.c_arrivals;
  if Trace.enabled t.trace then
    Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:(Event.Dispatcher 0)
      (Event.Job_arrival
         {
           job_id = req.Arrivals.req_id;
           class_idx = req.Arrivals.class_idx;
           service_ns = req.Arrivals.service_ns;
         });
  Busy_server.submit t.dispatcher ~cost:t.config.net_op_ns (Admit req) ~done_:(fun op ->
      match op with
      | Admit req ->
          let job = Job.of_request ~probe_overhead_frac:t.config.probe_overhead_frac req in
          Deque.push_back t.queue job;
          kick t
      | Assign _ -> assert false)

(* {2 Fault hooks} *)

let check_wid t ~fn wid =
  if wid < 0 || wid >= t.config.cores then
    invalid_arg (Printf.sprintf "Centralized.%s: bad worker index" fn)

let inject_stall t ~wid ~duration_ns =
  check_wid t ~fn:"inject_stall" wid;
  if duration_ns <= 0 then
    invalid_arg "Centralized.inject_stall: duration must be positive";
  if not t.dead_w.(wid) then begin
    t.stall_pending.(wid) <- t.stall_pending.(wid) + duration_ns;
    if not t.busy.(wid) then after_slice t ~wid
  end

let kill_worker t ~wid =
  check_wid t ~fn:"kill_worker" wid;
  if not t.dead_w.(wid) then begin
    t.dead_w.(wid) <- true;
    t.stall_pending.(wid) <- 0;
    if Trace.enabled t.trace then
      Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:(Event.Worker wid)
        (Event.Worker_killed { worker = wid });
    (* A busy core's in-flight slice (or stall) closure observes the
       death and rescues; an idle core only needs its mailbox cleared. *)
    if not t.busy.(wid) then rescue_pending t ~wid
  end

let lost_jobs t = t.lost

(* Centralized preemption has one global quantum (the dispatcher decides
   every slice), so per-class retuning degrades to the global knob. *)
let set_quantum t ?class_idx:_ ~quantum_ns () =
  if quantum_ns <= 0 then invalid_arg "Centralized.set_quantum: quantum must be positive";
  match t.config.quantum_ns with
  | None -> ()  (* FCFS mode has no quantum to retune *)
  | Some _ -> t.config <- { t.config with quantum_ns = Some quantum_ns }

let inject_dispatcher_outage t ~duration_ns =
  if Trace.enabled t.trace then
    Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:(Event.Dispatcher 0)
      (Event.Dispatcher_outage { dispatcher = 0; duration_ns });
  Busy_server.occupy t.dispatcher ~cost:duration_ns

let mean_sched_gap_ns t =
  if t.gap_count = 0 then nan else float_of_int t.gap_sum /. float_of_int t.gap_count

let mean_effective_quantum_ns t =
  if t.gap_count = 0 || t.slice_count = 0 then nan
  else (float_of_int t.slice_sum /. float_of_int t.slice_count) +. mean_sched_gap_ns t

let dispatcher_busy_ns t = Busy_server.busy_time t.dispatcher

(* Instantaneous occupancy, for the time-series sampler.  A core serving
   an injected blackout holds [busy] (to park assignments) but executes
   no job, so it counts as neither busy nor in-flight work. *)
let obs_snapshot t =
  let busy = ref 0 in
  Array.iteri (fun w b -> if b && not t.in_stall.(w) then incr busy) t.busy;
  let pending =
    Array.fold_left (fun acc p -> acc + if p = None then 0 else 1) 0 t.pending
  in
  let queued = Deque.length t.queue + Busy_server.queue_length t.dispatcher in
  (queued, queued + pending + !busy, !busy)
