let two_level_config ?(cores = 16) ?(dispatchers = 1) ?(quantum_ns = 2_000) ~dispatch_policy
    ~overheads () =
  {
    Two_level.cores;
    dispatchers;
    quantum_policy = Worker.Ps { quantum_ns; per_class_quantum = None };
    dispatch_policy;
    overheads;
  }

let tq ?cores ?dispatchers ?quantum_ns () =
  Experiment.Two_level
    (two_level_config ?cores ?dispatchers ?quantum_ns
       ~dispatch_policy:Dispatch_policy.Jsq_msq ~overheads:Overheads.tq_default ())

let tq_steal ?cores ?dispatchers ?quantum_ns () =
  Experiment.Stealing
    (two_level_config ?cores ?dispatchers ?quantum_ns
       ~dispatch_policy:Dispatch_policy.Jsq_msq ~overheads:Overheads.tq_default ())

let tq_ic ?cores ?quantum_ns () =
  (* CI probes inflate the job by ~60% (Section 3.1 RocksDB measurement). *)
  let overheads = { Overheads.tq_default with probe_overhead_frac = 0.60 } in
  Experiment.Two_level
    (two_level_config ?cores ?quantum_ns ~dispatch_policy:Dispatch_policy.Jsq_msq
       ~overheads ())

let tq_slow_yield ?cores ?quantum_ns () =
  let overheads =
    { Overheads.tq_default with yield_ns = Overheads.tq_default.yield_ns + 1_000 }
  in
  Experiment.Two_level
    (two_level_config ?cores ?quantum_ns ~dispatch_policy:Dispatch_policy.Jsq_msq
       ~overheads ())

let tq_timing ?(cores = 16) () =
  Experiment.Two_level
    {
      Two_level.cores;
      dispatchers = 1;
      quantum_policy =
        Worker.Ps { quantum_ns = 2_000; per_class_quantum = Some [| 1_000; 3_000 |] };
      dispatch_policy = Dispatch_policy.Jsq_msq;
      overheads = Overheads.tq_default;
    }

let tq_rand ?cores ?quantum_ns () =
  Experiment.Two_level
    (two_level_config ?cores ?quantum_ns ~dispatch_policy:Dispatch_policy.Random
       ~overheads:Overheads.tq_default ())

let tq_power_two ?cores ?quantum_ns () =
  Experiment.Two_level
    (two_level_config ?cores ?quantum_ns ~dispatch_policy:Dispatch_policy.Power_of_two
       ~overheads:Overheads.tq_default ())

let tq_fcfs ?(cores = 16) () =
  Experiment.Two_level
    {
      Two_level.cores;
      dispatchers = 1;
      quantum_policy = Worker.Fcfs;
      dispatch_policy = Dispatch_policy.Jsq_msq;
      overheads = Overheads.tq_default;
    }

let tq_las ?(cores = 16) ?(base_quantum_ns = 1_000) ?(max_quantum_ns = 8_000) () =
  Experiment.Two_level
    {
      Two_level.cores;
      dispatchers = 1;
      quantum_policy = Worker.Las { base_quantum_ns; max_quantum_ns };
      dispatch_policy = Dispatch_policy.Jsq_msq;
      overheads = Overheads.tq_default;
    }

let shinjuku ?(cores = 16) ~quantum_ns () =
  Experiment.Centralized (Centralized.shinjuku_config ~quantum_ns ~cores)

let shinjuku_quantum_for name =
  let us = Tq_util.Time_unit.us in
  match name with
  | "extreme-bimodal" | "extreme-bimodal-sim" | "high-bimodal" -> us 5.0
  | "tpcc" | "exp1" -> us 10.0
  | "rocksdb-0.5pct-scan" | "rocksdb-50pct-scan" -> us 15.0
  | _ -> us 5.0

let caladan ?(cores = 16) ~mode () =
  Experiment.Caladan (Caladan.default_config ~mode ~cores)

let concord ?(cores = 16) ~quantum_ns () =
  Experiment.Centralized
    {
      Centralized.cores;
      quantum_ns = Some quantum_ns;
      net_op_ns = 100;
      sched_op_ns = 180;
      sched_scan_per_core_ns = 5;
      preempt_ns = 50;
      probe_overhead_frac = 0.0;
    }
