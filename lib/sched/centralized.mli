(** Centralized preemptive scheduling (the Shinjuku model).

    One dispatcher core owns a single queue of pending/preempted jobs and
    performs *every* scheduling operation: admitting arrivals, assigning
    a quantum of the head job to an idle worker, and triggering the
    preemption that returns an expired job to the queue.  Each operation
    occupies the dispatcher for a fixed cost, so dispatcher load grows as
    1/quantum — the scalability wall of Figures 4 and 16.  Workers pay a
    per-preemption interrupt overhead (Shinjuku: ~1 us via Dune posted
    interrupts).

    With all costs zero this is the idealized centralized
    processor-sharing simulator of Section 2 (Figures 1 and 2). *)

type config = {
  cores : int;  (** worker cores (dispatcher is extra) *)
  quantum_ns : int option;  (** [None] = run to completion (FCFS) *)
  net_op_ns : int;  (** dispatcher cost to admit one arrival *)
  sched_op_ns : int;  (** dispatcher base cost per quantum assignment *)
  sched_scan_per_core_ns : int;
      (** additional per-worker-core cost of each scheduling operation:
          the centralized dispatcher scans every core's state to decide
          preemptions, so its per-op cost grows with the core count —
          this is what caps Shinjuku at few cores for tiny quanta
          (Figure 16) while it still sustains 16 cores at 5 us *)
  preempt_ns : int;  (** worker-side overhead per preemption *)
  probe_overhead_frac : float;  (** 0 for interrupt-based systems *)
}

(** Idealized PS: every cost zero (Section 2 simulations). *)
val ideal_config : quantum_ns:int -> cores:int -> config

(** Calibrated Shinjuku (DESIGN.md): 200 ns sched ops, 1 us preemption. *)
val shinjuku_config : quantum_ns:int -> cores:int -> config

type t

(** [on_complete] fires per finished job and [on_lost] per job destroyed
    by a core failure — hooks for the retry layer and fault harness. *)
val create :
  Tq_engine.Sim.t ->
  rng:Tq_util.Prng.t ->
  config:config ->
  metrics:Tq_workload.Metrics.t ->
  ?obs:Tq_obs.Obs.t ->
  ?on_complete:(Job.t -> unit) ->
  ?on_lost:(Job.t -> unit) ->
  unit ->
  t

val submit : t -> Tq_workload.Arrivals.request -> unit

(** Retune the preemption quantum live, from the next slice on.
    Centralized scheduling has one global quantum, so [class_idx] is
    accepted and ignored; no-op in FCFS mode.  Raises
    [Invalid_argument] on a non-positive quantum. *)
val set_quantum : t -> ?class_idx:int -> quantum_ns:int -> unit -> unit

(** {2 Fault injection}

    Same model as {!Worker}: a stall is a transient blackout served
    between slices (the dispatcher's parked assignment waits it out); a
    kill is permanent — the in-flight slice's job is lost, the parked
    assignment returns to the central queue, and the core is never
    assigned to again (the centralized dispatcher sees core state
    directly, so there is no separate health-tracking estimate). *)

val inject_stall : t -> wid:int -> duration_ns:int -> unit

val kill_worker : t -> wid:int -> unit

(** Jobs destroyed by kills. *)
val lost_jobs : t -> int

(** Blind the single dispatcher core for [duration_ns]; every
    scheduling operation (admission, assignment, preemption) queues
    behind the blackout — centralization's whole-system failure mode. *)
val inject_dispatcher_outage : t -> duration_ns:int -> unit

(** Mean time between consecutive quantum starts on a worker minus the
    slice itself — i.e. added scheduling delay; used by the Figure 16
    dispatcher-scalability experiment.  nan before any measurement. *)
val mean_sched_gap_ns : t -> float

(** Mean achieved quantum interval (target slice + scheduling gap). *)
val mean_effective_quantum_ns : t -> float

val dispatcher_busy_ns : t -> int

(** [(queued, in_flight, busy_cores)] at this instant (see
    {!Two_level.obs_snapshot}). *)
val obs_snapshot : t -> int * int * int
