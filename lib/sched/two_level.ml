module Sim = Tq_engine.Sim
module Busy_server = Tq_engine.Busy_server
module Prng = Tq_util.Prng
module Metrics = Tq_workload.Metrics
module Arrivals = Tq_workload.Arrivals
module Trace = Tq_obs.Trace
module Event = Tq_obs.Event
module Counters = Tq_obs.Counters

type config = {
  cores : int;
  dispatchers : int;
  quantum_policy : Worker.quantum_policy;
  dispatch_policy : Dispatch_policy.t;
  overheads : Overheads.t;
}

let default_config =
  {
    cores = 16;
    dispatchers = 1;
    quantum_policy = Worker.Ps { quantum_ns = 2_000; per_class_quantum = None };
    dispatch_policy = Dispatch_policy.Jsq_msq;
    overheads = Overheads.tq_default;
  }

type dispatcher = {
  server : Arrivals.request Busy_server.t;
  chooser : Dispatch_policy.chooser;
}

(* Request conservation under faults.  The invariant, checked by the
   fault regression tests:

     accepted = in_dispatch + on_worker + completed + lost
                + dropped_no_worker

   where on_worker is the derived sum of [Worker.unfinished] (which
   already includes jobs riding the ring, because assignment is counted
   at decision time).  [on_ring] is informational. *)
type accounting = {
  mutable submitted : int;
  mutable accepted : int;
  mutable rejected : int;  (** shed by admission control *)
  mutable in_dispatch : int;  (** inside a dispatcher (queued or in service) *)
  mutable on_ring : int;  (** riding a dispatcher->worker ring hop *)
  mutable completed : int;
  mutable lost : int;  (** destroyed by a core failure mid-slice *)
  mutable dropped_no_worker : int;  (** no live core to dispatch to *)
  mutable redispatches : int;  (** rescues off cores believed dead *)
}

type t = {
  sim : Sim.t;
  config : config;
  workers : Worker.t array;
  dispatchers : dispatcher array;
  metrics : Metrics.t;
  trace : Trace.t;
  policy_name : string;
  c_arrivals : Counters.counter;
  c_dispatches : Counters.counter;
  c_ring_hops : Counters.counter;
  c_redispatches : Counters.counter;
  acct : accounting;
  admission : Admission.t;
  on_reject : Arrivals.request -> unit;
  (* The dispatcher's health estimate per worker — [marked_alive.(i)]
     false means core i is excluded from dispatch.  Distinct from the
     ground truth [Worker.alive]: a stalled core can be believed dead
     (and later revived), a just-killed core can still be believed
     alive until heartbeats catch up. *)
  marked_alive : bool array;
  mutable dead_count : int;
  (* Work stealing (the push+steal variant): an idle core takes half of
     the most-loaded believed-alive core's queued-but-unstarted jobs,
     paying one ring hop for the transfer.  Off by default so the
     classic push-only TQ keeps its exact event stream. *)
  steal : bool;
  c_steals : Counters.counter;
  mutable steals : int;
  mutable steal_items : int;
}

(* Idle-core steal-half, the second chance under the dispatcher's
   first-choice placement.  Victim selection is most-loaded among cores
   the dispatcher believes alive; assignment credit moves at steal time
   (thief [note_assigned], victim debited inside [Worker.steal]) so the
   conservation identity holds while the batch rides the transfer
   hop. *)
let try_steal t ~thief_wid =
  let thief = t.workers.(thief_wid) in
  let best = ref (-1) and best_len = ref 0 in
  Array.iteri
    (fun i w ->
      if i <> thief_wid && t.marked_alive.(i) then begin
        let len = Worker.queue_length w in
        if len > !best_len then begin
          best := i;
          best_len := len
        end
      end)
    t.workers;
  if !best >= 0 then begin
    let victim = t.workers.(!best) in
    let want = !best_len - (!best_len / 2) in
    let rec grab k acc =
      if k = 0 then acc
      else
        match Worker.steal victim with
        | None -> acc
        | Some job -> grab (k - 1) (job :: acc)
    in
    let jobs = grab want [] in
    if jobs <> [] then begin
      let n = List.length jobs in
      t.steals <- t.steals + 1;
      t.steal_items <- t.steal_items + n;
      Counters.incr t.c_steals;
      List.iter
        (fun (job : Job.t) ->
          Worker.note_assigned thief;
          if Trace.enabled t.trace then
            Trace.record t.trace ~ts_ns:(Sim.now t.sim)
              ~lane:(Event.Worker thief_wid)
              (Event.Steal { job_id = job.Job.id; victim = !best }))
        jobs;
      ignore
        (Sim.schedule_after t.sim ~delay:t.config.overheads.ring_hop_ns (fun () ->
             List.iter (fun job -> Worker.enqueue thief job) jobs)
          : Sim.event)
    end
  end

let create sim ~rng ~config ~metrics ?(obs = Tq_obs.Obs.disabled ())
    ?(admission = Admission.Accept_all) ?(steal = false)
    ?(on_complete = fun (_ : Job.t) -> ())
    ?(on_reject = fun (_ : Arrivals.request) -> ())
    ?(on_lost = fun (_ : Job.t) -> ()) () =
  if config.cores < 1 then invalid_arg "Two_level.create: need at least one core";
  if config.dispatchers < 1 then
    invalid_arg "Two_level.create: need at least one dispatcher";
  let ov = config.overheads in
  let acct =
    {
      submitted = 0;
      accepted = 0;
      rejected = 0;
      in_dispatch = 0;
      on_ring = 0;
      completed = 0;
      lost = 0;
      dropped_no_worker = 0;
      redispatches = 0;
    }
  in
  let admission = Admission.create admission in
  let on_finish (job : Job.t) =
    let now = Sim.now sim in
    Metrics.record metrics ~class_idx:job.class_idx ~arrival_ns:job.arrival_ns
      ~finish_ns:now ~service_ns:job.service_ns;
    acct.completed <- acct.completed + 1;
    Admission.note_completion admission ~sojourn_ns:(now - job.arrival_ns);
    on_complete job
  in
  let on_lost (job : Job.t) =
    acct.lost <- acct.lost + 1;
    on_lost job
  in
  (* With stealing on, each core's idle transition fires [try_steal]
     for itself.  The hook needs [t], which needs the workers — tie the
     knot through a ref the hook reads lazily (it can only fire once
     the simulation runs, well after [create] returns). *)
  let t_ref = ref None in
  let workers =
    Array.init config.cores (fun wid ->
        let on_idle () =
          if steal then
            match !t_ref with Some t -> try_steal t ~thief_wid:wid | None -> ()
        in
        Worker.create sim ~wid ~rng:(Prng.split rng) ~policy:config.quantum_policy
          ~overheads:ov ~obs ~on_lost ~on_finish ~on_idle ())
  in
  let dispatchers =
    Array.init config.dispatchers (fun _ ->
        {
          server = Busy_server.create sim ();
          chooser = Dispatch_policy.make_chooser config.dispatch_policy ~rng:(Prng.split rng);
        })
  in
  let reg = obs.Tq_obs.Obs.counters in
  let t =
    {
      sim;
    config;
    workers;
    dispatchers;
    metrics;
    trace = obs.Tq_obs.Obs.trace;
    policy_name = Dispatch_policy.to_string config.dispatch_policy;
    c_arrivals = Counters.counter reg "dispatch.arrivals";
    c_dispatches = Counters.counter reg "dispatch.decisions";
    c_ring_hops = Counters.counter reg "dispatch.ring_hops";
    c_redispatches = Counters.counter reg "dispatch.redispatches";
    acct;
    admission;
    on_reject;
    marked_alive = Array.make config.cores true;
    dead_count = 0;
    steal;
    c_steals = Counters.counter reg "sched.steals";
    steals = 0;
    steal_items = 0;
    }
  in
  t_ref := Some t;
  t

let in_system t =
  t.acct.accepted - t.acct.completed - t.acct.lost - t.acct.dropped_no_worker

(* Pick a worker the dispatcher believes alive.  Fault-free runs (no
   core ever marked dead) take the unfiltered path, consuming the PRNG
   stream exactly as before faults existed. *)
let pick_worker t (d : dispatcher) =
  if t.dead_count = 0 then Some (Dispatch_policy.choose d.chooser t.workers)
  else if t.dead_count >= Array.length t.workers then None
  else
    Some
      (Dispatch_policy.choose ~alive:(fun i -> t.marked_alive.(i)) d.chooser t.workers)

let rec send_over_ring t job widx =
  let ov = t.config.overheads in
  t.acct.on_ring <- t.acct.on_ring + 1;
  ignore
    (Sim.schedule_after t.sim ~delay:ov.ring_hop_ns (fun () ->
         t.acct.on_ring <- t.acct.on_ring - 1;
         Counters.incr t.c_ring_hops;
         if Trace.enabled t.trace then
           Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:(Event.Worker widx)
             (Event.Ring_hop { job_id = job.Job.id; worker = widx });
         if t.marked_alive.(widx) then begin
           Worker.enqueue t.workers.(widx) job;
           (* Deliver-time steal trigger: if the placement left a queue
              behind a busy core while some other core sits idle, let
              the idle core pull immediately rather than waiting for
              its next idle transition (which may never fire if it is
              already parked). *)
           if t.steal && Worker.queue_length t.workers.(widx) > 0 then begin
             let thief = ref (-1) in
             Array.iteri
               (fun i w ->
                 if
                   !thief < 0 && i <> widx && t.marked_alive.(i)
                   && (not (Worker.is_busy w))
                   && Worker.queue_length w = 0
                 then thief := i)
               t.workers;
             if !thief >= 0 then try_steal t ~thief_wid:!thief
           end
         end
         else begin
           (* The core was marked dead while this job was on the ring;
              its queue was already drained, so take the job back and
              rescue it ourselves. *)
           Worker.note_unassigned t.workers.(widx);
           redispatch t ~from:widx job
         end)
      : Sim.event)

and redispatch t ~from job =
  let d = t.dispatchers.(job.Job.id mod Array.length t.dispatchers) in
  match pick_worker t d with
  | None ->
      t.acct.dropped_no_worker <- t.acct.dropped_no_worker + 1;
      if Trace.enabled t.trace then
        Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:Event.Global
          (Event.Drop { job_id = job.Job.id; reason = "no-worker" })
  | Some widx ->
      t.acct.redispatches <- t.acct.redispatches + 1;
      Counters.incr t.c_redispatches;
      if Trace.enabled t.trace then
        Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:Event.Global
          (Event.Redispatch { job_id = job.Job.id; from_worker = from; to_worker = widx });
      Worker.note_assigned t.workers.(widx);
      send_over_ring t job widx

let submit t req =
  let ov = t.config.overheads in
  t.acct.submitted <- t.acct.submitted + 1;
  (* RSS across dispatcher cores; each balances over all workers using
     the shared (worker-maintained) counters. *)
  let d_idx = req.Arrivals.req_id mod Array.length t.dispatchers in
  let d = t.dispatchers.(d_idx) in
  let lane = Event.Dispatcher d_idx in
  Counters.incr t.c_arrivals;
  if Trace.enabled t.trace then
    Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane
      (Event.Job_arrival
         {
           job_id = req.Arrivals.req_id;
           class_idx = req.Arrivals.class_idx;
           service_ns = req.Arrivals.service_ns;
         });
  if not (Admission.admit t.admission ~in_system:(in_system t)) then begin
    (* Shed before any dispatch cost is paid — overload protection is
       only protection if saying no is cheap. *)
    t.acct.rejected <- t.acct.rejected + 1;
    Metrics.record_rejection t.metrics;
    if Trace.enabled t.trace then
      Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane
        (Event.Drop { job_id = req.Arrivals.req_id; reason = "admission" });
    t.on_reject req
  end
  else begin
    t.acct.accepted <- t.acct.accepted + 1;
    t.acct.in_dispatch <- t.acct.in_dispatch + 1;
    Busy_server.submit d.server ~cost:ov.dispatch_ns req
      ~done_:(fun (req : Arrivals.request) ->
        t.acct.in_dispatch <- t.acct.in_dispatch - 1;
        match pick_worker t d with
        | None ->
            t.acct.dropped_no_worker <- t.acct.dropped_no_worker + 1;
            if Trace.enabled t.trace then
              Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane
                (Event.Drop { job_id = req.req_id; reason = "no-worker" })
        | Some widx ->
            let worker = t.workers.(widx) in
            Counters.incr t.c_dispatches;
            if Trace.enabled t.trace then
              Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane
                (Event.Dispatch
                   {
                     job_id = req.req_id;
                     worker = widx;
                     policy = t.policy_name;
                     queue_len = Worker.queue_length worker;
                   });
            Worker.note_assigned worker;
            let job = Job.of_request ~probe_overhead_frac:ov.probe_overhead_frac req in
            send_over_ring t job widx)
  end

(* {2 Live retuning (the feedback controller's actuators)} *)

let set_quantum t ?class_idx ~quantum_ns () =
  Array.iter (fun w -> Worker.set_quantum w ?class_idx ~quantum_ns ()) t.workers

let set_admission_policy t policy = Admission.set_policy t.admission policy
let admission t = t.admission

(* {2 Health tracking} *)

let mark_worker_dead t ~wid =
  if t.marked_alive.(wid) then begin
    t.marked_alive.(wid) <- false;
    t.dead_count <- t.dead_count + 1;
    if Trace.enabled t.trace then
      Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:(Event.Worker wid)
        (Event.Worker_marked_dead { worker = wid });
    (* Rescue queued-but-unstarted jobs; anything mid-slice stays with
       the core (a merely-stalled core will still finish it). *)
    List.iter (fun job -> redispatch t ~from:wid job) (Worker.drain t.workers.(wid))
  end

let mark_worker_alive t ~wid =
  if not t.marked_alive.(wid) then begin
    t.marked_alive.(wid) <- true;
    t.dead_count <- t.dead_count - 1;
    if Trace.enabled t.trace then
      Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:(Event.Worker wid)
        (Event.Worker_marked_alive { worker = wid })
  end

let worker_marked_alive t ~wid = t.marked_alive.(wid)

let install_health_monitor t ~interval_ns ~until_ns ?(missed_heartbeats = 2) () =
  if interval_ns <= 0 then
    invalid_arg "Two_level.install_health_monitor: interval must be positive";
  if missed_heartbeats < 1 then
    invalid_arg "Two_level.install_health_monitor: missed_heartbeats must be >= 1";
  let missed = Array.make (Array.length t.workers) 0 in
  Sim.periodic t.sim ~until:until_ns ~interval:interval_ns (fun () ->
      Array.iteri
        (fun i w ->
          if Worker.responsive w then begin
            missed.(i) <- 0;
            (* Suspicion was wrong (a stall, not a death): readmit. *)
            if not t.marked_alive.(i) then mark_worker_alive t ~wid:i
          end
          else begin
            missed.(i) <- missed.(i) + 1;
            if missed.(i) >= missed_heartbeats && t.marked_alive.(i) then
              mark_worker_dead t ~wid:i
          end)
        t.workers)

(* {2 Fault hooks} *)

let inject_dispatcher_outage t ~dispatcher ~duration_ns =
  if dispatcher < 0 || dispatcher >= Array.length t.dispatchers then
    invalid_arg "Two_level.inject_dispatcher_outage: bad dispatcher index";
  if Trace.enabled t.trace then
    Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:(Event.Dispatcher dispatcher)
      (Event.Dispatcher_outage { dispatcher; duration_ns });
  Busy_server.occupy t.dispatchers.(dispatcher).server ~cost:duration_ns

let dispatcher_busy_ns t =
  Array.fold_left (fun acc d -> acc + Busy_server.busy_time d.server) 0 t.dispatchers

let dispatcher_queue_length t =
  Array.fold_left (fun acc d -> acc + Busy_server.queue_length d.server) 0 t.dispatchers

let max_dispatcher_busy_ns t =
  Array.fold_left (fun acc d -> max acc (Busy_server.busy_time d.server)) 0 t.dispatchers

let workers t = t.workers
let accounting t = t.acct
let steals t = t.steals
let steal_items t = t.steal_items
let alive_worker_count t = Array.length t.workers - t.dead_count

(* Instantaneous occupancy, for the time-series sampler: total queued
   jobs (dispatcher + worker queues), jobs in the system, busy cores.
   Dead workers' queues are included — a queued job on a core believed
   dead is still in the system until drained (redispatch) or lost, so
   the snapshot and the [accounting] record never disagree about it. *)
let obs_snapshot t =
  let queued =
    Array.fold_left (fun acc w -> acc + Worker.queue_length w) (dispatcher_queue_length t)
      t.workers
  in
  let in_flight = Array.fold_left (fun acc w -> acc + Worker.unfinished w) 0 t.workers in
  let busy = Array.fold_left (fun acc w -> acc + if Worker.is_busy w then 1 else 0) 0 t.workers in
  (queued, in_flight, busy)
