module Sim = Tq_engine.Sim
module Busy_server = Tq_engine.Busy_server
module Prng = Tq_util.Prng
module Metrics = Tq_workload.Metrics
module Arrivals = Tq_workload.Arrivals
module Trace = Tq_obs.Trace
module Event = Tq_obs.Event
module Counters = Tq_obs.Counters

type config = {
  cores : int;
  dispatchers : int;
  quantum_policy : Worker.quantum_policy;
  dispatch_policy : Dispatch_policy.t;
  overheads : Overheads.t;
}

let default_config =
  {
    cores = 16;
    dispatchers = 1;
    quantum_policy = Worker.Ps { quantum_ns = 2_000; per_class_quantum = None };
    dispatch_policy = Dispatch_policy.Jsq_msq;
    overheads = Overheads.tq_default;
  }

type dispatcher = {
  server : Arrivals.request Busy_server.t;
  chooser : Dispatch_policy.chooser;
}

type t = {
  sim : Sim.t;
  config : config;
  workers : Worker.t array;
  dispatchers : dispatcher array;
  metrics : Metrics.t;
  trace : Trace.t;
  policy_name : string;
  c_arrivals : Counters.counter;
  c_dispatches : Counters.counter;
  c_ring_hops : Counters.counter;
}

let create sim ~rng ~config ~metrics ?(obs = Tq_obs.Obs.disabled ()) () =
  if config.cores < 1 then invalid_arg "Two_level.create: need at least one core";
  if config.dispatchers < 1 then
    invalid_arg "Two_level.create: need at least one dispatcher";
  let ov = config.overheads in
  let on_finish (job : Job.t) =
    Metrics.record metrics ~class_idx:job.class_idx ~arrival_ns:job.arrival_ns
      ~finish_ns:(Sim.now sim) ~service_ns:job.service_ns
  in
  let workers =
    Array.init config.cores (fun wid ->
        Worker.create sim ~wid ~rng:(Prng.split rng) ~policy:config.quantum_policy
          ~overheads:ov ~obs ~on_finish ())
  in
  let dispatchers =
    Array.init config.dispatchers (fun _ ->
        {
          server = Busy_server.create sim ();
          chooser = Dispatch_policy.make_chooser config.dispatch_policy ~rng:(Prng.split rng);
        })
  in
  let reg = obs.Tq_obs.Obs.counters in
  {
    sim;
    config;
    workers;
    dispatchers;
    metrics;
    trace = obs.Tq_obs.Obs.trace;
    policy_name = Dispatch_policy.to_string config.dispatch_policy;
    c_arrivals = Counters.counter reg "dispatch.arrivals";
    c_dispatches = Counters.counter reg "dispatch.decisions";
    c_ring_hops = Counters.counter reg "dispatch.ring_hops";
  }

let submit t req =
  let ov = t.config.overheads in
  (* RSS across dispatcher cores; each balances over all workers using
     the shared (worker-maintained) counters. *)
  let d_idx = req.Arrivals.req_id mod Array.length t.dispatchers in
  let d = t.dispatchers.(d_idx) in
  let lane = Event.Dispatcher d_idx in
  Counters.incr t.c_arrivals;
  if Trace.enabled t.trace then
    Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane
      (Event.Job_arrival
         {
           job_id = req.Arrivals.req_id;
           class_idx = req.Arrivals.class_idx;
           service_ns = req.Arrivals.service_ns;
         });
  Busy_server.submit d.server ~cost:ov.dispatch_ns req
    ~done_:(fun (req : Arrivals.request) ->
      let widx = Dispatch_policy.choose d.chooser t.workers in
      let worker = t.workers.(widx) in
      Counters.incr t.c_dispatches;
      if Trace.enabled t.trace then
        Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane
          (Event.Dispatch
             {
               job_id = req.req_id;
               worker = widx;
               policy = t.policy_name;
               queue_len = Worker.queue_length worker;
             });
      Worker.note_assigned worker;
      let job = Job.of_request ~probe_overhead_frac:ov.probe_overhead_frac req in
      ignore
        (Sim.schedule_after t.sim ~delay:ov.ring_hop_ns (fun () ->
             Counters.incr t.c_ring_hops;
             if Trace.enabled t.trace then
               Trace.record t.trace ~ts_ns:(Sim.now t.sim) ~lane:(Event.Worker widx)
                 (Event.Ring_hop { job_id = job.Job.id; worker = widx });
             Worker.enqueue worker job)
          : Sim.event))

let dispatcher_busy_ns t =
  Array.fold_left (fun acc d -> acc + Busy_server.busy_time d.server) 0 t.dispatchers

let dispatcher_queue_length t =
  Array.fold_left (fun acc d -> acc + Busy_server.queue_length d.server) 0 t.dispatchers

let max_dispatcher_busy_ns t =
  Array.fold_left (fun acc d -> max acc (Busy_server.busy_time d.server)) 0 t.dispatchers

let workers t = t.workers

(* Instantaneous occupancy, for the time-series sampler: total queued
   jobs (dispatcher + worker queues), jobs in the system, busy cores. *)
let obs_snapshot t =
  let queued =
    Array.fold_left (fun acc w -> acc + Worker.queue_length w) (dispatcher_queue_length t)
      t.workers
  in
  let in_flight = Array.fold_left (fun acc w -> acc + Worker.unfinished w) 0 t.workers in
  let busy = Array.fold_left (fun acc w -> acc + if Worker.is_busy w then 1 else 0) 0 t.workers in
  (queued, in_flight, busy)
