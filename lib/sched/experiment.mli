(** One-shot experiment driver.

    Builds a system, feeds it an open-loop Poisson request stream for a
    virtual duration, drains, and returns the metrics — the inner loop of
    every figure in the evaluation. *)

(** Re-export of {!System_intf.spec}: the per-system configuration.
    Drivers that need submission, accounting or fault hooks resolve a
    spec to a packed first-class module with
    {!System_intf.instantiate}. *)
type system_spec = System_intf.spec =
  | Two_level of Two_level.config
  | Stealing of Two_level.config
  | Centralized of Centralized.config
  | Caladan of Caladan.config

type result = {
  metrics : Tq_workload.Metrics.t;
  offered : int;  (** requests issued by the generator *)
  duration_ns : int;
  events : int;  (** simulator events processed *)
  dispatcher_busy_ns : int;  (** central-core busy time, 0 for Caladan directpath *)
  timeseries : Tq_obs.Timeseries.t option;
      (** queue depth / in-flight jobs / busy cores, sampled every
          [obs.sample_interval_ns] of virtual time; [None] unless [?obs]
          was passed to {!run} *)
}

(** [run ~seed ~system ~workload ~rate_rps ~duration_ns ()] runs one
    experiment; warm-up is the first 10% of [duration_ns].  Passing
    [?obs] threads its tracer and counter registry through the system
    and installs the fixed-interval time-series sampler. *)
val run :
  ?seed:int64 ->
  ?obs:Tq_obs.Obs.t ->
  system:system_spec ->
  workload:Tq_workload.Service_dist.t ->
  rate_rps:float ->
  duration_ns:int ->
  unit ->
  result

(** [throughput_rps r] is completions per second of measured time. *)
val throughput_rps : result -> float

(** [run_seeds ~seeds ...] repeats the experiment with different seeds —
    tail percentiles of rare classes are noisy in a single run. *)
val run_seeds :
  seeds:int64 list ->
  system:system_spec ->
  workload:Tq_workload.Service_dist.t ->
  rate_rps:float ->
  duration_ns:int ->
  unit ->
  result list

(** [mean_sojourn_percentile results ~class_idx p] — average of the
    per-run percentiles. *)
val mean_sojourn_percentile : result list -> class_idx:int -> float -> float

(** [mean_slowdown_percentile results ~class_idx p]. *)
val mean_slowdown_percentile : result list -> class_idx:int -> float -> float

(** [max_rate_under_slo ~run_at ~rates ~ok] walks [rates] ascending and
    returns the largest rate whose result satisfies [ok] (0.0 if none).
    Linear — results at increasing load are not monotone enough near
    saturation to trust bisection. *)
val max_rate_under_slo :
  run_at:(float -> result) -> rates:float list -> ok:(result -> bool) -> float
