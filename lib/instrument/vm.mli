open Tq_ir
(** Cycle-accurate interpreter for the miniature IR.

    Executes a (possibly instrumented) program on a virtual cycle clock,
    implementing the runtime semantics of every probe kind:

    - TQ clock probes read the virtual TSC and yield when a quantum has
      elapsed since the previous yield;
    - CI counter probes accumulate instruction counts and compare against
      a threshold derived from the target quantum through an assumed
      cycles-per-instruction ratio — the translation the paper shows to
      be fundamentally inaccurate;
    - CI-Cycles gates a clock read behind the counter threshold;
    - TQ loop probes fire a clock probe every N-th iteration, for free
      when an induction variable is reused, and are skipped entirely for
      cloned self-loops whose runtime trip count is under the period.

    Branch outcomes, load misses and dynamic trip counts are drawn from a
    seeded PRNG in program order, so an instrumented run and its
    uninstrumented baseline see identical control flow — overhead
    measurements are exactly paired. *)

type config = {
  quantum_cycles : int;  (** target quantum; [max_int] disables yielding *)
  quantum_schedule : int array option;
      (** dynamic quanta: element k is the quantum preceding the k-th
          yield (last element repeats) — the paper notes physical-clock
          probes support exactly this, as needed by LAS *)
  assumed_cpi : float;  (** CI's instruction->cycle translation ratio *)
  ci_check_clock : bool;  (** CI-Cycles hybrid behaviour *)
  seed : int64;
}

val default_config : config

type result = {
  total_cycles : int;  (** cycles to complete, yield costs included *)
  work_cycles : int;  (** cycles spent on non-probe, non-yield work *)
  probe_cycles : int;  (** cycles spent in probe instructions *)
  probe_executions : int;  (** dynamic probe-site executions *)
  yields : int;
  yield_intervals : int list;  (** cycles between consecutive yields *)
  instructions : int;  (** dynamic instruction count (weights) *)
}

(** [run config program] executes [program.main] to completion.
    [counters], when given, receives live metrics: the [vm.probe_fires]
    and [vm.yields] counters and the [vm.overshoot_cycles] distribution
    (cycles a yield fired past its target quantum). *)
val run : ?counters:Tq_obs.Counters.t -> config -> Cfg.program -> result

(** [mean_abs_error_ns ~quantum_cycles ~ghz r] — the paper's MAE of
    yield timings, in nanoseconds; nan when no yields happened. *)
val mean_abs_error_ns : quantum_cycles:int -> ?ghz:float -> result -> float

(** [overhead_percent ~baseline ~instrumented] — extra runtime of the
    instrumented binary with yielding disabled, in percent. *)
val overhead_percent : baseline:result -> instrumented:result -> float
