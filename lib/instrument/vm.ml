open Tq_ir
module Prng = Tq_util.Prng
module Cost = Instr.Cost

type config = {
  quantum_cycles : int;
  quantum_schedule : int array option;
  assumed_cpi : float;
  ci_check_clock : bool;
  seed : int64;
}

let default_config =
  {
    quantum_cycles = max_int;
    quantum_schedule = None;
    assumed_cpi = 2.8;
    ci_check_clock = false;
    seed = 1L;
  }

type result = {
  total_cycles : int;
  work_cycles : int;
  probe_cycles : int;
  probe_executions : int;
  yields : int;
  yield_intervals : int list;
  instructions : int;
}

type state = {
  config : config;
  rng : Prng.t;
  program : Cfg.program;
  c_probes : Tq_obs.Counters.counter option;
      (** live observability hooks, [None] when no registry was passed *)
  c_yields : Tq_obs.Counters.counter option;
  d_overshoot : Tq_obs.Counters.dist option;
  mutable cycles : int;
  mutable work_cycles : int;
  mutable probe_cycles : int;
  mutable probe_executions : int;
  mutable last_yield : int;
  mutable yields : int;
  mutable intervals : int list;
  mutable instructions : int;
  mutable ci_counter : int;
}

(* Per-function-activation bookkeeping: loop trip counters (program
   semantics) and loop-probe iteration counters (instrumentation). *)
type frame = {
  func : Cfg.func;
  header_latches : (Cfg.block_id, Cfg.block_id list) Hashtbl.t;
  trip_remaining : (Cfg.block_id, int) Hashtbl.t;  (** keyed by latch *)
  entry_trips : (Cfg.block_id, int) Hashtbl.t;  (** trips sampled at entry *)
  probe_iter : (Cfg.block_id, int) Hashtbl.t;  (** loop-probe counters *)
}

(* The quantum for the next yield: positional in [quantum_schedule]
   (dynamic quanta, e.g. LAS), else the fixed [quantum_cycles]. *)
let current_quantum st =
  match st.config.quantum_schedule with
  | Some arr when st.yields < Array.length arr -> arr.(st.yields)
  | Some arr when Array.length arr > 0 -> arr.(Array.length arr - 1)
  | _ -> st.config.quantum_cycles

let ci_threshold st =
  let q = current_quantum st in
  if q = max_int then max_int
  else max 1 (int_of_float (float_of_int q /. st.config.assumed_cpi))

let sample_trips st = function
  | Cfg.Static k -> max 1 k
  | Cfg.Dynamic { lo; hi } -> max 1 (Prng.int_in_range st.rng ~lo ~hi)

let make_frame (func : Cfg.func) =
  let header_latches = Hashtbl.create 4 in
  Array.iter
    (fun (b : Cfg.block) ->
      match b.term with
      | Cfg.Latch { header; _ } ->
          let existing = Option.value ~default:[] (Hashtbl.find_opt header_latches header) in
          Hashtbl.replace header_latches header (b.id :: existing)
      | _ -> ())
    func.blocks;
  {
    func;
    header_latches;
    trip_remaining = Hashtbl.create 4;
    entry_trips = Hashtbl.create 4;
    probe_iter = Hashtbl.create 4;
  }

let do_yield st =
  let interval = st.cycles - st.last_yield in
  st.intervals <- interval :: st.intervals;
  st.yields <- st.yields + 1;
  (match st.c_yields with Some c -> Tq_obs.Counters.incr c | None -> ());
  (* Overshoot: how far past the target quantum the probe fired — the
     probe-timing accuracy Table 3 scores as MAE. *)
  (match st.d_overshoot with
  | Some d ->
      let q = current_quantum st in
      if q <> max_int && interval > q then Tq_obs.Counters.observe d (interval - q)
  | None -> ());
  st.cycles <- st.cycles + Cost.yield;
  st.last_yield <- st.cycles

let note_probe st =
  st.probe_executions <- st.probe_executions + 1;
  match st.c_probes with Some c -> Tq_obs.Counters.incr c | None -> ()

let clock_probe_check st =
  note_probe st;
  st.probe_cycles <- st.probe_cycles + Cost.clock_probe;
  st.cycles <- st.cycles + Cost.clock_probe;
  if st.cycles - st.last_yield >= current_quantum st then do_yield st

let counter_probe st add =
  note_probe st;
  st.probe_cycles <- st.probe_cycles + Cost.counter_probe;
  st.cycles <- st.cycles + Cost.counter_probe;
  st.ci_counter <- st.ci_counter + add;
  let threshold = ci_threshold st in
  if st.ci_counter >= threshold then
    if st.config.ci_check_clock then begin
      (* CI-Cycles: a clock read gated behind the counter. *)
      st.probe_cycles <- st.probe_cycles + Cost.clock_probe;
      st.cycles <- st.cycles + Cost.clock_probe;
      if st.cycles - st.last_yield >= current_quantum st then begin
        do_yield st;
        st.ci_counter <- 0
      end
      else begin
        (* Re-arm proportionally: check again when the *remaining* part
           of the quantum translates back to zero instructions left. *)
        let remaining = current_quantum st - (st.cycles - st.last_yield) in
        let remaining_instrs =
          int_of_float (float_of_int remaining /. st.config.assumed_cpi)
        in
        st.ci_counter <- max 0 (threshold - remaining_instrs)
      end
    end
    else begin
      do_yield st;
      st.ci_counter <- 0
    end

let loop_probe st frame ~latch ~period ~counter_free ~cloned =
  (* Cloned self-loops skip instrumentation when this entry's trip count
     is under the period (the runtime selected the uninstrumented
     version). *)
  let trips = Option.value ~default:max_int (Hashtbl.find_opt frame.entry_trips latch) in
  if not (cloned && trips < period) then begin
    if not counter_free then begin
      st.probe_cycles <- st.probe_cycles + Cost.loop_probe_iter;
      st.cycles <- st.cycles + Cost.loop_probe_iter;
      note_probe st
    end;
    let count = 1 + Option.value ~default:0 (Hashtbl.find_opt frame.probe_iter latch) in
    if count >= period then begin
      Hashtbl.replace frame.probe_iter latch 0;
      clock_probe_check st
    end
    else Hashtbl.replace frame.probe_iter latch count
  end

let work st cycles weight =
  st.cycles <- st.cycles + cycles;
  st.work_cycles <- st.work_cycles + cycles;
  st.instructions <- st.instructions + weight

let rec exec_instr st frame (i : Instr.t) =
  match i with
  | Alu -> work st Cost.alu 1
  | Mul -> work st Cost.mul 1
  | Div -> work st Cost.div 1
  | Store -> work st Cost.store 1
  | Load { miss_prob } ->
      let cost = if Prng.bernoulli st.rng ~p:miss_prob then Cost.load_miss else Cost.load_hit in
      work st cost 1
  | External { cycles; _ } -> work st cycles (Instr.instruction_weight i)
  | Call callee ->
      work st Cost.call_overhead 1;
      exec_func st (Cfg.func_of_program st.program callee)
  | Probe Clock_probe -> clock_probe_check st
  | Probe (Counter_probe { add }) -> counter_probe st add
  | Probe (Loop_probe { latch; period; counter_free; cloned }) ->
      loop_probe st frame ~latch ~period ~counter_free ~cloned

and exec_func st (func : Cfg.func) =
  let frame = make_frame func in
  let rec run_block id ~from_latch =
    let block = func.blocks.(id) in
    (* Entering a loop header from outside samples the trip count. *)
    (match Hashtbl.find_opt frame.header_latches id with
    | Some latches when not from_latch ->
        List.iter
          (fun latch ->
            let trips =
              match func.blocks.(latch).term with
              | Cfg.Latch { trips; _ } -> sample_trips st trips
              | _ -> assert false
            in
            Hashtbl.replace frame.trip_remaining latch trips;
            Hashtbl.replace frame.entry_trips latch trips;
            Hashtbl.replace frame.probe_iter latch 0)
          latches
    | _ -> ());
    List.iter (exec_instr st frame) block.instrs;
    match block.term with
    | Cfg.Ret -> ()
    | Cfg.Jump next -> run_block next ~from_latch:false
    | Cfg.Branch { taken_prob; if_true; if_false } ->
        let target = if Prng.bernoulli st.rng ~p:taken_prob then if_true else if_false in
        run_block target ~from_latch:false
    | Cfg.Latch { header; exit; _ } ->
        let remaining = Hashtbl.find frame.trip_remaining block.id - 1 in
        Hashtbl.replace frame.trip_remaining block.id remaining;
        if remaining > 0 then run_block header ~from_latch:true
        else run_block exit ~from_latch:false
  in
  run_block func.entry ~from_latch:false

let run ?counters config program =
  let st =
    {
      config;
      rng = Prng.create ~seed:config.seed;
      program;
      c_probes =
        Option.map (fun reg -> Tq_obs.Counters.counter reg "vm.probe_fires") counters;
      c_yields = Option.map (fun reg -> Tq_obs.Counters.counter reg "vm.yields") counters;
      d_overshoot =
        Option.map (fun reg -> Tq_obs.Counters.dist reg "vm.overshoot_cycles") counters;
      cycles = 0;
      work_cycles = 0;
      probe_cycles = 0;
      probe_executions = 0;
      last_yield = 0;
      yields = 0;
      intervals = [];
      instructions = 0;
      ci_counter = 0;
    }
  in
  exec_func st (Cfg.func_of_program program program.main);
  {
    total_cycles = st.cycles;
    work_cycles = st.work_cycles;
    probe_cycles = st.probe_cycles;
    probe_executions = st.probe_executions;
    yields = st.yields;
    yield_intervals = List.rev st.intervals;
    instructions = st.instructions;
  }

let mean_abs_error_ns ~quantum_cycles ?(ghz = Tq_util.Time_unit.default_ghz) r =
  match r.yield_intervals with
  | [] -> nan
  | intervals ->
      let sum =
        List.fold_left
          (fun acc i -> acc +. Float.abs (float_of_int (i - quantum_cycles)))
          0.0 intervals
      in
      sum /. float_of_int (List.length intervals) /. ghz

let overhead_percent ~baseline ~instrumented =
  100.0
  *. (float_of_int instrumented.total_cycles -. float_of_int baseline.total_cycles)
  /. float_of_int baseline.total_cycles
