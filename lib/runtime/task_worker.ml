module Deque = Tq_util.Ring_deque
module Trace = Tq_obs.Trace
module Event = Tq_obs.Event
module Counters = Tq_obs.Counters

type task = {
  task_id : int;
  class_idx : int;
  pinned : bool;
  work : wid:int -> unit;
}

type running = {
  task : task;
  fiber : unit Fiber.t;
  arrival_ns : int;
  mutable quanta : int;
}

type t = {
  ctx : Probe_api.t;
  clock : Clock.t;
  wid : int;
  queue : running Deque.t;
  on_finish : task -> unit;
  on_quantum :
    (task_id:int -> start_ns:int -> end_ns:int -> finished:bool -> unit) option;
  class_quantum : (class_idx:int -> int) option;
  trace : Trace.t;
  lane : Event.lane;
  c_quanta : Counters.counter;
  c_yields : Counters.counter;
  c_completions : Counters.counter;
  d_quantum_len : Counters.dist;
  d_overshoot : Counters.dist;
  mutable assigned : int;
  mutable finished : int;
  mutable current_quanta : int;
}

let create ?(obs = Tq_obs.Obs.disabled ()) ?(wid = 0) ?(track_probes = false)
    ?on_quantum ?class_quantum ~clock ~quantum_ns ~on_finish () =
  let reg = obs.Tq_obs.Obs.counters in
  let ctx = Probe_api.create ~clock ~quantum_ns in
  if track_probes then
    Probe_api.set_cadence ctx (Some (Counters.dist reg "runtime.probe_gap_ns"));
  {
    ctx;
    clock;
    wid;
    queue = Deque.create ();
    on_finish;
    on_quantum;
    class_quantum;
    trace = obs.Tq_obs.Obs.trace;
    lane = Event.Worker wid;
    c_quanta = Counters.counter reg "runtime.quanta";
    c_yields = Counters.counter reg "runtime.yields";
    c_completions = Counters.counter reg "runtime.completions";
    d_quantum_len = Counters.dist reg "runtime.quantum_len_ns";
    d_overshoot = Counters.dist reg "runtime.overshoot_ns";
    assigned = 0;
    finished = 0;
    current_quanta = 0;
  }

let submit t task =
  t.assigned <- t.assigned + 1;
  (* The fiber binds the executing worker's id, not the placed-at one:
     a stolen task resolves per-worker state (app instance, reply ring)
     against the core that actually runs it. *)
  Deque.push_back t.queue
    {
      task;
      fiber = Fiber.create (fun () -> task.work ~wid:t.wid);
      arrival_ns = Clock.now_ns t.clock;
      quanta = 0;
    }

let run_slice t =
  match Deque.pop_front t.queue with
  | None -> false
  | Some running -> begin
      (match t.class_quantum with
      | None -> ()
      | Some f ->
          Probe_api.set_quantum_ns t.ctx (f ~class_idx:running.task.class_idx));
      Probe_api.install t.ctx;
      Probe_api.start_quantum t.ctx;
      let start_ns = Clock.now_ns t.clock in
      if Trace.enabled t.trace then
        Trace.record t.trace ~ts_ns:start_ns ~lane:t.lane
          (Event.Quantum_start
             { job_id = running.task.task_id; quantum_ns = Probe_api.quantum_ns t.ctx });
      let status = Fun.protect ~finally:Probe_api.uninstall (fun () -> Fiber.resume running.fiber) in
      running.quanta <- running.quanta + 1;
      t.current_quanta <- t.current_quanta + 1;
      Counters.incr t.c_quanta;
      let end_ns = Clock.now_ns t.clock in
      let finished = match status with Fiber.Done () -> true | Fiber.Yielded -> false in
      let ran_ns = end_ns - start_ns in
      Counters.observe t.d_quantum_len ran_ns;
      (* Overshoot only makes sense for forced yields: a task that
         finished early legitimately ran under the quantum. *)
      if not finished then
        Counters.observe t.d_overshoot
          (max 0 (ran_ns - Probe_api.quantum_ns t.ctx));
      if Trace.enabled t.trace then
        Trace.record t.trace ~ts_ns:end_ns ~lane:t.lane
          (Event.Quantum_end
             { job_id = running.task.task_id; ran_ns; finished });
      (match status with
      | Fiber.Yielded ->
          Counters.incr t.c_yields;
          if Trace.enabled t.trace then
            Trace.record t.trace ~ts_ns:end_ns ~lane:t.lane
              (Event.Yield { job_id = running.task.task_id });
          Deque.push_back t.queue running
      | Fiber.Done () ->
          t.current_quanta <- t.current_quanta - running.quanta;
          t.finished <- t.finished + 1;
          Counters.incr t.c_completions;
          if Trace.enabled t.trace then
            Trace.record t.trace ~ts_ns:end_ns ~lane:t.lane
              (Event.Completion
                 { job_id = running.task.task_id; sojourn_ns = end_ns - running.arrival_ns });
          t.on_finish running.task);
      (match t.on_quantum with
      | None -> ()
      | Some f -> f ~task_id:running.task.task_id ~start_ns ~end_ns ~finished);
      true
    end

let run_until_idle t =
  while run_slice t do
    ()
  done

let queue_length t = Deque.length t.queue
let unfinished t = t.assigned - t.finished
let finished_count t = t.finished
let current_quanta t = t.current_quanta
let total_yields t = Probe_api.yields_taken t.ctx
let clock t = t.clock
