module Span = Tq_obs.Span
module Counters = Tq_obs.Counters
module Event = Tq_obs.Event

type stats = { completed : int; yields : int; per_worker_finished : int array }

type worker_handle = {
  source : Task_worker.task Work_source.t;
  assigned : int Atomic.t;  (** written by dispatcher; adjusted on steals *)
  finished : int Atomic.t;  (** written by worker *)
  yields : int Atomic.t;
  beats : int Atomic.t;  (** liveness heartbeat: bumped once per loop pass *)
  stall_until_ns : int Atomic.t;  (** fault hook: busy-occupy until this stamp *)
  killed : bool Atomic.t;  (** fault hook: domain exits at next loop pass *)
  dead : bool Atomic.t;  (** dispatcher verdict: excluded from JSQ/in-flight *)
}

type t = {
  handles : worker_handle array;
  domains : unit Domain.t array;
  stop : bool Atomic.t;
  base_quantum : int Atomic.t;  (** live quantum, read by workers per slice *)
  class_quanta : int Atomic.t array;  (** per-class overrides; <= 0 = inherit *)
  mutable live : bool;  (** false after shutdown; guarded by the producer thread *)
  next_tag : int Atomic.t;  (** fallback task-id source, shared by all producers *)
}

let worker_loop handle ~handles ~wid ~quantum_ns ~base_quantum ~class_quanta
    ~stop ~spans ~reg ~track_probes ~stall_threshold_ns ~gc_pause_ns ~steal =
  let clock = Clock.wall () in
  let obs =
    match reg with
    | Some r -> Tq_obs.Obs.of_counters r
    | None -> Tq_obs.Obs.disabled ()
  in
  let sink = Span.register spans (Event.Worker wid) in
  let spans_on = Span.enabled spans in
  let creg = obs.Tq_obs.Obs.counters in
  let c_stalls = Counters.counter creg "runtime.stalls" in
  let c_stall_gc = Counters.counter creg "runtime.stall_gc" in
  let c_stall_other = Counters.counter creg "runtime.stall_other" in
  let c_stall_unknown = Counters.counter creg "runtime.stall_unknown" in
  let d_stall_gap = Counters.dist creg "runtime.stall_gap_ns" in
  let c_steals = Counters.counter creg "runtime.steals" in
  let c_steal_items = Counters.counter creg "runtime.steal_items" in
  let c_steal_failures = Counters.counter creg "runtime.steal_failures" in
  (* Wall-clock-gap stall detector: consecutive busy slices separated by
     much more than a quantum mean the domain lost the CPU between them
     (GC pause, OS preemption).  [last_end] resets on idle polls so time
     spent legitimately waiting for work never counts.

     Attribution: [gc_pause_ns] (when wired, from Gc_events) reads this
     domain's cumulative GC pause clock; if GC pauses grew by at least
     half the gap since the previous quantum end, the runtime ate the
     core — otherwise the OS (or an antagonist) did.  The GC clock lags
     the live domain by the consumer's poll interval, so a pause right
     at the gap's edge can land in [stall_other]; the counters are a
     classifier, not an audit. *)
  let last_end = ref (-1) in
  let gc_at_last_end = ref 0 in
  let on_quantum ~task_id ~start_ns ~end_ns ~finished =
    if !last_end >= 0 && start_ns - !last_end > stall_threshold_ns then begin
      let gap = start_ns - !last_end in
      Counters.incr c_stalls;
      Counters.observe d_stall_gap gap;
      (match gc_pause_ns with
      | None -> Counters.incr c_stall_unknown
      | Some f ->
          let gc_delta = f () - !gc_at_last_end in
          if 2 * gc_delta >= gap then Counters.incr c_stall_gc
          else Counters.incr c_stall_other);
      if spans_on then
        Span.record sink ~req_id:(-1) ~phase:Span.Stall ~start_ns:!last_end
          ~dur_ns:gap ~arg:wid
    end;
    if spans_on then
      Span.record sink ~req_id:task_id ~phase:Span.Quantum ~start_ns
        ~dur_ns:(end_ns - start_ns)
        ~arg:(if finished then 1 else 0);
    last_end := end_ns;
    match gc_pause_ns with
    | None -> ()
    | Some f -> gc_at_last_end := f ()
  in
  (* Live quantum resolution, one slice at a time: a per-class override
     when the controller set one, the shared base otherwise.  Two atomic
     loads per slice — the price of retuning a running pool without
     stopping it. *)
  let class_quantum ~class_idx =
    let q =
      if class_idx >= 0 && class_idx < Array.length class_quanta then
        Atomic.get class_quanta.(class_idx)
      else 0
    in
    if q > 0 then q else Atomic.get base_quantum
  in
  let worker =
    Task_worker.create ~obs ~wid ~track_probes ~on_quantum ~class_quantum ~clock
      ~quantum_ns
      ~on_finish:(fun _ -> Atomic.incr handle.finished)
      ()
  in
  let source = handle.source in
  (* Admission = handing a task to the fiber scheduler; from here on it
     is pinned to this domain.  Ring-hop latency is invisible (no
     enqueue stamp on the disabled-cost path); mark the pickup as an
     instant so the trace shows when the request landed on the core. *)
  let admit task =
    if spans_on then begin
      let now = Clock.now_ns clock in
      Span.record sink ~req_id:task.Task_worker.task_id ~phase:Span.Ring_hop
        ~start_ns:now ~dur_ns:0 ~arg:wid
    end;
    Task_worker.submit worker task
  in
  let is_pinned task = task.Task_worker.pinned in
  let drain_source () =
    ignore (Work_source.drain source ~is_pinned ~submit:admit)
  in
  let try_steal () =
    let t0 = Clock.now_ns clock in
    match Work_source.try_steal source with
    | Some (victim, moved) ->
        (* Credit the thief before debiting the victim: the transient
           view is an overcount, never an undercount, so [drain] cannot
           observe zero in-flight while stolen work still runs. *)
        ignore (Atomic.fetch_and_add handle.assigned moved);
        ignore (Atomic.fetch_and_add handles.(victim).assigned (-moved));
        Counters.incr c_steals;
        Counters.add c_steal_items moved;
        if spans_on then
          Span.record sink ~req_id:(-1) ~phase:Span.Steal ~start_ns:t0
            ~dur_ns:(Clock.now_ns clock - t0) ~arg:victim;
        true
    | None ->
        Counters.incr c_steal_failures;
        false
  in
  (* Persistent service loop: exits only when the stop flag is up AND
     both the ring and the local run queue are empty — admitted work is
     never abandoned (the zero-loss drain guarantee).  Fault hooks break
     that ideal on purpose: [killed] makes the domain exit immediately,
     abandoning whatever it holds (the dispatcher's heartbeat monitor is
     responsible for noticing and re-dispatching); [stall_until_ns]
     busy-occupies the core without serving — a CPU antagonist — during
     which the heartbeat stops, exactly like a real stuck worker. *)
  let backoff = Backoff.create () in
  let rec loop () =
    Atomic.incr handle.beats;
    if Atomic.get handle.killed then ()
    else begin
      let su = Atomic.get handle.stall_until_ns in
      if su > 0 then begin
        while Clock.now_ns clock < Atomic.get handle.stall_until_ns do
          ()
        done;
        Atomic.set handle.stall_until_ns 0;
        last_end := -1
      end;
      drain_source ();
      (* Admit one stealable task per pass: the fiber queue multitasks
         what has been admitted while the remainder waits in the deque,
         where idle siblings can still see (and take) it. *)
      (match Work_source.next source with Some task -> admit task | None -> ());
      let ran = Task_worker.run_slice worker in
      Atomic.set handle.yields (Task_worker.total_yields worker);
      if ran then begin
        Backoff.reset backoff;
        loop ()
      end
      else begin
        last_end := -1;
        (* Idle (empty inject ring, empty deque, empty fiber queue):
           second-chance load balancing — take half of the most-loaded
           sibling's deque before parking.  Stealing stays on during
           shutdown so an idle worker helps drain a backlogged one. *)
        if steal && try_steal () then begin
          Backoff.reset backoff;
          loop ()
        end
        else if Atomic.get stop && Work_source.depth source = 0 then ()
        else begin
          Backoff.once backoff;
          loop ()
        end
      end
    end
  in
  loop ()

let create ?(workers = 4) ?(quantum_ns = 100_000) ?(ring_capacity = 256)
    ?(classes = 0) ?(lanes = 1) ?(steal = false) ?(spans = Span.null)
    ?worker_counters ?stall_threshold_ns ?gc_pause_ns () =
  if workers < 1 then invalid_arg "Parallel.create: need at least one worker";
  if lanes < 1 then invalid_arg "Parallel.create: need at least one lane";
  (match worker_counters with
  | Some regs when Array.length regs <> workers ->
      invalid_arg "Parallel.create: worker_counters length must equal workers"
  | _ -> ());
  let stall_threshold_ns =
    match stall_threshold_ns with Some ns -> ns | None -> 10 * quantum_ns
  in
  if stall_threshold_ns <= 0 then
    invalid_arg "Parallel.create: stall threshold must be positive";
  let track_probes = worker_counters <> None in
  let stop = Atomic.make false in
  let base_quantum = Atomic.make quantum_ns in
  let class_quanta = Array.init (max 0 classes) (fun _ -> Atomic.make 0) in
  let handles =
    Array.init workers (fun wid ->
        {
          source = Work_source.create ~wid ~capacity:ring_capacity;
          assigned = Atomic.make 0;
          finished = Atomic.make 0;
          yields = Atomic.make 0;
          beats = Atomic.make 0;
          stall_until_ns = Atomic.make 0;
          killed = Atomic.make false;
          dead = Atomic.make false;
        })
  in
  (* Steal groups are lane slices: worker [w] may only take from
     siblings with the same [w mod lanes], mirroring the serve plane's
     partitioning so stolen work never crosses a lane boundary (reply
     rings stay single-producer per lane).  [lanes = 1] is the classic
     layout: one group spanning the whole pool. *)
  let group_of wid =
    let members =
      Array.to_list handles
      |> List.filteri (fun w _ -> w mod lanes = wid mod lanes)
      |> List.map (fun h -> h.source)
    in
    Array.of_list members
  in
  Array.iteri (fun wid h -> Work_source.set_group h.source (group_of wid)) handles;
  let domains =
    Array.mapi
      (fun wid handle ->
        let reg = Option.map (fun regs -> regs.(wid)) worker_counters in
        (* A lone group member has nobody to rob; skip the scan (and
           the failure counter churn) entirely. *)
        let steal = steal && Array.length (group_of wid) > 1 in
        Domain.spawn (fun () ->
            worker_loop handle ~handles ~wid ~quantum_ns ~base_quantum
              ~class_quanta ~stop ~spans ~reg ~track_probes ~stall_threshold_ns
              ~gc_pause_ns ~steal))
      handles
  in
  { handles; domains; stop; base_quantum; class_quanta; live = true;
    next_tag = Atomic.make 0 }

let workers t = Array.length t.handles
let unfinished h = Atomic.get h.assigned - Atomic.get h.finished
let worker_alive t ~worker = not (Atomic.get t.handles.(worker).dead)
let alive_workers t =
  Array.fold_left (fun acc h -> if Atomic.get h.dead then acc else acc + 1) 0 t.handles

(* JSQ over the living: a worker marked dead keeps whatever counters it
   froze with, so it must never win the argmin again. *)
let pick t =
  let best = ref (-1) in
  Array.iteri
    (fun i h ->
      if not (Atomic.get h.dead) then
        if !best < 0 || unfinished h < unfinished t.handles.(!best) then best := i)
    t.handles;
  if !best < 0 then invalid_arg "Parallel.pick: every worker is dead";
  !best

(* The lane-aware variant: JSQ restricted to the caller's worker slice,
   so a dispatcher lane that owns a subset of the rings (the
   single-producer-per-ring contract) never steers outside it. *)
let pick_in t ~workers =
  let best = ref (-1) in
  Array.iter
    (fun i ->
      if i < 0 || i >= Array.length t.handles then
        invalid_arg "Parallel.pick_in: no such worker";
      let h = t.handles.(i) in
      if not (Atomic.get h.dead) then
        if !best < 0 || unfinished h < unfinished t.handles.(!best) then best := i)
    workers;
  if !best < 0 then invalid_arg "Parallel.pick_in: every worker in the slice is dead";
  !best

let alive_in t ~workers =
  Array.fold_left
    (fun acc i ->
      if i >= 0 && i < Array.length t.handles && not (Atomic.get t.handles.(i).dead)
      then acc + 1
      else acc)
    0 workers

let submit_to t ?tag ?(class_idx = 0) ?(pinned = false) ~worker job =
  if not t.live then invalid_arg "Parallel.submit_to: pool is shut down";
  if worker < 0 || worker >= Array.length t.handles then
    invalid_arg "Parallel.submit_to: no such worker";
  let handle = t.handles.(worker) in
  let task_id =
    match tag with
    | Some g -> g
    | None -> Atomic.fetch_and_add t.next_tag 1 + 1
  in
  if Work_source.inject handle.source { Task_worker.task_id; class_idx; pinned; work = job }
  then begin
    Atomic.incr handle.assigned;
    true
  end
  else false

let submit t ?tag ?class_idx job = submit_to t ?tag ?class_idx ~worker:(pick t) job

let in_flight t =
  Array.fold_left
    (fun acc h -> if Atomic.get h.dead then acc else acc + unfinished h)
    0 t.handles

let worker_in_flight t ~worker = unfinished t.handles.(worker)
let ring_depth t ~worker = Work_source.depth t.handles.(worker).source
let inject_depth t ~worker = Work_source.inject_depth t.handles.(worker).source
let deque_depth t ~worker = Work_source.stealable t.handles.(worker).source

(* {2 Live actuation and fault hooks} *)

let set_quantum t ?class_idx ~quantum_ns () =
  if quantum_ns <= 0 then invalid_arg "Parallel.set_quantum: need a positive quantum";
  match class_idx with
  | Some i ->
      if i >= 0 && i < Array.length t.class_quanta then
        Atomic.set t.class_quanta.(i) quantum_ns
  | None ->
      Atomic.set t.base_quantum quantum_ns;
      Array.iter (fun a -> Atomic.set a 0) t.class_quanta

let quantum_ns t ?class_idx () =
  match class_idx with
  | Some i when i >= 0 && i < Array.length t.class_quanta ->
      let q = Atomic.get t.class_quanta.(i) in
      if q > 0 then q else Atomic.get t.base_quantum
  | _ -> Atomic.get t.base_quantum

let beats t ~worker = Atomic.get t.handles.(worker).beats

let stall_worker t ~worker ~duration_ns ~now_ns =
  if duration_ns > 0 then
    Atomic.set t.handles.(worker).stall_until_ns (now_ns + duration_ns)

let kill_worker t ~worker = Atomic.set t.handles.(worker).killed true

let mark_dead t ~worker =
  let h = t.handles.(worker) in
  if Atomic.get h.dead then 0
  else begin
    Atomic.set h.dead true;
    unfinished h
  end

let stats t =
  {
    completed = Array.fold_left (fun acc h -> acc + Atomic.get h.finished) 0 t.handles;
    yields = Array.fold_left (fun acc h -> acc + Atomic.get h.yields) 0 t.handles;
    per_worker_finished = Array.map (fun h -> Atomic.get h.finished) t.handles;
  }

let drain t =
  let backoff = Backoff.create () in
  while in_flight t > 0 do
    Backoff.once backoff
  done

let shutdown t =
  if t.live then begin
    t.live <- false;
    Atomic.set t.stop true;
    Array.iter Domain.join t.domains
  end;
  stats t
