type stats = { completed : int; yields : int; per_worker_finished : int array }

type worker_handle = {
  ring : (unit -> unit) Spsc_ring.t;
  assigned : int Atomic.t;  (** written by dispatcher *)
  finished : int Atomic.t;  (** written by worker *)
  yields : int Atomic.t;
}

type t = {
  handles : worker_handle array;
  domains : unit Domain.t array;
  stop : bool Atomic.t;
  mutable live : bool;  (** false after shutdown; guarded by the producer thread *)
}

let worker_loop handle ~quantum_ns ~stop =
  let clock = Clock.wall () in
  let worker =
    Task_worker.create ~clock ~quantum_ns
      ~on_finish:(fun _ -> Atomic.incr handle.finished)
      ()
  in
  let next_id = ref 0 in
  let drain_ring () =
    let rec go () =
      match Spsc_ring.try_pop handle.ring with
      | Some work ->
          incr next_id;
          Task_worker.submit worker { Task_worker.task_id = !next_id; work };
          go ()
      | None -> ()
    in
    go ()
  in
  (* Persistent service loop: exits only when the stop flag is up AND
     both the ring and the local run queue are empty — admitted work is
     never abandoned (the zero-loss drain guarantee). *)
  let backoff = Backoff.create () in
  let rec loop () =
    drain_ring ();
    let ran = Task_worker.run_slice worker in
    Atomic.set handle.yields (Task_worker.total_yields worker);
    if ran then begin
      Backoff.reset backoff;
      loop ()
    end
    else if Atomic.get stop && Spsc_ring.length handle.ring = 0 then ()
    else begin
      Backoff.once backoff;
      loop ()
    end
  in
  loop ()

let create ?(workers = 4) ?(quantum_ns = 100_000) ?(ring_capacity = 256) () =
  if workers < 1 then invalid_arg "Parallel.create: need at least one worker";
  let stop = Atomic.make false in
  let handles =
    Array.init workers (fun _ ->
        {
          ring = Spsc_ring.create ~capacity:ring_capacity;
          assigned = Atomic.make 0;
          finished = Atomic.make 0;
          yields = Atomic.make 0;
        })
  in
  let domains =
    Array.map
      (fun handle -> Domain.spawn (fun () -> worker_loop handle ~quantum_ns ~stop))
      handles
  in
  { handles; domains; stop; live = true }

let workers t = Array.length t.handles
let unfinished h = Atomic.get h.assigned - Atomic.get h.finished

let pick t =
  let best = ref 0 in
  Array.iteri
    (fun i h -> if unfinished h < unfinished t.handles.(!best) then best := i)
    t.handles;
  !best

let submit_to t ~worker job =
  if not t.live then invalid_arg "Parallel.submit_to: pool is shut down";
  if worker < 0 || worker >= Array.length t.handles then
    invalid_arg "Parallel.submit_to: no such worker";
  let handle = t.handles.(worker) in
  if Spsc_ring.try_push handle.ring job then begin
    Atomic.incr handle.assigned;
    true
  end
  else false

let submit t job = submit_to t ~worker:(pick t) job
let in_flight t = Array.fold_left (fun acc h -> acc + unfinished h) 0 t.handles
let worker_in_flight t ~worker = unfinished t.handles.(worker)
let ring_depth t ~worker = Spsc_ring.length t.handles.(worker).ring

let stats t =
  {
    completed = Array.fold_left (fun acc h -> acc + Atomic.get h.finished) 0 t.handles;
    yields = Array.fold_left (fun acc h -> acc + Atomic.get h.yields) 0 t.handles;
    per_worker_finished = Array.map (fun h -> Atomic.get h.finished) t.handles;
  }

let drain t =
  let backoff = Backoff.create () in
  while in_flight t > 0 do
    Backoff.once backoff
  done

let shutdown t =
  if t.live then begin
    t.live <- false;
    Atomic.set t.stop true;
    Array.iter Domain.join t.domains
  end;
  stats t

(* The historical batch entry point, kept as a wrapper so existing
   callers compile unchanged (see the .mli deprecation note). *)
let run ?workers ?quantum_ns ?ring_capacity jobs =
  let t = create ?workers ?quantum_ns ?ring_capacity () in
  let backoff = Backoff.create () in
  Array.iter
    (fun job ->
      while not (submit t job) do
        Backoff.once backoff
      done;
      Backoff.reset backoff)
    jobs;
  shutdown t
