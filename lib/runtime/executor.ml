module Trace = Tq_obs.Trace
module Event = Tq_obs.Event
module Counters = Tq_obs.Counters

type t = {
  mutable workers : Task_worker.t array;
  trace : Trace.t;
  c_dispatches : Counters.counter;
  mutable next_task_id : int;
  mutable completed : int;
}

let create ?(workers = 4) ?(quantum_ns = 2_000) ?(wall_clock = false)
    ?(obs = Tq_obs.Obs.disabled ()) () =
  if workers < 1 then invalid_arg "Executor.create: need at least one worker";
  let t =
    {
      workers = [||];
      trace = obs.Tq_obs.Obs.trace;
      c_dispatches = Counters.counter obs.Tq_obs.Obs.counters "runtime.dispatches";
      next_task_id = 0;
      completed = 0;
    }
  in
  let make_worker wid =
    let clock = if wall_clock then Clock.wall () else Clock.virtual_ () in
    Task_worker.create ~obs ~wid ~clock ~quantum_ns
      ~on_finish:(fun _ -> t.completed <- t.completed + 1)
      ()
  in
  t.workers <- Array.init workers make_worker;
  t

(* JSQ with MSQ tie-breaking, reading worker counters like the paper's
   dispatcher reads the shared cache line. *)
let choose_worker t =
  let best = ref 0 in
  Array.iteri
    (fun i w ->
      let load = Task_worker.unfinished w in
      let best_load = Task_worker.unfinished t.workers.(!best) in
      if
        load < best_load
        || (load = best_load
           && Task_worker.current_quanta w > Task_worker.current_quanta t.workers.(!best))
      then best := i)
    t.workers;
  !best

let submit t work =
  t.next_task_id <- t.next_task_id + 1;
  let widx = choose_worker t in
  let worker = t.workers.(widx) in
  Counters.incr t.c_dispatches;
  if Trace.enabled t.trace then
    Trace.record t.trace
      ~ts_ns:(Clock.now_ns (Task_worker.clock worker))
      ~lane:Event.Global
      (Event.Dispatch
         {
           job_id = t.next_task_id;
           worker = widx;
           policy = "jsq-msq";
           queue_len = Task_worker.queue_length worker;
         });
  (* The executor never steals, so jobs keep the plain [unit -> unit]
     shape and ride pinned with the executing wid discarded. *)
  Task_worker.submit worker
    {
      Task_worker.task_id = t.next_task_id;
      class_idx = 0;
      pinned = true;
      work = (fun ~wid:_ -> work ());
    }

let run t =
  let any = ref true in
  while !any do
    any := false;
    Array.iter (fun w -> if Task_worker.run_slice w then any := true) t.workers
  done

let completed t = t.completed
let total_yields t = Array.fold_left (fun acc w -> acc + Task_worker.total_yields w) 0 t.workers
let worker_count t = Array.length t.workers
let worker_finished t = Array.map Task_worker.finished_count t.workers
