(** Single-domain TQ executor: a JSQ dispatcher over N logical workers.

    Deterministic (virtual clocks, fixed interleaving), so tests and
    examples can assert exact scheduling behaviour.  The dispatcher
    performs only load balancing — JSQ over the workers'
    unfinished-job counters with MSQ tie-breaking — and workers
    interleave task quanta by forced multitasking, exactly the two-level
    structure of the paper (minus real parallelism; see {!Parallel}). *)

type t

(** [obs] threads an event tracer and counter registry through the
    dispatcher and all workers (wall or virtual clock timestamps,
    matching [wall_clock]); the default is disabled tracing. *)
val create :
  ?workers:int -> ?quantum_ns:int -> ?wall_clock:bool -> ?obs:Tq_obs.Obs.t -> unit -> t

(** [submit t work] dispatches a task to a worker (JSQ+MSQ). *)
val submit : t -> (unit -> unit) -> unit

(** [run t] interleaves worker slices round-robin until every task has
    completed. *)
val run : t -> unit

val completed : t -> int
val total_yields : t -> int
val worker_count : t -> int

(** [worker_finished t] — per-worker completion counts (load-balance
    diagnostics). *)
val worker_finished : t -> int array
