(** The yield-probe runtime API.

    In the paper, an LLVM pass inserts probe calls; in OCaml we have no
    such pass, so instrumented code calls {!probe} explicitly (or uses
    the {!Instrumented} combinators, which insert the calls at loop
    granularity — the library-level equivalent of the compiler's loop
    instrumentation; see DESIGN.md substitutions).

    A probe reads the worker's clock and performs a fiber yield when the
    current quantum has been exceeded, exactly like the generated
    [call_the_yield] thunk.  Critical sections suppress yielding, as in
    Section 4 of the paper; the deferred yield fires when the outermost
    section exits. *)

type t

val create : clock:Clock.t -> quantum_ns:int -> t

(** Worker-side hooks. *)

(** [start_quantum t] marks the beginning of a fresh quantum (called by
    the scheduler just before resuming a task fiber). *)
val start_quantum : t -> unit

(** [install t] binds [t] as the calling domain's active context —
    the analogue of binding [call_the_yield] before a resume. *)
val install : t -> unit

val uninstall : unit -> unit

(** [current ()] — the calling domain's installed context, if any. *)
val current : unit -> t option

(** [set_cadence t d] — when [d] is [Some dist], every probe records the
    nanoseconds elapsed since the previous probe of the same quantum
    into [dist] (the probe-cadence distribution: how finely the running
    code is instrumented, hence the bound on preemption overshoot).
    [None] (the default) turns tracking off; the probe hot path then
    pays one extra branch and no clock read. *)
val set_cadence : t -> Tq_obs.Counters.dist option -> unit

(** Task-side API. *)

(** [probe ()] — yield iff the quantum expired and no critical section
    is open.  A no-op when no context is installed (uninstrumented
    execution), like a probe compiled into code running outside TQ. *)
val probe : unit -> unit

(** [critical_begin ()] / [critical_end ()] — nestable; on final exit a
    pending expired quantum yields immediately. *)
val critical_begin : unit -> unit

val critical_end : unit -> unit

(** [advance_virtual ns] — credit [ns] of simulated work to the
    installed context's clock if it is virtual; no-op otherwise. *)
val advance_virtual : int -> unit

(** [installed_clock_is_virtual ()] — true when the calling domain has a
    context with a virtual clock. *)
val installed_clock_is_virtual : unit -> bool

(** Statistics. *)

val probes_executed : t -> int
val yields_taken : t -> int
val quantum_ns : t -> int
val set_quantum_ns : t -> int -> unit
