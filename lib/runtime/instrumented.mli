(** Library-level instrumentation combinators.

    The OCaml analogue of the compiler pass's loop instrumentation:
    iteration constructs that call the probe every [probe_every]
    iterations (the pass's period), so loop bodies need no manual probe
    calls.  [probe_every] defaults to a period sized for ~2 us quanta
    and microsecond-scale bodies. *)

val default_probe_every : int

(** [for_range ?probe_every ~lo ~hi f] — [f i] for i in [lo, hi), with a
    probe every [probe_every] iterations. *)
val for_range : ?probe_every:int -> lo:int -> hi:int -> (int -> unit) -> unit

val iter_array : ?probe_every:int -> ('a -> unit) -> 'a array -> unit
val iter_list : ?probe_every:int -> ('a -> unit) -> 'a list -> unit

(** [fold_array ?probe_every f init arr]. *)
val fold_array : ?probe_every:int -> ('acc -> 'a -> 'acc) -> 'acc -> 'a array -> 'acc

(** [repeat ?probe_every n f] — run [f ()] [n] times. *)
val repeat : ?probe_every:int -> int -> (unit -> unit) -> unit

(** [with_cadence dist f] — run [f ()] with probe-cadence tracking on
    the calling domain's installed probe context: every probe inside [f]
    records its distance (ns) from the previous probe into [dist].  A
    profiling aid for sizing [probe_every] against the quantum; restores
    the previous (off) state on exit, no-op without a context. *)
val with_cadence : Tq_obs.Counters.dist -> (unit -> 'a) -> 'a

(** [work_ns ns] — simulate [ns] of CPU work: advances a virtual clock
    if installed, otherwise spins the wall clock; probes on the way at
    sub-quantum granularity. *)
val work_ns : int -> unit
