type t = {
  spin_limit : int;
  park_s : float;
  mutable misses : int;
}

let create ?(spin_limit = 200) ?(park_s = 5e-5) () =
  if spin_limit < 0 then invalid_arg "Backoff.create: spin_limit must be >= 0";
  if park_s <= 0.0 then invalid_arg "Backoff.create: park_s must be positive";
  { spin_limit; park_s; misses = 0 }

let reset t = t.misses <- 0

let once t =
  t.misses <- t.misses + 1;
  if t.misses <= t.spin_limit then Domain.cpu_relax ()
  else
    (* Unix.sleepf releases the runtime lock, so a parked domain neither
       occupies the core nor holds up another domain's minor GC. *)
    try Unix.sleepf t.park_s with Unix.Unix_error (Unix.EINTR, _, _) -> ()
