(** Bounded lock-free single-producer multi-consumer steal queue.

    The stealable half of the redesigned queue plane: each worker owns
    one deque and is its only producer ({!push}) — thieves remove
    batches with {!steal_into}, the owner removes single items with
    {!pop}.  FIFO order is preserved for the owner; thieves take from
    the same end (the oldest items), which keeps the structure a single
    ring with one CAS-claimed consumer cursor rather than a
    double-ended Chase–Lev deque — adequate here because everything in
    the deque is queued-but-unstarted work with no locality to protect.

    Memory-model notes (OCaml 5 atomics are SC): the producer publishes
    a value into its cell {e before} bumping the tail, so any consumer
    that claims an index below the tail is guaranteed to read the
    published value.  The producer refuses to overwrite a cell a slow
    thief has claimed but not yet cleared (it reads the cell before
    writing), so wrap-around never races with an in-flight steal. *)

type 'a t

(** [create ~capacity] — capacity must be positive. *)
val create : capacity:int -> 'a t

(** [push t v] — owner only.  [false] when the deque is full, or
    transiently when the target cell is still being cleared by a slow
    thief (retry after backoff; nothing was enqueued). *)
val push : 'a t -> 'a -> bool

(** [pop t] — owner only.  Takes the oldest item; [None] when empty.
    Competes with thieves on the consumer cursor via CAS, so the owner
    can lose a race and observe emptiness even if items existed at the
    call. *)
val pop : 'a t -> 'a option

(** [steal_into t ~into] — thief side: claim the oldest
    ceil(length/2) items of [t] in one CAS and push them onto [into],
    returning how many moved.  The caller must be [into]'s owner (its
    single producer); [t] and [into] may belong to different domains.
    Returns 0 when [t] is empty, when [into] has no room, or when
    [t == into]. *)
val steal_into : 'a t -> into:'a t -> int

(** Approximate occupancy (exact only when no thief is mid-claim). *)
val length : 'a t -> int

val capacity : 'a t -> int
