type t = {
  clock : Clock.t;
  mutable quantum_ns : int;
  mutable quantum_start : int;
  mutable critical_depth : int;
  mutable probes : int;
  mutable yields : int;
  mutable last_probe_ns : int;  (* -1 = no probe yet this quantum *)
  mutable cadence : Tq_obs.Counters.dist option;
}

let create ~clock ~quantum_ns =
  if quantum_ns <= 0 then invalid_arg "Probe_api.create: quantum must be positive";
  {
    clock;
    quantum_ns;
    quantum_start = 0;
    critical_depth = 0;
    probes = 0;
    yields = 0;
    last_probe_ns = -1;
    cadence = None;
  }

let key : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let install t = Domain.DLS.get key := Some t
let uninstall () = Domain.DLS.get key := None
let current () = !(Domain.DLS.get key)

let start_quantum t =
  t.quantum_start <- Clock.now_ns t.clock;
  (* Cadence gaps are intra-quantum only: the stretch between quanta is
     scheduler time, not probe-starved task code. *)
  t.last_probe_ns <- t.quantum_start

let set_cadence t d = t.cadence <- d

let expired t = Clock.now_ns t.clock - t.quantum_start >= t.quantum_ns

let do_yield t =
  t.yields <- t.yields + 1;
  Fiber.yield ();
  (* The scheduler re-arms the quantum before resuming, but re-arm here
     too so probes remain correct under a bare resumer (tests). *)
  start_quantum t

let probe () =
  match current () with
  | None -> ()
  | Some t ->
      t.probes <- t.probes + 1;
      (match t.cadence with
      | None -> ()
      | Some d ->
          let now = Clock.now_ns t.clock in
          if t.last_probe_ns >= 0 then
            Tq_obs.Counters.observe d (now - t.last_probe_ns);
          t.last_probe_ns <- now);
      if t.critical_depth = 0 && expired t then do_yield t

let critical_begin () =
  match current () with
  | None -> ()
  | Some t -> t.critical_depth <- t.critical_depth + 1

let critical_end () =
  match current () with
  | None -> ()
  | Some t ->
      if t.critical_depth <= 0 then invalid_arg "Probe_api.critical_end: not in a section";
      t.critical_depth <- t.critical_depth - 1;
      if t.critical_depth = 0 && expired t then do_yield t

let advance_virtual ns =
  match current () with
  | Some t when Clock.is_virtual t.clock -> Clock.advance t.clock ns
  | Some _ | None -> ()

let installed_clock_is_virtual () =
  match current () with Some t -> Clock.is_virtual t.clock | None -> false

let probes_executed t = t.probes
let yields_taken t = t.yields
let quantum_ns t = t.quantum_ns

let set_quantum_ns t q =
  if q <= 0 then invalid_arg "Probe_api.set_quantum_ns: quantum must be positive";
  t.quantum_ns <- q
