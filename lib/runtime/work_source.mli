(** A worker's queue plane: inject ring + stealable deque + steal group.

    The redesigned source of work each worker domain drains, replacing
    direct [Spsc_ring] plumbing in {!Parallel}.  Placement is
    unchanged — a dispatcher still JSQ-pushes into the worker's
    private inject ring ({!inject}, single producer per ring) — but
    the worker now moves injected items into its own {!Spmc_deque}
    ({!drain}) and admits them to execution one at a time ({!next}),
    so queued-but-unstarted work stays visible to idle siblings, which
    take half of the most-loaded deque in their group ({!try_steal}).

    Ownership rules: exactly one producer may {!inject}; only the
    owning worker domain may call {!drain}, {!next} and {!try_steal}
    (the deque is single-producer and [steal_into] targets the
    caller's own deque).  The steal group is a lane slice — thieves
    never cross it, preserving the multi-lane plane's partitioning. *)

type 'a t

(** [create ~wid ~capacity] — a source for worker [wid]; [capacity]
    bounds both the inject ring and the deque. *)
val create : wid:int -> capacity:int -> 'a t

(** Wire up the steal group (typically the worker's lane slice,
    including itself).  Call before the worker loop starts stealing;
    an unset group means {!try_steal} finds no victims. *)
val set_group : 'a t -> 'a t array -> unit

val wid : 'a t -> int

(** Producer side: push one item onto the inject ring.  [false] when
    the ring is full — the dispatcher's backpressure signal. *)
val inject : 'a t -> 'a -> bool

(** Owner side: move every currently injected item out of the ring —
    items satisfying [is_pinned] go straight to [submit] (they must
    never be stolen), the rest into the deque.  When the deque is
    full, overflow also goes to [submit]: admitted work is never lost,
    it merely stops being stealable.  Returns how many items moved. *)
val drain : 'a t -> is_pinned:('a -> bool) -> submit:('a -> unit) -> int

(** Owner side: admit the oldest stealable item, [None] when the
    deque is empty. *)
val next : 'a t -> 'a option

(** Owner side: steal half the deque of the most-loaded other member
    of the group into this source's deque.  [Some (victim_wid, moved)]
    on success; [None] when no sibling had stealable work (or the
    race was lost).  Accounting transfer is the caller's job. *)
val try_steal : 'a t -> (int * int) option

(** Items visible to thieves (deque occupancy). *)
val stealable : 'a t -> int

(** Injected-but-undrained items (inject-ring occupancy). *)
val inject_depth : 'a t -> int

(** Total queued-but-unstarted items: [inject_depth + stealable]. *)
val depth : 'a t -> int
