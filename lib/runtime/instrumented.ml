let default_probe_every = 64

let for_range ?(probe_every = default_probe_every) ~lo ~hi f =
  if probe_every <= 0 then invalid_arg "Instrumented.for_range: probe_every";
  let countdown = ref probe_every in
  for i = lo to hi - 1 do
    f i;
    decr countdown;
    if !countdown = 0 then begin
      countdown := probe_every;
      Probe_api.probe ()
    end
  done

let iter_array ?probe_every f arr =
  for_range ?probe_every ~lo:0 ~hi:(Array.length arr) (fun i -> f arr.(i))

let iter_list ?(probe_every = default_probe_every) f l =
  let countdown = ref probe_every in
  List.iter
    (fun x ->
      f x;
      decr countdown;
      if !countdown = 0 then begin
        countdown := probe_every;
        Probe_api.probe ()
      end)
    l

let fold_array ?probe_every f init arr =
  let acc = ref init in
  for_range ?probe_every ~lo:0 ~hi:(Array.length arr) (fun i -> acc := f !acc arr.(i));
  !acc

let repeat ?probe_every n f = for_range ?probe_every ~lo:0 ~hi:n (fun _ -> f ())

let with_cadence dist f =
  match Probe_api.current () with
  | None -> f ()
  | Some ctx ->
      Probe_api.set_cadence ctx (Some dist);
      Fun.protect ~finally:(fun () -> Probe_api.set_cadence ctx None) f

(* Busy-spin for [ns] of wall time (coarse; used only in wall mode). *)
let spin_wall ns =
  let start = Unix.gettimeofday () in
  let target = start +. (float_of_int ns /. 1e9) in
  while Unix.gettimeofday () < target do
    ()
  done

let work_ns ns =
  if ns < 0 then invalid_arg "Instrumented.work_ns: negative";
  (* Slice the work so probes happen at ~250ns granularity. *)
  let slice = 250 in
  let virtual_mode = Probe_api.installed_clock_is_virtual () in
  let remaining = ref ns in
  while !remaining > 0 do
    let step = min slice !remaining in
    remaining := !remaining - step;
    if virtual_mode then Probe_api.advance_virtual step else spin_wall step;
    Probe_api.probe ()
  done
