(** A worker core's scheduler loop over task fibers.

    Mirrors the paper's scheduler coroutine: keeps a run queue of busy
    task fibers, resumes the head for one quantum (binding the probe
    context first, like binding [call_the_yield]), and moves yielded
    tasks to the tail — processor sharing.  Maintains the finished-jobs
    and serviced-quanta counters the dispatcher reads. *)

type task = {
  task_id : int;
  class_idx : int;  (** request class, for per-class quantum lookup *)
  pinned : bool;
      (** pinned tasks must execute on the worker they were placed on;
          the queue plane ({!Work_source}) never exposes them to
          thieves.  The worker itself treats both kinds alike. *)
  work : wid:int -> unit;
      (** called with the id of the worker that actually executes it —
          equal to the placement target unless the task was stolen, so
          per-worker state (app instance, reply ring) must be resolved
          through [wid], never captured at placement time *)
}

type t

(** [obs] supplies the event tracer (quantum start/end, yields,
    completions on lane [Worker wid]) and counter registry; the default
    is disabled tracing.  [wid] is also what each task's [work ~wid]
    receives when it runs here.  Always-on profiling dists land in the
    registry: [runtime.quantum_len_ns] (wall length of every executed
    slice) and [runtime.overshoot_ns] (how far a forced yield ran past
    its quantum — the probe-granularity tax).  [track_probes]
    additionally registers [runtime.probe_gap_ns] and arms probe-cadence
    tracking on the worker's context ({!Probe_api.set_cadence}).
    [on_quantum] is called after every slice with the task id, wall
    start/end and whether the task completed — the hook the live server
    uses to emit per-request quantum spans and detect stalls.
    [class_quantum], when given, is consulted before every slice with
    the head task's [class_idx] and its result replaces the probe
    context's quantum for that slice — the live actuation point for
    feedback-controlled per-class quanta (the closure typically reads
    an [Atomic] the dispatcher writes). *)
val create :
  ?obs:Tq_obs.Obs.t ->
  ?wid:int ->
  ?track_probes:bool ->
  ?on_quantum:(task_id:int -> start_ns:int -> end_ns:int -> finished:bool -> unit) ->
  ?class_quantum:(class_idx:int -> int) ->
  clock:Clock.t ->
  quantum_ns:int ->
  on_finish:(task -> unit) ->
  unit ->
  t

(** [submit t task] enqueues a new task (wraps it in a fresh fiber). *)
val submit : t -> task -> unit

(** [run_slice t] executes one quantum of the head task; false when the
    queue is empty. *)
val run_slice : t -> bool

(** [run_until_idle t] drains the queue completely. *)
val run_until_idle : t -> unit

val queue_length : t -> int
val unfinished : t -> int
val finished_count : t -> int

(** Serviced quanta of tasks currently on the worker (MSQ). *)
val current_quanta : t -> int

val total_yields : t -> int
val clock : t -> Clock.t
