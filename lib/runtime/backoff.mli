(** Spin-then-park waiting for cross-domain handoff points.

    A domain that busy-waits with [Domain.cpu_relax] alone owns its
    kernel timeslice even when it has nothing to do.  On a machine with
    fewer cores than domains that is catastrophic: the spinner burns the
    milliseconds the {e other} domain needed to produce the very work it
    is waiting for, so throughput collapses to one ring's worth of jobs
    per context-switch round.

    This backoff spins for a bounded number of misses (covering the
    microsecond-scale gaps that matter when domains really do have their
    own cores, as in the paper's setting) and then parks in a short
    [Unix.sleepf], handing the core to whoever has work.  Under
    saturation the wait succeeds long before the spin limit and the park
    never happens. *)

type t

(** [create ?spin_limit ?park_s ()] — spin [spin_limit] times
    (default 200) before each park of [park_s] seconds (default 50 us). *)
val create : ?spin_limit:int -> ?park_s:float -> unit -> t

(** Forget accumulated misses — call after the awaited condition was
    observed, so the next wait starts in the cheap spinning regime. *)
val reset : t -> unit

(** One failed attempt: [cpu_relax] while under the spin limit, a
    parking sleep past it.  [reset] on success. *)
val once : t -> unit
