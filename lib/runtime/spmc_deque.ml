(* Single ring, two cursors: the owner bumps [tail] alone, every
   consumer (owner pop and thieves alike) claims indices by CAS on
   [head].  Each cell is its own Atomic so value publication orders
   with the cursor updates under the OCaml memory model, exactly as in
   Spsc_ring — the per-cell [None] check on the producer side is what
   upgrades the ring from SPSC to SPMC: a slow thief that has claimed
   an index but not yet cleared its cell blocks the producer from
   wrapping onto it, instead of being silently overwritten. *)
type 'a t = {
  cells : 'a option Atomic.t array;
  capacity : int;
  head : int Atomic.t;  (** consumer cursor, CAS-claimed by owner and thieves *)
  tail : int Atomic.t;  (** producer cursor, written by the owner only *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Spmc_deque.create: capacity must be positive";
  {
    cells = Array.init capacity (fun _ -> Atomic.make None);
    capacity;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let push t v =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head >= t.capacity then false
  else
    let cell = t.cells.(tail mod t.capacity) in
    match Atomic.get cell with
    | Some _ -> false (* a slow thief claimed this slot but has not cleared it *)
    | None ->
        Atomic.set cell (Some v);
        Atomic.set t.tail (tail + 1);
        true

(* A claimed index [i < tail] always holds a published value: the
   producer wrote the cell before bumping tail past [i], the CAS on
   head hands [i] to exactly one consumer, and the producer cannot
   have wrapped onto it (that would need head > i, i.e. this very
   claim, followed by the clear we have not done yet).  The relax loop
   is defensive depth only. *)
let take_cell cell =
  let rec go () =
    match Atomic.get cell with
    | Some v ->
        Atomic.set cell None;
        v
    | None ->
        Domain.cpu_relax ();
        go ()
  in
  go ()

let rec pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if head >= tail then None
  else if Atomic.compare_and_set t.head head (head + 1) then
    Some (take_cell t.cells.(head mod t.capacity))
  else pop t (* lost the cursor race to a thief; re-read *)

let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)
let capacity t = t.capacity

let steal_into t ~into =
  if t == into then 0
  else
    let rec attempt () =
      let head = Atomic.get t.head in
      let tail = Atomic.get t.tail in
      let avail = tail - head in
      if avail <= 0 then 0
      else begin
        (* Steal half, rounded up, bounded by the room in [into].  The
           occupancy of [into] can only shrink under us (its owner is
           this caller; other thieves only remove), so the bound holds
           through the copy loop. *)
        let want = avail - (avail / 2) in
        let space = into.capacity - length into in
        let k = min want space in
        if k <= 0 then 0
        else if Atomic.compare_and_set t.head head (head + k) then begin
          for i = head to head + k - 1 do
            let v = take_cell t.cells.(i mod t.capacity) in
            (* [push] can transiently refuse while a thief of [into]
               clears its claimed cell; that thief has already CASed
               the cursor, so the refusal resolves — spin, never drop. *)
            while not (push into v) do
              Domain.cpu_relax ()
            done
          done;
          k
        end
        else attempt () (* cursor moved under us; recompute the batch *)
      end
    in
    attempt ()
