type 'a t = {
  wid : int;
  inject : 'a Spsc_ring.t;
  deque : 'a Spmc_deque.t;
  mutable group : 'a t array;  (** lane slice; written once before stealing starts *)
}

let create ~wid ~capacity =
  {
    wid;
    inject = Spsc_ring.create ~capacity;
    deque = Spmc_deque.create ~capacity;
    group = [||];
  }

let set_group t group = t.group <- group
let wid t = t.wid
let inject t v = Spsc_ring.try_push t.inject v

let drain t ~is_pinned ~submit =
  let rec go n =
    match Spsc_ring.try_pop t.inject with
    | None -> n
    | Some v ->
        (* Pinned work must execute on this worker — it bypasses the
           deque entirely so no thief can relocate it.  Deque overflow
           takes the same bypass: better unstealable than lost. *)
        if is_pinned v then submit v
        else if not (Spmc_deque.push t.deque v) then submit v;
        go (n + 1)
  in
  go 0

let next t = Spmc_deque.pop t.deque

let try_steal t =
  (* Most-loaded victim in the group, by deque occupancy at scan time.
     The scan races with the victims' own progress, so the steal can
     still come up empty — the caller treats that as a failed attempt. *)
  let victim = ref None in
  let best = ref 0 in
  Array.iter
    (fun s ->
      if s.wid <> t.wid then begin
        let n = Spmc_deque.length s.deque in
        if n > !best then begin
          best := n;
          victim := Some s
        end
      end)
    t.group;
  match !victim with
  | None -> None
  | Some v ->
      let moved = Spmc_deque.steal_into v.deque ~into:t.deque in
      if moved > 0 then Some (v.wid, moved) else None

let stealable t = Spmc_deque.length t.deque
let inject_depth t = Spsc_ring.length t.inject
let depth t = inject_depth t + stealable t
