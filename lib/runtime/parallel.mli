(** Multi-domain TQ executor: real parallelism as a persistent service.

    One dispatcher (the thread that created the handle) load-balances
    jobs over worker domains through per-worker {!Work_source}s (inject
    ring + stealable deque), using JSQ on the workers' atomic
    assigned/finished counters; each worker domain runs the
    forced-multitasking scheduler loop over its own fibers with a wall
    clock.  Each worker drains its inject ring into its own deque and
    admits one task per loop pass, so queued-but-unstarted work stays
    visible to siblings; with [steal] on, an idle worker takes half of
    the most-loaded deque in its lane slice — a second chance under the
    dispatcher's first-choice placement.

    The handle is persistent: workers are spawned by {!create} and keep
    polling their sources until {!shutdown}, so a server can submit
    requests for its whole lifetime instead of draining one fixed batch.
    The inject rings are single-producer {e per worker}: at any moment,
    at most one thread may {!submit_to} a given worker — either one
    global dispatcher thread owns every ring (the classic layout), or
    the worker set is partitioned into disjoint slices with one producer
    each (the multi-lane serve plane, which steers inside its slice with
    {!pick_in}).  Any thread may read the counters.

    Fidelity caveats (DESIGN.md): wall-clock quanta include OCaml GC
    pauses, and the per-domain minor heaps make this a demonstration of
    the mechanism rather than a microsecond-accurate testbed. *)

type stats = {
  completed : int;
  yields : int;  (** total across workers *)
  per_worker_finished : int array;
}

(** A running pool of worker domains. *)
type t

(** [create ~workers ~quantum_ns ~ring_capacity ()] spawns the worker
    domains (default 4) and returns immediately.  Each worker multitasks
    its admitted jobs with forced yields every [quantum_ns] (default
    100 us) of wall-clock time; [ring_capacity] (default 256) bounds
    each dispatcher->worker inject ring and its stealable deque — a
    full ring is the backpressure signal {!submit} reports.

    Work stealing (default off): [steal] arms idle-time stealing —
    a worker whose inject ring, deque and fiber queue are all empty
    takes half of the most-loaded sibling deque in its steal group
    before parking.  [lanes] (default 1) shapes the groups: worker [w]
    may only rob siblings with the same [w mod lanes], matching the
    multi-lane serve plane's slices so stolen work never crosses a
    lane.  Only unpinned tasks ({!submit_to}) are ever stolen, and only
    while queued-but-unstarted; accounting credit moves with the task
    (thief first), so {!in_flight} and {!drain} stay exact.  Steals
    land in the thief's counters ([runtime.steals],
    [runtime.steal_items], [runtime.steal_failures]) and, when spans
    are on, as a [Steal] span on the thief's lane with the victim's
    index in [arg].

    Observability hooks (all default off / zero-cost):
    - [spans] — each worker registers a {!Tq_obs.Span} sink on its lane
      and records a [Quantum] span per executed slice (the span's
      [req_id] is the job's submit tag) plus a [Ring_hop] instant when a
      job lands on the core; disabled collections cost one branch.
    - [worker_counters] — one {!Tq_obs.Counters} registry per worker
      (array length must equal [workers]), each owned by its worker
      domain per the Counters ownership rule; quantum-length, overshoot
      and probe-cadence distributions land there.  Aggregate with
      [Counters.merged].
    - [stall_threshold_ns] (default [10 * quantum_ns]) — a wall-clock
      gap larger than this between consecutive busy slices on one worker
      counts as a stall (GC pause / OS preemption): bumped on
      [runtime.stalls], observed in [runtime.stall_gap_ns], and recorded
      as a [Stall] span when spans are on.  Idle waiting never counts.
    - [gc_pause_ns] — a per-domain cumulative GC pause clock (wire
      [Tq_obs.Gc_events.self_pause_ns]); each worker calls it from its
      own domain at quantum boundaries to attribute stalls: a gap at
      least half explained by GC pause growth bumps [runtime.stall_gc],
      otherwise [runtime.stall_other].  Without the hook every stall
      lands in [runtime.stall_unknown] and the quantum path pays one
      extra branch, nothing else. *)
val create :
  ?workers:int ->
  ?quantum_ns:int ->
  ?ring_capacity:int ->
  ?classes:int ->
  ?lanes:int ->
  ?steal:bool ->
  ?spans:Tq_obs.Span.t ->
  ?worker_counters:Tq_obs.Counters.t array ->
  ?stall_threshold_ns:int ->
  ?gc_pause_ns:(unit -> int) ->
  unit ->
  t

(** Number of worker domains ([classes] in {!create} sizes the
    per-class quantum override table read by {!set_quantum}). *)
val workers : t -> int

(** [pick t] — the least-loaded worker right now (JSQ over
    assigned-minus-finished), skipping workers marked dead by
    {!mark_dead}.  Raises [Invalid_argument] when every worker is
    dead. *)
val pick : t -> int

(** [pick_in t ~workers] — JSQ restricted to the worker indices in
    [workers] (a dispatcher lane's slice), skipping dead workers.
    Raises [Invalid_argument] when every listed worker is dead or an
    index is out of range. *)
val pick_in : t -> workers:int array -> int

(** [alive_in t ~workers] — how many of the listed workers are not
    marked dead (out-of-range indices count as dead). *)
val alive_in : t -> workers:int array -> int

(** [submit_to t ?tag ?class_idx ?pinned ~worker job] — push [job]
    onto [worker]'s inject ring; [false] when the ring is full (shed or
    retry — nothing was enqueued).  The job receives the id of the
    worker that {e executes} it ([job ~wid]): with stealing off (or
    [pinned]) that is always [worker], with stealing on an unpinned job
    may run on another worker in the same lane slice, so per-worker
    state must be resolved through [wid] rather than captured at
    submission.  [pinned] (default false) exempts the job from stealing
    — required when the job touches state only [worker] may own (the
    server pins key-steered requests).  [tag] labels the job in
    worker-side observability (span [req_id], trace job id); the server
    passes its request id so worker quanta stitch to dispatcher spans.
    Untagged jobs get a pool-unique id.  [class_idx] (default 0)
    selects the job's quantum class for {!set_quantum} overrides.
    Raises [Invalid_argument] after {!shutdown} or for an out-of-range
    worker. *)
val submit_to :
  t -> ?tag:int -> ?class_idx:int -> ?pinned:bool -> worker:int ->
  (wid:int -> unit) -> bool

(** [submit t ?tag ?class_idx job] =
    [submit_to t ?tag ?class_idx ~worker:(pick t) job]. *)
val submit : t -> ?tag:int -> ?class_idx:int -> (wid:int -> unit) -> bool

(** {2 Live actuation}

    The running pool's quantum knobs, writable from the dispatcher
    while workers serve: each worker re-reads them (two atomic loads)
    before every slice, so a retune lands within one quantum without
    pausing anything.  This is the actuation surface the feedback
    controller drives. *)

(** [set_quantum t ?class_idx ~quantum_ns ()] — with [class_idx], set
    that class's override (ignored when out of the [classes] range
    given to {!create}); without, set the shared base quantum and clear
    every per-class override.  Raises [Invalid_argument] on a
    non-positive quantum. *)
val set_quantum : t -> ?class_idx:int -> quantum_ns:int -> unit -> unit

(** The quantum a slice of [class_idx] (default: base) would run with
    right now. *)
val quantum_ns : t -> ?class_idx:int -> unit -> int

(** {2 Fault hooks and worker health}

    The live fault plane: the same failure modes the DES injector
    models ({!Tq_fault.Injector}), inflicted on real domains.  The pool
    only provides mechanisms — detection and re-dispatch policy live in
    the dispatcher (see {!Tq_serve.Server}'s heartbeat monitor). *)

(** [beats t ~worker] — the worker's loop-pass heartbeat counter.  A
    worker that is executing, polling or backing off beats continuously;
    one that is killed, stalled or wedged stops.  Monotone; sample and
    difference to detect progress. *)
val beats : t -> worker:int -> int

(** [stall_worker t ~worker ~duration_ns ~now_ns] — make the worker
    busy-occupy its core (no service, no heartbeat) until
    [now_ns + duration_ns] on its wall clock: a CPU antagonist /
    stuck-worker fault.  The worker resumes by itself. *)
val stall_worker : t -> worker:int -> duration_ns:int -> now_ns:int -> unit

(** [kill_worker t ~worker] — the worker domain exits at its next loop
    pass, abandoning its ring and run queue (jobs neither execute nor
    complete).  Permanent; detection and recovery are the dispatcher's
    job. *)
val kill_worker : t -> worker:int -> unit

(** [mark_dead t ~worker] — the dispatcher's verdict after missed
    heartbeats: exclude the worker from {!pick}, {!in_flight} and
    {!alive_workers} so scheduling and drain proceed without it.
    Returns the worker's admitted-but-unfinished count at the verdict
    (the jobs the caller must re-dispatch); 0 if already dead. *)
val mark_dead : t -> worker:int -> int

(** [worker_alive t ~worker] — [false] once {!mark_dead} was called. *)
val worker_alive : t -> worker:int -> bool

(** Workers not marked dead. *)
val alive_workers : t -> int

(** Jobs admitted but not yet finished, pool-wide (queued on rings,
    queued on workers, or mid-quantum). *)
val in_flight : t -> int

(** Per-worker admitted-but-unfinished count — what {!pick} minimizes
    and ring-depth admission control reads. *)
val worker_in_flight : t -> worker:int -> int

(** Queued-but-unstarted jobs on [worker]'s source (inject ring plus
    stealable deque; excludes jobs already admitted to the worker's
    fiber queue). *)
val ring_depth : t -> worker:int -> int

(** The inject-ring component of {!ring_depth} alone — jobs pushed by
    the dispatcher that the worker has not yet drained.  Sampled into
    tail dossiers as the queue state a slow request saw at dispatch. *)
val inject_depth : t -> worker:int -> int

(** The stealable-deque component of {!ring_depth} alone — drained
    jobs visible to sibling thieves.  Sampled into tail dossiers
    alongside {!inject_depth}. *)
val deque_depth : t -> worker:int -> int

(** Live snapshot of the pool's counters (safe from any thread). *)
val stats : t -> stats

(** [drain t] blocks until {!in_flight} reaches zero.  Only meaningful
    once the producer has stopped submitting; jobs already admitted all
    finish — the zero-loss half of graceful shutdown. *)
val drain : t -> unit

(** [shutdown t] drains, stops the workers, joins their domains and
    returns the final counters.  Idempotent; the handle rejects
    submissions afterwards.

    (The historical [run] batch wrapper is gone: hold a handle and use
    {!create} / {!submit} / {!drain} / {!shutdown} directly.) *)
val shutdown : t -> stats
