(** Multi-domain TQ executor: real parallelism as a persistent service.

    One dispatcher (the thread that created the handle) load-balances
    jobs over worker domains through SPSC rings, using JSQ on the
    workers' atomic assigned/finished counters; each worker domain runs
    the forced-multitasking scheduler loop over its own fibers with a
    wall clock.

    The handle is persistent: workers are spawned by {!create} and keep
    polling their rings until {!shutdown}, so a server can submit
    requests for its whole lifetime instead of draining one fixed batch.
    Exactly one thread may call {!submit}/{!submit_to} (the rings are
    single-producer); any thread may read the counters.

    Fidelity caveats (DESIGN.md): wall-clock quanta include OCaml GC
    pauses, and the per-domain minor heaps make this a demonstration of
    the mechanism rather than a microsecond-accurate testbed. *)

type stats = {
  completed : int;
  yields : int;  (** total across workers *)
  per_worker_finished : int array;
}

(** A running pool of worker domains. *)
type t

(** [create ~workers ~quantum_ns ~ring_capacity ()] spawns the worker
    domains (default 4) and returns immediately.  Each worker multitasks
    its admitted jobs with forced yields every [quantum_ns] (default
    100 us) of wall-clock time; [ring_capacity] (default 256) bounds
    each dispatcher->worker ring — a full ring is the backpressure
    signal {!submit} reports. *)
val create : ?workers:int -> ?quantum_ns:int -> ?ring_capacity:int -> unit -> t

(** Number of worker domains. *)
val workers : t -> int

(** [pick t] — the least-loaded worker right now (JSQ over
    assigned-minus-finished). *)
val pick : t -> int

(** [submit_to t ~worker job] — push [job] onto [worker]'s ring; [false]
    when the ring is full (shed or retry — nothing was enqueued).
    Raises [Invalid_argument] after {!shutdown} or for an out-of-range
    worker. *)
val submit_to : t -> worker:int -> (unit -> unit) -> bool

(** [submit t job] = [submit_to t ~worker:(pick t) job]. *)
val submit : t -> (unit -> unit) -> bool

(** Jobs admitted but not yet finished, pool-wide (queued on rings,
    queued on workers, or mid-quantum). *)
val in_flight : t -> int

(** Per-worker admitted-but-unfinished count — what {!pick} minimizes
    and ring-depth admission control reads. *)
val worker_in_flight : t -> worker:int -> int

(** Occupancy of [worker]'s dispatch ring alone (excludes jobs already
    drained onto the worker's run queue). *)
val ring_depth : t -> worker:int -> int

(** Live snapshot of the pool's counters (safe from any thread). *)
val stats : t -> stats

(** [drain t] blocks until {!in_flight} reaches zero.  Only meaningful
    once the producer has stopped submitting; jobs already admitted all
    finish — the zero-loss half of graceful shutdown. *)
val drain : t -> unit

(** [shutdown t] drains, stops the workers, joins their domains and
    returns the final counters.  Idempotent; the handle rejects
    submissions afterwards. *)
val shutdown : t -> stats

(** [run ~workers ~quantum_ns jobs] dispatches every job, waits for
    completion and tears the domains down.  Jobs must be thread-safe.

    Deprecated: this batch entry point survives as a thin wrapper over
    the persistent handle ({!create} / {!submit} / {!shutdown}); new
    code — anything that serves traffic rather than draining a fixed
    array — should hold a handle and use {!create}, {!drain} and
    {!shutdown} directly. *)
val run :
  ?workers:int -> ?quantum_ns:int -> ?ring_capacity:int -> (unit -> unit) array -> stats
