(** Field-by-field comparison of two BENCH_*.json reports with
    per-metric noise tolerances — the engine behind [tq_bench_diff].

    The comparison walks the baseline's scalar leaves (dotted paths,
    see {!Json.leaves}).  Numbers compare under a relative tolerance
    chosen by the first matching glob rule (['*'] matches any run of
    characters), strings and booleans must match exactly, fields the
    fresh report lost are failures, fields it gained are warnings.
    Reports with different [schema_version]s are refused outright. *)

(** Finding severity: [Fail] gates, [Warn] reports, [Info] records a
    passing comparison. *)
type severity = Fail | Warn | Info

(** One comparison outcome for one dotted path. *)
type finding = { severity : severity; path : string; message : string }

(** Tolerance configuration; see each field's doc. *)
type config = {
  default_rel : float;  (** relative tolerance for unmatched numeric paths *)
  abs_eps : float;  (** absolute slack under which any numeric diff passes *)
  rules : (string * float) list;  (** glob pattern -> relative tolerance, first match wins *)
  bounds : (string * float) list;  (** glob pattern -> max allowed fresh value (hard gate) *)
  ignore_paths : string list;  (** glob patterns excluded from comparison *)
}

(** 25% default relative tolerance, no rules, no bounds, nothing
    ignored ([generated_at] is always ignored). *)
val default_config : config

(** [glob_match pattern s] — ['*']-glob matching, everything else
    literal.  Exposed for tests and the CLI's rule validation. *)
val glob_match : string -> string -> bool

(** [compare ?config ~baseline ~fresh ()] — every finding, in baseline
    document order (bounds checked last).  The first finding is an
    [Info] on [generated_at] rendering the age gap between the two
    reports as a human-readable duration ({!Bench_meta.parse_iso8601}
    / {!Bench_meta.humanize_duration}) — it never gates, but a stale
    baseline is the first alternative hypothesis for a drift. *)
val compare : ?config:config -> baseline:Json.t -> fresh:Json.t -> unit -> finding list

(** [passed findings] — no [Fail] finding present. *)
val passed : finding list -> bool

(** [render ?verbose findings] — human-readable report; [verbose]
    includes passing comparisons (default: failures and warnings only,
    plus — in a failing report — the [generated_at] age line), final
    line is "PASS: ..." or "FAIL: ...". *)
val render : ?verbose:bool -> finding list -> string
