(* Shared provenance header for every emitted BENCH_*.json.

   tq_bench_diff refuses to compare reports whose schema_version
   differs from its own, so the version must bump whenever a report's
   field meanings change incompatibly.  generated_at records when the
   numbers were measured (ISO-8601 UTC) and is ignored by the diff. *)

let schema_version = 2

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let generated_at () = iso8601 (Unix.gettimeofday ())

let parse_iso8601 s =
  match
    Scanf.sscanf_opt s "%4d-%2d-%2dT%2d:%2d:%2dZ%!" (fun y m d hh mm ss ->
        (y, m, d, hh, mm, ss))
  with
  | None -> None
  | Some (y, m, d, hh, mm, ss) ->
      if m < 1 || m > 12 || d < 1 || d > 31 || hh > 23 || mm > 59 || ss > 60
      then None
      else begin
        (* days-from-civil: proleptic Gregorian date to days since the
           Unix epoch, pure integer math (no timegm portability trap).
           March-based year so the leap day lands last. *)
        let y = if m <= 2 then y - 1 else y in
        let era = (if y >= 0 then y else y - 399) / 400 in
        let yoe = y - (era * 400) in
        let mp = (m + 9) mod 12 in
        let doy = ((153 * mp) + 2) / 5 + d - 1 in
        let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
        let days = (era * 146097) + doe - 719468 in
        Some
          ((float_of_int days *. 86400.)
          +. float_of_int ((hh * 3600) + (mm * 60) + ss))
      end

let humanize_duration secs =
  let s = Float.abs secs in
  if s < 1.0 then Printf.sprintf "%.0fms" (s *. 1e3)
  else if s < 60. then Printf.sprintf "%.0fs" s
  else
    let m = int_of_float (s /. 60.) in
    if m < 60 then Printf.sprintf "%dm %02ds" m (int_of_float s mod 60)
    else
      let h = m / 60 in
      if h < 24 then Printf.sprintf "%dh %02dm" h (m mod 60)
      else Printf.sprintf "%dd %dh" (h / 24) (h mod 24)

let json_fields ?(indent = "  ") () =
  Printf.sprintf "%s\"schema_version\": %d,\n%s\"generated_at\": \"%s\",\n" indent
    schema_version indent (generated_at ())
