(* Shared provenance header for every emitted BENCH_*.json.

   tq_bench_diff refuses to compare reports whose schema_version
   differs from its own, so the version must bump whenever a report's
   field meanings change incompatibly.  generated_at records when the
   numbers were measured (ISO-8601 UTC) and is ignored by the diff. *)

let schema_version = 2

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let generated_at () = iso8601 (Unix.gettimeofday ())

let json_fields ?(indent = "  ") () =
  Printf.sprintf "%s\"schema_version\": %d,\n%s\"generated_at\": \"%s\",\n" indent
    schema_version indent (generated_at ())
