(** Minimal JSON reader/writer for the BENCH_*.json reports.

    The benchmark reports are emitted by hand throughout the repo;
    [tq_bench_diff] reads them back to compare a fresh run against the
    committed baseline.  Numbers parse as floats — the precision the
    diff tolerances work at. *)

(** A parsed JSON value.  Object member order is preserved. *)
type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [of_string s] parses one complete JSON value (trailing whitespace
    allowed, trailing garbage is an error). *)
val of_string : string -> (t, string) result

(** [of_file path] reads and parses [path]. *)
val of_file : string -> (t, string) result

(** [to_string v] renders [v] on one line (stable member order). *)
val to_string : t -> string

(** [member name v] — the named member of an object, [None] for missing
    members and non-objects. *)
val member : string -> t -> t option

(** [number_opt v] — the float behind a [Number]. *)
val number_opt : t -> float option

(** [string_opt v] — the string behind a [String]. *)
val string_opt : t -> string option

(** [leaves v] — every scalar leaf of [v] with its dotted path
    ("latency.all.p99_us", list indices as segments: "points.2.rps"),
    in document order. *)
val leaves : t -> (string * t) list
