(* A minimal JSON reader/writer for the BENCH_*.json reports.

   The repo emits its benchmark reports by hand (Printf into a Buffer)
   and, until now, never read them back.  tq_bench_diff needs to: it
   loads a freshly generated report and the committed baseline and
   compares them field by field.  This is a small recursive-descent
   parser over the full JSON grammar — numbers parse as floats, which
   is exactly the precision the diff tolerances work at. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { s : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  skip_ws st;
  match peek st with
  | Some x when x = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected %C" c)

let literal st word v =
  if
    st.pos + String.length word <= String.length st.s
    && String.sub st.s st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    v
  end
  else error st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then error st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    if c = '"' then Buffer.contents b
    else if c = '\\' then begin
      (if st.pos >= String.length st.s then error st "unterminated escape";
       let e = st.s.[st.pos] in
       st.pos <- st.pos + 1;
       match e with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'n' -> Buffer.add_char b '\n'
       | 't' -> Buffer.add_char b '\t'
       | 'r' -> Buffer.add_char b '\r'
       | 'b' -> Buffer.add_char b '\b'
       | 'f' -> Buffer.add_char b '\012'
       | 'u' ->
           if st.pos + 4 > String.length st.s then error st "bad \\u escape";
           let hex = String.sub st.s st.pos 4 in
           st.pos <- st.pos + 4;
           let code =
             match int_of_string_opt ("0x" ^ hex) with
             | Some c -> c
             | None -> error st "bad \\u escape"
           in
           (* Enough unicode for report files: BMP code points as UTF-8. *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
       | _ -> error st "unknown escape");
      go ()
    end
    else begin
      Buffer.add_char b c;
      go ()
    end
  in
  go ()

let parse_number st =
  let start = st.pos in
  let num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.s && num_char st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  match float_of_string_opt (String.sub st.s start (st.pos - start)) with
  | Some f -> Number f
  | None -> error st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let key = parse_string st in
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((key, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((key, v) :: acc)
          | _ -> error st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> error st "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then Result.Error "trailing garbage after JSON value"
      else Result.Ok v
  | exception Parse_error msg -> Result.Error msg

let of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> of_string contents
  | exception Sys_error msg -> Result.Error msg

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Number f -> number_to_string f
  | String s -> "\"" ^ escape s ^ "\""
  | List l -> "[" ^ String.concat ", " (List.map to_string l) ^ "]"
  | Obj members ->
      "{"
      ^ String.concat ", "
          (List.map (fun (k, v) -> "\"" ^ escape k ^ "\": " ^ to_string v) members)
      ^ "}"

let member name = function
  | Obj members -> List.assoc_opt name members
  | _ -> None

let number_opt = function Number f -> Some f | _ -> None
let string_opt = function String s -> Some s | _ -> None

(* Dotted paths into the tree, list indices as path segments:
   "latency.all.p99_us", "points.2.goodput_ratio". *)
let rec flatten ?(prefix = "") v acc =
  let key k = if prefix = "" then k else prefix ^ "." ^ k in
  match v with
  | Obj members ->
      List.fold_left (fun acc (k, v) -> flatten ~prefix:(key k) v acc) acc members
  | List l ->
      List.fold_left
        (fun (acc, i) v -> (flatten ~prefix:(key (string_of_int i)) v acc, i + 1))
        (acc, 0) l
      |> fst
  | leaf -> (prefix, leaf) :: acc

let leaves v = List.rev (flatten v [])
