(* Field-by-field comparison of two BENCH_*.json reports.

   The committed baselines are regression anchors, not exact replays:
   every metric is noisy at some scale, so each numeric field gets a
   relative tolerance (per-metric rules, first match wins, glob '*'
   patterns) and the comparison is over the baseline's leaves — a field
   the baseline has and the fresh run lost is a schema break, a field
   only the fresh run has is a warning.  Reports whose schema_version
   differ are refused outright: tolerances are meaningless across
   layouts. *)

type severity = Fail | Warn | Info

type finding = { severity : severity; path : string; message : string }

type config = {
  default_rel : float;  (** relative tolerance for unmatched numeric paths *)
  abs_eps : float;  (** absolute slack under which any numeric diff passes *)
  rules : (string * float) list;  (** glob pattern -> relative tolerance *)
  bounds : (string * float) list;  (** glob pattern -> max allowed fresh value *)
  ignore_paths : string list;  (** glob patterns compared not at all *)
}

let default_config =
  {
    default_rel = 0.25;
    abs_eps = 1e-9;
    rules = [];
    bounds = [];
    ignore_paths = [];
  }

(* Glob with '*' as "any run of characters"; everything else literal. *)
let glob_match pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoized on (pi, si) via a simple matrix *)
  let memo = Array.make_matrix (np + 1) (ns + 1) None in
  let rec go pi si =
    match memo.(pi).(si) with
    | Some r -> r
    | None ->
        let r =
          if pi = np then si = ns
          else
            match pattern.[pi] with
            | '*' -> go (pi + 1) si || (si < ns && go pi (si + 1))
            | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
        in
        memo.(pi).(si) <- Some r;
        r
  in
  go 0 0

let first_match rules path =
  List.find_map
    (fun (pattern, v) -> if glob_match pattern path then Some v else None)
    rules

let ignored config path =
  path = "generated_at"
  || String.length path > 13
     && String.sub path (String.length path - 13) 13 = ".generated_at"
  || List.exists (fun p -> glob_match p path) config.ignore_paths

let schema_version_of json =
  Option.bind (Json.member "schema_version" json) Json.number_opt
  |> Option.map int_of_float

(* One report pair.  Returns findings most severe first within each
   path, in baseline document order. *)
let compare ?(config = default_config) ~baseline ~fresh () =
  match (schema_version_of baseline, schema_version_of fresh) with
  | None, _ ->
      [ { severity = Fail; path = "schema_version";
          message = "baseline has no schema_version (regenerate it)" } ]
  | _, None ->
      [ { severity = Fail; path = "schema_version";
          message = "fresh report has no schema_version" } ]
  | Some b, Some f when b <> f ->
      [ { severity = Fail; path = "schema_version";
          message = Printf.sprintf "schema mismatch: baseline v%d, fresh v%d" b f } ]
  | Some _, Some _ ->
      let base_leaves = Json.leaves baseline in
      let fresh_leaves = Json.leaves fresh in
      let fresh_tbl = Hashtbl.create 64 in
      List.iter (fun (p, v) -> Hashtbl.replace fresh_tbl p v) fresh_leaves;
      let findings = ref [] in
      let emit severity path message = findings := { severity; path; message } :: !findings in
      (* generated_at never gates, but its delta is the first thing a
         human wants in a mismatch report: a stale baseline explains a
         drift that a code change does not. *)
      let gen_at json =
        Option.bind (Json.member "generated_at" json) Json.string_opt
      in
      (match (gen_at baseline, gen_at fresh) with
      | Some b, Some f -> (
          match (Bench_meta.parse_iso8601 b, Bench_meta.parse_iso8601 f) with
          | Some tb, Some tf ->
              let delta = tf -. tb in
              emit Info "generated_at"
                (if Float.abs delta < 1.0 then "reports generated together"
                 else
                   Printf.sprintf "baseline is %s %s than the fresh report"
                     (Bench_meta.humanize_duration delta)
                     (if delta >= 0.0 then "newer" else "older"))
          | _ ->
              emit Info "generated_at"
                (Printf.sprintf "unparsable stamp (baseline %S, fresh %S)" b f))
      | _ -> ());
      List.iter
        (fun (path, bv) ->
          if not (ignored config path) then
            match Hashtbl.find_opt fresh_tbl path with
            | None -> emit Fail path "present in baseline, missing from fresh report"
            | Some fv -> (
                match (bv, fv) with
                | Json.Number b, Json.Number f ->
                    let diff = Float.abs (b -. f) in
                    let rel = diff /. Float.max (Float.abs b) (Float.max (Float.abs f) 1e-12) in
                    let tol =
                      Option.value (first_match config.rules path)
                        ~default:config.default_rel
                    in
                    if diff <= config.abs_eps || rel <= tol then
                      emit Info path
                        (Printf.sprintf "%g -> %g (%.1f%% <= %.0f%% tolerance)" b f
                           (100.0 *. rel) (100.0 *. tol))
                    else
                      emit Fail path
                        (Printf.sprintf "%g -> %g (%.1f%% exceeds %.0f%% tolerance)" b
                           f (100.0 *. rel) (100.0 *. tol))
                | Json.String b, Json.String f ->
                    if b = f then emit Info path "matches"
                    else emit Fail path (Printf.sprintf "%S -> %S" b f)
                | Json.Bool b, Json.Bool f ->
                    if b = f then emit Info path "matches"
                    else emit Fail path (Printf.sprintf "%b -> %b" b f)
                | Json.Null, Json.Null -> emit Info path "matches"
                | _ -> emit Fail path "value kind changed"))
        base_leaves;
      List.iter
        (fun (path, _) ->
          if
            (not (ignored config path))
            && not (List.mem_assoc path base_leaves)
          then emit Warn path "new field not present in baseline")
        fresh_leaves;
      (* Upper bounds apply to the fresh report only — hard gates like
         "disabled-path overhead stays 0". *)
      List.iter
        (fun (pattern, max_v) ->
          let hit = ref false in
          List.iter
            (fun (path, v) ->
              if glob_match pattern path then begin
                hit := true;
                match v with
                | Json.Number f ->
                    if f <= max_v then
                      emit Info path (Printf.sprintf "%g within bound %g" f max_v)
                    else
                      emit Fail path (Printf.sprintf "%g exceeds bound %g" f max_v)
                | _ -> emit Fail path "bound on a non-numeric field"
              end)
            fresh_leaves;
          if not !hit then
            emit Fail pattern "bound pattern matched no field in the fresh report")
        config.bounds;
      List.rev !findings

let passed findings = not (List.exists (fun f -> f.severity = Fail) findings)

let severity_name = function Fail -> "FAIL" | Warn -> "warn" | Info -> "ok"

let render ?(verbose = false) findings =
  let b = Buffer.create 512 in
  let fails = List.filter (fun f -> f.severity = Fail) findings in
  let warns = List.filter (fun f -> f.severity = Warn) findings in
  List.iter
    (fun f ->
      (* The generated_at age line always prints in a mismatch report:
         baseline staleness is the first alternative hypothesis. *)
      if
        verbose || f.severity <> Info
        || (f.path = "generated_at" && fails <> [])
      then
        Buffer.add_string b
          (Printf.sprintf "%-4s %-40s %s\n" (severity_name f.severity) f.path
             f.message))
    findings;
  Buffer.add_string b
    (Printf.sprintf "%s: %d compared, %d failed, %d warnings\n"
       (if fails = [] then "PASS" else "FAIL")
       (List.length findings) (List.length fails) (List.length warns));
  Buffer.contents b
