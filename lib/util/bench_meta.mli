(** Shared provenance header for every emitted BENCH_*.json report.

    Each report opens with a [schema_version] (so {!Bench_diff} can
    refuse mismatched layouts) and a [generated_at] ISO-8601 UTC
    timestamp (ignored by the diff). *)

(** The report layout generation every emitter stamps.  Bump on any
    incompatible change to a report's field meanings. *)
val schema_version : int

(** [iso8601 t] — Unix time [t] as "YYYY-MM-DDTHH:MM:SSZ" (UTC). *)
val iso8601 : float -> string

(** [generated_at ()] — the current wall-clock time as ISO-8601 UTC. *)
val generated_at : unit -> string

(** [parse_iso8601 s] — the inverse of {!iso8601}: Unix seconds from
    "YYYY-MM-DDTHH:MM:SSZ" (proleptic Gregorian, pure integer date
    math — no [timegm] portability trap).  [None] on anything that is
    not exactly that shape. *)
val parse_iso8601 : string -> float option

(** [humanize_duration secs] — a duration (sign ignored) at two-unit
    precision: ["850ms"], ["42s"], ["5m 07s"], ["3h 20m"], ["12d 4h"].
    How {!Bench_diff} renders the age gap between two reports'
    [generated_at] stamps. *)
val humanize_duration : float -> string

(** [json_fields ?indent ()] — the two header lines
    ["schema_version": N,] and ["generated_at": "...",] each prefixed
    with [indent] (default two spaces) and newline-terminated, ready to
    splice right after an emitter's opening brace. *)
val json_fields : ?indent:string -> unit -> string
