module Deque = Tq_util.Ring_deque

(* [real] distinguishes served items from [occupy] blackouts, which burn
   server time but are not work. *)
type pending = { cost : int; run : unit -> unit; real : bool }

type 'a t = {
  sim : Sim.t;
  queue : pending Deque.t;
  mutable busy : bool;
  mutable busy_time : int;
  mutable served : int;
}

let create sim () =
  { sim; queue = Deque.create (); busy = false; busy_time = 0; served = 0 }

let rec start_next t =
  match Deque.pop_front t.queue with
  | None -> t.busy <- false
  | Some p ->
      t.busy <- true;
      ignore
        (Sim.schedule_after t.sim ~delay:p.cost (fun () ->
             t.busy_time <- t.busy_time + p.cost;
             if p.real then t.served <- t.served + 1;
             p.run ();
             start_next t)
          : Sim.event)

let submit t ~cost item ~done_ =
  if cost < 0 then invalid_arg "Busy_server.submit: negative cost";
  Deque.push_back t.queue { cost; run = (fun () -> done_ item); real = true };
  if not t.busy then start_next t

let occupy t ~cost =
  if cost < 0 then invalid_arg "Busy_server.occupy: negative cost";
  (* Front of the queue: the blackout starts as soon as the op in
     service (if any) finishes, ahead of all waiting work — an outage
     does not politely queue behind pending requests. *)
  Deque.push_front t.queue { cost; run = ignore; real = false };
  if not t.busy then start_next t

let queue_length t = Deque.length t.queue
let busy t = t.busy
let busy_time t = t.busy_time
let served t = t.served
