(** Discrete-event simulation core.

    Virtual time is integer nanoseconds.  Events are closures ordered by
    (timestamp, insertion sequence), so equal-time events execute in the
    order they were scheduled — this makes every experiment bit-for-bit
    reproducible for a fixed PRNG seed.

    An event closure may schedule further events and may cancel pending
    ones.  Cancellation is lazy: a cancelled event stays in the heap but
    is skipped when popped. *)

type t

(** Handle for cancelling a scheduled event. *)
type event

val create : unit -> t

(** [now t] is the current virtual time in nanoseconds. *)
val now : t -> int

(** [schedule_at t ~time f] runs [f ()] at absolute [time]; scheduling in
    the past raises [Invalid_argument]. *)
val schedule_at : t -> time:int -> (unit -> unit) -> event

(** [schedule_after t ~delay f] runs [f ()] at [now t + delay]. *)
val schedule_after : t -> delay:int -> (unit -> unit) -> event

(** [cancel ev] prevents a pending event from firing; cancelling a fired
    or already-cancelled event is a no-op. *)
val cancel : event -> unit

(** [cancelled ev] reports whether [cancel] was called. *)
val cancelled : event -> bool

(** Handle for a repeating event installed with {!periodic}. *)
type periodic

(** [periodic t ?until ~interval f] runs [f ()] every [interval] ns of
    virtual time, first at [now t + interval].  With [until], no firing
    is scheduled past that absolute time — always bound or {!stop_periodic}
    a periodic, otherwise the event heap never drains and [run] without
    [until] spins forever.  Replaces the hand-rolled self-rescheduling
    closures that heartbeat/sampler code used to build on
    {!schedule_after}. *)
val periodic : t -> ?until:int -> interval:int -> (unit -> unit) -> periodic

(** [stop_periodic p] cancels the repeating event; it will never fire
    again.  Idempotent. *)
val stop_periodic : periodic -> unit

(** [periodic_fired p] counts completed firings (diagnostics/tests). *)
val periodic_fired : periodic -> int

(** [run ?until t] processes events in timestamp order until the queue is
    empty or the next event is strictly after [until].  Time stops at the
    last executed event (or at [until] if given and later). *)
val run : ?until:int -> t -> unit

(** [step t] executes the next non-cancelled event; false when drained. *)
val step : t -> bool

(** [pending t] counts events in the heap, including cancelled ones. *)
val pending : t -> int

(** [events_processed t] counts executed (non-cancelled) events. *)
val events_processed : t -> int
