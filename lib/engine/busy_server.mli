(** A single-server FIFO resource inside a simulation.

    Models one CPU (or device) that serves submitted items one at a time,
    each with its own service cost.  This is how dispatcher capacity is
    modeled: a dispatcher that takes 200 ns per scheduling operation is a
    [Busy_server] — when offered load exceeds 1/cost the queue grows and
    downstream latency explodes, which is exactly the Shinjuku bottleneck
    the paper measures (Figure 16). *)

type 'a t

val create : Sim.t -> unit -> 'a t

(** [submit t ~cost item ~done_] enqueues [item]; when the server has
    served it (after waiting for predecessors plus [cost] ns),
    [done_ item] runs. *)
val submit : 'a t -> cost:int -> 'a -> done_:('a -> unit) -> unit

(** [occupy t ~cost] blocks the server for [cost] ns without serving
    anything: a fault-injection hook modeling a transient outage of the
    serving core.  The blackout starts as soon as the op currently in
    service (if any) completes — it jumps ahead of queued work — and is
    counted in [busy_time] but not in [served]. *)
val occupy : 'a t -> cost:int -> unit

(** [queue_length t] counts items waiting (not the one in service). *)
val queue_length : 'a t -> int

val busy : 'a t -> bool

(** [busy_time t] is the cumulative time spent serving, for utilization
    accounting. *)
val busy_time : 'a t -> int

val served : 'a t -> int
