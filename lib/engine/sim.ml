module Heap = Tq_util.Binary_heap

type event = { action : unit -> unit; mutable state : [ `Pending | `Cancelled | `Fired ] }

type t = { heap : event Heap.t; mutable now : int; mutable processed : int }

let dummy_event = { action = ignore; state = `Fired }
let create () = { heap = Heap.create ~capacity:1024 ~dummy:dummy_event (); now = 0; processed = 0 }
let now t = t.now

let schedule_at t ~time f =
  if time < t.now then invalid_arg "Sim.schedule_at: time is in the past";
  let ev = { action = f; state = `Pending } in
  Heap.push t.heap ~key:time ev;
  ev

let schedule_after t ~delay f =
  if delay < 0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule_at t ~time:(t.now + delay) f

let cancel ev = if ev.state = `Pending then ev.state <- `Cancelled
let cancelled ev = ev.state = `Cancelled

(* A repeating event: one live heap entry at a time, re-armed after each
   firing.  [stop] both flags the handle and cancels the armed entry, so
   a stopped periodic can never fire again and never keeps the heap
   non-empty (which would make [run] spin forever). *)
type periodic = {
  mutable armed : event option;
  mutable stopped : bool;
  mutable fired : int;
}

let periodic t ?until ~interval f =
  if interval <= 0 then invalid_arg "Sim.periodic: interval must be positive";
  let p = { armed = None; stopped = false; fired = 0 } in
  let rec arm () =
    let next = t.now + interval in
    match until with
    | Some limit when next > limit -> p.armed <- None
    | _ ->
        p.armed <-
          Some
            (schedule_at t ~time:next (fun () ->
                 p.armed <- None;
                 if not p.stopped then begin
                   p.fired <- p.fired + 1;
                   f ();
                   if not p.stopped then arm ()
                 end))
  in
  arm ();
  p

let stop_periodic p =
  p.stopped <- true;
  (match p.armed with Some ev -> cancel ev | None -> ());
  p.armed <- None

let periodic_fired p = p.fired

let rec step t =
  if Heap.is_empty t.heap then false
  else begin
    let time, ev = Heap.pop t.heap in
    match ev.state with
    | `Cancelled -> step t
    | `Fired -> assert false
    | `Pending ->
        t.now <- time;
        ev.state <- `Fired;
        t.processed <- t.processed + 1;
        ev.action ();
        true
  end

let run ?until t =
  let continue = ref true in
  while !continue do
    match (Heap.min_key t.heap, until) with
    | None, _ -> continue := false
    | Some key, Some limit when key > limit -> continue := false
    | Some _, _ -> ignore (step t : bool)
  done;
  match until with Some limit when limit > t.now -> t.now <- limit | _ -> ()

let pending t = Heap.length t.heap
let events_processed t = t.processed
