(** Every reproduced experiment, addressable by id for the CLI and the
    benchmark harness.

    An experiment decomposes into {e points}: independent single-table
    computations that share no mutable state, so the parallel
    orchestrator ([tq_par]) can fan them out over domains and reassemble
    the tables in declaration order. *)

(** One grid point: [table ()] computes a single table, closed over its
    own PRNG state (every point seeds its own generators — see the audit
    notes in DESIGN.md "tq_par"). *)
type point = { label : string;  (** unique within the experiment; cache-key component *)
               table : unit -> Tq_util.Text_table.t }

type experiment = {
  id : string;  (** e.g. "fig7", "table3" *)
  summary : string;
  plot : bool;  (** render each table also as an ASCII chart *)
  points : point list;  (** in paper order; one per output table *)
}

(** In paper order. *)
val all : experiment list

val find : string -> experiment option

(** Total number of points across {!all} — the standard sweep's grid
    size. *)
val point_count : int

(** [tables e] computes every point sequentially, in order. *)
val tables : experiment -> Tq_util.Text_table.t list

(** [print_tables e ts] renders precomputed tables under the
    experiment's header (with ASCII charts when [e.plot]) — the output
    path of the parallel sweep, byte-identical to {!run_and_print}. *)
val print_tables : experiment -> Tq_util.Text_table.t list -> unit

(** [run_and_print e] computes and renders every table of [e]. *)
val run_and_print : experiment -> unit
