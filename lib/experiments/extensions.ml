module Text_table = Tq_util.Text_table
module Table1 = Tq_workload.Table1
module Arrivals = Tq_workload.Arrivals
module Metrics = Tq_workload.Metrics
module Presets = Tq_sched.Presets
module Pointer_chase = Tq_cache.Pointer_chase
module Experiment = Tq_sched.Experiment
module Caladan = Tq_sched.Caladan
module Two_level = Tq_sched.Two_level
module Sim = Tq_engine.Sim
module Prng = Tq_util.Prng
module Time_unit = Tq_util.Time_unit

let ext_las () =
  let workload = Table1.extreme_bimodal in
  let capacity = Arrivals.capacity_rps ~cores:16 workload in
  let duration = Harness.duration_ms 40.0 in
  let systems = [ ("TQ-PS", Presets.tq ()); ("TQ-LAS", Presets.tq_las ()) ] in
  let t =
    Text_table.create
      ~title:"Extension: PS vs LAS quantum scheduling, Extreme Bimodal (p99.9 sojourn us)"
      ~columns:
        ("rate(Mrps)"
        :: List.concat_map (fun (n, _) -> [ n ^ " Short"; n ^ " Long" ]) systems)
  in
  List.iter
    (fun frac ->
      let rate = frac *. capacity in
      let cells =
        List.concat_map
          (fun (_, system) ->
            let r = Harness.run ~system ~workload ~rate_rps:rate ~duration_ns:duration in
            [
              Text_table.cell_f (Harness.sojourn_p999_us r ~class_idx:0);
              Text_table.cell_f (Harness.sojourn_p999_us r ~class_idx:1);
            ])
          systems
      in
      Text_table.add_row t (Harness.mrps rate :: cells))
    [ 0.3; 0.5; 0.7; 0.8; 0.9 ];
  t

let ext_dispatchers () =
  let workload = Table1.exp1 in
  let cores = 64 in
  let duration = Harness.duration_ms 10.0 in
  let dispatcher_counts = [ 1; 2; 4 ] in
  let t =
    Text_table.create
      ~title:
        "Extension: dispatcher scaling, Exp(1) on 64 workers (p99.9 sojourn us; - = saturated)"
      ~columns:
        ("rate(Mrps)"
        :: List.map (fun d -> Printf.sprintf "%d dispatcher%s" d (if d > 1 then "s" else ""))
             dispatcher_counts)
  in
  List.iter
    (fun rate_mrps ->
      let rate = rate_mrps *. 1e6 in
      let cells =
        List.map
          (fun dispatchers ->
            let r =
              Harness.run
                ~system:(Presets.tq ~cores ~dispatchers ())
                ~workload ~rate_rps:rate ~duration_ns:duration
            in
            let p = Harness.sojourn_p999_us r ~class_idx:0 in
            if p > 1_000.0 then "-" else Text_table.cell_f p)
          dispatcher_counts
      in
      Text_table.add_row t (Printf.sprintf "%.0f" rate_mrps :: cells))
    [ 4.0; 8.0; 12.0; 16.0; 20.0; 26.0; 32.0; 40.0; 48.0 ];
  t

let ext_concord () =
  let workload = Table1.exp1 in
  let duration = Harness.duration_ms 15.0 in
  let systems =
    [
      ("TQ", Presets.tq ());
      ("Concord", Presets.concord ~quantum_ns:2_000 ());
      ("Shinjuku", Presets.shinjuku ~quantum_ns:10_000 ());
    ]
  in
  let t =
    Text_table.create
      ~title:"Extension: Concord comparison, Exp(1) (p99.9 sojourn us; - = saturated)"
      ~columns:("rate(Mrps)" :: List.map fst systems)
  in
  List.iter
    (fun rate_mrps ->
      let rate = rate_mrps *. 1e6 in
      let cells =
        List.map
          (fun (_, system) ->
            let r = Harness.run ~system ~workload ~rate_rps:rate ~duration_ns:duration in
            let p = Harness.sojourn_p999_us r ~class_idx:0 in
            if p > 1_000.0 then "-" else Text_table.cell_f p)
          systems
      in
      Text_table.add_row t (Printf.sprintf "%.1f" rate_mrps :: cells))
    [ 1.0; 2.0; 3.0; 4.0; 6.0; 8.0; 10.0; 12.0; 14.0 ];
  t

let ext_prefetch () =
  let run ~order ~prefetch ~quantum_ns ~array_kb =
    let lines = array_kb * 1024 / 64 in
    Pointer_chase.run
      {
        Pointer_chase.framework = Pointer_chase.Tls;
        access_order = order;
        prefetch;
        cores = 8;
        arrays_per_core = 4;
        array_bytes = array_kb * 1024;
        quantum_accesses = Pointer_chase.quantum_accesses_of_ns quantum_ns;
        target_accesses_per_core = max 150_000 (6 * 4 * lines);
        seed = 5L;
      }
  in
  let t =
    Text_table.create
      ~title:
        "Extension: random chasing vs sequential+prefetch (mean access latency, cycles)"
      ~columns:
        [ "array"; "rand 2us"; "rand 16us"; "seq+pf 2us"; "seq+pf 16us" ]
  in
  List.iter
    (fun array_kb ->
      let cell ~order ~prefetch ~quantum_ns =
        Text_table.cell_f
          (run ~order ~prefetch ~quantum_ns ~array_kb).Pointer_chase.mean_latency_cycles
      in
      Text_table.add_row t
        [
          Printf.sprintf "%dKB" array_kb;
          cell ~order:Pointer_chase.Random_order ~prefetch:false ~quantum_ns:2_000;
          cell ~order:Pointer_chase.Random_order ~prefetch:false ~quantum_ns:16_000;
          cell ~order:Pointer_chase.Sequential ~prefetch:true ~quantum_ns:2_000;
          cell ~order:Pointer_chase.Sequential ~prefetch:true ~quantum_ns:16_000;
        ])
    [ 8; 16; 32; 64 ];
  t


(* Push-only vs push+steal, crossed with placement quality.  Under
   JSQ+MSQ the dispatcher already lands work well and stealing should
   be near-neutral; under random placement queues go lopsided and the
   idle-core steal-half second chance recovers most of the tail gap —
   isolating what stealing buys at each placement quality. *)
let ext_steal () =
  let workload = Table1.extreme_bimodal in
  let capacity = Arrivals.capacity_rps ~cores:16 workload in
  let duration = Harness.duration_ms 20.0 in
  let config policy = { Two_level.default_config with dispatch_policy = policy } in
  let systems =
    [
      ("JSQ", Experiment.Two_level (config Tq_sched.Dispatch_policy.Jsq_msq));
      ("JSQ+steal", Experiment.Stealing (config Tq_sched.Dispatch_policy.Jsq_msq));
      ("RAND", Experiment.Two_level (config Tq_sched.Dispatch_policy.Random));
      ("RAND+steal", Experiment.Stealing (config Tq_sched.Dispatch_policy.Random));
    ]
  in
  let t =
    Text_table.create
      ~title:
        "Extension: work stealing vs placement quality, Extreme Bimodal (short p99.9 us; - = saturated)"
      ~columns:("rate(Mrps)" :: List.map fst systems)
  in
  List.iter
    (fun frac ->
      let rate = frac *. capacity in
      let cells =
        List.map
          (fun (_, system) ->
            let r = Harness.run ~system ~workload ~rate_rps:rate ~duration_ns:duration in
            let p = Harness.sojourn_p999_us r ~class_idx:0 in
            if p > 10_000.0 then "-" else Text_table.cell_f p)
          systems
      in
      Text_table.add_row t (Harness.mrps rate :: cells))
    [ 0.3; 0.5; 0.7; 0.8; 0.9 ];
  t

let ext_rss () =
  let workload = Table1.exp1 in
  let capacity = Arrivals.capacity_rps ~cores:16 workload in
  let duration = Harness.duration_ms 15.0 in
  let variants =
    [ ("8 flows", Some 8); ("32 flows", Some 32); ("256 flows", Some 256); ("uniform", None) ]
  in
  let t =
    Text_table.create
      ~title:"Extension: Caladan RSS by connection count, Exp(1) (p99.9 sojourn us)"
      ~columns:("rate(Mrps)" :: List.map fst variants)
  in
  List.iter
    (fun frac ->
      let rate = frac *. capacity in
      let cells =
        List.map
          (fun (_, rss_flows) ->
            let config =
              { (Caladan.default_config ~mode:Caladan.Directpath ~cores:16) with rss_flows }
            in
            let r =
              Harness.run ~system:(Experiment.Caladan config) ~workload ~rate_rps:rate
                ~duration_ns:duration
            in
            Text_table.cell_f (Harness.sojourn_p999_us r ~class_idx:0))
          variants
      in
      Text_table.add_row t (Harness.mrps rate :: cells))
    [ 0.2; 0.4; 0.6; 0.7; 0.8 ];
  t

let ext_overload () =
  let workload = Table1.exp1 in
  let duration = Harness.duration_ms 10.0 in
  let t =
    Text_table.create
      ~title:
        "Extension: overload with a finite RX ring (TQ, Exp(1); drops instead of queueing)"
      ~columns:[ "offered(Mrps)"; "goodput(Mrps)"; "drop %"; "admitted p99(us)" ]
  in
  List.iter
    (fun offered_mrps ->
      let sim = Sim.create () in
      let rng = Prng.create ~seed:42L in
      let metrics = Tq_workload.Metrics.create ~workload ~warmup_ns:(duration / 10) in
      let config = { Two_level.default_config with cores = 16 } in
      let system = Two_level.create sim ~rng:(Prng.split rng) ~config ~metrics () in
      let nic =
        Tq_net.Nic.create sim ~rx_depth:512
          ~occupancy:(fun () -> Two_level.dispatcher_queue_length system)
          ~deliver:(fun req -> Two_level.submit system req)
          ()
      in
      ignore
        (Arrivals.install sim ~rng:(Prng.split rng) ~workload
           ~rate_rps:(offered_mrps *. 1e6) ~duration_ns:duration
           ~sink:(fun req -> ignore (Tq_net.Nic.receive nic req : bool)));
      Sim.run sim;
      let measured_s = Tq_util.Time_unit.to_s (duration - (duration / 10)) in
      let goodput = float_of_int (Metrics.total_completed metrics) /. measured_s /. 1e6 in
      Text_table.add_row t
        [
          Printf.sprintf "%.0f" offered_mrps;
          Printf.sprintf "%.2f" goodput;
          Printf.sprintf "%.1f" (100.0 *. Tq_net.Nic.drop_rate nic);
          Text_table.cell_f (Metrics.sojourn_percentile metrics ~class_idx:0 99.0 /. 1e3);
        ])
    [ 8.0; 10.0; 12.0; 14.0; 16.0; 20.0; 24.0 ];
  t
