type point = { label : string; table : unit -> Tq_util.Text_table.t }

type experiment = {
  id : string;
  summary : string;
  plot : bool;
  points : point list;
}

(* A single-table experiment: one point labelled by the experiment id. *)
let one ~id f = [ { label = id; table = f } ]

let pt label table = { label; table }

let all =
  [
    {
      id = "fig1";
      plot = true;
      summary = "Slowdown vs load for quantum sizes (ideal centralized PS)";
      points = one ~id:"fig1" Motivation.fig1;
    };
    {
      id = "fig2";
      plot = true;
      summary = "Max rate under slowdown-10 SLO vs quantum, per preemption overhead";
      points = one ~id:"fig2" Motivation.fig2;
    };
    {
      id = "fig4";
      plot = true;
      summary = "Centralized vs two-level scheduling, long-job tail slowdown";
      points = one ~id:"fig4" Motivation.fig4;
    };
    {
      id = "fig5_6";
      plot = true;
      summary = "TQ quantum-size sweep on Extreme Bimodal";
      points = [ pt "fig5-short" Comparison.fig5; pt "fig6-long" Comparison.fig6 ];
    };
    {
      id = "fig7";
      plot = true;
      summary = "TQ vs Shinjuku vs Caladan: Extreme and High Bimodal";
      points =
        [
          pt "extreme-bimodal" Comparison.fig7_extreme;
          pt "high-bimodal" Comparison.fig7_high;
        ];
    };
    {
      id = "fig8";
      plot = true;
      summary = "TQ vs Shinjuku vs Caladan: TPC-C";
      points =
        [ pt "latency" Comparison.fig8_latency; pt "slowdown" Comparison.fig8_slowdown ];
    };
    {
      id = "fig9";
      plot = true;
      summary = "TQ vs Shinjuku vs Caladan: Exp(1)";
      points = [ pt "fig9" (fun () -> List.hd (Comparison.fig9 ())) ];
    };
    {
      id = "fig10";
      plot = true;
      summary = "TQ vs Shinjuku vs Caladan: RocksDB 0.5% and 50% SCAN";
      points =
        [ pt "scan-0.5" Comparison.fig10_scan05; pt "scan-50" Comparison.fig10_scan50 ];
    };
    {
      id = "fig11";
      plot = true;
      summary = "Forced-multitasking ablation (TQ-IC / SLOW-YIELD / TIMING)";
      points = one ~id:"fig11" Breakdown.fig11;
    };
    {
      id = "fig12";
      plot = true;
      summary = "Scheduling ablation (TQ-RAND / POWER-TWO / FCFS)";
      points = one ~id:"fig12" Breakdown.fig12;
    };
    {
      id = "table2";
      plot = false;
      summary = "Analytical reuse distances under CT vs TLS";
      points = one ~id:"table2" Cache_study.table2;
    };
    {
      id = "fig13";
      plot = true;
      summary = "Cache: TLS access latency vs array size per quantum";
      points = one ~id:"fig13" Cache_study.fig13;
    };
    {
      id = "fig14";
      plot = true;
      summary = "Cache: TLS vs CT access latency";
      points = one ~id:"fig14" Cache_study.fig14;
    };
    {
      id = "fig15";
      plot = false;
      summary = "Reuse-distance profiles of KV GET/SCAN";
      points = [ pt "get" Cache_study.fig15_get; pt "scan" Cache_study.fig15_scan ];
    };
    {
      id = "table3";
      plot = false;
      summary = "Compiler pass: probing overhead and MAE, CI vs CI-Cycles vs TQ";
      points = one ~id:"table3" Components.table3;
    };
    {
      id = "fig16";
      plot = true;
      summary = "Dispatcher scalability: max cores per target quantum";
      points = one ~id:"fig16" Components.fig16;
    };
    {
      id = "dispatcher";
      plot = false;
      summary = "Dispatcher throughput (Section 6)";
      points = one ~id:"dispatcher" Components.dispatcher_throughput;
    };
    {
      id = "ext_las";
      plot = true;
      summary = "Extension: least-attained-service quantum scheduling vs PS";
      points = one ~id:"ext_las" Extensions.ext_las;
    };
    {
      id = "ext_dispatchers";
      plot = true;
      summary = "Extension: scaling to multiple dispatcher cores (Section 6)";
      points = one ~id:"ext_dispatchers" Extensions.ext_dispatchers;
    };
    {
      id = "ext_concord";
      plot = true;
      summary = "Extension: Concord (cache-line preemption, centralized) comparison";
      points = one ~id:"ext_concord" Extensions.ext_concord;
    };
    {
      id = "ext_prefetch";
      plot = true;
      summary = "Extension: sequential+prefetch conceals preemption cache effects";
      points = one ~id:"ext_prefetch" Extensions.ext_prefetch;
    };
    {
      id = "ext_steal";
      plot = true;
      summary = "Extension: work stealing vs placement quality (push-only vs push+steal)";
      points = one ~id:"ext_steal" Extensions.ext_steal;
    };
    {
      id = "ext_rss";
      plot = true;
      summary = "Extension: RSS flow-count sensitivity of the Caladan model";
      points = one ~id:"ext_rss" Extensions.ext_rss;
    };
    {
      id = "ext_overload";
      plot = false;
      summary = "Extension: finite RX ring turns overload into drops (goodput plateau)";
      points = one ~id:"ext_overload" Extensions.ext_overload;
    };
    {
      id = "faults";
      plot = false;
      summary = "Robustness: fault injection, failure handling, and overload protection";
      points =
        [
          pt "degradation" Faults.faults_degradation;
          pt "compare-systems" Faults.faults_compare;
          pt "kill-recovery" Faults.faults_kill;
          pt "admission-overload" Faults.faults_admission;
        ];
    };
    {
      id = "adaptive";
      plot = false;
      summary = "Robustness: feedback-controlled quanta + admission vs static knobs";
      points =
        [ pt "stall" Adaptive.adaptive_stall; pt "overload" Adaptive.adaptive_overload ];
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let point_count = List.fold_left (fun acc e -> acc + List.length e.points) 0 all
let tables e = List.map (fun p -> p.table ()) e.points

let print_tables e tables =
  Printf.printf "### %s — %s\n\n%!" e.id e.summary;
  List.iter
    (fun table ->
      Tq_util.Text_table.print table;
      if e.plot then begin
        match Tq_util.Ascii_chart.plot_table table with
        | "" -> ()
        | chart -> print_endline chart
      end)
    tables

let run_and_print e = print_tables e (tables e)
