type experiment = {
  id : string;
  summary : string;
  plot : bool;
  tables : unit -> Tq_util.Text_table.t list;
}

let one f () = [ f () ]

let all =
  [
    {
      id = "fig1";
      plot = true;
      summary = "Slowdown vs load for quantum sizes (ideal centralized PS)";
      tables = one Motivation.fig1;
    };
    {
      id = "fig2";
      plot = true;
      summary = "Max rate under slowdown-10 SLO vs quantum, per preemption overhead";
      tables = one Motivation.fig2;
    };
    {
      id = "fig4";
      plot = true;
      summary = "Centralized vs two-level scheduling, long-job tail slowdown";
      tables = one Motivation.fig4;
    };
    {
      id = "fig5_6";
      plot = true;
      summary = "TQ quantum-size sweep on Extreme Bimodal";
      tables = Comparison.fig5_6;
    };
    {
      id = "fig7";
      plot = true;
      summary = "TQ vs Shinjuku vs Caladan: Extreme and High Bimodal";
      tables = Comparison.fig7;
    };
    { id = "fig8";
      plot = true; summary = "TQ vs Shinjuku vs Caladan: TPC-C"; tables = Comparison.fig8 };
    { id = "fig9";
      plot = true; summary = "TQ vs Shinjuku vs Caladan: Exp(1)"; tables = Comparison.fig9 };
    {
      id = "fig10";
      plot = true;
      summary = "TQ vs Shinjuku vs Caladan: RocksDB 0.5% and 50% SCAN";
      tables = Comparison.fig10;
    };
    {
      id = "fig11";
      plot = true;
      summary = "Forced-multitasking ablation (TQ-IC / SLOW-YIELD / TIMING)";
      tables = one Breakdown.fig11;
    };
    {
      id = "fig12";
      plot = true;
      summary = "Scheduling ablation (TQ-RAND / POWER-TWO / FCFS)";
      tables = one Breakdown.fig12;
    };
    {
      id = "table2";
      plot = false;
      summary = "Analytical reuse distances under CT vs TLS";
      tables = one Cache_study.table2;
    };
    {
      id = "fig13";
      plot = true;
      summary = "Cache: TLS access latency vs array size per quantum";
      tables = one Cache_study.fig13;
    };
    {
      id = "fig14";
      plot = true;
      summary = "Cache: TLS vs CT access latency";
      tables = one Cache_study.fig14;
    };
    {
      id = "fig15";
      plot = false;
      summary = "Reuse-distance profiles of KV GET/SCAN";
      tables = Cache_study.fig15;
    };
    {
      id = "table3";
      plot = false;
      summary = "Compiler pass: probing overhead and MAE, CI vs CI-Cycles vs TQ";
      tables = one Components.table3;
    };
    {
      id = "fig16";
      plot = true;
      summary = "Dispatcher scalability: max cores per target quantum";
      tables = one Components.fig16;
    };
    {
      id = "dispatcher";
      plot = false;
      summary = "Dispatcher throughput (Section 6)";
      tables = one Components.dispatcher_throughput;
    };
    {
      id = "ext_las";
      plot = true;
      summary = "Extension: least-attained-service quantum scheduling vs PS";
      tables = one Extensions.ext_las;
    };
    {
      id = "ext_dispatchers";
      plot = true;
      summary = "Extension: scaling to multiple dispatcher cores (Section 6)";
      tables = one Extensions.ext_dispatchers;
    };
    {
      id = "ext_concord";
      plot = true;
      summary = "Extension: Concord (cache-line preemption, centralized) comparison";
      tables = one Extensions.ext_concord;
    };
    {
      id = "ext_prefetch";
      plot = true;
      summary = "Extension: sequential+prefetch conceals preemption cache effects";
      tables = one Extensions.ext_prefetch;
    };
    {
      id = "ext_rss";
      plot = true;
      summary = "Extension: RSS flow-count sensitivity of the Caladan model";
      tables = one Extensions.ext_rss;
    };
    {
      id = "ext_overload";
      plot = false;
      summary = "Extension: finite RX ring turns overload into drops (goodput plateau)";
      tables = one Extensions.ext_overload;
    };
    {
      id = "faults";
      plot = false;
      summary = "Robustness: fault injection, failure handling, and overload protection";
      tables = Faults.faults;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_and_print e =
  Printf.printf "### %s — %s\n\n%!" e.id e.summary;
  List.iter
    (fun table ->
      Tq_util.Text_table.print table;
      if e.plot then begin
        match Tq_util.Ascii_chart.plot_table table with
        | "" -> ()
        | chart -> print_endline chart
      end)
    (e.tables ())
