module Text_table = Tq_util.Text_table
module Time_unit = Tq_util.Time_unit
module Table1 = Tq_workload.Table1
module Arrivals = Tq_workload.Arrivals
module Metrics = Tq_workload.Metrics
module Service_dist = Tq_workload.Service_dist
module Experiment = Tq_sched.Experiment
module Presets = Tq_sched.Presets

let cores = 16
let capacity workload = Arrivals.capacity_rps ~cores workload
let default_fracs = [ 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]

(* One table: rows = load points, columns = (system x class) p99.9
   end-to-end latency in us. *)
let latency_table ~title ~workload ~systems ~class_idxs ~fracs =
  let class_name i = Service_dist.class_name workload i in
  let columns =
    "rate(Mrps)"
    :: List.concat_map
         (fun (sys_name, _) ->
           List.map (fun c -> Printf.sprintf "%s %s" sys_name (class_name c)) class_idxs)
         systems
  in
  let t = Text_table.create ~title ~columns in
  List.iter
    (fun frac ->
      let rate = frac *. capacity workload in
      let cells =
        List.concat_map
          (fun (_, runner) ->
            let r = runner ~rate in
            List.map
              (fun c -> Text_table.cell_f (Harness.e2e_p999_us r ~class_idx:c))
              class_idxs)
          systems
      in
      Text_table.add_row t (Harness.mrps rate :: cells))
    fracs;
  t

let run_system system ~workload ~duration ~rate =
  Harness.run ~system ~workload ~rate_rps:rate ~duration_ns:duration

let three_systems ~workload ~duration ~tail_class =
  [
    ("TQ", fun ~rate -> run_system (Presets.tq ()) ~workload ~duration ~rate);
    ( "Shinjuku",
      fun ~rate ->
        let quantum_ns = Presets.shinjuku_quantum_for workload.Service_dist.name in
        run_system (Presets.shinjuku ~quantum_ns ()) ~workload ~duration ~rate );
    ( "Caladan",
      fun ~rate ->
        Harness.caladan_best ~workload ~rate_rps:rate ~duration_ns:duration
          ~class_idx:tail_class );
  ]

let quantum_sweep_table ~title ~class_idx =
  let workload = Table1.extreme_bimodal in
  let duration = Harness.duration_ms 40.0 in
  let quanta_us = [ 0.5; 1.0; 2.0; 5.0; 10.0 ] in
  let systems =
    List.map
      (fun q ->
        ( Printf.sprintf "TQ-%gus" q,
          fun ~rate ->
            run_system (Presets.tq ~quantum_ns:(Time_unit.us q) ()) ~workload ~duration ~rate ))
      quanta_us
  in
  latency_table ~title ~workload ~systems ~class_idxs:[ class_idx ] ~fracs:default_fracs

let fig5 () =
  quantum_sweep_table
    ~title:"Figure 5: TQ quantum sweep, Extreme Bimodal, short jobs (p99.9 e2e us)"
    ~class_idx:0

let fig6 () =
  quantum_sweep_table
    ~title:"Figure 6: TQ quantum sweep, Extreme Bimodal, long jobs (p99.9 e2e us)"
    ~class_idx:1

let fig5_6 () = [ fig5 (); fig6 () ]

let fig7_one workload label =
  let duration = Harness.duration_ms 40.0 in
  latency_table
    ~title:(Printf.sprintf "Figure 7 (%s): TQ vs Shinjuku vs Caladan (p99.9 e2e us)" label)
    ~workload
    ~systems:(three_systems ~workload ~duration ~tail_class:0)
    ~class_idxs:[ 0; 1 ] ~fracs:default_fracs

let fig7_extreme () = fig7_one Table1.extreme_bimodal "Extreme Bimodal"
let fig7_high () = fig7_one Table1.high_bimodal "High Bimodal"
let fig7 () = [ fig7_extreme (); fig7_high () ]

let fig8_systems () =
  let workload = Table1.tpcc in
  let duration = Harness.duration_ms 40.0 in
  (workload, three_systems ~workload ~duration ~tail_class:0)

let fig8_latency () =
  let workload, systems = fig8_systems () in
  latency_table
    ~title:"Figure 8a: TPC-C, shortest (Payment) and longest (StockLevel) classes (p99.9 e2e us)"
    ~workload ~systems ~class_idxs:[ 0; 4 ] ~fracs:default_fracs

(* Overall slowdown panel, as in the paper. *)
let fig8_slowdown () =
  let workload, systems = fig8_systems () in
  let slow =
    Text_table.create ~title:"Figure 8b: TPC-C overall p99.9 slowdown"
      ~columns:("rate(Mrps)" :: List.map fst systems)
  in
  List.iter
    (fun frac ->
      let rate = frac *. capacity workload in
      let cells =
        List.map
          (fun (_, runner) ->
            let r = runner ~rate in
            Text_table.cell_f (Metrics.overall_slowdown_percentile r.Experiment.metrics 99.9))
          systems
      in
      Text_table.add_row slow (Harness.mrps rate :: cells))
    default_fracs;
  slow

let fig8 () = [ fig8_latency (); fig8_slowdown () ]

let fig9 () =
  let workload = Table1.exp1 in
  let duration = Harness.duration_ms 25.0 in
  (* Include low loads: the centralized dispatcher saturates at a small
     fraction of 16-core capacity on this all-short workload. *)
  let fracs = [ 0.05; 0.1; 0.15; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ] in
  [
    latency_table ~title:"Figure 9: Exp(1) (p99.9 e2e us)" ~workload
      ~systems:(three_systems ~workload ~duration ~tail_class:0)
      ~class_idxs:[ 0 ] ~fracs;
  ]

let fig10_one workload label =
  let duration = Harness.duration_ms 40.0 in
  latency_table
    ~title:(Printf.sprintf "Figure 10 (%s): GET/SCAN (p99.9 e2e us)" label)
    ~workload
    ~systems:(three_systems ~workload ~duration ~tail_class:0)
    ~class_idxs:[ 0; 1 ] ~fracs:default_fracs

let fig10_scan05 () = fig10_one Table1.rocksdb_scan_0_5 "RocksDB 0.5% SCAN"
let fig10_scan50 () = fig10_one Table1.rocksdb_scan_50 "RocksDB 50% SCAN"
let fig10 () = [ fig10_scan05 (); fig10_scan50 () ]
