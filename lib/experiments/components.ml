module Text_table = Tq_util.Text_table
module Time_unit = Tq_util.Time_unit
module Sim = Tq_engine.Sim
module Prng = Tq_util.Prng
module Metrics = Tq_workload.Metrics
module Table1 = Tq_workload.Table1
module Arrivals = Tq_workload.Arrivals
module Centralized = Tq_sched.Centralized
module Overheads = Tq_sched.Overheads
module Evaluate = Tq_instrument.Evaluate

let table3 () =
  let rows = Evaluate.table3 () in
  let t =
    Text_table.create
      ~title:"Table 3: probing overhead (%) and yield-timing MAE (ns), 2us quantum"
      ~columns:
        [ "workload"; "CI %"; "CI-CY %"; "TQ %"; "CI MAE"; "CI-CY MAE"; "TQ MAE"; "CI probes"; "TQ probes" ]
  in
  List.iter
    (fun (r : Evaluate.row) ->
      Text_table.add_row t
        [
          r.name;
          Text_table.cell_f r.ci_overhead_pct;
          Text_table.cell_f r.ci_cycles_overhead_pct;
          Text_table.cell_f r.tq_overhead_pct;
          Text_table.cell_f r.ci_mae_ns;
          Text_table.cell_f r.ci_cycles_mae_ns;
          Text_table.cell_f r.tq_mae_ns;
          Text_table.cell_i r.ci_static_probes;
          Text_table.cell_i r.tq_static_probes;
        ])
    rows;
  let m = Evaluate.means rows in
  Text_table.add_row t
    [
      "MEAN";
      Text_table.cell_f m.mean_ci_overhead;
      Text_table.cell_f m.mean_ci_cycles_overhead;
      Text_table.cell_f m.mean_tq_overhead;
      Text_table.cell_f m.mean_ci_mae;
      Text_table.cell_f m.mean_ci_cycles_mae;
      Text_table.cell_f m.mean_tq_mae;
      "-";
      "-";
    ];
  t

(* Figure 16 procedure (paper Section 5.6): saturate all cores with 1ms
   jobs and find the largest core count whose achieved quantum stays
   within 10% of the target. *)
let shinjuku_max_cores ~quantum_ns ~max_cores =
  let sustains cores =
    let sim = Sim.create () in
    let config = Centralized.shinjuku_config ~quantum_ns ~cores in
    let metrics = Metrics.create ~workload:Table1.exp1 ~warmup_ns:0 in
    let t = Centralized.create sim ~rng:(Prng.create ~seed:1L) ~config ~metrics () in
    for i = 1 to 3 * cores do
      Centralized.submit t
        {
          Arrivals.req_id = i;
          class_idx = 0;
          service_ns = Time_unit.ms 1.0;
          arrival_ns = 0;
        }
    done;
    Sim.run sim;
    let achieved = Centralized.mean_effective_quantum_ns t in
    achieved <= 1.1 *. float_of_int quantum_ns
  in
  let rec search best cores =
    if cores > max_cores then best
    else if sustains cores then search cores (cores + 1)
    else best
  in
  search 0 1

(* TQ workers self-schedule: the achieved quantum is quantum + yield
   cost, independent of core count; the dispatcher does per-job work
   only, so it never limits quantum scheduling. *)
let tq_max_cores ~quantum_ns ~max_cores =
  let yield_ns = Overheads.tq_default.yield_ns in
  if float_of_int (quantum_ns + yield_ns) <= 1.1 *. float_of_int quantum_ns then max_cores
  else 0

let fig16 () =
  let quanta_us = [ 0.5; 1.0; 2.0; 3.0; 5.0 ] in
  let t =
    Text_table.create ~title:"Figure 16: max cores sustained per target quantum"
      ~columns:[ "quantum"; "Shinjuku"; "TQ" ]
  in
  List.iter
    (fun q ->
      let quantum_ns = Time_unit.us q in
      Text_table.add_row t
        [
          Printf.sprintf "%gus" q;
          Text_table.cell_i (shinjuku_max_cores ~quantum_ns ~max_cores:16);
          Text_table.cell_i (tq_max_cores ~quantum_ns ~max_cores:16);
        ])
    quanta_us;
  t

(* Section 6: drive each dispatcher model alone (zero-service jobs
   consumed by infinitely fast workers is emulated by measuring the
   dispatcher Busy_server's saturation: sustainable rate = 1/cost). *)
let dispatcher_throughput () =
  let t =
    Text_table.create ~title:"Section 6: dispatcher throughput (Mrps, analytic from cost model)"
      ~columns:[ "dispatcher"; "per-request cost (ns)"; "max rate (Mrps)" ]
  in
  let row name cost_ns =
    Text_table.add_row t
      [ name; Text_table.cell_i cost_ns; Text_table.cell_f (1e3 /. float_of_int cost_ns) ]
  in
  row "TQ (load balancing only)" Overheads.tq_default.dispatch_ns;
  (* Centralized: admit + schedule + preempt ops per request-to-completion. *)
  let shinjuku = Centralized.shinjuku_config ~quantum_ns:5_000 ~cores:16 in
  let sched_cost = shinjuku.sched_op_ns + (shinjuku.sched_scan_per_core_ns * shinjuku.cores) in
  row "Shinjuku (admit + schedule)" (shinjuku.net_op_ns + sched_cost);
  row "Concord-like (cache-line preemption)" (100 + 180 + (5 * 16));
  t
