(* Graceful-degradation experiments (tq_fault): how much goodput and
   tail latency survive injected core stalls, a permanent core failure,
   and overload — TQ with its failure handling vs the centralized
   (Shinjuku) and Caladan baselines under the identical fault plan. *)

module Sim = Tq_engine.Sim
module Prng = Tq_util.Prng
module Text_table = Tq_util.Text_table
module Service_dist = Tq_workload.Service_dist
module Arrivals = Tq_workload.Arrivals
module Metrics = Tq_workload.Metrics
module Retry = Tq_workload.Retry
module Experiment = Tq_sched.Experiment
module Presets = Tq_sched.Presets
module Admission = Tq_sched.Admission
module Two_level = Tq_sched.Two_level
module Plan = Tq_fault.Plan
module Fault_experiment = Tq_fault.Fault_experiment

let cores_of = Tq_sched.System_intf.spec_cores

(* Client timeout scaled to the slowest job class so a healthy long job
   is never spuriously retried; the goodput deadline sits well past one
   full retry cycle. *)
let tuning workload =
  let max_class_mean =
    Array.fold_left
      (fun acc (c : Service_dist.job_class) ->
        Float.max acc (Service_dist.sampler_mean_ns c.sampler))
      0.0 workload.Service_dist.classes
  in
  let timeout_ns = max 50_000 (int_of_float (4.0 *. max_class_mean)) in
  let deadline_ns = 4 * timeout_ns in
  let retry =
    {
      Retry.default_config with
      timeout_ns;
      max_attempts = 3;
      backoff_base_ns = timeout_ns / 8;
      backoff_cap_ns = timeout_ns;
    }
  in
  (retry, deadline_ns)

let stall_plan ~intensity =
  if intensity <= 0.0 then []
  else
    [
      Plan.Stalls
        {
          intensity;
          duration = Plan.Exp_ns { mean = 50_000 };
          scope = Plan.All_workers;
          tick_ns = 10_000;
        };
    ]

let base_config ~workload ~rate_rps ~duration_ns ~faults =
  let retry, deadline_ns = tuning workload in
  {
    Fault_experiment.seed = 42L;
    duration_ns;
    rate_rps;
    faults;
    retry = Some retry;
    admission = Admission.Accept_all;
    health_interval_ns = Some 20_000;
    missed_heartbeats = 2;
    deadline_ns;
    controller = None;
  }

let pct v = Printf.sprintf "%.1f" (100.0 *. v)

let eventual_p99_us (r : Fault_experiment.result) =
  Metrics.overall_eventual_percentile r.metrics 99.0 /. 1e3

(* Goodput vs stall intensity for one system: the degradation curve
   behind BENCH_faults.json. *)
let goodput_points ?(quick = false) ~system ~workload () =
  let duration_ns = Harness.duration_ms (if quick then 4.0 else 10.0) in
  let rate_rps =
    0.7 *. Arrivals.capacity_rps ~cores:(cores_of system) workload
  in
  let intensities = if quick then [ 0.0; 0.05; 0.2 ] else [ 0.0; 0.02; 0.05; 0.1; 0.2 ] in
  List.map
    (fun intensity ->
      let config =
        base_config ~workload ~rate_rps ~duration_ns ~faults:(stall_plan ~intensity)
      in
      (intensity, Fault_experiment.run ~system ~workload config))
    intensities

let degradation ?(quick = false) ~system ~system_name ~workload () =
  let t =
    Text_table.create
      ~title:
        (Printf.sprintf "Faults: goodput degradation vs stall intensity (%s, %s, 70%% load)"
           system_name workload.Service_dist.name)
      ~columns:
        [ "stall %"; "goodput %"; "event p99(us)"; "retries"; "timeouts"; "lost"; "stranded" ]
  in
  List.iter
    (fun (intensity, (r : Fault_experiment.result)) ->
      Text_table.add_row t
        [
          pct intensity;
          pct (Fault_experiment.goodput_ratio r);
          Text_table.cell_f (eventual_p99_us r);
          Text_table.cell_i (Metrics.retries r.metrics);
          Text_table.cell_i (Metrics.timeout_drops r.metrics);
          Text_table.cell_i r.lost;
          Text_table.cell_i r.stranded;
        ])
    (goodput_points ~quick ~system ~workload ());
  t

(* The same stall plan replayed against all three systems. *)
let compare_systems ?(quick = false) ~workload () =
  let duration_ns = Harness.duration_ms (if quick then 4.0 else 10.0) in
  let cores = 16 in
  let rate_rps = 0.7 *. Arrivals.capacity_rps ~cores workload in
  let systems =
    [
      ("tq", Presets.tq ~cores ());
      ( "shinjuku",
        Presets.shinjuku ~cores
          ~quantum_ns:(Presets.shinjuku_quantum_for workload.Service_dist.name) () );
      ("caladan-dp", Presets.caladan ~cores ~mode:Tq_sched.Caladan.Directpath ());
    ]
  in
  let intensities = if quick then [ 0.0; 0.2 ] else [ 0.0; 0.05; 0.2 ] in
  let t =
    Text_table.create
      ~title:
        (Printf.sprintf "Faults: TQ vs baselines under core stalls (%s, 70%% load)"
           workload.Service_dist.name)
      ~columns:[ "system"; "stall %"; "goodput %"; "event p99(us)"; "lost" ]
  in
  List.iter
    (fun (name, system) ->
      List.iter
        (fun intensity ->
          let config =
            base_config ~workload ~rate_rps ~duration_ns ~faults:(stall_plan ~intensity)
          in
          let r = Fault_experiment.run ~system ~workload config in
          Text_table.add_row t
            [
              name;
              pct intensity;
              pct (Fault_experiment.goodput_ratio r);
              Text_table.cell_f (eventual_p99_us r);
              Text_table.cell_i r.lost;
            ])
        intensities)
    systems;
  t

(* One of [cores] workers permanently fails mid-run: with health
   tracking the dispatcher routes around it and re-dispatches its
   queue; without, jobs strand on the dead core. *)
let kill_recovery ?(quick = false) ~workload () =
  let duration_ns = Harness.duration_ms (if quick then 4.0 else 10.0) in
  let cores = 16 in
  let rate_rps = 0.7 *. Arrivals.capacity_rps ~cores workload in
  let faults = [ Plan.Kill { wid = 3; at_ns = duration_ns / 3 } ] in
  let t =
    Text_table.create
      ~title:
        (Printf.sprintf
           "Faults: 1 of %d cores fails at t=%.0f%% (tq, %s, 70%% load)" cores
           (100.0 /. 3.0) workload.Service_dist.name)
      ~columns:
        [ "handling"; "goodput %"; "event p99(us)"; "lost"; "redispatch"; "stranded" ]
  in
  List.iter
    (fun (label, health) ->
      let config =
        {
          (base_config ~workload ~rate_rps ~duration_ns ~faults) with
          health_interval_ns = health;
        }
      in
      let r = Fault_experiment.run ~system:(Presets.tq ~cores ()) ~workload config in
      let redispatches =
        match r.acct with Some a -> a.Two_level.redispatches | None -> 0
      in
      Text_table.add_row t
        [
          label;
          pct (Fault_experiment.goodput_ratio r);
          Text_table.cell_f (eventual_p99_us r);
          Text_table.cell_i r.lost;
          Text_table.cell_i redispatches;
          Text_table.cell_i r.stranded;
        ])
    [ ("health-tracking", Some 20_000); ("none", None) ];
  t

(* Offered load swept past saturation, with and without admission
   control: shedding the excess keeps admitted requests fast, so
   goodput holds near peak instead of collapsing. *)
let admission_overload ?(quick = false) ~workload () =
  let duration_ns = Harness.duration_ms (if quick then 4.0 else 10.0) in
  let cores = 16 in
  let capacity = Arrivals.capacity_rps ~cores workload in
  let loads = if quick then [ 0.7; 1.2 ] else [ 0.7; 0.9; 1.1; 1.3; 1.5 ] in
  let policies =
    [
      ("accept-all", Admission.Accept_all);
      ("queue-limit", Admission.Queue_limit { max_in_system = 4 * cores });
    ]
  in
  let t =
    Text_table.create
      ~title:
        (Printf.sprintf "Faults: overload protection by admission control (tq, %s)"
           workload.Service_dist.name)
      ~columns:[ "load %"; "admission"; "goodput(Mrps)"; "shed %"; "event p99(us)" ]
  in
  List.iter
    (fun load ->
      List.iter
        (fun (label, policy) ->
          let config =
            {
              (base_config ~workload ~rate_rps:(load *. capacity) ~duration_ns ~faults:[]) with
              admission = policy;
            }
          in
          let r = Fault_experiment.run ~system:(Presets.tq ~cores ()) ~workload config in
          (* Retries re-submit shed requests, so rejections are per
             attempt, not per request. *)
          let attempts = max r.offered (Metrics.attempts r.metrics) in
          let shed =
            if attempts = 0 then 0.0
            else float_of_int (Metrics.rejections r.metrics) /. float_of_int attempts
          in
          Text_table.add_row t
            [
              pct load;
              label;
              Printf.sprintf "%.2f" (r.goodput_rps /. 1e6);
              pct shed;
              Text_table.cell_f (eventual_p99_us r);
            ])
        policies)
    loads;
  t

let sweep ?(quick = false) ~system ~system_name ~workload () =
  [
    degradation ~quick ~system ~system_name ~workload ();
    compare_systems ~quick ~workload ();
    kill_recovery ~quick ~workload ();
    admission_overload ~quick ~workload ();
  ]

(* Registry entry points: a representative workload and the TQ system,
   one table per function so the parallel sweep can shard them. *)
let registry_workload = Tq_workload.Table1.high_bimodal

let faults_degradation () =
  degradation ~system:(Presets.tq ()) ~system_name:"tq" ~workload:registry_workload ()

let faults_compare () = compare_systems ~workload:registry_workload ()
let faults_kill () = kill_recovery ~workload:registry_workload ()
let faults_admission () = admission_overload ~workload:registry_workload ()

let faults () =
  [ faults_degradation (); faults_compare (); faults_kill (); faults_admission () ]
