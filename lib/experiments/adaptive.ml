(* Closed-loop control vs static knobs (tq_sim adaptive): the
   Tq_control feedback controller — retuning per-class quanta and the
   admission limit live — against every static quantum setting, under
   the two conditions that punish static tuning: heavy core stalls
   (capacity loss) and sustained overload.  Goodput-under-deadline is
   the scoreboard, as in Faults; the emitted BENCH_adaptive.json
   records the adaptive-minus-best-static margin per scenario. *)

module Arrivals = Tq_workload.Arrivals
module Service_dist = Tq_workload.Service_dist
module Metrics = Tq_workload.Metrics
module Retry = Tq_workload.Retry
module Text_table = Tq_util.Text_table
module Presets = Tq_sched.Presets
module Admission = Tq_sched.Admission
module Plan = Tq_fault.Plan
module Fault_experiment = Tq_fault.Fault_experiment
module Controller = Tq_control.Controller

let cores = 16

(* Same client tuning rule as Faults: timeout past the slowest class,
   deadline past a full retry cycle. *)
let tuning workload =
  let max_class_mean =
    Array.fold_left
      (fun acc (c : Service_dist.job_class) ->
        Float.max acc (Service_dist.sampler_mean_ns c.sampler))
      0.0 workload.Service_dist.classes
  in
  let timeout_ns = max 50_000 (int_of_float (4.0 *. max_class_mean)) in
  let deadline_ns = 4 * timeout_ns in
  let retry =
    {
      Retry.default_config with
      timeout_ns;
      max_attempts = 3;
      backoff_base_ns = timeout_ns / 8;
      backoff_cap_ns = timeout_ns;
    }
  in
  (retry, deadline_ns)

(* The controller judges lateness at half the client retry timeout:
   once sojourns cross the timeout, clients resubmit and the duplicate
   work erases real capacity, so the loop must correct well before
   that cliff — not merely before the (much later) goodput deadline.
   The quantum ceiling stays modest: past a few microseconds the
   preemption savings are spent, and long quanta only add sojourn
   variance for the short classes sharing the core. *)
let controller_config ~retry_timeout_ns ~quantum_initial_ns =
  {
    (Controller.default_config ~quantum_initial_ns ~shed_initial:(16 * cores)) with
    Controller.interval_ns = 50_000;
    objective =
      {
        Tq_obs.Slo.name = "adaptive";
        latency_ns = retry_timeout_ns / 2;
        goodput = 0.95;
      };
    quantum_max_ns = 5_000;
    shed_min = cores;
    shed_max = 4096;
  }

type scenario = {
  scenario : string;  (** "stall" or "overload" *)
  load : float;  (** offered load as a fraction of capacity *)
  stall_intensity : float;
}

let scenarios = [
  { scenario = "stall"; load = 0.8; stall_intensity = 0.3 };
  { scenario = "overload"; load = 1.3; stall_intensity = 0.0 };
]

type row = {
  label : string;
  gated : bool;  (** participates in the adaptive-vs-static comparison *)
  adaptive : bool;
  result : Fault_experiment.result;
}

type outcome = {
  spec : scenario;
  rows : row list;
  adaptive_ratio : float;
  best_static_ratio : float;
  margin : float;  (** adaptive - best static; >= 0 is the gate *)
}

let stall_plan ~intensity =
  if intensity <= 0.0 then []
  else
    [
      Plan.Stalls
        {
          intensity;
          duration = Plan.Exp_ns { mean = 50_000 };
          scope = Plan.All_workers;
          tick_ns = 10_000;
        };
    ]

let run_scenario ?(quick = false) ~workload spec =
  let duration_ns = Harness.duration_ms (if quick then 4.0 else 10.0) in
  let retry, deadline_ns = tuning workload in
  let rate_rps = spec.load *. Arrivals.capacity_rps ~cores workload in
  let faults = stall_plan ~intensity:spec.stall_intensity in
  let base =
    {
      (Fault_experiment.default_config ~rate_rps ~duration_ns) with
      Fault_experiment.faults;
      retry = Some retry;
      deadline_ns;
    }
  in
  let run ~quantum_ns config =
    Fault_experiment.run
      ~system:(Presets.tq ~cores ~quantum_ns ())
      ~workload config
  in
  let static_quanta_us = if quick then [ 1.0; 5.0 ] else [ 1.0; 2.0; 5.0; 10.0 ] in
  let static_rows =
    List.map
      (fun q_us ->
        let quantum_ns = int_of_float (q_us *. 1e3) in
        {
          label = Printf.sprintf "static-%gus" q_us;
          gated = true;
          adaptive = false;
          result = run ~quantum_ns base;
        })
      static_quanta_us
  in
  (* Context row: a hand-tuned static queue limit, to show how much of
     the adaptive win is shedding alone.  Not part of the gate — the
     point of the controller is that nobody has to find this number. *)
  let tuned_row =
    {
      label = "static-2us+limit";
      gated = false;
      adaptive = false;
      result =
        run ~quantum_ns:2_000
          { base with Fault_experiment.admission =
              Admission.Queue_limit { max_in_system = 4 * cores } };
    }
  in
  let adaptive_row =
    let quantum_initial_ns = 2_000 in
    {
      label = "adaptive";
      gated = true;
      adaptive = true;
      result =
        run ~quantum_ns:quantum_initial_ns
          { base with Fault_experiment.controller =
              Some
                (controller_config ~retry_timeout_ns:retry.Retry.timeout_ns
                   ~quantum_initial_ns) };
    }
  in
  let rows = static_rows @ [ tuned_row; adaptive_row ] in
  let ratio r = Fault_experiment.goodput_ratio r.result in
  let adaptive_ratio = ratio adaptive_row in
  let best_static_ratio =
    List.fold_left
      (fun acc r -> if r.gated && not r.adaptive then Float.max acc (ratio r) else acc)
      0.0 rows
  in
  { spec; rows; adaptive_ratio; best_static_ratio; margin = adaptive_ratio -. best_static_ratio }

let run_all ?(quick = false) ~workload () =
  List.map (run_scenario ~quick ~workload) scenarios

let eventual_p99_us (r : Fault_experiment.result) =
  Metrics.overall_eventual_percentile r.metrics 99.0 /. 1e3

let table (o : outcome) =
  let t =
    Text_table.create
      ~title:
        (Printf.sprintf
           "Adaptive control vs static knobs (%s: %.0f%% load, %.0f%% stalls)"
           o.spec.scenario (100.0 *. o.spec.load) (100.0 *. o.spec.stall_intensity))
      ~columns:
        [ "setting"; "goodput %"; "event p99(us)"; "shed"; "ticks"; "decisions" ]
  in
  List.iter
    (fun row ->
      let r = row.result in
      Text_table.add_row t
        [
          row.label;
          Printf.sprintf "%.1f" (100.0 *. Fault_experiment.goodput_ratio r);
          Text_table.cell_f (eventual_p99_us r);
          Text_table.cell_i (Metrics.rejections r.metrics);
          Text_table.cell_i r.control_ticks;
          Text_table.cell_i r.control_decisions;
        ])
    o.rows;
  t

let registry_workload = Tq_workload.Table1.high_bimodal
let adaptive_stall () = table (run_scenario ~workload:registry_workload (List.nth scenarios 0))
let adaptive_overload () =
  table (run_scenario ~workload:registry_workload (List.nth scenarios 1))
