(** The Section 5.2-5.3 system evaluation (Figures 5-10).

    End-to-end p99.9 latency (sojourn + client RTT) versus offered load,
    for TQ, the Shinjuku model (per-workload optimal quantum) and the
    better Caladan mode — on every Table 1 workload.

    Each figure is also exposed one table at a time: the per-table
    functions are independent (no shared state between them), so the
    parallel sweep orchestrator ([tq_par]) can run them as separate grid
    points; the [unit -> t list] forms are their sequential
    compositions. *)

(** Figure 5: TQ quantum-size sweep on Extreme Bimodal, short jobs. *)
val fig5 : unit -> Tq_util.Text_table.t

(** Figure 6: the same sweep, long jobs. *)
val fig6 : unit -> Tq_util.Text_table.t

(** Figures 5 and 6 together. *)
val fig5_6 : unit -> Tq_util.Text_table.t list

(** Figure 7, Extreme Bimodal panel: three systems, both classes. *)
val fig7_extreme : unit -> Tq_util.Text_table.t

(** Figure 7, High Bimodal panel. *)
val fig7_high : unit -> Tq_util.Text_table.t

(** Figure 7: both panels. *)
val fig7 : unit -> Tq_util.Text_table.t list

(** Figure 8a: TPC-C, shortest (Payment) and longest (StockLevel)
    classes. *)
val fig8_latency : unit -> Tq_util.Text_table.t

(** Figure 8b: TPC-C overall p99.9 slowdown. *)
val fig8_slowdown : unit -> Tq_util.Text_table.t

(** Figure 8: both panels. *)
val fig8 : unit -> Tq_util.Text_table.t list

(** Figure 9: Exp(1). *)
val fig9 : unit -> Tq_util.Text_table.t list

(** Figure 10, RocksDB 0.5% SCAN panel. *)
val fig10_scan05 : unit -> Tq_util.Text_table.t

(** Figure 10, RocksDB 50% SCAN panel. *)
val fig10_scan50 : unit -> Tq_util.Text_table.t

(** Figure 10: both panels. *)
val fig10 : unit -> Tq_util.Text_table.t list
