(** Closed-loop control vs static knobs: the {!Tq_control.Controller}
    feedback loop (adaptive per-class quanta + admission limit) against
    every static quantum setting, under heavy core stalls and sustained
    overload.  Goodput-under-deadline is the scoreboard; the margin
    (adaptive minus best static) is the number [BENCH_adaptive.json]
    commits and CI gates on. *)

(** One test condition. *)
type scenario = {
  scenario : string;  (** "stall" or "overload" *)
  load : float;  (** offered load as a fraction of capacity *)
  stall_intensity : float;
}

(** The two gated conditions: 80%% load with 30%% stalls, and 130%%
    overload. *)
val scenarios : scenario list

(** One knob setting's run. *)
type row = {
  label : string;
  gated : bool;  (** participates in the adaptive-vs-static comparison *)
  adaptive : bool;
  result : Tq_fault.Fault_experiment.result;
}

(** One scenario's sweep plus its gate numbers. *)
type outcome = {
  spec : scenario;
  rows : row list;
  adaptive_ratio : float;
  best_static_ratio : float;
  margin : float;  (** adaptive - best static; >= 0 is the gate *)
}

(** [run_scenario ~workload spec] — the static sweep, the hand-tuned
    context row, and the adaptive run for one scenario.  [quick]
    shortens runs and drops half the static sweep (CI smoke). *)
val run_scenario :
  ?quick:bool -> workload:Tq_workload.Service_dist.t -> scenario -> outcome

(** All scenarios in order. *)
val run_all :
  ?quick:bool -> workload:Tq_workload.Service_dist.t -> unit -> outcome list

(** Render one outcome as a table. *)
val table : outcome -> Tq_util.Text_table.t

(** Registry entry points (High Bimodal). *)
val adaptive_stall : unit -> Tq_util.Text_table.t

val adaptive_overload : unit -> Tq_util.Text_table.t
