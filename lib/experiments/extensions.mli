(** Beyond the paper's evaluation: the extensions its discussion
    sections point to. *)

(** LAS quantum scheduling (Section 3.1 motivates dynamic quanta for
    least-attained-service): TQ-PS vs TQ-LAS on Extreme Bimodal. *)
val ext_las : unit -> Tq_util.Text_table.t

(** Multiple dispatcher cores (Section 6): Exp(1) on 64 workers with 1,
    2 and 4 dispatchers — throughput scales past one dispatcher's
    ~14 Mrps. *)
val ext_dispatchers : unit -> Tq_util.Text_table.t

(** Related work (Section 7): Concord replaces interrupts with a shared
    cache line but keeps centralized scheduling — its dispatcher remains
    the bottleneck while TQ's per-job dispatcher rides much higher. *)
val ext_concord : unit -> Tq_util.Text_table.t

(** Methodology check for the cache study (Section 5.5): with sequential
    access and a next-line prefetcher, preemption-induced misses are
    concealed — random pointer chasing is what exposes them. *)
val ext_prefetch : unit -> Tq_util.Text_table.t

(** Push-only vs push+steal ({!Tq_sched.System_intf.spec.Stealing})
    crossed with placement quality (JSQ+MSQ vs random): stealing is
    near-neutral behind a good placer and recovers most of the tail
    gap behind a bad one — the idle core's second chance. *)
val ext_steal : unit -> Tq_util.Text_table.t

(** RSS with few client connections: hash collisions leave Caladan
    cores idle and work stealing must compensate — the idealized
    uniform steering used elsewhere is the many-connections limit. *)
val ext_rss : unit -> Tq_util.Text_table.t

(** Overload admission: a finite NIC RX ring in front of TQ turns
    overload into drops — goodput plateaus at capacity and the latency
    of *admitted* requests stays bounded, instead of unbounded queueing. *)
val ext_overload : unit -> Tq_util.Text_table.t
