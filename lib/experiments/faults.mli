(** Graceful-degradation experiments built on [tq_fault]: goodput and
    tail-latency curves under injected core stalls, a permanent core
    failure, and overload, for TQ (with its failure handling) against
    the centralized and Caladan baselines. *)

(** [goodput_points ~system ~workload ()] runs the stall-intensity sweep
    and returns [(intensity, result)] per point — the machine-readable
    degradation curve behind [BENCH_faults.json].  [quick] shrinks the
    sweep to 0%%/5%%/20%% and shortens each run. *)
val goodput_points :
  ?quick:bool ->
  system:Tq_sched.Experiment.system_spec ->
  workload:Tq_workload.Service_dist.t ->
  unit ->
  (float * Tq_fault.Fault_experiment.result) list

(** Goodput/tail degradation vs stall intensity for one system. *)
val degradation :
  ?quick:bool ->
  system:Tq_sched.Experiment.system_spec ->
  system_name:string ->
  workload:Tq_workload.Service_dist.t ->
  unit ->
  Tq_util.Text_table.t

(** The same stall plan replayed against TQ, Shinjuku and Caladan. *)
val compare_systems :
  ?quick:bool -> workload:Tq_workload.Service_dist.t -> unit -> Tq_util.Text_table.t

(** One of 16 cores fails mid-run; health tracking on vs off. *)
val kill_recovery :
  ?quick:bool -> workload:Tq_workload.Service_dist.t -> unit -> Tq_util.Text_table.t

(** Load swept past saturation with and without admission control. *)
val admission_overload :
  ?quick:bool -> workload:Tq_workload.Service_dist.t -> unit -> Tq_util.Text_table.t

(** All four tables for one system/workload — the [tq_sim faults]
    subcommand. *)
val sweep :
  ?quick:bool ->
  system:Tq_sched.Experiment.system_spec ->
  system_name:string ->
  workload:Tq_workload.Service_dist.t ->
  unit ->
  Tq_util.Text_table.t list

(** Registry entry points: the four tables of the full sweep on TQ with
    High Bimodal, individually runnable so they can be parallel grid
    points. *)

(** {!degradation} on the registry's TQ + High Bimodal setup. *)
val faults_degradation : unit -> Tq_util.Text_table.t

(** {!compare_systems} on High Bimodal. *)
val faults_compare : unit -> Tq_util.Text_table.t

(** {!kill_recovery} on High Bimodal. *)
val faults_kill : unit -> Tq_util.Text_table.t

(** {!admission_overload} on High Bimodal. *)
val faults_admission : unit -> Tq_util.Text_table.t

(** All four tables, sequentially: the registry's "faults" entry. *)
val faults : unit -> Tq_util.Text_table.t list
