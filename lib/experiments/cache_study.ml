module Text_table = Tq_util.Text_table
module Pointer_chase = Tq_cache.Pointer_chase
module Reuse_model = Tq_cache.Reuse_model
module Reuse_distance = Tq_cache.Reuse_distance
module Histogram = Tq_stats.Histogram
module Store = Tq_kv.Store

let cores = 16
let arrays_per_core = 4
let sizes_kb = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]

let chase ~framework ~array_kb ~quantum_ns =
  let lines = array_kb * 1024 / 64 in
  let target =
    let ideal = 6 * arrays_per_core * lines in
    min 400_000 (max 100_000 ideal)
  in
  let target = int_of_float (float_of_int target *. Float.min 1.0 Harness.scale) in
  (* Never measure fewer than ~3 passes over the per-core working set:
     cold misses would otherwise dominate large-array configurations. *)
  let target = max target (3 * arrays_per_core * lines) in
  Pointer_chase.run
    {
      Pointer_chase.framework;
      access_order = Pointer_chase.Random_order;
      prefetch = false;
      cores;
      arrays_per_core;
      array_bytes = array_kb * 1024;
      quantum_accesses = Pointer_chase.quantum_accesses_of_ns quantum_ns;
      target_accesses_per_core = max 20_000 target;
      seed = 5L;
    }

let table2 () =
  let t =
    Text_table.create
      ~title:"Table 2: reuse distances (C=16 cores, J=4 jobs/core, array A)"
      ~columns:[ "array"; "CT first-in-quantum"; "TLS first-in-quantum"; "repeat" ]
  in
  List.iter
    (fun kb ->
      let p = { Reuse_model.cores; jobs_per_core = arrays_per_core; array_bytes = kb * 1024 } in
      let fmt bytes =
        if bytes >= 1024 * 1024 then Printf.sprintf "%.1fMB" (float_of_int bytes /. 1048576.0)
        else Printf.sprintf "%dKB" (bytes / 1024)
      in
      Text_table.add_row t
        [
          Printf.sprintf "%dKB" kb;
          fmt (Reuse_model.first_access_distance ~framework:Pointer_chase.Ct p)
          ^ " (= C*J*A)";
          fmt (Reuse_model.first_access_distance ~framework:Pointer_chase.Tls p)
          ^ " (= J*A)";
          fmt (Reuse_model.repeat_access_distance p) ^ " (= A)";
        ])
    [ 8; 16; 32; 256 ];
  t

let fig13 () =
  let quanta_ns = [ 500; 2_000; 16_000 ] in
  let t =
    Text_table.create
      ~title:"Figure 13: TLS pointer-chase mean access latency (cycles) vs array size"
      ~columns:
        ("array"
        :: List.map (fun q -> Printf.sprintf "TLS-%gus" (float_of_int q /. 1e3)) quanta_ns)
  in
  List.iter
    (fun kb ->
      let cells =
        List.map
          (fun q ->
            let r = chase ~framework:Pointer_chase.Tls ~array_kb:kb ~quantum_ns:q in
            Text_table.cell_f r.Pointer_chase.mean_latency_cycles)
          quanta_ns
      in
      Text_table.add_row t (Printf.sprintf "%dKB" kb :: cells))
    sizes_kb;
  t

let fig14 () =
  let t =
    Text_table.create
      ~title:"Figure 14: TLS vs CT at 2us quanta, mean access latency (cycles)"
      ~columns:[ "array"; "TLS-2us"; "CT-2us" ]
  in
  List.iter
    (fun kb ->
      let tls = chase ~framework:Pointer_chase.Tls ~array_kb:kb ~quantum_ns:2_000 in
      let ct = chase ~framework:Pointer_chase.Ct ~array_kb:kb ~quantum_ns:2_000 in
      Text_table.add_row t
        [
          Printf.sprintf "%dKB" kb;
          Text_table.cell_f tls.Pointer_chase.mean_latency_cycles;
          Text_table.cell_f ct.Pointer_chase.mean_latency_cycles;
        ])
    sizes_kb;
  t

(* Populate a store and capture one job's trace. *)
let kv_traces () =
  let store = Store.create () in
  for i = 0 to 49_999 do
    Store.put store (Printf.sprintf "user%08d" i) (Printf.sprintf "profile-%d" i)
  done;
  let get_trace =
    Store.trace_of store (fun () ->
        (* A GET job: a handful of point lookups, like one RPC handler. *)
        for k = 0 to 7 do
          ignore (Store.get store (Printf.sprintf "user%08d" (1234 + (6007 * k))))
        done)
  in
  let scan_trace =
    Store.trace_of store (fun () ->
        ignore (Store.scan store ~start:"user00010000" ~limit:4_000))
  in
  (get_trace, scan_trace)

let profile_table name trace =
  let profile = Reuse_distance.analyze trace in
  let h = Reuse_distance.histogram profile in
  let t =
    Text_table.create
      ~title:
        (Printf.sprintf
           "Figure 15 (%s): reuse distances — %d accesses, %.1f%% above 8KB"
           name
           (Reuse_distance.total_accesses profile)
           (100.0 *. Reuse_distance.fraction_above profile ~bytes:8_192))
      ~columns:[ "distance bucket"; "count" ]
  in
  let boundaries = [ 64; 512; 4_096; 8_192; 32_768; 262_144; max_int ] in
  let prev = ref 0 in
  List.iter
    (fun upper ->
      let count = ref 0 in
      Histogram.iter_buckets h (fun ~lo ~hi:_ ~count:c ->
          if lo >= !prev && lo < upper then count := !count + c);
      let fmt b =
        if b < 1024 then Printf.sprintf "%dB" b
        else Printf.sprintf "%gKB" (float_of_int b /. 1024.0)
      in
      let label =
        if upper = max_int then ">=" ^ fmt !prev
        else Printf.sprintf "%s-%s" (fmt !prev) (fmt upper)
      in
      Text_table.add_row t [ label; Text_table.cell_i !count ];
      prev := upper)
    boundaries;
  t

let fig15_get () = profile_table "KV GET" (fst (kv_traces ()))
let fig15_scan () = profile_table "KV SCAN" (snd (kv_traces ()))
let fig15 () = [ fig15_get (); fig15_scan () ]
