(** Section 5.5 cache study (Table 2, Figures 13-15). *)

(** Table 2: analytical reuse distances under CT vs TLS, with the
    empirical L1/L2 miss predictions. *)
val table2 : unit -> Tq_util.Text_table.t

(** Figure 13: TLS pointer-chase mean access latency vs array size for
    quanta {0.5, 2, 16} us. *)
val fig13 : unit -> Tq_util.Text_table.t

(** Figure 14: TLS vs CT at 2 us quanta. *)
val fig14 : unit -> Tq_util.Text_table.t

(** Figure 15, GET panel: reuse-distance profile of KV GET, including
    the fraction of accesses above 8 KB (the paper reports 3.7%). *)
val fig15_get : unit -> Tq_util.Text_table.t

(** Figure 15, SCAN panel (the paper reports 4.5% above 8 KB). *)
val fig15_scan : unit -> Tq_util.Text_table.t

(** Figure 15: both reuse-distance profiles. *)
val fig15 : unit -> Tq_util.Text_table.t list
