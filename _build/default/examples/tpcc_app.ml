(* TPC-C under blind scheduling.

   Runs the five-transaction OLTP mix (Table 1 ratios) through the DES:
   TQ vs Shinjuku vs Caladan at increasing load, reporting the tail
   slowdown of the short Payment transactions — then executes real
   transactions against the in-memory database on the fiber runtime.

     dune exec examples/tpcc_app.exe *)

module Metrics = Tq.Workload.Metrics
module Transactions = Tq.Tpcc.Transactions

let simulated_comparison () =
  let workload = Tq.Workload.Table1.tpcc in
  let capacity = Tq.Workload.Arrivals.capacity_rps ~cores:16 workload in
  Printf.printf "TPC-C mix, 16 cores, capacity %.0f krps\n\n" (capacity /. 1e3);
  Printf.printf "%-10s %14s %14s %14s\n" "load" "TQ" "Shinjuku" "Caladan";
  List.iter
    (fun frac ->
      let rate_rps = frac *. capacity in
      let duration_ns = Tq.Util.Time_unit.ms 40.0 in
      let tail system =
        let r = Tq.Sched.Experiment.run ~system ~workload ~rate_rps ~duration_ns () in
        Metrics.slowdown_percentile r.metrics ~class_idx:0 99.9
      in
      Printf.printf "%-10s %14.1f %14.1f %14.1f\n"
        (Printf.sprintf "%.0f%%" (100.0 *. frac))
        (tail (Tq.Sched.Presets.tq ()))
        (tail (Tq.Sched.Presets.shinjuku ~quantum_ns:10_000 ()))
        (tail (Tq.Sched.Presets.caladan ~mode:Tq.Sched.Caladan.Directpath ())))
    [ 0.3; 0.5; 0.7; 0.85 ];
  Printf.printf "\n(payment p99.9 slowdown; preemptive tiny quanta keep it flat)\n\n"

let live_database () =
  let db = Tq.Tpcc.Schema.create () in
  let rng = Tq.Util.Prng.create ~seed:2024L in
  let ex = Tq.Runtime.Executor.create ~workers:4 ~quantum_ns:2_000 () in
  let counts = Hashtbl.create 5 in
  for _ = 1 to 2_000 do
    let kind = Transactions.sample_kind rng in
    Hashtbl.replace counts kind (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind));
    Tq.Runtime.Executor.submit ex (fun () ->
        ignore (Transactions.run db rng kind ~now_ns:0);
        (* Credit the Table 1 service time so quanta preempt long
           Delivery/StockLevel transactions. *)
        Tq.Runtime.Instrumented.work_ns (Transactions.service_time_ns kind))
  done;
  Tq.Runtime.Executor.run ex;
  Printf.printf "executed %d transactions on the fiber runtime (%d yields):\n"
    (Tq.Runtime.Executor.completed ex)
    (Tq.Runtime.Executor.total_yields ex);
  Hashtbl.iter
    (fun kind count -> Printf.printf "  %-12s %5d\n" (Transactions.kind_name kind) count)
    counts;
  let w0 = Tq.Tpcc.Schema.warehouse db ~w:0 in
  Printf.printf "warehouse 0 YTD: $%.2f\n" (float_of_int w0.w_ytd /. 100.0);
  (match Tq.Tpcc.Consistency.check db with
  | [] -> print_endline "TPC-C consistency checks: all passed"
  | violations ->
      Printf.printf "CONSISTENCY VIOLATIONS:\n%s\n" (String.concat "\n" violations))

let () =
  simulated_comparison ();
  live_database ()
