examples/kv_server.ml: List Printf String Tq
