examples/kv_server.mli:
