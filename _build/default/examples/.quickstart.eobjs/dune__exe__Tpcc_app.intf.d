examples/tpcc_app.mli:
