examples/des_model.mli:
