examples/compiler_probes.ml: Bench_programs Ci_pass Evaluate Printf Tq Tq_pass Vm
