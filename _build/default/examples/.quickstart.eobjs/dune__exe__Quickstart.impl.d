examples/quickstart.ml: Printf Tq
