examples/compiler_probes.mli:
