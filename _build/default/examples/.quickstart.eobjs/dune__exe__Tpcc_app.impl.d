examples/tpcc_app.ml: Hashtbl List Option Printf String Tq
