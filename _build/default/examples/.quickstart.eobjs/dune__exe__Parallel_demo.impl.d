examples/parallel_demo.ml: Array Domain Printf Sys Tq Unix
