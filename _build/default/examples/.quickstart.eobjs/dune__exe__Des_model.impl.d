examples/des_model.ml: Array List Printf Queue Tq
