examples/quickstart.mli:
