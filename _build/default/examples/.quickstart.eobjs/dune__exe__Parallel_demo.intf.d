examples/parallel_demo.mli:
