(* Build your own scheduling model in direct style.

   The library's calibrated models are event-driven for speed; this
   example shows the ergonomic path for experimenting with new designs:
   Tq.Engine.Process turns each actor into a plain function with sleeps
   and mailboxes.  Here: a mini two-level system — a dispatcher process
   JSQ-ing over two worker processes that run processor sharing with
   2us quanta — fed by a burst of bimodal jobs.

     dune exec examples/des_model.exe *)

module Sim = Tq.Engine.Sim
module Process = Tq.Engine.Process
module Mailbox = Tq.Engine.Process.Mailbox

type job = { id : int; mutable remaining_ns : int; size_ns : int; arrival : int }

let quantum = 2_000

let worker sim ~name ~(inbox : job Mailbox.t) ~(load : int ref) ~finished =
  Process.spawn sim (fun ctx ->
      let run_queue = Queue.create () in
      let drain () =
        let rec go () =
          match Mailbox.try_recv inbox with
          | Some job ->
              Queue.add job run_queue;
              go ()
          | None -> ()
        in
        go ()
      in
      let rec loop () =
        drain ();
        if Queue.is_empty run_queue then Queue.add (Mailbox.recv ctx inbox) run_queue;
        let job = Queue.pop run_queue in
        let slice = min quantum job.remaining_ns in
        Process.sleep ctx slice;
        job.remaining_ns <- job.remaining_ns - slice;
        if job.remaining_ns = 0 then begin
          Printf.printf "  [%6dns] %s finished job %d (%5dns job, sojourn %6dns)\n"
            (Process.now ctx) name job.id job.size_ns
            (Process.now ctx - job.arrival);
          decr load;
          incr finished
        end
        else Queue.add job run_queue;
        loop ()
      in
      loop ())

let dispatcher sim ~(arrivals : job Mailbox.t) ~(workers : (job Mailbox.t * int ref) array) =
  Process.spawn sim (fun ctx ->
      let rec loop () =
        let job = Mailbox.recv ctx arrivals in
        (* JSQ over the workers' unfinished counters. *)
        let best = ref 0 in
        Array.iteri
          (fun i (_, load) -> if !load < !(snd workers.(!best)) then best := i)
          workers;
        let inbox, load = workers.(!best) in
        incr load;
        Mailbox.send (Process.sim ctx) inbox job;
        loop ()
      in
      loop ())

let () =
  let sim = Sim.create () in
  let finished = ref 0 in
  let arrivals = Mailbox.create () in
  let workers = Array.init 2 (fun _ -> (Mailbox.create (), ref 0)) in
  dispatcher sim ~arrivals ~workers;
  Array.iteri
    (fun i (inbox, load) ->
      worker sim ~name:(Printf.sprintf "worker%d" i) ~inbox ~load ~finished)
    workers;
  (* A burst: one 40us elephant and nine 1us mice, all at t=0. *)
  let jobs =
    List.init 10 (fun i ->
        let size = if i = 0 then 40_000 else 1_000 in
        { id = i; remaining_ns = size; size_ns = size; arrival = 0 })
  in
  Printf.printf "burst of %d jobs (one 40us elephant, nine 1us mice), 2 workers, 2us PS:\n"
    (List.length jobs);
  List.iter (fun j -> Mailbox.send sim arrivals j) jobs;
  Sim.run sim;
  Printf.printf "finished %d jobs; the mice all completed long before the elephant.\n"
    !finished
