(* A key-value server on the real forced-multitasking runtime.

   GET and SCAN requests run as fibers on TQ's executor: probes inserted
   at loop granularity (the library-level stand-in for the compiler
   pass) preempt long SCANs so GETs never wait behind them — the
   RocksDB experiment of the paper, live on OCaml effects.

     dune exec examples/kv_server.exe *)

module Store = Tq.Kv.Store
module Executor = Tq.Runtime.Executor
module Instrumented = Tq.Runtime.Instrumented

let populate store n =
  for i = 0 to n - 1 do
    Store.put store (Printf.sprintf "user%08d" i) (Printf.sprintf "profile-%d" i)
  done

(* Wrap store operations with work-proportional virtual time, so the
   executor's virtual clocks reflect Table 1 service times. *)
let get_request store key () =
  ignore (Store.get store key);
  Instrumented.work_ns 1_200 (* Table 1: GET ~1.2us *)

let scan_request store start () =
  let results = Store.scan store ~start ~limit:2_000 in
  (* Iterate results with probes, like instrumented user code. *)
  Instrumented.iter_list ~probe_every:16 (fun _ -> ()) results;
  Instrumented.work_ns 675_000 (* Table 1: SCAN ~675us *)

let () =
  let store = Store.create () in
  populate store 50_000;
  Printf.printf "loaded %d keys (%d runs, %d flushes)\n\n" (Store.length store)
    (Store.run_count store) (Store.flushes store);

  let ex = Executor.create ~workers:4 ~quantum_ns:2_000 () in
  let completion_order = ref [] in
  let submit_named name work =
    Executor.submit ex (fun () ->
        work ();
        completion_order := name :: !completion_order)
  in
  (* One monster SCAN first, then a burst of GETs behind it. *)
  submit_named "SCAN" (scan_request store "user00010000");
  for i = 1 to 12 do
    submit_named
      (Printf.sprintf "GET-%02d" i)
      (get_request store (Printf.sprintf "user%08d" (i * 999)))
  done;
  Executor.run ex;

  Printf.printf "completion order (SCAN submitted FIRST):\n  %s\n\n"
    (String.concat ", " (List.rev !completion_order));
  Printf.printf "yields taken: %d — the 675us SCAN was preempted every 2us,\n" (Executor.total_yields ex);
  Printf.printf "so all 12 GETs (1.2us each) finished before it.\n"
