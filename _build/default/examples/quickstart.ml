(* Quickstart: schedule the extreme-bimodal workload under TQ and under
   run-to-completion FCFS, and watch tiny quanta rescue the short jobs.

     dune exec examples/quickstart.exe *)

let () =
  let workload = Tq.Workload.Table1.extreme_bimodal in
  let rate_rps = 3_000_000.0 in
  let duration_ns = Tq.Util.Time_unit.ms 50.0 in
  let run system =
    Tq.Sched.Experiment.run ~system ~workload ~rate_rps ~duration_ns ()
  in
  let report label (r : Tq.Sched.Experiment.result) =
    let p cls pct = Tq.Workload.Metrics.sojourn_percentile r.metrics ~class_idx:cls pct /. 1e3 in
    Printf.printf "%-22s short p50 %7.1fus  short p99.9 %9.1fus  long p99.9 %9.1fus\n"
      label (p 0 50.0) (p 0 99.9) (p 1 99.9)
  in
  Printf.printf
    "Extreme bimodal (99.5%% x 0.3us, 0.5%% x 509us) at 3 Mrps on 16 cores:\n\n";
  report "TQ (2us quanta)" (run (Tq.Sched.Presets.tq ()));
  report "TQ (0.5us quanta)" (run (Tq.Sched.Presets.tq ~quantum_ns:500 ()));
  report "FCFS (no preemption)" (run (Tq.Sched.Presets.tq_fcfs ()));
  print_newline ();
  Printf.printf
    "Blind preemptive scheduling with tiny quanta keeps the 0.3us requests'\n\
     tail two orders of magnitude below head-of-line-blocked FCFS.\n"
