(* Forced multitasking's compiler side, end to end.

   Takes the ~2us RocksDB GET program, instruments it with the CI
   baseline and with TQ's bounded-path physical-clock pass, and executes
   all three versions in the cycle-accurate VM — reproducing the
   Section 3.1 numbers: CI needs an order of magnitude more probes and
   inflates the job, TQ places a handful of probes with tighter yield
   timing.

     dune exec examples/compiler_probes.exe *)

open Tq.Instrument

let describe name prog quantum =
  let config = { Vm.default_config with quantum_cycles = quantum; seed = 11L } in
  let r = Vm.run config prog in
  Printf.printf "%-14s %8d cycles  %6d dynamic probes  %5d static  %3d yields\n" name
    r.Vm.total_cycles r.Vm.probe_executions
    (Tq.Ir.Cfg.program_probe_count prog)
    r.Vm.yields

let () =
  let named = Bench_programs.rocksdb_get in
  let base = Bench_programs.lowered named in
  let ci = Ci_pass.instrument base in
  let tq = Tq_pass.instrument base in
  let quantum = Tq.Util.Time_unit.ns_to_cycles 2_000 in

  Printf.printf "RocksDB GET (~2us job), 2us quantum at 2.1 GHz:\n\n";
  describe "uninstrumented" base max_int;
  describe "CI" ci quantum;
  describe "TQ" tq quantum;

  let row = Evaluate.evaluate named in
  Printf.printf "\nprobing overhead: CI %.1f%%  CI-Cycles %.1f%%  TQ %.1f%%\n"
    row.Evaluate.ci_overhead_pct row.Evaluate.ci_cycles_overhead_pct
    row.Evaluate.tq_overhead_pct;

  (* Yield-timing accuracy on the long SCAN, where quanta matter. *)
  let scan = Evaluate.evaluate Bench_programs.rocksdb_scan in
  Printf.printf "SCAN yield-timing MAE: CI %.0fns  CI-Cycles %.0fns  TQ %.0fns\n"
    scan.Evaluate.ci_mae_ns scan.Evaluate.ci_cycles_mae_ns scan.Evaluate.tq_mae_ns;

  Printf.printf "\nTQ probe placement for the GET (dump via: tq_sim probe-place rocksdb-get):\n";
  Printf.printf "  %d probes vs CI's %d — the paper reports 40 vs 1000+ on real RocksDB.\n"
    (Tq.Ir.Cfg.program_probe_count tq)
    (Tq.Ir.Cfg.program_probe_count ci)
