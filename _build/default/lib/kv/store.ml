type config = { memtable_limit : int; max_runs : int; seed : int64 }

let default_config = { memtable_limit = 4096; max_runs = 4; seed = 0xCAFEL }

(* Deletion is a write: a tombstone shadows older values until a full
   compaction drops it. *)
type cell = Value of string | Tombstone

type run = { table : cell Sstable.t; filter : Bloom.t }

type t = {
  config : config;
  mutable memtable : cell Skiplist.t;
  mutable runs : run list;  (** newest first *)
  mutable next_base : int;  (** address region for the next run *)
  mutable flushes : int;
  mutable compactions : int;
  mutable tracer : (int -> unit) option;
}

(* Each run gets a fresh 16 MB address region. *)
let region = 16 * 1024 * 1024

let create ?(config = default_config) () =
  {
    config;
    memtable = Skiplist.create ~seed:config.seed ();
    runs = [];
    next_base = region;
    flushes = 0;
    compactions = 0;
    tracer = None;
  }

let fresh_base t =
  let base = t.next_base in
  t.next_base <- t.next_base + region;
  base

let make_run t bindings =
  {
    table = Sstable.of_sorted ~base_address:(fresh_base t) bindings;
    filter = Bloom.of_keys (List.map fst bindings);
  }

let run_bindings run =
  let acc = ref [] in
  Sstable.iter_from run.table "" (fun k v ->
      acc := (k, v) :: !acc;
      true);
  List.rev !acc

let compact t =
  let merged = Sstable.merge (List.map run_bindings t.runs) in
  (* Full compaction: nothing older remains, so tombstones can go. *)
  let live = List.filter (fun (_, cell) -> cell <> Tombstone) merged in
  t.runs <- [ make_run t live ];
  t.compactions <- t.compactions + 1

let flush t =
  let bindings = Skiplist.to_sorted_list t.memtable in
  if bindings <> [] then begin
    t.runs <- make_run t bindings :: t.runs;
    t.flushes <- t.flushes + 1;
    t.memtable <- Skiplist.create ~seed:t.config.seed ();
    Skiplist.set_tracer t.memtable t.tracer;
    if List.length t.runs > t.config.max_runs then compact t
  end

let write t key cell =
  Skiplist.insert t.memtable key cell;
  if Skiplist.length t.memtable >= t.config.memtable_limit then flush t

let put t key value = write t key (Value value)
let delete t key = write t key Tombstone

let find_cell t key =
  match Skiplist.find t.memtable key with
  | Some cell -> Some cell
  | None ->
      let rec search = function
        | [] -> None
        | run :: rest ->
            (* The Bloom filter lets GETs skip runs that cannot hold the
               key — the RocksDB filter-block fast path. *)
            if Bloom.mem run.filter key then
              match Sstable.find ?trace:t.tracer run.table key with
              | Some cell -> Some cell
              | None -> search rest
            else search rest
      in
      search t.runs

let get t key =
  match find_cell t key with
  | Some (Value v) -> Some v
  | Some Tombstone | None -> None

let mem t key = Option.is_some (get t key)

(* A merge-iterator source: a peeked head plus a way to advance.
   Sources are ordered newest first (memtable, then runs new->old), so
   on duplicate keys the lowest source index wins. *)
type source = { mutable head : (string * cell) option; advance : unit -> (string * cell) option }

type iterator = { sources : source array }

let iterate t ~start =
  let of_memtable =
    let cursor = Skiplist.seek t.memtable start in
    fun () -> Skiplist.cursor_next cursor
  in
  let of_run run =
    let cursor = Sstable.seek ?trace:t.tracer run.table start in
    fun () -> Sstable.cursor_next cursor
  in
  let advances = of_memtable :: List.map of_run t.runs in
  let sources =
    Array.of_list (List.map (fun advance -> { head = advance (); advance }) advances)
  in
  { sources }

let rec next it =
  (* Smallest key among source heads; the newest source holding it wins;
     every source carrying that key advances past it. *)
  let best = ref None in
  Array.iter
    (fun src ->
      match (src.head, !best) with
      | Some (k, _), Some bk when k >= bk -> ()
      | Some (k, _), _ -> best := Some k
      | None, _ -> ())
    it.sources;
  match !best with
  | None -> None
  | Some key ->
      let winner = ref None in
      Array.iter
        (fun src ->
          match src.head with
          | Some (k, cell) when k = key ->
              if !winner = None then winner := Some cell;
              src.head <- src.advance ()
          | _ -> ())
        it.sources;
      (match !winner with
      | Some (Value v) -> Some (key, v)
      | Some Tombstone | None -> next it)

let scan t ~start ~limit =
  if limit <= 0 then []
  else begin
    let it = iterate t ~start in
    let rec take acc n =
      if n = 0 then List.rev acc
      else
        match next it with
        | Some binding -> take (binding :: acc) (n - 1)
        | None -> List.rev acc
    in
    take [] limit
  end

let length t =
  Skiplist.length t.memtable
  + List.fold_left (fun acc run -> acc + Sstable.length run.table) 0 t.runs

let run_count t = List.length t.runs
let flushes t = t.flushes
let compactions t = t.compactions

let trace_of t f =
  let acc = Tq_util.Ivec.create ~capacity:1024 () in
  let tracer = Some (fun addr -> Tq_util.Ivec.push acc addr) in
  t.tracer <- tracer;
  Skiplist.set_tracer t.memtable tracer;
  Fun.protect
    ~finally:(fun () ->
      t.tracer <- None;
      Skiplist.set_tracer t.memtable None)
    f;
  Tq_util.Ivec.to_array acc
