(** The in-memory LSM key-value store (the RocksDB stand-in).

    Writes go to a skip-list memtable; when it reaches
    [memtable_limit] entries it is flushed to an immutable sorted run.
    When more than [max_runs] runs accumulate they are compacted into
    one.  GET consults the memtable then runs newest-first; SCAN merges
    the memtable and all runs from a start key.

    GETs consult per-run Bloom filters first (RocksDB's filter blocks),
    so runs that cannot hold the key cost nothing.  Deletes write
    tombstones that shadow older values and are dropped at full
    compaction.

    Every data-structure access can be traced as a synthetic memory
    address, which feeds the reuse-distance study of Figure 15. *)

type t

type config = { memtable_limit : int; max_runs : int; seed : int64 }

val default_config : config

val create : ?config:config -> unit -> t

val put : t -> string -> string -> unit
val get : t -> string -> string option
val mem : t -> string -> bool

(** [delete t key] — writes a tombstone; older versions stay shadowed
    until compaction. *)
val delete : t -> string -> unit

(** [scan t ~start ~limit] — up to [limit] bindings with key >= [start],
    ascending, newest value per key. *)
val scan : t -> start:string -> limit:int -> (string * string) list

(** Streaming scans: a merge iterator over the memtable and every run,
    resolving shadowing and dropping tombstones on the fly (RocksDB's
    iterator machinery).  The iterator reflects the store at creation
    time; do not interleave writes. *)
type iterator

val iterate : t -> start:string -> iterator

(** [next it] — the next live binding in key order. *)
val next : iterator -> (string * string) option

(** Total stored entries, counting tombstones and shadowed versions
    still held by older runs. *)
val length : t -> int

(** Number of immutable runs currently live. *)
val run_count : t -> int

val flushes : t -> int
val compactions : t -> int

(** [trace_of t f] runs [f ()] while recording every touched synthetic
    address, returning them in access order. *)
val trace_of : t -> (unit -> unit) -> int array
