type 'a t = { keys : string array; values : 'a array; base_address : int }

(* Two 32-byte entries per 64-byte line. *)
let entry_bytes = 32

let of_sorted ~base_address bindings =
  let keys = Array.of_list (List.map fst bindings) in
  let values = Array.of_list (List.map snd bindings) in
  Array.iteri
    (fun i k ->
      if i > 0 && keys.(i - 1) >= k then
        invalid_arg "Sstable.of_sorted: keys not strictly ascending")
    keys;
  { keys; values; base_address }

let length t = Array.length t.keys

let address t i = t.base_address + (i * entry_bytes)

let touch trace t i = match trace with Some f -> f (address t i) | None -> ()

(* Smallest index with key >= target, or length if none. *)
let lower_bound ?trace t target =
  let lo = ref 0 and hi = ref (Array.length t.keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    touch trace t mid;
    if t.keys.(mid) < target then lo := mid + 1 else hi := mid
  done;
  !lo

let find ?trace t key =
  let i = lower_bound ?trace t key in
  if i < Array.length t.keys && t.keys.(i) = key then begin
    touch trace t i;
    Some t.values.(i)
  end
  else None

let iter_from ?trace t key f =
  let i = ref (lower_bound ?trace t key) in
  let continue = ref true in
  while !continue && !i < Array.length t.keys do
    touch trace t !i;
    if f t.keys.(!i) t.values.(!i) then incr i else continue := false
  done

type 'a cursor = { owner : 'a t; trace : (int -> unit) option; mutable idx : int }

let seek ?trace t key = { owner = t; trace; idx = lower_bound ?trace t key }

let cursor_next c =
  if c.idx >= Array.length c.owner.keys then None
  else begin
    touch c.trace c.owner c.idx;
    let binding = (c.owner.keys.(c.idx), c.owner.values.(c.idx)) in
    c.idx <- c.idx + 1;
    Some binding
  end

let min_key t = if Array.length t.keys = 0 then None else Some t.keys.(0)

let max_key t =
  let n = Array.length t.keys in
  if n = 0 then None else Some t.keys.(n - 1)

let merge runs =
  (* k-way merge by repeated minimum over run heads; runs are small in
     number (compaction keeps few), so linear head scans suffice. *)
  let heads = Array.of_list (List.map (fun r -> ref r) runs) in
  let out = ref [] in
  let rec step () =
    let best = ref None in
    Array.iteri
      (fun idx head ->
        match !head with
        | [] -> ()
        | (k, _) :: _ -> (
            match !best with
            | Some (bk, bidx) when bk < k || (bk = k && bidx < idx) -> ()
            | _ -> best := Some (k, idx)))
      heads;
    match !best with
    | None -> ()
    | Some (k, idx) ->
        (match !(heads.(idx)) with
        | (_, v) :: rest ->
            heads.(idx) := rest;
            out := (k, v) :: !out
        | [] -> assert false);
        (* Drop the same key from older runs (larger indices lose). *)
        Array.iteri
          (fun j head ->
            if j <> idx then
              match !head with
              | (k', _) :: rest when k' = k -> head := rest
              | _ -> ())
          heads;
        step ()
  in
  step ();
  List.rev !out
