module Prng = Tq_util.Prng

let max_level = 12

type 'a node = {
  key : string;
  mutable value : 'a;
  forward : 'a node option array;
  address : int;
}

type 'a t = {
  head : 'a node;  (** sentinel with empty key, never returned *)
  rng : Prng.t;
  mutable level : int;  (** highest level in use, >= 1 *)
  mutable length : int;
  mutable next_address : int;
  mutable tracer : (int -> unit) option;
}

let make_node ~key ~value ~level ~address =
  { key; value; forward = Array.make level None; address }

let create ?(seed = 0x5EEDL) () =
  {
    (* The sentinel's value is never read: every accessor starts from
       [head.forward] and only returns real nodes. *)
    head = make_node ~key:"" ~value:(Obj.magic 0) ~level:max_level ~address:0;
    rng = Prng.create ~seed;
    level = 1;
    length = 0;
    next_address = 64;
    tracer = None;
  }

let length t = t.length
let set_tracer t f = t.tracer <- f

let touch t node = match t.tracer with Some f -> f node.address | None -> ()

let random_level t =
  let rec go level = if level < max_level && Prng.bernoulli t.rng ~p:0.25 then go (level + 1) else level in
  go 1

(* Walk down the towers recording the rightmost node < key per level. *)
let find_predecessors t key update =
  let node = ref t.head in
  for level = t.level - 1 downto 0 do
    let continue = ref true in
    while !continue do
      match !node.forward.(level) with
      | Some next when next.key < key ->
          touch t next;
          node := next
      | _ -> continue := false
    done;
    update.(level) <- !node
  done;
  !node

let insert t key value =
  let update = Array.make max_level t.head in
  let pred = find_predecessors t key update in
  match pred.forward.(0) with
  | Some next when next.key = key ->
      touch t next;
      next.value <- value
  | _ ->
      let level = random_level t in
      if level > t.level then begin
        for l = t.level to level - 1 do
          update.(l) <- t.head
        done;
        t.level <- level
      end;
      let node = make_node ~key ~value ~level ~address:t.next_address in
      t.next_address <- t.next_address + 64;
      for l = 0 to level - 1 do
        node.forward.(l) <- update.(l).forward.(l);
        update.(l).forward.(l) <- Some node
      done;
      t.length <- t.length + 1

let find t key =
  let update = Array.make max_level t.head in
  let pred = find_predecessors t key update in
  match pred.forward.(0) with
  | Some next when next.key = key ->
      touch t next;
      Some next.value
  | _ -> None

let mem t key = Option.is_some (find t key)

let iter_from t key f =
  let update = Array.make max_level t.head in
  let pred = find_predecessors t key update in
  let rec go = function
    | None -> ()
    | Some node ->
        touch t node;
        if f node.key node.value then go node.forward.(0)
  in
  go pred.forward.(0)

type 'a cursor = { owner : 'a t; mutable at : 'a node option }

let seek t key =
  let update = Array.make max_level t.head in
  let pred = find_predecessors t key update in
  { owner = t; at = pred.forward.(0) }

let cursor_next c =
  match c.at with
  | None -> None
  | Some node ->
      touch c.owner node;
      c.at <- node.forward.(0);
      Some (node.key, node.value)

let to_sorted_list t =
  let acc = ref [] in
  let rec go = function
    | None -> ()
    | Some node ->
        acc := (node.key, node.value) :: !acc;
        go node.forward.(0)
  in
  go t.head.forward.(0);
  List.rev !acc

let min_binding t =
  match t.head.forward.(0) with Some n -> Some (n.key, n.value) | None -> None

let max_binding t =
  let rec go best = function
    | None -> best
    | Some node -> go (Some (node.key, node.value)) node.forward.(0)
  in
  go None t.head.forward.(0)
