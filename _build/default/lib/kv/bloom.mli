(** Bloom filters for sorted runs.

    RocksDB consults a per-table filter before searching a table; the
    store does the same so GETs skip runs that cannot hold the key.
    Never a false negative; false positives bounded by the configured
    bits-per-key (10 bits + 7 hashes gives ~1%% like RocksDB's
    default). *)

type t

(** [create ~expected_entries ?bits_per_key ()]. *)
val create : expected_entries:int -> ?bits_per_key:int -> unit -> t

val add : t -> string -> unit

(** [mem t key] — false means definitely absent. *)
val mem : t -> string -> bool

(** [of_keys keys] — build and populate. *)
val of_keys : string list -> t

val bit_count : t -> int

(** [estimated_fpr t ~entries] — theoretical false-positive rate after
    inserting [entries] keys. *)
val estimated_fpr : t -> entries:int -> float
